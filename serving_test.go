package nomap

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"nomap/internal/codecache"
	"nomap/internal/harness"
	"nomap/internal/isolate"
	"nomap/internal/jit"
	"nomap/internal/oracle"
	"nomap/internal/pool"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// The serving layer's differential guarantee: a pooled, warm-started,
// cache-sharing isolate must be observationally identical — per-call
// results, print output, final reachable heap — to a dedicated cold engine,
// for every workload and every architecture configuration. Only the
// invisible warmup work (profiling, tier-up, compilation) may differ.

func servingConfig(arch vm.Arch) vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.Policy = harness.FastPolicy()
	return cfg
}

type coldRun struct {
	results []string
	output  []string
	heap    string
}

// coldReference runs src on a dedicated single-tenant isolate with no cache
// and no snapshots — the behaviour the pool must reproduce byte-for-byte.
func coldReference(t *testing.T, cfg vm.Config, src string, calls, arg int) coldRun {
	t.Helper()
	iso := isolate.New(cfg)
	progs := codecache.NewPrograms()
	entry, err := progs.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Load(entry); err != nil {
		t.Fatal(err)
	}
	var r coldRun
	for i := 0; i < calls; i++ {
		v, err := iso.VM().CallGlobal("run", value.Int(int32(arg)))
		if err != nil {
			t.Fatal(err)
		}
		r.results = append(r.results, v.ToStringValue())
	}
	r.output = append([]string(nil), iso.VM().Output...)
	r.heap = oracle.SnapshotHeap(iso.VM().Globals())
	return r
}

func checkResponse(t *testing.T, label string, resp pool.Response, heap string, ref coldRun) {
	t.Helper()
	if resp.Err != nil {
		t.Fatalf("%s: %v", label, resp.Err)
	}
	if !reflect.DeepEqual(resp.Results, ref.results) {
		t.Errorf("%s: results diverge from cold isolate\n got %v\nwant %v", label, resp.Results, ref.results)
	}
	if !reflect.DeepEqual(resp.Output, append([]string(nil), ref.output...)) &&
		!(len(resp.Output) == 0 && len(ref.output) == 0) {
		t.Errorf("%s: output diverges from cold isolate", label)
	}
	if heap != ref.heap {
		t.Errorf("%s: final heap diverges from cold isolate\n got %s\nwant %s", label, heap, ref.heap)
	}
	if err := oracle.CheckCounters(&resp.Counters); err != nil {
		t.Errorf("%s: counters: %v", label, err)
	}
	c := &resp.Counters
	if c.TxBegins != c.TxCommits+c.TxAborts {
		t.Errorf("%s: transaction leak: begins=%d commits=%d aborts=%d",
			label, c.TxBegins, c.TxCommits, c.TxAborts)
	}
}

func allServingWorkloads() []workloads.Workload {
	var all []workloads.Workload
	all = append(all, workloads.SunSpider()...)
	all = append(all, workloads.Kraken()...)
	all = append(all, workloads.Shootout()...)
	all = append(all, workloads.Adversarial()...)
	return all
}

// TestPoolMatchesColdIsolateAllWorkloads runs the entire workload suite
// (SunSpider, Kraken, Shootout, and the four adversarial programs) through
// the pool twice — the second pass warm-started from the first's snapshot —
// and requires byte-identical observations against a cold engine.
func TestPoolMatchesColdIsolateAllWorkloads(t *testing.T) {
	cfg := servingConfig(vm.ArchNoMap)
	p := pool.New(pool.Config{Workers: 2, VM: cfg})
	defer p.Close()
	const calls = 10

	suite := allServingWorkloads()
	if raceDetectorEnabled {
		// Under the detector's ~10x slowdown, sample the suite but always
		// keep the adversarial programs; the full matrix runs without -race.
		var sampled []workloads.Workload
		for i, w := range suite {
			if w.Suite == "Adversarial" || i%4 == 0 {
				sampled = append(sampled, w)
			}
		}
		suite = sampled
	}
	for _, w := range suite {
		ref := coldReference(t, cfg, w.Source, calls, 0)
		for pass, wantWarm := range []bool{false, true} {
			var heap string
			resp := p.Do(pool.Request{
				Source:  w.Source,
				Calls:   calls,
				Observe: func(v *vm.VM) { heap = oracle.SnapshotHeap(v.Globals()) },
			})
			label := fmt.Sprintf("%s pass %d", w.ID, pass)
			checkResponse(t, label, resp, heap, ref)
			if resp.Warm != wantWarm {
				t.Errorf("%s: warm=%v, want %v", label, resp.Warm, wantWarm)
			}
		}
	}
	st := p.Stats()
	if st.Failed != 0 {
		t.Errorf("pool failures: %+v", st)
	}
	if st.Cache.Hits == 0 || st.Counters.SnapshotRestores == 0 {
		t.Errorf("sharing machinery idle: cache=%+v restores=%d", st.Cache, st.Counters.SnapshotRestores)
	}
}

// TestPoolAdversarialAllArchs repeats the differential check for the four
// governor-stressing adversarial workloads across all six architecture
// configurations, using per-request arch overrides on one pool.
func TestPoolAdversarialAllArchs(t *testing.T) {
	p := pool.New(pool.Config{Workers: 2, VM: servingConfig(vm.ArchNoMap), SnapshotMinCalls: 4})
	defer p.Close()
	const calls = 6

	archs := vm.AllArchs
	if raceDetectorEnabled {
		archs = []vm.Arch{vm.ArchBase, vm.ArchNoMap, vm.ArchNoMapRTM}
	}
	for _, w := range workloads.Adversarial() {
		for _, arch := range archs {
			arch := arch
			ref := coldReference(t, servingConfig(arch), w.Source, calls, 0)
			for pass := 0; pass < 2; pass++ {
				var heap string
				resp := p.Do(pool.Request{
					Source:  w.Source,
					Calls:   calls,
					Arch:    &arch,
					Observe: func(v *vm.VM) { heap = oracle.SnapshotHeap(v.Globals()) },
				})
				checkResponse(t, fmt.Sprintf("%s/%s pass %d", w.ID, arch, pass), resp, heap, ref)
			}
		}
	}
}

// TestOracleSweepOnPoolIsolates points the fault-injection oracle's engine
// factory at pool-drawn isolates: every injected abort and deopt must
// produce reference behaviour on a recycled, cache-sharing engine exactly
// as it does on a dedicated one. The sweep runs unmodified — only the
// engine supply changes.
func TestOracleSweepOnPoolIsolates(t *testing.T) {
	p := pool.New(pool.Config{Workers: 2, VM: servingConfig(vm.ArchNoMap)})
	defer p.Close()

	prog := oracle.Program{
		Name: "pool-sweep",
		Setup: `
var a = [];
for (var i = 0; i < 24; i++) a[i] = i;
var o = {acc: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = (s + a[i % 24]) | 0;
    o.acc = o.acc + 1;
  }
  return s + o.acc;
}
`,
		Calls:     60,
		Arg:       16,
		Poison:    `a[7] = "boom";`,
		PostCalls: 3,
	}
	archs := []vm.Arch{vm.ArchNoMap, vm.ArchNoMapRTM}
	if raceDetectorEnabled {
		archs = archs[:1]
	}
	rep, err := oracle.Sweep(prog, oracle.Config{
		Archs:          archs,
		CapacityPoints: 2,
		RandomTrials:   2,
		Seed:           11,
		Engines: func(arch vm.Arch, maxTier profile.Tier) oracle.Engine {
			return &pooledEngine{p: p, iso: p.Checkout(arch, maxTier)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("pool-drawn engine failed oracle: %s", f)
	}
	for _, ar := range rep.Archs {
		if len(ar.Sites) == 0 || ar.InjectedAborts == 0 {
			t.Errorf("%v: sweep did not exercise injections (sites=%d aborts=%d)",
				ar.Arch, len(ar.Sites), ar.InjectedAborts)
		}
	}
}

type pooledEngine struct {
	p   *pool.Pool
	iso *isolate.Isolate
}

func (e *pooledEngine) VM() *vm.VM            { return e.iso.VM() }
func (e *pooledEngine) Backend() *jit.Backend { return e.iso.Backend() }
func (e *pooledEngine) Done()                 { e.p.Return(e.iso) }

// TestPoolSoak is the race-detector soak CI runs (NOMAP_SOAK=1
// go test -race -run TestPoolSoak): concurrent submitters hammer one pool
// with the mixed workload set — adversarial programs included — across
// rotating architectures, verifying every response against cold references.
func TestPoolSoak(t *testing.T) {
	if os.Getenv("NOMAP_SOAK") == "" {
		t.Skip("soak disabled; set NOMAP_SOAK=1")
	}
	budget := 30 * time.Second

	var mix []workloads.Workload
	for _, id := range []string{"S01", "S03", "S05", "K01", "K02"} {
		if w, ok := workloads.ByID(id); ok {
			mix = append(mix, w)
		}
	}
	mix = append(mix, workloads.Adversarial()...)

	const calls = 8
	refs := make(map[string]map[vm.Arch]coldRun)
	for _, w := range mix {
		refs[w.ID] = make(map[vm.Arch]coldRun)
		for _, arch := range vm.AllArchs {
			refs[w.ID][arch] = coldReference(t, servingConfig(arch), w.Source, calls, 0)
		}
	}

	p := pool.New(pool.Config{Workers: 4, VM: servingConfig(vm.ArchNoMap), SnapshotMinCalls: 4})
	defer p.Close()

	// The clock starts only once the references exist: under -race on a
	// slow host, building them can exceed the soak budget itself.
	deadline := time.Now().Add(budget)
	const submitters = 4
	done := make(chan int, submitters)
	for g := 0; g < submitters; g++ {
		g := g
		go func() {
			served := 0
			for i := 0; time.Now().Before(deadline); i++ {
				w := mix[(g+i)%len(mix)]
				arch := vm.AllArchs[(g*7+i)%len(vm.AllArchs)]
				resp := p.Do(pool.Request{Source: w.Source, Calls: calls, Arch: &arch})
				if resp.Err == pool.ErrQueueFull {
					continue // backpressure is expected under load
				}
				if resp.Err != nil {
					t.Errorf("%s/%s: %v", w.ID, arch, resp.Err)
					break
				}
				ref := refs[w.ID][arch]
				if !reflect.DeepEqual(resp.Results, ref.results) {
					t.Errorf("%s/%s: pooled results diverge under soak", w.ID, arch)
					break
				}
				served++
			}
			done <- served
		}()
	}
	total := 0
	for g := 0; g < submitters; g++ {
		total += <-done
	}
	st := p.Stats()
	t.Logf("soak: %d responses verified in %v; cache %+v; restores %d",
		total, budget, st.Cache, st.Counters.SnapshotRestores)
	if total == 0 {
		t.Error("soak served nothing")
	}
}
