package nomap

import (
	"math"
	"strings"
	"testing"

	"nomap/internal/governor"
	"nomap/internal/harness"
	"nomap/internal/ir"
	"nomap/internal/jit"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// Speculative-inlining acceptance tests. The inliner flattens monomorphic
// direct calls into the caller's IR under a depth/size budget, rewrites the
// flattened code's stack maps with inline-frame metadata, and leaves the
// callee guard in place. These tests pin the four promises the pass makes:
// it fires where it should (and only there), a deopt inside inlined code
// reconstructs the full frame stack, it removes the §V-C HadCalls blame
// from call-heavy transactions, and it is worth >= 20% of simulated cycles
// on the call-heavy suite.

// newInlineVM builds a NoMap-style engine with the inliner on or off.
func newInlineVM(arch vm.Arch, disableInlining bool) (*vm.VM, *jit.Backend) {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.Policy = harness.FastPolicy()
	cfg.DisableInlining = disableInlining
	v := vm.New(cfg)
	return v, jit.Attach(v)
}

// compiledFunc finds the cached artifact for the named function, preferring
// the invocation-entry artifact when both it and OSR artifacts exist.
func compiledFunc(b *jit.Backend, name string) *ir.Func {
	var osr *ir.Func
	for _, f := range b.CompiledFunctions() {
		if f.Name != name {
			continue
		}
		if f.OSREntryPC < 0 {
			return f
		}
		osr = f
	}
	return osr
}

// TestInliningFlattensMonomorphicCalls: the monomorphic call-heavy
// workloads must compile with flattened callees — C03's chain at depth 2 —
// while the polymorphic control compiles through its dispatch tree: both
// ways of the 2-way site inline behind their callee guards.
func TestInliningFlattensMonomorphicCalls(t *testing.T) {
	wantDepth := map[string]int{"C01": 1, "C02": 1, "C03": 2, "C04": 1}
	for _, id := range []string{"C01", "C02", "C03", "C04"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("unknown workload %s", id)
			}
			v, b := newInlineVM(vm.ArchNoMap, false)
			if _, err := v.Run(w.Source); err != nil {
				t.Fatalf("setup: %v", err)
			}
			for i := 0; i < 60; i++ {
				if _, err := v.CallGlobal("run"); err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
			}
			f := compiledFunc(b, "run")
			if f == nil {
				t.Fatal("run was never compiled to a speculative tier")
			}
			depth := 0
			for _, inf := range f.Inlines {
				if inf.Depth > depth {
					depth = inf.Depth
				}
			}
			if want := wantDepth[id]; depth != want {
				t.Errorf("max inline depth = %d (inlines %d), want %d", depth, len(f.Inlines), want)
			}
			if id == "C04" && len(f.Inlines) != 2 {
				t.Errorf("polymorphic site inlined %d activations, want 2 (one per dispatch way)", len(f.Inlines))
			}
		})
	}
}

// depthShot fails the first SMP-carrying check it sees at inline depth >= 2
// (an inline path with at least two "callee@pc" segments), then goes inert.
type depthShot struct {
	fired bool
	site  machine.Site
}

func (s *depthShot) At(site machine.Site) machine.Action {
	if s.fired || site.Kind != machine.SiteCheck || !site.HasSMP ||
		strings.Count(site.Inline, "/") < 1 {
		return machine.ActNone
	}
	s.fired = true
	s.site = site
	return machine.ActFailCheck
}

// inlineChainSrc is a single-invocation hot loop over a two-deep
// monomorphic call chain: the loop OSR-enters optimized code with inner
// inlined through outer, so a failed check inside inner sits at inline
// depth 2 and its deopt must reconstruct three frames (run, outer, inner)
// and resume each in the interpreter tiers.
const inlineChainSrc = `
function inner(a, b) { return ((a * b + 3) | 0) & 1023; }
function outer(a, b) { return inner(a, a + b) + inner(b, a + 1); }
function run() {
  var s = 0;
  for (var i = 0; i < 30000; i++) s = s + outer(i & 31, i & 15);
  return s;
}`

// TestInlineDepth2DeoptReconstruction forces a deopt at inline depth 2 and
// demands the reconstructed execution be indistinguishable from the pure
// interpreter: same result, and the root function's profile counters
// (invocations, back edges) exactly match — the back edges of the squashed
// iterations must roll back with the frames and be re-counted by the
// resumed interpreter frames, not lost or double-counted.
func TestInlineDepth2DeoptReconstruction(t *testing.T) {
	wantRes, _, interpVM := runSingleCall(t, inlineChainSrc, vm.ArchBase, profile.TierInterp)

	// ArchBase keeps every check's SMP (no transactions), so the injected
	// failure takes the multi-frame deopt path rather than a tx abort.
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchBase
	v := vm.New(cfg)
	b := jit.Attach(v)
	shot := &depthShot{}
	b.Machine().SetInjector(shot)
	if _, err := v.Run(inlineChainSrc); err != nil {
		t.Fatalf("setup: %v", err)
	}
	r, err := v.CallGlobal("run")
	if err != nil {
		t.Fatalf("run(): %v", err)
	}

	if !shot.fired {
		t.Fatal("no SMP check at inline depth >= 2 was ever executed; reconstruction untested")
	}
	t.Logf("injected deopt at %s", shot.site)
	if got := r.ToStringValue(); got != wantRes {
		t.Fatalf("result after depth-2 deopt = %q, want %q", got, wantRes)
	}
	if v.Counters().Deopts == 0 {
		t.Fatal("injected check failure produced no deopt")
	}
	want := profileOf(t, interpVM, "run")
	got := profileOf(t, v, "run")
	if got.InvocationCount != want.InvocationCount {
		t.Errorf("InvocationCount = %d through inline deopt, %d in interpreter",
			got.InvocationCount, want.InvocationCount)
	}
	if got.BackEdgeCount != want.BackEdgeCount {
		t.Errorf("BackEdgeCount = %d through inline deopt, %d in interpreter",
			got.BackEdgeCount, want.BackEdgeCount)
	}
	_ = b
}

// inlineAbortStorm fails an in-transaction check inside inlined code (an
// abort-converted site: no SMP, inline path non-empty) on every visit until
// its shot budget runs out. Driving one site past the governor's
// CheckAbortBudget forces a surgical SMP restoration keyed by inline path.
type inlineAbortStorm struct {
	shots int
	path  string
}

func (s *inlineAbortStorm) At(site machine.Site) machine.Action {
	if s.shots <= 0 || site.Kind != machine.SiteCheck || site.HasSMP ||
		!site.InTx || site.Inline == "" {
		return machine.ActNone
	}
	if s.path == "" {
		s.path = site.Inline
	} else if site.Inline != s.path {
		return machine.ActNone
	}
	s.shots--
	return machine.ActFailCheck
}

// TestGovernorInlinePathLedgerReset: an abort storm at one inlined site
// must land a keep-set entry and a site ledger keyed by the inline path —
// distinct from any same-pc site in the root code — and SetGovernorPolicy
// (the A/B reset surface) must clear those path-keyed ledgers along with
// everything else, exactly like the machine-attribution reset.
func TestGovernorInlinePathLedgerReset(t *testing.T) {
	w, ok := workloads.ByID("C01")
	if !ok {
		t.Fatal("C01 not registered")
	}
	v, b := newInlineVM(vm.ArchNoMap, false)
	storm := &inlineAbortStorm{shots: 6} // CheckAbortBudget(4) + slack
	b.Machine().SetInjector(storm)
	if _, err := v.Run(w.Source); err != nil {
		t.Fatalf("setup: %v", err)
	}
	for i := 0; i < 80; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if storm.shots > 0 {
		t.Fatalf("storm fired only %d of its shots; no inlined in-tx site was visited", 6-storm.shots)
	}
	var kept, ledgered bool
	for _, fr := range b.Governor().Report() {
		for _, s := range fr.Sites {
			if s.Site.Path == storm.path {
				ledgered = true
				kept = kept || s.Kept
			}
		}
	}
	if !ledgered {
		t.Fatalf("no governor site ledger keyed by inline path %q", storm.path)
	}
	if !kept {
		t.Errorf("abort storm at %q did not restore the site's SMP", storm.path)
	}

	b.SetGovernorPolicy(governor.DefaultPolicy(true))
	if rep := b.Governor().Report(); len(rep) != 0 {
		t.Errorf("inline-path ledgers survived SetGovernorPolicy: %+v", rep)
	}
	if keep := b.Governor().KeepSet("run"); keep != nil {
		t.Errorf("path-keyed keep set survived SetGovernorPolicy: %v", keep)
	}
}

// TestTraceGoldenInline pins the event stream of the depth-2 injected deopt:
// the compile events, the OSR entry, and — the point of the golden — the
// deopt event carrying its inline path, which is the trace-visible proof
// that the engine reconstructed a multi-depth frame stack.
func TestTraceGoldenInline(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchBase
	v := vm.New(cfg)
	b := jit.Attach(v)
	var lines []string
	b.Machine().SetTracer(func(e machine.Event) { lines = append(lines, e.String()) })
	b.Machine().SetInjector(&depthShot{})
	if _, err := v.Run(inlineChainSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := v.CallGlobal("run"); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "inline=") {
		t.Fatalf("trace shows no inline-path deopt:\n%s", joined)
	}
	checkGolden(t, "trace_inline.golden", lines)
}

// TestInliningCycleReduction is the headline perf claim: on the call-heavy
// suite, inlining must be worth at least 20% of steady-state simulated
// cycles (geomean) against the same engine with the pass disabled.
func TestInliningCycleReduction(t *testing.T) {
	steady := func(w workloads.Workload, disable bool) int64 {
		v, _ := newInlineVM(vm.ArchNoMap, disable)
		if _, err := v.Run(w.Source); err != nil {
			t.Fatalf("%s setup: %v", w.ID, err)
		}
		for i := 0; i < 60; i++ {
			if _, err := v.CallGlobal("run"); err != nil {
				t.Fatalf("%s warmup: %v", w.ID, err)
			}
		}
		v.ResetCounters()
		for i := 0; i < 10; i++ {
			if _, err := v.CallGlobal("run"); err != nil {
				t.Fatalf("%s measure: %v", w.ID, err)
			}
		}
		return v.Counters().TotalCycles()
	}
	logRatioSum, n := 0.0, 0
	for _, w := range workloads.CallHeavy() {
		off := steady(w, true)
		on := steady(w, false)
		t.Logf("%s (%s): %d cycles off, %d on (%.2fx)", w.ID, w.Name, off, on, float64(off)/float64(on))
		logRatioSum += math.Log(float64(off) / float64(on))
		n++
	}
	geomean := math.Exp(logRatioSum / float64(n))
	t.Logf("geomean speedup from inlining: %.2fx", geomean)
	if geomean < 1.25 { // 1/(1-0.20) = 1.25x
		t.Errorf("inlining geomean speedup %.2fx on the call-heavy suite, want >= 1.25x (20%% cycle reduction)", geomean)
	}
}

// TestInliningClearsCallBlame: C05's transactions overflow capacity while
// containing a call. Without inlining the first such abort carries §V-C
// HadCalls blame and pins the function to TxOff — steady state runs with no
// transactions at all. With inlining the call disappears from the
// transaction body, the blame counter stays zero, and the governor retreats
// through tiling, so steady state still commits (tiled) transactions.
func TestInliningClearsCallBlame(t *testing.T) {
	w, ok := workloads.ByID("C05")
	if !ok {
		t.Fatal("C05 not registered")
	}
	run := func(disable bool) *vm.VM {
		v, _ := newInlineVM(vm.ArchNoMap, disable)
		if _, err := v.Run(w.Source); err != nil {
			t.Fatalf("setup: %v", err)
		}
		for i := 0; i < 60; i++ {
			if _, err := v.CallGlobal("run"); err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		}
		return v
	}

	off := run(true)
	if n := off.Counters().TxCallBlamedAborts; n == 0 {
		t.Error("without inlining, no capacity abort carried HadCalls blame; the comparison is vacuous")
	}
	on := run(false)
	if n := on.Counters().TxCallBlamedAborts; n != 0 {
		t.Errorf("with inlining, %d capacity aborts still blamed a call inside the transaction, want 0", n)
	}

	// The blame difference must show up as policy: measure one steady-state
	// call after warm-up under each engine.
	off.ResetCounters()
	on.ResetCounters()
	if _, err := off.CallGlobal("run"); err != nil {
		t.Fatal(err)
	}
	if _, err := on.CallGlobal("run"); err != nil {
		t.Fatal(err)
	}
	if n := off.Counters().TxBegins; n != 0 {
		t.Errorf("without inlining, steady state still begins %d transactions; HadCalls should have pinned TxOff", n)
	}
	if n := on.Counters().TxCommits; n == 0 {
		t.Error("with inlining, steady state commits no transactions; expected a tiled-transaction regime")
	}
}
