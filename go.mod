module nomap

go 1.22
