// Package nomap is a Go reproduction of "NoMap: Speeding-Up JavaScript Using
// Hardware Transactional Memory" (HPCA 2019): a JavaScript-subset engine
// with a real multi-tier JIT (Interpreter → Baseline → DFG → FTL), simulated
// caches and hardware transactional memory, and the NoMap transformation —
// transactions around hot loops, Stack Map Points converted to aborts, and
// transaction-enabled check optimizations.
//
// Quick start:
//
//	eng := nomap.NewEngine(nomap.Options{Arch: nomap.ArchNoMap})
//	res, err := eng.Run(`
//	    function sum(a, n) { var s = 0; for (var i = 0; i < n; i++) s += a[i]; return s; }
//	    var arr = []; for (var i = 0; i < 1000; i++) arr[i] = i;
//	    var result = sum(arr, 1000);
//	`)
//
// Measurements (dynamic instructions by class, cycles, checks by category,
// transaction statistics) are available via Engine.Stats after a run.
package nomap

import (
	"fmt"

	"nomap/internal/bytecode"
	"nomap/internal/jit"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// Arch selects the evaluated architecture configuration (paper Table II).
type Arch = vm.Arch

// The six configurations of the paper's evaluation.
const (
	ArchBase     = vm.ArchBase
	ArchNoMapS   = vm.ArchNoMapS
	ArchNoMapB   = vm.ArchNoMapB
	ArchNoMap    = vm.ArchNoMap
	ArchNoMapBC  = vm.ArchNoMapBC
	ArchNoMapRTM = vm.ArchNoMapRTM
)

// AllArchs lists the six configurations in the paper's bar order.
var AllArchs = vm.AllArchs

// Tier identifies a compiler tier.
type Tier = profile.Tier

// Tier values (paper Figure 2).
const (
	TierInterp   = profile.TierInterp
	TierBaseline = profile.TierBaseline
	TierDFG      = profile.TierDFG
	TierFTL      = profile.TierFTL
)

// Options configures an Engine.
type Options struct {
	// Arch is the architecture configuration (default ArchBase).
	Arch Arch
	// MaxTier caps tier-up (default TierFTL).
	MaxTier Tier
	// Seed seeds Math.random deterministically (0 = default seed).
	Seed uint64
	// DisableIC turns off the polymorphic-inline-cache subsystem: dispatch
	// sites keep their generic runtime path. The A/B surface for measuring
	// what shape-guarded dispatch trees are worth.
	DisableIC bool
	// DisableBoxing turns off the NaN-boxed value pipeline: bytecode compiles
	// without superinstruction fusion, the interpreter routes every op
	// through the generic slow path, and the FTL memory model charges the
	// fat two-word value stride. The A/B surface for measuring what the
	// boxed representation is worth.
	DisableBoxing bool
}

// Value is a JavaScript value produced by the engine.
type Value = value.Value

// Stats is the measurement counter set of a run.
type Stats = stats.Counters

// Engine is one engine instance. Engines are not safe for concurrent use
// (JavaScript is single-threaded; that is what makes rollback-only HTM
// applicable, paper §IV-A).
type Engine struct {
	vm  *vm.VM
	jit *jit.Backend
}

// NewEngine creates an engine.
func NewEngine(opts Options) *Engine {
	cfg := vm.DefaultConfig()
	cfg.Arch = opts.Arch
	if opts.MaxTier != 0 {
		cfg.MaxTier = opts.MaxTier
	}
	if opts.Seed != 0 {
		cfg.RandomSeed = opts.Seed
	}
	cfg.DisableIC = opts.DisableIC
	cfg.DisableBoxing = opts.DisableBoxing
	v := vm.New(cfg)
	return &Engine{vm: v, jit: jit.Attach(v)}
}

// Run parses, compiles, and executes a program. It returns the value of the
// global variable "result" if the program defines one.
func (e *Engine) Run(src string) (Value, error) {
	return e.vm.Run(src)
}

// Compile parses and compiles a program for repeated execution.
func (e *Engine) Compile(src string) (*Program, error) {
	main, err := vm.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return &Program{main: main}, nil
}

// Program is a compiled program.
type Program struct {
	main *bytecode.Function
}

// RunProgram executes a previously compiled program.
func (e *Engine) RunProgram(p *Program) (Value, error) {
	return e.vm.RunMain(p.main)
}

// Call invokes a global function by name. Arguments are converted with
// ToValue.
func (e *Engine) Call(name string, args ...any) (Value, error) {
	vals := make([]value.Value, len(args))
	for i, a := range args {
		v, err := ToValue(a)
		if err != nil {
			return value.Undefined(), err
		}
		vals[i] = v
	}
	return e.vm.CallGlobal(name, vals...)
}

// Global reads a global variable.
func (e *Engine) Global(name string) Value { return e.vm.Globals().Get(name) }

// Output returns the lines printed by print() so far.
func (e *Engine) Output() []string { return e.vm.Output }

// Stats returns the engine's measurement counters.
func (e *Engine) Stats() *Stats { return e.vm.Counters() }

// TraceEvent is one execution event: transaction begin/commit/tile/abort,
// deoptimization, or compilation.
type TraceEvent = machine.Event

// SetTracer installs a callback receiving execution events (nil clears it).
// Useful for understanding when the engine forms, commits, and aborts
// transactions, and when functions move between tiers.
func (e *Engine) SetTracer(t func(TraceEvent)) {
	if t == nil {
		e.jit.Machine().SetTracer(nil)
		return
	}
	e.jit.Machine().SetTracer(machine.Tracer(t))
}

// ResetStats zeroes the counters (call between warm-up and measurement).
func (e *Engine) ResetStats() { e.vm.ResetCounters() }

// ToValue converts a Go value (nil, bool, int, float64, string) to an engine
// value.
func ToValue(a any) (Value, error) {
	switch x := a.(type) {
	case nil:
		return value.Null(), nil
	case bool:
		return value.Boolean(x), nil
	case int:
		return value.Number(float64(x)), nil
	case int32:
		return value.Int(x), nil
	case int64:
		return value.Number(float64(x)), nil
	case float64:
		return value.Number(x), nil
	case string:
		return value.Str(x), nil
	case value.Value:
		return x, nil
	}
	return value.Undefined(), fmt.Errorf("nomap: cannot convert %T to a JS value", a)
}
