package nomap

import (
	"strings"
	"testing"

	"nomap/internal/machine"
	"nomap/internal/oracle"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// Oracle acceptance tests: the fault-injection sweep must force an abort or
// deopt at every enumerated injection site — every speculation check, every
// transaction begin/commit/tile point, and chosen points of the transactional
// write footprint — under all six architecture configurations, with zero
// observable divergence from the pure interpreter, clean counter invariants,
// and ir.Verify holding after every optimization pass. Sweep itself records
// an "injection-missed" failure whenever a forced fault does not land or does
// not produce an abort/deopt, so rep.OK() covers the per-site obligation.

// oracleConfig keeps runs affordable: 16 calls still tier run() up to FTL
// under the harness fast policy because backedge-weighted counting dominates
// for loopy code.
func oracleConfig() oracle.Config {
	cfg := oracle.DefaultConfig()
	cfg.CapacityPoints = 2
	cfg.RandomTrials = 4
	return cfg
}

func checkReport(t *testing.T, rep *oracle.Report) {
	t.Helper()
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
	for _, ar := range rep.Archs {
		if len(ar.Sites) == 0 {
			t.Errorf("%v: no injection sites enumerated", ar.Arch)
		}
		if ar.InjectedAborts+ar.InjectedDeopts == 0 {
			t.Errorf("%v: sweep injected no aborts and no deopts", ar.Arch)
		}
	}
}

func TestOracleWorkloads(t *testing.T) {
	// X01 and X05 write to heap inside their hot loops, so their sweeps must
	// also exercise capacity injection; X06 is pure scalar computation and
	// legitimately has an empty transactional write footprint.
	wantWrites := map[string]bool{"X01": true, "X05": true}
	for _, id := range []string{"X01", "X05", "X06"} {
		t.Run(id, func(t *testing.T) {
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("unknown workload %s", id)
			}
			rep, err := oracle.Sweep(oracle.Program{
				Name:  w.ID,
				Setup: w.Source,
				Calls: 16,
			}, oracleConfig())
			if err != nil {
				t.Fatal(err)
			}
			checkReport(t, rep)
			// Transactional configurations must expose transaction-boundary
			// sites, not just checks.
			for _, ar := range rep.Archs {
				if !ar.Arch.UsesTransactions() {
					continue
				}
				kinds := map[machine.SiteKind]int{}
				for _, s := range ar.Sites {
					kinds[s.Key.Kind]++
				}
				if kinds[machine.SiteTxBegin] == 0 || kinds[machine.SiteTxCommit] == 0 {
					t.Errorf("%v: missing transaction boundary sites: %v", ar.Arch, kinds)
				}
				if wantWrites[id] && ar.WriteLines == 0 {
					t.Errorf("%v: empty transactional write footprint", ar.Arch)
				}
			}
			t.Logf("%s: %d sites, %d runs, %d injected aborts",
				rep.Program, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
		})
	}
}

// TestOracleInlinedSites sweeps the call-heavy workloads whose hot loops the
// inliner flattens: the recording run must enumerate sites carrying an
// inline path (code that used to be a callee's, now embedded in run's
// artifacts) — at depth 2 for the call chain — and the sweep then forces an
// abort or deopt at every one of them under all six configurations. A fault
// at an inlined site exercises the multi-depth frame reconstruction (SMP
// sites) and the transaction rollback across flattened frames (abort-
// converted sites), and the observable behaviour must match the pure
// interpreter throughout.
func TestOracleInlinedSites(t *testing.T) {
	wantChain := map[string]bool{"C03": true}
	for _, id := range []string{"C01", "C03"} {
		id := id
		t.Run(id, func(t *testing.T) {
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("unknown workload %s", id)
			}
			cfg := oracleConfig()
			cfg.CapacityPoints = 1
			cfg.RandomTrials = 2
			rep, err := oracle.Sweep(oracle.Program{
				Name:  w.ID,
				Setup: w.Source,
				Calls: 16,
			}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkReport(t, rep)
			for _, ar := range rep.Archs {
				inlined, depth2 := 0, 0
				for _, s := range ar.Sites {
					if s.Key.Inline == "" {
						continue
					}
					inlined++
					if strings.Contains(s.Key.Inline, "/") {
						depth2++
					}
				}
				if inlined == 0 {
					t.Errorf("%v: no inlined injection sites enumerated", ar.Arch)
				}
				if wantChain[id] && depth2 == 0 {
					t.Errorf("%v: call chain exposed no depth-2 inlined sites", ar.Arch)
				}
			}
			t.Logf("%s: %d sites, %d runs, %d injected aborts",
				rep.Program, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
		})
	}
}

// TestOracleOSREntry sweeps a program whose first call is a single long
// loop: it OSR-enters FTL mid-run, so the recording enumerates the OSR
// artifact's sites (Key.OSR = loop-header pc) alongside the invocation
// artifact's — including the transaction that begins at the OSR entry. The
// sweep then forces an abort or deopt at every one of them (a missed
// injection is a recorded failure), and all six configurations must agree
// with the interpreter throughout.
func TestOracleOSREntry(t *testing.T) {
	rep, err := oracle.Sweep(oracle.Program{
		Name: "osr-entry",
		Setup: `
var OC = new Array(64);
for (var i = 0; i < 64; i++) OC[i] = i;
function run() {
  var s = 0;
  for (var i = 0; i < 3000; i++) {
    OC[i & 63] = (OC[i & 63] + 1) | 0;
    s = s + OC[i & 63];
  }
  return s;
}`,
		Calls: 4,
	}, oracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	for _, ar := range rep.Archs {
		osrSites, osrBegins := 0, 0
		for _, s := range ar.Sites {
			if s.Key.OSR >= 0 {
				osrSites++
				if s.Key.Kind == machine.SiteTxBegin {
					osrBegins++
				}
			}
		}
		if osrSites == 0 {
			t.Errorf("%v: no OSR-artifact injection sites enumerated", ar.Arch)
		}
		if ar.Arch.UsesTransactions() && osrBegins == 0 {
			t.Errorf("%v: no transaction-begin site at the OSR entry", ar.Arch)
		}
	}
	t.Logf("osr-entry: %d sites, %d runs, %d injected aborts",
		rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
}

// TestOracleBoxing sweeps the boxed-heavy numeric workloads — programs that
// live almost entirely in the NaN-boxed register file, hitting the fused
// superinstruction fast paths in the bytecode tiers and boxed operand slots
// in FTL code — under all six architecture configurations with fault
// injection at every enumerated site. Any divergence from the pure
// interpreter (which also runs boxed) fails: deopt and abort must always
// rematerialize correct boxed frames.
func TestOracleBoxing(t *testing.T) {
	for _, id := range []string{"N01", "N04", "N05"} {
		t.Run(id, func(t *testing.T) {
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("unknown workload %s", id)
			}
			rep, err := oracle.Sweep(oracle.Program{
				Name:  w.ID,
				Setup: w.Source,
				Calls: 16,
			}, oracleConfig())
			if err != nil {
				t.Fatal(err)
			}
			checkReport(t, rep)
			t.Logf("%s: %d sites, %d runs, %d injected aborts",
				rep.Program, rep.TotalSites(), rep.TotalRuns(), rep.TotalInjectedAborts())
		})
	}
}

func TestOracleGeneratedPrograms(t *testing.T) {
	const programs = 50
	n := programs
	if testing.Short() {
		n = 8
	}
	cfg := oracleConfig()
	cfg.CapacityPoints = 1
	cfg.RandomTrials = 2
	sites, runs := 0, 0
	for seed := int64(1); seed <= int64(n); seed++ {
		g := oracle.Generate(seed)
		rep, err := oracle.Sweep(g.Program(40, 3, 16), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			for _, f := range rep.Failures {
				t.Errorf("seed %d: %s", seed, f)
			}
			t.Fatalf("seed %d diverged; program:\n%s\npoison: %s", seed, g.Render(), g.Poison)
		}
		sites += rep.TotalSites()
		runs += rep.TotalRuns()
	}
	t.Logf("%d generated programs: %d sites, %d runs, all six configs agree", n, sites, runs)
}

// TestOraclePlantedBug plants the paper's nightmare bug — a removed check
// that should have fired (here: check verdicts forced to pass) — and demands
// the oracle both catches the divergence and shrinks a failing generated
// program to a minimal reproducer.
func TestOraclePlantedBug(t *testing.T) {
	bug := oracle.NewPlantedBug()
	fails := func(g *oracle.GenSpec) bool {
		d, _ := oracle.DivergesUnderInjector(g.Program(40, 3, 16), vm.ArchNoMap, bug)
		return d
	}
	// Hunt failing seeds and reduce each; different seeds bottom out at
	// different sizes (a reproducer is 1-minimal once no single chunk can go,
	// and some failures need the whole array intact), so keep hunting until
	// one shrinks below the 20-line bar. The seed budget must cover several
	// divergent programs: which seeds trip the bug shifts whenever compiled
	// code shape changes (superinstruction fusion moved the first reducible
	// seed past 200).
	var found, red *oracle.GenSpec
	var seed, caught int64
	for s := int64(1); s <= 600 && red == nil; s++ {
		g := oracle.Generate(s)
		if !fails(g) {
			continue
		}
		caught++
		if r := oracle.Reduce(g, fails); r.LineCount() < 20 {
			found, red, seed = g, r, s
		}
	}
	if caught == 0 {
		t.Fatal("planted check-removal bug not caught by any of 600 generated programs")
	}
	if red == nil {
		t.Fatalf("bug caught by %d programs but none reduced below 20 lines", caught)
	}
	// The same program must be clean without the planted bug, so the
	// divergence is attributable to the bug alone.
	if d, detail := oracle.DivergesUnderInjector(found.Program(40, 3, 16), vm.ArchNoMap, nil); d {
		t.Fatalf("seed %d diverges even without the planted bug: %s", seed, detail)
	}
	if !fails(red) {
		t.Fatal("reducer returned a non-failing spec")
	}
	_, detail := oracle.DivergesUnderInjector(red.Program(40, 3, 16), vm.ArchNoMap, bug)
	t.Logf("seed %d shrunk %d→%d body chunks, %d→%d array inits (%d lines): %s",
		seed, len(found.Body), len(red.Body), len(found.ArrInit), len(red.ArrInit),
		red.LineCount(), detail)
}

// TestOracleCounterTamperDetected guards the guard: CheckCounters must flag
// a tampered accounting state, so a silent pass cannot hide a broken check.
func TestOracleCounterTamperDetected(t *testing.T) {
	c := &stats.Counters{}
	if err := oracle.CheckCounters(c); err != nil {
		t.Fatalf("zero counters flagged: %v", err)
	}
	c.TxBegins = 3
	c.TxCommits = 2
	if err := oracle.CheckCounters(c); err == nil {
		t.Error("transaction leak not detected")
	}
	// An abort with no recorded cause must be flagged: the per-cause ledger
	// has to partition the total exactly.
	c.TxAborts = 1
	if err := oracle.CheckCounters(c); err == nil {
		t.Error("causeless abort not detected")
	}
	c.TxCheckAborts = 1
	if err := oracle.CheckCounters(c); err != nil {
		t.Fatalf("balanced counters flagged: %v", err)
	}
	// Squashed cycles exceeding in-transaction cycles means wasted work was
	// invented out of thin air.
	c.CyclesSquashed = 5
	if err := oracle.CheckCounters(c); err == nil {
		t.Error("squashed > TM cycles not detected")
	}
	c.CyclesTM = 10
	if err := oracle.CheckCounters(c); err == nil {
		t.Error("unattributed squashed cycles not detected")
	}
	c.CyclesSquashedBy[0] = 5
	if err := oracle.CheckCounters(c); err != nil {
		t.Fatalf("balanced squash ledger flagged: %v", err)
	}
	c.Deopts = -1
	if err := oracle.CheckCounters(c); err == nil {
		t.Error("negative counter not detected")
	}
}
