package nomap

// Property-based differential testing: pseudo-random programs from a small
// generator grammar must produce identical results in the interpreter and
// in the FTL tier under every NoMap configuration. The generator biases
// toward the paper's speculation surface: int32 arithmetic near overflow
// boundaries, array loops, object property accumulation, and mixed-type
// corner cases.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genProgram builds a deterministic random program from seed. It always
// defines run() and drives it hot enough to reach FTL.
func genProgram(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder

	// Globals: a couple of arrays and an object.
	arrLen := 8 + r.Intn(56)
	fmt.Fprintf(&sb, "var ga = [];\n")
	for i := 0; i < arrLen; i++ {
		switch r.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "ga[%d] = %d.5;\n", i, r.Intn(100))
		default:
			fmt.Fprintf(&sb, "ga[%d] = %d;\n", i, r.Intn(1<<20)-1<<19)
		}
	}
	fmt.Fprintf(&sb, "var gobj = {acc: 0, scale: %d, bias: %d};\n", 1+r.Intn(5), r.Intn(9))

	// Expression generator over the in-scope int variables.
	vars := []string{"s", "i", "t"}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 {
			switch r.Intn(6) {
			case 0:
				return fmt.Sprintf("%d", r.Intn(2048)-1024)
			case 1:
				return "ga[i % " + fmt.Sprint(arrLen) + "]"
			case 2:
				return "gobj.scale"
			case 3:
				return "gobj.bias"
			default:
				return vars[r.Intn(len(vars))]
			}
		}
		ops := []string{"+", "-", "*", "&", "|", "^", "%"}
		op := ops[r.Intn(len(ops))]
		l, rr := expr(depth-1), expr(depth-1)
		if op == "%" {
			return fmt.Sprintf("((%s) %% (%s | 1))", l, rr) // avoid %0 noise
		}
		return fmt.Sprintf("((%s) %s (%s))", l, op, rr)
	}

	fmt.Fprintf(&sb, "function run(n) {\n  var s = 0, t = %d;\n", r.Intn(100))
	fmt.Fprintf(&sb, "  for (var i = 0; i < n; i++) {\n")
	stmts := 1 + r.Intn(3)
	for k := 0; k < stmts; k++ {
		switch r.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "    s = (s + %s) | 0;\n", expr(2))
		case 1:
			fmt.Fprintf(&sb, "    t = %s;\n", expr(2))
		case 2:
			fmt.Fprintf(&sb, "    gobj.acc = gobj.acc + (%s) %% 1000;\n", expr(1))
		case 3:
			fmt.Fprintf(&sb, "    if ((%s) > 0) { s = s + 1; } else { s = s - 1; }\n", expr(1))
		case 4:
			fmt.Fprintf(&sb, `    switch ((%s) & 3) {
    case 0: s += 3; break;
    case 1: s -= 1;
    case 2: t = (t + 7) | 0; break;
    default: s ^= 5;
    }
`, expr(1))
		default:
			fmt.Fprintf(&sb, "    ga[i %% %d] = (%s) %% 100000;\n", arrLen, expr(1))
		}
	}
	fmt.Fprintf(&sb, "  }\n  return (s + t + gobj.acc) %% 1000000007;\n}\n")
	// gobj.acc and ga mutate across calls, which is fine: every engine
	// executes the identical call sequence from identical initial state.
	return sb.String()
}

func runSeq(t *testing.T, opts Options, src string, calls, n int) []string {
	t.Helper()
	eng := NewEngine(opts)
	if _, err := eng.Run(src); err != nil {
		t.Fatalf("setup: %v\n%s", err, src)
	}
	out := make([]string, calls)
	for i := 0; i < calls; i++ {
		v, err := eng.Call("run", n)
		if err != nil {
			t.Fatalf("call %d: %v\n%s", i, err, src)
		}
		out[i] = v.ToStringValue()
	}
	return out
}

// FuzzDifferential is the native fuzzing entry point over the same grammar:
// the fuzzer explores generator seeds, and every generated program must
// behave identically in the interpreter and in full NoMap FTL configurations.
// The committed corpus under testdata/fuzz/FuzzDifferential seeds the search.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := genProgram(seed)
		const calls, n = 700, 40
		want := runSeq(t, Options{MaxTier: TierInterp}, src, calls, n)
		for _, arch := range []Arch{ArchNoMap, ArchNoMapBC, ArchNoMapRTM} {
			got := runSeq(t, Options{MaxTier: TierFTL, Arch: arch}, src, calls, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d arch %v call %d: got %q want %q\nprogram:\n%s",
						seed, arch, i, got[i], want[i], src)
				}
			}
		}
	})
}

func TestFuzzDifferential(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			src := genProgram(seed)
			const calls, n = 700, 40
			want := runSeq(t, Options{MaxTier: TierInterp}, src, calls, n)
			for _, arch := range []Arch{ArchBase, ArchNoMap, ArchNoMapBC, ArchNoMapRTM} {
				got := runSeq(t, Options{MaxTier: TierFTL, Arch: arch}, src, calls, n)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("arch %v call %d: got %q want %q\nprogram:\n%s",
							arch, i, got[i], want[i], src)
					}
				}
			}
		})
	}
}
