package nomap

// NaN-box round-trip fuzzing: every value.Kind must survive Box → Unbox with
// its kind and payload intact. Doubles are the delicate case — the box IS the
// double's bit pattern, so the fuzzer drives raw bits at the boxer looking
// for patterns that collide with the tag space. The invariants:
//
//   - Non-NaN doubles round-trip bit-exactly (including -0.0, subnormals,
//     and the infinities).
//   - Every NaN input unboxes as a NaN double: the payload is canonicalized
//     (a hardware-produced NaN could otherwise alias a tag), but NaN-ness is
//     never lost and never becomes a different kind.
//   - Int32s round-trip under their own tag for every value, including the
//     boundaries — kind observability at tier edges (int vs double) is part
//     of the contract.
//   - The singletons (undefined, null, the hole marker) and booleans map to
//     their fixed encodings and back.
//   - Strings and objects round-trip through the per-isolate handle slab to
//     the same referent.

import (
	"math"
	"testing"

	"nomap/internal/value"
)

func FuzzBox(f *testing.F) {
	// Boundary doubles: zeros, subnormals, infinities, NaN payload shapes
	// (quiet, signaling-style, sign-flipped, payload bits that mimic tags).
	seeds := []uint64{
		0x0000000000000000, // +0.0
		0x8000000000000000, // -0.0
		0x0000000000000001, // smallest subnormal
		0x7FEFFFFFFFFFFFFF, // largest finite
		0x7FF0000000000000, // +Inf
		0xFFF0000000000000, // -Inf
		0x7FF8000000000000, // canonical quiet NaN
		0x7FF0000000000001, // signaling-style NaN
		0xFFF8000000000000, // negative quiet NaN
		0xFFF9000000000007, // NaN whose payload collides with the int32 tag
		0xFFFF00000000002A, // NaN whose payload collides with the object tag
		0x3FF0000000000000, // 1.0
		0xC000000000000000, // -2.0
	}
	for _, bits := range seeds {
		f.Add(bits, int32(0))
	}
	// Int32 boundaries ride along on the second parameter.
	for _, i := range []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 42, -42} {
		f.Add(uint64(0), i)
	}

	f.Fuzz(func(t *testing.T, bits uint64, i int32) {
		h := value.NewHandles()

		// Double round trip from raw bits.
		d := math.Float64frombits(bits)
		b := value.BoxDouble(d)
		got := h.Unbox(b)
		if got.Kind() != value.KindDouble {
			t.Fatalf("BoxDouble(%#x): unboxed kind %v, want double", bits, got.Kind())
		}
		gf := got.Float()
		if math.IsNaN(d) {
			if !math.IsNaN(gf) {
				t.Fatalf("BoxDouble(NaN %#x) round-tripped to %v", bits, gf)
			}
		} else if math.Float64bits(gf) != bits {
			t.Fatalf("BoxDouble(%#x) round-tripped to %#x", bits, math.Float64bits(gf))
		}
		// Sign of zero survives.
		if d == 0 && !math.IsNaN(d) && math.Signbit(d) != math.Signbit(gf) {
			t.Fatalf("zero sign lost: in %v out %v", d, gf)
		}

		// Int32 round trip, with kind observability.
		bi := value.BoxInt(i)
		if !bi.IsInt32() || bi.Int32() != i {
			t.Fatalf("BoxInt(%d): IsInt32=%v Int32=%d", i, bi.IsInt32(), bi.Int32())
		}
		gi := h.Unbox(bi)
		if gi.Kind() != value.KindInt32 || gi.Int32() != i {
			t.Fatalf("BoxInt(%d) unboxed as %v", i, gi)
		}

		// Full Value round trip across every kind.
		vals := []value.Value{
			value.Undefined(),
			value.Null(),
			value.Hole(),
			value.Boolean(true),
			value.Boolean(false),
			value.Int(i),
			value.Double(d),
			value.Number(d),
			value.Str("s"),
		}
		for _, v := range vals {
			rt := h.Unbox(h.Box(v))
			if rt.Kind() != v.Kind() {
				t.Fatalf("kind changed: %v -> %v", v.Kind(), rt.Kind())
			}
			switch v.Kind() {
			case value.KindBool:
				if rt.Bool() != v.Bool() {
					t.Fatalf("bool payload changed: %v -> %v", v, rt)
				}
			case value.KindInt32:
				if rt.Int32() != v.Int32() {
					t.Fatalf("int payload changed: %v -> %v", v, rt)
				}
			case value.KindDouble:
				vb, rb := math.Float64bits(v.Float()), math.Float64bits(rt.Float())
				if vb != rb && !(math.IsNaN(v.Float()) && math.IsNaN(rt.Float())) {
					t.Fatalf("double payload changed: %#x -> %#x", vb, rb)
				}
			case value.KindString:
				if rt.StringVal() != v.StringVal() {
					t.Fatalf("string payload changed: %q -> %q", v.StringVal(), rt.StringVal())
				}
			}
		}

		// Objects round-trip to the same referent through the handle slab.
		shapes := value.NewShapeTable()
		o := value.NewObject(shapes)
		bo := h.Box(value.Obj(o))
		if !bo.IsObject() {
			t.Fatal("object box lost its tag")
		}
		if h.ObjectOrNil(bo) != o {
			t.Fatal("object handle resolved to a different referent")
		}
		if back := h.Unbox(bo); back.Kind() != value.KindObject || back.Object() != o {
			t.Fatalf("object round trip changed referent")
		}

		// The hole marker stays engine-internal and distinct from undefined.
		if value.BoxedHole == value.BoxedUndefined {
			t.Fatal("hole and undefined share an encoding")
		}
		if !value.BoxedHole.IsHole() || value.BoxedUndefined.IsHole() {
			t.Fatal("IsHole misclassifies the singletons")
		}
	})
}
