package nomap

import (
	"strings"
	"testing"
)

// The tracer must observe the full lifecycle: compiles up the tiers,
// transaction begins and commits in steady state, and an abort with its
// cause when speculation fails.
func TestTracerObservesLifecycle(t *testing.T) {
	eng := NewEngine(Options{Arch: ArchNoMap})
	var events []TraceEvent
	eng.SetTracer(func(e TraceEvent) { events = append(events, e) })

	src := `
var a = [];
for (var i = 0; i < 32; i++) a[i] = i;
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += a[i];
  return s;
}
`
	if _, err := eng.Run(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		if _, err := eng.Call("run", 32); err != nil {
			t.Fatal(err)
		}
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind.String()]++
	}
	for _, want := range []string{"compile", "tx-begin", "tx-commit"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events; saw %v", want, kinds)
		}
	}
	if kinds["tx-abort"] != 0 {
		t.Errorf("unexpected aborts during clean run: %v", kinds)
	}

	// Poison the array: the next hot call must produce an abort event with
	// a type-check cause.
	if _, err := eng.Run(`a[10] = "boom";`); err != nil {
		t.Fatal(err)
	}
	events = events[:0]
	if _, err := eng.Call("run", 32); err != nil {
		t.Fatal(err)
	}
	sawAbort := false
	for _, e := range events {
		if e.Kind.String() == "tx-abort" {
			sawAbort = true
			s := e.String()
			if !strings.Contains(s, "cause=check") {
				t.Errorf("abort event missing cause: %s", s)
			}
		}
	}
	if !sawAbort {
		t.Error("no abort event after poisoning the array")
	}

	// Clearing the tracer stops events.
	eng.SetTracer(nil)
	n := len(events)
	if _, err := eng.Call("run", 32); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Error("events delivered after tracer cleared")
	}
}
