package nomap

// Differential fuzzing of the shared-heap executor: random workloads from a
// bounded decoder must reach the single-threaded reference state on every
// architecture configuration under a fuzzer-chosen schedule seed. The
// decoder's op vocabulary is restricted to operations that are final-state
// commutative under any interleaving (counter and stripe increments, and
// section-locally balanced push/pop pairs), so any divergence the fuzzer
// finds is an executor bug — conflict detection, rollback, or fallback
// mutual exclusion — never a script artifact.

import (
	"fmt"
	"testing"

	"nomap/internal/machine"
	"nomap/internal/vm"
)

// decodeSharedWorkload builds a workload from fuzz bytes. Every byte stream
// decodes to either nil (too short) or a valid workload that satisfies the
// machine.SharedWorkload determinism contract.
func decodeSharedWorkload(data []byte) *machine.SharedWorkload {
	if len(data) == 0 {
		return nil
	}
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	wl := &machine.SharedWorkload{
		Name: "fuzz",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclCounter, Name: "c0"},
			{Kind: machine.DeclCounter, Name: "c1"},
			{Kind: machine.DeclMap, Name: "m0", Arg: 2},
			// Pushes are always popped within their own section, so the
			// queue never outgrows a small ring and never blocks.
			{Kind: machine.DeclQueue, Name: "q0", Arg: 8},
		},
	}
	workers := 1 + int(next())%3
	for w := 0; w < workers; w++ {
		script := machine.SharedScript{Rounds: 1 + int(next())%4}
		sections := 1 + int(next())%3
		for s := 0; s < sections; s++ {
			var sec machine.SharedSection
			ops := 1 + int(next())%3
			for o := 0; o < ops; o++ {
				switch next() % 4 {
				case 0:
					sec = append(sec, machine.SharedOp{
						Kind: machine.OpAdd, Target: fmt.Sprintf("c%d", next()%2),
						Imm: 1 + int64(next()%5)})
				case 1:
					sec = append(sec, machine.SharedOp{
						Kind: machine.OpMapAdd, Target: "m0",
						Key: fmt.Sprintf("k%d", next()%4), Rotate: next()%2 == 0,
						Imm: 1 + int64(next()%3)})
				case 2:
					v := int64(next())
					sec = append(sec,
						machine.SharedOp{Kind: machine.OpPush, Target: "q0", Imm: v},
						machine.SharedOp{Kind: machine.OpPop, Target: "q0"})
				case 3:
					sec = append(sec, machine.SharedOp{
						Kind: machine.OpAdd, Target: "c0", Imm: -int64(next() % 7)})
				}
			}
			script.Sections = append(script.Sections, sec)
		}
		wl.Workers = append(wl.Workers, script)
	}
	return wl
}

func sumAccs(accs []int64) int64 {
	var s int64
	for _, a := range accs {
		s += a
	}
	return s
}

func FuzzSharedHeap(f *testing.F) {
	f.Add([]byte{2, 1, 2, 2, 0, 0, 1, 1, 2, 9}, int64(1))
	f.Add([]byte{3, 2, 1, 3, 2, 40, 1, 3, 0, 1, 1, 0, 2}, int64(7))
	f.Add([]byte{1, 4, 3, 3, 0, 0, 4, 1, 1, 1, 2, 200, 3, 5}, int64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		wl := decodeSharedWorkload(data)
		if wl == nil {
			t.Skip()
		}
		ref, err := machine.RunReference(wl)
		if err != nil {
			t.Fatalf("decoder produced a workload the reference cannot run: %v", err)
		}
		for _, arch := range []vm.Arch{vm.ArchBase, vm.ArchNoMap, vm.ArchNoMapRTM} {
			res, err := machine.RunScheduled(wl, arch, seed, machine.SharedOptions{})
			if err != nil {
				t.Fatalf("%v: %v", arch, err)
			}
			if res.Snapshot != ref.Snapshot {
				t.Errorf("%v: shared heap %q, reference %q", arch, res.Snapshot, ref.Snapshot)
			}
			// Individual accumulators may be partitioned differently when
			// several workers pop one queue, but the popped total is exact.
			if got, want := sumAccs(res.Accs), sumAccs(ref.Accs); got != want {
				t.Errorf("%v: accumulator total %d, reference %d", arch, got, want)
			}
			c := res.Merged
			if c.TxBegins != c.TxCommits+c.TxAborts {
				t.Errorf("%v: tx leak: %d begins, %d commits, %d aborts",
					arch, c.TxBegins, c.TxCommits, c.TxAborts)
			}
			if sub := c.TxCapacityAborts + c.TxCheckAborts + c.TxSOFAborts +
				c.TxIrrevocableAborts + c.TxConflictAborts; sub != c.TxAborts {
				t.Errorf("%v: abort causes (%d) do not partition aborts (%d)", arch, sub, c.TxAborts)
			}
		}
	})
}
