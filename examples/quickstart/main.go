// Quickstart: run a JavaScript program under the NoMap architecture and
// inspect the engine's measurements.
package main

import (
	"fmt"
	"log"

	"nomap"
)

func main() {
	eng := nomap.NewEngine(nomap.Options{Arch: nomap.ArchNoMap})

	result, err := eng.Run(`
function sumSquares(n) {
  var s = 0;
  for (var i = 1; i <= n; i++) s += i * i;
  return s;
}
// Call it enough times that the function climbs the tiers:
// Interpreter -> Baseline -> DFG -> FTL (with NoMap transactions).
var r = 0;
for (var k = 0; k < 2000; k++) r = sumSquares(500);
print("sum of squares 1..500 =", r);
var result = r;
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range eng.Output() {
		fmt.Println(line)
	}
	fmt.Println("result:", result)

	s := eng.Stats()
	fmt.Printf("dynamic instructions: %d (TMOpt %d, i.e. optimized code inside transactions)\n",
		s.TotalInstr(), s.Instr[3])
	fmt.Printf("transactions: %d commits, %d aborts\n", s.TxCommits, s.TxAborts)
	fmt.Printf("FTL checks executed: %d\n", s.TotalChecks())
}
