// Hotloop reproduces the paper's running example (Figure 4): a loop that
// accumulates an object's array into one of its properties. It runs the
// same program under all six architecture configurations and prints the
// steady-state instruction counts, showing the progression the paper
// describes — SMP-guarding checks in Base, transactions plus code motion in
// NoMap_S, combined bounds checks in NoMap_B, and SOF overflow removal in
// NoMap.
package main

import (
	"fmt"
	"log"

	"nomap"
)

const figure4 = `
var obj = {values: [], sum: 0};
for (var i = 0; i < 200; i++) obj.values[i] = i * 3;

function run() {
  obj.sum = 0;
  var len = obj.values.length;
  for (var idx = 0; idx < len; idx++) {
    obj.sum += obj.values[idx];
  }
  return obj.sum;
}
`

func main() {
	var base int64
	fmt.Println("Paper Figure 4: obj.sum accumulation loop, steady state, 50 calls")
	fmt.Println()
	for _, arch := range nomap.AllArchs {
		eng := nomap.NewEngine(nomap.Options{Arch: arch})
		if _, err := eng.Run(figure4); err != nil {
			log.Fatal(err)
		}
		// Warm to FTL.
		for i := 0; i < 700; i++ {
			if _, err := eng.Call("run"); err != nil {
				log.Fatal(err)
			}
		}
		eng.ResetStats()
		var result nomap.Value
		for i := 0; i < 50; i++ {
			r, err := eng.Call("run")
			if err != nil {
				log.Fatal(err)
			}
			result = r
		}
		s := eng.Stats()
		if arch == nomap.ArchBase {
			base = s.TotalInstr()
		}
		fmt.Printf("%-9v result=%v  instructions=%8d (%.3fx of Base)  checks=%6d  commits=%d\n",
			arch, result, s.TotalInstr(), float64(s.TotalInstr())/float64(base),
			s.TotalChecks(), s.TxCommits)
	}
	fmt.Println()
	fmt.Println("Base keeps every SMP-guarding check in the loop; NoMap's transactions let")
	fmt.Println("the compiler hoist the shape/array checks, sink the obj.sum store, combine")
	fmt.Println("the bounds checks, and eliminate the overflow checks via the SOF (paper §IV).")
}
