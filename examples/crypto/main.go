// Crypto runs a Kraken-style SHA-256 workload and compares the Base and
// NoMap configurations, demonstrating the overflow-check pressure of
// integer-heavy crypto kernels (paper Figure 3: overflow checks are the
// largest category) and the Sticky Overflow Flag's effect on them.
package main

import (
	"fmt"
	"log"

	"nomap"
)

const sha = `
var K = new Array(64);
for (var i = 0; i < 64; i++) K[i] = ((i + 1) * 0x428A2F98) | 0;
var W = new Array(64);

function compress(blocks) {
  var h0 = 0x6A09E667 | 0, h1 = 0xBB67AE85 | 0;
  for (var blk = 0; blk < blocks; blk++) {
    for (var t = 0; t < 16; t++) W[t] = (blk * 64 + t * 3) | 0;
    for (var t2 = 16; t2 < 64; t2++) {
      var a = W[t2 - 2], b = W[t2 - 15];
      var s1 = ((a >>> 17) | (a << 15)) ^ (a >>> 10);
      var s0 = ((b >>> 7) | (b << 25)) ^ (b >>> 3);
      W[t2] = (s1 + W[t2 - 7] + s0 + W[t2 - 16]) | 0;
    }
    var x = h0, y = h1;
    for (var t3 = 0; t3 < 64; t3++) {
      var tmp = (x + ((y >>> 6) | (y << 26)) + K[t3] + W[t3]) | 0;
      x = y; y = tmp;
    }
    h0 = (h0 + x) | 0; h1 = (h1 + y) | 0;
  }
  return h0 ^ h1;
}
function run() { return compress(24); }
`

func measure(arch nomap.Arch) (*nomap.Stats, nomap.Value) {
	eng := nomap.NewEngine(nomap.Options{Arch: arch})
	if _, err := eng.Run(sha); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		if _, err := eng.Call("run"); err != nil {
			log.Fatal(err)
		}
	}
	eng.ResetStats()
	var r nomap.Value
	for i := 0; i < 40; i++ {
		var err error
		r, err = eng.Call("run")
		if err != nil {
			log.Fatal(err)
		}
	}
	return eng.Stats(), r
}

func main() {
	base, r1 := measure(nomap.ArchBase)
	nm, r2 := measure(nomap.ArchNoMap)
	if r1.ToStringValue() != r2.ToStringValue() {
		log.Fatalf("results diverge: %v vs %v", r1, r2)
	}
	fmt.Printf("SHA-256-style kernel, digest %v\n\n", r1)
	fmt.Printf("%-22s %12s %12s\n", "", "Base", "NoMap")
	fmt.Printf("%-22s %12d %12d\n", "dynamic instructions", base.TotalInstr(), nm.TotalInstr())
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.TotalCycles(), nm.TotalCycles())
	fmt.Printf("%-22s %12d %12d\n", "overflow checks", base.Checks[1], nm.Checks[1])
	fmt.Printf("%-22s %12d %12d\n", "bounds checks", base.Checks[0], nm.Checks[0])
	fmt.Printf("%-22s %12d %12d\n", "tx commits", base.TxCommits, nm.TxCommits)
	fmt.Printf("\nNoMap: %.1f%% fewer instructions, %.1f%% less time\n",
		100*(1-float64(nm.TotalInstr())/float64(base.TotalInstr())),
		100*(1-float64(nm.TotalCycles())/float64(base.TotalCycles())))
}
