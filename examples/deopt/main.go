// Deopt demonstrates the two recovery paths of the system: a plain
// deoptimization (a type check fails in FTL code outside a transaction) and
// a transactional abort (a check converted to an abort fails inside a
// transaction, rolling back the write set and re-executing the loop in the
// Baseline tier — the paper's Figure 5 execution).
package main

import (
	"fmt"
	"log"

	"nomap"
)

const program = `
var data = [];
for (var i = 0; i < 100; i++) data[i] = i;

function sum(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += a[i];
  return s;
}
`

func main() {
	eng := nomap.NewEngine(nomap.Options{Arch: nomap.ArchNoMap})
	if _, err := eng.Run(program); err != nil {
		log.Fatal(err)
	}

	// Phase 1: warm sum() on int32 data until it is FTL-compiled with
	// int32 speculation and transactions.
	for i := 0; i < 700; i++ {
		if _, err := eng.Call("sum", eng.Global("data"), 100); err != nil {
			log.Fatal(err)
		}
	}
	warm := *eng.Stats()
	fmt.Printf("after warm-up: %d FTL calls, %d tx commits, %d aborts, %d deopts\n",
		warm.FTLCalls, warm.TxCommits, warm.TxAborts, warm.Deopts)

	// Phase 2: poison the array with a double. The next FTL execution's
	// element-type speculation fails INSIDE the transaction; the check,
	// converted to an abort by NoMap, rolls the transaction back and
	// Baseline re-executes the whole loop (paper Figure 5: Entry3).
	if _, err := eng.Run(`data[50] = 0.5;`); err != nil {
		log.Fatal(err)
	}
	r, err := eng.Call("sum", eng.Global("data"), 100)
	if err != nil {
		log.Fatal(err)
	}
	after := *eng.Stats()
	fmt.Printf("poisoned element -> result %v (expected 4900.5: 4950 - 50 + 0.5)\n", r)
	fmt.Printf("aborts now %d (was %d): the transaction rolled back and Baseline re-ran the loop\n",
		after.TxAborts, warm.TxAborts)

	// Phase 3: keep calling; the engine recompiles with double arithmetic
	// and returns to transactional FTL execution without further aborts.
	for i := 0; i < 50; i++ {
		if _, err := eng.Call("sum", eng.Global("data"), 100); err != nil {
			log.Fatal(err)
		}
	}
	final := *eng.Stats()
	fmt.Printf("after recompilation: %d commits (+%d), aborts still %d — steady state restored\n",
		final.TxCommits, final.TxCommits-after.TxCommits, final.TxAborts)

	if final.TxAborts >= after.TxAborts+25 {
		log.Fatal("engine failed to stabilize after the type change")
	}
	fmt.Println("OK: misspeculation handled by abort + reprofile + recompile, results stayed exact")
}
