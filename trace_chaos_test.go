package nomap

import (
	"errors"
	"strings"
	"testing"

	"nomap/internal/chaos"
	"nomap/internal/governor"
	"nomap/internal/pool"
	"nomap/internal/vm"
)

// TestTraceGoldenChaos pins the serving layer's full recovery event stream —
// crash → quarantine → replace → degrade, retry, retirement, the probe/
// repromote climb back, and a snapshot-integrity reject — for a fixed chaos
// plan against a one-worker pool. Everything in the stream is deterministic
// (seeded backoff, occurrence-indexed faults, no wall-clock), so any drift
// is a recovery-policy change: a ladder rung moving, an event reordering, a
// retry decision flipping. Run with -update to accept an intended change.
func TestTraceGoldenChaos(t *testing.T) {
	progA := `
function run(n) { return n + 1; }
`
	progB := `
function run(n) { return n * 2; }
`
	progC := `
var acc = 0;
function run(n) { acc = acc + n; return acc; }
`

	plan := chaos.NewPlan(1,
		chaos.At(chaos.KindPanic, 1),           // req1 attempt 1: crash, retry succeeds
		chaos.At(chaos.KindPanic, 6),           // req5 (non-idempotent): crash, no retry
		chaos.At(chaos.KindPanic, 7),           // req6: second crash retires the fingerprint
		chaos.At(chaos.KindSnapshotCorrupt, 1), // progC's first warm start is corrupt
	)
	var lines []string
	p := pool.New(pool.Config{
		Workers: 1,
		VM:      servingConfig(vm.ArchNoMap),
		Resilience: governor.ResiliencePolicy{
			TripThreshold:      1, // every fault steps the ladder down a rung
			RetireAfterCrashes: 2,
			RepromoteWindow:    2,
			Seed:               1,
		},
		Chaos:  plan,
		Tracer: func(e pool.Event) { lines = append(lines, e.String()) },
	})
	defer p.Close()

	// req1: the injected crash is contained, the isolate replaced, the fleet
	// ceiling steps FTL→DFG, and the retry serves the request successfully.
	resp := p.Do(pool.Request{Source: progA, Calls: 2, Arg: 3})
	if resp.Err != nil || resp.Attempts != 2 {
		t.Fatalf("req1: err=%v attempts=%d, want success on attempt 2", resp.Err, resp.Attempts)
	}
	// req2-4: clean traffic earns a probe back to FTL and proves it.
	for i := 0; i < 3; i++ {
		if resp := p.Do(pool.Request{Source: progA, Calls: 2, Arg: 3}); resp.Err != nil {
			t.Fatalf("clean req %d: %v", i+2, resp.Err)
		}
	}
	// req5-6: a deterministic crasher marked non-idempotent is never retried;
	// its second crash retires the (program, site) fingerprint and the two
	// ladder charges sink the ceiling to Baseline.
	for i := 0; i < 2; i++ {
		resp := p.Do(pool.Request{Source: progB, Calls: 2, Arg: 5, NonIdempotent: true})
		if !errors.Is(resp.Err, pool.ErrIsolateCrash) || resp.Attempts != 1 {
			t.Fatalf("crasher %d: err=%v attempts=%d, want one contained crash", i+5, resp.Err, resp.Attempts)
		}
	}
	// req7: the retired fingerprint fails fast without burning an isolate —
	// and without emitting any event.
	resp = p.Do(pool.Request{Source: progB, Calls: 2, Arg: 5, NonIdempotent: true})
	var ce *pool.CrashError
	if !errors.As(resp.Err, &ce) || !ce.Retired {
		t.Fatalf("retired program: err=%v, want fail-fast retired CrashError", resp.Err)
	}
	// Clean tail: eight completions climb the ladder back rung by rung
	// (probe DFG, prove it, probe FTL, prove it).
	for i := 0; i < 8; i++ {
		if resp := p.Do(pool.Request{Source: progA, Calls: 2, Arg: 3}); resp.Err != nil {
			t.Fatalf("tail req %d: %v", i, resp.Err)
		}
	}
	// progC is large enough to snapshot; its second serve draws the corrupt
	// warm start, which the integrity seal rejects — served cold, identical.
	first := p.Do(pool.Request{Source: progC, Calls: 12, Arg: 1})
	second := p.Do(pool.Request{Source: progC, Calls: 12, Arg: 1})
	if first.Err != nil || second.Err != nil {
		t.Fatalf("progC: %v / %v", first.Err, second.Err)
	}
	if second.Warm {
		t.Fatal("progC second serve restored a corrupt snapshot")
	}
	if strings.Join(first.Results, ",") != strings.Join(second.Results, ",") {
		t.Fatalf("cold re-serve diverged: %v vs %v", first.Results, second.Results)
	}

	if !plan.Exhausted() {
		t.Fatalf("plan %v did not fire every scheduled fault", plan)
	}
	st := p.Stats()
	if st.Health.Degraded || st.Health.Cap != st.Health.Ceiling {
		t.Fatalf("fleet did not recover: %+v", st.Health)
	}
	if st.Crashes != 3 || st.Replacements != 3 || st.Retries != 1 || st.SnapshotRejects != 1 {
		t.Fatalf("counters: crashes=%d replacements=%d retries=%d snapshotRejects=%d",
			st.Crashes, st.Replacements, st.Retries, st.SnapshotRejects)
	}

	checkGolden(t, "trace_chaos.golden", lines)
}
