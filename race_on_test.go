//go:build race

package nomap

const raceDetectorEnabled = true
