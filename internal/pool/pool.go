// Package pool is the multi-isolate serving layer: a fixed set of worker
// isolates consuming a bounded request queue, sharing the compiled-code
// cache and warm-start snapshot store so that repeat traffic skips both
// re-profiling and re-compilation. Backpressure is explicit — a full queue
// rejects with ErrQueueFull rather than buffering unboundedly — and each
// request may carry a deadline, enforced at tier boundaries through the
// VM's interrupt hook so cancellation never tears an isolate mid-bytecode.
//
// Every response is produced by exactly one isolate, and isolates are fully
// Reset between tenants, so a request observes the same program behaviour
// it would on a dedicated cold engine; only the invisible warmup work is
// shared. That is the pool's differential guarantee, and the root
// serving_test exercises it across all architecture configurations.
package pool

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nomap/internal/codecache"
	"nomap/internal/isolate"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// Errors returned by Submit and surfaced in Response.Err.
var (
	// ErrQueueFull reports backpressure: the bounded queue is at its
	// high-water mark and the request was rejected, not buffered.
	ErrQueueFull = errors.New("pool: request queue full")
	// ErrClosed reports a Submit after Close began.
	ErrClosed = errors.New("pool: closed")
	// ErrDeadline reports a request cancelled at a tier boundary after its
	// deadline passed.
	ErrDeadline = errors.New("pool: request deadline exceeded")
)

// Config sizes and parameterizes a pool.
type Config struct {
	// Workers is the number of isolates serving concurrently (default 1).
	Workers int
	// QueueDepth bounds the request queue (default 4× workers). A Submit
	// beyond this depth fails with ErrQueueFull.
	QueueDepth int
	// VM is the engine configuration template. Requests may override Arch
	// and MaxTier; everything else (policy, seed, call depth) is shared so
	// snapshots and cache entries transfer.
	VM vm.Config
	// CacheCapacity bounds the shared code cache (entries; 0 → default).
	CacheCapacity int
	// SnapshotMinCalls is the minimum request size whose warm state is
	// worth capturing (default 8): tiny requests never reach the
	// speculative tiers, and their snapshots would freeze cold profiles.
	SnapshotMinCalls int
	// DisableCodeCache serves every request with per-isolate compilation.
	DisableCodeCache bool
	// DisableSnapshots serves every request cold (no warm-start restore).
	DisableSnapshots bool
}

// Request is one unit of serving work: run an interned program and call its
// run() entry point Calls times.
type Request struct {
	// Source is the program text (interned by the pool; repeat sources
	// share bytecode, cache entries, and snapshots).
	Source string
	// Calls is the number of run() invocations (default 1).
	Calls int
	// Arg is passed to run() on each call.
	Arg int
	// Arch, when non-nil, overrides the pool template's architecture.
	Arch *vm.Arch
	// MaxTier, when non-nil, overrides the pool template's tier cap.
	MaxTier *profile.Tier
	// Timeout, when positive, bounds the request's execution; expiry
	// cancels at the next tier boundary with ErrDeadline.
	Timeout time.Duration
	// Observe, when non-nil, runs on the worker after the calls complete
	// (successfully or not) while the isolate still holds the program's
	// heap — tests use it to snapshot globals before the isolate is
	// recycled. It must not retain the *vm.VM.
	Observe func(*vm.VM)
}

// Response is the outcome of one request.
type Response struct {
	// Results holds run()'s stringified return value per call.
	Results []string
	// Output holds the program's accumulated print() lines.
	Output []string
	// Err is nil on success; ErrDeadline on cancellation; otherwise the
	// runtime or load error.
	Err error
	// Counters is the isolate's measurement state at completion.
	Counters stats.Counters
	// Warm reports that a snapshot restore skipped the profiling warmup.
	Warm bool
	// Latency is queue wait plus execution time.
	Latency time.Duration
}

type job struct {
	req  Request
	resp chan Response
	enq  time.Time
}

type spec struct {
	arch    vm.Arch
	maxTier profile.Tier
}

// Pool is the serving layer. Create with New, submit with Submit, stop with
// Close.
type Pool struct {
	cfg      Config
	programs *codecache.Programs
	cache    *codecache.Cache
	snaps    *isolate.Store
	queue    chan *job
	wg       sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	idle      map[spec][]*isolate.Isolate
	merged    stats.Counters
	accepted  int64
	rejected  int64
	completed int64
	failed    int64
}

// Stats is a point-in-time view of pool activity.
type Stats struct {
	Accepted  int64 // requests admitted to the queue
	Rejected  int64 // requests refused with ErrQueueFull or ErrClosed
	Completed int64 // responses produced without error
	Failed    int64 // responses produced with an error (deadline included)
	// Counters merges the per-isolate counters of error-free responses.
	Counters stats.Counters
	// Cache is the shared code cache's activity.
	Cache codecache.Stats
	// Snapshots is the warm-start store's activity.
	Snapshots isolate.StoreStats
}

// New creates and starts a pool.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.SnapshotMinCalls <= 0 {
		cfg.SnapshotMinCalls = 8
	}
	if cfg.VM.MaxTier == 0 && cfg.VM.Policy == (profile.Policy{}) {
		cfg.VM = vm.DefaultConfig()
	}
	p := &Pool{
		cfg:      cfg,
		programs: codecache.NewPrograms(),
		snaps:    isolate.NewStore(),
		queue:    make(chan *job, cfg.QueueDepth),
		idle:     make(map[spec][]*isolate.Isolate),
	}
	if !cfg.DisableCodeCache {
		p.cache = codecache.NewCache(cfg.CacheCapacity)
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues a request and returns a channel delivering its single
// Response. A full queue or a closed pool fails fast instead of blocking.
func (p *Pool) Submit(req Request) (<-chan Response, error) {
	j := &job{req: req, resp: make(chan Response, 1), enq: time.Now()}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rejected++
		return nil, ErrClosed
	}
	select {
	case p.queue <- j:
		p.accepted++
		return j.resp, nil
	default:
		p.rejected++
		return nil, ErrQueueFull
	}
}

// Do submits and waits: a synchronous convenience for drivers and tests.
func (p *Pool) Do(req Request) Response {
	ch, err := p.Submit(req)
	if err != nil {
		return Response{Err: err}
	}
	return <-ch
}

// Close drains the queue gracefully: already-accepted requests complete,
// new Submits fail with ErrClosed, and Close returns when every worker has
// exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a snapshot of pool activity.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		Accepted:  p.accepted,
		Rejected:  p.rejected,
		Completed: p.completed,
		Failed:    p.failed,
		Counters:  p.merged,
	}
	p.mu.Unlock()
	if p.cache != nil {
		s.Cache = p.cache.Stats()
	}
	s.Snapshots = p.snaps.Stats()
	return s
}

// Cache exposes the shared code cache (nil when disabled) for reporting.
func (p *Pool) Cache() *codecache.Cache { return p.cache }

// Programs exposes the program registry (for reporting and tests).
func (p *Pool) Programs() *codecache.Programs { return p.programs }

// Checkout borrows an isolate configured like the pool's workers for the
// given (arch, tier) spec, bypassing the queue. The oracle integration uses
// it to run fault-injection sweeps against a pool-drawn isolate. Return it
// with Return.
func (p *Pool) Checkout(arch vm.Arch, maxTier profile.Tier) *isolate.Isolate {
	return p.take(spec{arch: arch, maxTier: maxTier})
}

// Return recycles a borrowed isolate after a full Reset.
func (p *Pool) Return(iso *isolate.Isolate) {
	p.put(iso)
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		resp := p.serve(j.req)
		resp.Latency = time.Since(j.enq)
		p.mu.Lock()
		if resp.Err == nil {
			p.completed++
			// Only error-free responses merge: a cancelled run may have
			// been cut mid-transaction, so its counters do not satisfy the
			// commit/abort balance invariants.
			p.merged.Add(&resp.Counters)
		} else {
			p.failed++
		}
		p.mu.Unlock()
		j.resp <- resp
	}
}

func (p *Pool) specFor(req *Request) spec {
	s := spec{arch: p.cfg.VM.Arch, maxTier: p.cfg.VM.MaxTier}
	if req.Arch != nil {
		s.arch = *req.Arch
	}
	if req.MaxTier != nil {
		s.maxTier = *req.MaxTier
	}
	return s
}

func (p *Pool) take(s spec) *isolate.Isolate {
	p.mu.Lock()
	if stack := p.idle[s]; len(stack) > 0 {
		iso := stack[len(stack)-1]
		p.idle[s] = stack[:len(stack)-1]
		p.mu.Unlock()
		return iso
	}
	p.mu.Unlock()
	cfg := p.cfg.VM
	cfg.Arch = s.arch
	cfg.MaxTier = s.maxTier
	iso := isolate.New(cfg)
	if p.cache != nil {
		iso.UseCache(p.cache)
	}
	return iso
}

func (p *Pool) put(iso *isolate.Isolate) {
	iso.Reset()
	cfg := iso.Config()
	s := spec{arch: cfg.Arch, maxTier: cfg.MaxTier}
	p.mu.Lock()
	// Bound the free list: beyond 2× workers per spec the isolate is
	// simply dropped (it holds no shared state).
	if len(p.idle[s]) < 2*p.cfg.Workers {
		p.idle[s] = append(p.idle[s], iso)
	}
	p.mu.Unlock()
}

// serve runs one request on a freshly checked-out isolate.
func (p *Pool) serve(req Request) Response {
	if req.Calls <= 0 {
		req.Calls = 1
	}
	s := p.specFor(&req)
	iso := p.take(s)
	defer p.put(iso)

	var deadline time.Time
	if req.Timeout > 0 {
		deadline = time.Now().Add(req.Timeout)
		iso.VM().SetInterrupt(func() error {
			if time.Now().After(deadline) {
				return ErrDeadline
			}
			return nil
		})
	}

	var resp Response
	entry, err := p.programs.Load(req.Source)
	if err != nil {
		resp.Err = fmt.Errorf("pool: program: %w", err)
		return resp
	}
	if err := iso.Load(entry); err != nil {
		resp.Err = err
		resp.Counters = *iso.VM().Counters()
		return resp
	}

	skey := isolate.KeyFor(iso.Config(), entry)
	if !p.cfg.DisableSnapshots {
		if snap := p.snaps.Get(skey); snap != nil {
			if err := iso.Restore(snap); err == nil {
				resp.Warm = true
			}
		}
	}

	resp.Results = make([]string, 0, req.Calls)
	for i := 0; i < req.Calls; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			resp.Err = ErrDeadline
			break
		}
		v, err := iso.VM().CallGlobal("run", value.Int(int32(req.Arg)))
		if err != nil {
			resp.Err = err
			break
		}
		resp.Results = append(resp.Results, v.ToStringValue())
	}

	if req.Observe != nil {
		req.Observe(iso.VM())
	}
	if resp.Err == nil && !resp.Warm && !p.cfg.DisableSnapshots &&
		req.Calls >= p.cfg.SnapshotMinCalls {
		p.snaps.SaveOnce(skey, iso.Snapshot())
	}
	resp.Output = append([]string(nil), iso.VM().Output...)
	resp.Counters = *iso.VM().Counters()
	return resp
}
