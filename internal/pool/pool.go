// Package pool is the multi-isolate serving layer: a fixed set of worker
// isolates consuming a bounded request queue, sharing the compiled-code
// cache and warm-start snapshot store so that repeat traffic skips both
// re-profiling and re-compilation. Backpressure is explicit — a full queue
// rejects with ErrQueueFull rather than buffering unboundedly — and each
// request may carry a deadline or a context, enforced at tier boundaries
// through the VM's interrupt hook so cancellation never tears an isolate
// mid-bytecode.
//
// Every response is produced by exactly one isolate, and isolates are fully
// Reset between tenants, so a request observes the same program behaviour
// it would on a dedicated cold engine; only the invisible warmup work is
// shared. That is the pool's differential guarantee, and the root
// serving_test exercises it across all architecture configurations.
//
// Every failure a worker can hit flows through one recovery state machine
// (governor.Resilience — the per-function post-abort discipline lifted to
// the fleet): a panicking isolate is contained, quarantined, and replaced
// (ErrIsolateCrash fails only the in-flight request); transient failures
// retry on a fresh isolate under a deadline-aware budget with deterministic
// seeded backoff; sustained fault or abort storms step the fleet's tier
// ceiling down FTL→DFG→Baseline→interp-only and, at the bottom, shed load
// until a probe proves recovery. The whole ladder is exercised by the
// deterministic chaos harness (internal/chaos) threaded through the pool,
// the snapshot store, and the code cache.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nomap/internal/chaos"
	"nomap/internal/codecache"
	"nomap/internal/governor"
	"nomap/internal/isolate"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// Config sizes and parameterizes a pool.
type Config struct {
	// Workers is the number of isolates serving concurrently (default 1).
	Workers int
	// QueueDepth bounds the request queue (default 4× workers). A Submit
	// beyond this depth fails with ErrQueueFull.
	QueueDepth int
	// VM is the engine configuration template. Requests may override Arch
	// and MaxTier; everything else (policy, seed, call depth) is shared so
	// snapshots and cache entries transfer.
	VM vm.Config
	// CacheCapacity bounds the shared code cache (entries; 0 → default).
	CacheCapacity int
	// CacheShards sets the code cache's shard count (0 → default; 1 is the
	// unsharded A/B configuration; rounded up to a power of two).
	CacheShards int
	// Coalesce enables cold-start request coalescing: concurrent requests
	// for the same warm-start key elect one leader to serve cold and save
	// the snapshot while the others wait and then start warm, so a fleet
	// cold-start replays the profiling warmup once per key, not once per
	// worker.
	Coalesce bool
	// AsyncCompile moves DFG/FTL tier-up compilation off the request path:
	// a cache miss enqueues a background compile job and the request keeps
	// running at its current-best tier. The bounded compile queue applies
	// admission control — when the sliding-window p99 exceeds SLO, FTL jobs
	// down-tier to DFG; past 2×SLO (or a full queue) jobs are shed and the
	// degradation ladder is charged.
	AsyncCompile bool
	// CompileWorkers sizes the background compile pool (default 1; only
	// meaningful with AsyncCompile).
	CompileWorkers int
	// CompileQueueDepth bounds the compile queue (default 16× compile
	// workers — distinct jobs are bounded by (program, spec), so a deeper
	// queue holds a whole mix's worth of keys without re-offer churn). A
	// full queue sheds the job rather than blocking a request.
	CompileQueueDepth int
	// CompileWarmCalls is how many run() calls a background compile job
	// rehearses to tier the key up (default 64 — past the default FTL
	// threshold when combined with loop back-edges).
	CompileWarmCalls int
	// SLO is the tail-latency objective steering compile-queue admission
	// (0 disables admission control; jobs then only clamp to the ladder's
	// tier cap).
	SLO time.Duration
	// SLOWindow sizes the sliding latency window (observations per
	// generation; 0 → 256).
	SLOWindow int
	// SnapshotMinCalls is the minimum request size whose warm state is
	// worth capturing (default 8): tiny requests never reach the
	// speculative tiers, and their snapshots would freeze cold profiles.
	SnapshotMinCalls int
	// DisableCodeCache serves every request with per-isolate compilation.
	DisableCodeCache bool
	// DisableSnapshots serves every request cold (no warm-start restore).
	DisableSnapshots bool
	// Resilience tunes the recovery state machine; zero fields take
	// DefaultResiliencePolicy values, and a zero Seed inherits VM.RandomSeed
	// so a pool's failure decisions replay with its execution.
	Resilience governor.ResiliencePolicy
	// Chaos, when non-nil, arms the deterministic fault-injection plan:
	// each serve attempt consults it for panic, slow-isolate, and
	// snapshot-corrupt points, and the shared code cache consults it for
	// compile-fail points. Production pools leave it nil (nil plans never
	// fault and cost only a nil check).
	Chaos *chaos.Plan
	// Tracer, when non-nil, observes every resilience transition. Events
	// are emitted synchronously from worker goroutines; with one worker the
	// stream is deterministic (the golden chaos trace relies on this).
	Tracer func(Event)
}

// Request is one unit of serving work: run an interned program and call its
// run() entry point Calls times.
type Request struct {
	// Source is the program text (interned by the pool; repeat sources
	// share bytecode, cache entries, and snapshots).
	Source string
	// Calls is the number of run() invocations (default 1).
	Calls int
	// Arg is passed to run() on each call.
	Arg int
	// Arch, when non-nil, overrides the pool template's architecture.
	Arch *vm.Arch
	// MaxTier, when non-nil, overrides the pool template's tier cap.
	MaxTier *profile.Tier
	// Ctx, when non-nil, cancels the request: its deadline merges with
	// Timeout and its cancellation is honored at the same tier boundaries.
	Ctx context.Context
	// Timeout, when positive, bounds the request's execution; expiry
	// cancels at the next tier boundary with ErrDeadline. Sugar for a
	// context deadline.
	Timeout time.Duration
	// NonIdempotent marks a request that must never be retried (its program
	// mutates state outside the isolate — e.g. shared-heap traffic); a
	// transient failure surfaces immediately instead of re-running it.
	NonIdempotent bool
	// Observe, when non-nil, runs on the worker after the calls complete
	// (successfully or not) while the isolate still holds the program's
	// heap — tests use it to snapshot globals before the isolate is
	// recycled. It must not retain the *vm.VM.
	Observe func(*vm.VM)
}

// Response is the outcome of one request.
type Response struct {
	// Results holds run()'s stringified return value per call.
	Results []string
	// Output holds the program's accumulated print() lines.
	Output []string
	// Err is nil on success; otherwise it matches exactly one taxonomy
	// class under errors.Is (see errors.go).
	Err error
	// Counters is the isolate's measurement state at completion (zero after
	// a contained crash: a torn isolate's counters are untrustworthy).
	Counters stats.Counters
	// Warm reports that a snapshot restore skipped the profiling warmup.
	Warm bool
	// ServedTier is the tier cap the request actually ran under.
	ServedTier profile.Tier
	// Degraded reports the degradation ladder clamped the request below the
	// tier it asked for.
	Degraded bool
	// Attempts counts serve attempts (1 = no retries).
	Attempts int
	// Latency is queue wait plus execution time.
	Latency time.Duration
}

type job struct {
	req  Request
	resp chan Response
	enq  time.Time
}

type spec struct {
	arch    vm.Arch
	maxTier profile.Tier
}

// Pool is the serving layer. Create with New, submit with Submit, stop with
// Close.
type Pool struct {
	cfg      Config
	programs *codecache.Programs
	cache    *codecache.Cache
	snaps    *isolate.Store
	res      *governor.Resilience
	queue    chan *job
	wg       sync.WaitGroup

	// mu guards lifecycle and the isolate free lists only. Every counter is
	// atomic and the merged totals have their own mutex, so Stats() — and
	// any scraper calling it — never contends with the request path.
	mu     sync.Mutex
	closed bool
	idle   map[spec][]*isolate.Isolate
	// retiredSites fail-fasts programs whose crash fingerprint the
	// quarantine ledger permanently retired.
	retiredSites map[uint64]string

	mergedMu sync.Mutex
	merged   stats.Counters

	// latWin is the sliding request-latency window feeding the Stats p99
	// and the compile queue's admission control.
	latMu  sync.Mutex
	latWin *stats.LatencyWindow

	// flights is the cold-start coalescing table: one flight per warm-start
	// key currently being served cold by a leader.
	flightsMu sync.Mutex
	flights   map[isolate.StoreKey]*coldFlight

	// Background compile queue (AsyncCompile).
	compileQ chan compileJob
	cwg      sync.WaitGroup
	pendMu   sync.Mutex
	pending  map[pendKey]bool

	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	failedBy  [numClasses]atomic.Int64

	crashes         atomic.Int64
	replacements    atomic.Int64
	retries         atomic.Int64
	degradeSteps    atomic.Int64
	repromotions    atomic.Int64
	sheds           atomic.Int64
	snapshotRejects atomic.Int64

	coalesceLeads atomic.Int64
	coalesceWaits atomic.Int64
	compileJobs   atomic.Int64
	compileDone   atomic.Int64
	compileSheds  atomic.Int64
	compileDowns  atomic.Int64
}

// coldFlight tracks one in-progress cold start: the leader closes done when
// its snapshot save (or failure) is final.
type coldFlight struct {
	done chan struct{}
}

// compileJob is one background tier-up rehearsal: load entry on a spare
// isolate of spec s and run the entry point enough times to fill the shared
// cache (and snapshot store) for everyone.
type compileJob struct {
	entry *codecache.ProgramEntry
	s     spec
	arg   int
	tier  profile.Tier
}

// pendKey dedups compile jobs: one rehearsal per (program, spec) fills every
// tier on the way up, so tier is deliberately excluded.
type pendKey struct {
	prog uint64
	s    spec
}

// numClasses sizes the atomic per-class failure counters; classIndex maps a
// taxonomy class to its slot.
const numClasses = 8

var classIndex = func() map[string]int {
	cs := Classes()
	if len(cs) != numClasses {
		panic("pool: numClasses out of sync with Classes()")
	}
	m := make(map[string]int, numClasses)
	for i, c := range cs {
		m[c] = i
	}
	return m
}()

// Stats is a point-in-time view of pool activity.
type Stats struct {
	Accepted  int64 // requests admitted to the queue
	Rejected  int64 // requests refused with ErrQueueFull or ErrClosed
	Completed int64 // responses produced without error
	Failed    int64 // responses produced with an error (deadline included)
	// FailedBy breaks Failed down by taxonomy class (see Classes).
	FailedBy map[string]int64
	// Resilience activity.
	Crashes         int64 // panics contained inside isolates
	Replacements    int64 // crashed isolates replaced with fresh ones
	Retries         int64 // fresh-isolate retries granted
	DegradeSteps    int64 // ladder rungs stepped down
	Repromotions    int64 // probations survived
	Sheds           int64 // load-shedding episodes begun
	SnapshotRejects int64 // corrupt warm-start snapshots refused
	// Cold-start coalescing activity.
	CoalesceLeads int64 // cold starts served as flight leader
	CoalesceWaits int64 // requests that waited on a leader's flight
	// Background compile queue activity.
	CompileJobs      int64 // jobs enqueued
	CompileDone      int64 // jobs completed
	CompileSheds     int64 // jobs shed (queue full or p99 > 2×SLO)
	CompileDownTiers int64 // FTL jobs down-tiered to DFG (p99 > SLO)
	// P99Latency is the sliding-window request p99 (the admission signal).
	P99Latency time.Duration
	// Health is the recovery state machine's current view.
	Health governor.ResilienceReport
	// Counters merges the per-isolate counters of error-free responses.
	Counters stats.Counters
	// Cache is the shared code cache's activity.
	Cache codecache.Stats
	// Snapshots is the warm-start store's activity.
	Snapshots isolate.StoreStats
}

// New creates and starts a pool.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.SnapshotMinCalls <= 0 {
		cfg.SnapshotMinCalls = 8
	}
	if cfg.VM.MaxTier == 0 && cfg.VM.Policy == (profile.Policy{}) {
		cfg.VM = vm.DefaultConfig()
	}
	pol := cfg.Resilience
	if pol.Seed == 0 {
		pol.Seed = int64(cfg.VM.RandomSeed)
	}
	if cfg.CompileWorkers <= 0 {
		cfg.CompileWorkers = 1
	}
	if cfg.CompileQueueDepth <= 0 {
		cfg.CompileQueueDepth = 16 * cfg.CompileWorkers
	}
	if cfg.CompileWarmCalls <= 0 {
		cfg.CompileWarmCalls = 64
	}
	p := &Pool{
		cfg:          cfg,
		programs:     codecache.NewPrograms(),
		snaps:        isolate.NewStore(),
		res:          governor.NewResilience(pol, cfg.VM.MaxTier),
		queue:        make(chan *job, cfg.QueueDepth),
		idle:         make(map[spec][]*isolate.Isolate),
		retiredSites: make(map[uint64]string),
		latWin:       stats.NewLatencyWindow(cfg.SLOWindow),
		flights:      make(map[isolate.StoreKey]*coldFlight),
	}
	if !cfg.DisableCodeCache {
		p.cache = codecache.NewCacheSharded(cfg.CacheCapacity, cfg.CacheShards)
		if cfg.Chaos != nil {
			plan := cfg.Chaos
			p.cache.SetFaultProbe(func() error {
				if plan.Arm(chaos.KindCompileFail) {
					return &chaos.CompileFault{Occurrence: plan.Armed(chaos.KindCompileFail)}
				}
				return nil
			})
		}
	}
	if cfg.AsyncCompile {
		p.compileQ = make(chan compileJob, cfg.CompileQueueDepth)
		p.pending = make(map[pendKey]bool)
		for i := 0; i < cfg.CompileWorkers; i++ {
			p.cwg.Add(1)
			go p.compileWorker()
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues a request and returns a channel delivering its single
// Response. A full queue or a closed pool fails fast instead of blocking.
func (p *Pool) Submit(req Request) (<-chan Response, error) {
	j := &job{req: req, resp: make(chan Response, 1), enq: time.Now()}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case p.queue <- j:
		p.accepted.Add(1)
		return j.resp, nil
	default:
		p.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Do submits and waits: a synchronous convenience for drivers and tests.
func (p *Pool) Do(req Request) Response {
	ch, err := p.Submit(req)
	if err != nil {
		return Response{Err: err}
	}
	return <-ch
}

// Close drains the queue gracefully: already-accepted requests complete,
// new Submits fail with ErrClosed, and Close returns when every worker has
// exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		p.cwg.Wait()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
	// Serving workers are the only producers of compile jobs; once they have
	// exited the queue can be closed and drained.
	if p.compileQ != nil {
		close(p.compileQ)
	}
	p.cwg.Wait()
}

// Stats returns a snapshot of pool activity. It never takes the pool mutex:
// scalar counters are atomics and the merged totals sit under their own
// small lock, so scraping stats cannot stall admission or the workers.
func (p *Pool) Stats() Stats {
	s := Stats{
		Accepted:         p.accepted.Load(),
		Rejected:         p.rejected.Load(),
		Completed:        p.completed.Load(),
		Failed:           p.failed.Load(),
		FailedBy:         make(map[string]int64, numClasses),
		Crashes:          p.crashes.Load(),
		Replacements:     p.replacements.Load(),
		Retries:          p.retries.Load(),
		DegradeSteps:     p.degradeSteps.Load(),
		Repromotions:     p.repromotions.Load(),
		Sheds:            p.sheds.Load(),
		SnapshotRejects:  p.snapshotRejects.Load(),
		CoalesceLeads:    p.coalesceLeads.Load(),
		CoalesceWaits:    p.coalesceWaits.Load(),
		CompileJobs:      p.compileJobs.Load(),
		CompileDone:      p.compileDone.Load(),
		CompileSheds:     p.compileSheds.Load(),
		CompileDownTiers: p.compileDowns.Load(),
	}
	for class, i := range classIndex {
		if n := p.failedBy[i].Load(); n > 0 {
			s.FailedBy[class] = n
		}
	}
	p.mergedMu.Lock()
	s.Counters = p.merged
	p.mergedMu.Unlock()
	s.P99Latency = p.latencyP99()
	s.Health = p.res.Report()
	if p.cache != nil {
		s.Cache = p.cache.Stats()
	}
	s.Snapshots = p.snaps.Stats()
	return s
}

// latencyP99 reads the sliding-window p99 estimate.
func (p *Pool) latencyP99() time.Duration {
	p.latMu.Lock()
	defer p.latMu.Unlock()
	return time.Duration(p.latWin.Quantile(0.99)) * time.Microsecond
}

// Cache exposes the shared code cache (nil when disabled) for reporting.
func (p *Pool) Cache() *codecache.Cache { return p.cache }

// Programs exposes the program registry (for reporting and tests).
func (p *Pool) Programs() *codecache.Programs { return p.programs }

// Resilience exposes the recovery state machine (for reporting, tests, and
// fleet-restart export/restore).
func (p *Pool) Resilience() *governor.Resilience { return p.res }

// Checkout borrows an isolate configured like the pool's workers for the
// given (arch, tier) spec, bypassing the queue. The oracle integration uses
// it to run fault-injection sweeps against a pool-drawn isolate. Return it
// with Return.
func (p *Pool) Checkout(arch vm.Arch, maxTier profile.Tier) *isolate.Isolate {
	return p.take(spec{arch: arch, maxTier: maxTier})
}

// Return recycles a borrowed isolate after a full Reset.
func (p *Pool) Return(iso *isolate.Isolate) {
	p.put(iso)
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		resp := p.serve(j.req)
		resp.Latency = time.Since(j.enq)
		p.latMu.Lock()
		p.latWin.Record(resp.Latency.Microseconds())
		p.latMu.Unlock()
		if resp.Err == nil {
			p.completed.Add(1)
			// Only error-free responses merge: a cancelled run may have
			// been cut mid-transaction, so its counters do not satisfy the
			// commit/abort balance invariants.
			p.mergedMu.Lock()
			p.merged.Add(&resp.Counters)
			p.mergedMu.Unlock()
		} else {
			p.failed.Add(1)
			p.failedBy[classIndex[Classify(resp.Err)]].Add(1)
		}
		j.resp <- resp
	}
}

// trace emits one resilience event to the configured tracer.
func (p *Pool) trace(e Event) {
	if p.cfg.Tracer != nil {
		p.cfg.Tracer(e)
	}
}

// ladder translates a LadderChange into trace events and stats counters.
func (p *Pool) ladder(ch governor.LadderChange) {
	if !ch.Changed() {
		return
	}
	if ch.SteppedDown {
		p.degradeSteps.Add(1)
	}
	if ch.Promoted {
		p.repromotions.Add(1)
	}
	if ch.ShedStarted {
		p.sheds.Add(1)
	}
	switch {
	case ch.SteppedDown:
		p.trace(Event{Kind: EventStepDown, Tier: ch.Cap})
	case ch.ProbeStarted:
		p.trace(Event{Kind: EventProbe, Tier: ch.Cap})
	case ch.ProbeFailed:
		p.trace(Event{Kind: EventProbeFail, Tier: ch.Cap})
	case ch.Promoted:
		p.trace(Event{Kind: EventRepromote, Tier: ch.Cap})
	}
	if ch.ShedStarted {
		p.trace(Event{Kind: EventShed})
	}
	if ch.ShedCleared {
		p.trace(Event{Kind: EventShedClear})
	}
}

func (p *Pool) specFor(req *Request) spec {
	s := spec{arch: p.cfg.VM.Arch, maxTier: p.cfg.VM.MaxTier}
	if req.Arch != nil {
		s.arch = *req.Arch
	}
	if req.MaxTier != nil {
		s.maxTier = *req.MaxTier
	}
	return s
}

func (p *Pool) take(s spec) *isolate.Isolate {
	p.mu.Lock()
	if stack := p.idle[s]; len(stack) > 0 {
		iso := stack[len(stack)-1]
		p.idle[s] = stack[:len(stack)-1]
		p.mu.Unlock()
		return iso
	}
	p.mu.Unlock()
	cfg := p.cfg.VM
	cfg.Arch = s.arch
	cfg.MaxTier = s.maxTier
	iso := isolate.New(cfg)
	if p.cache != nil {
		iso.UseCache(p.cache)
	}
	return iso
}

func (p *Pool) put(iso *isolate.Isolate) {
	iso.Reset()
	cfg := iso.Config()
	s := spec{arch: cfg.Arch, maxTier: cfg.MaxTier}
	p.mu.Lock()
	// Bound the free list: beyond 2× workers per spec the isolate is
	// simply dropped (it holds no shared state).
	if len(p.idle[s]) < 2*p.cfg.Workers {
		p.idle[s] = append(p.idle[s], iso)
	}
	p.mu.Unlock()
}

// replace discards a crashed isolate (its heap may be torn mid-bytecode, so
// it never rejoins the free list) and eagerly installs a fresh replacement,
// which warm-starts from the snapshot store on its first serve. The caller
// emits the EventReplace trace so it lands after the quarantine events.
func (p *Pool) replace(s spec) {
	cfg := p.cfg.VM
	cfg.Arch = s.arch
	cfg.MaxTier = s.maxTier
	iso := isolate.New(cfg)
	if p.cache != nil {
		iso.UseCache(p.cache)
	}
	p.replacements.Add(1)
	p.mu.Lock()
	if len(p.idle[s]) < 2*p.cfg.Workers {
		p.idle[s] = append(p.idle[s], iso)
	}
	p.mu.Unlock()
}

// crashSite renders a recovered panic value as a stable (program, site)
// fingerprint component. Injected chaos crashes get a fixed site so the
// ledger aggregates them; organic panics fingerprint by their rendering.
func crashSite(rec any) string {
	if _, ok := rec.(chaos.Crash); ok {
		return "chaos"
	}
	s := fmt.Sprint(rec)
	if len(s) > 64 {
		s = s[:64]
	}
	return s
}

// retiredSite reports the retired crash fingerprint for a program, if any.
func (p *Pool) retiredSite(prog uint64) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	site, ok := p.retiredSites[prog]
	return site, ok
}

// serve runs one request to completion: admission, deadline setup, and the
// bounded retry loop around individual serve attempts. Every failure path
// reports to the recovery state machine exactly once.
func (p *Pool) serve(req Request) Response {
	if req.Calls <= 0 {
		req.Calls = 1
	}
	// A request cancelled while queued never touches an isolate.
	if req.Ctx != nil {
		if err := req.Ctx.Err(); err != nil {
			return Response{Err: err}
		}
	}
	// While shedding, only the periodic probe is admitted.
	if !p.res.Admit() {
		return Response{Err: ErrDegraded}
	}
	entry, err := p.programs.Load(req.Source)
	if err != nil {
		return Response{Err: fmt.Errorf("pool: program: %w", err)}
	}
	if site, ok := p.retiredSite(entry.Hash); ok {
		return Response{Err: &CrashError{
			Site: site, Detail: "fingerprint retired by quarantine ledger",
			Crashes: p.res.CrashCount(governor.CrashKey{Program: entry.Hash, Site: site}),
			Retired: true,
		}}
	}

	// The request's deadline is computed exactly once — the merge of the
	// Timeout sugar and the context deadline — and every boundary check
	// reuses it with a single time.Now.
	var deadline time.Time
	if req.Timeout > 0 {
		deadline = time.Now().Add(req.Timeout)
	}
	if req.Ctx != nil {
		if d, ok := req.Ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}

	attempt := 1
	for {
		resp := p.serveOnce(&req, entry, deadline)
		resp.Attempts = attempt

		if resp.Err == nil {
			p.ladder(p.res.OnSuccess())
			if resp.Counters.TxAborts >= p.res.Policy().AbortStormThreshold {
				// The response succeeded but burned fleet capacity: an abort
				// storm charges the ladder without failing the request.
				p.ladder(p.res.OnFault())
			}
			return resp
		}

		retryable := false
		var ce *CrashError
		switch {
		case errors.As(resp.Err, &ce):
			key := governor.CrashKey{Program: entry.Hash, Site: ce.Site}
			v := p.res.OnCrash(key)
			ce.Crashes, ce.Retired = v.Crashes, v.Retired
			p.crashes.Add(1)
			if v.Retired {
				p.mu.Lock()
				p.retiredSites[entry.Hash] = ce.Site
				p.mu.Unlock()
			}
			p.trace(Event{Kind: EventCrash, Program: entry.Hash, Site: ce.Site, Attempt: attempt})
			p.trace(Event{Kind: EventQuarantine, Program: entry.Hash, Site: ce.Site, N: v.Crashes})
			if v.NewlyRetired {
				p.trace(Event{Kind: EventRetire, Program: entry.Hash, Site: ce.Site, N: v.Crashes})
			}
			p.trace(Event{Kind: EventReplace, Program: entry.Hash, Tier: resp.ServedTier})
			p.ladder(v.Ladder)
			retryable = !v.Retired
		case errors.Is(resp.Err, ErrDeadline):
			// A watchdog kill is a fleet fault but never retried: the budget
			// is deadline-aware by construction.
			p.ladder(p.res.OnFault())
		default:
			// Runtime/user errors and context cancellation are the caller's:
			// deterministic re-execution would fail identically.
		}
		if !retryable || req.NonIdempotent {
			return resp
		}
		if req.Ctx != nil && req.Ctx.Err() != nil {
			return resp
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return resp
		}
		if !p.res.RetryAllowed(attempt) {
			p.ladder(p.res.OnFault())
			p.trace(Event{Kind: EventRetryExhausted, Program: entry.Hash, Attempt: attempt})
			resp.Err = fmt.Errorf("%w (%d attempts): %w", ErrRetryBudget, attempt, resp.Err)
			return resp
		}
		window := p.res.Backoff(req.Source, attempt)
		p.retries.Add(1)
		p.trace(Event{Kind: EventRetry, Program: entry.Hash, Attempt: attempt, N: window})
		attempt++
	}
}

// serveOnce runs one attempt on a freshly checked-out isolate, containing
// any panic: a crashed isolate is discarded and replaced, and the attempt
// reports a *CrashError instead of unwinding the worker.
func (p *Pool) serveOnce(req *Request, entry *codecache.ProgramEntry, deadline time.Time) (resp Response) {
	s := p.specFor(req)
	if cap := p.res.TierCap(); s.maxTier > cap {
		s.maxTier = cap
		resp.Degraded = true
	}
	resp.ServedTier = s.maxTier
	iso := p.take(s)
	defer func() {
		if rec := recover(); rec != nil {
			resp.Results = nil
			resp.Counters = stats.Counters{}
			resp.Err = &CrashError{Site: crashSite(rec), Detail: fmt.Sprint(rec)}
			p.replace(s)
			return
		}
		p.put(iso)
	}()

	// Chaos arming happens per attempt, so a retry after an injected fault
	// runs clean unless the plan schedules another occurrence.
	plan := p.cfg.Chaos
	crashArmed := plan.Arm(chaos.KindPanic)
	crashOcc := plan.Armed(chaos.KindPanic)
	wedged := plan.Arm(chaos.KindSlowIsolate)

	// One boundary check serves both the VM's interrupt hook and the call
	// loop: the hook performs the single time.Now, and the loop reads the
	// sticky verdict (the hook already ran inside the previous Call).
	var sticky error
	check := func() error {
		if sticky != nil {
			return sticky
		}
		if crashArmed {
			crashArmed = false
			panic(chaos.Crash{Occurrence: crashOcc})
		}
		if wedged {
			// The isolate is wedged: every boundary reports watchdog expiry.
			sticky = ErrDeadline
			return sticky
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			// Any deadline — Timeout sugar or ctx-carried — reports
			// uniformly as ErrDeadline; ctx cancellation is checked after,
			// so "canceled" means an explicit cancel.
			sticky = ErrDeadline
			return sticky
		}
		if req.Ctx != nil {
			select {
			case <-req.Ctx.Done():
				sticky = req.Ctx.Err()
			default:
			}
		}
		return sticky
	}
	hooked := crashArmed || wedged || req.Ctx != nil || !deadline.IsZero()
	if hooked {
		iso.VM().SetInterrupt(check)
	}

	// Off-path compilation: a cache miss in any speculative tier offers a
	// background compile job and the request proceeds at its current-best
	// tier. The isolate's Reset clears the sink before it is recycled.
	if p.cfg.AsyncCompile && p.cache != nil {
		iso.Backend().SetCompileSink(func(tier profile.Tier) {
			p.offerCompile(compileJob{entry: entry, s: s, arg: req.Arg, tier: tier})
		})
	}

	if err := iso.Load(entry); err != nil {
		resp.Err = err
		resp.Counters = *iso.VM().Counters()
		return resp
	}

	skey := isolate.KeyFor(iso.Config(), entry)
	if !p.cfg.DisableSnapshots {
		snap := p.snaps.Get(skey)
		if snap == nil && p.cfg.Coalesce && req.Calls >= p.cfg.SnapshotMinCalls {
			// Cold-start coalescing: the first request for a key serves cold
			// as the flight leader and saves the snapshot; concurrent
			// requests for the same key wait for it (bounded by their own
			// deadline) and then start warm, so a fleet cold-start replays
			// the profiling warmup once per key rather than once per worker.
			// Small requests (below SnapshotMinCalls) never join: their
			// leader would not save a snapshot, so waiting buys nothing.
			if fl, leader := p.joinCold(skey); leader {
				p.coalesceLeads.Add(1)
				// The flight closes on every exit from this attempt —
				// including a contained panic (LIFO defers run this before
				// the recover above) — so followers can never hang.
				defer p.leaveCold(skey, fl)
			} else {
				p.coalesceWaits.Add(1)
				p.waitCold(fl, deadline, req.Ctx)
				snap = p.snaps.Get(skey)
			}
		}
		if snap != nil {
			if plan.Arm(chaos.KindSnapshotCorrupt) {
				snap = snap.CorruptCopy()
			}
			if err := iso.Restore(snap); err == nil {
				resp.Warm = true
			} else if errors.Is(err, isolate.ErrSnapshotCorrupt) {
				// A damaged warm start degrades to a cold one: the request
				// still serves byte-identical results.
				p.snapshotRejects.Add(1)
				p.trace(Event{Kind: EventSnapshotReject, Program: entry.Hash})
			}
		}
	}

	resp.Results = make([]string, 0, req.Calls)
	for i := 0; i < req.Calls; i++ {
		if hooked && sticky != nil {
			resp.Err = sticky
			break
		}
		v, err := iso.VM().CallGlobal("run", value.Int(int32(req.Arg)))
		if err != nil {
			resp.Err = err
			break
		}
		resp.Results = append(resp.Results, v.ToStringValue())
	}

	if req.Observe != nil {
		req.Observe(iso.VM())
	}
	if resp.Err == nil && !resp.Warm && !p.cfg.DisableSnapshots &&
		req.Calls >= p.cfg.SnapshotMinCalls {
		p.snaps.SaveOnce(skey, iso.Snapshot())
	}
	resp.Output = append([]string(nil), iso.VM().Output...)
	resp.Counters = *iso.VM().Counters()
	return resp
}
