package pool

import (
	"reflect"
	"testing"

	"nomap/internal/machine"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// The race soak in CI runs these tests under -race with GOMAXPROCS swept
// over {1, 2, 8}: the concurrent mode must be race-clean and must converge
// to the single-threaded reference state under any physical interleaving.

func TestSharedHeapConcurrentAgreement(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	for _, wl := range workloads.Contention() {
		ref, err := machine.RunReference(wl)
		if err != nil {
			t.Fatalf("%s: reference: %v", wl.Name, err)
		}
		for _, arch := range []vm.Arch{vm.ArchBase, vm.ArchNoMap, vm.ArchNoMapRTM} {
			res, err := p.RunShared(wl, arch, 1, machine.SharedOptions{})
			if err != nil {
				t.Fatalf("%s/%v: %v", wl.Name, arch, err)
			}
			if res.Snapshot != ref.Snapshot {
				t.Errorf("%s/%v: snapshot %q, reference %q", wl.Name, arch, res.Snapshot, ref.Snapshot)
			}
			if !reflect.DeepEqual(res.Accs, ref.Accs) {
				t.Errorf("%s/%v: accs %v, reference %v", wl.Name, arch, res.Accs, ref.Accs)
			}
			c := res.Merged
			if c.TxBegins != c.TxCommits+c.TxAborts {
				t.Errorf("%s/%v: tx leak: %d begins, %d commits, %d aborts",
					wl.Name, arch, c.TxBegins, c.TxCommits, c.TxAborts)
			}
			if sub := c.TxCapacityAborts + c.TxCheckAborts + c.TxSOFAborts +
				c.TxIrrevocableAborts + c.TxConflictAborts; sub != c.TxAborts {
				t.Errorf("%s/%v: abort causes (%d) do not partition aborts (%d)",
					wl.Name, arch, sub, c.TxAborts)
			}
		}
	}
	if p.Stats().Counters.SharedOps == 0 {
		t.Error("pool totals did not absorb shared-run counters")
	}
}

// TestSharedHeapConcurrentSoak re-runs the hot-counter storm to give the Go
// scheduler many chances to produce a harmful physical interleaving.
func TestSharedHeapConcurrentSoak(t *testing.T) {
	wl, _ := workloads.ContentionByID("T02")
	ref, err := machine.RunReference(wl)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Workers: 1})
	defer p.Close()
	for i := 0; i < 20; i++ {
		res, err := p.RunShared(wl, vm.ArchNoMap, int64(i), machine.SharedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Snapshot != ref.Snapshot {
			t.Fatalf("run %d: snapshot %q, reference %q", i, res.Snapshot, ref.Snapshot)
		}
	}
}
