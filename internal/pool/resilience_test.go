package pool

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nomap/internal/chaos"
	"nomap/internal/governor"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// TestCrashContainedAndRetried: an injected isolate panic is contained,
// the crashed isolate is quarantined and replaced, and the request retries
// to success on a fresh isolate — with results byte-identical to a pool
// that never crashed.
func TestCrashContainedAndRetried(t *testing.T) {
	clean := newTestPool(t, Config{Workers: 1})
	want := clean.Do(Request{Source: loopProgram, Calls: 4, Arg: 2})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	plan := chaos.NewPlan(1, chaos.At(chaos.KindPanic, 1))
	p := newTestPool(t, Config{Workers: 1, Chaos: plan})
	resp := p.Do(Request{Source: loopProgram, Calls: 4, Arg: 2})
	if resp.Err != nil {
		t.Fatalf("crash not retried to success: %v", resp.Err)
	}
	if resp.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one crash, one retry)", resp.Attempts)
	}
	for i := range want.Results {
		if resp.Results[i] != want.Results[i] {
			t.Fatalf("post-crash result %d diverges: %q != %q", i, resp.Results[i], want.Results[i])
		}
	}
	st := p.Stats()
	if st.Crashes != 1 || st.Replacements != 1 || st.Retries != 1 {
		t.Errorf("crashes=%d replacements=%d retries=%d, want 1/1/1",
			st.Crashes, st.Replacements, st.Retries)
	}
	if st.Completed != 1 || st.Failed != 0 {
		t.Errorf("accounting: %+v", st)
	}
	if !plan.Exhausted() {
		t.Error("scheduled panic never fired")
	}
}

// TestQuarantinedReplacementServesIdenticalToCold is the regression guard
// the ISSUE names: after a crash quarantines an isolate and a replacement
// takes over, the replacement's responses are indistinguishable from a
// cold pool's — including warm-start behaviour on later repeats.
func TestQuarantinedReplacementServesIdenticalToCold(t *testing.T) {
	cold := newTestPool(t, Config{Workers: 1})
	var want []Response
	for i := 0; i < 4; i++ {
		r := cold.Do(Request{Source: loopProgram, Calls: 12, Arg: 3})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want = append(want, r)
	}

	plan := chaos.NewPlan(1, chaos.At(chaos.KindPanic, 1))
	p := newTestPool(t, Config{Workers: 1, Chaos: plan})
	for i := 0; i < 4; i++ {
		r := p.Do(Request{Source: loopProgram, Calls: 12, Arg: 3})
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		for j := range want[i].Results {
			if r.Results[j] != want[i].Results[j] {
				t.Fatalf("request %d call %d: %q != cold %q", i, j, r.Results[j], want[i].Results[j])
			}
		}
	}
	if p.Stats().Replacements != 1 {
		t.Errorf("replacements = %d, want 1", p.Stats().Replacements)
	}
}

// TestQuarantineLedgerRetiresFingerprint: K crashes on the same
// (program, site) fingerprint permanently retire it; later requests fail
// fast with a Retired CrashError without burning fresh isolates.
func TestQuarantineLedgerRetiresFingerprint(t *testing.T) {
	plan := chaos.NewPlan(1, chaos.At(chaos.KindPanic, 1), chaos.At(chaos.KindPanic, 2))
	p := newTestPool(t, Config{
		Workers: 1,
		Chaos:   plan,
		Resilience: governor.ResiliencePolicy{
			RetireAfterCrashes: 2,
			TripThreshold:      100, // keep the ladder out of this test
			Seed:               1,
		},
	})
	// NonIdempotent suppresses retries so each crash surfaces directly.
	req := Request{Source: loopProgram, Calls: 2, NonIdempotent: true}
	for i := 1; i <= 2; i++ {
		resp := p.Do(req)
		if !errors.Is(resp.Err, ErrIsolateCrash) {
			t.Fatalf("crash %d: err=%v, want ErrIsolateCrash", i, resp.Err)
		}
		var ce *CrashError
		if !errors.As(resp.Err, &ce) || ce.Crashes != int64(i) {
			t.Fatalf("crash %d: verdict %+v", i, resp.Err)
		}
	}
	crashesBefore := p.Stats().Crashes

	resp := p.Do(req)
	var ce *CrashError
	if !errors.As(resp.Err, &ce) || !ce.Retired {
		t.Fatalf("retired fingerprint not fail-fast: %v", resp.Err)
	}
	if got := p.Stats().Crashes; got != crashesBefore {
		t.Errorf("fail-fast burned an isolate: crashes %d → %d", crashesBefore, got)
	}
	if Classify(resp.Err) != ClassCrash {
		t.Errorf("retired error classifies as %q", Classify(resp.Err))
	}
}

// TestRetryBudgetExhaustion: a request that crashes on every attempt
// consumes its whole budget and surfaces ErrRetryBudget wrapping the final
// crash.
func TestRetryBudgetExhaustion(t *testing.T) {
	plan := chaos.NewPlan(1,
		chaos.At(chaos.KindPanic, 1), chaos.At(chaos.KindPanic, 2), chaos.At(chaos.KindPanic, 3))
	p := newTestPool(t, Config{
		Workers: 1,
		Chaos:   plan,
		Resilience: governor.ResiliencePolicy{
			RetryBudget:        2,
			RetireAfterCrashes: 100,
			TripThreshold:      100,
			Seed:               1,
		},
	})
	resp := p.Do(Request{Source: loopProgram, Calls: 2})
	if !errors.Is(resp.Err, ErrRetryBudget) {
		t.Fatalf("err=%v, want ErrRetryBudget", resp.Err)
	}
	if !errors.Is(resp.Err, ErrIsolateCrash) {
		t.Errorf("budget error lost the crash cause: %v", resp.Err)
	}
	if resp.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + budget 2)", resp.Attempts)
	}
	if got := Classify(resp.Err); got != ClassRetryBudget {
		t.Errorf("classified %q, want %q", got, ClassRetryBudget)
	}
	if st := p.Stats(); st.Retries != 2 || st.Crashes != 3 {
		t.Errorf("retries=%d crashes=%d, want 2/3", st.Retries, st.Crashes)
	}
}

// TestDegradationLadderAndRepromotion: sustained crashes step the fleet's
// tier cap down; clean traffic probationally re-promotes it back to the
// ceiling.
func TestDegradationLadderAndRepromotion(t *testing.T) {
	plan := chaos.NewPlan(1, chaos.At(chaos.KindPanic, 1), chaos.At(chaos.KindPanic, 2))
	p := newTestPool(t, Config{
		Workers: 1,
		Chaos:   plan,
		Resilience: governor.ResiliencePolicy{
			TripThreshold:      2,
			RepromoteWindow:    2,
			RetireAfterCrashes: 100,
			Seed:               1,
		},
	})
	req := Request{Source: loopProgram, Calls: 2, NonIdempotent: true}
	for i := 0; i < 2; i++ {
		if resp := p.Do(req); !errors.Is(resp.Err, ErrIsolateCrash) {
			t.Fatalf("crash %d: %v", i, resp.Err)
		}
	}
	if cap := p.Resilience().TierCap(); cap != profile.TierDFG {
		t.Fatalf("cap %v after 2 faults, want DFG", cap)
	}
	// The next request runs under the clamp and says so.
	resp := p.Do(Request{Source: loopProgram, Calls: 2})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.Degraded || resp.ServedTier != profile.TierDFG {
		t.Errorf("degraded=%v servedTier=%v, want true/DFG", resp.Degraded, resp.ServedTier)
	}
	// Clean traffic: RepromoteWindow completions start a probe, another
	// window confirms it.
	for i := 0; i < 4; i++ {
		if r := p.Do(Request{Source: loopProgram, Calls: 2}); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := p.Stats()
	if st.Health.Cap != st.Health.Ceiling || st.Health.Degraded {
		t.Errorf("fleet not re-promoted: %+v", st.Health)
	}
	if st.DegradeSteps != 1 || st.Repromotions != 1 {
		t.Errorf("degradeSteps=%d repromotions=%d, want 1/1", st.DegradeSteps, st.Repromotions)
	}
	final := p.Do(Request{Source: loopProgram, Calls: 2})
	if final.Err != nil || final.Degraded {
		t.Errorf("post-recovery request still degraded: err=%v degraded=%v", final.Err, final.Degraded)
	}
}

// TestShedAndProbeRecovery: an interp-only fleet that keeps faulting trips
// load shedding; refused requests classify as degraded, the periodic probe
// is admitted, and its success reopens the pool.
func TestShedAndProbeRecovery(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierInterp
	plan := chaos.NewPlan(1, chaos.At(chaos.KindPanic, 1), chaos.At(chaos.KindPanic, 2))
	p := newTestPool(t, Config{
		Workers: 1,
		VM:      cfg,
		Chaos:   plan,
		Resilience: governor.ResiliencePolicy{
			TripThreshold:      2,
			ProbeEvery:         2,
			RetireAfterCrashes: 100,
			Seed:               1,
		},
	})
	req := Request{Source: loopProgram, Calls: 2, NonIdempotent: true}
	for i := 0; i < 2; i++ {
		if resp := p.Do(req); !errors.Is(resp.Err, ErrIsolateCrash) {
			t.Fatalf("crash %d: %v", i, resp.Err)
		}
	}
	if !p.Resilience().Shedding() {
		t.Fatal("bottomed fleet did not shed")
	}
	// First request while shedding is refused; the second is the probe.
	refused := p.Do(Request{Source: loopProgram, Calls: 2})
	if !errors.Is(refused.Err, ErrDegraded) {
		t.Fatalf("shed request: err=%v, want ErrDegraded", refused.Err)
	}
	if got := Classify(refused.Err); got != ClassDegraded {
		t.Errorf("classified %q, want %q", got, ClassDegraded)
	}
	probe := p.Do(Request{Source: loopProgram, Calls: 2})
	if probe.Err != nil {
		t.Fatalf("probe request failed: %v", probe.Err)
	}
	if p.Resilience().Shedding() {
		t.Error("successful probe did not clear shedding")
	}
	st := p.Stats()
	if st.Sheds != 1 || st.FailedBy[ClassDegraded] != 1 {
		t.Errorf("sheds=%d failedBy=%v", st.Sheds, st.FailedBy)
	}
}

// TestSlowIsolateWatchdog: a wedged isolate dies with ErrDeadline at the
// next tier boundary even when the request carries no deadline of its own,
// and the pool stays serviceable.
func TestSlowIsolateWatchdog(t *testing.T) {
	plan := chaos.NewPlan(1, chaos.At(chaos.KindSlowIsolate, 1))
	p := newTestPool(t, Config{Workers: 1, Chaos: plan})
	resp := p.Do(Request{Source: loopProgram, Calls: 5})
	if !errors.Is(resp.Err, ErrDeadline) {
		t.Fatalf("wedged isolate: err=%v, want ErrDeadline", resp.Err)
	}
	if resp.Attempts != 1 {
		t.Errorf("watchdog kill retried (%d attempts); deadline failures must not retry", resp.Attempts)
	}
	ok := p.Do(Request{Source: loopProgram, Calls: 3})
	if ok.Err != nil {
		t.Fatalf("pool unusable after watchdog kill: %v", ok.Err)
	}
	if st := p.Stats(); st.FailedBy[ClassDeadline] != 1 {
		t.Errorf("failure breakdown: %v", st.FailedBy)
	}
}

// TestSnapshotCorruptServedCold: a warm-start snapshot corrupted in flight
// is rejected by its integrity seal and the request is served cold with
// byte-identical results; the snapshot store itself stays healthy.
func TestSnapshotCorruptServedCold(t *testing.T) {
	plan := chaos.NewPlan(1, chaos.At(chaos.KindSnapshotCorrupt, 1))
	p := newTestPool(t, Config{Workers: 1, Chaos: plan})
	req := Request{Source: loopProgram, Calls: 12, Arg: 3}

	first := p.Do(req) // cold; saves the snapshot
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	hit := p.Do(req) // restore path; chaos corrupts the copy in flight
	if hit.Err != nil {
		t.Fatal(hit.Err)
	}
	if hit.Warm {
		t.Error("corrupt snapshot reported warm")
	}
	for i := range first.Results {
		if hit.Results[i] != first.Results[i] {
			t.Fatalf("cold-degraded result %d diverges: %q != %q", i, hit.Results[i], first.Results[i])
		}
	}
	if st := p.Stats(); st.SnapshotRejects != 1 {
		t.Errorf("snapshotRejects = %d, want 1", st.SnapshotRejects)
	}
	// The stored original is undamaged: the next repeat warms normally.
	again := p.Do(req)
	if again.Err != nil || !again.Warm {
		t.Errorf("store damaged by in-flight corruption: err=%v warm=%v", again.Err, again.Warm)
	}
	if !plan.Exhausted() {
		t.Error("scheduled corruption never fired")
	}
}

// TestCompileFailFallsBack: an injected transient compile failure degrades
// that fill to the baseline fallback without changing a single result.
func TestCompileFailFallsBack(t *testing.T) {
	clean := newTestPool(t, Config{Workers: 1})
	want := clean.Do(Request{Source: loopProgram, Calls: 12, Arg: 3})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	plan := chaos.NewPlan(1, chaos.At(chaos.KindCompileFail, 1))
	p := newTestPool(t, Config{Workers: 1, Chaos: plan})
	resp := p.Do(Request{Source: loopProgram, Calls: 12, Arg: 3})
	if resp.Err != nil {
		t.Fatalf("compile fault surfaced as request failure: %v", resp.Err)
	}
	for i := range want.Results {
		if resp.Results[i] != want.Results[i] {
			t.Fatalf("result %d diverges under compile fault: %q != %q", i, resp.Results[i], want.Results[i])
		}
	}
	if !plan.Exhausted() {
		t.Error("scheduled compile fault never fired")
	}
}

// TestContextCancelAndDeadline: Request.Ctx is honored at tier boundaries —
// cancellation classifies as canceled, a ctx-carried deadline as deadline.
func TestContextCancelAndDeadline(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := p.Do(Request{Source: loopProgram, Calls: 5, Ctx: ctx})
	if !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("canceled ctx: err=%v", resp.Err)
	}
	if got := Classify(resp.Err); got != ClassCanceled {
		t.Errorf("classified %q, want %q", got, ClassCanceled)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	resp = p.Do(Request{Source: loopProgram, Calls: 5, Ctx: dctx, Observe: func(*vm.VM) {}})
	// The merged deadline is already past, but the request was admitted
	// before cancellation propagated — either the queued-cancel path
	// (ctx error) or the boundary path (ErrDeadline) is correct; what is
	// not acceptable is a successful run.
	if resp.Err == nil {
		t.Fatal("expired ctx deadline served successfully")
	}
	if !errors.Is(resp.Err, ErrDeadline) && !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx deadline: err=%v", resp.Err)
	}

	ok := p.Do(Request{Source: loopProgram, Calls: 3})
	if ok.Err != nil {
		t.Fatalf("pool unusable after ctx failures: %v", ok.Err)
	}
}

// TestQueueFullUnderConcurrentDo: many goroutines hammering Do against a
// parked worker and a tiny queue must each get exactly one response —
// accepted ones served, overflow rejected with ErrQueueFull — with the
// books balancing.
func TestQueueFullUnderConcurrentDo(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, QueueDepth: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker, err := p.Submit(Request{Source: loopProgram, Calls: 1,
		Observe: func(*vm.VM) { close(started); <-release }})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	const callers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var served, rejected int
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := p.Do(Request{Source: loopProgram, Calls: 1})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case resp.Err == nil:
				served++
			case errors.Is(resp.Err, ErrQueueFull):
				rejected++
			default:
				t.Errorf("unexpected error class: %v", resp.Err)
			}
		}()
	}
	// Let the submits race against the parked worker, then release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-blocker
	wg.Wait()

	if served+rejected != callers {
		t.Fatalf("lost responses: served=%d rejected=%d of %d", served, rejected, callers)
	}
	if rejected == 0 {
		t.Error("no request observed backpressure (queue depth 2, 16 callers)")
	}
	st := p.Stats()
	if st.Accepted != int64(served)+1 || st.Rejected != int64(rejected) {
		t.Errorf("books don't balance: %+v vs served=%d rejected=%d", st, served, rejected)
	}
}

// TestShutdownRacesInFlight: Close racing a burst of in-flight and incoming
// requests neither drops an accepted response nor deadlocks; late submits
// fail with ErrClosed.
func TestShutdownRacesInFlight(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 8})
	var wg sync.WaitGroup
	results := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := p.Submit(Request{Source: loopProgram, Calls: 2})
			if err != nil {
				if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
					results <- err
				}
				return
			}
			resp := <-ch // accepted requests must complete, even across Close
			results <- resp.Err
		}()
	}
	p.Close()
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("accepted request failed across Close: %v", err)
		}
	}
	if _, err := p.Submit(Request{Source: loopProgram}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close: %v", err)
	}
}

// TestDeadlineAtTierBoundary: a deadline that expires exactly at a tier
// boundary (already past when the first boundary check runs) cancels with
// ErrDeadline and produces no partial results.
func TestDeadlineAtTierBoundary(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	resp := p.Do(Request{Source: loopProgram, Calls: 50, Timeout: time.Nanosecond})
	if !errors.Is(resp.Err, ErrDeadline) {
		t.Fatalf("err=%v, want ErrDeadline", resp.Err)
	}
	if len(resp.Results) != 0 {
		t.Errorf("deadline at first boundary returned %d partial results", len(resp.Results))
	}
	if st := p.Stats(); st.FailedBy[ClassDeadline] != 1 {
		t.Errorf("breakdown: %v", st.FailedBy)
	}
}
