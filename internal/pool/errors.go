package pool

import (
	"context"
	"errors"
	"fmt"
)

// The pool's typed error taxonomy. Every Response.Err (and every Submit
// error) matches exactly one of these classes under errors.Is, so callers
// can route on failure class without string matching and nomap-serve can
// report a per-class breakdown.
var (
	// ErrQueueFull reports backpressure: the bounded queue is at its
	// high-water mark and the request was rejected, not buffered.
	ErrQueueFull = errors.New("pool: request queue full")
	// ErrClosed reports a Submit after Close began.
	ErrClosed = errors.New("pool: closed")
	// ErrDeadline reports a request cancelled at a tier boundary after its
	// deadline passed (or wedged past the watchdog).
	ErrDeadline = errors.New("pool: request deadline exceeded")
	// ErrIsolateCrash reports a panic contained inside the serving isolate:
	// the isolate was quarantined and replaced, and only this request
	// failed. Concrete errors are *CrashError values wrapping this.
	ErrIsolateCrash = errors.New("pool: isolate crashed")
	// ErrDegraded reports the degradation ladder bottomed out and tripped
	// into load shedding: the request was refused without touching an
	// isolate (a periodic probe request is admitted instead).
	ErrDegraded = errors.New("pool: shedding load (fleet degraded)")
	// ErrRetryBudget reports a transiently failing request exhausted its
	// fresh-isolate retry budget; the wrapped error chain retains the last
	// attempt's failure.
	ErrRetryBudget = errors.New("pool: retry budget exhausted")
)

// CrashError is the concrete error for a contained isolate crash. It wraps
// ErrIsolateCrash (match with errors.Is) and carries the quarantine ledger's
// verdict for this crash fingerprint.
type CrashError struct {
	// Site is the stable crash-site fingerprint ("chaos" for injected
	// crashes, a rendering of the panic origin otherwise).
	Site string
	// Detail renders the recovered panic value.
	Detail string
	// Crashes is the (program, site) fingerprint's lifetime charge count.
	Crashes int64
	// Retired reports the fingerprint is permanently retired: future
	// requests for the program fail fast instead of burning isolates.
	Retired bool
}

func (e *CrashError) Error() string {
	if e.Retired {
		return fmt.Sprintf("pool: isolate crashed at %q (crash %d, fingerprint retired): %s", e.Site, e.Crashes, e.Detail)
	}
	return fmt.Sprintf("pool: isolate crashed at %q (crash %d): %s", e.Site, e.Crashes, e.Detail)
}

func (e *CrashError) Unwrap() error { return ErrIsolateCrash }

// Failure classes for the per-class breakdown, in reporting order.
const (
	ClassQueueFull   = "queue-full"
	ClassClosed      = "closed"
	ClassDeadline    = "deadline"
	ClassCrash       = "crash"
	ClassDegraded    = "degraded"
	ClassRetryBudget = "retry-budget"
	ClassCanceled    = "canceled"
	ClassRuntime     = "runtime"
)

// Classes lists every failure class in reporting order.
func Classes() []string {
	return []string{
		ClassQueueFull, ClassClosed, ClassDeadline, ClassCrash,
		ClassDegraded, ClassRetryBudget, ClassCanceled, ClassRuntime,
	}
}

// Classify maps an error to its failure class ("" for nil). Retry-budget
// exhaustion takes precedence over the wrapped final attempt's class.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQueueFull):
		return ClassQueueFull
	case errors.Is(err, ErrClosed):
		return ClassClosed
	case errors.Is(err, ErrRetryBudget):
		return ClassRetryBudget
	case errors.Is(err, ErrIsolateCrash):
		return ClassCrash
	case errors.Is(err, ErrDegraded):
		return ClassDegraded
	case errors.Is(err, ErrDeadline):
		return ClassDeadline
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled
	default:
		return ClassRuntime
	}
}
