package pool

import (
	"fmt"

	"nomap/internal/profile"
)

// EventKind names one resilience transition the pool can report.
type EventKind uint8

const (
	// EventCrash: a panic was contained inside a serving isolate.
	EventCrash EventKind = iota
	// EventQuarantine: the crash was charged to its (program, site)
	// fingerprint in the quarantine ledger.
	EventQuarantine
	// EventRetire: the fingerprint crossed the retirement budget and is
	// permanently retired.
	EventRetire
	// EventReplace: the crashed isolate was discarded and a fresh
	// replacement installed in the free list.
	EventReplace
	// EventRetry: a transiently failed request was granted a fresh-isolate
	// retry after a deterministic backoff window.
	EventRetry
	// EventRetryExhausted: the request consumed its whole retry budget.
	EventRetryExhausted
	// EventStepDown: the degradation ladder dropped the fleet ceiling one
	// rung.
	EventStepDown
	// EventShed / EventShedClear: load-shedding began / ended.
	EventShed
	EventShedClear
	// EventProbe: a probationary re-promotion began one rung up.
	EventProbe
	// EventProbeFail: a fault ended a probation (window doubled).
	EventProbeFail
	// EventRepromote: a probation survived its window; the rung is proven.
	EventRepromote
	// EventSnapshotReject: a warm-start snapshot failed its integrity seal
	// and the request was served cold.
	EventSnapshotReject
)

func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventQuarantine:
		return "quarantine"
	case EventRetire:
		return "retire"
	case EventReplace:
		return "replace"
	case EventRetry:
		return "retry"
	case EventRetryExhausted:
		return "retry-exhausted"
	case EventStepDown:
		return "degrade"
	case EventShed:
		return "shed"
	case EventShedClear:
		return "shed-clear"
	case EventProbe:
		return "probe"
	case EventProbeFail:
		return "probe-fail"
	case EventRepromote:
		return "repromote"
	case EventSnapshotReject:
		return "snapshot-reject"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one resilience transition, rendered deterministically for golden
// traces. Program is the interned program's content hash; wall-clock never
// appears.
type Event struct {
	Kind    EventKind
	Program uint64
	Site    string
	Tier    profile.Tier
	Attempt int
	N       int64 // kind-specific count: crash charge, backoff window, …
}

// String renders the event as one stable golden-trace line.
func (e Event) String() string {
	switch e.Kind {
	case EventCrash:
		return fmt.Sprintf("crash prog=%08x site=%s attempt=%d", e.Program, e.Site, e.Attempt)
	case EventQuarantine:
		return fmt.Sprintf("quarantine prog=%08x site=%s crashes=%d", e.Program, e.Site, e.N)
	case EventRetire:
		return fmt.Sprintf("retire prog=%08x site=%s crashes=%d", e.Program, e.Site, e.N)
	case EventReplace:
		return fmt.Sprintf("replace prog=%08x tier=%v", e.Program, e.Tier)
	case EventRetry:
		return fmt.Sprintf("retry prog=%08x attempt=%d backoff=%d", e.Program, e.Attempt, e.N)
	case EventRetryExhausted:
		return fmt.Sprintf("retry-exhausted prog=%08x attempts=%d", e.Program, e.Attempt)
	case EventStepDown:
		return fmt.Sprintf("degrade cap=%v", e.Tier)
	case EventShed:
		return "shed"
	case EventShedClear:
		return "shed-clear"
	case EventProbe:
		return fmt.Sprintf("probe cap=%v", e.Tier)
	case EventProbeFail:
		return fmt.Sprintf("probe-fail cap=%v", e.Tier)
	case EventRepromote:
		return fmt.Sprintf("repromote cap=%v", e.Tier)
	case EventSnapshotReject:
		return fmt.Sprintf("snapshot-reject prog=%08x", e.Program)
	}
	return e.Kind.String()
}
