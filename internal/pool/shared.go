package pool

import (
	"nomap/internal/machine"
	"nomap/internal/vm"
)

// RunShared executes a shared-heap contention workload on the pool: one real
// goroutine per workload worker, racing on one value.SharedHeap through the
// conflict domain, exactly as concurrent isolates sharing state would. The
// run is independent of the request queue (shared sections never execute
// inside a serving isolate's transaction), but its counters merge into the
// pool's totals like any served work, so Stats reflects contention activity
// alongside serving activity.
func (p *Pool) RunShared(wl *machine.SharedWorkload, arch vm.Arch, seed int64, opt machine.SharedOptions) (*machine.SharedResult, error) {
	res, err := machine.RunConcurrent(wl, arch, seed, opt)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.merged.Add(&res.Merged)
	p.mu.Unlock()
	return res, nil
}
