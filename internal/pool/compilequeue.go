// The off-request-path compile queue and the cold-start coalescing table.
//
// With Config.AsyncCompile, tier-up compilation never runs on a serving
// goroutine: the JIT backend's compile sink offers a job here, the request
// keeps executing at its current-best tier, and a background worker
// "rehearses" the program on a spare isolate — loading it, restoring any
// warm-start snapshot, and calling the entry point until the speculative
// tiers compile through the shared code cache's normal synchronous path.
// Every isolate then pulls the finished artifacts as cache hits. The
// rehearsal is the only writer the design needs: compiling a donor
// function's IR on a background goroutine while the owning isolate mutates
// its profiles would race, so the queue moves the whole isolate, not the
// compile closure.
//
// Admission control keeps the queue from defeating its purpose under
// overload: when the sliding-window p99 exceeds the SLO, FTL jobs down-tier
// to DFG (cheaper compiles, most of the win); past 2×SLO — or when the
// bounded queue is full — jobs are shed entirely and the degradation ladder
// is charged at a limited rate, folding compile pressure into the same
// FTL→DFG→Baseline→shed discipline the resilience machinery already
// enforces for faults.
package pool

import (
	"context"
	"time"

	"nomap/internal/isolate"
	"nomap/internal/profile"
	"nomap/internal/value"
)

// joinCold registers interest in a cold start of key k: the first caller
// becomes the flight leader (serves cold, saves the snapshot, then leaves),
// later callers get the existing flight to wait on.
func (p *Pool) joinCold(k isolate.StoreKey) (*coldFlight, bool) {
	p.flightsMu.Lock()
	defer p.flightsMu.Unlock()
	if fl, ok := p.flights[k]; ok {
		return fl, false
	}
	fl := &coldFlight{done: make(chan struct{})}
	p.flights[k] = fl
	return fl, true
}

// leaveCold closes the leader's flight, releasing every waiter. It runs on
// all exits from the leader's serve attempt, success or not — a failed
// leader releases its followers to serve cold themselves.
func (p *Pool) leaveCold(k isolate.StoreKey, fl *coldFlight) {
	p.flightsMu.Lock()
	delete(p.flights, k)
	p.flightsMu.Unlock()
	close(fl.done)
}

// waitCold blocks until the flight completes, the request's deadline
// passes, or its context is cancelled. A timed-out waiter simply proceeds
// cold; the boundary checks surface the deadline if it truly expired.
func (p *Pool) waitCold(fl *coldFlight, deadline time.Time, ctx context.Context) {
	var timer <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timer = t.C
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	select {
	case <-fl.done:
	case <-timer:
	case <-cancel:
	}
}

// offerCompile admits one background compile job. Dedup is per
// (program, spec) — one rehearsal fills every tier on the way up — and
// admission control translates tail-latency pressure into down-tiered or
// shed compile work.
func (p *Pool) offerCompile(job compileJob) {
	if p.compileQ == nil {
		return
	}
	key := pendKey{prog: job.entry.Hash, s: job.s}
	p.pendMu.Lock()
	if p.pending[key] {
		p.pendMu.Unlock()
		return
	}
	p.pending[key] = true
	p.pendMu.Unlock()

	if p.cfg.SLO > 0 {
		p99 := p.latencyP99()
		if p99 > 2*p.cfg.SLO {
			p.shedCompile(key)
			return
		}
		if p99 > p.cfg.SLO && job.tier > profile.TierDFG {
			job.tier = profile.TierDFG
			p.compileDowns.Add(1)
		}
	}
	select {
	case p.compileQ <- job:
		p.compileJobs.Add(1)
	default:
		p.shedCompile(key)
	}
}

// shedCompile abandons a job before it runs: the pending mark clears so a
// later request re-offers the key once pressure subsides. With an SLO
// configured, every eighth shed charges the degradation ladder — compile
// starvation under a latency contract is a fleet fault, but charging every
// shed would slam the ladder to the bottom during a single burst. Without
// an SLO there is no contract to defend: a queue-full shed is just a
// deferral, counted but never escalated.
func (p *Pool) shedCompile(key pendKey) {
	p.pendMu.Lock()
	delete(p.pending, key)
	p.pendMu.Unlock()
	if p.compileSheds.Add(1)%8 == 1 && p.cfg.SLO > 0 {
		p.ladder(p.res.OnFault())
	}
}

func (p *Pool) compileWorker() {
	defer p.cwg.Done()
	for job := range p.compileQ {
		p.runCompileJob(job)
		p.pendMu.Lock()
		delete(p.pending, pendKey{prog: job.entry.Hash, s: job.s})
		p.pendMu.Unlock()
		p.compileDone.Add(1)
	}
}

// runCompileJob rehearses the program on a spare isolate: load, warm-start
// restore when available, then enough entry-point calls for the speculative
// tiers to compile through the shared cache. The rehearsal isolate follows
// the exact execution path a serving isolate would, so the profile
// fingerprints in its cache keys match the keys serving isolates look up
// (the fingerprint hashes only the consumed feedback lattice, never raw
// counts). A down-tiered job caps the rehearsal at DFG; the ladder's tier
// cap applies as everywhere else.
func (p *Pool) runCompileJob(job compileJob) {
	s := job.s
	if job.tier >= profile.TierDFG && job.tier < s.maxTier {
		s.maxTier = job.tier
	}
	if cap := p.res.TierCap(); s.maxTier > cap {
		s.maxTier = cap
	}
	iso := p.take(s)
	defer func() {
		if rec := recover(); rec != nil {
			// A rehearsal crash tears only the spare isolate: discard it,
			// eagerly install a replacement, and leave the request path
			// untouched.
			p.replace(s)
			return
		}
		p.put(iso)
	}()
	if err := iso.Load(job.entry); err != nil {
		return
	}
	restored := false
	skey := isolate.KeyFor(iso.Config(), job.entry)
	if !p.cfg.DisableSnapshots {
		if snap := p.snaps.Get(skey); snap != nil {
			restored = iso.Restore(snap) == nil
		}
	}
	for i := 0; i < p.cfg.CompileWarmCalls; i++ {
		if _, err := iso.VM().CallGlobal("run", value.Int(int32(job.arg))); err != nil {
			return
		}
	}
	// Publish the rehearsal's warm state so the whole fleet cold-starts from
	// it — but only when the rehearsal ran at the spec's full tier (a
	// down-tiered rehearsal's key would not match serving isolates anyway).
	if !p.cfg.DisableSnapshots && !restored && s.maxTier == job.s.maxTier {
		p.snaps.SaveOnce(skey, iso.Snapshot())
	}
}
