// Tests for the production-throughput machinery: lock-free stats scraping,
// cold-start coalescing, and the off-request-path compile queue. White-box
// (package pool) so flights and admission can be driven deterministically.
package pool

import (
	"testing"
	"time"

	"nomap/internal/isolate"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// TestStatsDoesNotTakePoolMutex is the regression guard for the atomic
// counter rework: Stats() must complete while the pool mutex is held, or a
// stats scraper could stall admission and the worker free lists.
func TestStatsDoesNotTakePoolMutex(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	if r := p.Do(Request{Source: loopProgram, Calls: 2, Arg: 1}); r.Err != nil {
		t.Fatal(r.Err)
	}

	p.mu.Lock()
	done := make(chan Stats, 1)
	go func() { done <- p.Stats() }()
	select {
	case st := <-done:
		if st.Accepted != 1 || st.Completed != 1 {
			t.Errorf("stats wrong under held mutex: %+v", st)
		}
	case <-time.After(2 * time.Second):
		p.mu.Unlock()
		t.Fatal("Stats() blocked on the pool mutex")
	}
	p.mu.Unlock()
}

// TestCoalesceFollowerWaitsForLeader drives the flight table directly: with
// a leader registered for the key, a concurrent request must wait, and once
// the leader publishes a snapshot and leaves, the follower must start warm.
func TestCoalesceFollowerWaitsForLeader(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, Coalesce: true, SnapshotMinCalls: 8})
	entry, err := p.programs.Load(loopProgram)
	if err != nil {
		t.Fatal(err)
	}

	// Warm one checked-out isolate by hand to manufacture the snapshot the
	// leader would save.
	iso := p.Checkout(p.cfg.VM.Arch, p.cfg.VM.MaxTier)
	if err := iso.Load(entry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := iso.VM().CallGlobal("run", value.Int(3)); err != nil {
			t.Fatal(err)
		}
	}
	snap := iso.Snapshot()
	skey := isolate.KeyFor(iso.Config(), entry)
	p.Return(iso)

	// Become the leader, then submit a request that must join as follower.
	fl, leader := p.joinCold(skey)
	if !leader {
		t.Fatal("first joinCold must lead")
	}
	respCh, err := p.Submit(Request{Source: loopProgram, Calls: 12, Arg: 3})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.coalesceWaits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never joined the flight as follower")
		}
		time.Sleep(time.Millisecond)
	}
	// Publish the leader's learning, release the flight.
	p.snaps.SaveOnce(skey, snap)
	p.leaveCold(skey, fl)

	resp := <-respCh
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if !resp.Warm {
		t.Error("follower did not start warm from the leader's snapshot")
	}
	if st := p.Stats(); st.CoalesceWaits != 1 {
		t.Errorf("CoalesceWaits = %d, want 1", st.CoalesceWaits)
	}
}

// TestCoalesceConcurrentColdStart: a burst of identical cold requests must
// produce one snapshot, identical results, and at least one elected leader.
func TestCoalesceConcurrentColdStart(t *testing.T) {
	p := newTestPool(t, Config{Workers: 4, QueueDepth: 16, Coalesce: true})
	const n = 8
	chans := make([]<-chan Response, n)
	for i := range chans {
		ch, err := p.Submit(Request{Source: loopProgram, Calls: 12, Arg: 3})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	var first Response
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if i == 0 {
			first = resp
			continue
		}
		for j := range resp.Results {
			if resp.Results[j] != first.Results[j] {
				t.Fatalf("request %d call %d: %q != %q (coalescing changed results)",
					i, j, resp.Results[j], first.Results[j])
			}
		}
	}
	st := p.Stats()
	if st.CoalesceLeads == 0 {
		t.Errorf("no flight leader elected: %+v", st)
	}
	if st.Snapshots.Size != 1 {
		t.Errorf("snapshot store size = %d, want 1 (one key)", st.Snapshots.Size)
	}
	if st.CoalesceWaits > 0 && st.Counters.SnapshotRestores == 0 {
		t.Error("followers waited but none started warm")
	}
}

// TestAsyncCompileServesIdenticalResults: with compilation moved off the
// request path, responses must stay byte-identical to a synchronous pool's,
// and the background queue must eventually fill the cache so requests hit.
func TestAsyncCompileServesIdenticalResults(t *testing.T) {
	sync := newTestPool(t, Config{Workers: 1})
	want := sync.Do(Request{Source: loopProgram, Calls: 16, Arg: 3})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	p := newTestPool(t, Config{Workers: 2, AsyncCompile: true, CompileWarmCalls: 16})
	deadline := time.Now().Add(10 * time.Second)
	warmHits := false
	for time.Now().Before(deadline) {
		resp := p.Do(Request{Source: loopProgram, Calls: 16, Arg: 3})
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		for j := range resp.Results {
			if resp.Results[j] != want.Results[j] {
				t.Fatalf("call %d: async %q != sync %q", j, resp.Results[j], want.Results[j])
			}
		}
		st := p.Stats()
		if st.CompileDone >= 1 && st.Counters.CodeCacheHits > 0 {
			warmHits = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !warmHits {
		t.Fatalf("background compile never landed: %+v", p.Stats())
	}
	if st := p.Stats(); st.CompileJobs == 0 {
		t.Errorf("no compile jobs recorded: %+v", st)
	}
}

// TestCompileAdmissionShedsAndDownTiers drives the SLO gate directly: p99
// past 2×SLO sheds the job (clearing its pending mark for a later re-offer);
// p99 between SLO and 2×SLO down-tiers FTL work to DFG.
func TestCompileAdmissionShedsAndDownTiers(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, AsyncCompile: true, SLO: time.Millisecond})
	entry, err := p.programs.Load(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	s := spec{arch: p.cfg.VM.Arch, maxTier: p.cfg.VM.MaxTier}
	job := compileJob{entry: entry, s: s, arg: 1, tier: profile.TierFTL}

	inject := func(us int64) {
		p.latMu.Lock()
		p.latWin = stats.NewLatencyWindow(0)
		for i := 0; i < 64; i++ {
			p.latWin.Record(us)
		}
		p.latMu.Unlock()
	}

	inject(10000) // p99 = 10ms > 2×SLO: shed
	p.offerCompile(job)
	if n := p.compileSheds.Load(); n != 1 {
		t.Fatalf("compileSheds = %d, want 1", n)
	}
	p.pendMu.Lock()
	pendingAfterShed := len(p.pending)
	p.pendMu.Unlock()
	if pendingAfterShed != 0 {
		t.Fatal("shed job left its pending mark; the key could never re-offer")
	}

	inject(1500) // p99 = 1.5ms in (SLO, 2×SLO]: down-tier FTL → DFG
	p.offerCompile(job)
	if n := p.compileDowns.Load(); n != 1 {
		t.Errorf("compileDownTiers = %d, want 1", n)
	}
	if n := p.compileJobs.Load(); n != 1 {
		t.Errorf("compileJobs = %d, want 1 (down-tiered job still runs)", n)
	}
}
