package pool

import (
	"testing"
	"time"

	"nomap/internal/profile"
	"nomap/internal/vm"
)

const loopProgram = `
var o = {acc: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < 200; i++) {
    s = (s + i * n) | 0;
    o.acc = (o.acc + 1) | 0;
  }
  return s + o.acc;
}
`

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p := New(cfg)
	t.Cleanup(p.Close)
	return p
}

// TestServeRepeatsWarmAndIdentical: repeat traffic must turn warm (snapshot
// restores, cache hits) without changing a single byte of the response.
func TestServeRepeatsWarmAndIdentical(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	req := Request{Source: loopProgram, Calls: 12, Arg: 3}

	first := p.Do(req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Warm {
		t.Error("first request cannot be warm")
	}
	if len(first.Results) != 12 {
		t.Fatalf("got %d results", len(first.Results))
	}

	sawWarm := false
	for i := 0; i < 6; i++ {
		resp := p.Do(req)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		for j := range resp.Results {
			if resp.Results[j] != first.Results[j] {
				t.Fatalf("repeat %d call %d: %q != %q", i, j, resp.Results[j], first.Results[j])
			}
		}
		sawWarm = sawWarm || resp.Warm
	}
	if !sawWarm {
		t.Error("no repeat request started warm")
	}
	st := p.Stats()
	if st.Accepted != 7 || st.Completed != 7 || st.Failed != 0 {
		t.Errorf("accounting wrong: %+v", st)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("repeat traffic never hit the code cache: %+v", st.Cache)
	}
	if st.Counters.SnapshotRestores == 0 || st.Snapshots.Size == 0 {
		t.Errorf("warm-start facility idle: restores=%d store=%+v",
			st.Counters.SnapshotRestores, st.Snapshots)
	}
	if st.Counters.TxBegins != st.Counters.TxCommits+st.Counters.TxAborts {
		t.Errorf("merged counters leak transactions: begins=%d commits=%d aborts=%d",
			st.Counters.TxBegins, st.Counters.TxCommits, st.Counters.TxAborts)
	}
}

// TestBackpressure: with the worker deterministically parked, the queue
// admits exactly QueueDepth requests and rejects the next with ErrQueueFull
// — no unbounded buffering, no blocking.
func TestBackpressure(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, QueueDepth: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := Request{Source: loopProgram, Calls: 1,
		Observe: func(*vm.VM) { close(started); <-release }}

	blockResp, err := p.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the lone worker is now parked inside the request

	var queued []<-chan Response
	for i := 0; i < 2; i++ {
		ch, err := p.Submit(Request{Source: loopProgram, Calls: 1})
		if err != nil {
			t.Fatalf("queue slot %d rejected: %v", i, err)
		}
		queued = append(queued, ch)
	}
	if _, err := p.Submit(Request{Source: loopProgram, Calls: 1}); err != ErrQueueFull {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}

	close(release)
	if resp := <-blockResp; resp.Err != nil {
		t.Fatal(resp.Err)
	}
	for _, ch := range queued {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	st := p.Stats()
	if st.Rejected != 1 || st.Accepted != 3 {
		t.Errorf("accounting: %+v", st)
	}
}

// TestDeadline: an expired deadline cancels with ErrDeadline, counts as a
// failure, and leaves the pool fully serviceable.
func TestDeadline(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	resp := p.Do(Request{Source: loopProgram, Calls: 50, Timeout: time.Nanosecond})
	if resp.Err != ErrDeadline {
		t.Fatalf("got %v, want ErrDeadline", resp.Err)
	}
	// The recycled isolate must serve the next request normally — no leaked
	// interrupt hook.
	ok := p.Do(Request{Source: loopProgram, Calls: 3})
	if ok.Err != nil {
		t.Fatalf("pool unusable after deadline: %v", ok.Err)
	}
	st := p.Stats()
	if st.Failed != 1 || st.Completed != 1 {
		t.Errorf("accounting: %+v", st)
	}
}

// TestClose: accepted work completes, new submits fail, Close is idempotent.
func TestClose(t *testing.T) {
	p := New(Config{Workers: 2})
	ch, err := p.Submit(Request{Source: loopProgram, Calls: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if resp := <-ch; resp.Err != nil {
		t.Errorf("accepted request dropped on Close: %v", resp.Err)
	}
	if _, err := p.Submit(Request{Source: loopProgram}); err != ErrClosed {
		t.Errorf("submit after Close: got %v, want ErrClosed", err)
	}
	p.Close() // must not panic or deadlock
}

// TestArchOverride: per-request arch/tier overrides draw from per-spec free
// lists and — for a deterministic program — produce identical results across
// configurations.
func TestArchOverride(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	base := p.Do(Request{Source: loopProgram, Calls: 4})
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	for _, arch := range vm.AllArchs {
		arch := arch
		interp := profile.TierInterp
		resp := p.Do(Request{Source: loopProgram, Calls: 4, Arch: &arch})
		if resp.Err != nil {
			t.Fatalf("%v: %v", arch, resp.Err)
		}
		for i := range resp.Results {
			if resp.Results[i] != base.Results[i] {
				t.Errorf("%v: result %d diverges: %q != %q", arch, i, resp.Results[i], base.Results[i])
			}
		}
		low := p.Do(Request{Source: loopProgram, Calls: 4, Arch: &arch, MaxTier: &interp})
		if low.Err != nil {
			t.Fatalf("%v interp-only: %v", arch, low.Err)
		}
		if low.Results[0] != base.Results[0] {
			t.Errorf("%v interp-only diverges", arch)
		}
	}
}

// TestCheckoutReturn: borrowed isolates are pool-configured, recycled clean,
// and reused.
func TestCheckoutReturn(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	iso := p.Checkout(vm.ArchNoMapRTM, profile.TierFTL)
	if iso.Config().Arch != vm.ArchNoMapRTM || iso.Config().MaxTier != profile.TierFTL {
		t.Fatalf("checkout spec not honoured: %+v", iso.Config())
	}
	entry, err := p.Programs().Load(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Load(entry); err != nil {
		t.Fatal(err)
	}
	p.Return(iso)

	again := p.Checkout(vm.ArchNoMapRTM, profile.TierFTL)
	if again != iso {
		t.Error("free list not reused")
	}
	if again.Program() != nil {
		t.Error("returned isolate not Reset")
	}
	p.Return(again)
}
