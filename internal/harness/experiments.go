package harness

import (
	"fmt"

	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// Table1 reproduces the paper's Table I: steady-state speedup of each
// compiler tier over the Interpreter, for SunSpider and Kraken, reported as
// AvgS and AvgT.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Table I: Speedup of JavaScriptCore tiers over interpreter",
		Columns: []string{"Highest Tier", "SunSpider AvgS", "SunSpider AvgT", "Kraken AvgS", "Kraken AvgT"},
	}
	suites := [][]workloads.Workload{workloads.SunSpider(), workloads.Kraken()}
	// interpCycles[suite][workloadID]
	interpCycles := make([]map[string]float64, 2)
	for si, suite := range suites {
		interpCycles[si] = map[string]float64{}
		for _, w := range suite {
			m, err := Run(w, vm.ArchBase, profile.TierInterp, cfg)
			if err != nil {
				return nil, err
			}
			interpCycles[si][w.ID] = float64(m.Counters.TotalCycles())
		}
	}
	for _, tier := range []profile.Tier{profile.TierBaseline, profile.TierDFG, profile.TierFTL} {
		cells := []any{tier.String()}
		for si, suite := range suites {
			var avgS, avgT []float64
			for _, w := range suite {
				m, err := Run(w, vm.ArchBase, tier, cfg)
				if err != nil {
					return nil, err
				}
				sp := interpCycles[si][w.ID] / float64(m.Counters.TotalCycles())
				avgT = append(avgT, sp)
				if w.InAvgS {
					avgS = append(avgS, sp)
				}
			}
			cells = append(cells, fmt.Sprintf("%.2fx", mean(avgS)), fmt.Sprintf("%.2fx", mean(avgT)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Language cost models for Figure 1 (see the DESIGN.md substitution table).
// The paper measures real C/Python/PHP/Ruby implementations; our substrate
// executes only the JS engine, so the other languages are modelled from the
// engine's own tiers: C as check-free fully optimized code without the
// managed-runtime tax, and the other scripting JITs as capped-tier runs
// scaled by factors calibrated to the paper's reported means (3.1x, 10.6x,
// 31.4x, 47.7x for JS, Python, PHP, Ruby over C).
const (
	fig1CFactor      = 0.45 // native code: untagged values, no GC barriers
	fig1PythonFactor = 2.25 // PyPy: tracing JIT, heavier boxing than JSC DFG
	fig1PHPFactor    = 6.6  // HHVM: method JIT, hash-table-backed objects
	fig1RubyFactor   = 10.1 // JRuby: JVM-hosted, megamorphic dispatch
)

// Figure1 reproduces Figure 1: Shootout execution time normalized to C.
func Figure1(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 1: Shootout execution time normalized to C (log-scale data)",
		Columns: []string{"Benchmark", "C", "JavaScript", "Python", "PHP", "Ruby"},
		Notes: []string{
			"C/Python/PHP/Ruby are modelled from engine tiers (see DESIGN.md): " +
				"C = check-free FTL x0.45, Python = DFG-capped x2.25, PHP = DFG x6.6, Ruby = DFG x10.1 " +
				"(factors calibrated to the paper's reported means of 3.1x/10.6x/31.4x/47.7x over C)",
		},
	}
	var js, py, php, rb []float64
	for _, w := range workloads.Shootout() {
		mBase, err := Run(w, vm.ArchBase, profile.TierFTL, cfg)
		if err != nil {
			return nil, err
		}
		mBC, err := Run(w, vm.ArchNoMapBC, profile.TierFTL, cfg)
		if err != nil {
			return nil, err
		}
		mDFG, err := Run(w, vm.ArchBase, profile.TierDFG, cfg)
		if err != nil {
			return nil, err
		}
		c := float64(mBC.Counters.TotalCycles()) * fig1CFactor
		jsT := float64(mBase.Counters.TotalCycles()) / c
		pyT := float64(mDFG.Counters.TotalCycles()) * fig1PythonFactor / c
		phpT := float64(mDFG.Counters.TotalCycles()) * fig1PHPFactor / c
		rbT := float64(mDFG.Counters.TotalCycles()) * fig1RubyFactor / c
		js = append(js, jsT)
		py = append(py, pyT)
		php = append(php, phpT)
		rb = append(rb, rbT)
		t.AddRow(w.Name, "1.00", jsT, pyT, phpT, rbT)
	}
	t.AddRow("mean", "1.00", mean(js), mean(py), mean(php), mean(rb))
	return t, nil
}

// Figure3 reproduces Figure 3: SMP-guarding checks per 100 dynamic
// instructions in FTL code under the Base configuration, broken down by
// class, for the given suite ("SunSpider" or "Kraken").
func Figure3(suite string, cfg Config) (*Table, error) {
	ws := suiteByName(suite)
	t := &Table{
		Title:   fmt.Sprintf("Figure 3: SMP-guarding checks per 100 FTL instructions (%s)", suite),
		Columns: []string{"Benchmark", "Bounds", "Overflow", "Type", "Property", "Other", "Total"},
	}
	classes := []stats.CheckClass{stats.CheckBounds, stats.CheckOverflow, stats.CheckType, stats.CheckProperty, stats.CheckOther}
	perClassS := make([][]float64, len(classes))
	perClassT := make([][]float64, len(classes))
	addAvg := func(label string, per [][]float64) {
		cells := []any{label}
		total := 0.0
		for i := range classes {
			m := mean(per[i])
			total += m
			cells = append(cells, fmt.Sprintf("%.1f", m))
		}
		cells = append(cells, fmt.Sprintf("%.1f", total))
		t.AddRow(cells...)
	}
	for _, w := range ws {
		m, err := Run(w, vm.ArchBase, profile.TierFTL, cfg)
		if err != nil {
			return nil, err
		}
		ftl := float64(m.FTLInstr())
		if ftl == 0 {
			ftl = 1
		}
		cells := []any{w.ID + " " + w.Name}
		total := 0.0
		for i, cl := range classes {
			v := 100 * float64(m.Counters.Checks[cl]) / ftl
			total += v
			perClassT[i] = append(perClassT[i], v)
			if w.InAvgS {
				perClassS[i] = append(perClassS[i], v)
			}
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		cells = append(cells, fmt.Sprintf("%.1f", total))
		if w.InAvgS {
			t.AddRow(cells...)
		}
	}
	addAvg("AvgS", perClassS)
	addAvg("AvgT", perClassT)
	return t, nil
}

// DeoptFrequency reproduces §III-A2: how rarely deoptimization SMPs are
// invoked once code is hot. It reports FTL function calls and deopts during
// steady state across the AvgS benchmarks.
func DeoptFrequency(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "§III-A2: Frequency of invoking deoptimization SMPs (steady state, Base)",
		Columns: []string{"Suite", "FTL calls", "Deopts", "Deopts/Mcall"},
	}
	for _, suite := range []string{"SunSpider", "Kraken"} {
		var calls, deopts int64
		for _, w := range workloads.AvgS(suiteByName(suite)) {
			m, err := Run(w, vm.ArchBase, profile.TierFTL, cfg)
			if err != nil {
				return nil, err
			}
			calls += m.Counters.FTLCalls
			deopts += m.Counters.Deopts
		}
		rate := 0.0
		if calls > 0 {
			rate = 1e6 * float64(deopts) / float64(calls)
		}
		t.AddRow(suite, calls, deopts, fmt.Sprintf("%.2f", rate))
	}
	t.Notes = append(t.Notes, "paper: <50 deoptimizations in ~85M FTL calls; after ~50 iterations checks practically never fail")
	return t, nil
}

// InstructionFigure reproduces Figure 8 (SunSpider) or Figure 9 (Kraken):
// dynamic instruction count for the six configurations, normalized to Base,
// broken into NoFTL / NoTM / TMUnopt / TMOpt.
func InstructionFigure(suite string, cfg Config) (*Table, error) {
	return archFigure(suite, cfg, "instructions",
		func(m Measurement) [4]float64 {
			c := m.Counters
			return [4]float64{
				float64(c.Instr[stats.NoFTL]),
				float64(c.Instr[stats.NoTM]),
				float64(c.Instr[stats.TMUnopt]),
				float64(c.Instr[stats.TMOpt]),
			}
		},
		[]string{"NoFTL", "NoTM", "TMUnopt", "TMOpt"})
}

// TimeFigure reproduces Figure 10 (SunSpider) or Figure 11 (Kraken):
// execution time for the six configurations, normalized to Base, split into
// NonTMTime / TMTime.
func TimeFigure(suite string, cfg Config) (*Table, error) {
	return archFigure(suite, cfg, "cycles",
		func(m Measurement) [4]float64 {
			c := m.Counters
			return [4]float64{float64(c.CyclesNonTM), float64(c.CyclesTM), 0, 0}
		},
		[]string{"NonTMTime", "TMTime", "", ""})
}

// archFigure runs the full (workload x arch) matrix for a suite and renders
// the normalized breakdown plus AvgS and AvgT rows.
func archFigure(suite string, cfg Config, what string, split func(Measurement) [4]float64, parts []string) (*Table, error) {
	ws := suiteByName(suite)
	figNo := map[string]map[string]string{
		"instructions": {"SunSpider": "Figure 8", "Kraken": "Figure 9"},
		"cycles":       {"SunSpider": "Figure 10", "Kraken": "Figure 11"},
	}[what][suite]
	t := &Table{
		Title:   fmt.Sprintf("%s: normalized %s, %s", figNo, what, suite),
		Columns: []string{"Benchmark", "Arch", "Total"},
	}
	for _, p := range parts {
		if p != "" {
			t.Columns = append(t.Columns, p)
		}
	}
	matrix, err := Matrix(ws, cfg)
	if err != nil {
		return nil, err
	}
	// avg[arch] collects normalized totals for AvgS/AvgT.
	avgS := map[vm.Arch][]float64{}
	avgT := map[vm.Arch][]float64{}
	for _, w := range ws {
		base := matrix[w.ID][vm.ArchBase]
		baseParts := split(base)
		baseTotal := baseParts[0] + baseParts[1] + baseParts[2] + baseParts[3]
		if baseTotal == 0 {
			baseTotal = 1
		}
		for _, arch := range vm.AllArchs {
			m := matrix[w.ID][arch]
			pr := split(m)
			total := (pr[0] + pr[1] + pr[2] + pr[3]) / baseTotal
			avgT[arch] = append(avgT[arch], total)
			if w.InAvgS {
				avgS[arch] = append(avgS[arch], total)
			}
			if w.InAvgS {
				cells := []any{w.ID + " " + w.Name, arch.String(), total}
				for i, p := range parts {
					if p != "" {
						cells = append(cells, pr[i]/baseTotal)
					}
				}
				t.AddRow(cells...)
			}
		}
	}
	for _, arch := range vm.AllArchs {
		t.AddRow("AvgS", arch.String(), mean(avgS[arch]))
	}
	for _, arch := range vm.AllArchs {
		t.AddRow("AvgT", arch.String(), mean(avgT[arch]))
	}
	return t, nil
}

// Table4 reproduces Table IV: transaction write footprints and set
// associativity pressure under the NoMap configuration, extended with the
// governor's abort-cause and wasted-work breakdown (squashed cycles are the
// in-transaction cycles discarded by rollbacks — Figure 11's analysis).
func Table4(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Table IV: Transaction characterization (NoMap, lightweight HTM)",
		Columns: []string{"Suite", "Avg write KB", "Max write KB", "Max set assoc",
			"Commits", "Aborts", "Chk/Cap/SOF/Irr", "Squashed cyc"},
	}
	for _, suite := range []string{"SunSpider", "Kraken"} {
		var avg []float64
		var maxKB, maxAssoc, commits, aborts, squashed int64
		var byCause [stats.NumAbortCauses]int64
		for _, w := range workloads.AvgS(suiteByName(suite)) {
			m, err := Run(w, vm.ArchNoMap, profile.TierFTL, cfg)
			if err != nil {
				return nil, err
			}
			c := m.Counters
			if c.TxCommits > 0 {
				avg = append(avg, float64(c.TxWriteBytesTotal)/float64(c.TxCommits)/1024)
			}
			if c.TxWriteBytesMax > maxKB {
				maxKB = c.TxWriteBytesMax
			}
			if c.TxMaxAssoc > maxAssoc {
				maxAssoc = c.TxMaxAssoc
			}
			commits += c.TxCommits
			aborts += c.TxAborts
			squashed += c.CyclesSquashed
			byCause[0] += c.TxCheckAborts
			byCause[1] += c.TxCapacityAborts
			byCause[2] += c.TxSOFAborts
			byCause[3] += c.TxIrrevocableAborts
		}
		t.AddRow(suite, fmt.Sprintf("%.1f", mean(avg)), fmt.Sprintf("%.1f", float64(maxKB)/1024),
			maxAssoc, commits, aborts,
			fmt.Sprintf("%d/%d/%d/%d", byCause[0], byCause[1], byCause[2], byCause[3]), squashed)
	}
	t.Notes = append(t.Notes, "paper: average write footprint 44.9KB (SunSpider) and 47.4KB (Kraken), fitting amply in the 256KB L2")
	return t, nil
}

// RecoveryTable characterizes the abort-recovery governor on the adversarial
// workloads (A01..A04), A/B against the pre-governor policy: steady-state
// aborts by cause, recompilations, deopt-budget charges, and the squashed
// cycles each policy wastes. The phase transitions (A01's storm onset, A03's
// footprint shrink) happen during warm-up, so the measured window shows each
// policy's converged behaviour.
func RecoveryTable(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Abort recovery: governor vs legacy policy (NoMap, steady state)",
		Columns: []string{"Workload", "Policy", "FTL compiles", "Commits",
			"Aborts", "Chk/Cap/SOF/Irr", "Squashed cyc", "OSR deopts"},
	}
	// A high deopt budget keeps the legacy policy's storm visible instead of
	// capping it with a tier ban, matching the nomap-governor tool.
	cfg.Policy.MaxDeopts = 200
	for _, w := range workloads.Adversarial() {
		for _, legacy := range []bool{false, true} {
			runCfg := cfg
			runCfg.LegacyRecovery = legacy
			m, err := Run(w, vm.ArchNoMap, profile.TierFTL, runCfg)
			if err != nil {
				return nil, err
			}
			c := m.Counters
			name := "governor"
			if legacy {
				name = "legacy"
			}
			t.AddRow(w.ID+" "+w.Name, name, c.Compilations[profile.TierFTL], c.TxCommits,
				c.TxAborts,
				fmt.Sprintf("%d/%d/%d/%d", c.TxCheckAborts, c.TxCapacityAborts, c.TxSOFAborts, c.TxIrrevocableAborts),
				c.CyclesSquashed, c.Deopts)
		}
	}
	t.Notes = append(t.Notes,
		"A01: surgical SMP restoration silences the combined-check storm at full tx level",
		"A03: probationary re-promotion recovers loop-nest after the footprint shrinks",
		"A04: irrevocable aborts pin TxOff but keep the FTL tier and charge no budget")
	return t, nil
}

// AppendixValidation reproduces the appendix experiment (§VI-A3): the paper
// validates that its emulated lightweight HTM does not underestimate real
// ROT overheads by running small transactional programs. Here the analogue
// sweeps the transactional region size and reports the per-transaction
// overhead (begin fence + commit flash-clear) as a fraction of execution
// time — it must amortize to noise for loop-sized transactions, which is
// the property that makes NoMap's always-on transactions affordable.
func AppendixValidation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Appendix: lightweight HTM overhead vs. transaction size",
		Columns: []string{"Loop iterations", "Cycles/call", "Tx/call", "Overhead cycles/call", "Overhead %"},
	}
	for _, iters := range []int{4, 16, 64, 256, 1024} {
		src := fmt.Sprintf(`
var data = new Array(%d);
for (var i = 0; i < %d; i++) data[i] = i;
function run() {
  var s = 0;
  for (var i = 0; i < %d; i++) s += data[i];
  return s;
}`, iters, iters, iters)
		w := workloads.Workload{ID: fmt.Sprintf("txsize-%d", iters), Name: "appendix", Source: src}
		m, err := Run(w, vm.ArchNoMapS, profile.TierFTL, cfg)
		if err != nil {
			return nil, err
		}
		c := m.Counters
		calls := float64(cfg.Measure)
		// Overhead per outermost transaction: the modeled XBegin fence and
		// XEnd flash-clear.
		perTx := float64(30 + 5)
		overhead := perTx * float64(c.TxBegins)
		total := float64(c.TotalCycles())
		t.AddRow(
			iters,
			fmt.Sprintf("%.0f", total/calls),
			fmt.Sprintf("%.1f", float64(c.TxBegins)/calls),
			fmt.Sprintf("%.1f", overhead/calls),
			fmt.Sprintf("%.2f%%", 100*overhead/total),
		)
	}
	t.Notes = append(t.Notes,
		"paper appendix: the emulated platform does not underestimate POWER8 ROT overhead; "+
			"here the fixed ~35-cycle begin+commit cost amortizes below 1% for realistic loop sizes")
	return t, nil
}

func suiteByName(name string) []workloads.Workload {
	if name == "Kraken" {
		return workloads.Kraken()
	}
	return workloads.SunSpider()
}
