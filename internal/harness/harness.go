// Package harness runs the paper's evaluation: steady-state measurements of
// the SunSpider and Kraken suites across the six architecture
// configurations, and the drivers that regenerate every table and figure
// (Table I, Figure 1, Figure 3, §III-A2's deoptimization counts, Figures
// 8-11, Table IV).
//
// Methodology mirrors the paper's (§VI): each benchmark's run() is invoked
// until its hot functions reach the FTL tier, the counters are reset, and a
// fixed number of steady-state invocations is measured.
package harness

import (
	"fmt"

	"nomap/internal/governor"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// Config controls the measurement protocol.
type Config struct {
	// Warmup is the number of run() calls before counters reset.
	Warmup int
	// Measure is the number of measured steady-state run() calls.
	Measure int
	// Policy sets tier-up thresholds; the default promotes quickly so
	// simulation time is spent in steady state, not warm-up.
	Policy profile.Policy
	// LegacyRecovery switches the jit backend to the pre-governor recovery
	// policy (the RecoveryTable experiment's A/B baseline).
	LegacyRecovery bool
	// Verbose callbacks (optional): invoked per measurement.
	Progress func(w workloads.Workload, arch vm.Arch)
}

// FastPolicy promotes functions up the tiers quickly so simulated runs spend
// their time in steady state rather than warm-up. Shared by the evaluation
// harness and the fault-injection oracle, whose sweeps re-run each program
// hundreds of times.
func FastPolicy() profile.Policy {
	return profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
}

// DefaultConfig returns the evaluation protocol used by nomap-bench.
func DefaultConfig() Config {
	return Config{
		Warmup:  60,
		Measure: 20,
		Policy:  FastPolicy(),
	}
}

// Measurement is one steady-state observation.
type Measurement struct {
	Workload workloads.Workload
	Arch     vm.Arch
	MaxTier  profile.Tier
	Counters stats.Counters
	Result   string
}

// FTLInstr returns the dynamic instructions attributable to FTL code.
func (m *Measurement) FTLInstr() int64 {
	c := &m.Counters
	return c.Instr[stats.NoTM] + c.Instr[stats.TMUnopt] + c.Instr[stats.TMOpt]
}

// Run measures one workload under one configuration.
func Run(w workloads.Workload, arch vm.Arch, maxTier profile.Tier, cfg Config) (Measurement, error) {
	v := newVM(arch, maxTier, cfg)
	if _, err := v.Run(w.Source); err != nil {
		return Measurement{}, fmt.Errorf("%s setup: %w", w.ID, err)
	}
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			return Measurement{}, fmt.Errorf("%s warmup: %w", w.ID, err)
		}
	}
	v.ResetCounters()
	var result string
	measured := cfg.Measure
	if w.Iterations > 1 {
		// Workloads with very short run() bodies scale their measured reps
		// so steady-state noise stays low.
		measured *= w.Iterations
	}
	for i := 0; i < measured; i++ {
		r, err := v.CallGlobal("run")
		if err != nil {
			return Measurement{}, fmt.Errorf("%s measure: %w", w.ID, err)
		}
		result = r.ToStringValue()
	}
	if cfg.Progress != nil {
		cfg.Progress(w, arch)
	}
	return Measurement{
		Workload: w,
		Arch:     arch,
		MaxTier:  maxTier,
		Counters: *v.Counters(),
		Result:   result,
	}, nil
}

func newVM(arch vm.Arch, maxTier profile.Tier, cfg Config) *vm.VM {
	vcfg := vm.DefaultConfig()
	vcfg.Arch = arch
	vcfg.MaxTier = maxTier
	if cfg.Policy != (profile.Policy{}) {
		vcfg.Policy = cfg.Policy
	}
	v := vm.New(vcfg)
	b := jit.Attach(v)
	if cfg.LegacyRecovery {
		pol := governor.DefaultPolicy(!arch.HeavyweightHTM())
		pol.Legacy = true
		b.SetGovernorPolicy(pol)
	}
	return v
}

// Matrix measures a whole suite across the six architectures at TierFTL,
// returning measurements indexed by [workload][arch]. Results are verified
// to agree across configurations — a mismatch is a correctness bug, not a
// measurement artifact, and aborts the experiment.
func Matrix(suite []workloads.Workload, cfg Config) (map[string]map[vm.Arch]Measurement, error) {
	out := make(map[string]map[vm.Arch]Measurement, len(suite))
	for _, w := range suite {
		perArch := make(map[vm.Arch]Measurement, len(vm.AllArchs))
		want := ""
		for _, arch := range vm.AllArchs {
			m, err := Run(w, arch, profile.TierFTL, cfg)
			if err != nil {
				return nil, err
			}
			if want == "" {
				want = m.Result
			} else if m.Result != want {
				return nil, fmt.Errorf("%s: result mismatch under %v: %q vs %q", w.ID, arch, m.Result, want)
			}
			perArch[arch] = m
		}
		out[w.ID] = perArch
	}
	return out, nil
}

// mean returns the arithmetic mean of xs (0 for empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
