package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the textual analogue of one of the
// paper's tables or figures.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], cell)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}
