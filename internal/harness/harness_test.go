package harness

import (
	"strconv"
	"strings"
	"testing"

	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Warmup = 50
	cfg.Measure = 5
	return cfg
}

func TestRunSteadyState(t *testing.T) {
	w, _ := workloads.ByID("S10")
	m, err := Run(w, vm.ArchBase, profile.TierFTL, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Result == "" {
		t.Error("no result recorded")
	}
	if m.Counters.TotalInstr() == 0 {
		t.Error("no instructions measured")
	}
	if m.Counters.FTLCalls == 0 {
		t.Error("steady state must execute FTL code")
	}
	// Steady state: warm-up tiers should contribute nothing after reset.
	if m.Counters.InterpOps > m.Counters.TotalInstr()/10 {
		t.Errorf("interpreter still dominant after warm-up: %d of %d",
			m.Counters.InterpOps, m.Counters.TotalInstr())
	}
	if m.FTLInstr() == 0 {
		t.Error("FTLInstr must be nonzero")
	}
}

func TestRunNoMapReducesInstructions(t *testing.T) {
	w, _ := workloads.ByID("S10") // the paper's SOF showcase
	cfg := testConfig()
	base, err := Run(w, vm.ArchBase, profile.TierFTL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := Run(w, vm.ArchNoMap, profile.TierFTL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Result != base.Result {
		t.Fatalf("results diverge: %q vs %q", nm.Result, base.Result)
	}
	if nm.Counters.TotalInstr() >= base.Counters.TotalInstr() {
		t.Errorf("NoMap (%d) should execute fewer instructions than Base (%d)",
			nm.Counters.TotalInstr(), base.Counters.TotalInstr())
	}
	if nm.Counters.Instr[stats.TMOpt] == 0 {
		t.Error("NoMap must execute transactional code")
	}
}

func TestMatrixVerifiesResults(t *testing.T) {
	suite := []workloads.Workload{}
	for _, id := range []string{"S10", "S18"} {
		w, _ := workloads.ByID(id)
		suite = append(suite, w)
	}
	m, err := Matrix(suite, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("matrix has %d workloads", len(m))
	}
	for id, per := range m {
		if len(per) != len(vm.AllArchs) {
			t.Errorf("%s: %d archs measured", id, len(per))
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("row1", 1.5)
	tab.AddRow("longer-row-name", 42)
	out := tab.Render()
	for _, want := range []string{"T\n", "name", "value", "row1", "1.500", "42", "longer-row-name", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestMeanHelper(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

// A miniature end-to-end experiment: Figure 3's machinery on two workloads
// must produce per-class rates that sum to the total.
func TestFigure3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	tab, err := Figure3("Kraken", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var avgS []string
	for _, row := range tab.Rows {
		if row[0] == "AvgS" {
			avgS = row
		}
	}
	if avgS == nil {
		t.Fatal("no AvgS row")
	}
	sum := 0.0
	for _, cell := range avgS[1:6] {
		var f float64
		if _, err := fmtSscan(cell, &f); err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		sum += f
	}
	var total float64
	fmtSscan(avgS[6], &total)
	if diff := sum - total; diff > 0.3 || diff < -0.3 {
		t.Errorf("class sum %.1f != total %.1f", sum, total)
	}
	if total < 2 || total > 40 {
		t.Errorf("AvgS total %.1f outside plausible range", total)
	}
}

// fmtSscan is a tiny strconv wrapper for table cells.
func fmtSscan(s string, f *float64) (int, error) {
	v, err := strconvParse(s)
	if err != nil {
		return 0, err
	}
	*f = v
	return 1, nil
}

func strconvParse(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}
