package ir

import (
	"nomap/internal/ic"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// ExpandDispatch materializes the dispatch plans the builder attached to
// generic-call placeholders (OpCallRuntime values with a non-nil Plan) as
// shape-guarded dispatch trees, and returns how many trees it built. It runs
// immediately after IR construction in both the DFG and FTL pipelines —
// before inlining, transaction formation, and the loop passes — so the trees
// it builds are ordinary guarded code to every later pass: the per-way
// OpCheckCallee guards qualify for speculative inlining exactly like
// monomorphic sites, transaction formation converts the deopting tail guard
// to an abort inside transactions, and GVN/LICM treat the predicates as
// shape reads.
//
// demoted, when non-nil, reports sites the governor has demoted to the
// generic path (megamorphic storms past the dispatch-miss budget); their
// plans are dropped and the placeholder call — which is already a correct
// generic lowering — simply stays. Every processed placeholder has its Plan
// (and the tail-guard snapshot riding on it) cleared, so no plan survives
// into cached artifacts.
//
// Tree shape for a plan with ways w0..w{n-1} (hotness order): a chain of
// BlockIf blocks, each testing one way with a non-deopting predicate
// (OpHasShape / OpHasCallee) and branching to that way's body; the final
// chain block re-asserts the last way with a deopting guard (OpCheckShape /
// OpCheckCallee carrying the site snapshot) so an unplanned receiver exits
// to Baseline — or aborts its transaction — like any other failed
// speculation. Bodies rejoin at the placeholder's continuation, merging
// results through a phi.
func ExpandDispatch(f *Func, demoted func(pc int, path string) bool) int {
	expanded := 0
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for ci := 0; ci < len(b.Values); ci++ {
			v := b.Values[ci]
			if v.Op != OpCallRuntime || v.Plan == nil {
				continue
			}
			plan := v.Plan
			v.Plan = nil
			if demoted != nil && demoted(v.BCPos, v.InlinePath()) {
				v.Deopt = nil // demoted: the generic call stays as-is
				continue
			}
			expandSite(f, b, ci, v, plan)
			expanded++
			break // b was split at the site; the tail is a later block
		}
	}
	return expanded
}

// expandSite replaces the placeholder call at b.Values[ci] with a dispatch
// tree for plan.
func expandSite(f *Func, b *Block, ci int, v *Value, plan *ic.Plan) {
	trans := 0
	for _, w := range plan.Ways {
		if w.NewShape != nil {
			trans++
		}
	}
	f.Dispatch = append(f.Dispatch, DispatchInfo{
		PC: v.BCPos, Path: v.InlinePath(), Kind: plan.Kind, Name: plan.Name,
		Ways: len(plan.Ways), Trans: trans,
	})

	// Split b at the placeholder: the tail (with the original terminator)
	// moves to a continuation block the way bodies rejoin at.
	cont := f.NewBlock()
	cont.Kind = b.Kind
	cont.Control = b.Control
	cont.BackEdge = b.BackEdge
	cont.Inline = b.Inline
	cont.StartPC = b.StartPC
	cont.Values = append(cont.Values, b.Values[ci+1:]...)
	for _, w := range cont.Values {
		w.Block = cont
	}
	cont.Succs = b.Succs
	for _, s := range cont.Succs {
		for i, p := range s.Preds {
			if p == b {
				s.Preds[i] = cont
			}
		}
	}
	b.Values = b.Values[:ci] // drops the placeholder call
	b.Kind = BlockPlain
	b.Control = nil
	b.Succs = nil
	b.BackEdge = false

	// newVal stamps a dispatch-tree value with the site's position.
	newVal := func(blk *Block, op Op, t Type, args ...*Value) *Value {
		nv := blk.NewValue(op, t, args...)
		nv.BCPos = v.BCPos
		nv.Inline = v.Inline
		return nv
	}

	// body emits one way's specialized code into blk and returns its result
	// (nil for stores).
	body := func(blk *Block, w *ic.Way) *Value {
		switch plan.Kind {
		case ic.KindGet:
			obj := v.Args[0]
			ld := newVal(blk, OpLoadSlot, TypeGeneric, obj)
			ld.AuxInt = int64(w.Offset)
			return ld
		case ic.KindSet:
			obj, src := v.Args[0], v.Args[2]
			if w.NewShape != nil {
				// Speculated transition: the shape guard proved the property
				// is absent, so the store is the append path and the receiver
				// leaves with NewShape.
				tr := newVal(blk, OpTransition, TypeNone, obj, src)
				tr.AuxStr = plan.Name
				tr.AuxInt = int64(w.Offset)
				tr.Shape = w.NewShape
				// Dispatch-marked so trace events name the destination shape;
				// OpTransition is not a check, so no injection or governor
				// site identity rides on the mark.
				tr.Dispatch = true
				return nil
			}
			st := newVal(blk, OpStoreSlot, TypeNone, obj, src)
			st.AuxInt = int64(w.Offset)
			return nil
		case ic.KindCall:
			callee := v.Args[0]
			guard := newVal(blk, OpCheckCallee, TypeNone, callee)
			guard.Callee = w.Target
			guard.Check = stats.CheckOther
			guard.Deopt = v.Deopt
			guard.Dispatch = true
			undef := newVal(blk, OpConst, TypeGeneric)
			undef.AuxVal = value.Undefined()
			call := newVal(blk, OpCallDirect, TypeGeneric, append([]*Value{undef}, v.Args[1:]...)...)
			call.Callee = w.Target
			return call
		case ic.KindMethod:
			recv := v.Args[0]
			m := newVal(blk, OpLoadSlot, TypeGeneric, recv)
			m.AuxInt = int64(w.Offset)
			guard := newVal(blk, OpCheckCallee, TypeNone, m)
			guard.Callee = w.Target
			guard.Check = stats.CheckOther
			guard.Deopt = v.Deopt
			guard.Dispatch = true
			call := newVal(blk, OpCallDirect, TypeGeneric, append([]*Value{recv}, v.Args[2:]...)...)
			call.Callee = w.Target
			return call
		}
		return nil
	}

	// predicate emits way w's non-deopting test into blk.
	predicate := func(blk *Block, w *ic.Way) *Value {
		if plan.Kind == ic.KindCall {
			p := newVal(blk, OpHasCallee, TypeBool, v.Args[0])
			p.Callee = w.Target
			p.Dispatch = true
			return p
		}
		p := newVal(blk, OpHasShape, TypeBool, v.Args[0])
		p.Shape = w.Shape
		p.Dispatch = true
		return p
	}

	// tailGuard re-asserts the last way with a deopting check.
	tailGuard := func(blk *Block, w *ic.Way) {
		if plan.Kind == ic.KindCall {
			g := newVal(blk, OpCheckCallee, TypeNone, v.Args[0])
			g.Callee = w.Target
			g.Check = stats.CheckOther
			g.Deopt = v.Deopt
			g.Dispatch = true
			return
		}
		g := newVal(blk, OpCheckShape, TypeNone, v.Args[0])
		g.Shape = w.Shape
		g.Check = stats.CheckProperty
		g.Deopt = v.Deopt
		g.Dispatch = true
	}

	// Build the chain: b tests way 0; each subsequent chain block tests the
	// next way; the final chain block guards the last way and runs its body
	// inline. Bodies edge into cont in way order, the tail block last, so
	// the result phi's argument order matches cont.Preds.
	n := len(plan.Ways)
	var results []*Value
	chain := b
	for k := 0; k < n-1; k++ {
		w := &plan.Ways[k]
		p := predicate(chain, w)
		chain.Kind = BlockIf
		chain.Control = p
		wayBlk := f.NewBlock()
		wayBlk.Inline = b.Inline
		results = append(results, body(wayBlk, w))
		AddEdge(chain, wayBlk)
		AddEdge(wayBlk, cont)
		next := f.NewBlock()
		next.Inline = b.Inline
		AddEdge(chain, next)
		chain = next
	}
	last := &plan.Ways[n-1]
	tailGuard(chain, last)
	results = append(results, body(chain, last))
	chain.Kind = BlockPlain
	AddEdge(chain, cont)

	// Merge results and rewrite the placeholder's uses. Store plans produce
	// no value (the bytecode's SetProp has no destination register, so the
	// placeholder is use-free outside stack maps, where undefined — the
	// value a re-executed store leaves — is what a Baseline resume expects).
	if plan.Kind == ic.KindGet || plan.Kind == ic.KindCall || plan.Kind == ic.KindMethod {
		phi := cont.InsertValueAt(0, OpPhi, TypeGeneric, results...)
		phi.BCPos = v.BCPos
		phi.Inline = b.Inline
		ReplaceUses(f, v, phi)
	} else {
		undef := newVal(b, OpConst, TypeGeneric)
		undef.AuxVal = value.Undefined()
		ReplaceUses(f, v, undef)
	}
	v.Deopt = nil
}
