package ir

import "fmt"

// Op is an IR opcode.
type Op uint8

const (
	OpInvalid Op = iota

	// Values.
	OpConst    // AuxVal
	OpParam    // AuxInt = parameter index
	OpOSRLocal // AuxInt = bytecode register index; bound from the OSR-entry frame

	// Int32 arithmetic. Add/Sub/Mul may overflow: they set the (sticky)
	// overflow flag and are guarded by OpCheckOverflow unless NoMap's SOF
	// pass removed the guard (paper §IV-C2).
	OpAddInt
	OpSubInt
	OpMulInt
	OpNegInt
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpUShr // uint32 result; guarded by CheckUint32 when speculated int32

	// Double arithmetic.
	OpAddDouble
	OpSubDouble
	OpMulDouble
	OpDivDouble
	OpModDouble
	OpNegDouble

	// Conversions (pure).
	OpIntToDouble
	OpNumberToDouble // checked-number (int32 or double) to double
	OpTruncDouble    // ECMAScript ToInt32 on a checked number
	OpUint32ToDouble // reinterpret an int32 as uint32 and widen (>>> sites that overflow)
	OpToBool         // JS truthiness of any value
	OpNormalizeHole  // hole -> undefined after a raw element load

	// Comparisons. AuxInt holds a Cmp code.
	OpCmpInt
	OpCmpDouble
	OpStrictEqGeneric // pointer/value strict equality fast path
	OpBoolNot         // negate a bool

	// OpMathOp is an inlined Math.* intrinsic (AuxStr = name); the FTL tier
	// emits it after a callee check proves the target is the builtin.
	OpMathOp

	// Checks (side-effect-only; Deopt non-nil = SMP, nil = tx abort).
	OpCheckInt32    // arg generic; class Type
	OpCheckNumber   // arg generic; class Type
	OpCheckShape    // arg obj; Shape; class Property
	OpCheckArray    // arg generic; class Type
	OpCheckBounds   // args (array, index); class Bounds
	OpCheckNonNeg   // arg index; class Bounds (append stores: growth is legal, negatives are not)
	OpCheckOverflow // arg int arith result; class Overflow
	OpCheckUint32   // arg UShr result; class Overflow
	OpCheckHole     // arg raw element; class Other
	OpCheckCallee   // arg callee value; Callee; class Other

	// Polymorphic dispatch (internal/ic plans). HasShape/HasCallee are the
	// non-deopting predicates of a dispatch tree's guard chain; Transition is
	// a speculated shape transition (property add) executed under a matching
	// shape guard.
	OpHasShape   // (obj) -> bool; Shape = candidate shape
	OpHasCallee  // (callee) -> bool; Callee = candidate target
	OpTransition // (obj, val); AuxStr = property name, AuxInt = new slot offset, Shape = post-transition shape

	// Memory.
	OpLoadSlot    // (obj); AuxInt = slot offset
	OpStoreSlot   // (obj, val); AuxInt = slot offset
	OpLoadElem    // (arr, idx) raw element (may be hole)
	OpStoreElem   // (arr, idx, val) in-bounds store
	OpLoadLength  // (arr)
	OpLoadGlobal  // AuxStr = name (cached global slot)
	OpStoreGlobal // (val); AuxStr

	// Calls.
	OpCallDirect  // (args...); Callee = known user function
	OpCallRuntime // (args...); AuxStr = runtime entry name, AuxInt = aux

	// SSA.
	OpPhi

	// Transactions (inserted by NoMap, paper §IV-B, §V-C).
	OpTxBegin // Deopt = recovery entry in Baseline
	OpTxEnd
	OpTxTile // loop-backedge commit point; Deopt = recovery entry

	numIROps
)

type opInfo struct {
	name string
	// pure: no memory access, no side effects; freely CSE/hoistable.
	pure bool
	// memRead / memWrite: accesses the JS heap.
	memRead  bool
	memWrite bool
	// call: opaque call (full barrier).
	call bool
	// check: guarded speculation with Deopt/abort semantics.
	check bool
}

var opInfos = [numIROps]opInfo{
	OpInvalid:         {name: "invalid"},
	OpConst:           {name: "const", pure: true},
	OpParam:           {name: "param", pure: true},
	OpOSRLocal:        {name: "osrlocal", pure: true},
	OpAddInt:          {name: "addi", pure: true},
	OpSubInt:          {name: "subi", pure: true},
	OpMulInt:          {name: "muli", pure: true},
	OpNegInt:          {name: "negi", pure: true},
	OpBitAnd:          {name: "and", pure: true},
	OpBitOr:           {name: "or", pure: true},
	OpBitXor:          {name: "xor", pure: true},
	OpShl:             {name: "shl", pure: true},
	OpShr:             {name: "shr", pure: true},
	OpUShr:            {name: "ushr", pure: true},
	OpAddDouble:       {name: "addf", pure: true},
	OpSubDouble:       {name: "subf", pure: true},
	OpMulDouble:       {name: "mulf", pure: true},
	OpDivDouble:       {name: "divf", pure: true},
	OpModDouble:       {name: "modf", pure: true},
	OpNegDouble:       {name: "negf", pure: true},
	OpIntToDouble:     {name: "i2f", pure: true},
	OpNumberToDouble:  {name: "n2f", pure: true},
	OpTruncDouble:     {name: "trunc", pure: true},
	OpUint32ToDouble:  {name: "u2f", pure: true},
	OpToBool:          {name: "tobool", pure: true},
	OpNormalizeHole:   {name: "dehole", pure: true},
	OpCmpInt:          {name: "cmpi", pure: true},
	OpCmpDouble:       {name: "cmpf", pure: true},
	OpStrictEqGeneric: {name: "seq", pure: true},
	OpBoolNot:         {name: "bnot", pure: true},
	OpMathOp:          {name: "math", pure: true},
	OpCheckInt32:      {name: "chki32", check: true},
	OpCheckNumber:     {name: "chknum", check: true},
	OpCheckShape:      {name: "chkshape", check: true, memRead: true},
	OpCheckArray:      {name: "chkarr", check: true},
	OpCheckBounds:     {name: "chkbounds", check: true, memRead: true},
	OpCheckNonNeg:     {name: "chknonneg", check: true},
	OpCheckOverflow:   {name: "chkovf", check: true},
	OpCheckUint32:     {name: "chku32", check: true},
	OpCheckHole:       {name: "chkhole", check: true},
	OpCheckCallee:     {name: "chkcallee", check: true},
	OpHasShape:        {name: "hasshape", memRead: true},
	OpHasCallee:       {name: "hascallee", pure: true},
	OpTransition:      {name: "transition", memWrite: true},
	OpLoadSlot:        {name: "ldslot", memRead: true},
	OpStoreSlot:       {name: "stslot", memWrite: true},
	OpLoadElem:        {name: "ldelem", memRead: true},
	OpStoreElem:       {name: "stelem", memWrite: true},
	OpLoadLength:      {name: "ldlen", memRead: true},
	OpLoadGlobal:      {name: "ldg", memRead: true},
	OpStoreGlobal:     {name: "stg", memWrite: true},
	OpCallDirect:      {name: "call", call: true},
	OpCallRuntime:     {name: "callrt", call: true},
	OpPhi:             {name: "phi", pure: true},
	OpTxBegin:         {name: "txbegin", call: true},
	OpTxEnd:           {name: "txend", call: true},
	OpTxTile:          {name: "txtile", call: true},
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opInfos) && opInfos[o].name != "" {
		return opInfos[o].name
	}
	return fmt.Sprintf("irop(%d)", uint8(o))
}

// IsPure reports no memory access and no side effects.
func (o Op) IsPure() bool { return opInfos[o].pure }

// IsCheck reports a speculation check.
func (o Op) IsCheck() bool { return opInfos[o].check }

// ReadsMemory reports the op observes the JS heap (checks on mutable object
// state — shape, array length — count as reads).
func (o Op) ReadsMemory() bool { return opInfos[o].memRead }

// WritesMemory reports the op mutates the JS heap.
func (o Op) WritesMemory() bool { return opInfos[o].memWrite }

// IsCall reports an opaque call (full optimization barrier).
func (o Op) IsCall() bool { return opInfos[o].call }

// IsSMP reports whether value v is a Stack Map Point: a check whose failure
// deoptimizes (rather than aborts), or a transaction begin/tile carrying a
// recovery map. SMPs behave like opaque calls for optimization purposes
// (paper §III-A3: FTL cannot move memory accesses across an SMP) — they are
// lowered to patchpoints that conservatively read and write all memory.
func (v *Value) IsSMP() bool {
	if v.Op.IsCheck() {
		return v.Deopt != nil
	}
	return false
}

// IsBarrier reports whether v blocks code motion and memory CSE across it:
// opaque calls, transaction boundaries, and SMP-carrying checks. A check
// converted to an abort is NOT a barrier — that is exactly the optimization
// opportunity NoMap creates (paper §IV-B).
func (v *Value) IsBarrier() bool {
	return v.Op.IsCall() || v.IsSMP()
}
