package ir

// Clone returns a deep copy of f that shares no mutable IR state with the
// original, plus the original→copy value mapping. Per-isolate immutable
// references carried on values — Shape, Callee, AuxVal — are copied verbatim;
// the caller (the compiled-code cache's bind step) is expected to rewrite
// them for the target isolate using the returned mapping. Value and block IDs
// are preserved, so NumValues (which sizes the machine's register file) and
// diagnostics match the original. Inline frames are deep-copied too (their
// Callee is also isolate-bound and rewritten at bind), and stack-map Caller
// chains keep their sharing structure: maps shared between several deopt
// points in the original stay shared in the copy.
func (f *Func) Clone() (*Func, map[*Value]*Value) {
	nf := &Func{
		Name:        f.Name,
		Source:      f.Source,
		nextValueID: f.nextValueID,
		nextBlockID: f.nextBlockID,
		TxAware:     f.TxAware,
		OSREntryPC:  f.OSREntryPC,
		Dispatch:    append([]DispatchInfo(nil), f.Dispatch...),
	}
	imap := make(map[*InlineFrame]*InlineFrame, len(f.Inlines))
	for _, inf := range f.Inlines {
		c := *inf
		imap[inf] = &c
	}
	for _, inf := range f.Inlines {
		ni := imap[inf]
		if inf.Parent != nil {
			ni.Parent = imap[inf.Parent]
		}
		nf.Inlines = append(nf.Inlines, ni)
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	vmap := make(map[*Value]*Value, f.nextValueID)
	smmap := make(map[*StackMap]*StackMap)
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Kind: b.Kind, StartPC: b.StartPC, BackEdge: b.BackEdge, Inline: imap[b.Inline], Fn: nf}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	// remap tolerates references to values no longer placed in any block
	// (e.g. a stale EntryState surviving DCE) by cloning them as orphans:
	// they are reachable only through the referencing stack map, exactly
	// like the original's.
	var remap func(v *Value) *Value
	var remapSM func(sm *StackMap) *StackMap
	remap = func(v *Value) *Value {
		if v == nil {
			return nil
		}
		if nv, ok := vmap[v]; ok {
			return nv
		}
		nv := &Value{
			ID: v.ID, Op: v.Op, Type: v.Type,
			AuxInt: v.AuxInt, AuxFloat: v.AuxFloat, AuxStr: v.AuxStr,
			AuxVal: v.AuxVal, Shape: v.Shape, Callee: v.Callee,
			Check: v.Check, Free: v.Free, BCPos: v.BCPos,
			Plan: v.Plan, Dispatch: v.Dispatch,
			Inline: imap[v.Inline],
			Block:  bmap[v.Block],
		}
		vmap[v] = nv
		if len(v.Args) > 0 {
			nv.Args = make([]*Value, len(v.Args))
			for i, a := range v.Args {
				nv.Args[i] = remap(a)
			}
		}
		nv.Deopt = remapSM(v.Deopt)
		return nv
	}
	remapSM = func(sm *StackMap) *StackMap {
		if sm == nil {
			return nil
		}
		if nsm, ok := smmap[sm]; ok {
			return nsm
		}
		nsm := &StackMap{PC: sm.PC, Inline: imap[sm.Inline], Entries: make([]StackMapEntry, len(sm.Entries))}
		smmap[sm] = nsm
		for i, e := range sm.Entries {
			nsm.Entries[i] = StackMapEntry{Reg: e.Reg, Val: remap(e.Val)}
		}
		nsm.Caller = remapSM(sm.Caller)
		return nsm
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		nb.Values = make([]*Value, len(b.Values))
		for i, v := range b.Values {
			nb.Values[i] = remap(v)
		}
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		nb.Control = remap(b.Control)
		nb.EntryState = remapSM(b.EntryState)
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, bmap[s])
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, bmap[p])
		}
	}
	nf.Entry = bmap[f.Entry]
	return nf, vmap
}
