package ir

// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) and natural
// loop discovery, used by LICM, the bounds-check combining pass, and
// NoMap's transaction formation around loop nests.

// DomTree holds immediate dominators indexed by block ID.
type DomTree struct {
	idom []*Block
	rpo  []*Block
	rpoN []int // block ID -> reverse postorder number
}

// BuildDom computes the dominator tree of f.
func BuildDom(f *Func) *DomTree {
	// Reverse postorder over reachable blocks.
	seen := make([]bool, len(f.Blocks)+16)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	rpo := make([]*Block, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	maxID := 0
	for _, b := range f.Blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
	}
	t := &DomTree{
		idom: make([]*Block, maxID+1),
		rpo:  rpo,
		rpoN: make([]int, maxID+1),
	}
	for i := range t.rpoN {
		t.rpoN[i] = -1
	}
	for i, b := range rpo {
		t.rpoN[b.ID] = i
	}
	t.idom[f.Entry.ID] = f.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if t.rpoN[p.ID] < 0 || t.idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.rpoN[a.ID] > t.rpoN[b.ID] {
			a = t.idom[a.ID]
		}
		for t.rpoN[b.ID] > t.rpoN[a.ID] {
			b = t.idom[b.ID]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry dominates itself).
func (t *DomTree) Idom(b *Block) *Block { return t.idom[b.ID] }

// Reachable reports whether b was reachable from entry when the tree was
// built.
func (t *DomTree) Reachable(b *Block) bool {
	return b.ID < len(t.rpoN) && t.rpoN[b.ID] >= 0
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		id := t.idom[b.ID]
		if id == nil || id == b {
			return false
		}
		b = id
	}
}

// RPO returns blocks in reverse postorder.
func (t *DomTree) RPO() []*Block { return t.rpo }

// Loop is a natural loop.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are directly nested loops.
	Children []*Loop
	// Depth is 1 for top-level loops.
	Depth int
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// BlockList returns the loop's blocks ordered by ID. Blocks is a set; passes
// that create or move values while walking it must use this instead so that
// value numbering does not depend on map iteration order.
func (l *Loop) BlockList() []*Block {
	out := make([]*Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FindLoops discovers natural loops via back edges (an edge b->h where h
// dominates b) and nests them into a forest ordered outermost-first.
func FindLoops(f *Func, dom *DomTree) []*Loop {
	byHeader := make(map[*Block]*Loop)
	var loops []*Loop
	for _, b := range dom.RPO() {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b) {
				continue
			}
			l, ok := byHeader[s]
			if !ok {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				byHeader[s] = l
				loops = append(loops, l)
			}
			// Collect the natural loop body by walking predecessors from
			// the back edge source.
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range x.Preds {
					if dom.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Nest: loop A is a child of the smallest loop B != A containing A's
	// header.
	for _, l := range loops {
		var best *Loop
		for _, m := range loops {
			if m == l || !m.Blocks[l.Header] {
				continue
			}
			if best == nil || len(m.Blocks) < len(best.Blocks) {
				best = m
			}
		}
		l.Parent = best
		if best != nil {
			best.Children = append(best.Children, l)
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// Preheader returns the unique out-of-loop predecessor of the loop header,
// or nil when there is none (multiple entries).
func (l *Loop) Preheader() *Block {
	var pre *Block
	for _, p := range l.Header.Preds {
		if l.Blocks[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}

// Exits returns the blocks outside the loop that are targets of edges from
// inside the loop, ordered by the exiting block's ID.
func (l *Loop) Exits() []*Block {
	seen := map[*Block]bool{}
	var exits []*Block
	for _, b := range l.BlockList() {
		for _, s := range b.Succs {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}

// Latches returns the in-loop predecessors of the header (back-edge sources).
func (l *Loop) Latches() []*Block {
	var latches []*Block
	for _, p := range l.Header.Preds {
		if l.Blocks[p] {
			latches = append(latches, p)
		}
	}
	return latches
}

// ResolveEntryState projects a loop header's entry state onto one incoming
// edge: the header's own phis are replaced by their argument along that
// edge, yielding values that dominate the edge's source block. Used both by
// NoMap's transaction recovery maps and by check hoisting (a check relocated
// to the preheader needs a stack map valid there). Requires EntryState to
// still be populated (pre-DCE).
func ResolveEntryState(header *Block, pred *Block) *StackMap {
	k := header.PredIndex(pred)
	src := header.EntryState
	// Inline/Caller carry over: a loop inside flattened callee code recovers
	// into the callee's logical frame, with the caller chain intact.
	sm := &StackMap{PC: src.PC, Inline: src.Inline, Caller: src.Caller, Entries: make([]StackMapEntry, 0, len(src.Entries))}
	for _, e := range src.Entries {
		v := e.Val
		for v.Op == OpPhi && v.Block == header && k < len(v.Args) {
			nv := v.Args[k]
			if nv == v {
				break
			}
			v = nv
		}
		sm.Entries = append(sm.Entries, StackMapEntry{Reg: e.Reg, Val: v})
	}
	return sm
}
