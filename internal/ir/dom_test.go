package ir

import "testing"

// Synthetic CFG tests for dominators and loop discovery (the builder tests
// cover compiled shapes; these cover hand-built corner cases).

// diamond: e -> a -> {b, c} -> d
func buildDiamond() (*Func, *Block, *Block, *Block, *Block) {
	f := NewFunc("diamond", nil)
	a := f.NewBlock()
	b := f.NewBlock()
	c := f.NewBlock()
	d := f.NewBlock()
	f.Entry = a
	a.Kind = BlockIf
	cond := a.NewValue(OpConst, TypeBool)
	a.Control = cond
	AddEdge(a, b)
	AddEdge(a, c)
	AddEdge(b, d)
	AddEdge(c, d)
	d.Kind = BlockReturn
	d.Control = cond
	return f, a, b, c, d
}

func TestDominatorsDiamond(t *testing.T) {
	f, a, b, c, d := buildDiamond()
	dom := BuildDom(f)
	if dom.Idom(d) != a {
		t.Errorf("idom(d) = b%d, want a", dom.Idom(d).ID)
	}
	if !dom.Dominates(a, d) || !dom.Dominates(a, b) || !dom.Dominates(a, c) {
		t.Error("a must dominate everything")
	}
	if dom.Dominates(b, d) || dom.Dominates(c, d) {
		t.Error("neither branch dominates the merge")
	}
	if !dom.Dominates(d, d) {
		t.Error("dominance is reflexive")
	}
	if len(FindLoops(f, dom)) != 0 {
		t.Error("diamond has no loops")
	}
}

// loop: e -> pre -> h <-> body, h -> exit
func buildLoop() (*Func, *Block, *Block, *Block, *Block) {
	f := NewFunc("loop", nil)
	pre := f.NewBlock()
	h := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	f.Entry = pre
	pre.Kind = BlockPlain
	AddEdge(pre, h)
	h.Kind = BlockIf
	cond := h.NewValue(OpConst, TypeBool)
	h.Control = cond
	AddEdge(h, body)
	AddEdge(h, exit)
	body.Kind = BlockPlain
	AddEdge(body, h)
	exit.Kind = BlockReturn
	exit.Control = cond
	return f, pre, h, body, exit
}

func TestLoopDiscovery(t *testing.T) {
	f, pre, h, body, exit := buildLoop()
	dom := BuildDom(f)
	loops := FindLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("found %d loops", len(loops))
	}
	l := loops[0]
	if l.Header != h {
		t.Errorf("header = b%d", l.Header.ID)
	}
	if !l.Contains(body) || !l.Contains(h) {
		t.Error("loop must contain header and body")
	}
	if l.Contains(pre) || l.Contains(exit) {
		t.Error("loop must not contain preheader or exit")
	}
	if l.Preheader() != pre {
		t.Error("wrong preheader")
	}
	if got := l.Latches(); len(got) != 1 || got[0] != body {
		t.Errorf("latches = %v", got)
	}
	if got := l.Exits(); len(got) != 1 || got[0] != exit {
		t.Errorf("exits = %v", got)
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Error("top-level loop nesting wrong")
	}
}

func TestUnreachableBlockTolerated(t *testing.T) {
	f, _, _, _, _ := buildDiamond()
	dead := f.NewBlock()
	dead.Kind = BlockReturn
	dead.Control = f.Entry.Control
	dom := BuildDom(f)
	if dom.Reachable(dead) {
		t.Error("dead block must be unreachable")
	}
	// Dominance queries against unreachable blocks must not loop forever.
	if dom.Dominates(f.Entry, dead) {
		t.Error("entry does not dominate an unreachable block")
	}
}

func TestResolveEntryStatePhiProjection(t *testing.T) {
	_, pre, h, body, _ := buildLoop()
	init := pre.NewValue(OpConst, TypeInt32)
	step := body.NewValue(OpConst, TypeInt32)
	phi := h.InsertValueAt(0, OpPhi, TypeInt32)
	// Preds order: pre (added first), body.
	phi.Args = []*Value{init, step}
	h.EntryState = &StackMap{PC: 5, Entries: []StackMapEntry{{Reg: 0, Val: phi}, {Reg: 1, Val: init}}}

	sm := ResolveEntryState(h, pre)
	if sm.PC != 5 {
		t.Errorf("PC = %d", sm.PC)
	}
	if sm.Entries[0].Val != init {
		t.Error("phi must project to the preheader argument")
	}
	if sm.Entries[1].Val != init {
		t.Error("non-phi entries pass through")
	}
	sm2 := ResolveEntryState(h, body)
	if sm2.Entries[0].Val != step {
		t.Error("phi must project to the latch argument on the latch edge")
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	// Phi with wrong arity.
	f, _, h, _, _ := buildLoop()
	_ = f
	phi := h.InsertValueAt(0, OpPhi, TypeInt32)
	phi.Args = []*Value{h.Control} // 1 arg, 2 preds
	if err := Verify(f); err == nil {
		t.Error("verifier must reject wrong phi arity")
	}

	// Use before def within a block.
	g := NewFunc("bad", nil)
	b := g.NewBlock()
	g.Entry = b
	b.Kind = BlockReturn
	x := b.NewValue(OpAddInt, TypeInt32) // placeholder, args patched below
	y := b.NewValue(OpConst, TypeInt32)
	x.Args = []*Value{y, y} // x uses later y
	b.Control = x
	if err := Verify(g); err == nil {
		t.Error("verifier must reject use-before-def")
	}
}
