package ir

import (
	"errors"
	"fmt"

	"nomap/internal/bytecode"
	"nomap/internal/ic"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Build constructs speculative SSA IR for a bytecode function using the
// Baseline tier's profile. This is where the paper's check-heavy code shape
// comes from: every speculation (int32 arithmetic, monomorphic property
// access, dense-array element access, known callee) is guarded by a check
// carrying a deoptimization Stack Map Point. SSA construction follows Braun
// et al.'s sealed-block algorithm.
//
// Build returns an error for functions the speculative tiers decline
// (closure users); the VM keeps those in Baseline.
func Build(bc *bytecode.Function, prof *profile.FunctionProfile) (*Func, error) {
	return build(bc, prof, -1)
}

// BuildOSR constructs an OSR-entry artifact for bc: SSA covering only the
// bytecode reachable from the loop header at entryPC, whose synthetic entry
// block defines every bytecode register as an OpOSRLocal bound from the
// incoming frame's locals (instead of OpParam values). The entry block falls
// through to the loop header, so for a reducible hot loop it is the header's
// unique out-of-loop predecessor — which is exactly where NoMap's transaction
// formation places TxBegin, making the loop transaction begin at the OSR
// entry itself.
func BuildOSR(bc *bytecode.Function, prof *profile.FunctionProfile, entryPC int) (*Func, error) {
	if entryPC <= 0 || entryPC >= len(bc.Code) {
		return nil, &UnsupportedError{Fn: bc.Name, Reason: fmt.Sprintf("OSR entry pc %d out of range", entryPC)}
	}
	return build(bc, prof, entryPC)
}

func build(bc *bytecode.Function, prof *profile.FunctionProfile, osrPC int) (*Func, error) {
	if bc.UsesClosure {
		return nil, &UnsupportedError{Fn: bc.Name, Reason: "uses closures; pinned to Baseline"}
	}
	b := &builder{
		bc:         bc,
		prof:       prof,
		f:          NewFunc(bc.Name, bc),
		osrPC:      osrPC,
		defs:       make(map[*Block]map[int]*Value),
		sealed:     make(map[*Block]bool),
		filled:     make(map[*Block]bool),
		incomplete: make(map[*Block]map[int]*Value),
	}
	b.f.OSREntryPC = osrPC
	if err := b.run(); err != nil {
		return nil, err
	}
	return b.f, nil
}

type builder struct {
	bc   *bytecode.Function
	prof *profile.FunctionProfile
	f    *Func

	// osrPC is the OSR-entry loop-header pc, or -1 for a normal build. An
	// OSR build only materializes leaders reachable from osrPC, and its
	// synthetic entry defines OSR locals instead of parameters.
	osrPC int

	leaders  []int          // sorted leader pcs
	blockAt  map[int]*Block // leader pc -> block
	blockEnd map[*Block]int // exclusive end pc

	defs       map[*Block]map[int]*Value
	sealed     map[*Block]bool
	filled     map[*Block]bool
	incomplete map[*Block]map[int]*Value

	cur *Block
	pc  int

	// Block-local checked facts for redundant-check elimination during
	// construction (modelling the DFG tier's existing check-removal passes,
	// paper §III-A1). Shape/array facts are invalidated by calls.
	factShape map[*Value]*value.Shape
	factArray map[*Value]bool
	// Value-permanent representation facts (SSA values are immutable).
	factInt map[*Value]bool
	factNum map[*Value]bool

	undef *Value
}

func (b *builder) run() error {
	b.findLeaders()
	if b.osrPC >= 0 && !containsInt(b.leaders, b.osrPC) {
		// An OSR entry is the target of a backward jump, so it must be a
		// block leader; anything else is a caller bug.
		return &UnsupportedError{Fn: b.bc.Name, Reason: fmt.Sprintf("OSR entry pc %d is not a block leader", b.osrPC)}
	}
	b.buildCFG()

	// Synthetic entry holding the initial register state: parameters plus
	// undefined for a normal build, the incoming frame's locals (as
	// OpOSRLocal values) for an OSR-entry build.
	entry := b.f.Blocks[len(b.f.Blocks)-1] // created last in buildCFG
	b.f.Entry = entry
	b.sealed[entry] = true
	b.filled[entry] = true
	b.defs[entry] = make(map[int]*Value)
	b.undef = entry.NewValue(OpConst, TypeGeneric)
	b.undef.AuxVal = value.Undefined()
	if b.osrPC >= 0 {
		for i := 0; i < b.bc.NumRegs; i++ {
			p := entry.NewValue(OpOSRLocal, TypeGeneric)
			p.AuxInt = int64(i)
			b.defs[entry][i] = p
		}
		b.maybeSeal(b.blockAt[b.osrPC])
	} else {
		for i := 0; i < b.bc.NumParams; i++ {
			p := entry.NewValue(OpParam, TypeGeneric)
			p.AuxInt = int64(i)
			b.defs[entry][i] = p
		}
		for i := b.bc.NumParams; i < b.bc.NumRegs; i++ {
			b.defs[entry][i] = b.undef
		}
		b.maybeSeal(b.blockAt[0])
	}

	for _, leader := range b.leaders {
		blk := b.blockAt[leader]
		if blk == nil {
			continue // leader not reachable from the OSR entry
		}
		if err := b.fillBlock(blk, leader); err != nil {
			return err
		}
	}
	b.removeTrivialPhis()
	return nil
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func (b *builder) findLeaders() {
	isLeader := map[int]bool{0: true}
	for pc, in := range b.bc.Code {
		switch in.Op {
		case bytecode.OpJump:
			isLeader[int(in.A)] = true
			isLeader[pc+1] = true
		case bytecode.OpJumpIfTrue, bytecode.OpJumpIfFalse:
			isLeader[int(in.B)] = true
			isLeader[pc+1] = true
		case bytecode.OpCmpJF, bytecode.OpCmpJT, bytecode.OpCmpKJF, bytecode.OpCmpKJT:
			isLeader[int(in.C)] = true
			isLeader[pc+1] = true
		case bytecode.OpReturn:
			isLeader[pc+1] = true
		}
	}
	for pc := range isLeader {
		if pc < len(b.bc.Code) {
			b.leaders = append(b.leaders, pc)
		}
	}
	sortInts(b.leaders)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (b *builder) buildCFG() {
	// An OSR build only materializes the leaders reachable from the entry
	// header; code before the loop (and anything else unreachable from it)
	// never gets a block, which keeps the artifact free of dangling phis.
	first := 0
	if b.osrPC >= 0 {
		first = b.osrPC
	}
	reach := b.reachableLeaders(first)

	b.blockAt = make(map[int]*Block, len(b.leaders))
	b.blockEnd = make(map[*Block]int, len(b.leaders))
	for _, pc := range b.leaders {
		if reach[pc] {
			b.blockAt[pc] = b.f.NewBlock()
		}
	}
	for i, pc := range b.leaders {
		blk := b.blockAt[pc]
		if blk == nil {
			continue
		}
		end := len(b.bc.Code)
		if i+1 < len(b.leaders) {
			end = b.leaders[i+1]
		}
		b.blockEnd[blk] = end
		last := b.bc.Code[end-1]
		switch last.Op {
		case bytecode.OpJump:
			blk.Kind = BlockPlain
			AddEdge(blk, b.blockAt[int(last.A)])
			if int(last.A) <= end-1 {
				// Backward unconditional jump: the loop back edges the
				// bytecode tiers count; the machine counts them here too.
				blk.BackEdge = true
			}
		case bytecode.OpJumpIfTrue:
			blk.Kind = BlockIf
			AddEdge(blk, b.blockAt[int(last.B)]) // taken when true
			AddEdge(blk, b.blockAt[end])         // fallthrough when false
		case bytecode.OpJumpIfFalse:
			blk.Kind = BlockIf
			AddEdge(blk, b.blockAt[end])         // fallthrough when true
			AddEdge(blk, b.blockAt[int(last.B)]) // taken when false
		case bytecode.OpCmpJT, bytecode.OpCmpKJT:
			blk.Kind = BlockIf
			AddEdge(blk, b.blockAt[int(last.C)]) // taken when true
			AddEdge(blk, b.blockAt[end])         // fallthrough when false
		case bytecode.OpCmpJF, bytecode.OpCmpKJF:
			blk.Kind = BlockIf
			AddEdge(blk, b.blockAt[end])         // fallthrough when true
			AddEdge(blk, b.blockAt[int(last.C)]) // taken when false
		case bytecode.OpReturn:
			blk.Kind = BlockReturn
		default:
			blk.Kind = BlockPlain
			if end < len(b.bc.Code) {
				AddEdge(blk, b.blockAt[end])
			} else {
				// Compiler always emits a trailing return; defensive.
				blk.Kind = BlockReturn
			}
		}
	}
	entry := b.f.NewBlock()
	AddEdge(entry, b.blockAt[first])
}

// reachableLeaders computes the leader pcs reachable from the leader at
// `from` by walking bytecode control flow block-by-block.
func (b *builder) reachableLeaders(from int) map[int]bool {
	succs := make(map[int][]int, len(b.leaders))
	for i, pc := range b.leaders {
		end := len(b.bc.Code)
		if i+1 < len(b.leaders) {
			end = b.leaders[i+1]
		}
		last := b.bc.Code[end-1]
		switch last.Op {
		case bytecode.OpJump:
			succs[pc] = []int{int(last.A)}
		case bytecode.OpJumpIfTrue, bytecode.OpJumpIfFalse:
			succs[pc] = []int{int(last.B), end}
		case bytecode.OpCmpJF, bytecode.OpCmpJT, bytecode.OpCmpKJF, bytecode.OpCmpKJT:
			succs[pc] = []int{int(last.C), end}
		case bytecode.OpReturn:
		default:
			if end < len(b.bc.Code) {
				succs[pc] = []int{end}
			}
		}
	}
	reach := map[int]bool{from: true}
	work := []int{from}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range succs[pc] {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	return reach
}

// --- Braun SSA construction ---

func (b *builder) writeVar(blk *Block, reg int, v *Value) {
	d, ok := b.defs[blk]
	if !ok {
		d = make(map[int]*Value)
		b.defs[blk] = d
	}
	d[reg] = v
}

func (b *builder) readVar(blk *Block, reg int) *Value {
	if v, ok := b.defs[blk][reg]; ok {
		return v
	}
	return b.readVarRecursive(blk, reg)
}

func (b *builder) readVarRecursive(blk *Block, reg int) *Value {
	var v *Value
	switch {
	case !b.sealed[blk]:
		phi := blk.InsertValueAt(0, OpPhi, TypeGeneric)
		inc, ok := b.incomplete[blk]
		if !ok {
			inc = make(map[int]*Value)
			b.incomplete[blk] = inc
		}
		inc[reg] = phi
		v = phi
	case len(blk.Preds) == 1:
		v = b.readVar(blk.Preds[0], reg)
	default:
		phi := blk.InsertValueAt(0, OpPhi, TypeGeneric)
		b.writeVar(blk, reg, phi)
		b.addPhiOperands(phi, reg)
		return phi
	}
	b.writeVar(blk, reg, v)
	return v
}

func (b *builder) addPhiOperands(phi *Value, reg int) {
	for _, p := range phi.Block.Preds {
		phi.Args = append(phi.Args, b.readVar(p, reg))
	}
	phi.Type = mergeTypes(phi.Args)
}

func mergeTypes(vals []*Value) Type {
	t := TypeGeneric
	for i, v := range vals {
		if v == nil {
			continue
		}
		if i == 0 || t == TypeGeneric {
			t = v.Type
		} else if v.Type != t {
			return TypeGeneric
		}
	}
	return t
}

func (b *builder) maybeSeal(blk *Block) {
	if b.sealed[blk] {
		return
	}
	for _, p := range blk.Preds {
		if !b.filled[p] {
			return
		}
	}
	b.sealed[blk] = true
	// Complete pending phis in register order: operand lookup can create
	// new values, so map-order iteration would make numbering nondeterministic.
	regs := make([]int, 0, len(b.incomplete[blk]))
	for reg := range b.incomplete[blk] {
		regs = append(regs, reg)
	}
	sortInts(regs)
	for _, reg := range regs {
		b.addPhiOperands(b.incomplete[blk][reg], reg)
	}
	delete(b.incomplete, blk)
}

// removeTrivialPhis iteratively replaces phis whose operands are all the
// same value (or the phi itself) with that value, rewriting every use,
// including stack maps.
func (b *builder) removeTrivialPhis() {
	for changed := true; changed; {
		changed = false
		for _, blk := range b.f.Blocks {
			for _, v := range blk.Values {
				if v.Op != OpPhi {
					continue
				}
				var same *Value
				trivial := true
				for _, a := range v.Args {
					if a == v || a == same {
						continue
					}
					if same != nil {
						trivial = false
						break
					}
					same = a
				}
				if trivial && same != nil {
					ReplaceUses(b.f, v, same)
					blk.RemoveValue(v)
					changed = true
				}
			}
		}
	}
}

// ReplaceUses rewrites every use of old with new across argument lists,
// block controls, and stack maps (including inline-frame Caller chains;
// chained maps can be shared between deopt points, so a visited set keeps
// the rewrite single-pass).
func ReplaceUses(f *Func, old, new *Value) {
	var seen map[*StackMap]bool
	replaceInMap := func(sm *StackMap) {
		for ; sm != nil; sm = sm.Caller {
			if seen[sm] {
				return
			}
			if sm.Caller != nil {
				if seen == nil {
					seen = make(map[*StackMap]bool)
				}
				seen[sm] = true
			}
			for i := range sm.Entries {
				if sm.Entries[i].Val == old {
					sm.Entries[i].Val = new
				}
			}
		}
	}
	for _, blk := range f.Blocks {
		for _, v := range blk.Values {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new
				}
			}
			replaceInMap(v.Deopt)
		}
		if blk.Control == old {
			blk.Control = new
		}
		replaceInMap(blk.EntryState)
	}
}

// snapshot captures the Stack Map for the current bytecode pc: the Baseline
// register state that deoptimization must materialize.
func (b *builder) snapshot() *StackMap {
	sm := &StackMap{PC: b.pc}
	for r := 0; r < b.bc.NumRegs; r++ {
		sm.Entries = append(sm.Entries, StackMapEntry{Reg: r, Val: b.readVar(b.cur, r)})
	}
	return sm
}

// --- block filling ---

func (b *builder) resetFacts() {
	b.factShape = make(map[*Value]*value.Shape)
	b.factArray = make(map[*Value]bool)
}

func (b *builder) invalidateHeapFacts() {
	b.factShape = make(map[*Value]*value.Shape)
	b.factArray = make(map[*Value]bool)
}

func (b *builder) fillBlock(blk *Block, start int) error {
	b.cur = blk
	b.maybeSeal(blk) // seals unreachable blocks (no predecessors)
	b.resetFacts()
	if b.factInt == nil {
		b.factInt = make(map[*Value]bool)
		b.factNum = make(map[*Value]bool)
	}
	blk.StartPC = start
	b.pc = start
	blk.EntryState = b.snapshot()
	end := b.blockEnd[blk]
	for pc := start; pc < end; pc++ {
		b.pc = pc
		if err := b.instr(b.bc.Code[pc]); err != nil {
			return err
		}
	}
	b.filled[blk] = true
	for _, s := range blk.Succs {
		b.maybeSeal(s)
	}
	return nil
}

func (b *builder) emit(op Op, t Type, args ...*Value) *Value {
	v := b.cur.NewValue(op, t, args...)
	v.BCPos = b.pc
	return v
}

// emitCheck creates a guarded check with a fresh Stack Map Point.
func (b *builder) emitCheck(op Op, class stats.CheckClass, args ...*Value) *Value {
	v := b.emit(op, TypeNone, args...)
	v.Check = class
	v.Deopt = b.snapshot()
	return v
}

func (b *builder) constVal(val value.Value) *Value {
	t := TypeGeneric
	switch val.Kind() {
	case value.KindInt32:
		t = TypeInt32
	case value.KindDouble:
		t = TypeDouble
	case value.KindBool:
		t = TypeBool
	case value.KindString:
		t = TypeString
	case value.KindObject:
		t = TypeObject
	}
	v := b.emit(OpConst, t)
	v.AuxVal = val
	return v
}

// ensureInt32 returns vv usable as int32, inserting a type check when the
// static type does not already guarantee it.
func (b *builder) ensureInt32(v *Value) *Value {
	if v.Type == TypeInt32 || b.factInt[v] {
		return v
	}
	b.emitCheck(OpCheckInt32, stats.CheckType, v)
	b.factInt[v] = true
	return v
}

// ensureDouble returns a double-typed view of v, checking it is numeric
// first when needed.
func (b *builder) ensureDouble(v *Value) *Value {
	switch v.Type {
	case TypeDouble:
		return v
	case TypeInt32:
		return b.emit(OpIntToDouble, TypeDouble, v)
	}
	if !b.factNum[v] && !b.factInt[v] {
		b.emitCheck(OpCheckNumber, stats.CheckType, v)
		b.factNum[v] = true
	}
	return b.emit(OpNumberToDouble, TypeDouble, v)
}

// ensureArray checks v is a dense array (once per block per value).
func (b *builder) ensureArray(v *Value) {
	if b.factArray[v] {
		return
	}
	b.emitCheck(OpCheckArray, stats.CheckType, v)
	b.factArray[v] = true
}

// ensureShape checks v has the given shape (once per block per value,
// invalidated by calls).
func (b *builder) ensureShape(v *Value, shape *value.Shape) {
	if b.factShape[v] == shape {
		return
	}
	chk := b.emitCheck(OpCheckShape, stats.CheckProperty, v)
	chk.Shape = shape
	b.factShape[v] = shape
}

func (b *builder) toBool(v *Value) *Value {
	if v.Type == TypeBool {
		return v
	}
	return b.emit(OpToBool, TypeBool, v)
}

// runtimeCall emits a generic runtime call (full barrier).
func (b *builder) runtimeCall(entry string, aux int64, t Type, args ...*Value) *Value {
	v := b.emit(OpCallRuntime, t, args...)
	v.AuxStr = entry
	v.AuxInt = aux
	b.invalidateHeapFacts()
	return v
}

func (b *builder) instr(in bytecode.Instr) error {
	switch in.Op {
	case bytecode.OpNop:
		return nil

	case bytecode.OpLoadConst:
		b.writeVar(b.cur, int(in.A), b.constVal(b.bc.Consts[in.B]))
	case bytecode.OpLoadUndef:
		b.writeVar(b.cur, int(in.A), b.undef)
	case bytecode.OpMove:
		b.writeVar(b.cur, int(in.A), b.readVar(b.cur, int(in.B)))

	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul,
		bytecode.OpDiv, bytecode.OpMod,
		bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor,
		bytecode.OpShl, bytecode.OpShr, bytecode.OpUShr,
		bytecode.OpLess, bytecode.OpLessEq, bytecode.OpGreater,
		bytecode.OpGreaterEq, bytecode.OpEq, bytecode.OpNeq,
		bytecode.OpStrictEq, bytecode.OpStrictNeq:
		return b.binary(in)

	case bytecode.OpNeg:
		v := b.readVar(b.cur, int(in.B))
		fb := &b.prof.Arith[b.pc]
		switch {
		case fb.IntOnly() && (v.Type == TypeInt32 || v.Type == TypeGeneric):
			v = b.ensureInt32(v)
			r := b.emit(OpNegInt, TypeInt32, v)
			b.emitCheck(OpCheckOverflow, stats.CheckOverflow, r)
			b.writeVar(b.cur, int(in.A), r)
		case fb.NumberOnly():
			d := b.ensureDouble(v)
			b.writeVar(b.cur, int(in.A), b.emit(OpNegDouble, TypeDouble, d))
		default:
			b.writeVar(b.cur, int(in.A), b.runtimeCall("unop", int64(in.Op), TypeGeneric, v))
		}

	case bytecode.OpNot:
		v := b.readVar(b.cur, int(in.B))
		b.writeVar(b.cur, int(in.A), b.emit(OpBoolNot, TypeBool, b.toBool(v)))

	case bytecode.OpBitNot:
		v := b.readVar(b.cur, int(in.B))
		fb := &b.prof.Arith[b.pc]
		if fb.IntOnly() {
			v = b.ensureInt32(v)
			allOnes := b.constVal(value.Int(-1))
			b.writeVar(b.cur, int(in.A), b.emit(OpBitXor, TypeInt32, v, allOnes))
		} else {
			b.writeVar(b.cur, int(in.A), b.runtimeCall("unop", int64(in.Op), TypeGeneric, v))
		}

	case bytecode.OpTypeof:
		v := b.readVar(b.cur, int(in.B))
		b.writeVar(b.cur, int(in.A), b.runtimeCall("typeof", 0, TypeString, v))

	case bytecode.OpToNumber:
		v := b.readVar(b.cur, int(in.B))
		if v.Type == TypeInt32 || v.Type == TypeDouble || b.factInt[v] || b.factNum[v] {
			b.writeVar(b.cur, int(in.A), v)
		} else {
			fb := &b.prof.Arith[b.pc]
			if fb.NumberOnly() || fb.IntOnly() {
				b.emitCheck(OpCheckNumber, stats.CheckType, v)
				b.factNum[v] = true
				b.writeVar(b.cur, int(in.A), v)
			} else {
				b.writeVar(b.cur, int(in.A), b.runtimeCall("tonumber", 0, TypeGeneric, v))
			}
		}

	case bytecode.OpJump, bytecode.OpJumpIfTrue, bytecode.OpJumpIfFalse,
		bytecode.OpCmpJF, bytecode.OpCmpJT, bytecode.OpCmpKJF, bytecode.OpCmpKJT,
		bytecode.OpReturn:
		// Terminators; handled below since they end the block.
		return b.terminator(in)

	case bytecode.OpAddK, bytecode.OpSubK, bytecode.OpMulK:
		// Const-fused arithmetic expands to the same speculative IR as the
		// ldc+binop pair it replaced; the constant operand simply never
		// occupies a bytecode register.
		base := map[bytecode.Op]bytecode.Op{
			bytecode.OpAddK: bytecode.OpAdd,
			bytecode.OpSubK: bytecode.OpSub,
			bytecode.OpMulK: bytecode.OpMul,
		}[in.Op]
		l := b.readVar(b.cur, int(in.B))
		r := b.constVal(b.bc.Consts[in.C])
		return b.binaryVals(base, int(in.A), l, r)

	case bytecode.OpIncr:
		// reg = ToNumber(reg) + delta. Under numeric feedback the ToNumber
		// collapses into the type check binaryVals' ensure* inserts; the
		// generic path keeps the explicit coercion.
		x := b.readVar(b.cur, int(in.A))
		fb := &b.prof.Arith[b.pc]
		d := b.constVal(value.Int(in.B))
		if fb.IntOnly() || fb.NumberOnly() {
			return b.binaryVals(bytecode.OpAdd, int(in.A), x, d)
		}
		xn := b.runtimeCall("tonumber", 0, TypeGeneric, x)
		b.writeVar(b.cur, int(in.A), b.runtimeCall("binop", int64(bytecode.OpAdd), TypeGeneric, xn, d))

	case bytecode.OpCall:
		return b.call(in)
	case bytecode.OpCallMethod:
		return b.callMethod(in)
	case bytecode.OpNew:
		callee := b.readVar(b.cur, int(in.B))
		args := b.argValues(int(in.C), int(in.D))
		b.writeVar(b.cur, int(in.A), b.runtimeCall("construct", 0, TypeGeneric, append([]*Value{callee}, args...)...))

	case bytecode.OpNewObject:
		b.writeVar(b.cur, int(in.A), b.runtimeCall("newobject", 0, TypeObject))
	case bytecode.OpNewArray:
		b.writeVar(b.cur, int(in.A), b.runtimeCall("newarray", int64(in.B), TypeObject))

	case bytecode.OpGetProp:
		return b.getProp(in)
	case bytecode.OpSetProp:
		return b.setProp(in)
	case bytecode.OpGetElem:
		return b.getElem(in)
	case bytecode.OpSetElem:
		return b.setElem(in)
	case bytecode.OpSetElemI:
		obj := b.readVar(b.cur, int(in.A))
		idx := b.constVal(value.Int(in.B))
		src := b.readVar(b.cur, int(in.C))
		b.runtimeCall("setelem", 0, TypeNone, obj, idx, src)

	case bytecode.OpGetGlobal:
		v := b.emit(OpLoadGlobal, TypeGeneric)
		v.AuxStr = b.bc.Names[in.B]
		b.writeVar(b.cur, int(in.A), v)
	case bytecode.OpSetGlobal:
		v := b.emit(OpStoreGlobal, TypeNone, b.readVar(b.cur, int(in.B)))
		v.AuxStr = b.bc.Names[in.A]

	case bytecode.OpGetCell, bytecode.OpSetCell, bytecode.OpMakeClosure:
		return &UnsupportedError{Fn: b.bc.Name, Reason: fmt.Sprintf("closure op %v", in.Op)}

	default:
		return &UnsupportedError{Fn: b.bc.Name, Reason: fmt.Sprintf("unsupported bytecode op %v", in.Op)}
	}
	return nil
}

func (b *builder) terminator(in bytecode.Instr) error {
	switch in.Op {
	case bytecode.OpJump:
		// Edges prewired.
	case bytecode.OpJumpIfTrue:
		b.cur.Control = b.toBool(b.readVar(b.cur, int(in.A)))
	case bytecode.OpJumpIfFalse:
		b.cur.Control = b.toBool(b.readVar(b.cur, int(in.A)))
	case bytecode.OpCmpJF, bytecode.OpCmpJT:
		l := b.readVar(b.cur, int(in.A))
		r := b.readVar(b.cur, int(in.B))
		b.cur.Control = b.toBool(b.compareVal(bytecode.Op(in.D), l, r))
	case bytecode.OpCmpKJF, bytecode.OpCmpKJT:
		l := b.readVar(b.cur, int(in.A))
		r := b.constVal(b.bc.Consts[in.B])
		b.cur.Control = b.toBool(b.compareVal(bytecode.Op(in.D), l, r))
	case bytecode.OpReturn:
		b.cur.Control = b.readVar(b.cur, int(in.A))
	}
	return nil
}

func (b *builder) argValues(start, n int) []*Value {
	args := make([]*Value, n)
	for i := 0; i < n; i++ {
		args[i] = b.readVar(b.cur, start+i)
	}
	return args
}

var cmpForOp = map[bytecode.Op]Cmp{
	bytecode.OpLess: CmpLT, bytecode.OpLessEq: CmpLE,
	bytecode.OpGreater: CmpGT, bytecode.OpGreaterEq: CmpGE,
	bytecode.OpEq: CmpEQ, bytecode.OpNeq: CmpNE,
	bytecode.OpStrictEq: CmpEQ, bytecode.OpStrictNeq: CmpNE,
}

func (b *builder) binary(in bytecode.Instr) error {
	l := b.readVar(b.cur, int(in.B))
	r := b.readVar(b.cur, int(in.C))
	return b.binaryVals(in.Op, int(in.A), l, r)
}

// compareVal builds the speculative comparison l <op> r and returns the
// boolean (or generic, off the fast path) result value without writing a
// register — fused compare-and-branch terminators consume it as block
// control directly.
func (b *builder) compareVal(cop bytecode.Op, l, r *Value) *Value {
	fb := &b.prof.Arith[b.pc]
	cmp := cmpForOp[cop]
	switch {
	case fb.IntOnly():
		l, r = b.ensureInt32(l), b.ensureInt32(r)
		v := b.emit(OpCmpInt, TypeBool, l, r)
		v.AuxInt = int64(cmp)
		return v
	case fb.NumberOnly():
		ld, rd := b.ensureDouble(l), b.ensureDouble(r)
		v := b.emit(OpCmpDouble, TypeBool, ld, rd)
		v.AuxInt = int64(cmp)
		return v
	default:
		return b.runtimeCall("binop", int64(cop), TypeGeneric, l, r)
	}
}

// binaryVals is the binary-operator lowering on explicit operand values, so
// fused const-operand superinstructions share one code path with the plain
// register-register forms.
func (b *builder) binaryVals(op bytecode.Op, dst int, l, r *Value) error {
	fb := &b.prof.Arith[b.pc]

	if op.IsCompare() {
		b.writeVar(b.cur, dst, b.compareVal(op, l, r))
		return nil
	}

	in := bytecode.Instr{Op: op}
	switch in.Op {
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul:
		switch {
		case fb.IntOnly():
			l, r = b.ensureInt32(l), b.ensureInt32(r)
			op := map[bytecode.Op]Op{bytecode.OpAdd: OpAddInt, bytecode.OpSub: OpSubInt, bytecode.OpMul: OpMulInt}[in.Op]
			v := b.emit(op, TypeInt32, l, r)
			b.emitCheck(OpCheckOverflow, stats.CheckOverflow, v)
			b.writeVar(b.cur, dst, v)
		case fb.NumberOnly():
			ld, rd := b.ensureDouble(l), b.ensureDouble(r)
			op := map[bytecode.Op]Op{bytecode.OpAdd: OpAddDouble, bytecode.OpSub: OpSubDouble, bytecode.OpMul: OpMulDouble}[in.Op]
			b.writeVar(b.cur, dst, b.emit(op, TypeDouble, ld, rd))
		default:
			b.writeVar(b.cur, dst, b.runtimeCall("binop", int64(in.Op), TypeGeneric, l, r))
		}
	case bytecode.OpDiv, bytecode.OpMod:
		if fb.NumberOnly() || fb.IntOnly() {
			ld, rd := b.ensureDouble(l), b.ensureDouble(r)
			op := OpDivDouble
			if in.Op == bytecode.OpMod {
				op = OpModDouble
			}
			b.writeVar(b.cur, dst, b.emit(op, TypeDouble, ld, rd))
		} else {
			b.writeVar(b.cur, dst, b.runtimeCall("binop", int64(in.Op), TypeGeneric, l, r))
		}
	case bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor,
		bytecode.OpShl, bytecode.OpShr, bytecode.OpUShr:
		op := map[bytecode.Op]Op{
			bytecode.OpBitAnd: OpBitAnd, bytecode.OpBitOr: OpBitOr,
			bytecode.OpBitXor: OpBitXor, bytecode.OpShl: OpShl,
			bytecode.OpShr: OpShr, bytecode.OpUShr: OpUShr,
		}[in.Op]
		// >>> sites whose result has escaped the int32 range widen the
		// result to a double instead of deopt-looping on the range check.
		finish := func(v *Value) {
			if in.Op != bytecode.OpUShr {
				b.writeVar(b.cur, dst, v)
				return
			}
			if fb.SawOverflow {
				b.writeVar(b.cur, dst, b.emit(OpUint32ToDouble, TypeDouble, v))
				return
			}
			b.emitCheck(OpCheckUint32, stats.CheckOverflow, v)
			b.writeVar(b.cur, dst, v)
		}
		switch {
		case fb.IntOperands():
			l, r = b.ensureInt32(l), b.ensureInt32(r)
			finish(b.emit(op, TypeInt32, l, r))
		case fb.NumberOnly():
			// Doubles feeding bitops: truncate per ToInt32 first.
			lt := b.emit(OpTruncDouble, TypeInt32, b.ensureDouble(l))
			rt := b.emit(OpTruncDouble, TypeInt32, b.ensureDouble(r))
			finish(b.emit(op, TypeInt32, lt, rt))
		default:
			b.writeVar(b.cur, dst, b.runtimeCall("binop", int64(in.Op), TypeGeneric, l, r))
		}
	}
	return nil
}

func (b *builder) getProp(in bytecode.Instr) error {
	obj := b.readVar(b.cur, int(in.B))
	name := b.bc.Names[in.C]
	pic := &b.prof.ICs[in.D]
	dst := int(in.A)
	switch {
	case pic.SawArrayLength && !pic.Poly && pic.Shape == nil && !pic.SawNonObject:
		b.ensureArray(obj)
		b.writeVar(b.cur, dst, b.emit(OpLoadLength, TypeInt32, obj))
	case pic.Monomorphic():
		b.ensureShape(obj, pic.Shape)
		v := b.emit(OpLoadSlot, TypeGeneric, obj)
		v.AuxInt = int64(pic.Offset)
		b.writeVar(b.cur, dst, v)
	default:
		// Generic-call placeholder: already correct on its own. A qualifying
		// polymorphic site additionally carries a dispatch plan (plus the
		// snapshot its tail guard will deopt through) for ExpandDispatch.
		nameC := b.constVal(value.Str(name))
		v := b.runtimeCall("getprop", 0, TypeGeneric, obj, nameC)
		if pl := ic.PropPlan(pic, name, false); pl != nil {
			v.Plan = pl
			v.Deopt = b.snapshot()
		}
		b.writeVar(b.cur, dst, v)
	}
	return nil
}

func (b *builder) setProp(in bytecode.Instr) error {
	obj := b.readVar(b.cur, int(in.A))
	name := b.bc.Names[in.B]
	src := b.readVar(b.cur, int(in.C))
	pic := &b.prof.ICs[in.D]
	if pic.Monomorphic() && pic.NewShape == nil {
		b.ensureShape(obj, pic.Shape)
		v := b.emit(OpStoreSlot, TypeNone, obj, src)
		v.AuxInt = int64(pic.Offset)
		return nil
	}
	nameC := b.constVal(value.Str(name))
	v := b.runtimeCall("setprop", 0, TypeNone, obj, nameC, src)
	if pl := ic.PropPlan(pic, name, true); pl != nil {
		v.Plan = pl
		v.Deopt = b.snapshot()
	}
	return nil
}

func (b *builder) getElem(in bytecode.Instr) error {
	obj := b.readVar(b.cur, int(in.B))
	idx := b.readVar(b.cur, int(in.C))
	fb := &b.prof.Elem[b.pc]
	dst := int(in.A)
	if fb.FastArray() && !fb.SawOOB {
		b.ensureArray(obj)
		idx = b.ensureInt32(idx)
		b.emitCheck(OpCheckBounds, stats.CheckBounds, obj, idx)
		raw := b.emit(OpLoadElem, TypeGeneric, obj, idx)
		if fb.SawHole {
			b.writeVar(b.cur, dst, b.emit(OpNormalizeHole, TypeGeneric, raw))
		} else {
			b.emitCheck(OpCheckHole, stats.CheckOther, raw)
			b.writeVar(b.cur, dst, raw)
		}
		return nil
	}
	b.writeVar(b.cur, dst, b.runtimeCall("getelem", 0, TypeGeneric, obj, idx))
	return nil
}

func (b *builder) setElem(in bytecode.Instr) error {
	obj := b.readVar(b.cur, int(in.A))
	idx := b.readVar(b.cur, int(in.B))
	src := b.readVar(b.cur, int(in.C))
	fb := &b.prof.Elem[b.pc]
	if fb.FastArray() && !fb.SawOOB {
		b.ensureArray(obj)
		idx = b.ensureInt32(idx)
		if fb.SawAppend {
			// Sequential-growth sites: the store op itself elongates the
			// array, so a full bounds check would fail on every append. Only
			// negative indices must bail (they are named-property stores).
			b.emitCheck(OpCheckNonNeg, stats.CheckBounds, idx)
		} else {
			b.emitCheck(OpCheckBounds, stats.CheckBounds, obj, idx)
		}
		b.emit(OpStoreElem, TypeNone, obj, idx, src)
		return nil
	}
	b.runtimeCall("setelem", 0, TypeNone, obj, idx, src)
	return nil
}

func (b *builder) call(in bytecode.Instr) error {
	callee := b.readVar(b.cur, int(in.B))
	args := b.argValues(int(in.C), int(in.D))
	fb := &b.prof.Calls[b.pc]
	dst := int(in.A)
	if fb.Monomorphic() {
		chk := b.emitCheck(OpCheckCallee, stats.CheckOther, callee)
		chk.Callee = fb.Target
		call := b.emit(OpCallDirect, TypeGeneric, append([]*Value{b.undef}, args...)...)
		call.Callee = fb.Target
		b.invalidateHeapFacts()
		b.writeVar(b.cur, dst, call)
		return nil
	}
	v := b.runtimeCall("call", 0, TypeGeneric, append([]*Value{callee}, args...)...)
	if pl := ic.CallPlan(fb); pl != nil {
		v.Plan = pl
		v.Deopt = b.snapshot()
	}
	b.writeVar(b.cur, dst, v)
	return nil
}

// mathIntrinsics lists Math builtins the FTL tier inlines after a callee
// check (JavaScriptCore does the same via DFG intrinsics).
var mathIntrinsics = map[string]int{
	"abs": 1, "floor": 1, "ceil": 1, "sqrt": 1, "sin": 1, "cos": 1,
	"tan": 1, "asin": 1, "acos": 1, "atan": 1, "exp": 1, "log": 1,
	"round": 1, "pow": 2, "atan2": 2, "min": 2, "max": 2,
}

func (b *builder) callMethod(in bytecode.Instr) error {
	recv := b.readVar(b.cur, int(in.B))
	name := b.bc.Names[in.E]
	args := b.argValues(int(in.C), int(in.D))
	fb := &b.prof.Calls[b.pc]
	dst := int(in.A)

	if fb.Monomorphic() && fb.RecvShape != nil {
		if off := fb.RecvShape.Lookup(name); off >= 0 {
			b.ensureShape(recv, fb.RecvShape)
			m := b.emit(OpLoadSlot, TypeGeneric, recv)
			m.AuxInt = int64(off)
			chk := b.emitCheck(OpCheckCallee, stats.CheckOther, m)
			chk.Callee = fb.Target
			if n, ok := mathIntrinsics[name]; ok && fb.Target.IsNative() && fb.Target.Name == name && len(args) == n {
				var dargs []*Value
				for _, a := range args {
					dargs = append(dargs, b.ensureDouble(a))
				}
				mo := b.emit(OpMathOp, TypeDouble, dargs...)
				mo.AuxStr = name
				b.writeVar(b.cur, dst, mo)
				return nil
			}
			call := b.emit(OpCallDirect, TypeGeneric, append([]*Value{recv}, args...)...)
			call.Callee = fb.Target
			b.invalidateHeapFacts()
			b.writeVar(b.cur, dst, call)
			return nil
		}
	}
	nameC := b.constVal(value.Str(name))
	v := b.runtimeCall("callmethod", 0, TypeGeneric, append([]*Value{recv, nameC}, args...)...)
	if pl := ic.MethodPlan(fb, name); pl != nil {
		v.Plan = pl
		v.Deopt = b.snapshot()
	}
	b.writeVar(b.cur, dst, v)
	return nil
}

// UnsupportedError marks a function the speculative tiers can never compile:
// closure use or a bytecode op with no IR lowering. It is deterministic —
// retrying the compile cannot succeed — which is what entitles the JIT driver
// to pin the function to Baseline permanently. Transient compile errors must
// NOT use this type: they are retried a bounded number of times instead.
type UnsupportedError struct {
	Fn     string
	Reason string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("ir: %s: %s", e.Fn, e.Reason)
}

// IsUnsupported reports whether err is (or wraps) a deterministic
// unsupported-function compile error.
func IsUnsupported(err error) bool {
	var u *UnsupportedError
	return errors.As(err, &u)
}
