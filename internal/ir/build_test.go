package ir_test

import (
	"strings"
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/ir"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// buildHot compiles src, warms it in the Baseline tier so profiles fill, and
// returns the IR for the global function fname together with its profile.
func buildHot(t *testing.T, src, fname string) (*ir.Func, *profile.FunctionProfile) {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline // gather feedback only
	m := vm.New(cfg)
	if _, err := m.Run(src); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	fv := m.Globals().Get(fname)
	if !fv.IsCallable() {
		t.Fatalf("global %q is not a function", fname)
	}
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	prof := m.ProfileFor(bcFn)
	f, err := ir.Build(bcFn, prof)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v\n%s", err, f)
	}
	return f, prof
}

const sumLoopSrc = `
function sum(a, n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = s + a[i]; }
  return s;
}
var arr = [];
for (var j = 0; j < 100; j++) arr[j] = j;
var r = 0;
for (var k = 0; k < 50; k++) r = sum(arr, 100);
var result = r;
`

func countOps(f *ir.Func) map[ir.Op]int {
	m := map[ir.Op]int{}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			m[v.Op]++
		}
	}
	return m
}

func TestBuildSumLoop(t *testing.T) {
	f, _ := buildHot(t, sumLoopSrc, "sum")
	ops := countOps(f)
	if ops[ir.OpCheckBounds] == 0 {
		t.Errorf("expected a bounds check in:\n%s", f)
	}
	if ops[ir.OpCheckOverflow] == 0 {
		t.Errorf("expected overflow checks in:\n%s", f)
	}
	if ops[ir.OpLoadElem] == 0 {
		t.Errorf("expected a fast-path element load in:\n%s", f)
	}
	if ops[ir.OpCallRuntime] != 0 {
		t.Errorf("hot int loop should not need runtime calls:\n%s", f)
	}
	if ops[ir.OpPhi] == 0 {
		t.Errorf("loop must produce phis:\n%s", f)
	}
	// Every check must carry a deopt stack map at build time (Base config).
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Deopt == nil {
				t.Errorf("check v%d has no stack map", v.ID)
			}
			if v.Op.IsCheck() && len(v.Deopt.Entries) == 0 {
				t.Errorf("check v%d has empty stack map", v.ID)
			}
		}
	}
}

func TestBuildPropertyAccess(t *testing.T) {
	src := `
function accum(obj) {
  var len = obj.values.length;
  for (var idx = 0; idx < len; idx++) {
    obj.sum += obj.values[idx];
  }
  return obj.sum;
}
var o = {values: [1,2,3,4,5,6,7,8], sum: 0};
for (var k = 0; k < 50; k++) { o.sum = 0; accum(o); }
var result = o.sum;
`
	f, _ := buildHot(t, src, "accum")
	ops := countOps(f)
	if ops[ir.OpCheckShape] == 0 {
		t.Errorf("expected property (shape) checks:\n%s", f)
	}
	if ops[ir.OpLoadSlot] == 0 || ops[ir.OpStoreSlot] == 0 {
		t.Errorf("expected direct slot accesses:\n%s", f)
	}
	if ops[ir.OpLoadLength] == 0 {
		t.Errorf("expected array length load:\n%s", f)
	}
}

func TestBuildDoubleMath(t *testing.T) {
	src := `
function norm(x, y) { return Math.sqrt(x * x + y * y); }
var r = 0;
for (var k = 0; k < 60; k++) r = norm(k + 0.5, k + 1.5);
var result = r;
`
	f, _ := buildHot(t, src, "norm")
	ops := countOps(f)
	if ops[ir.OpMulDouble] == 0 && ops[ir.OpAddDouble] == 0 {
		t.Errorf("expected double arithmetic:\n%s", f)
	}
	if ops[ir.OpMathOp] == 0 {
		t.Errorf("expected Math.sqrt intrinsic:\n%s", f)
	}
	if ops[ir.OpCheckCallee] == 0 {
		t.Errorf("intrinsic must be guarded by a callee check:\n%s", f)
	}
}

func TestBuildDirectCall(t *testing.T) {
	src := `
function leaf(x) { return x + 1; }
function caller(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += leaf(i);
  return s;
}
var r = 0;
for (var k = 0; k < 50; k++) r = caller(20);
var result = r;
`
	f, _ := buildHot(t, src, "caller")
	ops := countOps(f)
	if ops[ir.OpCallDirect] == 0 {
		t.Errorf("expected a direct call to leaf:\n%s", f)
	}
}

func TestBuildRejectsClosures(t *testing.T) {
	src := `
function outer() {
  var n = 0;
  return function() { n++; return n; };
}
var c = outer();
var result = c();
`
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	m := vm.New(cfg)
	if _, err := m.Run(src); err != nil {
		t.Fatal(err)
	}
	fv := m.Globals().Get("outer")
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	if _, err := ir.Build(bcFn, m.ProfileFor(bcFn)); err == nil {
		t.Fatal("expected Build to reject closure-using function")
	}
}

func TestBuildBranchesAndPhis(t *testing.T) {
	src := `
function pick(a, b, flag) {
  var r;
  if (flag) { r = a; } else { r = b; }
  return r * 2;
}
var r = 0;
for (var k = 0; k < 60; k++) r = pick(k, -k, k % 2);
var result = r;
`
	f, _ := buildHot(t, src, "pick")
	ops := countOps(f)
	if ops[ir.OpPhi] == 0 {
		t.Errorf("if/else merge needs a phi:\n%s", f)
	}
	hasIf := false
	for _, b := range f.Blocks {
		if b.Kind == ir.BlockIf {
			hasIf = true
		}
	}
	if !hasIf {
		t.Errorf("expected an if block:\n%s", f)
	}
}

func TestBuildStringRendering(t *testing.T) {
	f, _ := buildHot(t, sumLoopSrc, "sum")
	s := f.String()
	for _, want := range []string{"func sum:", "chkbounds", "deopt@", "phi"} {
		if !strings.Contains(s, want) {
			t.Errorf("IR dump missing %q:\n%s", want, s)
		}
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	f, _ := buildHot(t, sumLoopSrc, "sum")
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("expected 1 loop, got %d", len(loops))
	}
	l := loops[0]
	if l.Preheader() == nil {
		t.Error("loop should have a preheader")
	}
	if len(l.Latches()) == 0 {
		t.Error("loop should have a latch")
	}
	if len(l.Exits()) == 0 {
		t.Error("loop should have an exit")
	}
	if !dom.Dominates(f.Entry, l.Header) {
		t.Error("entry must dominate loop header")
	}
	if l.Depth != 1 {
		t.Errorf("Depth = %d", l.Depth)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
function mat(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    for (var j = 0; j < n; j++) {
      s = s + i * j;
    }
  }
  return s;
}
var r = 0;
for (var k = 0; k < 50; k++) r = mat(10);
var result = r;
`
	f, _ := buildHot(t, src, "mat")
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	if len(loops) != 2 {
		t.Fatalf("expected 2 loops, got %d", len(loops))
	}
	var inner, outer *ir.Loop
	for _, l := range loops {
		if l.Depth == 2 {
			inner = l
		} else {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("expected depths 1 and 2")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop must contain inner header")
	}
}
