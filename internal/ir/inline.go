package ir

import (
	"nomap/internal/bytecode"
	"nomap/internal/profile"
)

// InlineOptions bounds the speculative inlining pass.
type InlineOptions struct {
	// Profiles resolves the Baseline profile for a callee's bytecode; the
	// pass builds callee IR from it. Required — no resolver, no inlining.
	Profiles func(*bytecode.Function) *profile.FunctionProfile
	// MaxDepth caps the inline chain (1 = only direct callees of the root).
	MaxDepth int
	// MaxCalleeCode rejects callees longer than this many bytecode instrs.
	MaxCalleeCode int
	// MaxInlines caps total flattened activations per compiled function.
	MaxInlines int
}

// DefaultInlineOptions returns the budget used by the DFG and FTL tiers:
// deep enough for the two-deep helper chains the call-heavy workloads model,
// small enough that flattened loop bodies stay inside HTM capacity.
func DefaultInlineOptions(profiles func(*bytecode.Function) *profile.FunctionProfile) InlineOptions {
	return InlineOptions{Profiles: profiles, MaxDepth: 3, MaxCalleeCode: 48, MaxInlines: 12}
}

// InlineCalls flattens monomorphic OpCallDirect sites into the caller's IR
// and returns how many sites were inlined. A site qualifies when profiling
// already proved it monomorphic — the builder only emits OpCallDirect under
// an OpCheckCallee guard — and the callee is a small warm user function
// (not native, no closure use, within budget, not already on the inline
// path, so recursion never flattens).
//
// The call disappears; the guard stays. Its stack map resumes Baseline at
// the call pc, so a wrong-callee deopt (or abort) simply re-executes the
// call in the interpreter. Every stack map cloned from the callee gets
// inline-frame metadata: Inline names the flattened activation and Caller
// chains to the caller's map at the call site, so a deopt inside inlined
// code reconstructs caller frame + N inlined callee frames, each resumed in
// the interpreter with the callee's result stored back into the caller's
// RetReg. Polymorphic sites never get here (the builder lowers them to
// OpCallRuntime), which is the pass's "must NOT inline" guard.
//
// The payoff is structural, exactly the paper's SMP story one level up:
// with the call boundary gone, the former callee's checks sit in the
// caller's loop where transaction formation converts them to aborts and
// GVN/LICM hoist or merge them across the old boundary — and the machine's
// txHadCalls blame never trips for the flattened callee, so §V-C capacity
// retreat stops pinning call-heavy loops to TxOff.
func InlineCalls(f *Func, opts InlineOptions) int {
	if opts.Profiles == nil || opts.MaxDepth <= 0 || opts.MaxInlines <= 0 {
		return 0
	}
	inlined := 0
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for ci := 0; ci < len(b.Values); ci++ {
			v := b.Values[ci]
			if v.Op != OpCallDirect || len(f.Inlines) >= opts.MaxInlines {
				continue
			}
			if inlineSite(f, b, ci, opts) {
				inlined++
				// The block was split at the call; its tail now lives in a
				// later block that this loop will reach (and the flattened
				// callee's own direct calls with it, bounded by MaxDepth).
				break
			}
		}
	}
	return inlined
}

// inlineSite attempts to flatten the OpCallDirect at b.Values[ci]. It
// mutates f only after every legality check has passed.
func inlineSite(f *Func, b *Block, ci int, opts InlineOptions) bool {
	v := b.Values[ci]
	callee := v.Callee
	if callee == nil || callee.Native != nil || callee.UsesClosure {
		return false
	}
	calleeBc, ok := callee.Code.(*bytecode.Function)
	if !ok || calleeBc == nil || calleeBc.UsesClosure {
		return false
	}
	if opts.MaxCalleeCode > 0 && len(calleeBc.Code) > opts.MaxCalleeCode {
		return false
	}
	// Depth and recursion: the new activation's parent is the activation the
	// call itself belongs to.
	parent := v.Inline
	depth := 1
	if parent != nil {
		depth = parent.Depth + 1
	}
	if depth > opts.MaxDepth {
		return false
	}
	if calleeBc == f.Source {
		return false
	}
	for p := parent; p != nil; p = p.Parent {
		if p.Source == calleeBc {
			return false
		}
	}
	// Only warm callees: a never-invoked profile would build IR that bails
	// to the runtime on every operation.
	prof := opts.Profiles(calleeBc)
	if prof == nil || prof.InvocationCount == 0 {
		return false
	}
	// The guard emitted immediately with the call carries the caller's full
	// register state at the call pc — that map IS the caller frame every
	// inlined stack map chains to.
	var guard *Value
	for gi := ci - 1; gi >= 0; gi-- {
		g := b.Values[gi]
		if g.Op == OpCheckCallee && g.Callee == callee && g.BCPos == v.BCPos && g.Inline == v.Inline {
			guard = g
			break
		}
	}
	if guard == nil || guard.Deopt == nil {
		return false
	}
	// The caller register receiving the result, from the call instruction in
	// the enclosing activation's bytecode.
	encSrc := f.Source
	if parent != nil {
		encSrc = parent.Source
	}
	if v.BCPos < 0 || v.BCPos >= len(encSrc.Code) {
		return false
	}
	callIn := encSrc.Code[v.BCPos]
	if callIn.Op != bytecode.OpCall && callIn.Op != bytecode.OpCallMethod {
		return false
	}
	retReg := int(callIn.A)

	cf, err := Build(calleeBc, prof)
	if err != nil {
		return false
	}
	rets := 0
	for _, cb := range cf.Blocks {
		if cb.Kind == BlockReturn {
			rets++
		}
	}
	if rets == 0 {
		return false // callee never returns; keep the call
	}

	// --- point of no return: mutate f ---
	inf := &InlineFrame{
		Parent: parent, Callee: callee, Source: calleeBc,
		CallPC: v.BCPos, RetReg: retReg,
		Depth: depth, Index: len(f.Inlines) + 1,
	}
	f.Inlines = append(f.Inlines, inf)
	callerSM := guard.Deopt

	// Transplant the callee CFG with fresh value IDs. Parameters map to the
	// call's argument values (args[0] is the receiver slot, unread: the
	// bytecode set has no `this` access op); missing arguments map to the
	// callee's own undefined constant.
	bmap := make(map[*Block]*Block, len(cf.Blocks))
	vmap := make(map[*Value]*Value, cf.NumValues())
	for _, cb := range cf.Blocks {
		nb := f.NewBlock()
		nb.Kind = cb.Kind
		nb.StartPC = cb.StartPC
		nb.BackEdge = cb.BackEdge
		nb.Inline = inf
		bmap[cb] = nb
	}
	for _, cb := range cf.Blocks {
		nb := bmap[cb]
		for _, cv := range cb.Values {
			if cv.Op == OpParam {
				continue // mapped below, never materialized
			}
			nv := nb.NewValue(cv.Op, cv.Type)
			nv.AuxInt, nv.AuxFloat, nv.AuxStr = cv.AuxInt, cv.AuxFloat, cv.AuxStr
			nv.AuxVal, nv.Shape, nv.Callee = cv.AuxVal, cv.Shape, cv.Callee
			nv.Check, nv.Free, nv.BCPos = cv.Check, cv.Free, cv.BCPos
			nv.Inline = inf
			vmap[cv] = nv
		}
	}
	calleeUndef := vmap[cf.Entry.Values[0]] // builder creates it first
	for _, cb := range cf.Blocks {
		for _, cv := range cb.Values {
			if cv.Op != OpParam {
				continue
			}
			if i := int(cv.AuxInt) + 1; i < len(v.Args) {
				vmap[cv] = v.Args[i]
			} else {
				vmap[cv] = calleeUndef
			}
		}
	}
	mapSM := func(sm *StackMap) *StackMap {
		if sm == nil {
			return nil
		}
		nsm := &StackMap{PC: sm.PC, Inline: inf, Caller: callerSM, Entries: make([]StackMapEntry, len(sm.Entries))}
		for i, e := range sm.Entries {
			nsm.Entries[i] = StackMapEntry{Reg: e.Reg, Val: vmap[e.Val]}
		}
		return nsm
	}
	for _, cb := range cf.Blocks {
		nb := bmap[cb]
		for _, cv := range cb.Values {
			if cv.Op == OpParam {
				continue
			}
			nv := vmap[cv]
			if len(cv.Args) > 0 {
				nv.Args = make([]*Value, len(cv.Args))
				for i, a := range cv.Args {
					nv.Args[i] = vmap[a]
				}
			}
			// A callee placeholder call carrying a dispatch plan is not
			// expanded here (plans lower only at the top of the pipeline);
			// the copy deliberately drops Plan and the tail-guard snapshot
			// riding on it, leaving a plain generic call.
			if cv.Op != OpCallRuntime {
				nv.Deopt = mapSM(cv.Deopt)
			}
		}
		if cb.Control != nil {
			nb.Control = vmap[cb.Control]
		}
		nb.EntryState = mapSM(cb.EntryState)
		for _, s := range cb.Succs {
			AddEdge(nb, bmap[s])
		}
	}

	// Split the caller block at the call: the tail (with the original
	// terminator) moves to a continuation block, the head falls through to
	// the flattened callee, and the callee's returns feed the continuation.
	cont := f.NewBlock()
	cont.Kind = b.Kind
	cont.Control = b.Control
	cont.BackEdge = b.BackEdge
	cont.Inline = b.Inline
	cont.Values = append(cont.Values, b.Values[ci+1:]...)
	for _, w := range cont.Values {
		w.Block = cont
	}
	cont.Succs = b.Succs
	for _, s := range cont.Succs {
		for i, p := range s.Preds {
			if p == b {
				s.Preds[i] = cont
			}
		}
	}
	b.Values = b.Values[:ci] // drops the call; the guard stays
	b.Kind = BlockPlain
	b.Control = nil
	b.Succs = nil
	b.BackEdge = false
	AddEdge(b, bmap[cf.Entry])

	var result *Value
	var retBlocks []*Block
	for _, cb := range cf.Blocks {
		if cb.Kind == BlockReturn {
			retBlocks = append(retBlocks, bmap[cb])
		}
	}
	if len(retBlocks) == 1 {
		rb := retBlocks[0]
		result = rb.Control
		rb.Kind = BlockPlain
		rb.Control = nil
		AddEdge(rb, cont)
	} else {
		merge := f.NewBlock()
		merge.Inline = b.Inline
		var phiArgs []*Value
		for _, rb := range retBlocks {
			phiArgs = append(phiArgs, rb.Control)
			rb.Kind = BlockPlain
			rb.Control = nil
			AddEdge(rb, merge)
		}
		phi := merge.NewValue(OpPhi, TypeGeneric, phiArgs...)
		phi.BCPos = v.BCPos
		phi.Inline = b.Inline
		AddEdge(merge, cont)
		result = phi
	}
	ReplaceUses(f, v, result)
	return true
}
