package ir

import "fmt"

// Verify checks structural SSA invariants. It is run after construction and
// after every optimization pass in tests, catching pass bugs early.
func Verify(f *Func) error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	dom := BuildDom(f)
	inFunc := make(map[*Value]*Block)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Block != b {
				return fmt.Errorf("%s: v%d claims block b%d but lives in b%d", f.Name, v.ID, v.Block.ID, b.ID)
			}
			inFunc[v] = b
		}
	}
	for _, b := range f.Blocks {
		// Edge symmetry.
		for _, s := range b.Succs {
			if s.PredIndex(b) < 0 {
				return fmt.Errorf("%s: edge b%d->b%d missing from preds", f.Name, b.ID, s.ID)
			}
		}
		switch b.Kind {
		case BlockPlain:
			if dom.Reachable(b) && len(b.Succs) != 1 {
				return fmt.Errorf("%s: plain block b%d has %d succs", f.Name, b.ID, len(b.Succs))
			}
		case BlockIf:
			if len(b.Succs) != 2 {
				return fmt.Errorf("%s: if block b%d has %d succs", f.Name, b.ID, len(b.Succs))
			}
			if b.Control == nil {
				return fmt.Errorf("%s: if block b%d has no control", f.Name, b.ID)
			}
		case BlockReturn:
			if len(b.Succs) != 0 {
				return fmt.Errorf("%s: return block b%d has succs", f.Name, b.ID)
			}
			if b.Control == nil {
				return fmt.Errorf("%s: return block b%d has no control", f.Name, b.ID)
			}
		}
		if b.Control != nil {
			if _, ok := inFunc[b.Control]; !ok {
				return fmt.Errorf("%s: b%d control v%d not in function", f.Name, b.ID, b.Control.ID)
			}
		}
		phiZone := true
		for _, v := range b.Values {
			if v.Op == OpPhi {
				if !phiZone {
					return fmt.Errorf("%s: phi v%d after non-phi in b%d", f.Name, v.ID, b.ID)
				}
				if dom.Reachable(b) && len(v.Args) != len(b.Preds) {
					return fmt.Errorf("%s: phi v%d has %d args for %d preds in b%d", f.Name, v.ID, len(v.Args), len(b.Preds), b.ID)
				}
			} else {
				phiZone = false
			}
			for _, a := range v.Args {
				if a == nil {
					return fmt.Errorf("%s: v%d has nil arg", f.Name, v.ID)
				}
				if _, ok := inFunc[a]; !ok {
					return fmt.Errorf("%s: v%d uses v%d which is not in the function", f.Name, v.ID, a.ID)
				}
			}
			if v.Op.IsCheck() || v.Op == OpTxBegin || v.Op == OpTxTile {
				for sm := v.Deopt; sm != nil; sm = sm.Caller {
					if (sm.Caller == nil) != (sm.Inline == nil) {
						return fmt.Errorf("%s: v%d stack map has Inline/Caller mismatch", f.Name, v.ID)
					}
					for _, e := range sm.Entries {
						if e.Val == nil {
							return fmt.Errorf("%s: v%d stack map entry r%d is nil", f.Name, v.ID, e.Reg)
						}
						if _, ok := inFunc[e.Val]; !ok {
							return fmt.Errorf("%s: v%d stack map references dead v%d", f.Name, v.ID, e.Val.ID)
						}
					}
				}
			}
		}
	}
	// Defs dominate uses (within reachable code).
	pos := make(map[*Value]int)
	for _, b := range f.Blocks {
		for i, v := range b.Values {
			pos[v] = i
		}
	}
	checkUse := func(user, used *Value, isPhi bool, predIdx int) error {
		ub, db := user.Block, used.Block
		if !dom.Reachable(ub) || !dom.Reachable(db) {
			return nil
		}
		if isPhi {
			// Phi use happens at the end of the predecessor.
			pred := ub.Preds[predIdx]
			if !dom.Dominates(db, pred) {
				return fmt.Errorf("%s: phi v%d arg v%d (b%d) does not dominate pred b%d", f.Name, user.ID, used.ID, db.ID, pred.ID)
			}
			return nil
		}
		if ub == db {
			if pos[used] >= pos[user] {
				return fmt.Errorf("%s: v%d uses later v%d in same block b%d", f.Name, user.ID, used.ID, ub.ID)
			}
			return nil
		}
		if !dom.Dominates(db, ub) {
			return fmt.Errorf("%s: def v%d (b%d) does not dominate use v%d (b%d)", f.Name, used.ID, db.ID, user.ID, ub.ID)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			for i, a := range v.Args {
				if err := checkUse(v, a, v.Op == OpPhi, i); err != nil {
					return err
				}
			}
			for sm := v.Deopt; sm != nil; sm = sm.Caller {
				for _, e := range sm.Entries {
					if err := checkUse(v, e.Val, false, 0); err != nil {
						return fmt.Errorf("stack map: %w", err)
					}
				}
			}
		}
	}
	return nil
}
