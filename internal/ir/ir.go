// Package ir defines the SSA intermediate representation used by the
// speculative tiers (DFG and FTL), including the Stack Map Points the paper
// studies: every speculation check carries a deoptimization stack map that
// transfers execution to the Baseline tier when the check fails (paper §II-B,
// §III). NoMap's transformation replaces those stack maps with transactional
// aborts (paper §IV-B).
package ir

import (
	"fmt"
	"strings"

	"nomap/internal/bytecode"
	"nomap/internal/ic"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Type is the static type an IR value is speculated to have. Checks enforce
// the speculation dynamically; failing checks deoptimize (or abort).
type Type uint8

const (
	TypeGeneric Type = iota // boxed JS value of unknown representation
	TypeInt32
	TypeDouble
	TypeBool
	TypeObject
	TypeString
	TypeNone // produces no value (stores, checks, control)
)

// String returns a short type name.
func (t Type) String() string {
	switch t {
	case TypeGeneric:
		return "gen"
	case TypeInt32:
		return "i32"
	case TypeDouble:
		return "f64"
	case TypeBool:
		return "b"
	case TypeObject:
		return "obj"
	case TypeString:
		return "str"
	case TypeNone:
		return "none"
	}
	return "?"
}

// Cmp is a comparison code for CmpInt/CmpDouble (stored in AuxInt).
type Cmp int64

const (
	CmpLT Cmp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// String returns the comparison mnemonic.
func (c Cmp) String() string {
	return [...]string{"lt", "le", "gt", "ge", "eq", "ne"}[c]
}

// StackMapEntry maps one bytecode register to the IR value holding its
// content at a Stack Map Point.
type StackMapEntry struct {
	Reg int
	Val *Value
}

// StackMap is the paper's Stack Map Entry: it describes where every live
// program variable lives so On-Stack Replacement can materialize a Baseline
// frame (paper §II-B). When the map belongs to code flattened by the
// inlining pass, Inline identifies the inlined activation the registers
// belong to and Caller is the enclosing frame's map at the flattened call
// site, so a single deopt reconstructs the whole logical frame stack.
type StackMap struct {
	// PC is the bytecode pc at which Baseline execution resumes. For an
	// inline map it is a pc within Inline.Source; a Caller map's PC is the
	// pc of the flattened call itself (the resume loop installs the return
	// value and steps past it).
	PC int
	// Entries lists live bytecode registers and their IR values. For an
	// inline map the registers are the inlined callee's, not the root's.
	Entries []StackMapEntry
	// Inline is the inlined activation this map describes, nil for the root
	// frame of the compiled function.
	Inline *InlineFrame
	// Caller is the next-outer frame's map at the call that was flattened;
	// nil exactly when Inline is nil.
	Caller *StackMap
}

// InlineFrame describes one callee activation flattened into a compiled
// function by the speculative inlining pass. Deopt maps reference it so the
// machine can rebuild the logical interpreter frame stack; the machine also
// uses it to attribute back-edge counts and abort sites to the callee the
// code textually came from.
type InlineFrame struct {
	// Parent is the enclosing inlined activation, nil when the caller is the
	// compiled function's own (root) frame.
	Parent *InlineFrame
	// Callee is the function object whose body was flattened (carries the
	// environment the reconstructed frame needs).
	Callee *value.Function
	// Source is the callee's bytecode (register file layout, back-edge pcs).
	Source *bytecode.Function
	// CallPC is the bytecode pc of the flattened call in the caller's code
	// (the caller's Source, i.e. Parent.Source or the root function).
	CallPC int
	// RetReg is the caller register that receives the callee's result.
	RetReg int
	// Depth is 1 for callees inlined directly into the root frame.
	Depth int
	// Index is this frame's 1-based position in Func.Inlines; index 0 is
	// reserved for the root frame in per-frame machine accounting.
	Index int
}

// Path renders the inline position as "callee@pc" segments from the
// outermost inlined callee to this one. It identifies a check site
// textually — two inlinings of the same callee at different call sites get
// distinct paths — and is the site-attribution key the governor and oracle
// use alongside the bytecode pc.
func (inf *InlineFrame) Path() string {
	if inf == nil {
		return ""
	}
	s := fmt.Sprintf("%s@%d", inf.Callee.Name, inf.CallPC)
	if inf.Parent != nil {
		return inf.Parent.Path() + "/" + s
	}
	return s
}

// InlinePath returns sm's inline path, or "" for a root-frame map.
func (sm *StackMap) InlinePath() string { return sm.Inline.Path() }

// Value is one SSA value / instruction.
type Value struct {
	ID    int
	Op    Op
	Type  Type
	Args  []*Value
	Block *Block

	// Immediates (meaning depends on Op).
	AuxInt   int64
	AuxFloat float64
	AuxStr   string
	AuxVal   value.Value     // Const payload
	Shape    *value.Shape    // CheckShape expectation
	Callee   *value.Function // CallDirect / CheckCallee target

	// Check is the check class for Check* ops (Figure 3 categories).
	Check stats.CheckClass

	// Plan is a polymorphic dispatch plan attached by the builder to a
	// generic-call placeholder (OpCallRuntime). The ExpandDispatch pass
	// lowers it to a shape-guarded dispatch tree and clears it; a placeholder
	// whose plan is never expanded (demoted or megamorphic site) is already a
	// correct generic call.
	Plan *ic.Plan

	// Dispatch marks values materialized from a dispatch plan: the guard
	// chain's predicates and its deopting tail guard. Dispatch checks are
	// control-dependent on the chain — hoisting one out of its diamond would
	// fail it for every other way's receiver — so the loop passes exclude
	// them, and site identity (governor ledgers, oracle keys) carries their
	// per-shape component.
	Dispatch bool

	// Free marks a check whose instructions were eliminated by NoMap (the
	// SOF removes in-transaction overflow checks, §IV-C2; the unrealistic
	// NoMap_BC removes every in-transaction check). The machine still
	// enforces the guarded condition — failing a free check aborts — but it
	// costs zero instructions and is excluded from the Figure 3 counts.
	Free bool

	// Deopt is the Stack Map Point guarding this check: non-nil means "on
	// failure, OSR-exit to Baseline here". NoMap sets it to nil inside
	// transactions, turning the check into a transactional abort. For
	// TxBegin/TxTile values it is the abort-recovery entry (Entry₃ in paper
	// Figure 5).
	Deopt *StackMap

	// BCPos is the bytecode pc this value derives from. For inlined values
	// it is a pc within Inline.Source.
	BCPos int

	// Inline identifies the inlined activation this value was flattened
	// from, nil for values belonging to the compiled function itself. Site
	// attribution (governor ledgers, injector/oracle keys) combines it with
	// BCPos so the same callee inlined at two call sites stays two sites.
	Inline *InlineFrame
}

// InlinePath returns v's inline path, or "" for a root-frame value.
func (v *Value) InlinePath() string { return v.Inline.Path() }

// DispatchShape names the per-shape variant a dispatch-marked value guards:
// the receiver shape's transition path (dot-joined) or, for callee-identity
// guards, the candidate target's name. It is "" for every non-dispatch
// value, so existing site identity — governor ledgers, oracle keys, keep-set
// exports — is byte-identical when no dispatch trees are in play.
func (v *Value) DispatchShape() string {
	if !v.Dispatch {
		return ""
	}
	if v.Shape != nil {
		return strings.Join(v.Shape.Path(), ".")
	}
	if v.Callee != nil {
		return v.Callee.Name
	}
	return "?"
}

// BlockKind says how a block ends.
type BlockKind uint8

const (
	BlockPlain  BlockKind = iota // one successor
	BlockIf                      // two successors: [then, else], Control is the condition
	BlockReturn                  // no successors, Control is the result
)

// Block is a basic block.
type Block struct {
	ID      int
	Kind    BlockKind
	Values  []*Value
	Control *Value
	Succs   []*Block
	Preds   []*Block

	// StartPC is the bytecode pc of the block's first instruction (-1 for
	// synthetic blocks).
	StartPC int
	// BackEdge marks a block whose bytecode terminator is a backward
	// unconditional jump — the loop back edges the bytecode tiers count in
	// BackEdgeCount. The machine counts the same edges when leaving such a
	// block so loop-trip profiling stays consistent across tiers.
	BackEdge bool
	// EntryState is the Baseline register state at block entry, captured at
	// construction. NoMap's transaction formation derives its recovery
	// stack maps from loop headers' entry states. Valid until DCE runs.
	EntryState *StackMap

	// Inline identifies the inlined activation this block was flattened
	// from, nil for the compiled function's own blocks. The machine uses it
	// to credit the block's back edges to the right function's profile.
	Inline *InlineFrame

	Fn *Func
}

// Func is an IR function.
type Func struct {
	Name   string
	Source *bytecode.Function
	Blocks []*Block
	Entry  *Block

	nextValueID int
	nextBlockID int

	// TxAware is set once NoMap has formed transactions in this function.
	TxAware bool

	// OSREntryPC is the bytecode loop-header pc this artifact enters at, or
	// -1 for a normal (invocation-entry) compilation. OSR-entry artifacts
	// take their live state from OpOSRLocal values bound at machine.EnterAt
	// instead of OpParam values.
	OSREntryPC int

	// Inlines lists every activation the inlining pass flattened into this
	// function, in flattening order; Inlines[i].Index == i+1. The machine
	// sizes its per-frame back-edge accounting from it.
	Inlines []*InlineFrame

	// Dispatch summarizes every dispatch tree ExpandDispatch materialized in
	// this function, in expansion order. The JIT driver reports them as
	// cache-fill events; diagnostics render them in IR dumps.
	Dispatch []DispatchInfo
}

// DispatchInfo records one materialized dispatch tree.
type DispatchInfo struct {
	// PC is the site's bytecode pc; Path its inline path ("" for root code).
	PC   int
	Path string
	Kind ic.Kind
	// Name is the property or method name ("" for plain calls).
	Name string
	// Ways is the chain length; Trans counts ways speculating a transition.
	Ways  int
	Trans int
}

// NewFunc creates an empty function for source fn.
func NewFunc(name string, source *bytecode.Function) *Func {
	return &Func{Name: name, Source: source, OSREntryPC: -1}
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, Fn: f, StartPC: -1}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue creates a value in block b.
func (b *Block) NewValue(op Op, t Type, args ...*Value) *Value {
	v := &Value{ID: b.Fn.nextValueID, Op: op, Type: t, Args: args, Block: b}
	b.Fn.nextValueID++
	b.Values = append(b.Values, v)
	return v
}

// InsertValueAt creates a value placed at index i within b.
func (b *Block) InsertValueAt(i int, op Op, t Type, args ...*Value) *Value {
	v := &Value{ID: b.Fn.nextValueID, Op: op, Type: t, Args: args, Block: b}
	b.Fn.nextValueID++
	b.Values = append(b.Values, nil)
	copy(b.Values[i+1:], b.Values[i:])
	b.Values[i] = v
	return v
}

// NumValues returns the number of values allocated in the function (IDs are
// dense in [0, NumValues)).
func (f *Func) NumValues() int { return f.nextValueID }

// AddEdge links b -> succ, maintaining both edge lists.
func AddEdge(b, succ *Block) {
	b.Succs = append(b.Succs, succ)
	succ.Preds = append(succ.Preds, b)
}

// RemoveValue deletes v from its block (v must have no remaining uses).
func (b *Block) RemoveValue(v *Value) {
	for i, w := range b.Values {
		if w == v {
			b.Values = append(b.Values[:i], b.Values[i+1:]...)
			return
		}
	}
}

// PredIndex returns the index of pred within b.Preds (phi argument order).
func (b *Block) PredIndex(pred *Block) int {
	for i, p := range b.Preds {
		if p == pred {
			return i
		}
	}
	return -1
}

// String renders the value for IR dumps.
func (v *Value) String() string {
	var sb strings.Builder
	if v.Type != TypeNone {
		fmt.Fprintf(&sb, "v%d:%s = ", v.ID, v.Type)
	}
	sb.WriteString(v.Op.String())
	switch v.Op {
	case OpConst:
		fmt.Fprintf(&sb, " %s", v.AuxVal.ToStringValue())
	case OpParam, OpOSRLocal:
		fmt.Fprintf(&sb, " #%d", v.AuxInt)
	case OpCmpInt, OpCmpDouble:
		fmt.Fprintf(&sb, ".%s", Cmp(v.AuxInt))
	case OpLoadSlot, OpStoreSlot:
		fmt.Fprintf(&sb, " [%d]", v.AuxInt)
	case OpLoadGlobal, OpStoreGlobal, OpCallRuntime:
		fmt.Fprintf(&sb, " %q", v.AuxStr)
	case OpCheckShape, OpHasShape:
		if v.Shape != nil {
			fmt.Fprintf(&sb, " shape#%d", v.Shape.ID)
		}
	case OpCallDirect, OpCheckCallee, OpHasCallee:
		if v.Callee != nil {
			fmt.Fprintf(&sb, " %s", v.Callee.Name)
		}
	case OpTransition:
		fmt.Fprintf(&sb, " %q [%d]", v.AuxStr, v.AuxInt)
		if v.Shape != nil {
			fmt.Fprintf(&sb, " shape#%d", v.Shape.ID)
		}
	}
	if v.Dispatch {
		sb.WriteString(" dispatch")
	}
	for _, a := range v.Args {
		fmt.Fprintf(&sb, " v%d", a.ID)
	}
	if v.Op.IsCheck() {
		if v.Deopt != nil {
			fmt.Fprintf(&sb, " deopt@%d", v.Deopt.PC)
		} else {
			sb.WriteString(" abort")
		}
	}
	if v.Op == OpTxBegin || v.Op == OpTxTile {
		if v.Deopt != nil {
			fmt.Fprintf(&sb, " recover@%d", v.Deopt.PC)
		}
	}
	return sb.String()
}

// String renders the whole function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Preds) > 0 {
			sb.WriteString(" <-")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " b%d", p.ID)
			}
		}
		sb.WriteString("\n")
		for _, v := range b.Values {
			fmt.Fprintf(&sb, "    %s\n", v)
		}
		switch b.Kind {
		case BlockPlain:
			if len(b.Succs) > 0 {
				fmt.Fprintf(&sb, "    -> b%d\n", b.Succs[0].ID)
			}
		case BlockIf:
			fmt.Fprintf(&sb, "    if v%d -> b%d else b%d\n", b.Control.ID, b.Succs[0].ID, b.Succs[1].ID)
		case BlockReturn:
			fmt.Fprintf(&sb, "    ret v%d\n", b.Control.ID)
		}
	}
	return sb.String()
}
