package core_test

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/opt"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
)

func buildIR(t *testing.T, src, fname string) *ir.Func {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	m := vm.New(cfg)
	if _, err := m.Run(src); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	fv := m.Globals().Get(fname)
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	f, err := ir.Build(bcFn, m.ProfileFor(bcFn))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

const sumSrc = `
var arr = [];
for (var i = 0; i < 64; i++) arr[i] = i;
function sum(n) {
  var s = 0;
  for (var j = 0; j < n; j++) s += arr[j];
  return s;
}
for (var k = 0; k < 40; k++) sum(64);
var result = sum(64);
`

func opsOf(f *ir.Func) map[ir.Op]int {
	m := map[ir.Op]int{}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			m[v.Op]++
		}
	}
	return m
}

func TestFormTransactionsInsertsMarkers(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	n := core.FormTransactions(f, core.TxLoopNest)
	if n != 1 {
		t.Fatalf("formed %d transactions, want 1:\n%s", n, f)
	}
	if !f.TxAware {
		t.Error("TxAware must be set")
	}
	ops := opsOf(f)
	if ops[ir.OpTxBegin] != 1 || ops[ir.OpTxEnd] == 0 {
		t.Errorf("tx markers: begin=%d end=%d", ops[ir.OpTxBegin], ops[ir.OpTxEnd])
	}
	if ops[ir.OpTxTile] != 0 {
		t.Error("loop-nest level must not tile (tiles only in the retreat level)")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestFormTransactionsTiled(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxTiled)
	ops := opsOf(f)
	if ops[ir.OpTxTile] == 0 {
		t.Error("tiled level must insert TxTile at back edges")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestFormTransactionsOff(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	if n := core.FormTransactions(f, core.TxOff); n != 0 {
		t.Errorf("TxOff formed %d transactions", n)
	}
	if f.TxAware {
		t.Error("TxAware must stay false")
	}
}

func TestSMPToAbortConversion(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	// Before: every check has a stack map.
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Deopt == nil {
				t.Fatalf("check v%d has no SMP before transformation", v.ID)
			}
		}
	}
	core.FormTransactions(f, core.TxLoopNest)
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	for _, l := range loops {
		for b := range l.Blocks {
			for _, v := range b.Values {
				if v.Op.IsCheck() && v.Deopt != nil {
					t.Errorf("in-transaction check v%d still carries an SMP", v.ID)
				}
			}
		}
	}
}

func TestTxBeginRecoveryMap(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpTxBegin {
				if v.Deopt == nil || len(v.Deopt.Entries) == 0 {
					t.Fatal("TxBegin must carry a recovery stack map (Entry3)")
				}
				// Recovery entries must not reference loop-header phis
				// directly (they must be resolved along the preheader edge,
				// so the whole loop re-executes on abort).
				dom := ir.BuildDom(f)
				loops := ir.FindLoops(f, dom)
				for _, e := range v.Deopt.Entries {
					for _, l := range loops {
						if e.Val.Op == ir.OpPhi && e.Val.Block == l.Header {
							t.Errorf("recovery map references loop phi v%d", e.Val.ID)
						}
					}
				}
			}
		}
	}
}

func TestBoundsCombining(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	opt.GVN(f)
	opt.LICM(f)
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	inLoop := func() int {
		n := 0
		for _, l := range loops {
			for b := range l.Blocks {
				for _, v := range b.Values {
					if v.Op == ir.OpCheckBounds {
						n++
					}
				}
			}
		}
		return n
	}
	before := inLoop()
	if before == 0 {
		t.Fatalf("expected an in-loop bounds check:\n%s", f)
	}
	removed := core.CombineBoundsChecks(f)
	if removed == 0 {
		t.Fatalf("no bounds checks combined:\n%s", f)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if got := inLoop(); got != 0 {
		t.Errorf("%d bounds checks remain in the loop", got)
	}
	// The sunk check sits before the TxEnd in the exit block.
	found := false
	for _, b := range f.Blocks {
		for i, v := range b.Values {
			if v.Op == ir.OpCheckBounds {
				for j := i + 1; j < len(b.Values); j++ {
					if b.Values[j].Op == ir.OpTxEnd {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Errorf("sunk bounds check must precede TxEnd:\n%s", f)
	}
}

func TestBoundsCombiningRequiresTransactions(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	// Without transactions every check keeps its SMP; combining must refuse.
	if n := core.CombineBoundsChecks(f); n != 0 {
		t.Errorf("combined %d checks without transactions (unsound)", n)
	}
}

func TestRemoveOverflowChecks(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	n := core.RemoveOverflowChecks(f)
	if n == 0 {
		t.Fatalf("no overflow checks removed:\n%s", f)
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpCheckOverflow && v.Deopt == nil && !v.Free {
				t.Errorf("in-tx overflow check v%d not freed", v.ID)
			}
			if v.Op == ir.OpCheckOverflow && v.Deopt != nil && v.Free {
				t.Errorf("out-of-tx overflow check v%d wrongly freed", v.ID)
			}
		}
	}
}

func TestRemoveAllChecks(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	core.RemoveAllChecks(f)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Deopt == nil && !v.Free {
				t.Errorf("in-tx check v%d (%v, class %v) not freed", v.ID, v.Op, stats.CheckClass(v.Check))
			}
		}
	}
}

func TestTxLevelLadder(t *testing.T) {
	cases := []struct {
		from     core.TxLevel
		hadCalls bool
		tiling   bool
		want     core.TxLevel
	}{
		{core.TxLoopNest, false, true, core.TxInnermost},
		{core.TxInnermost, false, true, core.TxTiled},
		{core.TxTiled, false, true, core.TxOff},
		{core.TxLoopNest, true, true, core.TxOff},    // calls: straight off
		{core.TxInnermost, false, false, core.TxOff}, // RTM: no tiling
	}
	for _, c := range cases {
		if got := c.from.Lower(c.hadCalls, c.tiling); got != c.want {
			t.Errorf("Lower(%v, calls=%v, tiling=%v) = %v, want %v",
				c.from, c.hadCalls, c.tiling, got, c.want)
		}
	}
}

func TestNestedLoopSelection(t *testing.T) {
	src := `
var m = [];
for (var i = 0; i < 8; i++) { m[i] = []; for (var j = 0; j < 8; j++) m[i][j] = i + j; }
function total(n) {
  var s = 0;
  for (var i = 0; i < n; i++)
    for (var j = 0; j < n; j++)
      s += m[i][j];
  return s;
}
for (var k = 0; k < 40; k++) total(8);
var result = total(8);
`
	f := buildIR(t, src, "total")
	if n := core.FormTransactions(f, core.TxLoopNest); n != 1 {
		t.Errorf("loop-nest level: %d transactions, want 1 (outermost only)", n)
	}
	g := buildIR(t, src, "total")
	if n := core.FormTransactions(g, core.TxInnermost); n != 1 {
		t.Errorf("innermost level: %d transactions, want 1 (the inner loop)", n)
	}
	// The innermost selection must wrap the deeper loop.
	dom := ir.BuildDom(g)
	loops := ir.FindLoops(g, dom)
	for _, l := range loops {
		hasBegin := false
		if p := l.Preheader(); p != nil {
			for _, v := range p.Values {
				if v.Op == ir.OpTxBegin {
					hasBegin = true
				}
			}
		}
		if l.Depth == 2 && !hasBegin {
			t.Error("inner loop should carry the transaction at TxInnermost")
		}
		if l.Depth == 1 && hasBegin {
			t.Error("outer loop should not carry the transaction at TxInnermost")
		}
	}
}
