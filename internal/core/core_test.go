package core_test

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/opt"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
)

func buildIR(t *testing.T, src, fname string) *ir.Func {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	m := vm.New(cfg)
	if _, err := m.Run(src); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	fv := m.Globals().Get(fname)
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	f, err := ir.Build(bcFn, m.ProfileFor(bcFn))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

const sumSrc = `
var arr = [];
for (var i = 0; i < 64; i++) arr[i] = i;
function sum(n) {
  var s = 0;
  for (var j = 0; j < n; j++) s += arr[j];
  return s;
}
for (var k = 0; k < 40; k++) sum(64);
var result = sum(64);
`

func opsOf(f *ir.Func) map[ir.Op]int {
	m := map[ir.Op]int{}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			m[v.Op]++
		}
	}
	return m
}

func TestFormTransactionsInsertsMarkers(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	n := core.FormTransactions(f, core.TxLoopNest)
	if n != 1 {
		t.Fatalf("formed %d transactions, want 1:\n%s", n, f)
	}
	if !f.TxAware {
		t.Error("TxAware must be set")
	}
	ops := opsOf(f)
	if ops[ir.OpTxBegin] != 1 || ops[ir.OpTxEnd] == 0 {
		t.Errorf("tx markers: begin=%d end=%d", ops[ir.OpTxBegin], ops[ir.OpTxEnd])
	}
	if ops[ir.OpTxTile] != 0 {
		t.Error("loop-nest level must not tile (tiles only in the retreat level)")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestFormTransactionsTiled(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxTiled)
	ops := opsOf(f)
	if ops[ir.OpTxTile] == 0 {
		t.Error("tiled level must insert TxTile at back edges")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestFormTransactionsOff(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	if n := core.FormTransactions(f, core.TxOff); n != 0 {
		t.Errorf("TxOff formed %d transactions", n)
	}
	if f.TxAware {
		t.Error("TxAware must stay false")
	}
}

func TestSMPToAbortConversion(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	// Before: every check has a stack map.
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Deopt == nil {
				t.Fatalf("check v%d has no SMP before transformation", v.ID)
			}
		}
	}
	core.FormTransactions(f, core.TxLoopNest)
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	for _, l := range loops {
		for b := range l.Blocks {
			for _, v := range b.Values {
				if v.Op.IsCheck() && v.Deopt != nil {
					t.Errorf("in-transaction check v%d still carries an SMP", v.ID)
				}
			}
		}
	}
}

func TestTxBeginRecoveryMap(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpTxBegin {
				if v.Deopt == nil || len(v.Deopt.Entries) == 0 {
					t.Fatal("TxBegin must carry a recovery stack map (Entry3)")
				}
				// Recovery entries must not reference loop-header phis
				// directly (they must be resolved along the preheader edge,
				// so the whole loop re-executes on abort).
				dom := ir.BuildDom(f)
				loops := ir.FindLoops(f, dom)
				for _, e := range v.Deopt.Entries {
					for _, l := range loops {
						if e.Val.Op == ir.OpPhi && e.Val.Block == l.Header {
							t.Errorf("recovery map references loop phi v%d", e.Val.ID)
						}
					}
				}
			}
		}
	}
}

func TestBoundsCombining(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	opt.GVN(f)
	opt.LICM(f)
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	inLoop := func() int {
		n := 0
		for _, l := range loops {
			for b := range l.Blocks {
				for _, v := range b.Values {
					if v.Op == ir.OpCheckBounds {
						n++
					}
				}
			}
		}
		return n
	}
	before := inLoop()
	if before == 0 {
		t.Fatalf("expected an in-loop bounds check:\n%s", f)
	}
	removed := core.CombineBoundsChecks(f)
	if removed == 0 {
		t.Fatalf("no bounds checks combined:\n%s", f)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if got := inLoop(); got != 0 {
		t.Errorf("%d bounds checks remain in the loop", got)
	}
	// The sunk check sits before the TxEnd in the exit block.
	found := false
	for _, b := range f.Blocks {
		for i, v := range b.Values {
			if v.Op == ir.OpCheckBounds {
				for j := i + 1; j < len(b.Values); j++ {
					if b.Values[j].Op == ir.OpTxEnd {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Errorf("sunk bounds check must precede TxEnd:\n%s", f)
	}
}

func TestBoundsCombiningRequiresTransactions(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	// Without transactions every check keeps its SMP; combining must refuse.
	if n := core.CombineBoundsChecks(f); n != 0 {
		t.Errorf("combined %d checks without transactions (unsound)", n)
	}
}

func TestRemoveOverflowChecks(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	n := core.RemoveOverflowChecks(f)
	if n == 0 {
		t.Fatalf("no overflow checks removed:\n%s", f)
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpCheckOverflow && v.Deopt == nil && !v.Free {
				t.Errorf("in-tx overflow check v%d not freed", v.ID)
			}
			if v.Op == ir.OpCheckOverflow && v.Deopt != nil && v.Free {
				t.Errorf("out-of-tx overflow check v%d wrongly freed", v.ID)
			}
		}
	}
}

func TestRemoveAllChecks(t *testing.T) {
	f := buildIR(t, sumSrc, "sum")
	core.FormTransactions(f, core.TxLoopNest)
	core.RemoveAllChecks(f)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Deopt == nil && !v.Free {
				t.Errorf("in-tx check v%d (%v, class %v) not freed", v.ID, v.Op, stats.CheckClass(v.Check))
			}
		}
	}
}

// TestTxLevelLadder exhaustively covers Lower over every (level, hadCalls,
// allowTiling) combination: the §V-C retreat ladder, the straight-to-off
// rule for call-containing transactions, and the RTM ladder that skips the
// tiled level.
func TestTxLevelLadder(t *testing.T) {
	cases := []struct {
		from     core.TxLevel
		hadCalls bool
		tiling   bool
		want     core.TxLevel
	}{
		// ROT ladder (tiling allowed): loop-nest → innermost → tiled → off.
		{core.TxLoopNest, false, true, core.TxInnermost},
		{core.TxInnermost, false, true, core.TxTiled},
		{core.TxTiled, false, true, core.TxOff},
		{core.TxOff, false, true, core.TxOff},
		// RTM ladder (no tiling): loop-nest → innermost → off.
		{core.TxLoopNest, false, false, core.TxInnermost},
		{core.TxInnermost, false, false, core.TxOff},
		{core.TxTiled, false, false, core.TxOff},
		{core.TxOff, false, false, core.TxOff},
		// Calls: §V-C blames the callee, straight to off from every level.
		{core.TxLoopNest, true, true, core.TxOff},
		{core.TxInnermost, true, true, core.TxOff},
		{core.TxTiled, true, true, core.TxOff},
		{core.TxOff, true, true, core.TxOff},
		{core.TxLoopNest, true, false, core.TxOff},
		{core.TxInnermost, true, false, core.TxOff},
		{core.TxTiled, true, false, core.TxOff},
		{core.TxOff, true, false, core.TxOff},
	}
	for _, c := range cases {
		if got := c.from.Lower(c.hadCalls, c.tiling); got != c.want {
			t.Errorf("Lower(%v, calls=%v, tiling=%v) = %v, want %v",
				c.from, c.hadCalls, c.tiling, got, c.want)
		}
	}
	// Lower is monotone: no input ever raises the level. (Re-promotion is the
	// governor's job, via its probationary windows — never Lower's.)
	for _, l := range []core.TxLevel{core.TxLoopNest, core.TxInnermost, core.TxTiled, core.TxOff} {
		for _, hadCalls := range []bool{false, true} {
			for _, tiling := range []bool{false, true} {
				if got := l.Lower(hadCalls, tiling); got < l {
					t.Errorf("Lower(%v, calls=%v, tiling=%v) = %v raised the level",
						l, hadCalls, tiling, got)
				}
			}
		}
	}
}

// TestFormTransactionsKeeping: a site in the governor keep set must retain
// its SMP inside the transaction while every other check converts to an
// abort, so a persistent failure deopts surgically instead of aborting.
func TestFormTransactionsKeeping(t *testing.T) {
	// Locate the bounds check the keep set will target.
	probe := buildIR(t, sumSrc, "sum")
	var site core.CheckSite
	found := false
	for _, b := range probe.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpCheckBounds {
				site = core.CheckSite{PC: v.BCPos, Class: v.Check}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no bounds check in sum")
	}

	f := buildIR(t, sumSrc, "sum")
	if n := core.FormTransactionsKeeping(f, core.TxLoopNest, core.KeepSet{site: true}); n != 1 {
		t.Fatalf("formed %d transactions, want 1", n)
	}
	kept, converted := 0, 0
	dom := ir.BuildDom(f)
	for _, l := range ir.FindLoops(f, dom) {
		for b := range l.Blocks {
			for _, v := range b.Values {
				if !v.Op.IsCheck() {
					continue
				}
				if (core.CheckSite{PC: v.BCPos, Class: v.Check}) == site {
					if v.Deopt == nil {
						t.Errorf("kept check v%d lost its SMP", v.ID)
					}
					kept++
				} else {
					if v.Deopt != nil {
						t.Errorf("non-kept check v%d retained an SMP", v.ID)
					}
					converted++
				}
			}
		}
	}
	if kept == 0 {
		t.Error("keep-set site not found inside the transaction")
	}
	if converted == 0 {
		t.Error("no checks converted: keep set must be surgical, not global")
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestNestedLoopSelection(t *testing.T) {
	src := `
var m = [];
for (var i = 0; i < 8; i++) { m[i] = []; for (var j = 0; j < 8; j++) m[i][j] = i + j; }
function total(n) {
  var s = 0;
  for (var i = 0; i < n; i++)
    for (var j = 0; j < n; j++)
      s += m[i][j];
  return s;
}
for (var k = 0; k < 40; k++) total(8);
var result = total(8);
`
	f := buildIR(t, src, "total")
	if n := core.FormTransactions(f, core.TxLoopNest); n != 1 {
		t.Errorf("loop-nest level: %d transactions, want 1 (outermost only)", n)
	}
	g := buildIR(t, src, "total")
	if n := core.FormTransactions(g, core.TxInnermost); n != 1 {
		t.Errorf("innermost level: %d transactions, want 1 (the inner loop)", n)
	}
	// The innermost selection must wrap the deeper loop.
	dom := ir.BuildDom(g)
	loops := ir.FindLoops(g, dom)
	for _, l := range loops {
		hasBegin := false
		if p := l.Preheader(); p != nil {
			for _, v := range p.Values {
				if v.Op == ir.OpTxBegin {
					hasBegin = true
				}
			}
		}
		if l.Depth == 2 && !hasBegin {
			t.Error("inner loop should carry the transaction at TxInnermost")
		}
		if l.Depth == 1 && hasBegin {
			t.Error("outer loop should not carry the transaction at TxInnermost")
		}
	}
}
