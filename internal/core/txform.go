// Package core implements NoMap, the paper's contribution: the FTL tier
// places hardware transactions around hot loops, converts the Stack Map
// Points inside them into transactional aborts, and then runs two check
// optimizations that only transactions make legal — bounds-check
// hoisting/sinking over monotonic induction variables (§IV-C1) and
// Sticky-Overflow-Flag-based overflow-check elimination (§IV-C2).
package core

import (
	"nomap/internal/ir"
	"nomap/internal/stats"
)

// CheckSite identifies one check site within a function, stable across
// recompilations: feedback-refreshed compiles renumber SSA values, but the
// bytecode position and check class of a site survive. For checks living in
// code the inlining pass flattened, Path is the inline path ("callee@pc"
// segments, see ir.InlineFrame.Path) and PC is a pc within that callee —
// the same callee inlined at two call sites stays two distinct sites.
type CheckSite struct {
	PC    int
	Class stats.CheckClass
	Path  string
	// Shape names the per-shape dispatch variant for guards belonging to a
	// polymorphic dispatch tree (ir.Value.DispatchShape); "" for ordinary
	// checks, so pre-IC site identity is unchanged.
	Shape string
}

// KeepSet selects check sites whose Stack Map Points must be preserved when
// the site sits inside a transaction — the abort-recovery governor's surgical
// SMP restoration: a site that aborts persistently deopts through its SMP
// instead of aborting the whole transaction, while every other check in the
// transaction keeps its NoMap treatment.
type KeepSet map[CheckSite]bool

// TxLevel is the transaction placement policy for one function (§V-C): by
// default transactions wrap top-level loop nests (with tile commits at back
// edges bounding the write footprint); after a capacity abort the runtime
// retreats to innermost loops, and finally removes transactions entirely —
// the paper removes them when the overflowing transaction contains a call.
type TxLevel uint8

const (
	// TxLoopNest wraps each outermost loop (the default). No tile commits:
	// an abort restarts the whole loop in Baseline (paper Figure 5).
	TxLoopNest TxLevel = iota
	// TxInnermost wraps only innermost loops (first retreat step).
	TxInnermost
	// TxTiled wraps innermost loops with TxTile commit points at back
	// edges, bounding the write footprint (second retreat step). Tile
	// commits are barriers: loop optimizations that rely on whole-loop
	// rollback (store sinking) are disabled, which is the price of
	// footprint control.
	TxTiled
	// TxOff disables transactions for the function (final retreat, and the
	// immediate choice when an overflowing transaction contains a call).
	TxOff
)

// String names the level.
func (l TxLevel) String() string {
	switch l {
	case TxLoopNest:
		return "loop-nest"
	case TxInnermost:
		return "innermost"
	case TxTiled:
		return "tiled"
	case TxOff:
		return "off"
	}
	return "?"
}

// Lower returns the next retreat step after a capacity abort. Transactions
// containing calls are removed immediately: NoMap assumes the overflow was
// caused by the callee (paper §V-C). Heavyweight RTM (allowTiling=false)
// skips the tiled level: with the small L1D write budget and L2 read-set
// tracking, resizing rarely produces a fitting transaction, and the paper
// observes RTM losing its Kraken transactions entirely (§VII-A).
func (l TxLevel) Lower(hadCalls, allowTiling bool) TxLevel {
	if hadCalls {
		return TxOff
	}
	switch l {
	case TxLoopNest:
		return TxInnermost
	case TxInnermost:
		if allowTiling {
			return TxTiled
		}
		return TxOff
	default:
		return TxOff
	}
}

// FormTransactions inserts TxBegin/TxTile/TxEnd around the selected loops
// and converts every check inside a transaction from an SMP into an abort
// (Deopt = nil). It runs before the optimization pipeline, exactly as the
// paper inserts its transformation before LLVM's passes (§IV-B). Returns
// the number of transactions formed.
func FormTransactions(f *ir.Func, level TxLevel) int {
	return FormTransactionsKeeping(f, level, nil)
}

// FormTransactionsKeeping is FormTransactions with a governor keep set:
// checks whose (bytecode position, class) is in keep retain their SMPs even
// inside transactions, so a persistent failure deopts surgically instead of
// aborting.
func FormTransactionsKeeping(f *ir.Func, level TxLevel, keep KeepSet) int {
	if level == TxOff {
		return 0
	}
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	var selected []*ir.Loop
	for _, l := range loops {
		switch level {
		case TxLoopNest:
			if l.Parent == nil {
				selected = append(selected, l)
			}
		case TxInnermost, TxTiled:
			if len(l.Children) == 0 {
				selected = append(selected, l)
			}
		}
	}
	formed := 0
	for _, l := range selected {
		if wrapLoop(f, l, level == TxTiled, keep) {
			formed++
		}
	}
	if formed > 0 {
		f.TxAware = true
	}
	return formed
}

// wrapLoop places one transaction around loop l.
func wrapLoop(f *ir.Func, l *ir.Loop, tiled bool, keep KeepSet) bool {
	pre := l.Preheader()
	if pre == nil || pre.Kind != ir.BlockPlain {
		return false
	}
	if l.Header.EntryState == nil {
		return false
	}
	exits := l.Exits()
	if len(exits) == 0 {
		return false // infinite loop: no commit point
	}
	for _, e := range exits {
		for _, p := range e.Preds {
			if !l.Contains(p) {
				// The exit block is reachable without entering the loop; a
				// TxEnd there could execute without a begin. Skip the loop.
				return false
			}
		}
	}

	// TxBegin at the end of the preheader. Its recovery map is the loop
	// header's entry state seen from the preheader edge — the paper's
	// Entry₃: Baseline re-executes the whole loop from the top (Figure 5).
	begin := pre.NewValue(ir.OpTxBegin, ir.TypeNone)
	begin.Deopt = ir.ResolveEntryState(l.Header, pre)
	begin.BCPos = l.Header.StartPC

	// In the tiled retreat level, TxTile at each latch provides a back-edge
	// commit point keeping the write footprint within cache capacity (§V-C
	// tiling). Its recovery map is the header entry state seen from the
	// latch edge — the next iteration's state, valid because a tile commit
	// makes prior iterations' writes permanent.
	if tiled {
		for _, latch := range l.Latches() {
			tile := latch.NewValue(ir.OpTxTile, ir.TypeNone)
			tile.Deopt = ir.ResolveEntryState(l.Header, latch)
			tile.BCPos = l.Header.StartPC
		}
	}

	// TxEnd at the start of each exit block.
	for _, e := range exits {
		e.InsertValueAt(0, ir.OpTxEnd, ir.TypeNone)
	}

	// Convert in-transaction SMPs to aborts: it is safe to remove these
	// SMPs because they are not entry points (§IV-B). Sites in the keep set
	// retain their SMP — the governor has diagnosed them as persistent
	// aborters and routes their failures through deoptimization instead.
	for _, b := range l.BlockList() {
		for _, v := range b.Values {
			if v.Op.IsCheck() && !keep[CheckSite{PC: v.BCPos, Class: v.Check, Path: v.InlinePath(), Shape: v.DispatchShape()}] {
				v.Deopt = nil
			}
		}
	}
	return true
}
