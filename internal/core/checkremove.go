package core

import "nomap/internal/ir"

// RemoveOverflowChecks implements the Sticky Overflow Flag optimization
// (§IV-C2): inside a transaction, the per-operation overflow checks are
// removed; arithmetic sets the SOF, and the transaction-end instruction
// aborts if it is set. Checks are marked Free — they cost zero instructions
// and vanish from the Figure 3 counts, while the machine still enforces the
// condition by aborting (which is exactly the architectural behaviour: the
// overflow is detected, only later). Returns the number removed.
func RemoveOverflowChecks(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if !v.Op.IsCheck() || v.Deopt != nil || v.Free {
				continue
			}
			if v.Op == ir.OpCheckOverflow || v.Op == ir.OpCheckUint32 {
				v.Free = true
				n++
			}
		}
	}
	return n
}

// RemoveAllChecks implements the unrealistic NoMap_BC upper bound (Table
// II): every check inside a transaction is removed. Returns the number
// removed.
func RemoveAllChecks(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.IsCheck() && v.Deopt == nil && !v.Free {
				v.Free = true
				n++
			}
		}
	}
	return n
}
