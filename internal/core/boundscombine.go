package core

import (
	"nomap/internal/ir"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// boundsClass is the Figure 3 category of the sunk combined check.
const boundsClass = stats.CheckBounds

// CombineBoundsChecks implements the paper's bounds-check combining
// (§IV-C1): in a transaction, bounds checks over a monotonically increasing
// induction variable against a loop-invariant array are replaced by a
// single check of the last index used, sunk after the loop. Inside a
// transaction it does not matter when a failure is detected — only that the
// transaction eventually rolls back — so the per-iteration checks go away
// and mid-loop out-of-bounds accesses read garbage that the abort discards.
//
// The induction-variable analysis is a scalar-evolution subset: a header
// phi i = φ(i₀, i + c) with constant c > 0. (JavaScriptCore builds the same
// facts with LLVM's Scalar Evolution; monotonically decreasing variables,
// which the paper hoists instead, are left unoptimized here — increasing
// loops dominate the suites.) Returns the number of in-loop checks removed.
func CombineBoundsChecks(f *ir.Func) int {
	dom := ir.BuildDom(f)
	loops := ir.FindLoops(f, dom)
	removed := 0
	for _, l := range loops {
		removed += combineInLoop(f, dom, l)
	}
	return removed
}

func combineInLoop(f *ir.Func, dom *ir.DomTree, l *ir.Loop) int {
	pre := l.Preheader()
	exits := l.Exits()
	latches := l.Latches()
	if pre == nil || len(exits) != 1 || len(latches) != 1 {
		return 0
	}
	exit := exits[0]
	latch := latches[0]
	// Exits must leave from the header so the induction phi's value at the
	// exit is well-defined and ≥ every used index + step.
	for _, p := range exit.Preds {
		if p != l.Header {
			return 0
		}
	}

	// Find increasing basic induction variables: phi(init, addi(phi, c)).
	type indVar struct {
		phi  *ir.Value
		step int32
	}
	ivs := map[*ir.Value]indVar{}
	for _, v := range l.Header.Values {
		if v.Op != ir.OpPhi || len(v.Args) != len(l.Header.Preds) {
			continue
		}
		var stepArg *ir.Value
		ok := true
		for i, p := range l.Header.Preds {
			if p == pre {
				continue
			}
			if p != latch {
				ok = false
				break
			}
			stepArg = v.Args[i]
		}
		if !ok || stepArg == nil || stepArg.Op != ir.OpAddInt {
			continue
		}
		var c *ir.Value
		if stepArg.Args[0] == v {
			c = stepArg.Args[1]
		} else if stepArg.Args[1] == v {
			c = stepArg.Args[0]
		} else {
			continue
		}
		if c.Op != ir.OpConst || !c.AuxVal.IsInt32() || c.AuxVal.Int32() <= 0 {
			continue
		}
		ivs[v] = indVar{phi: v, step: c.AuxVal.Int32()}
	}
	if len(ivs) == 0 {
		return 0
	}

	// Collect combinable checks: in-transaction (abort) bounds checks of an
	// invariant array indexed directly by an induction phi.
	type sunk struct {
		arr *ir.Value
		iv  indVar
		pos int // source position for diagnostics
	}
	var toSink []sunk
	seen := map[[2]*ir.Value]bool{}
	removed := 0
	for _, b := range l.BlockList() {
		for i := 0; i < len(b.Values); i++ {
			v := b.Values[i]
			if v.Op != ir.OpCheckBounds || v.Deopt != nil || v.Free {
				continue
			}
			arr, idx := v.Args[0], v.Args[1]
			if l.Contains(arr.Block) {
				continue // array not invariant
			}
			iv, isIV := ivs[idx]
			if !isIV {
				continue
			}
			b.RemoveValue(v)
			i--
			removed++
			key := [2]*ir.Value{arr, idx}
			if !seen[key] {
				seen[key] = true
				toSink = append(toSink, sunk{arr: arr, iv: iv, pos: v.BCPos})
			}
		}
	}

	// Materialize one sunk check per (array, induction variable): check
	// lastUsed = i_exit - step against the bounds, placed before the TxEnd
	// in the exit block. A zero-iteration loop makes lastUsed negative and
	// the check conservatively aborts; Baseline re-executes correctly.
	at := 0
	for _, s := range toSink {
		stepC := exit.InsertValueAt(at, ir.OpConst, ir.TypeInt32)
		stepC.AuxVal = value.Int(s.iv.step)
		last := exit.InsertValueAt(at+1, ir.OpSubInt, ir.TypeInt32, s.iv.phi, stepC)
		last.BCPos = s.pos
		chk := exit.InsertValueAt(at+2, ir.OpCheckBounds, ir.TypeNone, s.arr, last)
		chk.Check = boundsClass
		chk.BCPos = s.pos
		at += 3
	}
	return removed
}
