package profile

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/value"
)

func TestArithFeedbackLattice(t *testing.T) {
	var f ArithFeedback
	f.Observe(value.Int(1), value.Int(2))
	if !f.IntOnly() || !f.NumberOnly() {
		t.Error("int operands: IntOnly and NumberOnly must hold")
	}
	f.Observe(value.Int(1), value.Double(0.5))
	if f.IntOnly() {
		t.Error("double operand must clear IntOnly")
	}
	if !f.NumberOnly() {
		t.Error("numbers only so far")
	}
	f.Observe(value.Str("x"), value.Int(1))
	if f.NumberOnly() {
		t.Error("string operand must clear NumberOnly")
	}
}

func TestArithFeedbackOverflowGate(t *testing.T) {
	var f ArithFeedback
	f.Observe(value.Int(1), value.Int(2))
	if !f.IntOnly() {
		t.Fatal("precondition")
	}
	f.SawOverflow = true
	if f.IntOnly() {
		t.Error("overflow history must disable int speculation")
	}
	if !f.IntOperands() {
		t.Error("IntOperands ignores overflow history")
	}
}

func TestElemFeedback(t *testing.T) {
	table := value.NewShapeTable()
	arr := value.Obj(value.NewArray(table, 4))
	var f ElemFeedback
	f.Observe(arr, value.Int(1), true, false, false)
	if !f.FastArray() {
		t.Error("dense int access must be FastArray")
	}
	f.Observe(arr, value.Double(1.5), true, false, false)
	if f.FastArray() {
		t.Error("non-int index must disable the fast path")
	}
}

// A store at exactly the element count is sequential growth (legal for the
// store op, which elongates), not an out-of-bounds miss: the two must stay
// distinguishable so append loops keep their fast path with only a
// non-negative-index guard.
func TestElemFeedbackAppendVsOOB(t *testing.T) {
	table := value.NewShapeTable()
	arr := value.Obj(value.NewArray(table, 4))
	var f ElemFeedback
	f.Observe(arr, value.Int(4), false, true, false) // store at length: append
	if !f.SawAppend || f.SawOOB {
		t.Errorf("append store: SawAppend=%v SawOOB=%v, want true/false", f.SawAppend, f.SawOOB)
	}
	if !f.FastArray() {
		t.Error("append alone must not disable the fast array path")
	}
	f.Observe(arr, value.Int(9), false, false, false) // past length: true OOB
	if !f.SawOOB {
		t.Error("out-of-bounds store must set SawOOB")
	}
}

// AddBackEdges folds a frame's carried delta into the loop-trip count — the
// mechanism that keeps BackEdgeCount identical whether a loop runs in one
// tier or hands its frame across several.
func TestAddBackEdges(t *testing.T) {
	p := &FunctionProfile{}
	p.BackEdgeCount = 100
	p.AddBackEdges(28)
	if p.BackEdgeCount != 128 {
		t.Errorf("BackEdgeCount = %d, want 128", p.BackEdgeCount)
	}
}

func TestCallFeedback(t *testing.T) {
	a := &value.Function{Name: "a"}
	b := &value.Function{Name: "b"}
	var f CallFeedback
	f.Observe(a)
	if !f.Monomorphic() {
		t.Error("one target = monomorphic")
	}
	f.Observe(a)
	if !f.Monomorphic() {
		t.Error("same target stays monomorphic")
	}
	f.Observe(b)
	if f.Monomorphic() {
		t.Error("second target = polymorphic")
	}
}

func TestMethodFeedbackShapes(t *testing.T) {
	table := value.NewShapeTable()
	o1 := value.NewObject(table)
	o1.Set("m", value.Int(1))
	o2 := value.NewObject(table)
	o2.Set("z", value.Int(1))
	fn := &value.Function{Name: "m"}
	var f CallFeedback
	f.ObserveMethod(fn, o1.Shape)
	if !f.Monomorphic() || f.RecvShape != o1.Shape {
		t.Error("first observation must record the shape")
	}
	f.ObserveMethod(fn, o2.Shape)
	if f.Monomorphic() {
		t.Error("different receiver shape must be polymorphic")
	}
}

func TestPolicyTiering(t *testing.T) {
	fn := &bytecode.Function{Name: "f"}
	p := New(fn)
	pol := DefaultPolicy()
	if got := pol.TierFor(p, TierFTL); got != TierInterp {
		t.Errorf("cold function tier = %v", got)
	}
	p.InvocationCount = pol.BaselineThreshold
	if got := pol.TierFor(p, TierFTL); got != TierBaseline {
		t.Errorf("tier = %v, want Baseline", got)
	}
	p.InvocationCount = pol.FTLThreshold
	if got := pol.TierFor(p, TierFTL); got != TierFTL {
		t.Errorf("tier = %v, want FTL", got)
	}
	// Tier cap.
	if got := pol.TierFor(p, TierDFG); got != TierDFG {
		t.Errorf("capped tier = %v, want DFG", got)
	}
	// Deopt blocklist.
	p.Deopts = pol.MaxDeopts
	if got := pol.TierFor(p, TierFTL); got != TierBaseline {
		t.Errorf("blocklisted tier = %v, want Baseline", got)
	}
}

func TestBackEdgesDriveTierUp(t *testing.T) {
	fn := &bytecode.Function{Name: "f"}
	p := New(fn)
	pol := DefaultPolicy()
	p.InvocationCount = 1
	p.BackEdgeCount = pol.FTLThreshold * 16
	if got := pol.TierFor(p, TierFTL); got != TierFTL {
		t.Errorf("loop-heavy function tier = %v, want FTL", got)
	}
}

func TestClosurePinning(t *testing.T) {
	fn := &bytecode.Function{Name: "f", UsesClosure: true}
	p := New(fn)
	pol := DefaultPolicy()
	p.InvocationCount = pol.FTLThreshold * 10
	if got := pol.TierFor(p, TierFTL); got != TierBaseline {
		t.Errorf("closure user tier = %v, want Baseline", got)
	}
}

func TestTierNames(t *testing.T) {
	names := map[Tier]string{
		TierInterp: "Interpreter", TierBaseline: "Baseline",
		TierDFG: "DFG", TierFTL: "FTL",
	}
	for tier, want := range names {
		if tier.String() != want {
			t.Errorf("%d.String() = %q", tier, tier.String())
		}
	}
}
