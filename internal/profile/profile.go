// Package profile holds the runtime feedback the Baseline tier gathers and
// the speculative tiers consume: per-site type feedback, inline caches, and
// the invocation counters that drive tier-up (paper §II-A: "advanced JIT
// compilers perform extensive profiling to detect the common case").
package profile

import (
	"nomap/internal/bytecode"
	"nomap/internal/value"
)

// Tier identifies a compiler tier (paper Figure 2).
type Tier uint8

const (
	TierInterp Tier = iota
	TierBaseline
	TierDFG
	TierFTL
)

// String returns the JavaScriptCore name of the tier.
func (t Tier) String() string {
	switch t {
	case TierInterp:
		return "Interpreter"
	case TierBaseline:
		return "Baseline"
	case TierDFG:
		return "DFG"
	case TierFTL:
		return "FTL"
	}
	return "Tier(?)"
}

// ArithFeedback records the operand representations seen at an arithmetic or
// comparison bytecode site.
type ArithFeedback struct {
	SawInt32  bool
	SawDouble bool
	SawString bool
	SawOther  bool
	// SawOverflow records that the int32 fast path overflowed here (the
	// result escaped to a double although both operands were int32). The
	// speculative tiers then compile the site with double arithmetic
	// instead of deopt-looping on the overflow check — JavaScriptCore's
	// exit-site profiling does the same.
	SawOverflow bool
	Count       int64
}

// Observe merges one executed operand pair into the feedback.
func (f *ArithFeedback) Observe(a, b value.Value) {
	f.observeOne(a)
	f.observeOne(b)
	f.Count++
}

func (f *ArithFeedback) observeOne(v value.Value) {
	switch v.Kind() {
	case value.KindInt32:
		f.SawInt32 = true
	case value.KindDouble:
		f.SawDouble = true
	case value.KindString:
		f.SawString = true
	default:
		f.SawOther = true
	}
}

// IntOnly reports that both operands were always int32 — the precondition
// for the FTL tier to emit overflow-checked integer arithmetic. Sites whose
// fast path has overflowed are excluded: they compile to double arithmetic.
func (f *ArithFeedback) IntOnly() bool {
	return f.SawInt32 && !f.SawDouble && !f.SawString && !f.SawOther &&
		!f.SawOverflow && f.Count > 0
}

// IntOperands reports int32-only operands regardless of overflow history.
func (f *ArithFeedback) IntOperands() bool {
	return f.SawInt32 && !f.SawDouble && !f.SawString && !f.SawOther && f.Count > 0
}

// NumberOnly reports purely numeric operands (int32 and/or double).
func (f *ArithFeedback) NumberOnly() bool {
	return (f.SawInt32 || f.SawDouble) && !f.SawString && !f.SawOther && f.Count > 0
}

// ElemFeedback records array-access behaviour at a GetElem/SetElem site.
type ElemFeedback struct {
	SawArray    bool
	SawNonArray bool
	SawOOB      bool
	// SawAppend records stores at exactly the array length — the sequential
	// growth pattern. Unlike SawOOB it does not disqualify the fast path:
	// the store op itself elongates the array, so append-heavy sites compile
	// to an unchecked store behind a non-negativity guard. Kept separate
	// because OSR entry makes the distinction load-bearing: a loop that
	// grows an array is now profiled *during* the growth (the interpreter
	// escalates to Baseline mid-run), where the seed only ever profiled the
	// re-run over the already-grown array.
	SawAppend bool
	SawHole   bool
	SawNonInt bool
	Count     int64
}

// Observe merges one executed element access. app flags a store at exactly
// the array length (legal growth, not an out-of-bounds miss).
func (f *ElemFeedback) Observe(obj value.Value, idx value.Value, inBounds, app, hole bool) {
	if obj.IsObject() && obj.Object().IsArray {
		f.SawArray = true
	} else {
		f.SawNonArray = true
	}
	if !idx.IsInt32() {
		f.SawNonInt = true
	}
	if !inBounds {
		if app {
			f.SawAppend = true
		} else {
			f.SawOOB = true
		}
	}
	if hole {
		f.SawHole = true
	}
	f.Count++
}

// FastArray reports the access pattern is int-indexed dense-array-only — the
// precondition for FTL's checked fast-path element access.
func (f *ElemFeedback) FastArray() bool {
	return f.SawArray && !f.SawNonArray && !f.SawNonInt && f.Count > 0
}

// MaxWays bounds the per-site shape histograms: a site that observes more
// distinct receiver shapes than this saturates to megamorphic and the
// speculative tiers stop building dispatch trees for it (paper §V-C: guard
// chains must stay footprint-cheap inside transactions).
const MaxWays = 8

// PropWay is one entry of a property site's receiver-shape histogram: the
// shape observed, the slot offset resolved under it, and — for transitioning
// stores — the shape the receiver becomes.
type PropWay struct {
	Shape  *value.Shape
	Offset int
	// NewShape is non-nil for property-add stores observed under Shape: the
	// post-transition shape. A dispatch tree speculates the transition so a
	// property add inside a transaction upgrades the guard instead of
	// deopting.
	NewShape *value.Shape
	Count    int64
}

// PropIC is the inline cache for a property access site. The scalar fields
// keep the original monomorphic fast path; Ways grows a per-shape histogram
// (first-seen order, at most MaxWays entries) for polymorphic dispatch.
type PropIC struct {
	Shape  *value.Shape
	Offset int
	// Transition caches SetProp sites that add a property: oldShape->NewShape.
	NewShape *value.Shape
	Hits     int64
	Misses   int64
	// Poly is set after the cache has been invalidated repeatedly; the
	// speculative tiers then refuse to emit a monomorphic shape-checked fast
	// path (the polymorphic dispatch tree consults Ways instead).
	Poly         bool
	SawNonObject bool
	// SawArrayLength marks sites that read .length of an array (which
	// bypasses the shape cache and compiles to a checked length load).
	SawArrayLength bool
	// Ways is the receiver-shape histogram in first-seen order.
	Ways []PropWay
	// Mega saturates the site: more than MaxWays distinct shapes were seen
	// and the speculative tiers must use the generic path.
	Mega bool
}

// Monomorphic reports the site always saw one shape on an object receiver.
func (ic *PropIC) Monomorphic() bool {
	return ic.Shape != nil && !ic.Poly && !ic.SawNonObject
}

// ObserveWay merges one executed property access into the shape histogram.
// newShape is non-nil for a property-add store (the post-transition shape).
func (ic *PropIC) ObserveWay(shape *value.Shape, offset int, newShape *value.Shape) {
	if shape == nil || ic.Mega {
		return
	}
	for i := range ic.Ways {
		w := &ic.Ways[i]
		if w.Shape == shape {
			w.Count++
			// A site can first replace in place and later add under the same
			// shape (or vice versa); remember the transition when seen.
			if newShape != nil && w.NewShape == nil {
				w.NewShape = newShape
				w.Offset = offset
			}
			return
		}
	}
	if len(ic.Ways) >= MaxWays {
		ic.Mega = true
		return
	}
	ic.Ways = append(ic.Ways, PropWay{Shape: shape, Offset: offset, NewShape: newShape, Count: 1})
}

// CallWay is one entry of a call site's callee histogram: the target
// observed and, for method calls, the receiver shape it was loaded from.
type CallWay struct {
	Target *value.Function
	Recv   *value.Shape
	Count  int64
}

// CallFeedback records the callee observed at a call site. For method calls
// it also records the receiver shape, enabling the FTL tier to emit a
// shape-checked method load plus a callee check. The scalar fields keep the
// monomorphic fast path; Ways grows a per-callee histogram (first-seen
// order, at most MaxWays entries) for polymorphic dispatch.
type CallFeedback struct {
	Target    *value.Function
	RecvShape *value.Shape
	Poly      bool
	Count     int64
	// Ways is the callee histogram in first-seen order.
	Ways []CallWay
	// Mega saturates the site: more than MaxWays distinct callees (or
	// receiver shapes) were seen and the tiers must use the generic call.
	Mega bool
}

// observeWay merges one executed call into the callee histogram. recv is the
// receiver shape for method calls, nil for plain calls.
func (f *CallFeedback) observeWay(fn *value.Function, recv *value.Shape) {
	if fn == nil || f.Mega {
		return
	}
	for i := range f.Ways {
		w := &f.Ways[i]
		if w.Target == fn && w.Recv == recv {
			w.Count++
			return
		}
	}
	if len(f.Ways) >= MaxWays {
		f.Mega = true
		return
	}
	f.Ways = append(f.Ways, CallWay{Target: fn, Recv: recv, Count: 1})
}

// Observe merges one executed call.
func (f *CallFeedback) Observe(fn *value.Function) {
	if f.Target == nil {
		f.Target = fn
	} else if f.Target != fn {
		f.Poly = true
	}
	f.Count++
	f.observeWay(fn, nil)
}

// ObserveMethod merges one executed method call with its receiver shape.
func (f *CallFeedback) ObserveMethod(fn *value.Function, shape *value.Shape) {
	if f.Target == nil {
		f.Target = fn
	} else if f.Target != fn {
		f.Poly = true
	}
	f.Count++
	if f.RecvShape == nil {
		f.RecvShape = shape
	} else if f.RecvShape != shape {
		f.Poly = true
	}
	f.observeWay(fn, shape)
}

// Monomorphic reports a single callee was ever observed.
func (f *CallFeedback) Monomorphic() bool { return f.Target != nil && !f.Poly && f.Count > 0 }

// FunctionProfile aggregates all feedback for one bytecode function.
type FunctionProfile struct {
	Fn *bytecode.Function

	InvocationCount int64
	BackEdgeCount   int64

	Arith []ArithFeedback // indexed by pc
	Elem  []ElemFeedback  // indexed by pc
	Calls []CallFeedback  // indexed by pc
	ICs   []PropIC        // indexed by IC slot

	// Deopts counts OSR exits from speculative code of this function, used
	// to blocklist functions that repeatedly misspeculate.
	Deopts int64

	// JITUnsupported marks functions the speculative tiers declined to
	// compile; they stay in Baseline permanently. Only deterministic
	// unsupported-function errors (ir.UnsupportedError) set it directly;
	// transient compile errors accumulate in CompileFailures first.
	JITUnsupported bool

	// CompileFailures counts transient (non-deterministic) compile errors.
	// The function is pinned to Baseline only after
	// MaxTransientCompileFailures of them, so one bad compile cannot
	// permanently disable the speculative tiers.
	CompileFailures int64
}

// MaxTransientCompileFailures is the number of transient compile errors after
// which a function is treated as uncompilable.
const MaxTransientCompileFailures = 8

// New allocates a profile sized for fn.
func New(fn *bytecode.Function) *FunctionProfile {
	return &FunctionProfile{
		Fn:    fn,
		Arith: make([]ArithFeedback, len(fn.Code)),
		Elem:  make([]ElemFeedback, len(fn.Code)),
		Calls: make([]CallFeedback, len(fn.Code)),
		ICs:   make([]PropIC, fn.NumICs),
	}
}

// Policy sets the tier-up thresholds in weighted execution counts.
type Policy struct {
	BaselineThreshold int64
	DFGThreshold      int64
	FTLThreshold      int64
	// MaxDeopts disables speculative tiers for a function after this many
	// deoptimizations (JSC's "too many exits" heuristic).
	MaxDeopts int64
}

// DefaultPolicy matches the ratios used by the evaluation harness: functions
// reach FTL quickly enough that steady state dominates a measured run.
func DefaultPolicy() Policy {
	return Policy{
		BaselineThreshold: 4,
		DFGThreshold:      50,
		FTLThreshold:      500,
		MaxDeopts:         16,
	}
}

// AddBackEdges folds a back-edge delta carried across a tier transfer (a
// frame.Frame handed between tiers) into the loop-trip count. Every tier
// counts the same bytecode back edges — the interpreter and Baseline at each
// backward unconditional jump, the machine at each BackEdge-flagged block —
// so the count is tier-independent: a run that bounces between tiers
// mid-loop reports the same BackEdgeCount as a pure-interpreter run.
func (p *FunctionProfile) AddBackEdges(n int64) { p.BackEdgeCount += n }

// weightedCount folds loop back edges into the tier-up decision so
// loop-heavy functions promote even when rarely re-invoked.
func (p *FunctionProfile) weightedCount() int64 {
	return p.InvocationCount + p.BackEdgeCount/16
}

// TierFor returns the tier a function at this profile level should run in,
// given the policy and the configured maximum tier.
func (pol Policy) TierFor(p *FunctionProfile, maxTier Tier) Tier {
	c := p.weightedCount()
	t := TierInterp
	switch {
	case c >= pol.FTLThreshold && p.Deopts < pol.MaxDeopts:
		t = TierFTL
	case c >= pol.DFGThreshold && p.Deopts < pol.MaxDeopts:
		t = TierDFG
	case c >= pol.BaselineThreshold:
		t = TierBaseline
	}
	if t > maxTier {
		t = maxTier
	}
	// Functions that use closures are pinned to Baseline (paper-faithful
	// simplification: such functions contribute NoFTL instructions).
	if p.Fn.UsesClosure && t > TierBaseline {
		t = TierBaseline
	}
	return t
}
