package interp

// Dynamic x86-64-equivalent instruction costs for the two bytecode tiers.
//
// The Interpreter pays a dispatch loop (fetch, decode, indirect jump) per
// bytecode op on top of fully generic operand handling. The Baseline tier is
// templated machine code: no dispatch, inline int32 fast paths, monomorphic
// inline caches, but still generic runtime calls off the fast path. The
// values below were calibrated so the tier speedups land in the regime of
// the paper's Table I (Baseline ≈ 2x interpreter, FTL ≈ 10-15x).
const (
	interpDispatchCost = 26 // fetch/decode/dispatch + operand decode
	baselineBaseCost   = 6  // templated code: operand loads, tag checks

	propICHitCost = 5  // shape compare, load at cached offset
	propMissCost  = 32 // runtime call with hash lookup
	elemCost      = 14 // runtime call: type+bounds+hole handling
)

func costMove(baseline bool) int64 { return 1 }

// costArith models the arithmetic paths. Baseline inlines an int32 fast path
// and calls the runtime for anything else; the interpreter always pays
// generic operand handling. The boxed fast path (NaN-boxed registers, raw
// int32 payload arithmetic with no box/unbox round trip) shaves the fat
// representation's load/store traffic off both tiers; DisableBoxing routes
// everything through the unboxed costs, reproducing the seed model.
func costArith(baseline, bothInt, boxed bool) int64 {
	if baseline {
		if bothInt {
			if boxed {
				return 10 // tag check, op, overflow branch, retag — one word
			}
			return 12 // untag, op, overflow branch, retag
		}
		return 24 // runtime call: full ToNumber/concat semantics
	}
	if bothInt && boxed {
		return 16 // generic dispatch, single-word operands
	}
	return 18
}

func costSlowCall(baseline bool) int64 {
	if baseline {
		return 14
	}
	return 14
}

func costCall(baseline bool) int64 {
	if baseline {
		return 18 // argument window setup, callee check, call
	}
	return 26
}

func costReturn(baseline bool) int64 { return 4 }

func costAlloc(baseline bool) int64 { return 28 }

func costElem(baseline bool) int64 {
	if baseline {
		return elemCost
	}
	return elemCost + 6
}

func costGlobal(baseline bool) int64 {
	if baseline {
		return 4 // cached global slot
	}
	return 16
}

func costCell(baseline bool, depth int) int64 { return int64(4 + 2*depth) }
