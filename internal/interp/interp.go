// Package interp executes bytecode for the two lowest tiers: the Interpreter
// (tier 0) and the Baseline "compiler" (tier 1). Both run the same bytecode;
// the Baseline tier adds inline caches, type-feedback recording, and a lower
// per-op instruction cost, modelling the Baseline JIT's templated machine
// code. Both executors run frame.Frame activation records and can start at an
// arbitrary pc with a materialized register file — that is the OSR-exit
// (deoptimization) entry path used by the DFG and FTL tiers (paper §II-B).
// The inverse transfer also originates here: every 64 loop back edges the
// executor offers its live frame to the host's OSREntry hook, which may jump
// into an optimized OSR artifact without returning to the caller.
//
// The register file is NaN-boxed (value.Boxed): int32/double/bool and the
// immediates live in one word, strings and objects go through the isolate's
// handle slab. Arithmetic and compares on two int32 boxes run a dedicated
// fast path on the raw payloads; everything else unboxes to the fat Value
// representation, reuses the generic operator semantics, and reboxes.
package interp

import (
	"fmt"

	"nomap/internal/bytecode"
	"nomap/internal/frame"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Host is the engine facade the executor calls back into for everything that
// crosses function boundaries: calls, construction, builtin method dispatch,
// profiling storage, and measurement.
type Host interface {
	// Shapes returns the VM's shape table.
	Shapes() *value.ShapeTable
	// Globals returns the global object.
	Globals() *value.Object
	// Handles returns the isolate's NaN-box handle slab (string/object
	// indices shared by every tier's register files).
	Handles() *value.Handles
	// Boxing reports whether the boxed fast paths (and their cost model) are
	// enabled; false is the DisableBoxing A/B surface, which routes every op
	// through the generic unbox path at the seed cost model.
	Boxing() bool
	// Call invokes a function value through the tiering machinery.
	Call(fn *value.Function, this value.Value, args []value.Value) (value.Value, error)
	// Construct implements `new fn(args)`.
	Construct(fn *value.Function, args []value.Value) (value.Value, error)
	// InvokeMethod performs recv.name(args), dispatching to own properties
	// or builtin prototypes (strings, arrays, Math, ...).
	InvokeMethod(recv value.Value, name string, args []value.Value) (value.Value, error)
	// MakeClosure wraps a nested bytecode function and its defining
	// environment into a callable value.
	MakeClosure(fn *bytecode.Function, env *value.Environment) value.Value
	// ProfileFor returns the (unique) profile of a bytecode function.
	ProfileFor(fn *bytecode.Function) *profile.FunctionProfile
	// Counters returns the run's measurement sink.
	Counters() *stats.Counters
	// InTransaction reports whether a hardware transaction is active, so
	// cycles executed here are attributed to TMTime (paper Figures 10/11).
	InTransaction() bool
	// OSREntry offers the live frame, stopped at a loop-header pc, for
	// on-stack replacement into a hotter tier. done=true means the host
	// consumed the frame and ran it to completion (res is the function's
	// result); otherwise execution continues here at newTier (which is >=
	// tier: the host may escalate Interpreter to Baseline in place so type
	// feedback accrues before an optimizing OSR compile).
	OSREntry(fr *frame.Frame, tier profile.Tier) (res value.Value, done bool, newTier profile.Tier, err error)
}

// RuntimeError is a JavaScript-level runtime error (TypeError-like).
type RuntimeError struct {
	Msg  string
	Line int32
	Fn   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s (line %d): %s", e.Fn, e.Line, e.Msg)
}

// osrPollMask throttles the OSR-entry poll: the host hook runs once every 64
// loop back edges, and only outside transactions (an OSR transfer would
// invalidate the open transaction's recovery entry).
const osrPollMask = 63

// unboxArgs converts a boxed argument window to the fat representation the
// call boundary uses.
func unboxArgs(hd *value.Handles, rs []value.Boxed) []value.Value {
	out := make([]value.Value, len(rs))
	for i, r := range rs {
		out[i] = hd.Unbox(r)
	}
	return out
}

// Exec runs fr from fr.PC until a return, under the given tier's cost model.
// The activation record is the cross-tier frame.Frame: the same value a
// deopting speculative tier materializes, and the same value OSR entry hands
// back out.
func Exec(h Host, fr *frame.Frame, tier profile.Tier) (value.Value, error) {
	fn := fr.Fn
	code := fn.Code
	regs := fr.Locals
	hd := h.Handles()
	boxedFast := h.Boxing()
	baseline := tier != profile.TierInterp
	prof := h.ProfileFor(fn)
	if fr.BackEdges != 0 {
		// Fold the back-edge delta carried over from the tier that handed
		// the frame to us (machine deopt or abort recovery).
		prof.AddBackEdges(fr.BackEdges)
		fr.BackEdges = 0
	}
	ctrs := h.Counters()
	inTx := h.InTransaction()

	var instrs int64
	flush := func() {
		ctrs.AddInstr(stats.NoFTL, instrs)
		ctrs.AddCycles(instrs, inTx) // lower tiers: IPC 1 model
		if baseline {
			ctrs.BaselineOps += instrs
		} else {
			ctrs.InterpOps += instrs
		}
		instrs = 0
	}
	defer flush()

	errf := func(in bytecode.Instr, format string, args ...any) error {
		return &RuntimeError{Msg: fmt.Sprintf(format, args...), Line: in.Line, Fn: fn.Name}
	}

	for {
		in := code[fr.PC]
		if baseline {
			instrs += baselineBaseCost
		} else {
			instrs += interpDispatchCost
		}
		switch in.Op {
		case bytecode.OpNop:

		case bytecode.OpLoadConst:
			regs[in.A] = hd.Box(fn.Consts[in.B])
			instrs += costMove(baseline)

		case bytecode.OpLoadUndef:
			regs[in.A] = value.BoxedUndefined
			instrs += costMove(baseline)

		case bytecode.OpMove:
			regs[in.A] = regs[in.B]
			instrs += costMove(baseline)

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv,
			bytecode.OpMod, bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor,
			bytecode.OpShl, bytecode.OpShr, bytecode.OpUShr,
			bytecode.OpLess, bytecode.OpLessEq, bytecode.OpGreater,
			bytecode.OpGreaterEq, bytecode.OpEq, bytecode.OpNeq,
			bytecode.OpStrictEq, bytecode.OpStrictNeq:
			ab, bb := regs[in.B], regs[in.C]
			if boxedFast && ab.IsInt32() && bb.IsInt32() {
				if res, ok := intBinFast(in.Op, ab.Int32(), bb.Int32(), baseline, prof, fr.PC); ok {
					regs[in.A] = res
					instrs += costArith(baseline, true, true)
					break
				}
			}
			a, b := hd.Unbox(ab), hd.Unbox(bb)
			if baseline {
				prof.Arith[fr.PC].Observe(a, b)
			}
			res := evalBinary(in.Op, a, b)
			if baseline && !res.IsInt32() {
				// Int32 fast path escaped to double: record the overflow so
				// the speculative tiers compile this site with doubles.
				switch in.Op {
				case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul:
					if a.IsInt32() && b.IsInt32() {
						prof.Arith[fr.PC].SawOverflow = true
					}
				case bytecode.OpUShr:
					prof.Arith[fr.PC].SawOverflow = true
				}
			}
			regs[in.A] = hd.Box(res)
			instrs += costArith(baseline, a.IsInt32() && b.IsInt32(), false)

		case bytecode.OpAddK, bytecode.OpSubK, bytecode.OpMulK:
			// Const-fused arithmetic superinstruction: semantically the
			// loadconst+binop pair it replaced, at one dispatch.
			op := bytecode.OpAdd
			switch in.Op {
			case bytecode.OpSubK:
				op = bytecode.OpSub
			case bytecode.OpMulK:
				op = bytecode.OpMul
			}
			kv := fn.Consts[in.C]
			ab := regs[in.B]
			if boxedFast && ab.IsInt32() && kv.IsInt32() {
				if res, ok := intBinFast(op, ab.Int32(), kv.Int32(), baseline, prof, fr.PC); ok {
					regs[in.A] = res
					instrs += costArith(baseline, true, true) + 1
					break
				}
			}
			a := hd.Unbox(ab)
			if baseline {
				prof.Arith[fr.PC].Observe(a, kv)
			}
			res := evalBinary(op, a, kv)
			if baseline && !res.IsInt32() && a.IsInt32() && kv.IsInt32() {
				prof.Arith[fr.PC].SawOverflow = true
			}
			regs[in.A] = hd.Box(res)
			instrs += costArith(baseline, a.IsInt32() && kv.IsInt32(), false) + 1

		case bytecode.OpIncr:
			// In-place increment superinstruction: ToNumber + add-immediate +
			// store, the five-instruction ++/-- pattern at one dispatch.
			delta := in.B
			x := regs[in.A]
			if boxedFast && x.IsInt32() {
				xi := x.Int32()
				if baseline {
					prof.Arith[fr.PC].Observe(value.Int(xi), value.Int(delta))
				}
				if s, ok := value.AddInt32(xi, delta); ok {
					regs[in.A] = value.BoxInt(s)
				} else {
					if baseline {
						prof.Arith[fr.PC].SawOverflow = true
					}
					regs[in.A] = value.BoxDouble(float64(xi) + float64(delta))
				}
				instrs += costArith(baseline, true, true) + 4
			} else {
				xn := hd.Unbox(x)
				if !xn.IsNumber() {
					xn = value.Number(xn.ToNumber())
					instrs += costSlowCall(baseline)
				}
				if baseline {
					prof.Arith[fr.PC].Observe(xn, value.Int(delta))
				}
				res := value.Add(xn, value.Int(delta))
				if baseline && xn.IsInt32() && !res.IsInt32() {
					prof.Arith[fr.PC].SawOverflow = true
				}
				regs[in.A] = hd.Box(res)
				instrs += costArith(baseline, xn.IsInt32(), false) + 4
			}

		case bytecode.OpCmpJF, bytecode.OpCmpJT, bytecode.OpCmpKJF, bytecode.OpCmpKJT:
			// Compare-and-branch superinstruction (LEJK style): the compare's
			// dead boolean register is gone; the branch consumes the flag.
			cop := bytecode.Op(in.D)
			ab := regs[in.A]
			var bb value.Boxed
			var kv value.Value
			konst := in.Op == bytecode.OpCmpKJF || in.Op == bytecode.OpCmpKJT
			if konst {
				kv = fn.Consts[in.B]
			} else {
				bb = regs[in.B]
			}
			var cond bool
			if boxedFast && ab.IsInt32() && ((konst && kv.IsInt32()) || (!konst && bb.IsInt32())) {
				ri := kv.Int32()
				if !konst {
					ri = bb.Int32()
				}
				if baseline {
					prof.Arith[fr.PC].Observe(value.Int(ab.Int32()), value.Int(ri))
				}
				cond = intCmp(cop, ab.Int32(), ri)
				instrs += costArith(baseline, true, true) + 2
			} else {
				a := hd.Unbox(ab)
				b := kv
				if !konst {
					b = hd.Unbox(bb)
				}
				if baseline {
					prof.Arith[fr.PC].Observe(a, b)
				}
				cond = evalBinary(cop, a, b).Bool()
				instrs += costArith(baseline, a.IsInt32() && b.IsInt32(), false) + 2
			}
			if konst {
				instrs++
			}
			onTrue := in.Op == bytecode.OpCmpJT || in.Op == bytecode.OpCmpKJT
			if cond == onTrue {
				fr.PC = int(in.C)
				continue
			}

		case bytecode.OpNeg:
			b := hd.Unbox(regs[in.B])
			if baseline {
				prof.Arith[fr.PC].Observe(b, b)
			}
			res := value.Neg(b)
			if baseline && b.IsInt32() && !res.IsInt32() {
				prof.Arith[fr.PC].SawOverflow = true
			}
			regs[in.A] = hd.Box(res)
			instrs += costArith(baseline, b.IsInt32(), false)
		case bytecode.OpNot:
			regs[in.A] = value.BoxBool(!hd.ToBoolean(regs[in.B]))
			instrs += costMove(baseline) + 1
		case bytecode.OpBitNot:
			regs[in.A] = hd.Box(value.BitNot(hd.Unbox(regs[in.B])))
			instrs += costArith(baseline, regs[in.B].IsInt32(), false)
		case bytecode.OpTypeof:
			regs[in.A] = hd.BoxStr(hd.Unbox(regs[in.B]).TypeOf())
			instrs += costSlowCall(baseline)
		case bytecode.OpToNumber:
			v := regs[in.B]
			if v.IsNumber() {
				regs[in.A] = v
				instrs += costMove(baseline)
			} else {
				regs[in.A] = hd.Box(value.Number(hd.Unbox(v).ToNumber()))
				instrs += costSlowCall(baseline)
			}

		case bytecode.OpJump:
			if int(in.A) <= fr.PC { // loop back edge
				prof.BackEdgeCount++
				instrs++
				fr.PC = int(in.A)
				if prof.BackEdgeCount&osrPollMask == 0 && !inTx {
					flush()
					res, done, newTier, err := h.OSREntry(fr, tier)
					if err != nil {
						return value.Undefined(), err
					}
					if done {
						return res, nil
					}
					if newTier != tier {
						tier = newTier
						baseline = tier != profile.TierInterp
					}
					inTx = h.InTransaction()
				}
				continue
			}
			fr.PC = int(in.A)
			continue
		case bytecode.OpJumpIfTrue:
			instrs += 2
			if hd.ToBoolean(regs[in.A]) {
				fr.PC = int(in.B)
				continue
			}
		case bytecode.OpJumpIfFalse:
			instrs += 2
			if !hd.ToBoolean(regs[in.A]) {
				fr.PC = int(in.B)
				continue
			}

		case bytecode.OpReturn:
			instrs += costReturn(baseline)
			return hd.Unbox(regs[in.A]), nil

		case bytecode.OpCall:
			callee := hd.Unbox(regs[in.B])
			if !callee.IsCallable() {
				return value.Undefined(), errf(in, "%s is not a function", callee.TypeOf())
			}
			cf := callee.Object().Fn
			if baseline {
				prof.Calls[fr.PC].Observe(cf)
			}
			instrs += costCall(baseline)
			flush()
			res, err := h.Call(cf, value.Undefined(), unboxArgs(hd, regs[in.C:in.C+in.D]))
			if err != nil {
				return value.Undefined(), err
			}
			inTx = h.InTransaction()
			regs[in.A] = hd.Box(res)

		case bytecode.OpCallMethod:
			recv := hd.Unbox(regs[in.B])
			if baseline && recv.IsObject() {
				o := recv.Object()
				if m := o.Get(fn.Names[in.E]); m.IsCallable() {
					prof.Calls[fr.PC].ObserveMethod(m.Object().Fn, o.Shape)
				} else {
					prof.Calls[fr.PC].Poly = true
					prof.Calls[fr.PC].Mega = true
				}
			} else if baseline {
				prof.Calls[fr.PC].Poly = true
				prof.Calls[fr.PC].Mega = true
			}
			instrs += costCall(baseline) + 4
			flush()
			res, err := h.InvokeMethod(recv, fn.Names[in.E], unboxArgs(hd, regs[in.C:in.C+in.D]))
			if err != nil {
				return value.Undefined(), err
			}
			inTx = h.InTransaction()
			regs[in.A] = hd.Box(res)

		case bytecode.OpNew:
			callee := hd.Unbox(regs[in.B])
			if !callee.IsCallable() {
				return value.Undefined(), errf(in, "%s is not a constructor", callee.TypeOf())
			}
			instrs += costCall(baseline) + 6
			flush()
			res, err := h.Construct(callee.Object().Fn, unboxArgs(hd, regs[in.C:in.C+in.D]))
			if err != nil {
				return value.Undefined(), err
			}
			inTx = h.InTransaction()
			regs[in.A] = hd.Box(res)

		case bytecode.OpNewObject:
			regs[in.A] = hd.BoxObject(value.NewObject(h.Shapes()))
			instrs += costAlloc(baseline)
		case bytecode.OpNewArray:
			regs[in.A] = hd.BoxObject(value.NewArray(h.Shapes(), int(in.B)))
			instrs += costAlloc(baseline)

		case bytecode.OpGetProp:
			obj := hd.Unbox(regs[in.B])
			v, cost, err := getProp(h, prof, baseline, obj, fn.Names[in.C], int(in.D))
			if err != nil {
				return value.Undefined(), errf(in, "%v", err)
			}
			regs[in.A] = hd.Box(v)
			instrs += cost

		case bytecode.OpSetProp:
			obj := hd.Unbox(regs[in.A])
			cost, err := setProp(h, prof, baseline, obj, fn.Names[in.B], hd.Unbox(regs[in.C]), int(in.D))
			if err != nil {
				return value.Undefined(), errf(in, "%v", err)
			}
			instrs += cost

		case bytecode.OpGetElem:
			v, cost, err := getElem(prof, baseline, hd.Unbox(regs[in.B]), hd.Unbox(regs[in.C]), fr.PC)
			if err != nil {
				return value.Undefined(), errf(in, "%v", err)
			}
			regs[in.A] = hd.Box(v)
			instrs += cost

		case bytecode.OpSetElem:
			cost, err := setElem(prof, baseline, hd.Unbox(regs[in.A]), hd.Unbox(regs[in.B]), hd.Unbox(regs[in.C]), fr.PC)
			if err != nil {
				return value.Undefined(), errf(in, "%v", err)
			}
			instrs += cost

		case bytecode.OpSetElemI:
			obj := hd.Unbox(regs[in.A])
			if o := obj.Object(); o != nil && o.IsArray {
				o.SetElement(int(in.B), hd.Unbox(regs[in.C]))
			} else {
				return value.Undefined(), errf(in, "array literal target is not an array")
			}
			instrs += costElem(baseline)

		case bytecode.OpGetGlobal:
			g := h.Globals()
			name := fn.Names[in.B]
			if !g.Has(name) {
				return value.Undefined(), errf(in, "%s is not defined", name)
			}
			regs[in.A] = hd.Box(g.Get(name))
			instrs += costGlobal(baseline)

		case bytecode.OpSetGlobal:
			h.Globals().Set(fn.Names[in.A], hd.Unbox(regs[in.B]))
			instrs += costGlobal(baseline)

		case bytecode.OpGetCell:
			regs[in.A] = hd.Box(fr.Env.At(int(in.B), int(in.C)).V)
			instrs += costCell(baseline, int(in.B))
		case bytecode.OpSetCell:
			fr.Env.At(int(in.A), int(in.B)).V = hd.Unbox(regs[in.C])
			instrs += costCell(baseline, int(in.A))

		case bytecode.OpMakeClosure:
			regs[in.A] = hd.Box(h.MakeClosure(fn.Funcs[in.B], fr.Env))
			instrs += costAlloc(baseline) + 4

		default:
			return value.Undefined(), errf(in, "unknown opcode %v", in.Op)
		}
		fr.PC++
	}
}

// intBinFast evaluates a binary op whose operands are both boxed int32s
// without unboxing, including baseline type feedback. ok=false means the op
// has no dedicated int32 path (Div/Mod keep their generic corner handling)
// and nothing was recorded.
func intBinFast(op bytecode.Op, x, y int32, baseline bool, prof *profile.FunctionProfile, pc int) (value.Boxed, bool) {
	switch op {
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		var r int32
		var fits bool
		var wide float64
		switch op {
		case bytecode.OpAdd:
			r, fits = value.AddInt32(x, y)
			wide = float64(x) + float64(y)
		case bytecode.OpSub:
			r, fits = value.SubInt32(x, y)
			wide = float64(x) - float64(y)
		default:
			r, fits = value.MulInt32(x, y)
			wide = float64(x) * float64(y)
		}
		if fits {
			return value.BoxInt(r), true
		}
		if baseline {
			prof.Arith[pc].SawOverflow = true
		}
		return value.BoxDouble(wide), true
	case bytecode.OpBitAnd:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		return value.BoxInt(x & y), true
	case bytecode.OpBitOr:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		return value.BoxInt(x | y), true
	case bytecode.OpBitXor:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		return value.BoxInt(x ^ y), true
	case bytecode.OpShl:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		return value.BoxInt(x << (uint32(y) & 31)), true
	case bytecode.OpShr:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		return value.BoxInt(x >> (uint32(y) & 31)), true
	case bytecode.OpUShr:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		u := uint32(x) >> (uint32(y) & 31)
		res := value.BoxNumber(float64(u))
		if baseline && !res.IsInt32() {
			prof.Arith[pc].SawOverflow = true
		}
		return res, true
	case bytecode.OpLess, bytecode.OpLessEq, bytecode.OpGreater, bytecode.OpGreaterEq,
		bytecode.OpEq, bytecode.OpNeq, bytecode.OpStrictEq, bytecode.OpStrictNeq:
		if baseline {
			prof.Arith[pc].Observe(value.Int(x), value.Int(y))
		}
		return value.BoxBool(intCmp(op, x, y)), true
	}
	return 0, false
}

// intCmp evaluates a comparison opcode on two int32 payloads.
func intCmp(op bytecode.Op, x, y int32) bool {
	switch op {
	case bytecode.OpLess:
		return x < y
	case bytecode.OpLessEq:
		return x <= y
	case bytecode.OpGreater:
		return x > y
	case bytecode.OpGreaterEq:
		return x >= y
	case bytecode.OpEq, bytecode.OpStrictEq:
		return x == y
	case bytecode.OpNeq, bytecode.OpStrictNeq:
		return x != y
	}
	panic("intCmp: not a comparison op")
}

func evalBinary(op bytecode.Op, a, b value.Value) value.Value {
	switch op {
	case bytecode.OpAdd:
		return value.Add(a, b)
	case bytecode.OpSub:
		return value.Sub(a, b)
	case bytecode.OpMul:
		return value.Mul(a, b)
	case bytecode.OpDiv:
		return value.Div(a, b)
	case bytecode.OpMod:
		return value.Mod(a, b)
	case bytecode.OpBitAnd:
		return value.BitAnd(a, b)
	case bytecode.OpBitOr:
		return value.BitOr(a, b)
	case bytecode.OpBitXor:
		return value.BitXor(a, b)
	case bytecode.OpShl:
		return value.Shl(a, b)
	case bytecode.OpShr:
		return value.Shr(a, b)
	case bytecode.OpUShr:
		return value.UShr(a, b)
	case bytecode.OpLess:
		return value.Compare(a, b, "<")
	case bytecode.OpLessEq:
		return value.Compare(a, b, "<=")
	case bytecode.OpGreater:
		return value.Compare(a, b, ">")
	case bytecode.OpGreaterEq:
		return value.Compare(a, b, ">=")
	case bytecode.OpEq:
		return value.Boolean(value.LooseEquals(a, b))
	case bytecode.OpNeq:
		return value.Boolean(!value.LooseEquals(a, b))
	case bytecode.OpStrictEq:
		return value.Boolean(value.StrictEquals(a, b))
	case bytecode.OpStrictNeq:
		return value.Boolean(!value.StrictEquals(a, b))
	}
	panic("evalBinary: not a binary op")
}

// getProp implements property load with the Baseline tier's monomorphic
// inline cache. Cost reflects IC hit (shape compare + slot load) vs. miss
// (full hash lookup via a runtime call).
func getProp(h Host, prof *profile.FunctionProfile, baseline bool, obj value.Value, name string, icSlot int) (value.Value, int64, error) {
	switch obj.Kind() {
	case value.KindObject:
		o := obj.Object()
		if baseline {
			ic := &prof.ICs[icSlot]
			if o.IsArray && name == "length" {
				ic.SawArrayLength = true
				return value.Int(int32(o.Length)), propICHitCost, nil
			}
			if ic.Shape == o.Shape {
				ic.Hits++
				ic.ObserveWay(o.Shape, ic.Offset, nil)
				return o.GetSlot(ic.Offset), propICHitCost, nil
			}
			off := o.OffsetOf(name)
			if off >= 0 {
				if ic.Shape != nil {
					ic.Poly = true
				}
				ic.Shape, ic.Offset = o.Shape, off
				ic.ObserveWay(o.Shape, off, nil)
			} else {
				// The property is absent on this receiver: no slot to
				// dispatch to, so the site saturates to the generic path.
				ic.Mega = true
			}
			ic.Misses++
			return o.Get(name), propMissCost, nil
		}
		return o.Get(name), propMissCost, nil
	case value.KindString:
		if name == "length" {
			return value.Int(int32(len(obj.StringVal()))), propICHitCost + 2, nil
		}
		return value.Undefined(), propMissCost, nil
	case value.KindUndefined, value.KindNull:
		return value.Undefined(), 0, fmt.Errorf("cannot read property %q of %s", name, obj.TypeOf())
	default:
		if baseline {
			prof.ICs[icSlot].SawNonObject = true
		}
		return value.Undefined(), propMissCost, nil
	}
}

func setProp(h Host, prof *profile.FunctionProfile, baseline bool, obj value.Value, name string, v value.Value, icSlot int) (int64, error) {
	o := obj.Object()
	if o == nil {
		return 0, fmt.Errorf("cannot set property %q of %s", name, obj.TypeOf())
	}
	if baseline {
		ic := &prof.ICs[icSlot]
		if !(o.IsArray && name == "length") {
			if ic.Shape == o.Shape && ic.NewShape == nil {
				// Replace-in-place hit.
				if off := o.OffsetOf(name); off == ic.Offset && off >= 0 {
					ic.Hits++
					ic.ObserveWay(o.Shape, off, nil)
					o.SetSlot(off, v)
					return propICHitCost, nil
				}
			}
			if ic.Shape == o.Shape && ic.NewShape != nil {
				// Cached transition (property add) hit.
				ic.Hits++
				before := o.Shape
				o.Set(name, v)
				ic.ObserveWay(before, o.OffsetOf(name), o.Shape)
				return propICHitCost + 2, nil
			}
			before := o.Shape
			off := o.OffsetOf(name)
			o.Set(name, v)
			if ic.Shape != nil && ic.Shape != before {
				ic.Poly = true
			}
			ic.Shape = before
			if off >= 0 {
				ic.Offset = off
				ic.NewShape = nil
				ic.ObserveWay(before, off, nil)
			} else {
				ic.NewShape = o.Shape
				ic.ObserveWay(before, o.OffsetOf(name), o.Shape)
			}
			ic.Misses++
			return propMissCost, nil
		}
	}
	o.Set(name, v)
	return propMissCost, nil
}

// getElem implements the generic loadArrayValue runtime call: in-bounds
// array reads return the element, holes and out-of-bounds return undefined,
// non-array objects fall back to property lookup (paper §IV-B).
func getElem(prof *profile.FunctionProfile, baseline bool, obj, idx value.Value, pc int) (value.Value, int64, error) {
	o := obj.Object()
	if o == nil {
		if obj.IsString() {
			i := int(idx.ToNumber())
			s := obj.StringVal()
			if idx.IsNumber() && float64(i) == idx.ToNumber() && i >= 0 && i < len(s) {
				return value.Str(s[i : i+1]), elemCost + 4, nil
			}
			return value.Undefined(), elemCost + 4, nil
		}
		return value.Undefined(), 0, fmt.Errorf("cannot index %s", obj.TypeOf())
	}
	if o.IsArray && idx.IsNumber() {
		fi := idx.ToNumber()
		i := int(fi)
		if float64(i) == fi {
			inBounds := o.InBounds(i)
			hole := inBounds && o.HasHoleAt(i)
			if baseline {
				prof.Elem[pc].Observe(obj, idx, inBounds, false, hole)
			}
			return o.GetElement(i), elemCost, nil
		}
	}
	if baseline {
		prof.Elem[pc].Observe(obj, idx, false, false, false)
	}
	return o.Get(idx.ToStringValue()), elemCost + propMissCost, nil
}

func setElem(prof *profile.FunctionProfile, baseline bool, obj, idx, v value.Value, pc int) (int64, error) {
	o := obj.Object()
	if o == nil {
		return 0, fmt.Errorf("cannot index-assign %s", obj.TypeOf())
	}
	if o.IsArray && idx.IsNumber() {
		fi := idx.ToNumber()
		i := int(fi)
		if float64(i) == fi && i >= 0 {
			inBounds := o.InBounds(i)
			if baseline {
				prof.Elem[pc].Observe(obj, idx, inBounds, !inBounds && i == o.ElementCount(), false)
			}
			o.SetElement(i, v)
			return elemCost, nil
		}
	}
	if baseline {
		prof.Elem[pc].Observe(obj, idx, false, false, false)
	}
	o.Set(idx.ToStringValue(), v)
	return elemCost + propMissCost, nil
}
