package interp_test

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/frame"
	"nomap/internal/interp"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// warmProfile runs src to completion under Baseline-max tiering and returns
// the profile of the named global function.
func warmProfile(t *testing.T, src, fname string) (*vm.VM, *profile.FunctionProfile) {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	v := vm.New(cfg)
	if _, err := v.Run(src); err != nil {
		t.Fatal(err)
	}
	fv := v.Globals().Get(fname)
	if !fv.IsCallable() {
		t.Fatalf("%q is not a function", fname)
	}
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	return v, v.ProfileFor(bcFn)
}

func TestArithFeedbackIntOnly(t *testing.T) {
	_, p := warmProfile(t, `
function f(a, b) { return a + b; }
for (var i = 0; i < 50; i++) f(i, i + 1);
`, "f")
	found := false
	for pc := range p.Arith {
		fb := &p.Arith[pc]
		if fb.Count > 0 && fb.IntOnly() {
			found = true
		}
		if fb.SawString || fb.SawDouble {
			t.Errorf("pc %d: unexpected non-int feedback %+v", pc, fb)
		}
	}
	if !found {
		t.Error("no int-only arithmetic feedback recorded")
	}
}

func TestArithFeedbackOverflow(t *testing.T) {
	_, p := warmProfile(t, `
function f() { var x = 2000000000; return x + x; }
for (var i = 0; i < 50; i++) f();
`, "f")
	saw := false
	for pc := range p.Arith {
		if p.Arith[pc].SawOverflow {
			saw = true
		}
	}
	if !saw {
		t.Error("overflowing add must record SawOverflow")
	}
}

func TestArithFeedbackMixed(t *testing.T) {
	_, p := warmProfile(t, `
function f(a, b) { return a + b; }
for (var i = 0; i < 25; i++) f(i, 0.5);
for (var j = 0; j < 25; j++) f("s", j);
`, "f")
	ok := false
	for pc := range p.Arith {
		fb := &p.Arith[pc]
		if fb.Count > 0 && fb.SawDouble && fb.SawString {
			ok = true
			if fb.IntOnly() || fb.NumberOnly() {
				t.Error("mixed feedback must disable numeric speculation")
			}
		}
	}
	if !ok {
		t.Error("expected mixed-type feedback")
	}
}

func TestElemFeedback(t *testing.T) {
	_, p := warmProfile(t, `
var a = [1, 2, 3, 4];
function f(i) { return a[i]; }
for (var k = 0; k < 50; k++) f(k % 4);
`, "f")
	ok := false
	for pc := range p.Elem {
		fb := &p.Elem[pc]
		if fb.Count > 0 {
			ok = true
			if !fb.FastArray() {
				t.Errorf("in-bounds int access should be FastArray: %+v", fb)
			}
			if fb.SawOOB || fb.SawHole {
				t.Errorf("unexpected OOB/hole: %+v", fb)
			}
		}
	}
	if !ok {
		t.Error("no element feedback recorded")
	}
}

func TestElemFeedbackOOBAndHoles(t *testing.T) {
	_, p := warmProfile(t, `
var a = [];
a[0] = 1; a[5] = 2;
function f(i) { return a[i]; }
for (var k = 0; k < 50; k++) f(k % 10);
`, "f")
	sawOOB, sawHole := false, false
	for pc := range p.Elem {
		fb := &p.Elem[pc]
		if fb.SawOOB {
			sawOOB = true
		}
		if fb.SawHole {
			sawHole = true
		}
	}
	if !sawOOB || !sawHole {
		t.Errorf("expected OOB and hole feedback: oob=%v hole=%v", sawOOB, sawHole)
	}
}

func TestPropICMonomorphic(t *testing.T) {
	_, p := warmProfile(t, `
var o = {x: 1, y: 2};
function f() { return o.x + o.y; }
for (var k = 0; k < 50; k++) f();
`, "f")
	mono := 0
	for i := range p.ICs {
		ic := &p.ICs[i]
		if ic.Monomorphic() {
			mono++
			if ic.Hits == 0 {
				t.Error("monomorphic IC should have hits")
			}
		}
	}
	if mono < 2 {
		t.Errorf("expected >=2 monomorphic ICs (x and y), got %d", mono)
	}
}

func TestPropICPolymorphic(t *testing.T) {
	_, p := warmProfile(t, `
var o1 = {x: 1};
var o2 = {y: 9, x: 2};
function f(o) { return o.x; }
for (var k = 0; k < 50; k++) f(k % 2 ? o1 : o2);
`, "f")
	poly := false
	for i := range p.ICs {
		if p.ICs[i].Poly {
			poly = true
		}
	}
	if !poly {
		t.Error("two shapes at one site must mark the IC polymorphic")
	}
}

func TestCallFeedbackMonoAndPoly(t *testing.T) {
	_, p := warmProfile(t, `
function a(x) { return x; }
function b(x) { return -x; }
function mono(x) { return a(x); }
function poly(x, pick) { var f = pick ? a : b; return f(x); }
for (var k = 0; k < 50; k++) { mono(k); }
`, "mono")
	ok := false
	for pc := range p.Calls {
		fb := &p.Calls[pc]
		if fb.Count > 0 && fb.Monomorphic() {
			ok = true
		}
	}
	if !ok {
		t.Error("expected monomorphic call feedback")
	}
}

func TestMethodCallFeedbackRecordsShape(t *testing.T) {
	_, p := warmProfile(t, `
var obj = {val: 2, double: function(x) { return x * 2; }};
function f(x) { return obj.double(x); }
for (var k = 0; k < 50; k++) f(k);
`, "f")
	ok := false
	for pc := range p.Calls {
		fb := &p.Calls[pc]
		if fb.Count > 0 && fb.RecvShape != nil && fb.Target != nil {
			ok = true
		}
	}
	if !ok {
		t.Error("method call must record receiver shape and target")
	}
}

// Deopt-entry execution: the Baseline executor must be able to start at an
// arbitrary pc with a materialized register file — the OSR-exit path.
func TestExecFromArbitraryPC(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	v := vm.New(cfg)
	if _, err := v.Run(`function f(a, b) { var c = a + b; return c * 2; }`); err != nil {
		t.Fatal(err)
	}
	bcFn := v.Globals().Get("f").Object().Fn.Code.(*bytecode.Function)
	// Find the pc of the multiply and craft a frame state just before it.
	// The peephole pass fuses `c * 2` into a const-fused OpMulK, so accept
	// either shape.
	mulPC := -1
	for pc, in := range bcFn.Code {
		if in.Op == bytecode.OpMul || in.Op == bytecode.OpMulK {
			mulPC = pc
		}
	}
	if mulPC < 0 {
		t.Fatal("no multiply found")
	}
	fr := &frame.Frame{
		Fn:     bcFn,
		Locals: make([]value.Boxed, bcFn.NumRegs),
		PC:     mulPC,
	}
	for i := range fr.Locals {
		fr.Locals[i] = value.BoxedUndefined
	}
	// Emulate precisely: read the instruction's operands. The fused form
	// carries its constant 2 in the pool; the unfused form reads it from a
	// temp register.
	in := bcFn.Code[mulPC]
	fr.Locals[in.B] = value.BoxInt(21)
	if in.Op == bytecode.OpMul {
		fr.Locals[in.C] = value.BoxInt(2)
	}
	res, err := interp.Exec(v, fr, profile.TierBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if res.ToNumber() != 42 {
		t.Errorf("resumed execution = %v, want 42", res)
	}
}

func TestRuntimeErrorHasContext(t *testing.T) {
	v := vm.New(vm.DefaultConfig())
	_, err := v.Run(`
function g() { var x = null; return x.boom; }
g();
`)
	if err == nil {
		t.Fatal("expected error")
	}
	re, ok := err.(*interp.RuntimeError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if re.Fn != "g" || re.Line == 0 {
		t.Errorf("error context: fn=%q line=%d", re.Fn, re.Line)
	}
}
