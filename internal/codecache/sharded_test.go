// Sharded-cache invariants: serial equivalence with the unsharded
// configuration, cross-shard accounting under concurrent eviction pressure,
// and the contention A/B that justifies sharding at all.
package codecache_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nomap/internal/codecache"
	"nomap/internal/ir"
	"nomap/internal/vm"
)

// TestShardedSerialMatchesUnsharded: with no concurrency and no eviction
// pressure, shard count is unobservable — the same request sequence must
// produce identical hit/miss totals, fill counts, and sizes at Shards=8 and
// Shards=1. This is what makes Shards=1 a valid A/B control.
func TestShardedSerialMatchesUnsharded(t *testing.T) {
	progs := codecache.NewPrograms()
	realm := vm.New(vm.DefaultConfig())
	run := func(c *codecache.Cache) codecache.Stats {
		for pass := 0; pass < 3; pass++ {
			for fp := uint64(1); fp <= 32; fp++ {
				if _, _, err := c.Compile(testKey(t, progs, fp), realm, nil, trivialFill); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c.Stats()
	}
	sharded := codecache.NewCacheSharded(256, 8)
	single := codecache.NewCacheSharded(256, 1)
	ss, us := run(sharded), run(single)
	if ss != us {
		t.Errorf("stats diverge: sharded %+v, unsharded %+v", ss, us)
	}
	if sl, ul := sharded.Len(), single.Len(); sl != ul {
		t.Errorf("Len diverges: sharded %d, unsharded %d", sl, ul)
	}
	if ss.Misses != 32 || ss.Hits != 64 {
		t.Errorf("unexpected totals (misses %d, hits %d), want 32 fills + 64 hits", ss.Misses, ss.Hits)
	}
}

// TestShardedTortureAccounting hammers a small sharded cache from many
// goroutines with a keyspace larger than capacity, so evictions, re-fills,
// and single-flight waits all happen concurrently across shards. Run under
// -race this is the memory-safety check; the assertions are the accounting
// invariants: single flight per key, per-shard books balancing
// (misses − evictions = live entries), and shard totals summing to the
// aggregate view.
func TestShardedTortureAccounting(t *testing.T) {
	const (
		capacity   = 32
		keyspace   = 96
		goroutines = 16
		iters      = 300
	)
	c := codecache.NewCacheSharded(capacity, 4)
	progs := codecache.NewPrograms()
	realm := vm.New(vm.DefaultConfig())
	keys := make([]codecache.Key, keyspace)
	for i := range keys {
		keys[i] = testKey(t, progs, uint64(i+1))
	}

	// One gauge per key: a second concurrent fill for the same key is a
	// single-flight violation.
	gauges := make([]atomic.Int32, keyspace)
	var violations atomic.Int32
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := uint64(g)*2654435761 + 1
			for i := 0; i < iters; i++ {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				ki := int(r % keyspace)
				calls.Add(1)
				_, _, err := c.Compile(keys[ki], realm, nil, func() (*ir.Func, error) {
					if gauges[ki].Add(1) > 1 {
						violations.Add(1)
					}
					if i%64 == 0 {
						time.Sleep(time.Millisecond) // widen the race window
					}
					gauges[ki].Add(-1)
					return ir.NewFunc("t", nil), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if n := violations.Load(); n > 0 {
		t.Errorf("%d concurrent fills for one key (single flight broken)", n)
	}
	// Waits is supplementary (a waiter loops and then lands on a terminal
	// outcome); the terminal outcomes must account for every call exactly.
	agg := c.Stats()
	if got := agg.Hits + agg.Misses + agg.Uncacheable + agg.BindFails; got != calls.Load() {
		t.Errorf("hits+misses+uncacheable+bindfails = %d, want %d calls", got, calls.Load())
	}
	if c.Len() > capacity {
		t.Errorf("Len = %d exceeds capacity %d", c.Len(), capacity)
	}
	var sum codecache.Stats
	lens := c.ShardLens()
	lenSum := 0
	for i, st := range c.ShardStats() {
		if live := st.Misses - st.Evictions; live != int64(lens[i]) {
			t.Errorf("shard %d books don't balance: %d fills - %d evictions != %d live",
				i, st.Misses, st.Evictions, lens[i])
		}
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Waits += st.Waits
		sum.Evictions += st.Evictions
		sum.Uncacheable += st.Uncacheable
		sum.BindFails += st.BindFails
		sum.Compiles += st.Compiles
		lenSum += lens[i]
	}
	if sum != agg {
		t.Errorf("shard stats sum %+v != aggregate %+v", sum, agg)
	}
	if lenSum != c.Len() {
		t.Errorf("shard lens sum %d != Len %d", lenSum, c.Len())
	}
}

// TestShardedCacheThroughput is the contention A/B: on ≥8 hardware threads,
// the hot hit path (per-shard mutex + LRU touch) must scale better at the
// default shard count than forced onto one shard's lock. Skipped on small
// machines where there is no parallelism to win back.
func TestShardedCacheThroughput(t *testing.T) {
	if runtime.NumCPU() < 8 || runtime.GOMAXPROCS(0) < 8 {
		t.Skipf("NumCPU = %d, GOMAXPROCS = %d: the contention A/B needs ≥8 hardware threads (8 goroutines on fewer cores measure scheduling overhead, not lock contention)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("contention A/B is a timing test")
	}
	progs := codecache.NewPrograms()
	realm := vm.New(vm.DefaultConfig())

	const keyspace = 64
	hammer := func(shards int) float64 {
		c := codecache.NewCacheSharded(keyspace*2, shards)
		keys := make([]codecache.Key, keyspace)
		for i := range keys {
			keys[i] = testKey(t, progs, uint64(i+1))
			if _, _, err := c.Compile(keys[i], realm, nil, trivialFill); err != nil {
				t.Fatal(err)
			}
		}
		const goroutines, iters = 8, 20000
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					key := keys[(g*iters+i)%keyspace]
					if _, _, err := c.Compile(key, realm, nil, trivialFill); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return float64(goroutines*iters) / time.Since(start).Seconds()
	}

	// Best of three per configuration: this is a coarse contention check,
	// not a microbenchmark, but scheduler noise still wants damping.
	best := func(shards int) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			if v := hammer(shards); v > b {
				b = v
			}
		}
		return b
	}
	sharded := best(0) // default shard count
	single := best(1)
	t.Logf("hit-path throughput: sharded %.0f ops/s, single-shard %.0f ops/s (%.2fx)",
		sharded, single, sharded/single)
	if sharded <= single {
		t.Errorf("sharding lost the contention A/B: %.0f ops/s ≤ %.0f ops/s", sharded, single)
	}
}
