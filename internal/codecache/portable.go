package codecache

import (
	"nomap/internal/bytecode"
	"nomap/internal/ir"
	"nomap/internal/value"
)

// CalleeKind discriminates the portable identities a compiled direct-call
// target can have.
type CalleeKind uint8

const (
	// CalleeNone marks an absent or unrepresentable reference.
	CalleeNone CalleeKind = iota
	// CalleeNative identifies a builtin by creation order.
	CalleeNative
	// CalleeCode identifies a user function by its shared bytecode: the
	// target isolate's canonical closure over the same *bytecode.Function.
	CalleeCode
)

// CalleeRef names a function portably across isolates of one program.
type CalleeRef struct {
	Kind   CalleeKind
	Native int                // creation-order id when Kind == CalleeNative
	Code   *bytecode.Function // shared bytecode when Kind == CalleeCode
}

// Manifest records, by value ID, every isolate-bound pointer embedded in a
// donor IR graph, in a form replayable against any isolate of the program.
type Manifest struct {
	// Shapes maps value ID → hidden-class transition path from the root.
	Shapes map[int][]string
	// Callees maps value ID → portable callee identity.
	Callees map[int]CalleeRef
	// Inlines names the function object of each inline frame the inliner
	// recorded on the donor (indexed like ir.Func.Inlines); deopt inside
	// flattened code resolves callee environments through these.
	Inlines []CalleeRef
}

// Artifact is one cached compilation: the immutable donor graph plus its
// relocation manifest. Neither is ever mutated after construction; binding
// always clones.
type Artifact struct {
	donor *ir.Func
	man   *Manifest
}

// calleeRef names fn portably in realm, or reports that it cannot.
func calleeRef(fn *value.Function, realm Realm) (CalleeRef, bool) {
	if fn == nil {
		return CalleeRef{}, false
	}
	if id, ok := realm.NativeID(fn); ok {
		return CalleeRef{Kind: CalleeNative, Native: id}, true
	}
	code, ok := fn.Code.(*bytecode.Function)
	if !ok {
		return CalleeRef{}, false
	}
	// Only the canonical (first-created) closure is portable: a later
	// closure over the same code may capture a different environment, and
	// the manifest cannot name environments.
	if realm.FunctionFor(code) != fn {
		return CalleeRef{}, false
	}
	return CalleeRef{Kind: CalleeCode, Code: code}, true
}

// resolveCallee is the inverse of calleeRef in the target isolate.
func resolveCallee(ref CalleeRef, realm Realm) *value.Function {
	switch ref.Kind {
	case CalleeNative:
		return realm.NativeByID(ref.Native)
	case CalleeCode:
		return realm.FunctionFor(ref.Code)
	}
	return nil
}

// shapePath returns s's transition path and verifies it is faithful in the
// donor realm (Replay must reproduce the exact pointer; a shape outside the
// transition tree — there are none today — would fail this and render the
// artifact uncacheable rather than silently wrong).
func shapePath(s *value.Shape, realm Realm) ([]string, bool) {
	path := s.Path()
	if realm.Shapes().Replay(path) != s {
		return nil, false
	}
	return path, true
}

// Extract builds the relocation manifest for a freshly compiled donor graph,
// or reports that the function is uncacheable (some embedded reference has
// no portable name). It visits the same closure Clone copies — block values
// plus everything reachable through args, controls, and stack maps (orphans
// included) — so Bind never meets a reference the manifest is silent about.
// A false return is always safe: the caller simply keeps per-isolate
// compilation for that key.
func Extract(f *ir.Func, realm Realm) (*Manifest, bool) {
	man := &Manifest{
		Shapes:  make(map[int][]string),
		Callees: make(map[int]CalleeRef),
	}
	seen := make(map[*ir.Value]bool)
	ok := true
	var visit func(v *ir.Value)
	visit = func(v *ir.Value) {
		if v == nil || seen[v] || !ok {
			return
		}
		seen[v] = true
		if v.Shape != nil {
			path, pok := shapePath(v.Shape, realm)
			if !pok {
				ok = false
				return
			}
			man.Shapes[v.ID] = path
		}
		if v.Callee != nil {
			ref, cok := calleeRef(v.Callee, realm)
			if !cok {
				ok = false
				return
			}
			man.Callees[v.ID] = ref
		}
		// A constant holding a heap reference (object/function) would
		// smuggle donor heap into another isolate; no pass materialises
		// such constants today, but refuse defensively.
		if v.Op == ir.OpConst && v.AuxVal.IsObject() {
			ok = false
			return
		}
		// An unexpanded dispatch plan embeds donor shape and callee pointers
		// outside the manifest's reach. ExpandDispatch clears every plan in
		// both tiers, so this only fires if a pipeline change leaks one.
		if v.Plan != nil {
			ok = false
			return
		}
		for _, a := range v.Args {
			visit(a)
		}
		for sm := v.Deopt; sm != nil; sm = sm.Caller {
			// Inline-frame caller chains embed every logical frame's state.
			for _, e := range sm.Entries {
				visit(e.Val)
			}
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			visit(v)
		}
		visit(b.Control)
		if b.EntryState != nil {
			for _, e := range b.EntryState.Entries {
				visit(e.Val)
			}
		}
	}
	for _, inf := range f.Inlines {
		ref, cok := calleeRef(inf.Callee, realm)
		if !cok {
			return nil, false
		}
		man.Inlines = append(man.Inlines, ref)
	}
	if !ok {
		return nil, false
	}
	return man, true
}

// Bind clones the artifact into realm, rewriting every manifest reference to
// the analogous object there. It fails (false) only when the target isolate
// lacks a referenced function — e.g. the program's setup has not run — in
// which case the caller compiles locally. Shapes always resolve: Replay
// creates missing transition-tree nodes, and a shape that the isolate's
// objects never reach simply means the guard deopts, which is the same
// outcome a locally compiled stale guard would have.
func (a *Artifact) Bind(realm Realm) (*ir.Func, bool) {
	callees := make(map[int]*value.Function, len(a.man.Callees))
	for id, ref := range a.man.Callees {
		fn := resolveCallee(ref, realm)
		if fn == nil {
			return nil, false
		}
		callees[id] = fn
	}
	shapes := make(map[int]*value.Shape, len(a.man.Shapes))
	for id, path := range a.man.Shapes {
		shapes[id] = realm.Shapes().Replay(path)
	}
	nf, vmap := a.donor.Clone()
	for _, nv := range vmap {
		if nv.Shape != nil {
			s, ok := shapes[nv.ID]
			if !ok {
				// Extract visits the same closure Clone copies, so every
				// shape-bearing value is in the manifest; a miss means the
				// artifact predates a traversal change — refuse to bind.
				return nil, false
			}
			nv.Shape = s
		}
		if nv.Callee != nil {
			fn, ok := callees[nv.ID]
			if !ok {
				return nil, false
			}
			nv.Callee = fn
		}
	}
	for i, ref := range a.man.Inlines {
		fn := resolveCallee(ref, realm)
		if fn == nil {
			return nil, false
		}
		nf.Inlines[i].Callee = fn
	}
	return nf, true
}
