// Package codecache is the serving layer's shared compiled-code cache: a
// concurrency-safe, immutable store of speculative-tier artifacts that lets
// N isolates executing the same program pay for one FTL compilation instead
// of N (the system-level analogue of the paper's §V observation that the
// expensive FTL compile amortizes across many executions).
//
// The central difficulty is that compiled IR is not isolate-neutral: check
// sites embed *value.Shape pointers (hidden-class identity is pointer
// identity) and direct calls embed *value.Function pointers, both of which
// belong to one isolate's heap. The cache therefore separates each artifact
// into an immutable donor IR graph plus a relocation manifest describing
// every isolate-bound reference portably — shapes as transition paths from
// the root (replayable against any shape table), callees as either a
// builtin's creation-order identity or shared program bytecode. Binding an
// artifact into an isolate clones the graph and rewrites those references;
// a function whose references cannot be described portably is marked
// uncacheable and every isolate compiles it locally, degrading exactly to
// cold-start behaviour.
//
// Keys capture every compilation input: the function's shared bytecode
// identity (which subsumes the program hash — bytecode is interned per
// program by Programs), the architecture, the tier-up policy, the tier, the
// governor's transaction level and kept-SMP set, and a fingerprint of the
// profile feedback the compiler consumed. Two isolates that would compile
// identical code — and only those — share an entry, so a cache hit is
// observationally equivalent to a local compile.
package codecache

import (
	"container/list"
	"sync"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/parser"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Realm is the per-isolate naming context the cache relocates references
// through. *vm.VM implements it; the indirection keeps this package below
// the vm in the dependency graph.
type Realm interface {
	// Shapes is the isolate's hidden-class table.
	Shapes() *value.ShapeTable
	// NativeID returns a builtin's deterministic creation-order identity.
	NativeID(f *value.Function) (int, bool)
	// NativeByID is the inverse of NativeID in this isolate.
	NativeByID(id int) *value.Function
	// FunctionFor returns the isolate's canonical function object for a
	// shared bytecode function (nil when the program has not run here).
	FunctionFor(code *bytecode.Function) *value.Function
}

// Key identifies one compiled artifact. All fields are comparable; equal
// keys imply the compiler would produce identical code up to isolate-bound
// pointers.
type Key struct {
	// Code is the function's shared bytecode identity (program-interned).
	Code *bytecode.Function
	// Tier is the compiling tier (DFG or FTL).
	Tier profile.Tier
	// Arch is the architecture configuration (vm.Arch, widened to avoid an
	// import cycle).
	Arch uint8
	// Level is the governor's §V-C transaction placement level.
	Level core.TxLevel
	// Policy is the tier-up policy the isolate runs under.
	Policy profile.Policy
	// KeepFP fingerprints the governor's kept-SMP set for the function.
	KeepFP string
	// DemoteFP fingerprints the governor's demoted dispatch-site set: two
	// isolates share an artifact only when the same dispatch sites were
	// dropped to the generic path ("" when nothing is demoted, keeping
	// pre-IC keys unchanged).
	DemoteFP string
	// ProfFP fingerprints the profile feedback consumed by the compile.
	ProfFP uint64
	// InlineFP fingerprints the profile feedback of every transitively
	// inlinable callee (zero when inlining is off): the inliner builds callee
	// IR from callee profiles, so two isolates share an artifact only when
	// those profiles would steer its inlining identically.
	InlineFP uint64
	// OSR is the artifact's OSR-entry loop-header pc, or -1 for an
	// invocation-entry artifact. OSR artifacts are cached per header: the
	// same function can have one invocation-entry artifact plus one OSR
	// artifact per hot loop.
	OSR int
}

// Stats is a point-in-time snapshot of cache activity (process-wide; the
// per-isolate attribution lives in stats.Counters).
type Stats struct {
	Hits        int64 // artifact found and bound
	Misses      int64 // compiled and inserted (the single flight's winner)
	Waits       int64 // callers that waited on another isolate's compile
	Evictions   int64 // LRU evictions
	Uncacheable int64 // lookups that hit an uncacheable marker
	BindFails   int64 // hits whose relocation failed (local compile fallback)
	Compiles    int64 // fill executions (shared and local)
}

// HitRate returns hits / (hits + misses + uncacheable + bindfails).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Uncacheable + s.BindFails
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// FillGroup aggregates fill counts for reporting: the acceptance metric is
// at most one FTL compile per distinct (program function, Arch) pair once
// the cache is warm.
type FillGroup struct {
	Fn   string
	Arch uint8
	Tier profile.Tier
}

type entry struct {
	key         Key
	art         *Artifact
	uncacheable bool
	elem        *list.Element
}

type flight struct {
	done chan struct{}
}

// Cache is the shared compiled-artifact store: bounded LRU over immutable
// entries, with single-flight compilation so concurrent isolates requesting
// the same key trigger one fill.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*entry
	lru      *list.List // of *entry, most recent at front
	inflight map[Key]*flight
	stats    Stats
	fills    map[FillGroup]int64
	probe    func() error
}

// DefaultCapacity bounds the cache when the caller passes 0.
const DefaultCapacity = 256

// NewCache creates a cache holding at most capacity artifacts.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
		fills:    make(map[FillGroup]int64),
	}
}

// SetFaultProbe installs (or with nil removes) a hook consulted before every
// fill execution; a non-nil error fails that compile exactly as a compiler
// error would. The chaos harness injects transient compile failures here —
// the analogue of htm.CapacityProbe for the compilation pipeline. Production
// paths never install one.
func (c *Cache) SetFaultProbe(f func() error) {
	c.mu.Lock()
	c.probe = f
	c.mu.Unlock()
}

// wrapFill interposes the fault probe (when installed) on a fill closure.
func (c *Cache) wrapFill(fill func() (*ir.Func, error)) func() (*ir.Func, error) {
	c.mu.Lock()
	probe := c.probe
	c.mu.Unlock()
	if probe == nil {
		return fill
	}
	return func() (*ir.Func, error) {
		if err := probe(); err != nil {
			return nil, err
		}
		return fill()
	}
}

// Stats returns a snapshot of the process-wide counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// FillCounts returns how many times each (function, arch, tier) group was
// actually compiled (shared fills and uncacheable local compiles alike).
func (c *Cache) FillCounts() map[FillGroup]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[FillGroup]int64, len(c.fills))
	for g, n := range c.fills {
		out[g] = n
	}
	return out
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *Cache) noteFill(key Key) {
	c.stats.Compiles++
	c.fills[FillGroup{Fn: key.Code.Name, Arch: key.Arch, Tier: key.Tier}]++
}

// Compile returns code for key bound to realm, compiling via fill at most
// once per key across all isolates (uncacheable functions excepted). The
// returned bool reports whether this caller executed fill — the signal the
// JIT uses to charge a compilation to its isolate. ctrs, when non-nil,
// receives the per-isolate hit/miss attribution.
func (c *Cache) Compile(key Key, realm Realm, ctrs *stats.Counters, fill func() (*ir.Func, error)) (*ir.Func, bool, error) {
	fill = c.wrapFill(fill)
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			if e.uncacheable {
				c.stats.Uncacheable++
				c.noteFill(key)
				c.mu.Unlock()
				if ctrs != nil {
					ctrs.CodeCacheMisses++
				}
				f, err := fill()
				return f, err == nil, err
			}
			c.lru.MoveToFront(e.elem)
			art := e.art
			c.mu.Unlock()
			if bound, ok := art.Bind(realm); ok {
				c.mu.Lock()
				c.stats.Hits++
				c.mu.Unlock()
				if ctrs != nil {
					ctrs.CodeCacheHits++
				}
				return bound, false, nil
			}
			// The isolate cannot resolve the manifest (its program state
			// lacks the referenced functions); compile locally.
			c.mu.Lock()
			c.stats.BindFails++
			c.noteFill(key)
			c.mu.Unlock()
			if ctrs != nil {
				ctrs.CodeCacheMisses++
			}
			f, err := fill()
			return f, err == nil, err
		}
		if fl, ok := c.inflight[key]; ok {
			c.stats.Waits++
			c.mu.Unlock()
			<-fl.done
			continue // the winner stored an entry (or failed; retry fills)
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		f, err := fill()

		c.mu.Lock()
		delete(c.inflight, key)
		if err != nil {
			c.mu.Unlock()
			close(fl.done)
			return nil, true, err
		}
		e := &entry{key: key}
		if man, ok := Extract(f, realm); ok {
			e.art = &Artifact{donor: f, man: man}
		} else {
			e.uncacheable = true
		}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.stats.Misses++
		c.noteFill(key)
		evicted := int64(0)
		for c.lru.Len() > c.capacity {
			back := c.lru.Back()
			old := back.Value.(*entry)
			c.lru.Remove(back)
			delete(c.entries, old.key)
			c.stats.Evictions++
			evicted++
		}
		c.mu.Unlock()
		close(fl.done)
		if ctrs != nil {
			ctrs.CodeCacheMisses++
			ctrs.CodeCacheEvictions += evicted
		}
		return f, true, nil
	}
}

// ProgramEntry is one interned program: source, its hash, and the compiled
// top-level bytecode. The bytecode (and everything it references) is
// immutable after compilation, so every isolate of the program shares the
// same *bytecode.Function pointers — the identity the code cache and the
// snapshot facility key on.
type ProgramEntry struct {
	Source string
	Hash   uint64
	Main   *bytecode.Function
}

// Programs interns compiled programs by source text.
type Programs struct {
	mu sync.Mutex
	m  map[string]*ProgramEntry
}

// NewPrograms creates an empty program registry.
func NewPrograms() *Programs {
	return &Programs{m: make(map[string]*ProgramEntry)}
}

// Load returns the interned entry for src, parsing and compiling it on
// first use.
func (p *Programs) Load(src string) (*ProgramEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.m[src]; ok {
		return e, nil
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	main, err := bytecode.Compile(prog)
	if err != nil {
		return nil, err
	}
	e := &ProgramEntry{Source: src, Hash: fnv64(src), Main: main}
	p.m[src] = e
	return e, nil
}

// Len returns the number of interned programs.
func (p *Programs) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// fnv64 is FNV-1a over s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// KeepFingerprint renders a kept-SMP set canonically for use in a Key.
func KeepFingerprint(keep core.KeepSet) string {
	if len(keep) == 0 {
		return ""
	}
	sites := make([]core.CheckSite, 0, len(keep))
	for s := range keep {
		sites = append(sites, s)
	}
	// Insertion sort: keep sets are tiny.
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && siteLess(sites[j], sites[j-1]); j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	buf := make([]byte, 0, len(sites)*8)
	for _, s := range sites {
		buf = appendInt(buf, int64(s.PC))
		buf = append(buf, ':')
		buf = appendInt(buf, int64(s.Class))
		if s.Path != "" {
			buf = append(buf, ':')
			buf = append(buf, s.Path...)
		}
		if s.Shape != "" {
			buf = append(buf, '#')
			buf = append(buf, s.Shape...)
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

func siteLess(a, b core.CheckSite) bool {
	if a.Path != b.Path {
		return a.Path < b.Path
	}
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Shape < b.Shape
}

func appendInt(b []byte, n int64) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
