// Package codecache is the serving layer's shared compiled-code cache: a
// concurrency-safe, immutable store of speculative-tier artifacts that lets
// N isolates executing the same program pay for one FTL compilation instead
// of N (the system-level analogue of the paper's §V observation that the
// expensive FTL compile amortizes across many executions).
//
// The central difficulty is that compiled IR is not isolate-neutral: check
// sites embed *value.Shape pointers (hidden-class identity is pointer
// identity) and direct calls embed *value.Function pointers, both of which
// belong to one isolate's heap. The cache therefore separates each artifact
// into an immutable donor IR graph plus a relocation manifest describing
// every isolate-bound reference portably — shapes as transition paths from
// the root (replayable against any shape table), callees as either a
// builtin's creation-order identity or shared program bytecode. Binding an
// artifact into an isolate clones the graph and rewrites those references;
// a function whose references cannot be described portably is marked
// uncacheable and every isolate compiles it locally, degrading exactly to
// cold-start behaviour.
//
// Keys capture every compilation input: the function's shared bytecode
// identity (which subsumes the program hash — bytecode is interned per
// program by Programs), the architecture, the tier-up policy, the tier, the
// governor's transaction level and kept-SMP set, and a fingerprint of the
// profile feedback the compiler consumed. Two isolates that would compile
// identical code — and only those — share an entry, so a cache hit is
// observationally equivalent to a local compile.
package codecache

import (
	"container/list"
	"reflect"
	"sync"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/parser"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Realm is the per-isolate naming context the cache relocates references
// through. *vm.VM implements it; the indirection keeps this package below
// the vm in the dependency graph.
type Realm interface {
	// Shapes is the isolate's hidden-class table.
	Shapes() *value.ShapeTable
	// NativeID returns a builtin's deterministic creation-order identity.
	NativeID(f *value.Function) (int, bool)
	// NativeByID is the inverse of NativeID in this isolate.
	NativeByID(id int) *value.Function
	// FunctionFor returns the isolate's canonical function object for a
	// shared bytecode function (nil when the program has not run here).
	FunctionFor(code *bytecode.Function) *value.Function
}

// Key identifies one compiled artifact. All fields are comparable; equal
// keys imply the compiler would produce identical code up to isolate-bound
// pointers.
type Key struct {
	// Code is the function's shared bytecode identity (program-interned).
	Code *bytecode.Function
	// Tier is the compiling tier (DFG or FTL).
	Tier profile.Tier
	// Arch is the architecture configuration (vm.Arch, widened to avoid an
	// import cycle).
	Arch uint8
	// Level is the governor's §V-C transaction placement level.
	Level core.TxLevel
	// Policy is the tier-up policy the isolate runs under.
	Policy profile.Policy
	// KeepFP fingerprints the governor's kept-SMP set for the function.
	KeepFP string
	// DemoteFP fingerprints the governor's demoted dispatch-site set: two
	// isolates share an artifact only when the same dispatch sites were
	// dropped to the generic path ("" when nothing is demoted, keeping
	// pre-IC keys unchanged).
	DemoteFP string
	// ProfFP fingerprints the profile feedback consumed by the compile.
	ProfFP uint64
	// InlineFP fingerprints the profile feedback of every transitively
	// inlinable callee (zero when inlining is off): the inliner builds callee
	// IR from callee profiles, so two isolates share an artifact only when
	// those profiles would steer its inlining identically.
	InlineFP uint64
	// OSR is the artifact's OSR-entry loop-header pc, or -1 for an
	// invocation-entry artifact. OSR artifacts are cached per header: the
	// same function can have one invocation-entry artifact plus one OSR
	// artifact per hot loop.
	OSR int
}

// Stats is a point-in-time snapshot of cache activity (process-wide; the
// per-isolate attribution lives in stats.Counters).
type Stats struct {
	Hits        int64 // artifact found and bound
	Misses      int64 // compiled and inserted (the single flight's winner)
	Waits       int64 // callers that waited on another isolate's compile
	Evictions   int64 // LRU evictions
	Uncacheable int64 // lookups that hit an uncacheable marker
	BindFails   int64 // hits whose relocation failed (local compile fallback)
	Compiles    int64 // fill executions (shared and local)
}

// HitRate returns hits / (hits + misses + uncacheable + bindfails).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Uncacheable + s.BindFails
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// FillGroup aggregates fill counts for reporting: the acceptance metric is
// at most one FTL compile per distinct (program function, Arch) pair once
// the cache is warm.
type FillGroup struct {
	Fn   string
	Arch uint8
	Tier profile.Tier
}

type entry struct {
	key         Key
	art         *Artifact
	uncacheable bool
	elem        *list.Element
}

type flight struct {
	done chan struct{}
}

// shard is one independent slice of the cache: its own lock, LRU list,
// entry map, in-flight table, and counters. Keys are distributed across
// shards by fingerprint hash, so isolates compiling unrelated programs never
// contend on one mutex — the lock-contention fix for high-QPS serving.
type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*entry
	lru      *list.List // of *entry, most recent at front
	inflight map[Key]*flight
	stats    Stats
	fills    map[FillGroup]int64
}

// Cache is the shared compiled-artifact store: a power-of-two set of shards,
// each a bounded LRU over immutable entries with single-flight compilation
// so concurrent isolates requesting the same key trigger one fill. All
// single-flight and LRU decisions are per shard; Stats, FillCounts, and Len
// aggregate across shards, so a one-shard cache is observationally the
// pre-sharding cache.
type Cache struct {
	shards []*shard
	mask   uint64

	probeMu sync.Mutex
	probe   func() error
}

// DefaultCapacity bounds the cache when the caller passes 0.
const DefaultCapacity = 256

// DefaultShards is the shard count when the caller passes 0 to
// NewCacheSharded (and the count NewCache uses). Power of two.
const DefaultShards = 8

// NewCache creates a cache holding at most capacity artifacts, split across
// DefaultShards shards.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, 0)
}

// NewCacheSharded creates a cache of the given total capacity split across
// the given number of shards (rounded up to a power of two; 0 takes
// DefaultShards, 1 is the unsharded A/B configuration). Each shard holds at
// most ceil(capacity/shards) entries, so the aggregate bound is within one
// entry per shard of the requested capacity.
func NewCacheSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: per,
			entries:  make(map[Key]*entry),
			lru:      list.New(),
			inflight: make(map[Key]*flight),
			fills:    make(map[FillGroup]int64),
		}
	}
	return c
}

// Shards returns the shard count (for reporting and the A/B harness).
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor selects the shard owning key by FNV-1a over every key component.
// The shared-bytecode identity enters as its in-process pointer (stable for
// the cache's lifetime, exactly as the profile fingerprint hashes it); the
// hash only steers distribution — entry identity is full Key equality inside
// the shard's map.
func (c *Cache) shardFor(key Key) *shard {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(uint64(reflect.ValueOf(key.Code).Pointer()))
	mix(uint64(key.Tier) | uint64(key.Arch)<<8 | uint64(key.Level)<<16)
	mix(uint64(key.Policy.BaselineThreshold))
	mix(uint64(key.Policy.DFGThreshold))
	mix(uint64(key.Policy.FTLThreshold))
	mix(uint64(key.Policy.MaxDeopts))
	mixStr(key.KeepFP)
	mixStr(key.DemoteFP)
	mix(key.ProfFP)
	mix(key.InlineFP)
	mix(uint64(int64(key.OSR)))
	// Fold the high bits down so small shard counts still see the whole hash.
	return c.shards[(h^h>>32)&c.mask]
}

// SetFaultProbe installs (or with nil removes) a hook consulted before every
// fill execution; a non-nil error fails that compile exactly as a compiler
// error would. The chaos harness injects transient compile failures here —
// the analogue of htm.CapacityProbe for the compilation pipeline. Production
// paths never install one.
func (c *Cache) SetFaultProbe(f func() error) {
	c.probeMu.Lock()
	c.probe = f
	c.probeMu.Unlock()
}

// wrapFill interposes the fault probe (when installed) on a fill closure.
func (c *Cache) wrapFill(fill func() (*ir.Func, error)) func() (*ir.Func, error) {
	c.probeMu.Lock()
	probe := c.probe
	c.probeMu.Unlock()
	if probe == nil {
		return fill
	}
	return func() (*ir.Func, error) {
		if err := probe(); err != nil {
			return nil, err
		}
		return fill()
	}
}

// Stats returns a snapshot of the process-wide counters, summed across
// shards.
func (c *Cache) Stats() Stats {
	var total Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.stats
		s.mu.Unlock()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Waits += st.Waits
		total.Evictions += st.Evictions
		total.Uncacheable += st.Uncacheable
		total.BindFails += st.BindFails
		total.Compiles += st.Compiles
	}
	return total
}

// ShardStats returns each shard's counters (for the balance diagnostics and
// the torture test's per-shard invariants).
func (c *Cache) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}

// FillCounts returns how many times each (function, arch, tier) group was
// actually compiled (shared fills and uncacheable local compiles alike).
func (c *Cache) FillCounts() map[FillGroup]int64 {
	out := make(map[FillGroup]int64)
	for _, s := range c.shards {
		s.mu.Lock()
		for g, n := range s.fills {
			out[g] += n
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// ShardLens returns each shard's resident-entry count.
func (c *Cache) ShardLens() []int {
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.lru.Len()
		s.mu.Unlock()
	}
	return out
}

func (s *shard) noteFill(key Key) {
	s.stats.Compiles++
	s.fills[FillGroup{Fn: key.Code.Name, Arch: key.Arch, Tier: key.Tier}]++
}

// LookupStatus reports what a non-blocking Lookup found.
type LookupStatus uint8

const (
	// LookupMiss: no entry and no fill in flight — the caller should
	// schedule a background compile and run at its current-best tier.
	LookupMiss LookupStatus = iota
	// LookupHit: an artifact was found and bound.
	LookupHit
	// LookupInflight: another isolate is compiling this key right now; the
	// artifact will appear without any further action.
	LookupInflight
	// LookupUncacheable: the key is marked uncacheable — it will never be
	// served from the cache and the caller must compile locally.
	LookupUncacheable
	// LookupBindFail: an artifact exists but cannot be relocated into this
	// isolate; the caller must compile locally.
	LookupBindFail
)

// Lookup is the non-blocking read path for the off-request-path compile
// queue: it returns a bound artifact on a hit but never fills and never
// waits on another isolate's fill. ctrs, when non-nil, receives per-isolate
// hit attribution (misses are not charged — the eventual background fill
// charges its own isolate).
func (c *Cache) Lookup(key Key, realm Realm, ctrs *stats.Counters) (*ir.Func, LookupStatus) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if e.uncacheable {
			s.mu.Unlock()
			return nil, LookupUncacheable
		}
		s.lru.MoveToFront(e.elem)
		art := e.art
		s.mu.Unlock()
		if bound, ok := art.Bind(realm); ok {
			s.mu.Lock()
			s.stats.Hits++
			s.mu.Unlock()
			if ctrs != nil {
				ctrs.CodeCacheHits++
			}
			return bound, LookupHit
		}
		return nil, LookupBindFail
	}
	_, inflight := s.inflight[key]
	s.mu.Unlock()
	if inflight {
		return nil, LookupInflight
	}
	return nil, LookupMiss
}

// Compile returns code for key bound to realm, compiling via fill at most
// once per key across all isolates (uncacheable functions excepted). The
// returned bool reports whether this caller executed fill — the signal the
// JIT uses to charge a compilation to its isolate. ctrs, when non-nil,
// receives the per-isolate hit/miss attribution.
func (c *Cache) Compile(key Key, realm Realm, ctrs *stats.Counters, fill func() (*ir.Func, error)) (*ir.Func, bool, error) {
	fill = c.wrapFill(fill)
	s := c.shardFor(key)
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			if e.uncacheable {
				s.stats.Uncacheable++
				s.noteFill(key)
				s.mu.Unlock()
				if ctrs != nil {
					ctrs.CodeCacheMisses++
				}
				f, err := fill()
				return f, err == nil, err
			}
			s.lru.MoveToFront(e.elem)
			art := e.art
			s.mu.Unlock()
			if bound, ok := art.Bind(realm); ok {
				s.mu.Lock()
				s.stats.Hits++
				s.mu.Unlock()
				if ctrs != nil {
					ctrs.CodeCacheHits++
				}
				return bound, false, nil
			}
			// The isolate cannot resolve the manifest (its program state
			// lacks the referenced functions); compile locally.
			s.mu.Lock()
			s.stats.BindFails++
			s.noteFill(key)
			s.mu.Unlock()
			if ctrs != nil {
				ctrs.CodeCacheMisses++
			}
			f, err := fill()
			return f, err == nil, err
		}
		if fl, ok := s.inflight[key]; ok {
			s.stats.Waits++
			s.mu.Unlock()
			<-fl.done
			continue // the winner stored an entry (or failed; retry fills)
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		f, err := fill()

		s.mu.Lock()
		delete(s.inflight, key)
		if err != nil {
			s.mu.Unlock()
			close(fl.done)
			return nil, true, err
		}
		e := &entry{key: key}
		if man, ok := Extract(f, realm); ok {
			e.art = &Artifact{donor: f, man: man}
		} else {
			e.uncacheable = true
		}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.stats.Misses++
		s.noteFill(key)
		evicted := int64(0)
		for s.lru.Len() > s.capacity {
			back := s.lru.Back()
			old := back.Value.(*entry)
			s.lru.Remove(back)
			delete(s.entries, old.key)
			s.stats.Evictions++
			evicted++
		}
		s.mu.Unlock()
		close(fl.done)
		if ctrs != nil {
			ctrs.CodeCacheMisses++
			ctrs.CodeCacheEvictions += evicted
		}
		return f, true, nil
	}
}

// ProgramEntry is one interned program: source, its hash, and the compiled
// top-level bytecode. The bytecode (and everything it references) is
// immutable after compilation, so every isolate of the program shares the
// same *bytecode.Function pointers — the identity the code cache and the
// snapshot facility key on.
type ProgramEntry struct {
	Source string
	Hash   uint64
	Main   *bytecode.Function
}

// Programs interns compiled programs by source text.
type Programs struct {
	mu sync.Mutex
	m  map[string]*ProgramEntry
}

// NewPrograms creates an empty program registry.
func NewPrograms() *Programs {
	return &Programs{m: make(map[string]*ProgramEntry)}
}

// Load returns the interned entry for src, parsing and compiling it on
// first use.
func (p *Programs) Load(src string) (*ProgramEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.m[src]; ok {
		return e, nil
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	main, err := bytecode.Compile(prog)
	if err != nil {
		return nil, err
	}
	e := &ProgramEntry{Source: src, Hash: fnv64(src), Main: main}
	p.m[src] = e
	return e, nil
}

// Len returns the number of interned programs.
func (p *Programs) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// fnv64 is FNV-1a over s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// KeepFingerprint renders a kept-SMP set canonically for use in a Key.
func KeepFingerprint(keep core.KeepSet) string {
	if len(keep) == 0 {
		return ""
	}
	sites := make([]core.CheckSite, 0, len(keep))
	for s := range keep {
		sites = append(sites, s)
	}
	// Insertion sort: keep sets are tiny.
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && siteLess(sites[j], sites[j-1]); j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	buf := make([]byte, 0, len(sites)*8)
	for _, s := range sites {
		buf = appendInt(buf, int64(s.PC))
		buf = append(buf, ':')
		buf = appendInt(buf, int64(s.Class))
		if s.Path != "" {
			buf = append(buf, ':')
			buf = append(buf, s.Path...)
		}
		if s.Shape != "" {
			buf = append(buf, '#')
			buf = append(buf, s.Shape...)
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

func siteLess(a, b core.CheckSite) bool {
	if a.Path != b.Path {
		return a.Path < b.Path
	}
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Shape < b.Shape
}

func appendInt(b []byte, n int64) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
