package codecache

import (
	"fmt"
	"hash/fnv"
	"sort"

	"nomap/internal/bytecode"
	"nomap/internal/profile"
	"nomap/internal/value"
)

// ShapeRef names a hidden class portably: its transition path from the
// root. Absent (unrepresentable) shapes degrade the site to its generic
// path, never to wrong code — a missing IC shape just means a miss.
type ShapeRef struct {
	Present bool
	Path    []string
}

func snapShape(s *value.Shape, realm Realm) ShapeRef {
	if s == nil {
		return ShapeRef{}
	}
	path, ok := shapePath(s, realm)
	if !ok {
		return ShapeRef{}
	}
	return ShapeRef{Present: true, Path: path}
}

func (r ShapeRef) materialize(realm Realm) *value.Shape {
	if !r.Present {
		return nil
	}
	return realm.Shapes().Replay(r.Path)
}

// CallWaySnap is the portable form of one profile.CallWay histogram entry.
type CallWaySnap struct {
	Target CalleeRef
	Recv   ShapeRef
	Count  int64
}

// PropWaySnap is the portable form of one profile.PropWay histogram entry.
type PropWaySnap struct {
	Shape    ShapeRef
	Offset   int
	NewShape ShapeRef
	Count    int64
}

// CallSnap is the portable form of profile.CallFeedback.
type CallSnap struct {
	Target CalleeRef
	Recv   ShapeRef
	Poly   bool
	Count  int64
	Ways   []CallWaySnap
	Mega   bool
}

// ICSnap is the portable form of profile.PropIC.
type ICSnap struct {
	Shape          ShapeRef
	Offset         int
	NewShape       ShapeRef
	Hits           int64
	Misses         int64
	Poly           bool
	SawNonObject   bool
	SawArrayLength bool
	Ways           []PropWaySnap
	Mega           bool
}

// ProfileSnap is a FunctionProfile with every isolate-bound pointer replaced
// by its portable name. It is immutable once built and safe to share across
// isolates: Materialize always allocates fresh per-isolate feedback.
type ProfileSnap struct {
	Invocations     int64
	BackEdges       int64
	Deopts          int64
	CompileFailures int64
	JITUnsupported  bool
	Arith           []profile.ArithFeedback
	Elem            []profile.ElemFeedback
	Calls           []CallSnap
	ICs             []ICSnap
}

// SnapProfile encodes p portably relative to its owning isolate. Feedback
// that cannot be named portably (a non-canonical closure target, say) is
// dropped to the site's generic state — strictly conservative: the warm
// isolate then profiles that site from scratch.
func SnapProfile(p *profile.FunctionProfile, realm Realm) *ProfileSnap {
	s := &ProfileSnap{
		Invocations:     p.InvocationCount,
		BackEdges:       p.BackEdgeCount,
		Deopts:          p.Deopts,
		CompileFailures: p.CompileFailures,
		JITUnsupported:  p.JITUnsupported,
		Arith:           append([]profile.ArithFeedback(nil), p.Arith...),
		Elem:            append([]profile.ElemFeedback(nil), p.Elem...),
		Calls:           make([]CallSnap, len(p.Calls)),
		ICs:             make([]ICSnap, len(p.ICs)),
	}
	for i := range p.Calls {
		cf := &p.Calls[i]
		cs := CallSnap{Poly: cf.Poly, Count: cf.Count, Recv: snapShape(cf.RecvShape, realm), Mega: cf.Mega}
		if cf.Target != nil {
			if ref, ok := calleeRef(cf.Target, realm); ok {
				cs.Target = ref
			} else {
				// Unportable target: forget it. Monomorphic() then reports
				// false and the compiler emits a generic call.
				cs.Count = 0
			}
		}
		for j := range cf.Ways {
			w := &cf.Ways[j]
			ws := CallWaySnap{Count: w.Count}
			if w.Target != nil {
				ref, ok := calleeRef(w.Target, realm)
				if !ok {
					continue // unportable way: drop it — a lost way is a miss
				}
				ws.Target = ref
			}
			if w.Recv != nil {
				ws.Recv = snapShape(w.Recv, realm)
				if !ws.Recv.Present {
					continue
				}
			}
			cs.Ways = append(cs.Ways, ws)
		}
		s.Calls[i] = cs
	}
	for i := range p.ICs {
		ic := &p.ICs[i]
		is := ICSnap{
			Shape:          snapShape(ic.Shape, realm),
			Offset:         ic.Offset,
			NewShape:       snapShape(ic.NewShape, realm),
			Hits:           ic.Hits,
			Misses:         ic.Misses,
			Poly:           ic.Poly,
			SawNonObject:   ic.SawNonObject,
			SawArrayLength: ic.SawArrayLength,
			Mega:           ic.Mega,
		}
		for j := range ic.Ways {
			w := &ic.Ways[j]
			ws := PropWaySnap{Offset: w.Offset, Count: w.Count, Shape: snapShape(w.Shape, realm)}
			if !ws.Shape.Present {
				continue
			}
			if w.NewShape != nil {
				ws.NewShape = snapShape(w.NewShape, realm)
				if !ws.NewShape.Present {
					continue
				}
			}
			is.Ways = append(is.Ways, ws)
		}
		s.ICs[i] = is
	}
	return s
}

// Materialize rebuilds a FunctionProfile for fn inside realm. The result is
// freshly allocated — no state is shared with the snapshot or any other
// isolate.
func (s *ProfileSnap) Materialize(fn *bytecode.Function, realm Realm) *profile.FunctionProfile {
	p := profile.New(fn)
	p.InvocationCount = s.Invocations
	p.BackEdgeCount = s.BackEdges
	p.Deopts = s.Deopts
	p.CompileFailures = s.CompileFailures
	p.JITUnsupported = s.JITUnsupported
	copy(p.Arith, s.Arith)
	copy(p.Elem, s.Elem)
	for i := range s.Calls {
		cs := &s.Calls[i]
		cf := profile.CallFeedback{
			Target:    resolveCallee(cs.Target, realm),
			RecvShape: cs.Recv.materialize(realm),
			Poly:      cs.Poly,
			Count:     cs.Count,
			Mega:      cs.Mega,
		}
		for j := range cs.Ways {
			w := &cs.Ways[j]
			t := resolveCallee(w.Target, realm)
			if t == nil {
				continue
			}
			cf.Ways = append(cf.Ways, profile.CallWay{Target: t, Recv: w.Recv.materialize(realm), Count: w.Count})
		}
		p.Calls[i] = cf
	}
	for i := range s.ICs {
		ic := &s.ICs[i]
		pic := profile.PropIC{
			Shape:          ic.Shape.materialize(realm),
			Offset:         ic.Offset,
			NewShape:       ic.NewShape.materialize(realm),
			Hits:           ic.Hits,
			Misses:         ic.Misses,
			Poly:           ic.Poly,
			SawNonObject:   ic.SawNonObject,
			SawArrayLength: ic.SawArrayLength,
			Mega:           ic.Mega,
		}
		for j := range ic.Ways {
			w := &ic.Ways[j]
			sh := w.Shape.materialize(realm)
			if sh == nil {
				continue
			}
			pic.Ways = append(pic.Ways, profile.PropWay{Shape: sh, Offset: w.Offset, NewShape: w.NewShape.materialize(realm), Count: w.Count})
		}
		p.ICs[i] = pic
	}
	return p
}

// Fingerprint hashes the feedback lattice the compilers actually consume —
// saturating type flags, monomorphic targets and shapes, and Count only as
// the predicate Count > 0 — and deliberately excludes raw counts
// (invocations, back edges, per-site counts, IC hit/miss tallies): those
// advance on every execution without changing a single codegen decision,
// and hashing them would make every compile point a distinct cache key.
// Because the encoding is portable, a donor isolate and a
// snapshot-restored isolate whose profiles carry the same consumed
// feedback produce the same fingerprint — which is what lets them share
// code-cache entries.
func (s *ProfileSnap) Fingerprint() uint64 {
	h := fnv.New64a()
	b := make([]byte, 0, 64)
	flag := func(bs ...bool) {
		var x byte
		for i, v := range bs {
			if v {
				x |= 1 << i
			}
		}
		b = append(b, x)
	}
	str := func(v string) {
		b = appendInt(b, int64(len(v)))
		b = append(b, v...)
	}
	shape := func(r ShapeRef) {
		flag(r.Present)
		if r.Present {
			b = appendInt(b, int64(len(r.Path)))
			for _, k := range r.Path {
				str(k)
			}
		}
	}
	callee := func(r CalleeRef) {
		b = append(b, byte(r.Kind))
		switch r.Kind {
		case CalleeNative:
			b = appendInt(b, int64(r.Native))
		case CalleeCode:
			fmt.Fprintf(h, "%p", r.Code) // in-process-stable shared pointer
		}
	}
	flush := func() {
		h.Write(b)
		b = b[:0]
	}
	flag(s.JITUnsupported)
	for i := range s.Arith {
		f := &s.Arith[i]
		flag(f.SawInt32, f.SawDouble, f.SawString, f.SawOther, f.SawOverflow, f.Count > 0)
	}
	for i := range s.Elem {
		f := &s.Elem[i]
		flag(f.SawArray, f.SawNonArray, f.SawOOB, f.SawAppend, f.SawHole, f.SawNonInt, f.Count > 0)
	}
	flush()
	// Way histograms are hashed in plan order (count-descending stable sort —
	// exactly the order ic.PropPlan/CallPlan dispatch in), not raw counts:
	// two profiles whose counts differ but rank the same ways identically
	// produce identical dispatch trees.
	planOrder := func(n int, count func(int) int64) []int {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return count(order[a]) > count(order[b]) })
		return order
	}
	for i := range s.Calls {
		c := &s.Calls[i]
		flag(c.Poly, c.Mega, c.Count > 0)
		flush()
		callee(c.Target)
		shape(c.Recv)
		flush()
		for _, j := range planOrder(len(c.Ways), func(j int) int64 { return c.Ways[j].Count }) {
			w := &c.Ways[j]
			callee(w.Target)
			shape(w.Recv)
			flush()
		}
	}
	for i := range s.ICs {
		ic := &s.ICs[i]
		flag(ic.Poly, ic.SawNonObject, ic.SawArrayLength, ic.Mega)
		b = appendInt(b, int64(ic.Offset))
		shape(ic.Shape)
		shape(ic.NewShape)
		flush()
		for _, j := range planOrder(len(ic.Ways), func(j int) int64 { return ic.Ways[j].Count }) {
			w := &ic.Ways[j]
			b = appendInt(b, int64(w.Offset))
			shape(w.Shape)
			shape(w.NewShape)
			flush()
		}
	}
	return h.Sum64()
}

// FingerprintProfile is SnapProfile + Fingerprint: the code-cache key
// component for the profile feedback a compile consumes.
func FingerprintProfile(p *profile.FunctionProfile, realm Realm) uint64 {
	return SnapProfile(p, realm).Fingerprint()
}

// InlineFingerprint hashes the feedback of every function the inlining pass
// could flatten into fn: for each call site whose feedback is monomorphic on
// a user function, the callee's shared-bytecode identity and profile
// fingerprint are mixed in, recursively to the inliner's depth bound. Any
// profile change that could alter an inlining decision — a site going
// polymorphic, a callee's feedback shifting the IR built for its body —
// changes the fingerprint, so isolates share an inlined artifact only when
// they would inline identically.
func InlineFingerprint(fn *bytecode.Function, profiles func(*bytecode.Function) *profile.FunctionProfile, realm Realm, depth int) uint64 {
	h := fnv.New64a()
	var walk func(code *bytecode.Function, d int)
	walk = func(code *bytecode.Function, d int) {
		if d <= 0 || profiles == nil {
			return
		}
		p := profiles(code)
		if p == nil {
			return
		}
		mix := func(pc, way int, target *value.Function) {
			if target == nil || target.IsNative() {
				return
			}
			callee, ok := target.Code.(*bytecode.Function)
			if !ok {
				return
			}
			cp := profiles(callee)
			var cfp uint64
			if cp != nil {
				cfp = FingerprintProfile(cp, realm)
			}
			fmt.Fprintf(h, "%d.%d@%p:%x;", pc, way, callee, cfp)
			walk(callee, d-1)
		}
		for pc := range p.Calls {
			cf := &p.Calls[pc]
			if cf.Monomorphic() {
				mix(pc, -1, cf.Target)
			}
			// Dispatch-tree ways are per-way inlining candidates too: each
			// way's guard+direct-call pair is what the inliner flattens.
			for wi := range cf.Ways {
				mix(pc, wi, cf.Ways[wi].Target)
			}
		}
	}
	walk(fn, depth)
	return h.Sum64()
}
