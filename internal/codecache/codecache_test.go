// External test package: exercises the cache through the same surfaces the
// serving layer uses (vm.VM as the Realm, interned programs as key
// identities) without creating an import cycle.
package codecache_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nomap/internal/bytecode"
	"nomap/internal/chaos"
	"nomap/internal/codecache"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/isolate"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

func testKey(t *testing.T, progs *codecache.Programs, profFP uint64) codecache.Key {
	t.Helper()
	entry, err := progs.Load(`function run(n) { return n; }`)
	if err != nil {
		t.Fatal(err)
	}
	return codecache.Key{
		Code:   entry.Main,
		Tier:   profile.TierFTL,
		Arch:   uint8(vm.ArchNoMap),
		Level:  core.TxInnermost,
		ProfFP: profFP,
	}
}

func trivialFill() (*ir.Func, error) {
	return ir.NewFunc("t", nil), nil
}

func TestKeepFingerprintCanonical(t *testing.T) {
	a := core.KeepSet{
		{PC: 9, Class: stats.CheckBounds}:   true,
		{PC: 2, Class: stats.CheckOverflow}: true,
		{PC: 2, Class: stats.CheckProperty}: true,
	}
	// Same sites, different construction order.
	b := core.KeepSet{}
	b[core.CheckSite{PC: 2, Class: stats.CheckProperty}] = true
	b[core.CheckSite{PC: 9, Class: stats.CheckBounds}] = true
	b[core.CheckSite{PC: 2, Class: stats.CheckOverflow}] = true
	if codecache.KeepFingerprint(a) != codecache.KeepFingerprint(b) {
		t.Error("equal keep sets must fingerprint equally regardless of order")
	}
	c := core.KeepSet{{PC: 9, Class: stats.CheckBounds}: true}
	if codecache.KeepFingerprint(a) == codecache.KeepFingerprint(c) {
		t.Error("different keep sets must fingerprint differently")
	}
	if codecache.KeepFingerprint(nil) != "" {
		t.Error("empty keep set must fingerprint empty")
	}
}

func TestProgramsIntern(t *testing.T) {
	progs := codecache.NewPrograms()
	a, err := progs.Load(`function run(n) { return n + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := progs.Load(`function run(n) { return n + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Main != b.Main {
		t.Error("identical source must intern to one entry")
	}
	c, err := progs.Load(`function run(n) { return n + 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c.Hash == a.Hash {
		t.Error("distinct source must intern distinctly")
	}
	if progs.Len() != 2 {
		t.Errorf("Len = %d, want 2", progs.Len())
	}
}

// TestSingleFlight: N concurrent isolates requesting the same key must
// trigger exactly one fill; everyone gets code.
func TestSingleFlight(t *testing.T) {
	c := codecache.NewCache(8)
	progs := codecache.NewPrograms()
	key := testKey(t, progs, 1)
	realm := vm.New(vm.DefaultConfig())

	var fills int64
	var wg sync.WaitGroup
	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, _, err := c.Compile(key, realm, nil, func() (*ir.Func, error) {
				atomic.AddInt64(&fills, 1)
				time.Sleep(20 * time.Millisecond)
				return trivialFill()
			})
			if err != nil {
				errs <- err
				return
			}
			if f == nil {
				t.Error("nil code from Compile")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fills != 1 {
		t.Errorf("fill ran %d times, want 1 (single flight)", fills)
	}
	// Each non-winner waits on the flight and then hits the stored entry on
	// retry, so hits count all seven; waits count those that arrived before
	// the fill finished.
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats %+v: want 1 miss and %d hits", st, callers-1)
	}
}

// A failed fill must not poison the key: the next caller retries.
func TestFailedFillRetries(t *testing.T) {
	c := codecache.NewCache(8)
	progs := codecache.NewPrograms()
	key := testKey(t, progs, 2)
	realm := vm.New(vm.DefaultConfig())

	wantErr := &testError{}
	if _, _, err := c.Compile(key, realm, nil, func() (*ir.Func, error) {
		return nil, wantErr
	}); err != wantErr {
		t.Fatalf("error not propagated: %v", err)
	}
	f, compiled, err := c.Compile(key, realm, nil, trivialFill)
	if err != nil || f == nil || !compiled {
		t.Fatalf("retry after failed fill: f=%v compiled=%v err=%v", f, compiled, err)
	}
}

type testError struct{}

func (*testError) Error() string { return "fill failed" }

// TestLRUEviction: the cache holds `capacity` artifacts, evicts the least
// recently used, and an evicted key compiles again on next request. Exact
// global LRU order is a single-shard property (sharded caches evict per
// shard), so this pins the Shards=1 configuration; cross-shard accounting is
// covered by the sharding torture tests.
func TestLRUEviction(t *testing.T) {
	c := codecache.NewCacheSharded(2, 1)
	progs := codecache.NewPrograms()
	realm := vm.New(vm.DefaultConfig())
	var ctrs stats.Counters

	fill := func(k codecache.Key) (compiled bool) {
		t.Helper()
		_, compiled, err := c.Compile(k, realm, &ctrs, trivialFill)
		if err != nil {
			t.Fatal(err)
		}
		return compiled
	}
	k := func(fp uint64) codecache.Key { return testKey(t, progs, fp) }

	if !fill(k(10)) || !fill(k(11)) {
		t.Fatal("cold keys must compile")
	}
	if fill(k(10)) {
		t.Fatal("resident key must hit, not recompile")
	}
	// Inserting a third key evicts the LRU entry, which is 11 (10 was
	// touched above).
	if !fill(k(12)) {
		t.Fatal("third key must compile")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	if fill(k(10)) {
		t.Error("recently used key was evicted")
	}
	if !fill(k(11)) {
		t.Error("LRU key should have been evicted and must recompile")
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if ctrs.CodeCacheEvictions != 2 || ctrs.CodeCacheHits != 2 || ctrs.CodeCacheMisses != 4 {
		t.Errorf("per-isolate attribution wrong: %+v", ctrs)
	}
}

// TestUncacheable: a donor graph embedding a reference with no portable name
// must be marked uncacheable, and every later request for the key compiles
// locally rather than sharing.
func TestUncacheable(t *testing.T) {
	c := codecache.NewCache(8)
	progs := codecache.NewPrograms()
	key := testKey(t, progs, 3)
	realm := vm.New(vm.DefaultConfig())

	unportable := func() (*ir.Func, error) {
		f := ir.NewFunc("u", nil)
		b := f.NewBlock()
		v := b.NewValue(ir.OpConst, ir.TypeInt32)
		// A closure the realm has never seen: NativeID fails and it is not
		// the canonical closure for any shared bytecode.
		v.Callee = &value.Function{Name: "orphan"}
		return f, nil
	}
	fills := 0
	counted := func() (*ir.Func, error) { fills++; return unportable() }

	for i := 0; i < 3; i++ {
		f, compiled, err := c.Compile(key, realm, nil, counted)
		if err != nil || f == nil || !compiled {
			t.Fatalf("request %d: f=%v compiled=%v err=%v", i, f, compiled, err)
		}
	}
	if fills != 3 {
		t.Errorf("uncacheable key filled %d times, want 3 (one per isolate request)", fills)
	}
	st := c.Stats()
	if st.Uncacheable != 2 || st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats %+v: want 1 miss then 2 uncacheable lookups", st)
	}
}

// TestFingerprintConsumedLatticeOnly pins the cache-key discipline: the
// profile fingerprint moves when — and only when — feedback the compilers
// consume changes. Raw execution counts advance every run without changing
// codegen; hashing them would make every compile point a distinct key and
// reduce the shared cache to per-isolate storage.
func TestFingerprintConsumedLatticeOnly(t *testing.T) {
	base := func() *codecache.ProfileSnap {
		return &codecache.ProfileSnap{
			Invocations: 100,
			BackEdges:   5000,
			Arith:       []profile.ArithFeedback{{SawInt32: true, Count: 7}},
			Elem:        []profile.ElemFeedback{{SawArray: true, Count: 9}},
			Calls:       []codecache.CallSnap{{Count: 3}},
			ICs:         []codecache.ICSnap{{Offset: 1, Hits: 40, Misses: 2}},
		}
	}
	fp := base().Fingerprint()

	// Raw counts moving must not move the fingerprint.
	s := base()
	s.Invocations, s.BackEdges = 1e6, 1e8
	s.Arith[0].Count, s.Elem[0].Count, s.Calls[0].Count = 7000, 9000, 3000
	s.ICs[0].Hits, s.ICs[0].Misses = 99999, 12
	if s.Fingerprint() != fp {
		t.Error("raw counts changed the fingerprint; cache keys will never repeat")
	}

	// Consumed predicates moving must move it.
	for name, mut := range map[string]func(*codecache.ProfileSnap){
		"arith flag":      func(s *codecache.ProfileSnap) { s.Arith[0].SawOverflow = true },
		"elem flag":       func(s *codecache.ProfileSnap) { s.Elem[0].SawOOB = true },
		"count predicate": func(s *codecache.ProfileSnap) { s.Arith[0].Count = 0 },
		"call poly":       func(s *codecache.ProfileSnap) { s.Calls[0].Poly = true },
		"ic offset":       func(s *codecache.ProfileSnap) { s.ICs[0].Offset = 2 },
		"ic nonobject":    func(s *codecache.ProfileSnap) { s.ICs[0].SawNonObject = true },
		"jit unsupported": func(s *codecache.ProfileSnap) { s.JITUnsupported = true },
	} {
		s := base()
		mut(s)
		if s.Fingerprint() == fp {
			t.Errorf("%s: consumed feedback changed but fingerprint did not", name)
		}
	}
}

// relocProgram tiers all the way to FTL with shape-guarded property access
// and both native and user-function call targets — the references the
// relocation manifest must carry.
const relocProgram = `
var obj = {x: 1, y: 2};
function inc(v) { return v + 1; }
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    obj.x = inc(obj.x) | 0;
    s = (s + obj.x + obj.y + Math.floor(i / 2)) | 0;
  }
  return s;
}
`

// TestShareAcrossIsolates is the end-to-end relocation check: two isolates
// of one program share a cache; the second must pull the first's artifacts
// (hits, no second FTL fill) and produce byte-identical results.
func TestShareAcrossIsolates(t *testing.T) {
	cache := codecache.NewCache(0)
	progs := codecache.NewPrograms()
	entry, err := progs.Load(relocProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap

	runOne := func() ([]string, *isolate.Isolate) {
		iso := isolate.New(cfg)
		iso.UseCache(cache)
		if err := iso.Load(entry); err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := 0; i < 40; i++ {
			v, err := iso.VM().CallGlobal("run", value.Int(32))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v.ToStringValue())
		}
		return out, iso
	}

	first, donor := runOne()
	ftlFills := func() int64 {
		var n int64
		for g, c := range cache.FillCounts() {
			if g.Tier == profile.TierFTL {
				n += c
			}
		}
		return n
	}
	donorFills := ftlFills()
	if donorFills == 0 {
		t.Fatal("donor never reached FTL; the program must tier up for this test to bite")
	}

	second, recipient := runOne()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("call %d: recipient %q != donor %q (relocated code misbehaves)", i, second[i], first[i])
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("recipient never hit the cache: %+v", st)
	}
	if got := ftlFills(); got != donorFills {
		t.Errorf("recipient re-ran %d FTL fills; warm isolates must share, not recompile", got-donorFills)
	}
	if recipient.VM().Counters().CodeCacheHits == 0 {
		t.Error("recipient isolate not credited with cache hits")
	}
	_ = donor
}

// TestSnapRoundTripFingerprint: Snap → Materialize → Snap must be a
// fingerprint fixed point, or a restored isolate would miss every cache
// entry its donor filled.
func TestSnapRoundTripFingerprint(t *testing.T) {
	progs := codecache.NewPrograms()
	entry, err := progs.Load(relocProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap
	iso := isolate.New(cfg)
	if err := iso.Load(entry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := iso.VM().CallGlobal("run", value.Int(32)); err != nil {
			t.Fatal(err)
		}
	}
	checked := 0
	iso.VM().EachProfile(func(fn *bytecode.Function, p *profile.FunctionProfile) {
		snap := codecache.SnapProfile(p, iso.VM())
		mat := snap.Materialize(fn, iso.VM())
		again := codecache.SnapProfile(mat, iso.VM())
		if snap.Fingerprint() != again.Fingerprint() {
			t.Errorf("%s: fingerprint not a fixed point across Materialize", fn.Name)
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("no profiles visited")
	}
}

// TestFaultProbeFailsFill: an installed fault probe fails exactly the fills
// it chooses, the failure propagates as a fill error (transient — the next
// caller recompiles cleanly), and removing the probe restores normal
// operation. This is the seam the chaos harness' compile-fail@k point
// drives.
func TestFaultProbeFailsFill(t *testing.T) {
	c := codecache.NewCache(8)
	progs := codecache.NewPrograms()
	key := testKey(t, progs, 7)
	realm := vm.New(vm.DefaultConfig())

	plan := chaos.NewPlan(1, chaos.At(chaos.KindCompileFail, 1))
	c.SetFaultProbe(func() error {
		if plan.Arm(chaos.KindCompileFail) {
			return &chaos.CompileFault{Occurrence: plan.Armed(chaos.KindCompileFail)}
		}
		return nil
	})
	var fills int64
	counted := func() (*ir.Func, error) {
		fills++
		return trivialFill()
	}
	_, _, err := c.Compile(key, realm, nil, counted)
	var cf *chaos.CompileFault
	if !errors.As(err, &cf) {
		t.Fatalf("first compile under probe: err=%v, want CompileFault", err)
	}
	if fills != 0 {
		t.Fatalf("fill body ran %d times despite injected fault", fills)
	}
	// The fault was transient: the same key compiles on retry.
	f, compiled, err := c.Compile(key, realm, nil, counted)
	if err != nil || f == nil || !compiled || fills != 1 {
		t.Fatalf("retry after injected fault: f=%v compiled=%v fills=%d err=%v", f, compiled, fills, err)
	}
	c.SetFaultProbe(nil)
	if _, _, err := c.Compile(testKey(t, progs, 8), realm, nil, counted); err != nil {
		t.Fatalf("compile after probe removal: %v", err)
	}
	if plan.Fired(chaos.KindCompileFail) != 1 {
		t.Errorf("fired %d faults, want 1", plan.Fired(chaos.KindCompileFail))
	}
}
