// Package chaos is the serving layer's deterministic fault-injection
// harness: a seeded plan of fault points threaded through the pool, the
// isolates, and the compiled-code cache the same way the oracle's
// machine.Injector and htm.CapacityProbe thread through the execution
// engine. Each fault point names a failure mode the resilience subsystem
// must survive — a panicking isolate, a transient compile failure, a wedged
// (slow) isolate, a corrupted warm-start snapshot — and fires at an exact
// occurrence index, so a chaos run is replayable: the same plan against the
// same traffic produces the same fault at the same request.
//
// The package deliberately knows nothing about the pool: it only counts
// arming points and answers "does this occurrence fault?". The pool, the
// snapshot store, and the code cache decide what an armed fault means at
// their layer, exactly as the machine decides what machine.ActFailCheck
// means at a check site.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind names one registered fault point. Every kind must be survivable:
// the chaos sweep in internal/oracle enumerates all of them under load and
// requires the pool to converge back to healthy with zero lost responses.
type Kind uint8

const (
	// KindPanic crashes the serving isolate mid-execution: the fault
	// surfaces as a Go panic from inside the engine, which the pool's crash
	// containment must recover, quarantine, and replace.
	KindPanic Kind = iota
	// KindCompileFail fails one speculative-tier compilation fill
	// transiently (the code cache's fill probe): the engine must fall back
	// to Baseline for that call and recompile cleanly later.
	KindCompileFail
	// KindSlowIsolate wedges one request's isolate: every tier boundary
	// reports the watchdog expiry, so the request dies with the deadline
	// error instead of occupying a worker forever.
	KindSlowIsolate
	// KindSnapshotCorrupt damages a warm-start snapshot in flight: the
	// isolate's integrity seal must reject it and the request must be
	// served cold, byte-identical.
	KindSnapshotCorrupt
	// NumKinds sizes per-kind ledgers.
	NumKinds
)

// String names the kind as it appears in plans and traces.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindCompileFail:
		return "compile-fail"
	case KindSlowIsolate:
		return "slow-isolate"
	case KindSnapshotCorrupt:
		return "snapshot-corrupt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// AllKinds returns every registered fault point, in declaration order. The
// chaos sweep iterates this so a newly registered kind is enumerated
// automatically — forgetting to handle it fails the sweep, not silence.
func AllKinds() []Kind {
	return []Kind{KindPanic, KindCompileFail, KindSlowIsolate, KindSnapshotCorrupt}
}

// ParseKind is the inverse of Kind.String (for command-line plans).
func ParseKind(s string) (Kind, bool) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Point schedules one fault: the At-th arming of Kind (1-based) faults.
type Point struct {
	Kind Kind
	At   int64
}

// At schedules kind to fault at its k-th arming.
func At(kind Kind, k int64) Point { return Point{Kind: kind, At: k} }

// Crash is the panic payload a KindPanic fault raises. Carrying a typed
// value lets the pool's recovery fingerprint injected crashes distinctly
// from organic ones while exercising the identical containment path.
type Crash struct {
	// Occurrence is the arming index that fired.
	Occurrence int64
}

func (c Crash) String() string {
	return fmt.Sprintf("chaos: injected isolate panic (occurrence %d)", c.Occurrence)
}

// CompileFault is the error a KindCompileFail fault injects into a compile
// fill. It is transient by construction: the engine's bounded
// transient-compile-failure policy must absorb it.
type CompileFault struct {
	Occurrence int64
}

func (e *CompileFault) Error() string {
	return fmt.Sprintf("chaos: injected transient compile failure (occurrence %d)", e.Occurrence)
}

// Plan is one chaos run's fault schedule plus its firing ledger. It is
// concurrency-safe: pool workers arm points from their own goroutines, and
// each scheduled point fires exactly once regardless of interleaving.
type Plan struct {
	mu    sync.Mutex
	seed  int64
	at    [NumKinds]map[int64]bool
	armed [NumKinds]int64
	fired [NumKinds]int64
}

// NewPlan builds a plan firing the given points. The seed labels the run
// (plans built by Spread derive their occurrence indices from it).
func NewPlan(seed int64, points ...Point) *Plan {
	p := &Plan{seed: seed}
	for i := range p.at {
		p.at[i] = make(map[int64]bool)
	}
	for _, pt := range points {
		if pt.Kind < NumKinds && pt.At >= 1 {
			p.at[pt.Kind][pt.At] = true
		}
	}
	return p
}

// Spread builds a plan that faults kind at n seeded-pseudorandom occurrences
// within [1, span]: the deterministic analogue of the oracle's
// random-schedule pass. Equal seeds give equal plans.
func Spread(seed int64, kind Kind, n int, span int64) *Plan {
	if span < 1 {
		span = 1
	}
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(kind) + 0x243F6A8885A308D3
	pts := make([]Point, 0, n)
	seen := make(map[int64]bool)
	for len(pts) < n {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		k := 1 + int64(x%uint64(span))
		if !seen[k] {
			seen[k] = true
			pts = append(pts, At(kind, k))
		}
		if int64(len(seen)) >= span {
			break
		}
	}
	return NewPlan(seed, pts...)
}

// Seed returns the plan's label seed.
func (p *Plan) Seed() int64 { return p.seed }

// Arm counts one occurrence of kind and reports whether it faults. A nil
// plan never faults, so production paths stay hook-free: the pool can call
// plan.Arm unconditionally.
func (p *Plan) Arm(kind Kind) bool {
	if p == nil || kind >= NumKinds {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed[kind]++
	if p.at[kind][p.armed[kind]] {
		p.fired[kind]++
		return true
	}
	return false
}

// Armed returns how many occurrences of kind have been counted.
func (p *Plan) Armed(kind Kind) int64 {
	if p == nil || kind >= NumKinds {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.armed[kind]
}

// Fired returns how many scheduled faults of kind have fired.
func (p *Plan) Fired(kind Kind) int64 {
	if p == nil || kind >= NumKinds {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[kind]
}

// Scheduled returns how many faults of kind the plan carries.
func (p *Plan) Scheduled(kind Kind) int {
	if p == nil || kind >= NumKinds {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.at[kind])
}

// Exhausted reports that every scheduled fault of every kind has fired —
// the precondition for asserting a run converged back to healthy.
func (p *Plan) Exhausted() bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := Kind(0); k < NumKinds; k++ {
		if p.fired[k] < int64(len(p.at[k])) {
			return false
		}
	}
	return true
}

// String renders the plan's schedule canonically ("panic@3,slow-isolate@5").
func (p *Plan) String() string {
	if p == nil {
		return "<none>"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	for k := Kind(0); k < NumKinds; k++ {
		occs := make([]int64, 0, len(p.at[k]))
		for o := range p.at[k] {
			occs = append(occs, o)
		}
		sort.Slice(occs, func(i, j int) bool { return occs[i] < occs[j] })
		for _, o := range occs {
			parts = append(parts, fmt.Sprintf("%s@%d", k, o))
		}
	}
	if len(parts) == 0 {
		return "<empty>"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated "kind@k" schedule (the nomap-serve
// -chaos flag syntax): "panic@3,compile-fail@1,slow-isolate@5".
func ParsePlan(seed int64, spec string) (*Plan, error) {
	var pts []Point
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: bad point %q (want kind@k)", part)
		}
		kind, ok := ParseKind(name)
		if !ok {
			return nil, fmt.Errorf("chaos: unknown fault kind %q", name)
		}
		var k int64
		if _, err := fmt.Sscanf(at, "%d", &k); err != nil || k < 1 {
			return nil, fmt.Errorf("chaos: bad occurrence %q in %q", at, part)
		}
		pts = append(pts, At(kind, k))
	}
	return NewPlan(seed, pts...), nil
}
