package chaos

import (
	"sync"
	"testing"
)

func TestArmFiresAtExactOccurrence(t *testing.T) {
	p := NewPlan(1, At(KindPanic, 3), At(KindSlowIsolate, 1))
	for i := 1; i <= 5; i++ {
		got := p.Arm(KindPanic)
		if want := i == 3; got != want {
			t.Errorf("panic arm %d: fired=%v, want %v", i, got, want)
		}
	}
	if !p.Arm(KindSlowIsolate) {
		t.Error("slow-isolate@1 did not fire on first arm")
	}
	if p.Arm(KindSlowIsolate) {
		t.Error("slow-isolate fired twice")
	}
	if p.Fired(KindPanic) != 1 || p.Fired(KindSlowIsolate) != 1 {
		t.Errorf("fired ledger wrong: %d/%d", p.Fired(KindPanic), p.Fired(KindSlowIsolate))
	}
	if p.Armed(KindPanic) != 5 {
		t.Errorf("armed ledger wrong: %d", p.Armed(KindPanic))
	}
	if !p.Exhausted() {
		t.Error("plan with all points fired reports not exhausted")
	}
}

func TestNilPlanNeverFaults(t *testing.T) {
	var p *Plan
	if p.Arm(KindPanic) {
		t.Error("nil plan fired")
	}
	if !p.Exhausted() {
		t.Error("nil plan not exhausted")
	}
	if p.Fired(KindCompileFail) != 0 || p.Armed(KindCompileFail) != 0 {
		t.Error("nil plan has ledger state")
	}
}

// TestConcurrentArmFiresExactlyOnce: each scheduled point fires exactly once
// no matter how many goroutines race on Arm — the property the pool soak
// relies on.
func TestConcurrentArmFiresExactlyOnce(t *testing.T) {
	p := NewPlan(7, At(KindCompileFail, 5), At(KindCompileFail, 40), At(KindCompileFail, 97))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p.Arm(KindCompileFail)
			}
		}()
	}
	wg.Wait()
	if p.Armed(KindCompileFail) != 200 {
		t.Fatalf("armed %d, want 200", p.Armed(KindCompileFail))
	}
	if p.Fired(KindCompileFail) != 3 {
		t.Fatalf("fired %d, want 3", p.Fired(KindCompileFail))
	}
}

func TestSpreadDeterministicAndBounded(t *testing.T) {
	a := Spread(11, KindPanic, 4, 50)
	b := Spread(11, KindPanic, 4, 50)
	if a.String() != b.String() {
		t.Fatalf("equal seeds diverge: %s vs %s", a, b)
	}
	if a.Scheduled(KindPanic) != 4 {
		t.Fatalf("scheduled %d points, want 4", a.Scheduled(KindPanic))
	}
	c := Spread(12, KindPanic, 4, 50)
	if a.String() == c.String() {
		t.Errorf("different seeds produced identical plans: %s", a)
	}
	fired := 0
	for i := 0; i < 50; i++ {
		if a.Arm(KindPanic) {
			fired++
		}
	}
	if fired != 4 {
		t.Errorf("spread plan fired %d times in span, want 4", fired)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan(3, "panic@3,compile-fail@1,slow-isolate@5,snapshot-corrupt@2")
	if err != nil {
		t.Fatal(err)
	}
	want := "panic@3,compile-fail@1,slow-isolate@5,snapshot-corrupt@2"
	if p.String() != want {
		t.Errorf("plan %q, want %q", p, want)
	}
	back, err := ParsePlan(3, p.String())
	if err != nil || back.String() != p.String() {
		t.Errorf("round trip failed: %v %q", err, back)
	}
	for _, bad := range []string{"panic", "nope@1", "panic@0", "panic@x"} {
		if _, err := ParsePlan(0, bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestAllKindsCoversEnum(t *testing.T) {
	if len(AllKinds()) != int(NumKinds) {
		t.Fatalf("AllKinds lists %d kinds, enum has %d", len(AllKinds()), NumKinds)
	}
	seen := map[string]bool{}
	for _, k := range AllKinds() {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
		if got, ok := ParseKind(s); !ok || got != k {
			t.Errorf("ParseKind(%q) = %v,%v", s, got, ok)
		}
	}
}
