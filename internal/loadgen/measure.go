// MeasureKey derives a workload key's service-cost profile from real engine
// runs — the bridge between the deterministic engine and the virtual-time
// simulator. Every number is modeled cycles from the engine's own
// accounting, so the profile (and everything the simulator derives from it)
// is bit-reproducible.
package loadgen

import (
	"fmt"

	"nomap/internal/codecache"
	"nomap/internal/isolate"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// MeasureKey profiles one workload (source, calls, arg) under cfg: a cold
// isolate (tier-up on path), a warm isolate (snapshot restore plus shared
// code cache), and a Baseline-capped isolate (the async cold path). The
// three runs must produce identical results or the workload is rejected —
// a key whose output depends on warmth could never be served by the pool.
func MeasureKey(name, source string, calls, arg int, cfg vm.Config) (KeyProfile, error) {
	kp := KeyProfile{Name: name}
	progs := codecache.NewPrograms()
	entry, err := progs.Load(source)
	if err != nil {
		return kp, fmt.Errorf("loadgen: %s: %w", name, err)
	}

	run := func(iso *isolate.Isolate) (string, error) {
		var last string
		for i := 0; i < calls; i++ {
			v, err := iso.VM().CallGlobal("run", value.Int(int32(arg)))
			if err != nil {
				return "", err
			}
			last = v.ToStringValue()
		}
		return last, nil
	}

	// Cold: a fresh isolate tiering up on the request path.
	cold := isolate.New(cfg)
	if err := cold.Load(entry); err != nil {
		return kp, err
	}
	coldRes, err := run(cold)
	if err != nil {
		return kp, fmt.Errorf("loadgen: %s cold: %w", name, err)
	}
	ctrs := cold.VM().Counters()
	kp.ColdCycles = ctrs.TotalCycles()
	for tier, n := range ctrs.Compilations {
		kp.CompileCycles += n * CompileCost[tier]
	}
	kp.Result = coldRes

	// Warm: a donor fills the shared cache and captures a snapshot; the
	// measured isolate restores and pulls artifacts instead of compiling.
	cache := codecache.NewCache(0)
	donor := isolate.New(cfg)
	donor.UseCache(cache)
	if err := donor.Load(entry); err != nil {
		return kp, err
	}
	if _, err := run(donor); err != nil {
		return kp, fmt.Errorf("loadgen: %s donor: %w", name, err)
	}
	snap := donor.Snapshot()
	warm := isolate.New(cfg)
	warm.UseCache(cache)
	if err := warm.Load(entry); err != nil {
		return kp, err
	}
	if err := warm.Restore(snap); err != nil {
		return kp, fmt.Errorf("loadgen: %s restore: %w", name, err)
	}
	warmRes, err := run(warm)
	if err != nil {
		return kp, fmt.Errorf("loadgen: %s warm: %w", name, err)
	}
	kp.WarmCycles = warm.VM().Counters().TotalCycles()

	// Baseline-capped: what an async-mode cold request pays while its
	// compiles are deferred to the background queue.
	bcfg := cfg
	bcfg.MaxTier = profile.TierBaseline
	base := isolate.New(bcfg)
	if err := base.Load(entry); err != nil {
		return kp, err
	}
	baseRes, err := run(base)
	if err != nil {
		return kp, fmt.Errorf("loadgen: %s baseline: %w", name, err)
	}
	kp.BaselineCycles = base.VM().Counters().TotalCycles()

	if warmRes != coldRes || baseRes != coldRes {
		return kp, fmt.Errorf("loadgen: %s: results diverge across warmth (cold %q warm %q baseline %q)",
			name, coldRes, warmRes, baseRes)
	}
	return kp, nil
}
