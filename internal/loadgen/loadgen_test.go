package loadgen_test

import (
	"reflect"
	"testing"

	"nomap/internal/loadgen"
	"nomap/internal/vm"
)

const loopProgram = `
var o = {acc: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < 200; i++) {
    s = (s + i * n) | 0;
    o.acc = (o.acc + 1) | 0;
  }
  return s + o.acc;
}
`

// spinProgram is compile-dominated: calls are cheap, but enough of them
// trigger optimizing tier-up, so the on-path compile is the bulk of a cold
// request's cost. This is the shape the background compile queue exists for.
const spinProgram = `
function run(n) {
  var s = 0;
  for (var i = 0; i < 4; i++) {
    s = (s + i * n) | 0;
  }
  return s;
}
`

func measuredKey(t *testing.T) loadgen.KeyProfile {
	t.Helper()
	kp, err := loadgen.MeasureKey("loop", loopProgram, 16, 3, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func measuredSpinKey(t *testing.T) loadgen.KeyProfile {
	t.Helper()
	kp, err := loadgen.MeasureKey("spin", spinProgram, 64, 3, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

// TestMeasureKeyProfiles checks the engine-derived cost profile is coherent:
// warmth must pay off, compilation must cost something, and the pinned
// result must be present for drift detection.
func TestMeasureKeyProfiles(t *testing.T) {
	kp := measuredKey(t)
	t.Logf("profile: %+v", kp)
	if kp.ColdCycles <= 0 || kp.WarmCycles <= 0 || kp.BaselineCycles <= 0 {
		t.Fatalf("non-positive cycle counts: %+v", kp)
	}
	if kp.CompileCycles <= 0 {
		t.Fatalf("cold run compiled nothing: %+v", kp)
	}
	if kp.WarmCycles >= kp.ColdCycles+kp.CompileCycles {
		t.Errorf("warm start (%d) not cheaper than cold+compile (%d)",
			kp.WarmCycles, kp.ColdCycles+kp.CompileCycles)
	}
	if kp.Result == "" {
		t.Error("no pinned result")
	}
	// Re-measuring must be bit-identical: the whole benchmark chain rests on
	// the engine's determinism.
	if again := measuredKey(t); again != kp {
		t.Errorf("re-measure diverged: %+v vs %+v", again, kp)
	}
}

// TestSimDeterminism: identical SimConfig → identical SimResult, the
// property that lets CI gate on a committed snapshot at a tight ceiling.
func TestSimDeterminism(t *testing.T) {
	kp := measuredKey(t)
	cfg := loadgen.SimConfig{
		Workers:  8,
		QPS:      20000,
		Requests: 5000,
		Seed:     42,
		Keys:     []loadgen.KeyProfile{kp},
		Coalesce: true,
	}
	a := loadgen.Run(cfg)
	b := loadgen.Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
	if a.Completed == 0 || a.ThroughputQPS <= 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	c := cfg
	c.Seed = 43
	if reflect.DeepEqual(loadgen.Run(c), a) {
		t.Error("different seeds produced identical results; arrivals are not seeded")
	}
}

// TestSimColdBurstAsyncBeatsSync is the acceptance A/B for the compile
// queue: on a burst of distinct cold tenants, deferring tier-up compilation
// off the request path must cut the p999 versus compiling on-path.
func TestSimColdBurstAsyncBeatsSync(t *testing.T) {
	kp := measuredSpinKey(t)
	t.Logf("spin profile: %+v", kp)
	if kp.BaselineCycles >= kp.ColdCycles+kp.CompileCycles {
		t.Fatalf("workload not compile-dominated (baseline %d ≥ cold+compile %d); the A/B is meaningless",
			kp.BaselineCycles, kp.ColdCycles+kp.CompileCycles)
	}
	base := loadgen.SimConfig{
		Workers:    8,
		QueueDepth: 256,
		QPS:        10000,
		Requests:   2000,
		Seed:       7,
		Keys:       []loadgen.KeyProfile{kp},
		ColdKeys:   true,
	}
	sync := loadgen.Run(base)

	async := base
	async.Async = true
	async.CompileWorkers = 2
	ar := loadgen.Run(async)

	t.Logf("sync:  %+v", sync)
	t.Logf("async: %+v", ar)
	if ar.Completed != sync.Completed+sync.Rejected && ar.Completed == 0 {
		t.Fatalf("async run degenerate: %+v", ar)
	}
	if ar.P999 >= sync.P999 {
		t.Errorf("async p999 (%dµs) not better than sync p999 (%dµs) on cold burst",
			ar.P999, sync.P999)
	}
	if ar.CompileJobs == 0 {
		t.Error("async run scheduled no background rehearsals")
	}
}

// TestSimCoalesceCutsColdStampede: many concurrent cold requests for one
// key — coalescing elects one leader and the rest wait it out warm, so tail
// latency and throughput must both improve over everyone compiling alone.
func TestSimCoalesceCutsColdStampede(t *testing.T) {
	kp := measuredKey(t)
	base := loadgen.SimConfig{
		Workers:    8,
		QueueDepth: 256,
		QPS:        50000,
		Requests:   200,
		Seed:       11,
		Keys:       []loadgen.KeyProfile{kp},
	}
	solo := loadgen.Run(base)

	co := base
	co.Coalesce = true
	cr := loadgen.Run(co)

	t.Logf("solo:      %+v", solo)
	t.Logf("coalesced: %+v", cr)
	if cr.P99 > solo.P99 {
		t.Errorf("coalescing worsened p99: %dµs > %dµs", cr.P99, solo.P99)
	}
	if cr.ThroughputQPS < solo.ThroughputQPS {
		t.Errorf("coalescing lost throughput: %.0f < %.0f", cr.ThroughputQPS, solo.ThroughputQPS)
	}
}
