// Package loadgen is the serving layer's deterministic load generator: a
// seeded open-loop (Poisson) arrival process and a virtual-time
// discrete-event simulator of the pool — workers, bounded queue, warm-start
// keys, cold-start coalescing, and the background compile queue — running
// entirely on the engine's modeled cycle counts.
//
// Why simulate instead of timing wall clocks: the committed BENCH_SERVE.json
// snapshot gates CI at a 2% regression ceiling, which only works if the
// numbers are bit-reproducible across machines and runs. Every quantity here
// is an integer: arrivals come from a quantized inverse-CDF exponential
// table (rounded once at init, so no cross-platform libm drift), service
// times are the engine's deterministic modeled cycles measured by
// MeasureKey, and the event loop advances a virtual clock. Real-time load
// generation (cmd/nomap-serve -loadgen) remains available for exploratory
// measurements; the gate runs on virtual time.
package loadgen

import (
	"container/heap"
	"math"

	"nomap/internal/stats"
)

// CyclesPerSecond converts modeled cycles to virtual time (a modeled 1 GHz
// core: 1 cycle = 1 ns).
const CyclesPerSecond = 1_000_000_000

// Modeled compilation costs per tier, in cycles (index = profile.Tier).
// Engine cycle accounting covers execution only, so on-path compilation is
// charged explicitly: optimizing JIT compiles are the milliseconds-scale
// events whose removal from the request path is the whole point of the
// background compile queue.
var CompileCost = [4]int64{
	0,         // interp: nothing to compile
	10_000,    // baseline: template emission, cheap
	250_000,   // DFG
	1_000_000, // FTL
}

// Rand is the seeded xorshift64 generator behind every sampling decision.
type Rand struct{ s uint64 }

// NewRand seeds a generator (0 is remapped so the stream never degenerates).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// expQ is the quantized inverse CDF of the unit exponential in 16.16 fixed
// point: expQ[i] ≈ -ln((i+0.5)/len) << 16. Computed once at init and rounded,
// so identical on every platform; draws are pure integer math afterwards.
var expQ = func() [1024]int64 {
	var t [1024]int64
	for i := range t {
		t[i] = int64(math.Round(-math.Log((float64(i)+0.5)/float64(len(t))) * 65536))
	}
	return t
}()

// ExpDraw samples an exponential with the given mean (in cycles).
func (r *Rand) ExpDraw(mean int64) int64 {
	q := expQ[r.Next()&1023]
	return (q * mean) >> 16
}

// KeyProfile is one workload key's measured service costs (modeled cycles),
// produced by MeasureKey. Result pins the workload's output for drift
// detection: a simulation re-measuring a changed engine fails the compare
// gate explicitly rather than silently re-baselining.
type KeyProfile struct {
	Name string `json:"name"`
	// ColdCycles: first-ever request, tiering up on the request path
	// (execution only; on-path compiles add CompileCycles).
	ColdCycles int64 `json:"cold_cycles"`
	// WarmCycles: snapshot-restored request pulling artifacts from the
	// shared code cache.
	WarmCycles int64 `json:"warm_cycles"`
	// BaselineCycles: the request capped at the Baseline tier — what an
	// async-mode cold request pays while its compiles run in the background.
	BaselineCycles int64 `json:"baseline_cycles"`
	// CompileCycles: modeled cost of the compilations a cold run performs.
	CompileCycles int64 `json:"compile_cycles"`
	// Result is the final call's return value (drift detection).
	Result string `json:"result"`
}

// SimConfig parameterizes one virtual-time run.
type SimConfig struct {
	Workers    int   // serving workers (≥1)
	QueueDepth int   // bounded request queue (0 → 4× workers)
	QPS        int64 // open-loop arrival rate (required)
	Requests   int   // arrivals to generate (required)
	Seed       uint64
	Keys       []KeyProfile
	// Weights biases key selection (len == len(Keys); nil → uniform).
	Weights []int
	// ColdKeys makes every request its own fresh key (a cold-start burst):
	// the key index still selects the cost profile, but no request shares
	// warm state with another.
	ColdKeys bool
	// Async routes tier-up compilation to the background compile queue
	// (requests pay BaselineCycles until the key's rehearsal finishes);
	// otherwise cold requests compile on the request path.
	Async          bool
	CompileWorkers int // background compile workers (0 → 1)
	// Coalesce merges concurrent cold starts of one key: one leader pays the
	// cold cost, followers wait for it and then run warm.
	Coalesce bool
}

// SimResult is one run's outcome.
type SimResult struct {
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	// ThroughputQPS is completed requests per virtual second.
	ThroughputQPS float64 `json:"throughput_qps"`
	// Latency quantiles in virtual microseconds.
	P50  int64 `json:"p50_us"`
	P99  int64 `json:"p99_us"`
	P999 int64 `json:"p999_us"`
	MaxL int64 `json:"max_us"`
	// CompileJobs counts background rehearsals run (async mode).
	CompileJobs int64 `json:"compile_jobs"`
}

// Event kinds, ordered: at equal times, completions precede arrivals so a
// freed worker is visible to the arrival sharing its timestamp.
const (
	evDone = iota
	evCompileDone
	evArrival
)

type ev struct {
	t    int64
	kind int
	seq  int64 // tiebreak: FIFO among equal (t, kind)
	req  int   // arrival/done: request index
	key  int   // compileDone: key index
}

type evHeap []ev

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(ev)) }
func (h *evHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// keyState tracks one key's warm-start progression in the simulator.
type keyState struct {
	prof int // index into cfg.Keys
	// warm: artifacts and snapshot available.
	warm bool
	// warmAt, when >0, is the virtual time warmth lands (sync coalescing
	// leader completion, or async rehearsal completion).
	warmAt int64
	// compileQueued dedups background rehearsals (async).
	compileQueued bool
}

type request struct {
	key     int
	arrival int64
	start   int64
}

// Run executes the simulation and reports throughput and tail latency.
func Run(cfg SimConfig) SimResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CompileWorkers <= 0 {
		cfg.CompileWorkers = 1
	}
	rng := NewRand(cfg.Seed)
	meanGap := CyclesPerSecond / cfg.QPS

	totalW := 0
	for _, w := range cfg.Weights {
		totalW += w
	}

	// Pre-draw every arrival (open loop: the schedule never reacts to
	// completions).
	reqs := make([]request, cfg.Requests)
	keys := make([]keyState, 0, len(cfg.Keys))
	for i := range cfg.Keys {
		keys = append(keys, keyState{prof: i})
	}
	var t int64
	for i := range reqs {
		t += rng.ExpDraw(meanGap)
		var prof int
		if totalW > 0 {
			w := int(rng.Next() % uint64(totalW))
			for j, wj := range cfg.Weights {
				if w < wj {
					prof = j
					break
				}
				w -= wj
			}
		} else {
			prof = int(rng.Next() % uint64(len(cfg.Keys)))
		}
		k := prof
		if cfg.ColdKeys {
			// A burst of distinct tenants: every request is its own key.
			keys = append(keys, keyState{prof: prof})
			k = len(keys) - 1
		}
		reqs[i] = request{key: k, arrival: t}
	}

	var (
		h            evHeap
		seq          int64
		freeWorkers  = cfg.Workers
		queue        []int // request indices, FIFO
		freeCompile  = cfg.CompileWorkers
		compileQueue []int // key indices, FIFO
		hist         stats.Histogram
		res          SimResult
		lastDone     int64
	)
	push := func(at int64, kind, req, key int) {
		seq++
		heap.Push(&h, ev{t: at, kind: kind, seq: seq, req: req, key: key})
	}
	for i := range reqs {
		push(reqs[i].arrival, evArrival, i, 0)
	}

	// service computes a dispatched request's busy time on its worker and
	// updates key warmth bookkeeping.
	service := func(ri int, now int64) int64 {
		k := &keys[reqs[ri].key]
		p := &cfg.Keys[k.prof]
		if k.warm || (k.warmAt > 0 && k.warmAt <= now) {
			k.warm = true
			return p.WarmCycles
		}
		if cfg.Async {
			// Compilation is off-path: run at Baseline, rehearse in the
			// background once per key.
			if !k.compileQueued {
				k.compileQueued = true
				if freeCompile > 0 {
					freeCompile--
					push(now+p.ColdCycles+p.CompileCycles, evCompileDone, 0, reqs[ri].key)
					res.CompileJobs++
				} else {
					compileQueue = append(compileQueue, reqs[ri].key)
				}
			}
			return p.BaselineCycles
		}
		if cfg.Coalesce && k.warmAt > now {
			// Follower: wait out the leader, then run warm.
			return (k.warmAt - now) + p.WarmCycles
		}
		// Cold leader: tier-up compiles run on the request path.
		svc := p.ColdCycles + p.CompileCycles
		k.warmAt = now + svc
		return svc
	}

	dispatch := func(ri int, now int64) {
		freeWorkers--
		reqs[ri].start = now
		push(now+service(ri, now), evDone, ri, 0)
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(ev)
		switch e.kind {
		case evArrival:
			if freeWorkers > 0 {
				dispatch(e.req, e.t)
			} else if len(queue) < cfg.QueueDepth {
				queue = append(queue, e.req)
			} else {
				res.Rejected++
			}
		case evDone:
			freeWorkers++
			res.Completed++
			lastDone = e.t
			hist.Record((e.t - reqs[e.req].arrival) / 1000) // cycles → µs
			k := &keys[reqs[e.req].key]
			if !cfg.Async && k.warmAt > 0 && k.warmAt <= e.t {
				k.warm = true
			}
			if len(queue) > 0 {
				ri := queue[0]
				queue = queue[1:]
				dispatch(ri, e.t)
			}
		case evCompileDone:
			keys[e.key].warm = true
			keys[e.key].warmAt = e.t
			if len(compileQueue) > 0 {
				nk := compileQueue[0]
				compileQueue = compileQueue[1:]
				p := &cfg.Keys[keys[nk].prof]
				push(e.t+p.ColdCycles+p.CompileCycles, evCompileDone, 0, nk)
				res.CompileJobs++
			} else {
				freeCompile++
			}
		}
	}

	res.P50 = hist.Quantile(0.50)
	res.P99 = hist.Quantile(0.99)
	res.P999 = hist.Quantile(0.999)
	res.MaxL = hist.Max()
	if lastDone > 0 {
		res.ThroughputQPS = float64(res.Completed) * CyclesPerSecond / float64(lastDone)
	}
	return res
}
