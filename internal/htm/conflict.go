package htm

import (
	"fmt"
	"sync"
)

// Cross-isolate conflict detection. The original model simulates a
// single-threaded JavaScript isolate, where transactions can never conflict;
// the shared-heap scenario class lets multiple isolates' hardware contexts
// race on mutable shared structures, so the HTM model grows the third abort
// family real hardware has: read/write-set conflicts, detected through cache
// coherence at cache-line granularity.
//
// A Domain is the coherence fabric connecting the hardware contexts of one
// shared-heap group. Each System attaches with a distinct owner id; while a
// transaction is open, every tracked line is registered in the domain's
// ownership table, and an access that collides with another context's
// footprint fails with a ConflictError. The policy is requester-loses: the
// context performing the conflicting access aborts itself, which is
// deterministic under the oracle's scheduled execution (the victim is always
// the context the scheduler chose to step).
//
// Conflict detection is coherence-based, not capacity-based: a lightweight
// rollback-only HTM that does not buffer its read footprint in cache tags
// still observes invalidations, so reads are conflict-tracked in a domain
// even when the configuration has no read-set capacity (ReadSets == 0). Such
// lines consume no capacity; they only participate in conflict detection.
//
// The domain also carries the software fallback lock. Transactions subscribe
// to it the way hardware lock elision does: an open transaction observing the
// lock held (at begin, at any shared access, or at commit) aborts with a
// conflict attributed to AttrLock, and the fallback path's writes kill every
// open transaction's speculation through the same ownership table.

// Attribution records which side of a conflict the surviving footprint held.
type Attribution uint8

const (
	// AttrNone marks a non-conflict (or an injected conflict with no real
	// opposing footprint).
	AttrNone Attribution = iota
	// AttrReader: the requester's write collided with a line another open
	// transaction holds in its read set.
	AttrReader
	// AttrWriter: the requester's access collided with a line another open
	// transaction holds in its write set.
	AttrWriter
	// AttrLock: the access observed the domain's software fallback lock held
	// (or a fallback writer invalidated the transaction's footprint).
	AttrLock
)

// String names the attribution.
func (a Attribution) String() string {
	switch a {
	case AttrNone:
		return "none"
	case AttrReader:
		return "reader"
	case AttrWriter:
		return "writer"
	case AttrLock:
		return "lock"
	}
	return "?"
}

// ConflictError signals that a transactional access collided with another
// hardware context's transactional footprint (or with the fallback lock).
type ConflictError struct {
	// Write reports whether the requester's access was a store.
	Write bool
	// Line is the conflicting cache line.
	Line uint64
	// With is the owner id of the opposing context (-1 for injected
	// conflicts and fallback-lock kills).
	With int
	// Attr tells whether the opposing context held the line as a reader or
	// a writer, or whether the fallback lock caused the kill.
	Attr Attribution
}

func (e *ConflictError) Error() string {
	kind := "load"
	if e.Write {
		kind = "store"
	}
	return fmt.Sprintf("htm: transactional %s conflicts on line %#x with context %d (%s)",
		kind, e.Line, e.With, e.Attr)
}

// ConflictProbe is consulted once per conflict-tracked cache line. Returning
// true forces a conflict abort for that access, as if a remote context owned
// the target line — the schedule-sweep oracle uses this to force a conflict
// at an arbitrary shared access. Production runs install none.
type ConflictProbe func(write bool, line uint64) bool

// lineState is one cache line's domain-wide transactional ownership.
type lineState struct {
	writer  int // owner id holding the line in a write set, or -1
	readers map[int]struct{}
}

// Domain is the coherence fabric shared by the hardware contexts of one
// shared-heap group.
//
// Locking discipline: the embedded mutex serializes whole executor steps, not
// individual method calls. The shared-section executor holds the lock across
// one atomic step (an access plus its footprint bookkeeping); acquire and
// release assume the caller holds it. This keeps the deterministic scheduled
// mode and the real-goroutine mode on the identical code path — the
// scheduler simply makes the lock uncontended.
type Domain struct {
	mu    sync.Mutex
	lines map[uint64]*lineState

	fallbackHeld  bool
	fallbackOwner int

	// Conflicts counts detected (non-injected) conflicts over the domain's
	// lifetime, for reports.
	Conflicts int64
	// FallbackAcquires counts software-lock acquisitions.
	FallbackAcquires int64
}

// NewDomain creates an empty conflict domain.
func NewDomain() *Domain {
	return &Domain{lines: make(map[uint64]*lineState)}
}

// Lock serializes one executor step. See the locking discipline note above.
func (d *Domain) Lock() { d.mu.Lock() }

// Unlock releases the step lock.
func (d *Domain) Unlock() { d.mu.Unlock() }

// FallbackHeld reports whether the software fallback lock is held. Caller
// must hold the domain lock.
func (d *Domain) FallbackHeld() bool { return d.fallbackHeld }

// AcquireFallback takes the software fallback lock for owner. It reports
// false (without blocking) when the lock is already held by another owner.
// Caller must hold the domain lock.
func (d *Domain) AcquireFallback(owner int) bool {
	if d.fallbackHeld {
		return false
	}
	d.fallbackHeld = true
	d.fallbackOwner = owner
	d.FallbackAcquires++
	return true
}

// ReleaseFallback drops the software fallback lock. Caller must hold the
// domain lock.
func (d *Domain) ReleaseFallback(owner int) {
	if !d.fallbackHeld || d.fallbackOwner != owner {
		panic("htm: fallback release without matching acquire")
	}
	d.fallbackHeld = false
}

// state returns (creating on demand) the ownership record for a line.
func (d *Domain) state(line uint64) *lineState {
	ls, ok := d.lines[line]
	if !ok {
		ls = &lineState{writer: -1}
		d.lines[line] = ls
	}
	return ls
}

// acquire registers owner's transactional access to line and detects
// conflicts with other contexts' footprints. Caller must hold the domain
// lock; requester-loses, so a non-nil error means the caller should abort
// its own transaction with AbortConflict.
func (d *Domain) acquire(owner int, line uint64, write bool) *ConflictError {
	if d.fallbackHeld && d.fallbackOwner != owner {
		return &ConflictError{Write: write, Line: line, With: -1, Attr: AttrLock}
	}
	ls := d.state(line)
	if ls.writer >= 0 && ls.writer != owner {
		d.Conflicts++
		return &ConflictError{Write: write, Line: line, With: ls.writer, Attr: AttrWriter}
	}
	if write {
		for r := range ls.readers {
			if r != owner {
				d.Conflicts++
				return &ConflictError{Write: true, Line: line, With: r, Attr: AttrReader}
			}
		}
		ls.writer = owner
		return nil
	}
	if ls.readers == nil {
		ls.readers = make(map[int]struct{}, 2)
	}
	ls.readers[owner] = struct{}{}
	return nil
}

// release drops every line owner holds in the given transaction's footprint.
// Caller must hold the domain lock.
func (d *Domain) release(owner int, t *Txn) {
	drop := func(line uint64) {
		ls, ok := d.lines[line]
		if !ok {
			return
		}
		if ls.writer == owner {
			ls.writer = -1
		}
		delete(ls.readers, owner)
		if ls.writer < 0 && len(ls.readers) == 0 {
			delete(d.lines, line)
		}
	}
	for line := range t.writeLines {
		drop(line)
	}
	for line := range t.readLines {
		drop(line)
	}
	for line := range t.conflictReads {
		drop(line)
	}
}

// AttachDomain joins the system to a conflict domain under the given owner
// id. Every open transaction's tracked lines then participate in
// cross-context conflict detection. Pass nil to detach.
func (s *System) AttachDomain(d *Domain, owner int) {
	s.domain = d
	s.owner = owner
}

// Domain returns the attached conflict domain (nil when detached).
func (s *System) Domain() *Domain { return s.domain }

// Owner returns the system's owner id within its domain.
func (s *System) Owner() int { return s.owner }

// SetConflictProbe installs (or clears, with nil) the forced-conflict probe.
func (s *System) SetConflictProbe(p ConflictProbe) { s.conflictProbe = p }
