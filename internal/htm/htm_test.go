package htm

import (
	"testing"
	"testing/quick"
)

func TestBeginCommit(t *testing.T) {
	s := New(ROTConfig())
	if s.InTx() {
		t.Fatal("no transaction should be open initially")
	}
	if !s.Begin("owner", "recover") {
		t.Fatal("first Begin must open the outermost transaction")
	}
	if !s.InTx() {
		t.Fatal("transaction should be open")
	}
	if s.Current().Owner != "owner" || s.Current().Recover != "recover" {
		t.Fatal("owner/recover not recorded")
	}
	outer, err := s.Commit()
	if err != nil || !outer {
		t.Fatalf("Commit = %v, %v", outer, err)
	}
	if s.InTx() {
		t.Fatal("transaction should be closed")
	}
	if s.Begins != 1 || s.Commits != 1 {
		t.Errorf("begins=%d commits=%d", s.Begins, s.Commits)
	}
}

func TestFlattenedNesting(t *testing.T) {
	s := New(ROTConfig())
	if !s.Begin(1, nil) {
		t.Fatal("outermost")
	}
	if s.Begin(2, nil) {
		t.Fatal("nested Begin must not open a new transaction")
	}
	if s.Current().Owner != 1 {
		t.Fatal("owner must stay the outermost frame")
	}
	if outer, _ := s.Commit(); outer {
		t.Fatal("inner commit must not retire the transaction")
	}
	if !s.InTx() {
		t.Fatal("still open after inner commit")
	}
	if outer, _ := s.Commit(); !outer {
		t.Fatal("outer commit must retire")
	}
	if s.Begins != 1 || s.Commits != 1 {
		t.Errorf("flattening miscounted: begins=%d commits=%d", s.Begins, s.Commits)
	}
}

func TestUndoLogRollsBackInReverse(t *testing.T) {
	s := New(ROTConfig())
	s.Begin(1, nil)
	var log []int
	s.RecordWrite(0, 8, func() { log = append(log, 1) })
	s.RecordWrite(64, 8, func() { log = append(log, 2) })
	s.RecordWrite(128, 8, func() { log = append(log, 3) })
	if err := s.Abort(AbortCheck); err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 || log[0] != 3 || log[1] != 2 || log[2] != 1 {
		t.Errorf("undo order = %v, want [3 2 1]", log)
	}
	if s.InTx() {
		t.Fatal("aborted transaction must be closed")
	}
	if s.Aborts[AbortCheck] != 1 {
		t.Error("abort cause not recorded")
	}
}

func TestAbortRollsBackNest(t *testing.T) {
	s := New(ROTConfig())
	s.Begin(1, nil)
	s.Begin(2, nil) // flattened
	ran := false
	s.RecordWrite(0, 8, func() { ran = true })
	if err := s.Abort(AbortCapacity); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("undo must run for the whole nest")
	}
	if s.InTx() {
		t.Error("whole nest must be gone")
	}
}

func TestWriteCapacityPerSet(t *testing.T) {
	cfg := ROTConfig()
	cfg.WriteSets = 4
	cfg.WriteWays = 2
	s := New(cfg)
	s.Begin(1, nil)
	// Lines 0, 4, 8 all map to set 0 (line % 4); ways = 2.
	if err := s.RecordWrite(0*64, 8, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordWrite(4*64, 8, func() {}); err != nil {
		t.Fatal(err)
	}
	err := s.RecordWrite(8*64, 8, func() {})
	if err == nil {
		t.Fatal("third line in a 2-way set must overflow")
	}
	ce, ok := err.(*CapacityError)
	if !ok || !ce.Write || ce.Set != 0 {
		t.Errorf("error = %#v", err)
	}
	// Different set still fits.
	if err := s.RecordWrite(1*64, 8, func() {}); err != nil {
		t.Errorf("set 1 should fit: %v", err)
	}
}

func TestReadTrackingOnlyRTM(t *testing.T) {
	rot := New(ROTConfig())
	rot.Begin(1, nil)
	for i := 0; i < 100000; i += 64 {
		if err := rot.RecordRead(uint64(i), 8); err != nil {
			t.Fatalf("ROT must not track reads: %v", err)
		}
	}
	rot.Commit()

	cfg := RTMConfig()
	cfg.ReadSets = 2
	cfg.ReadWays = 1
	rtm := New(cfg)
	rtm.Begin(1, nil)
	if err := rtm.RecordRead(0, 8); err != nil {
		t.Fatal(err)
	}
	if err := rtm.RecordRead(2*64, 8); err == nil {
		t.Fatal("RTM read set must overflow")
	}
}

func TestMultiLineWrite(t *testing.T) {
	s := New(ROTConfig())
	s.Begin(1, nil)
	// A 16-byte write straddling a line boundary occupies two lines.
	if err := s.RecordWrite(56, 16, func() {}); err != nil {
		t.Fatal(err)
	}
	if got := s.Current().WriteBytes(); got != 128 {
		t.Errorf("WriteBytes = %d, want 128 (two lines)", got)
	}
}

func TestSOF(t *testing.T) {
	s := New(ROTConfig())
	if !s.Config().HasSOF {
		t.Fatal("ROT has the SOF extension")
	}
	if RTMConfig().HasSOF {
		t.Fatal("RTM has no SOF (paper §VI-B)")
	}
	s.Begin(1, nil)
	if s.SOF() {
		t.Fatal("XBegin clears the SOF")
	}
	s.SetSOF()
	if !s.SOF() {
		t.Fatal("SOF should be set")
	}
	s.Abort(AbortSOF)
	if s.SOF() {
		t.Fatal("no transaction, no SOF")
	}
}

func TestFootprintStats(t *testing.T) {
	s := New(ROTConfig())
	s.Begin(1, nil)
	for i := 0; i < 10; i++ {
		s.RecordWrite(uint64(i*64), 8, func() {})
	}
	tx := s.Current()
	if tx.WriteBytes() != 640 {
		t.Errorf("WriteBytes = %d", tx.WriteBytes())
	}
	if tx.MaxWriteAssoc() != 1 {
		t.Errorf("MaxWriteAssoc = %d, want 1 (10 distinct sets)", tx.MaxWriteAssoc())
	}
	s.Commit()
	if s.MaxWrite != 640 {
		t.Errorf("MaxWrite = %d", s.MaxWrite)
	}
	if s.AvgCommittedWriteBytes() != 640 {
		t.Errorf("AvgCommittedWriteBytes = %d", s.AvgCommittedWriteBytes())
	}
}

func TestErrorsWithoutTransaction(t *testing.T) {
	s := New(ROTConfig())
	if _, err := s.Commit(); err != ErrNoTransaction {
		t.Error("Commit without tx must fail")
	}
	if err := s.Abort(AbortCheck); err != ErrNoTransaction {
		t.Error("Abort without tx must fail")
	}
	if err := s.RecordWrite(0, 8, func() {}); err != ErrNoTransaction {
		t.Error("RecordWrite without tx must fail")
	}
}

func TestAbortCauseStrings(t *testing.T) {
	for c, want := range map[AbortCause]string{
		AbortCheck: "check", AbortCapacity: "capacity",
		AbortSOF: "sticky-overflow", AbortIrrevocable: "irrevocable",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// Property: for any sequence of line writes (bounded so the 512x8 write set
// cannot overflow), WriteBytes equals 64 bytes per distinct line, and the
// undo log length equals the number of writes.
func TestQuickWriteSetAccounting(t *testing.T) {
	cfg := ROTConfig()
	f := func(lines []uint8) bool {
		s := New(cfg)
		s.Begin(1, nil)
		distinct := map[uint64]bool{}
		undos := 0
		for _, l := range lines {
			if err := s.RecordWrite(uint64(l)*64, 8, func() { undos++ }); err != nil {
				return false
			}
			distinct[uint64(l)] = true
		}
		if s.Current().WriteBytes() != int64(len(distinct))*64 {
			return false
		}
		s.Abort(AbortCheck)
		return undos == len(lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
