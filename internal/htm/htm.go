// Package htm simulates the two hardware transactional memories the paper
// evaluates (paper §V-A, §VI-A/B):
//
//   - Lightweight, rollback-only HTM modelled on IBM POWER8's ROT mode: only
//     the write footprint is tracked (it must fit the 256KB 8-way L2), commit
//     is a flash-clear of speculative-write bits (~5 cycles), transaction
//     begin costs a fence, and a Sticky Overflow Flag (SOF) is provided.
//
//   - Heavyweight Intel RTM: transactional writes must fit the 32KB 8-way
//     L1D, reads are also tracked and must fit the 256KB L2, commit stalls
//     for the write buffer (~13 cycles), in-transaction reads are ~20%
//     slower, and there is no SOF.
//
// A single JavaScript isolate is single-threaded, so its aborts are caused by
// failed checks, capacity overflow, SOF, or irrevocable events. The
// shared-heap scenario class additionally connects the hardware contexts of
// multiple isolates through a conflict Domain (see conflict.go), which adds
// the abort family real HTMs are built around: cross-context read/write-set
// conflicts detected through cache coherence at line granularity.
package htm

import (
	"errors"
	"fmt"
)

// Mode selects the HTM flavour.
type Mode uint8

const (
	// ModeROT is the lightweight rollback-only mode (IBM POWER8 ROT).
	ModeROT Mode = iota
	// ModeRTM is Intel's heavyweight Restricted Transactional Memory.
	ModeRTM
)

// Config describes the transactional capacity and timing model.
type Config struct {
	Mode Mode

	// Write-set capacity geometry (derived from the backing cache).
	WriteSets int
	WriteWays int
	// Read-set capacity geometry (RTM only; zero disables read tracking).
	ReadSets int
	ReadWays int

	LineSize int

	// BeginCycles models XBegin (the mfence the emulation platform uses).
	BeginCycles int64
	// CommitCycles models XEnd (flash-clear for ROT, drain for RTM).
	CommitCycles int64
	// ReadPenaltyNum/Den scale in-transaction read latency (RTM: 6/5).
	ReadPenaltyNum int64
	ReadPenaltyDen int64
	// HasSOF reports Sticky Overflow Flag support (ROT extension, §V-B).
	HasSOF bool
}

// ROTConfig is the paper's lightweight HTM: writes fit the 256KB 8-way L2,
// no read tracking, 5-cycle commit, SOF available.
func ROTConfig() Config {
	return Config{
		Mode:           ModeROT,
		WriteSets:      512, // 256KB / 64B / 8 ways
		WriteWays:      8,
		LineSize:       64,
		BeginCycles:    30,
		CommitCycles:   5,
		ReadPenaltyNum: 1,
		ReadPenaltyDen: 1,
		HasSOF:         true,
	}
}

// RTMConfig is Intel RTM: writes fit the 32KB 8-way L1D, reads fit the
// 256KB 8-way L2, 13-cycle commit, 20% read penalty, no SOF (paper §VI-B).
func RTMConfig() Config {
	return Config{
		Mode:           ModeRTM,
		WriteSets:      64, // 32KB / 64B / 8 ways
		WriteWays:      8,
		ReadSets:       512,
		ReadWays:       8,
		LineSize:       64,
		BeginCycles:    30,
		CommitCycles:   13,
		ReadPenaltyNum: 6,
		ReadPenaltyDen: 5,
		HasSOF:         false,
	}
}

// AbortCause classifies aborts (RTM exposes this via the abort code, which
// the runtime uses to pick a recovery strategy, paper §VI-B).
type AbortCause uint8

const (
	AbortCheck AbortCause = iota // converted SMP-guarding check failed
	AbortCapacity
	AbortSOF
	AbortIrrevocable // I/O or other irrevocable event
	// AbortConflict is a cross-context read/write-set conflict detected
	// through cache coherence (shared-heap mode only; a single-threaded
	// isolate can never see one). The ConflictError carried alongside the
	// abort attributes the kill to the opposing reader, writer, or the
	// software fallback lock.
	AbortConflict
	// NumAbortCauses sizes per-cause ledgers. It must stay in sync with
	// stats.NumAbortCauses (stats cannot import htm without a cycle).
	NumAbortCauses
)

// String names the cause.
func (c AbortCause) String() string {
	switch c {
	case AbortCheck:
		return "check"
	case AbortCapacity:
		return "capacity"
	case AbortSOF:
		return "sticky-overflow"
	case AbortIrrevocable:
		return "irrevocable"
	case AbortConflict:
		return "conflict"
	}
	return "?"
}

// ErrNoTransaction is returned for commit/abort without an open transaction.
var ErrNoTransaction = errors.New("htm: no open transaction")

// ErrIrrevocable is returned by the runtime when an irrevocable operation
// (I/O) is attempted inside a transaction; the machine aborts the
// transaction and the operation re-executes non-transactionally in the
// Baseline tier.
var ErrIrrevocable = errors.New("htm: irrevocable operation inside transaction")

// CapacityError signals that a transactional access overflowed the cache.
type CapacityError struct {
	Write bool
	Set   int
}

func (e *CapacityError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("htm: transactional %s footprint overflowed cache set %d", kind, e.Set)
}

// Txn is one open (possibly flat-nested) transaction.
type Txn struct {
	// Owner is an opaque token identifying the frame that opened the
	// outermost transaction of the nest; aborts unwind to it.
	Owner any
	// Recover is opaque recovery state (the machine stores the TxBegin's
	// stack map and value table here).
	Recover any

	depth      int
	writeLines map[uint64]struct{}
	writeSets  []uint8
	readLines  map[uint64]struct{}
	readSets   []uint8
	// conflictReads tracks loads for cross-context conflict detection when
	// the configuration has no read-set capacity (ROT): coherence still
	// observes invalidations even though no cache tags buffer the footprint.
	// Only populated while a Domain is attached.
	conflictReads map[uint64]struct{}
	undo          []func()
	sof           bool
}

// Depth returns the flat-nesting depth (1 for an outermost-only nest).
func (t *Txn) Depth() int { return t.depth }

// WriteBytes returns the write footprint in bytes.
func (t *Txn) WriteBytes() int64 { return int64(len(t.writeLines)) * 64 }

// WriteLines returns the number of distinct cache lines in the write set —
// the footprint unit capacity aborts are measured in, and the quantity the
// one-word boxed value representation shrinks.
func (t *Txn) WriteLines() int { return len(t.writeLines) }

// ReadBytes returns the tracked read footprint in bytes.
func (t *Txn) ReadBytes() int64 { return int64(len(t.readLines)) * 64 }

// MaxWriteAssoc returns the maximum number of transactional write lines
// mapping to a single cache set (Table IV column 3).
func (t *Txn) MaxWriteAssoc() int {
	m := uint8(0)
	for _, n := range t.writeSets {
		if n > m {
			m = n
		}
	}
	return int(m)
}

// CapacityProbe is consulted once per newly tracked cache line. Returning
// true forces a capacity overflow for that access, as if the target set were
// already full — the deterministic-fault-injection oracle uses this to abort
// a transaction at an arbitrary point of its write (or read) footprint.
// Production runs install none; the only cost is one nil check per new line.
type CapacityProbe func(write bool, line uint64) bool

// System is the HTM state for one simulated hardware context.
type System struct {
	cfg           Config
	txn           *Txn
	probe         CapacityProbe
	conflictProbe ConflictProbe

	// domain, when non-nil, joins this context to a cross-isolate conflict
	// domain under the given owner id (shared-heap mode).
	domain *Domain
	owner  int

	// Statistics over the system lifetime.
	Begins   int64
	Commits  int64
	Aborts   [NumAbortCauses]int64
	MaxWrite int64
	MaxRead  int64
	MaxAssoc int64
	// TotalCommittedWriteBytes accumulates footprints of committed
	// transactions for averaging (Table IV).
	TotalCommittedWriteBytes int64
}

// New creates an HTM system.
func New(cfg Config) *System { return &System{cfg: cfg} }

// Reset discards any open transaction and all lifetime statistics, returning
// the system to its post-New state. The capacity probe is kept, mirroring how
// the machine keeps its injector: instrumentation is the caller's to manage.
func (s *System) Reset() {
	s.txn = nil
	s.Begins, s.Commits = 0, 0
	s.Aborts = [NumAbortCauses]int64{}
	s.MaxWrite, s.MaxRead, s.MaxAssoc = 0, 0, 0
	s.TotalCommittedWriteBytes = 0
}

// Config returns the configuration.
func (s *System) Config() Config { return s.cfg }

// SetCapacityProbe installs (or clears, with nil) the capacity fault probe.
func (s *System) SetCapacityProbe(p CapacityProbe) { s.probe = p }

// InTx reports whether a transaction is open.
func (s *System) InTx() bool { return s.txn != nil }

// Current returns the open transaction, or nil.
func (s *System) Current() *Txn { return s.txn }

// Begin opens a transaction, or increments the nest depth when one is open
// (flattened nesting, paper §V-A). It returns true when this call opened the
// outermost transaction; only then are owner/recover recorded. XBegin clears
// the SOF (paper §V-B).
func (s *System) Begin(owner, recover any) bool {
	if s.txn != nil {
		s.txn.depth++
		return false
	}
	s.Begins++
	s.txn = &Txn{
		Owner:      owner,
		Recover:    recover,
		depth:      1,
		writeLines: make(map[uint64]struct{}, 64),
		writeSets:  make([]uint8, s.cfg.WriteSets),
	}
	if s.cfg.ReadSets > 0 {
		s.txn.readLines = make(map[uint64]struct{}, 256)
		s.txn.readSets = make([]uint8, s.cfg.ReadSets)
	}
	return true
}

// RecordWrite tracks a transactional store covering [addr, addr+size) and
// registers its undo action. A capacity overflow returns an error; the
// caller is expected to abort.
func (s *System) RecordWrite(addr uint64, size int, undo func()) error {
	t := s.txn
	if t == nil {
		return ErrNoTransaction
	}
	t.undo = append(t.undo, undo)
	first := addr / uint64(s.cfg.LineSize)
	last := (addr + uint64(size) - 1) / uint64(s.cfg.LineSize)
	for line := first; line <= last; line++ {
		if _, ok := t.writeLines[line]; ok {
			continue
		}
		set := int(line % uint64(s.cfg.WriteSets))
		if int(t.writeSets[set]) >= s.cfg.WriteWays {
			return &CapacityError{Write: true, Set: set}
		}
		if s.probe != nil && s.probe(true, line) {
			return &CapacityError{Write: true, Set: set}
		}
		if s.conflictProbe != nil && s.conflictProbe(true, line) {
			return &ConflictError{Write: true, Line: line, With: -1, Attr: AttrWriter}
		}
		if s.domain != nil {
			if ce := s.domain.acquire(s.owner, line, true); ce != nil {
				return ce
			}
		}
		t.writeLines[line] = struct{}{}
		t.writeSets[set]++
	}
	return nil
}

// RecordRead tracks a transactional load (RTM only; a no-op for ROT, whose
// hardware does not buffer the read footprint).
func (s *System) RecordRead(addr uint64, size int) error {
	t := s.txn
	if t == nil {
		return ErrNoTransaction
	}
	if t.readLines == nil {
		// No read-set capacity (ROT). Reads still participate in
		// cross-context conflict detection while a domain is attached:
		// coherence observes invalidations regardless of cache tagging.
		if s.domain == nil && s.conflictProbe == nil {
			return nil
		}
		first := addr / uint64(s.cfg.LineSize)
		last := (addr + uint64(size) - 1) / uint64(s.cfg.LineSize)
		for line := first; line <= last; line++ {
			if _, ok := t.conflictReads[line]; ok {
				continue
			}
			if _, ok := t.writeLines[line]; ok {
				continue
			}
			if s.conflictProbe != nil && s.conflictProbe(false, line) {
				return &ConflictError{Write: false, Line: line, With: -1, Attr: AttrWriter}
			}
			if s.domain != nil {
				if ce := s.domain.acquire(s.owner, line, false); ce != nil {
					return ce
				}
			}
			if t.conflictReads == nil {
				t.conflictReads = make(map[uint64]struct{}, 8)
			}
			t.conflictReads[line] = struct{}{}
		}
		return nil
	}
	first := addr / uint64(s.cfg.LineSize)
	last := (addr + uint64(size) - 1) / uint64(s.cfg.LineSize)
	for line := first; line <= last; line++ {
		if _, ok := t.readLines[line]; ok {
			continue
		}
		// Writes occupy L2 too under RTM; approximate by counting both.
		set := int(line % uint64(s.cfg.ReadSets))
		if int(t.readSets[set]) >= s.cfg.ReadWays {
			return &CapacityError{Write: false, Set: set}
		}
		if s.probe != nil && s.probe(false, line) {
			return &CapacityError{Write: false, Set: set}
		}
		if s.conflictProbe != nil && s.conflictProbe(false, line) {
			return &ConflictError{Write: false, Line: line, With: -1, Attr: AttrWriter}
		}
		if s.domain != nil {
			if ce := s.domain.acquire(s.owner, line, false); ce != nil {
				return ce
			}
		}
		t.readLines[line] = struct{}{}
		t.readSets[set]++
	}
	return nil
}

// SetSOF records a sticky overflow (arithmetic overflowed inside the
// transaction with its overflow check elided).
func (s *System) SetSOF() {
	if s.txn != nil {
		s.txn.sof = true
	}
}

// SOF reports the sticky overflow flag.
func (s *System) SOF() bool { return s.txn != nil && s.txn.sof }

// Commit closes one nesting level. Only the outermost commit retires the
// transaction; XEnd aborts instead if the SOF is set (paper §V-B) — the
// caller must check SOF first. Returns whether the outermost level
// committed.
func (s *System) Commit() (bool, error) {
	t := s.txn
	if t == nil {
		return false, ErrNoTransaction
	}
	t.depth--
	if t.depth > 0 {
		return false, nil
	}
	s.Commits++
	s.noteFootprint(t)
	s.TotalCommittedWriteBytes += t.WriteBytes()
	if s.domain != nil {
		s.domain.release(s.owner, t)
	}
	s.txn = nil
	return true, nil
}

// Abort rolls back the whole nest: undo actions run in reverse order, the
// transaction is discarded, and statistics are recorded.
func (s *System) Abort(cause AbortCause) error {
	t := s.txn
	if t == nil {
		return ErrNoTransaction
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	s.Aborts[cause]++
	s.noteFootprint(t)
	if s.domain != nil {
		s.domain.release(s.owner, t)
	}
	s.txn = nil
	return nil
}

func (s *System) noteFootprint(t *Txn) {
	if wb := t.WriteBytes(); wb > s.MaxWrite {
		s.MaxWrite = wb
	}
	if rb := t.ReadBytes(); rb > s.MaxRead {
		s.MaxRead = rb
	}
	if a := int64(t.MaxWriteAssoc()); a > s.MaxAssoc {
		s.MaxAssoc = a
	}
}

// TotalAborts sums aborts across causes.
func (s *System) TotalAborts() int64 {
	var t int64
	for _, n := range s.Aborts {
		t += n
	}
	return t
}

// AvgCommittedWriteBytes returns the mean committed write footprint.
func (s *System) AvgCommittedWriteBytes() int64 {
	if s.Commits == 0 {
		return 0
	}
	return s.TotalCommittedWriteBytes / s.Commits
}
