package htm

import "testing"

// Geometry pins against the paper's Table II: POWER8-style ROT tracks writes
// in a 256KB 8-way L2 with a 5-cycle flash-clear commit and the SOF
// extension; Intel RTM tracks writes in a 32KB 8-way L1D and reads in the
// 256KB L2, pays a 13-cycle commit drain and a 20% in-transaction read
// penalty, and has no SOF.

func TestROTGeometry(t *testing.T) {
	c := ROTConfig()
	if got := c.WriteSets * c.WriteWays * c.LineSize; got != 256<<10 {
		t.Errorf("ROT write capacity = %d bytes, want 256KB", got)
	}
	if c.WriteSets != 512 || c.WriteWays != 8 || c.LineSize != 64 {
		t.Errorf("ROT geometry = %d sets x %d ways x %dB, want 512x8x64B",
			c.WriteSets, c.WriteWays, c.LineSize)
	}
	if c.ReadSets != 0 || c.ReadWays != 0 {
		t.Errorf("ROT tracks reads (%dx%d), want none", c.ReadSets, c.ReadWays)
	}
	if c.CommitCycles != 5 {
		t.Errorf("ROT commit = %d cycles, want 5", c.CommitCycles)
	}
	if c.ReadPenaltyNum != 1 || c.ReadPenaltyDen != 1 {
		t.Errorf("ROT read penalty = %d/%d, want 1/1", c.ReadPenaltyNum, c.ReadPenaltyDen)
	}
	if !c.HasSOF {
		t.Error("ROT must provide the Sticky Overflow Flag")
	}
}

func TestRTMGeometry(t *testing.T) {
	c := RTMConfig()
	if got := c.WriteSets * c.WriteWays * c.LineSize; got != 32<<10 {
		t.Errorf("RTM write capacity = %d bytes, want 32KB", got)
	}
	if got := c.ReadSets * c.ReadWays * c.LineSize; got != 256<<10 {
		t.Errorf("RTM read capacity = %d bytes, want 256KB", got)
	}
	if c.WriteSets != 64 || c.WriteWays != 8 || c.ReadSets != 512 || c.ReadWays != 8 {
		t.Errorf("RTM geometry = w%dx%d r%dx%d, want w64x8 r512x8",
			c.WriteSets, c.WriteWays, c.ReadSets, c.ReadWays)
	}
	if c.CommitCycles != 13 {
		t.Errorf("RTM commit = %d cycles, want 13", c.CommitCycles)
	}
	if c.ReadPenaltyNum != 6 || c.ReadPenaltyDen != 5 {
		t.Errorf("RTM read penalty = %d/%d, want 6/5 (20%%)", c.ReadPenaltyNum, c.ReadPenaltyDen)
	}
	if c.HasSOF {
		t.Error("RTM must not provide a Sticky Overflow Flag (§VI-B)")
	}
}

// TestCapacityProbeForcesAbort covers the oracle's injection hook: a probe
// that fires on the nth newly tracked write line must surface as a genuine
// capacity error even though the geometric limit is not reached.
func TestCapacityProbeForcesAbort(t *testing.T) {
	s := New(ROTConfig())
	lines := 0
	s.SetCapacityProbe(func(write bool, line uint64) bool {
		if !write {
			return false
		}
		lines++
		return lines == 3
	})
	s.Begin(nil, nil)
	var err error
	for i := 0; err == nil && i < 10; i++ {
		err = s.RecordWrite(uint64(i*64), 8, func() {})
	}
	if err == nil {
		t.Fatal("probe did not force a capacity error")
	}
	if _, ok := err.(*CapacityError); !ok {
		t.Fatalf("got %T (%v), want *CapacityError", err, err)
	}
	if lines != 3 {
		t.Errorf("probe saw %d new lines before firing, want 3", lines)
	}
	if err := s.Abort(AbortCapacity); err != nil {
		t.Fatal(err)
	}
}
