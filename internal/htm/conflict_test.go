package htm

import (
	"errors"
	"testing"
)

// geometries returns the two hardware geometries of Table II; every conflict
// test runs against both, because conflict detection must be independent of
// capacity geometry (coherence-based) while still honouring each geometry's
// line size.
func geometries() map[string]Config {
	return map[string]Config{
		"ROT": ROTConfig(),
		"RTM": RTMConfig(),
	}
}

// line returns an address on cache line n for the given config.
func line(cfg Config, n uint64) uint64 { return n * uint64(cfg.LineSize) }

func mustBegin(t *testing.T, s *System) {
	t.Helper()
	if !s.Begin(nil, nil) {
		t.Fatal("Begin did not open an outermost transaction")
	}
}

// TestAbortCauseTaxonomy pins the exhaustive cause-code enumeration: every
// cause has a distinct name, the conflict cause is part of the ledger, and
// aborting under each cause lands in exactly its own slot — no conflation of
// non-capacity causes (the bug this taxonomy split fixes).
func TestAbortCauseTaxonomy(t *testing.T) {
	want := map[AbortCause]string{
		AbortCheck:       "check",
		AbortCapacity:    "capacity",
		AbortSOF:         "sticky-overflow",
		AbortIrrevocable: "irrevocable",
		AbortConflict:    "conflict",
	}
	if len(want) != int(NumAbortCauses) {
		t.Fatalf("taxonomy covers %d causes, NumAbortCauses = %d", len(want), NumAbortCauses)
	}
	seen := map[string]AbortCause{}
	for c, name := range want {
		got := c.String()
		if got != name {
			t.Errorf("cause %d: String() = %q, want %q", c, got, name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("cause name %q shared by %d and %d", got, prev, c)
		}
		seen[got] = c
	}

	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			s := New(cfg)
			for c := AbortCause(0); c < NumAbortCauses; c++ {
				mustBegin(t, s)
				if err := s.Abort(c); err != nil {
					t.Fatalf("abort(%v): %v", c, err)
				}
			}
			var total int64
			for c := AbortCause(0); c < NumAbortCauses; c++ {
				if s.Aborts[c] != 1 {
					t.Errorf("Aborts[%v] = %d, want exactly 1", c, s.Aborts[c])
				}
				total += s.Aborts[c]
			}
			if total != s.TotalAborts() {
				t.Errorf("per-cause ledger (%d) does not partition TotalAborts (%d)", total, s.TotalAborts())
			}
			if s.Begins != int64(NumAbortCauses) || s.Commits != 0 {
				t.Errorf("begins=%d commits=%d, want %d/0", s.Begins, s.Commits, NumAbortCauses)
			}
		})
	}
}

// TestConflictWriteWrite checks write/write conflicts: the second context to
// write a line aborts (requester-loses) with writer attribution and the
// first context's identity.
func TestConflictWriteWrite(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			d := NewDomain()
			a, b := New(cfg), New(cfg)
			a.AttachDomain(d, 0)
			b.AttachDomain(d, 1)
			d.Lock()
			defer d.Unlock()

			mustBegin(t, a)
			mustBegin(t, b)
			if err := a.RecordWrite(line(cfg, 7), 8, func() {}); err != nil {
				t.Fatalf("first write: %v", err)
			}
			err := b.RecordWrite(line(cfg, 7), 8, func() {})
			var ce *ConflictError
			if !errors.As(err, &ce) {
				t.Fatalf("second write: got %v, want ConflictError", err)
			}
			if !ce.Write || ce.Attr != AttrWriter || ce.With != 0 || ce.Line != 7 {
				t.Errorf("conflict = %+v, want write/writer/with=0/line=7", ce)
			}
		})
	}
}

// TestConflictReadWrite checks both directions of read/write conflicts and
// their attribution: writing a line another context has read attributes the
// kill to the reader; reading a line another context has written attributes
// it to the writer. Under ROT the reader's footprint is conflict-tracked even
// though the geometry buffers no read set.
func TestConflictReadWrite(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			d := NewDomain()
			a, b := New(cfg), New(cfg)
			a.AttachDomain(d, 0)
			b.AttachDomain(d, 1)
			d.Lock()
			defer d.Unlock()

			// Reader first, writer collides: reader attribution.
			mustBegin(t, a)
			mustBegin(t, b)
			if err := a.RecordRead(line(cfg, 3), 8); err != nil {
				t.Fatalf("read: %v", err)
			}
			var ce *ConflictError
			if err := b.RecordWrite(line(cfg, 3), 8, func() {}); !errors.As(err, &ce) {
				t.Fatalf("write after remote read: got %v, want ConflictError", err)
			} else if ce.Attr != AttrReader || ce.With != 0 {
				t.Errorf("conflict = %+v, want reader attribution with=0", ce)
			}
			if err := b.Abort(AbortConflict); err != nil {
				t.Fatal(err)
			}
			if err := a.Abort(AbortConflict); err != nil {
				t.Fatal(err)
			}

			// Writer first, reader collides: writer attribution.
			mustBegin(t, a)
			mustBegin(t, b)
			if err := a.RecordWrite(line(cfg, 4), 8, func() {}); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := b.RecordRead(line(cfg, 4), 8); !errors.As(err, &ce) {
				t.Fatalf("read after remote write: got %v, want ConflictError", err)
			} else if ce.Write || ce.Attr != AttrWriter || ce.With != 0 {
				t.Errorf("conflict = %+v, want load/writer attribution with=0", ce)
			}
		})
	}
}

// TestReadReadNoConflict checks that shared readers never conflict, at any
// count, and that commit releases the lines for later writers.
func TestReadReadNoConflict(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			d := NewDomain()
			systems := make([]*System, 4)
			for i := range systems {
				systems[i] = New(cfg)
				systems[i].AttachDomain(d, i)
			}
			d.Lock()
			defer d.Unlock()
			for _, s := range systems {
				mustBegin(t, s)
				if err := s.RecordRead(line(cfg, 9), 8); err != nil {
					t.Fatalf("shared read: %v", err)
				}
			}
			for _, s := range systems {
				if _, err := s.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			// All readers retired: a writer must now get the line.
			mustBegin(t, systems[0])
			if err := systems[0].RecordWrite(line(cfg, 9), 8, func() {}); err != nil {
				t.Fatalf("write after readers retired: %v", err)
			}
		})
	}
}

// TestConflictLineGranularity checks that detection is keyed by cache line
// under each geometry's line size: two accesses in the same line conflict
// regardless of byte offset; adjacent lines never do.
func TestConflictLineGranularity(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			d := NewDomain()
			a, b := New(cfg), New(cfg)
			a.AttachDomain(d, 0)
			b.AttachDomain(d, 1)
			d.Lock()
			defer d.Unlock()

			mustBegin(t, a)
			mustBegin(t, b)
			base := line(cfg, 11)
			if err := a.RecordWrite(base, 8, func() {}); err != nil {
				t.Fatal(err)
			}
			// Same line, last word: false sharing is a real conflict.
			var ce *ConflictError
			if err := b.RecordWrite(base+uint64(cfg.LineSize)-8, 8, func() {}); !errors.As(err, &ce) {
				t.Fatalf("same-line offset write: got %v, want ConflictError", err)
			}
			// Next line: no conflict.
			if err := b.RecordWrite(base+uint64(cfg.LineSize), 8, func() {}); err != nil {
				t.Fatalf("adjacent-line write: %v", err)
			}
		})
	}
}

// TestConflictReleaseOnAbortAndCommit checks the ownership table drains on
// both retirement paths; a leaked line would conflict forever.
func TestConflictReleaseOnAbortAndCommit(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			d := NewDomain()
			a, b := New(cfg), New(cfg)
			a.AttachDomain(d, 0)
			b.AttachDomain(d, 1)
			d.Lock()
			defer d.Unlock()

			for _, retire := range []string{"commit", "abort"} {
				mustBegin(t, a)
				if err := a.RecordWrite(line(cfg, 5), 8, func() {}); err != nil {
					t.Fatal(err)
				}
				if err := a.RecordRead(line(cfg, 6), 8); err != nil {
					t.Fatal(err)
				}
				if retire == "commit" {
					if _, err := a.Commit(); err != nil {
						t.Fatal(err)
					}
				} else if err := a.Abort(AbortConflict); err != nil {
					t.Fatal(err)
				}
				mustBegin(t, b)
				if err := b.RecordWrite(line(cfg, 5), 8, func() {}); err != nil {
					t.Fatalf("after %s, write-line still owned: %v", retire, err)
				}
				if err := b.RecordWrite(line(cfg, 6), 8, func() {}); err != nil {
					t.Fatalf("after %s, read-line still owned: %v", retire, err)
				}
				if err := b.Abort(AbortConflict); err != nil {
					t.Fatal(err)
				}
			}
			if len(d.lines) != 0 {
				t.Errorf("ownership table leaked %d lines", len(d.lines))
			}
		})
	}
}

// TestFallbackLockSubscription checks the lock-elision contract: a
// transaction touching shared state while the software fallback lock is held
// dies with lock attribution, and the lock is mutually exclusive.
func TestFallbackLockSubscription(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			d := NewDomain()
			a, b := New(cfg), New(cfg)
			a.AttachDomain(d, 0)
			b.AttachDomain(d, 1)
			d.Lock()
			defer d.Unlock()

			if !d.AcquireFallback(0) {
				t.Fatal("fresh fallback lock not acquirable")
			}
			if d.AcquireFallback(1) {
				t.Fatal("fallback lock double-acquired")
			}
			mustBegin(t, b)
			var ce *ConflictError
			if err := b.RecordWrite(line(cfg, 2), 8, func() {}); !errors.As(err, &ce) {
				t.Fatalf("write under held lock: got %v, want ConflictError", err)
			} else if ce.Attr != AttrLock {
				t.Errorf("attribution = %v, want lock", ce.Attr)
			}
			if err := b.RecordRead(line(cfg, 2), 8); !errors.As(err, &ce) {
				t.Fatalf("read under held lock: got %v, want ConflictError", err)
			}
			if err := b.Abort(AbortConflict); err != nil {
				t.Fatal(err)
			}
			d.ReleaseFallback(0)
			if !d.AcquireFallback(1) {
				t.Fatal("fallback lock not re-acquirable after release")
			}
			d.ReleaseFallback(1)
			if d.FallbackAcquires != 2 {
				t.Errorf("FallbackAcquires = %d, want 2", d.FallbackAcquires)
			}
		})
	}
}

// TestConflictProbe checks the oracle's forced-conflict hook fires for both
// access kinds and reports an injected (ownerless) conflict.
func TestConflictProbe(t *testing.T) {
	for name, cfg := range geometries() {
		t.Run(name, func(t *testing.T) {
			s := New(cfg)
			target := line(cfg, 13)
			s.SetConflictProbe(func(write bool, l uint64) bool { return l == 13 })
			mustBegin(t, s)
			var ce *ConflictError
			if err := s.RecordWrite(target, 8, func() {}); !errors.As(err, &ce) {
				t.Fatalf("probed write: got %v, want ConflictError", err)
			} else if ce.With != -1 {
				t.Errorf("injected conflict reports owner %d, want -1", ce.With)
			}
			if err := s.Abort(AbortConflict); err != nil {
				t.Fatal(err)
			}
			mustBegin(t, s)
			if err := s.RecordRead(target, 8); !errors.As(err, &ce) {
				t.Fatalf("probed read: got %v, want ConflictError", err)
			}
			if err := s.Abort(AbortConflict); err != nil {
				t.Fatal(err)
			}
			if s.Aborts[AbortConflict] != 2 {
				t.Errorf("Aborts[conflict] = %d, want 2", s.Aborts[AbortConflict])
			}
		})
	}
}

// TestConflictCapacityInteraction checks that a domain-attached ROT context
// pays no read-set capacity for conflict-tracked reads, while an RTM context
// still enforces its read geometry — the conflict layer must not change
// Table II capacity rules.
func TestConflictCapacityInteraction(t *testing.T) {
	rot := ROTConfig()
	d := NewDomain()
	s := New(rot)
	s.AttachDomain(d, 0)
	d.Lock()
	mustBegin(t, s)
	// Far beyond any read geometry: ROT must absorb it (no read capacity).
	for i := uint64(0); i < 10000; i++ {
		if err := s.RecordRead(i*uint64(rot.LineSize), 8); err != nil {
			t.Fatalf("ROT conflict-tracked read %d: %v", i, err)
		}
	}
	if got := s.Current().ReadBytes(); got != 0 {
		t.Errorf("ROT read footprint = %d bytes, want 0 (conflict tracking is capacity-free)", got)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	d.Unlock()

	rtm := RTMConfig()
	d2 := NewDomain()
	s2 := New(rtm)
	s2.AttachDomain(d2, 0)
	d2.Lock()
	defer d2.Unlock()
	mustBegin(t, s2)
	// One set's worth of same-set lines plus one must still overflow.
	var err error
	for i := 0; i <= rtm.ReadWays; i++ {
		addr := uint64(i*rtm.ReadSets) * uint64(rtm.LineSize)
		if err = s2.RecordRead(addr, 8); err != nil {
			break
		}
	}
	var capErr *CapacityError
	if !errors.As(err, &capErr) || capErr.Write {
		t.Fatalf("RTM read overflow with domain attached: got %v, want read CapacityError", err)
	}
}
