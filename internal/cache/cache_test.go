package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	l1 := L1DConfig()
	if l1.Sets() != 64 {
		t.Errorf("L1D sets = %d, want 64", l1.Sets())
	}
	l2 := L2Config()
	if l2.Sets() != 512 {
		t.Errorf("L2 sets = %d, want 512", l2.Sets())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(L1DConfig())
	if c.Access(0x1000) {
		t.Error("first access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access must hit")
	}
	if !c.Access(0x1038) {
		t.Error("same 64B line must hit")
	}
	if c.Access(0x1040) {
		t.Error("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SizeBytes: 8 * 64, Ways: 8, LineSize: 64}) // 1 set, 8 ways
	// Fill 8 ways.
	for i := 0; i < 8; i++ {
		c.Access(uint64(i * 64))
	}
	// Touch line 0 so it is MRU.
	if !c.Access(0) {
		t.Fatal("line 0 should hit")
	}
	// A 9th line evicts the LRU (line 1).
	c.Access(8 * 64)
	if !c.Access(0) {
		t.Error("line 0 (MRU) should survive")
	}
	if c.Access(1 * 64) {
		t.Error("line 1 (LRU) should have been evicted")
	}
}

func TestSetIndexing(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 2 * 64, Ways: 2, LineSize: 64}) // 2 sets, 2 ways
	// Lines 0, 2, 4 map to set 0; lines 1, 3 to set 1.
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(1 * 64)
	if !c.Access(0*64) || !c.Access(2*64) || !c.Access(1*64) {
		t.Fatal("all three should be resident")
	}
	c.Access(4 * 64) // evicts LRU of set 0 (line 0 — wait: 0 was re-touched)
	if !c.Access(1 * 64) {
		t.Error("set 1 must be untouched by set 0 evictions")
	}
}

func TestReset(t *testing.T) {
	c := New(L1DConfig())
	c.Access(0x40)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("stats must clear")
	}
	if c.Access(0x40) {
		t.Error("contents must clear")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	if lat := h.Access(0x9000); lat != h.MemPenalty {
		t.Errorf("cold access latency = %d, want %d", lat, h.MemPenalty)
	}
	if lat := h.Access(0x9000); lat != 0 {
		t.Errorf("L1 hit latency = %d, want 0", lat)
	}
	// Evict from L1 by touching 9 lines in the same L1 set (stride = sets *
	// linesize = 64*64 = 4096), but keep them in L2 (512 sets).
	for i := 1; i <= 8; i++ {
		h.Access(uint64(0x9000 + i*64*64*8)) // also same L2 set every 512 lines? use distinct
	}
	_ = h
}

// Property: hit+miss counts always equal accesses, and re-access of the most
// recent address always hits.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{SizeBytes: 4 * 4 * 64, Ways: 4, LineSize: 64})
		n := int64(0)
		for _, a := range addrs {
			c.Access(uint64(a))
			n++
			if !c.Access(uint64(a)) { // immediate re-access must hit
				return false
			}
			n++
		}
		return c.Hits+c.Misses == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
