// Package cache simulates the evaluation machine's data-cache hierarchy
// (paper §VI: Skylake i7 — 32KB 8-way L1D, 256KB 8-way L2, 64-byte lines).
// The FTL tier's memory operations are charged hit/miss latencies from this
// model, and the HTM simulator derives its capacity rules from the same
// geometry.
package cache

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	LineSize  int
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineSize * c.Ways) }

// L1DConfig is the evaluation machine's 32KB 8-way L1 data cache.
func L1DConfig() Config { return Config{SizeBytes: 32 << 10, Ways: 8, LineSize: 64} }

// L2Config is the evaluation machine's 256KB 8-way L2 cache.
func L2Config() Config { return Config{SizeBytes: 256 << 10, Ways: 8, LineSize: 64} }

// Cache is one set-associative level with LRU replacement.
type Cache struct {
	cfg   Config
	sets  [][]uint64 // per set: line tags, most-recently-used first
	shift uint
	mask  uint64

	Hits   int64
	Misses int64
}

// New creates a cache.
func New(cfg Config) *Cache {
	n := cfg.Sets()
	c := &Cache{cfg: cfg, sets: make([][]uint64, n), mask: uint64(n - 1)}
	sh := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		sh++
	}
	c.shift = sh
	return c
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// setIndex maps a line address to its set.
func (c *Cache) setIndex(line uint64) uint64 { return line & c.mask }

// LineOf returns the line address of a byte address.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.shift }

// Access touches addr, returning whether it hit. Misses install the line,
// evicting LRU.
func (c *Cache) Access(addr uint64) bool {
	line := c.LineOf(addr)
	set := c.sets[c.setIndex(line)]
	for i, tag := range set {
		if tag == line {
			// Move to front (LRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.Hits++
			return true
		}
	}
	c.Misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[c.setIndex(line)] = set
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Hits, c.Misses = 0, 0
}

// Hierarchy is the two-level data hierarchy with the paper's latency model:
// L1 hits are covered by the base instruction cost; L1 misses that hit L2
// add L2Penalty cycles; L2 misses add MemPenalty cycles.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	// Latencies in cycles beyond the base op cost.
	L2Penalty  int64
	MemPenalty int64
}

// NewHierarchy builds the evaluation machine's hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:         New(L1DConfig()),
		L2:         New(L2Config()),
		L2Penalty:  10,
		MemPenalty: 40,
	}
}

// Access simulates one data access and returns the extra latency in cycles.
func (h *Hierarchy) Access(addr uint64) int64 {
	if h.L1.Access(addr) {
		return 0
	}
	if h.L2.Access(addr) {
		return h.L2Penalty
	}
	return h.MemPenalty
}

// Reset clears both levels.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
}
