package cache

import "testing"

// one-set geometry: every line maps to set 0, so eviction order is the pure
// LRU order with no set-index interference.
func oneSet(ways int) Config { return Config{SizeBytes: ways * 64, Ways: ways, LineSize: 64} }

// TestEvictionOrder pins the exact victim sequence: lines are evicted in
// least-recently-USED order (not insertion order), one per overflowing
// access, and touching a resident line reorders the queue. After the fill
// 0,1,2,3 and touches of 1 then 0 the recency order (MRU first) is 0,1,3,2,
// so successive overflows must evict 2, then 3, then 1, then 0.
func TestEvictionOrder(t *testing.T) {
	victims := []uint64{2, 3, 1, 0}
	for n := range victims {
		// Fresh cache per step: probing mutates LRU state, so each victim
		// count gets its own reconstruction of the schedule.
		c := New(oneSet(4))
		for i := 0; i < 4; i++ {
			c.Access(uint64(i * 64))
		}
		c.Access(1 * 64)
		c.Access(0 * 64)
		for k := 0; k <= n; k++ {
			if c.Access(uint64((10 + k) * 64)) {
				t.Fatalf("overflow line %d must miss", 10+k)
			}
		}
		// Probe survivors first (hits keep them resident), evicted lines
		// last (each such probe must miss regardless of the reinstalls the
		// earlier probes caused, since all probed lines are distinct).
		for _, l := range []uint64{0, 1, 2, 3} {
			if !contains(victims[:n+1], l) && !c.Access(l*64) {
				t.Errorf("after %d overflows line %d should survive", n+1, l)
			}
		}
		for _, l := range victims[:n+1] {
			if c.Access(l * 64) {
				t.Errorf("after %d overflows line %d should be evicted", n+1, l)
			}
		}
	}
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestCapacityOne: a direct-mapped single-line cache must thrash on
// alternation and hit on repetition — the degenerate geometry that breaks
// off-by-one bugs in way handling.
func TestCapacityOne(t *testing.T) {
	c := New(oneSet(1))
	if c.Access(0) {
		t.Fatal("cold miss expected")
	}
	if !c.Access(0) {
		t.Fatal("repeat must hit")
	}
	if c.Access(64) {
		t.Fatal("conflicting line must miss")
	}
	if c.Access(0) {
		t.Fatal("original line must have been evicted")
	}
	if !c.Access(0) {
		t.Fatal("re-installed line must hit")
	}
	if c.Hits != 2 || c.Misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", c.Hits, c.Misses)
	}
}

// TestReuseAfterReset: a Reset cache must behave access-for-access like a
// brand new one — same hit/miss sequence, same counters — so recycled
// isolates (which Reset their machine state) are indistinguishable from
// fresh ones.
func TestReuseAfterReset(t *testing.T) {
	trace := []uint64{0, 64, 128, 0, 192, 256, 64, 0, 320, 128}
	run := func(c *Cache) (string, int64, int64) {
		var pattern []byte
		for _, a := range trace {
			if c.Access(a) {
				pattern = append(pattern, 'H')
			} else {
				pattern = append(pattern, 'M')
			}
		}
		return string(pattern), c.Hits, c.Misses
	}

	fresh := New(oneSet(4))
	wantPattern, wantHits, wantMisses := run(fresh)

	used := New(oneSet(4))
	for i := 0; i < 100; i++ {
		used.Access(uint64(i * 64))
	}
	used.Reset()
	if used.Hits != 0 || used.Misses != 0 {
		t.Fatal("Reset must clear statistics")
	}
	gotPattern, gotHits, gotMisses := run(used)
	if gotPattern != wantPattern || gotHits != wantHits || gotMisses != wantMisses {
		t.Fatalf("reset cache diverges from fresh: %s (%d/%d) vs %s (%d/%d)",
			gotPattern, gotHits, gotMisses, wantPattern, wantHits, wantMisses)
	}
}
