package ast

import "testing"

func TestPositionString(t *testing.T) {
	p := Position{Line: 3, Col: 14}
	if p.String() != "3:14" {
		t.Errorf("Position.String() = %q", p.String())
	}
}

func TestNodePositions(t *testing.T) {
	p := Position{Line: 7, Col: 2}
	nodes := []Node{
		&VarDecl{P: p},
		&FunctionDecl{P: p},
		&ExprStmt{P: p},
		&BlockStmt{P: p},
		&IfStmt{P: p},
		&WhileStmt{P: p},
		&DoWhileStmt{P: p},
		&ForStmt{P: p},
		&SwitchStmt{P: p},
		&ReturnStmt{P: p},
		&BreakStmt{P: p},
		&ContinueStmt{P: p},
		&NumberLit{P: p},
		&StringLit{P: p},
		&BoolLit{P: p},
		&NullLit{P: p},
		&UndefinedLit{P: p},
		&Ident{P: p},
		&ArrayLit{P: p},
		&ObjectLit{P: p},
		&FunctionLiteral{P: p},
		&Unary{P: p},
		&Update{P: p},
		&Binary{P: p},
		&Logical{P: p},
		&Assign{P: p},
		&Conditional{P: p},
		&Member{P: p},
		&Index{P: p},
		&Call{P: p},
	}
	for _, n := range nodes {
		if n.Pos() != p {
			t.Errorf("%T.Pos() = %v", n, n.Pos())
		}
	}
}

// Statements and expressions must satisfy their marker interfaces (compile
// guarantees, spelled out so the contract is explicit).
var (
	_ Stmt = (*VarDecl)(nil)
	_ Stmt = (*SwitchStmt)(nil)
	_ Stmt = (*ForStmt)(nil)
	_ Expr = (*Binary)(nil)
	_ Expr = (*Call)(nil)
	_ Expr = (*FunctionLiteral)(nil)
)
