// Package ast defines the abstract syntax tree of the JavaScript subset the
// engine executes: the dynamically typed, prototype-free core that the
// SunSpider/Kraken-style workloads are written in.
package ast

import "fmt"

// Node is implemented by every AST node.
type Node interface {
	Pos() Position
	node()
}

// Position locates a node in its source file.
type Position struct {
	Line, Col int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	expr()
}

// Program is a parsed source file.
type Program struct {
	Body []Stmt
}

// --- Statements ---

// VarDecl declares one or more variables: var a = 1, b;
type VarDecl struct {
	P     Position
	Names []string
	Inits []Expr // nil entry means no initializer
}

// FunctionDecl declares a named function.
type FunctionDecl struct {
	P  Position
	Fn *FunctionLiteral
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	P Position
	X Expr
}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	P    Position
	Body []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	P    Position
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	P    Position
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	P    Position
	Body Stmt
	Cond Expr
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	P    Position
	Init Stmt // VarDecl or ExprStmt or nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// SwitchStmt is switch (disc) { case e: stmts ... default: stmts }.
// Cases fall through unless terminated by break, as in JavaScript.
type SwitchStmt struct {
	P    Position
	Disc Expr
	// Cases holds one entry per case clause; a nil Test marks default.
	Cases []SwitchCase
}

// SwitchCase is one case (or default) clause.
type SwitchCase struct {
	Test Expr // nil for default
	Body []Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	P Position
	X Expr // may be nil
}

// BreakStmt exits the enclosing loop.
type BreakStmt struct{ P Position }

// ContinueStmt continues the enclosing loop.
type ContinueStmt struct{ P Position }

// --- Expressions ---

// NumberLit is a numeric literal.
type NumberLit struct {
	P     Position
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	P     Position
	Value string
}

// BoolLit is true or false.
type BoolLit struct {
	P     Position
	Value bool
}

// NullLit is null.
type NullLit struct{ P Position }

// UndefinedLit is undefined.
type UndefinedLit struct{ P Position }

// Ident is a variable reference.
type Ident struct {
	P    Position
	Name string
}

// ArrayLit is [e0, e1, ...].
type ArrayLit struct {
	P     Position
	Elems []Expr
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	P      Position
	Keys   []string
	Values []Expr
}

// FunctionLiteral is a function expression or the body of a declaration.
type FunctionLiteral struct {
	P      Position
	Name   string // "" for anonymous
	Params []string
	Body   *BlockStmt
}

// Unary is a prefix operator: - + ! ~ typeof.
type Unary struct {
	P  Position
	Op string
	X  Expr
}

// Update is ++x, --x, x++, x--.
type Update struct {
	P      Position
	Op     string // "++" or "--"
	Prefix bool
	X      Expr // Ident, Member, or Index
}

// Binary is a binary operator (arithmetic, bitwise, comparison, equality).
type Binary struct {
	P    Position
	Op   string
	L, R Expr
}

// Logical is && or || (short-circuiting).
type Logical struct {
	P    Position
	Op   string
	L, R Expr
}

// Assign is target = value or a compound assignment (op is "" for plain =).
type Assign struct {
	P      Position
	Op     string // "", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>"
	Target Expr   // Ident, Member, or Index
	Value  Expr
}

// Conditional is c ? a : b.
type Conditional struct {
	P          Position
	Cond, A, B Expr
}

// Member is x.name.
type Member struct {
	P    Position
	X    Expr
	Name string
}

// Index is x[i].
type Index struct {
	P    Position
	X, I Expr
}

// Call is f(args) or receiver.method(args).
type Call struct {
	P      Position
	Callee Expr
	Args   []Expr
	IsNew  bool
}

func (n *VarDecl) Pos() Position         { return n.P }
func (n *FunctionDecl) Pos() Position    { return n.P }
func (n *ExprStmt) Pos() Position        { return n.P }
func (n *BlockStmt) Pos() Position       { return n.P }
func (n *IfStmt) Pos() Position          { return n.P }
func (n *WhileStmt) Pos() Position       { return n.P }
func (n *DoWhileStmt) Pos() Position     { return n.P }
func (n *ForStmt) Pos() Position         { return n.P }
func (n *SwitchStmt) Pos() Position      { return n.P }
func (n *ReturnStmt) Pos() Position      { return n.P }
func (n *BreakStmt) Pos() Position       { return n.P }
func (n *ContinueStmt) Pos() Position    { return n.P }
func (n *NumberLit) Pos() Position       { return n.P }
func (n *StringLit) Pos() Position       { return n.P }
func (n *BoolLit) Pos() Position         { return n.P }
func (n *NullLit) Pos() Position         { return n.P }
func (n *UndefinedLit) Pos() Position    { return n.P }
func (n *Ident) Pos() Position           { return n.P }
func (n *ArrayLit) Pos() Position        { return n.P }
func (n *ObjectLit) Pos() Position       { return n.P }
func (n *FunctionLiteral) Pos() Position { return n.P }
func (n *Unary) Pos() Position           { return n.P }
func (n *Update) Pos() Position          { return n.P }
func (n *Binary) Pos() Position          { return n.P }
func (n *Logical) Pos() Position         { return n.P }
func (n *Assign) Pos() Position          { return n.P }
func (n *Conditional) Pos() Position     { return n.P }
func (n *Member) Pos() Position          { return n.P }
func (n *Index) Pos() Position           { return n.P }
func (n *Call) Pos() Position            { return n.P }

func (*VarDecl) node()         {}
func (*FunctionDecl) node()    {}
func (*ExprStmt) node()        {}
func (*BlockStmt) node()       {}
func (*IfStmt) node()          {}
func (*WhileStmt) node()       {}
func (*DoWhileStmt) node()     {}
func (*ForStmt) node()         {}
func (*SwitchStmt) node()      {}
func (*ReturnStmt) node()      {}
func (*BreakStmt) node()       {}
func (*ContinueStmt) node()    {}
func (*NumberLit) node()       {}
func (*StringLit) node()       {}
func (*BoolLit) node()         {}
func (*NullLit) node()         {}
func (*UndefinedLit) node()    {}
func (*Ident) node()           {}
func (*ArrayLit) node()        {}
func (*ObjectLit) node()       {}
func (*FunctionLiteral) node() {}
func (*Unary) node()           {}
func (*Update) node()          {}
func (*Binary) node()          {}
func (*Logical) node()         {}
func (*Assign) node()          {}
func (*Conditional) node()     {}
func (*Member) node()          {}
func (*Index) node()           {}
func (*Call) node()            {}

func (*VarDecl) stmt()      {}
func (*FunctionDecl) stmt() {}
func (*ExprStmt) stmt()     {}
func (*BlockStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*SwitchStmt) stmt()   {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

func (*NumberLit) expr()       {}
func (*StringLit) expr()       {}
func (*BoolLit) expr()         {}
func (*NullLit) expr()         {}
func (*UndefinedLit) expr()    {}
func (*Ident) expr()           {}
func (*ArrayLit) expr()        {}
func (*ObjectLit) expr()       {}
func (*FunctionLiteral) expr() {}
func (*Unary) expr()           {}
func (*Update) expr()          {}
func (*Binary) expr()          {}
func (*Logical) expr()         {}
func (*Assign) expr()          {}
func (*Conditional) expr()     {}
func (*Member) expr()          {}
func (*Index) expr()           {}
func (*Call) expr()            {}
