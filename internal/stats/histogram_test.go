package stats

import (
	"math"
	"testing"
)

// Bucketing must be monotone and bound relative error at 2^-subBits.
func TestHistogramBucketBounds(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = i
		low := bucketLow(i)
		if low > v {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", i, low, v)
		}
		if v >= histSubs {
			rel := float64(v-low) / float64(v)
			if rel > 1.0/float64(histSubs)+1e-9 {
				t.Fatalf("value %d: relative error %.4f exceeds bound", v, rel)
			}
		} else if low != v {
			t.Fatalf("linear range must be exact: value %d got low %d", v, low)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000: p50 ≈ 500, p99 ≈ 990, p999 ≈ 999, within one bucket width.
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	check := func(q float64, want int64) {
		got := h.Quantile(q)
		lo := want - want/histSubs - 1
		if got < lo || got > want {
			t.Errorf("q=%.3f: got %d, want within [%d, %d]", q, got, lo, want)
		}
	}
	check(0.50, 500)
	check(0.99, 990)
	check(0.999, 999)
	if h.Quantile(1) != 1000 {
		t.Errorf("q=1 must return exact max, got %d", h.Quantile(1))
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram must return 0")
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	var a, b, all Histogram
	for i := int64(0); i < 500; i++ {
		v := (i*2654435761 + 17) % 100000
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	if merged != all {
		t.Error("merge of split halves must equal combined histogram")
	}
}

// The sliding window must forget old observations: after a latency spike
// ages out, the p99 estimate returns to the steady-state level.
func TestLatencyWindowForgetsSpike(t *testing.T) {
	w := NewLatencyWindow(64)
	for i := 0; i < 64; i++ {
		w.Record(1000000) // spike generation
	}
	if p := w.Quantile(0.99); p < 900000 {
		t.Fatalf("spike not visible: p99=%d", p)
	}
	// 4 full generations of steady traffic push the spike out of the ring.
	for i := 0; i < 64*4; i++ {
		w.Record(100)
	}
	if p := w.Quantile(0.99); p > 200 {
		t.Errorf("spike did not age out: p99=%d", p)
	}
}
