package stats

import "testing"

func TestAddInstrAndTotals(t *testing.T) {
	var c Counters
	c.AddInstr(NoFTL, 10)
	c.AddInstr(NoTM, 20)
	c.AddInstr(TMUnopt, 30)
	c.AddInstr(TMOpt, 40)
	if c.TotalInstr() != 100 {
		t.Errorf("TotalInstr = %d", c.TotalInstr())
	}
	if c.Instr[TMOpt] != 40 {
		t.Errorf("TMOpt = %d", c.Instr[TMOpt])
	}
}

func TestAddCyclesSplit(t *testing.T) {
	var c Counters
	c.AddCycles(7, true)
	c.AddCycles(5, false)
	if c.CyclesTM != 7 || c.CyclesNonTM != 5 || c.TotalCycles() != 12 {
		t.Errorf("cycles: tm=%d nontm=%d", c.CyclesTM, c.CyclesNonTM)
	}
}

func TestChecks(t *testing.T) {
	var c Counters
	c.AddCheck(CheckBounds)
	c.AddCheck(CheckBounds)
	c.AddCheck(CheckOverflow)
	if c.Checks[CheckBounds] != 2 || c.TotalChecks() != 3 {
		t.Errorf("checks = %v", c.Checks)
	}
}

func TestAddMergesAndMaxes(t *testing.T) {
	a := Counters{TxWriteBytesMax: 100, TxMaxAssoc: 2}
	b := Counters{TxWriteBytesMax: 50, TxMaxAssoc: 5}
	a.AddInstr(NoFTL, 1)
	b.AddInstr(NoFTL, 2)
	a.TxCommits, b.TxCommits = 3, 4
	a.Add(&b)
	if a.Instr[NoFTL] != 3 {
		t.Errorf("summed instr = %d", a.Instr[NoFTL])
	}
	if a.TxCommits != 7 {
		t.Errorf("summed commits = %d", a.TxCommits)
	}
	if a.TxWriteBytesMax != 100 {
		t.Errorf("max footprint = %d (must take max, not sum)", a.TxWriteBytesMax)
	}
	if a.TxMaxAssoc != 5 {
		t.Errorf("max assoc = %d", a.TxMaxAssoc)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddInstr(TMOpt, 5)
	c.Deopts = 9
	c.Reset()
	if c.TotalInstr() != 0 || c.Deopts != 0 {
		t.Error("reset must zero everything")
	}
}

func TestLabels(t *testing.T) {
	if NoFTL.String() != "NoFTL" || TMOpt.String() != "TMOpt" {
		t.Error("instruction class labels wrong")
	}
	if CheckBounds.String() != "Bounds" || CheckOther.String() != "Other" {
		t.Error("check class labels wrong")
	}
}
