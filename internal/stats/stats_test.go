package stats

import "testing"

func TestAddInstrAndTotals(t *testing.T) {
	var c Counters
	c.AddInstr(NoFTL, 10)
	c.AddInstr(NoTM, 20)
	c.AddInstr(TMUnopt, 30)
	c.AddInstr(TMOpt, 40)
	if c.TotalInstr() != 100 {
		t.Errorf("TotalInstr = %d", c.TotalInstr())
	}
	if c.Instr[TMOpt] != 40 {
		t.Errorf("TMOpt = %d", c.Instr[TMOpt])
	}
}

func TestAddCyclesSplit(t *testing.T) {
	var c Counters
	c.AddCycles(7, true)
	c.AddCycles(5, false)
	if c.CyclesTM != 7 || c.CyclesNonTM != 5 || c.TotalCycles() != 12 {
		t.Errorf("cycles: tm=%d nontm=%d", c.CyclesTM, c.CyclesNonTM)
	}
}

func TestChecks(t *testing.T) {
	var c Counters
	c.AddCheck(CheckBounds)
	c.AddCheck(CheckBounds)
	c.AddCheck(CheckOverflow)
	if c.Checks[CheckBounds] != 2 || c.TotalChecks() != 3 {
		t.Errorf("checks = %v", c.Checks)
	}
}

func TestAddMergesAndMaxes(t *testing.T) {
	a := Counters{TxWriteBytesMax: 100, TxMaxAssoc: 2}
	b := Counters{TxWriteBytesMax: 50, TxMaxAssoc: 5}
	a.AddInstr(NoFTL, 1)
	b.AddInstr(NoFTL, 2)
	a.TxCommits, b.TxCommits = 3, 4
	a.Add(&b)
	if a.Instr[NoFTL] != 3 {
		t.Errorf("summed instr = %d", a.Instr[NoFTL])
	}
	if a.TxCommits != 7 {
		t.Errorf("summed commits = %d", a.TxCommits)
	}
	if a.TxWriteBytesMax != 100 {
		t.Errorf("max footprint = %d (must take max, not sum)", a.TxWriteBytesMax)
	}
	if a.TxMaxAssoc != 5 {
		t.Errorf("max assoc = %d", a.TxMaxAssoc)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddInstr(TMOpt, 5)
	c.Deopts = 9
	c.Reset()
	if c.TotalInstr() != 0 || c.Deopts != 0 {
		t.Error("reset must zero everything")
	}
}

func TestLabels(t *testing.T) {
	if NoFTL.String() != "NoFTL" || TMOpt.String() != "TMOpt" {
		t.Error("instruction class labels wrong")
	}
	if CheckBounds.String() != "Bounds" || CheckOther.String() != "Other" {
		t.Error("check class labels wrong")
	}
}

// Merge must aggregate per-isolate counters without mutating its inputs —
// the pool-level rollup the serving layer reports.
func TestMergeAggregatesWithoutAliasing(t *testing.T) {
	a := &Counters{TxCommits: 3, CodeCacheHits: 2, SnapshotRestores: 1, TxWriteBytesMax: 10}
	b := &Counters{TxCommits: 4, CodeCacheMisses: 5, TxWriteBytesMax: 30}
	a.AddInstr(TMOpt, 7)
	b.AddInstr(TMOpt, 11)

	total := Merge(a, b)
	if total.TxCommits != 7 || total.CodeCacheHits != 2 || total.CodeCacheMisses != 5 ||
		total.SnapshotRestores != 1 || total.Instr[TMOpt] != 18 {
		t.Errorf("merge totals wrong: %+v", total)
	}
	if total.TxWriteBytesMax != 30 {
		t.Errorf("merge must take max of footprint maxima, got %d", total.TxWriteBytesMax)
	}
	// Inputs must be untouched (no aliasing into the merged value).
	if a.TxCommits != 3 || b.TxCommits != 4 || a.Instr[TMOpt] != 7 {
		t.Error("Merge mutated its inputs")
	}
	// And mutating the result must not reach back into the parts.
	total.TxCommits = 100
	total.Instr[TMOpt] = 99
	if a.TxCommits != 3 || b.Instr[TMOpt] != 11 {
		t.Error("merged value aliases an input")
	}
	if m := Merge(); m.TotalInstr() != 0 || m.TxCommits != 0 {
		t.Error("empty merge must be zero")
	}
}

// The serving-layer counters must participate in Add and Reset like every
// other counter.
func TestCodeCacheCountersAddAndReset(t *testing.T) {
	var c Counters
	c.CodeCacheHits, c.CodeCacheMisses, c.CodeCacheEvictions, c.SnapshotRestores = 1, 2, 3, 4
	var d Counters
	d.Add(&c)
	if d.CodeCacheHits != 1 || d.CodeCacheMisses != 2 || d.CodeCacheEvictions != 3 || d.SnapshotRestores != 4 {
		t.Errorf("Add dropped serving counters: %+v", d)
	}
	d.Reset()
	if d.CodeCacheHits != 0 || d.SnapshotRestores != 0 {
		t.Error("Reset must zero serving counters")
	}
}
