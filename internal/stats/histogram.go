// HDR-style latency histogram and the sliding-window p99 estimator backing
// the serving layer's compile-queue admission control.
//
// The histogram is log-linear: values below 2^subBits land in their own
// bucket; above that, each power-of-two range is split into 2^subBits
// sub-buckets, bounding relative error at 2^-subBits (~3% with subBits=5).
// This is the classic HdrHistogram bucketing, reimplemented over plain int64
// counts — no dependencies, no floating point on the record path, and
// deterministic: identical value sequences produce identical quantiles on
// every platform.
//
// Ownership follows the package rule: a Histogram is single-writer. The
// serving pool gives each worker its own and merges after quiescence, or
// wraps a shared LatencyWindow in its own small mutex — the pool's request
// mutex is never involved (see pool.Stats()).
package stats

const (
	histSubBits = 5
	histSubs    = 1 << histSubBits // 32 sub-buckets per power of two
	// histBuckets covers values up to 2^63-1: 32 linear buckets plus
	// (63 - subBits) log ranges of 32 sub-buckets each.
	histBuckets = histSubs + (63-histSubBits)*histSubs
)

// Histogram records int64 values (cycles, microseconds — any unit) with
// bounded relative error and O(1) record cost. The zero value is ready to
// use.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	max    int64
	sum    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubs {
		return int(v)
	}
	// top is the index of the highest set bit, >= histSubBits here.
	top := 63
	for v>>uint(top)&1 == 0 {
		top--
	}
	sub := int(v>>uint(top-histSubBits)) & (histSubs - 1)
	return (top-histSubBits)*histSubs + sub + histSubs
}

// bucketLow returns the smallest value mapping to bucket i — the
// conservative (under-estimating) representative used by Quantile.
func bucketLow(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	i -= histSubs
	top := i/histSubs + histSubBits
	sub := int64(i % histSubs)
	return (1 << uint(top)) | sub<<uint(top-histSubBits)
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Sum returns the exact sum of recorded values (for mean throughput math).
func (h *Histogram) Sum() int64 { return h.sum }

// Quantile returns the value at quantile q in [0, 1]: the lower bound of the
// bucket containing the ceil(q*total)-th observation. q=1 returns the exact
// maximum. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// LatencyWindow is the sliding p99 estimator for admission control: a ring
// of generation histograms rotated every windowLen observations, so the
// estimate tracks roughly the last windowLen×generations requests and old
// load spikes age out. Unlike Histogram it is not single-writer — the
// serving workers all record into it — so the caller wraps access in its own
// mutex (the pool uses a dedicated latency mutex, never the request mutex).
type LatencyWindow struct {
	gens      [4]Histogram
	cur       int
	windowLen int64
}

// NewLatencyWindow creates a window rotating every windowLen observations
// (minimum 16; 0 takes 256). Total look-back is 4×windowLen observations.
func NewLatencyWindow(windowLen int) *LatencyWindow {
	if windowLen <= 0 {
		windowLen = 256
	}
	if windowLen < 16 {
		windowLen = 16
	}
	return &LatencyWindow{windowLen: int64(windowLen)}
}

// Record adds one observation, rotating to the next generation when the
// current one fills (the oldest generation is discarded).
func (w *LatencyWindow) Record(v int64) {
	g := &w.gens[w.cur]
	g.Record(v)
	if g.Count() >= w.windowLen {
		w.cur = (w.cur + 1) % len(w.gens)
		w.gens[w.cur].Reset()
	}
}

// Quantile returns the quantile across all live generations.
func (w *LatencyWindow) Quantile(q float64) int64 {
	var all Histogram
	for i := range w.gens {
		all.Merge(&w.gens[i])
	}
	return all.Quantile(q)
}

// Count returns the number of observations across live generations.
func (w *LatencyWindow) Count() int64 {
	var n int64
	for i := range w.gens {
		n += w.gens[i].Count()
	}
	return n
}
