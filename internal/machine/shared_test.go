package machine_test

import (
	"reflect"
	"testing"

	"nomap/internal/htm"
	"nomap/internal/machine"
	"nomap/internal/vm"
)

// mixedWorkload races two workers over a counter, a striped map, and a
// queue: worker 0 produces, worker 1 consumes (index order matters for the
// reference run, see the SharedWorkload determinism contract).
func mixedWorkload() *machine.SharedWorkload {
	return &machine.SharedWorkload{
		Name: "mixed",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclCounter, Name: "total"},
			{Kind: machine.DeclCounter, Name: "sum1"},
			{Kind: machine.DeclMap, Name: "tab", Arg: 4},
			{Kind: machine.DeclQueue, Name: "q", Arg: 64},
		},
		Workers: []machine.SharedScript{
			{Rounds: 8, Sections: []machine.SharedSection{
				{{Kind: machine.OpAdd, Target: "total", Imm: 1},
					{Kind: machine.OpMapAdd, Target: "tab", Key: "k", Rotate: true, Imm: 2}},
				{{Kind: machine.OpPush, Target: "q", Imm: 100}},
			}},
			{Rounds: 8, Sections: []machine.SharedSection{
				{{Kind: machine.OpAdd, Target: "total", Imm: 1}},
				{{Kind: machine.OpPop, Target: "q"}},
				{{Kind: machine.OpPublish, Target: "sum1"}},
			}},
		},
	}
}

func TestSharedScheduledMatchesReference(t *testing.T) {
	wl := mixedWorkload()
	ref, err := machine.RunReference(wl)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, arch := range vm.AllArchs {
		for seed := int64(0); seed < 6; seed++ {
			got, err := machine.RunScheduled(wl, arch, seed, machine.SharedOptions{})
			if err != nil {
				t.Fatalf("%v seed %d: %v", arch, seed, err)
			}
			if got.Snapshot != ref.Snapshot {
				t.Errorf("%v seed %d: snapshot diverged\n got: %s\nwant: %s",
					arch, seed, got.Snapshot, ref.Snapshot)
			}
			if !reflect.DeepEqual(got.Accs, ref.Accs) {
				t.Errorf("%v seed %d: accumulators %v, want %v", arch, seed, got.Accs, ref.Accs)
			}
			c := got.Merged
			if c.TxBegins != c.TxCommits+c.TxAborts {
				t.Errorf("%v seed %d: tx leak: %d begins, %d commits, %d aborts",
					arch, seed, c.TxBegins, c.TxCommits, c.TxAborts)
			}
			if sub := c.TxCapacityAborts + c.TxCheckAborts + c.TxSOFAborts +
				c.TxIrrevocableAborts + c.TxConflictAborts; sub != c.TxAborts {
				t.Errorf("%v seed %d: abort causes (%d) do not partition aborts (%d)",
					arch, seed, sub, c.TxAborts)
			}
		}
	}
}

func TestSharedScheduledDeterminism(t *testing.T) {
	wl := mixedWorkload()
	var evA, evB []string
	runOnce := func(ev *[]string) *machine.SharedResult {
		res, err := machine.RunScheduled(wl, vm.ArchNoMap, 42, machine.SharedOptions{
			Tracer: func(e machine.Event) { *ev = append(*ev, e.String()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(&evA), runOnce(&evB)
	if a.Snapshot != b.Snapshot || !reflect.DeepEqual(a.Accs, b.Accs) ||
		!reflect.DeepEqual(a.Merged, b.Merged) || a.Steps != b.Steps {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Fatalf("same seed produced different event streams (%d vs %d events)", len(evA), len(evB))
	}
}

func TestSharedBaseRunsAllFallback(t *testing.T) {
	wl := mixedWorkload()
	res, err := machine.RunScheduled(wl, vm.ArchBase, 1, machine.SharedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.TxBegins != 0 {
		t.Fatalf("Base opened %d transactions", res.Merged.TxBegins)
	}
	if res.Merged.SharedFallbackAcquires == 0 {
		t.Fatal("Base never took the fallback lock")
	}
	ref, _ := machine.RunReference(wl)
	if res.Snapshot != ref.Snapshot {
		t.Fatalf("Base snapshot %s, want %s", res.Snapshot, ref.Snapshot)
	}
}

// hotWorkload is a two-worker storm on one counter — every section conflicts
// on the same cache line.
func hotWorkload(rounds int) *machine.SharedWorkload {
	sec := machine.SharedSection{{Kind: machine.OpAdd, Target: "hot", Imm: 1}}
	script := machine.SharedScript{Rounds: rounds, Sections: []machine.SharedSection{sec}}
	return &machine.SharedWorkload{
		Name:    "hot",
		Decls:   []machine.SharedDecl{{Kind: machine.DeclCounter, Name: "hot"}},
		Workers: []machine.SharedScript{script, script},
	}
}

func TestSharedForcedConflictLadder(t *testing.T) {
	wl := hotWorkload(12)
	// Force a conflict at every worker-0 shared access until the governor
	// demotes the site: the run must climb conflict-abort → backoff →
	// fallback and still converge to the reference state.
	forced := 0
	res, err := machine.RunScheduled(wl, vm.ArchNoMap, 3, machine.SharedOptions{
		Configure: func(id int, sys *htm.System) {
			if id == 0 {
				sys.SetConflictProbe(func(write bool, line uint64) bool {
					if forced < 4 {
						forced++
						return true
					}
					return false
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := machine.RunReference(wl)
	if res.Snapshot != ref.Snapshot {
		t.Fatalf("snapshot %s, want %s", res.Snapshot, ref.Snapshot)
	}
	c := res.Merged
	if c.TxConflictAborts == 0 {
		t.Fatal("forced conflicts produced no conflict aborts")
	}
	if c.SharedBackoffs == 0 {
		t.Fatal("conflict aborts produced no backoff windows")
	}
	if c.SharedFallbackAcquires == 0 {
		t.Fatal("conflict storm never reached the fallback lock")
	}
}

func TestSharedCapacityRetreat(t *testing.T) {
	wl := hotWorkload(4)
	// Force a capacity overflow on worker 0's first tracked line: the
	// section must retreat to the fallback immediately (no backoff) and the
	// final state must still match.
	first := true
	res, err := machine.RunScheduled(wl, vm.ArchNoMap, 5, machine.SharedOptions{
		Configure: func(id int, sys *htm.System) {
			if id == 0 {
				sys.SetCapacityProbe(func(write bool, line uint64) bool {
					if first {
						first = false
						return true
					}
					return false
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := machine.RunReference(wl)
	if res.Snapshot != ref.Snapshot {
		t.Fatalf("snapshot %s, want %s", res.Snapshot, ref.Snapshot)
	}
	if res.Merged.TxCapacityAborts != 1 {
		t.Fatalf("TxCapacityAborts = %d, want 1", res.Merged.TxCapacityAborts)
	}
	var capFallbacks int64
	for _, s := range res.Sites {
		capFallbacks += s.Capacities
	}
	if capFallbacks != 1 {
		t.Fatalf("governor capacity ledger = %d, want 1", capFallbacks)
	}
}

func TestSharedValidation(t *testing.T) {
	wl := &machine.SharedWorkload{
		Name:  "bad",
		Decls: []machine.SharedDecl{{Kind: machine.DeclCounter, Name: "c"}},
		Workers: []machine.SharedScript{
			{Sections: []machine.SharedSection{{{Kind: machine.OpPush, Target: "c"}}}},
		},
	}
	if _, err := machine.RunScheduled(wl, vm.ArchNoMap, 0, machine.SharedOptions{}); err == nil {
		t.Fatal("pushing to a counter passed validation")
	}
	if _, err := machine.RunReference(wl); err == nil {
		t.Fatal("reference accepted an invalid workload")
	}
}

func TestSharedReferenceStuckIsError(t *testing.T) {
	wl := &machine.SharedWorkload{
		Name:  "stuck",
		Decls: []machine.SharedDecl{{Kind: machine.DeclQueue, Name: "q", Arg: 4}},
		Workers: []machine.SharedScript{
			{Sections: []machine.SharedSection{{{Kind: machine.OpPop, Target: "q"}}}},
		},
	}
	if _, err := machine.RunReference(wl); err == nil {
		t.Fatal("popping an empty queue in the reference run did not error")
	}
}
