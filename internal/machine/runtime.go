package machine

import (
	"fmt"

	"nomap/internal/bytecode"
	"nomap/internal/ir"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// runtimeCall executes an OpCallRuntime: the generic, corner-case-covering
// runtime entries that optimized code falls back to when speculation is not
// worthwhile (paper Figure 4(b)). Their cost is attributed to the NoFTL
// instruction class, like the paper's C runtime code.
func (m *Machine) runtimeCall(f *ir.Func, v *ir.Value, vals []value.Boxed) (value.Value, error) {
	ctrs := m.host.Counters()
	hd := m.host.Handles()
	charge := func(n int64) {
		ctrs.AddInstr(stats.NoFTL, n)
		ctrs.AddCycles(n, m.HTM.InTx())
	}
	a := func(i int) value.Value { return hd.Unbox(vals[v.Args[i].ID]) }

	switch v.AuxStr {
	case "binop":
		charge(22)
		return evalGenericBinop(bytecode.Op(v.AuxInt), a(0), a(1))
	case "unop":
		charge(16)
		switch bytecode.Op(v.AuxInt) {
		case bytecode.OpNeg:
			return value.Neg(a(0)), nil
		case bytecode.OpBitNot:
			return value.BitNot(a(0)), nil
		}
		return value.Undefined(), fmt.Errorf("machine: bad unop %d", v.AuxInt)
	case "typeof":
		charge(14)
		return value.Str(a(0).TypeOf()), nil
	case "tonumber":
		charge(14)
		x := a(0)
		if x.IsNumber() {
			return x, nil
		}
		return value.Number(x.ToNumber()), nil

	case "getprop":
		charge(32)
		obj, name := a(0), a(1).StringVal()
		switch obj.Kind() {
		case value.KindObject:
			return obj.Object().Get(name), nil
		case value.KindString:
			if name == "length" {
				return value.Int(int32(len(obj.StringVal()))), nil
			}
			return value.Undefined(), nil
		case value.KindUndefined, value.KindNull:
			return value.Undefined(), fmt.Errorf("cannot read property %q of %s", name, obj.TypeOf())
		default:
			return value.Undefined(), nil
		}
	case "setprop":
		charge(32)
		obj := a(0)
		o := obj.Object()
		if o == nil {
			return value.Undefined(), fmt.Errorf("cannot set property %q of %s", a(1).StringVal(), obj.TypeOf())
		}
		o.Set(a(1).StringVal(), a(2))
		return value.Undefined(), nil

	case "getelem":
		charge(20)
		obj, idx := a(0), a(1)
		o := obj.Object()
		if o == nil {
			if obj.IsString() {
				s := obj.StringVal()
				i := int(idx.ToNumber())
				if idx.IsNumber() && float64(i) == idx.ToNumber() && i >= 0 && i < len(s) {
					return value.Str(s[i : i+1]), nil
				}
				return value.Undefined(), nil
			}
			return value.Undefined(), fmt.Errorf("cannot index %s", obj.TypeOf())
		}
		if o.IsArray && idx.IsNumber() {
			fi := idx.ToNumber()
			if i := int(fi); float64(i) == fi {
				inBounds := o.InBounds(i)
				m.observeElem(f, v, obj, idx, inBounds, false, inBounds && o.HasHoleAt(i))
				return o.GetElement(i), nil
			}
		}
		m.observeElem(f, v, obj, idx, false, false, false)
		return o.Get(idx.ToStringValue()), nil
	case "setelem":
		charge(20)
		obj, idx, val := a(0), a(1), a(2)
		o := obj.Object()
		if o == nil {
			return value.Undefined(), fmt.Errorf("cannot index-assign %s", obj.TypeOf())
		}
		if o.IsArray && idx.IsNumber() {
			fi := idx.ToNumber()
			if i := int(fi); float64(i) == fi && i >= 0 {
				inBounds := o.InBounds(i)
				m.observeElem(f, v, obj, idx, inBounds, !inBounds && i == o.ElementCount(), false)
				o.SetElement(i, val)
				return value.Undefined(), nil
			}
		}
		m.observeElem(f, v, obj, idx, false, false, false)
		o.Set(idx.ToStringValue(), val)
		return value.Undefined(), nil

	case "call":
		charge(24)
		callee := a(0)
		if !callee.IsCallable() {
			return value.Undefined(), fmt.Errorf("%s is not a function", callee.TypeOf())
		}
		m.noteUserCall()
		args := gatherArgs(hd, v, vals, 1)
		return m.host.Call(callee.Object().Fn, value.Undefined(), args)
	case "callmethod":
		charge(28)
		m.noteUserCall()
		recv, name := a(0), a(1).StringVal()
		args := gatherArgs(hd, v, vals, 2)
		return m.host.InvokeMethod(recv, name, args)
	case "construct":
		charge(36)
		callee := a(0)
		if !callee.IsCallable() {
			return value.Undefined(), fmt.Errorf("%s is not a constructor", callee.TypeOf())
		}
		m.noteUserCall()
		args := gatherArgs(hd, v, vals, 1)
		return m.host.Construct(callee.Object().Fn, args)

	case "newobject":
		charge(28)
		return value.Obj(value.NewObject(m.host.Shapes())), nil
	case "newarray":
		charge(28)
		return value.Obj(value.NewArray(m.host.Shapes(), int(v.AuxInt))), nil
	}
	return value.Undefined(), fmt.Errorf("machine: unknown runtime entry %q", v.AuxStr)
}

// observeElem mirrors the Baseline interpreter's element-site profiling from
// the generic runtime path. OSR entry can carry a function's cold tail into
// machine code before Baseline ever executes it; without slow-path feedback
// those element sites would stay generic runtime calls in every recompile
// (and a generic call pins the §V-C ladder as if the loop had real callees).
func (m *Machine) observeElem(f *ir.Func, v *ir.Value, obj, idx value.Value, inBounds, app, hole bool) {
	if f == nil || f.Source == nil {
		return
	}
	prof := m.host.ProfileFor(f.Source)
	if prof == nil || v.BCPos < 0 || v.BCPos >= len(prof.Elem) {
		return
	}
	prof.Elem[v.BCPos].Observe(obj, idx, inBounds, app, hole)
}

// noteUserCall marks the open transaction (if any) as having run user code:
// unlike the bounded runtime helpers above, a callee's write footprint is
// unbounded, which is what the §V-C capacity policy blames on overflow.
func (m *Machine) noteUserCall() {
	if m.HTM.InTx() {
		m.txHadCalls = true
	}
}

func gatherArgs(hd *value.Handles, v *ir.Value, vals []value.Boxed, from int) []value.Value {
	args := make([]value.Value, 0, len(v.Args)-from)
	for i := from; i < len(v.Args); i++ {
		args = append(args, hd.Unbox(vals[v.Args[i].ID]))
	}
	return args
}

func evalGenericBinop(op bytecode.Op, a, b value.Value) (value.Value, error) {
	switch op {
	case bytecode.OpAdd:
		return value.Add(a, b), nil
	case bytecode.OpSub:
		return value.Sub(a, b), nil
	case bytecode.OpMul:
		return value.Mul(a, b), nil
	case bytecode.OpDiv:
		return value.Div(a, b), nil
	case bytecode.OpMod:
		return value.Mod(a, b), nil
	case bytecode.OpBitAnd:
		return value.BitAnd(a, b), nil
	case bytecode.OpBitOr:
		return value.BitOr(a, b), nil
	case bytecode.OpBitXor:
		return value.BitXor(a, b), nil
	case bytecode.OpShl:
		return value.Shl(a, b), nil
	case bytecode.OpShr:
		return value.Shr(a, b), nil
	case bytecode.OpUShr:
		return value.UShr(a, b), nil
	case bytecode.OpLess:
		return value.Compare(a, b, "<"), nil
	case bytecode.OpLessEq:
		return value.Compare(a, b, "<="), nil
	case bytecode.OpGreater:
		return value.Compare(a, b, ">"), nil
	case bytecode.OpGreaterEq:
		return value.Compare(a, b, ">="), nil
	case bytecode.OpEq:
		return value.Boolean(value.LooseEquals(a, b)), nil
	case bytecode.OpNeq:
		return value.Boolean(!value.LooseEquals(a, b)), nil
	case bytecode.OpStrictEq:
		return value.Boolean(value.StrictEquals(a, b)), nil
	case bytecode.OpStrictNeq:
		return value.Boolean(!value.StrictEquals(a, b)), nil
	}
	return value.Undefined(), fmt.Errorf("machine: bad binop %d", op)
}
