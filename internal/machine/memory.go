package machine

import "nomap/internal/value"

// Memory assigns deterministic simulated addresses to the JS heap so the
// cache simulator and the HTM write-set tracking see a realistic address
// stream. Each object gets a slot region (named properties) and, lazily, an
// element region (array storage). Regions are spaced widely; only accessed
// bytes matter to the cache model.
type Memory struct {
	slotBase map[*value.Object]uint64
	elemBase map[*value.Object]uint64
	next     uint64
}

// NewMemory creates an empty address map.
func NewMemory() *Memory {
	return &Memory{
		slotBase: make(map[*value.Object]uint64),
		elemBase: make(map[*value.Object]uint64),
		next:     0x1000,
	}
}

const (
	slotRegion = 1 << 10 // 64 slots x 16 bytes
	elemRegion = 1 << 22 // 4MB of element storage per array
	valueSize  = 8       // one boxed value (NaN-boxed 64-bit)
)

func (m *Memory) base(o *value.Object) uint64 {
	b, ok := m.slotBase[o]
	if !ok {
		b = m.next
		m.next += slotRegion
		m.slotBase[o] = b
	}
	return b
}

// SlotAddr returns the address of property slot off of o.
func (m *Memory) SlotAddr(o *value.Object, off int) uint64 {
	return m.base(o) + 0x40 + uint64(off)*valueSize
}

// ShapeAddr returns the address of the hidden-class word (read by shape
// checks).
func (m *Memory) ShapeAddr(o *value.Object) uint64 { return m.base(o) }

// LengthAddr returns the address of the array length word.
func (m *Memory) LengthAddr(o *value.Object) uint64 { return m.base(o) + 8 }

// ElemAddr returns the address of element idx of o.
func (m *Memory) ElemAddr(o *value.Object, idx int) uint64 {
	b, ok := m.elemBase[o]
	if !ok {
		b = m.next
		m.next += elemRegion
		m.elemBase[o] = b
	}
	a := b + uint64(idx)*valueSize
	return a
}
