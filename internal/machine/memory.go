package machine

import "nomap/internal/value"

// Memory assigns deterministic simulated addresses to the JS heap so the
// cache simulator and the HTM write-set tracking see a realistic address
// stream. Each object gets a slot region (named properties) and, lazily, an
// element region (array storage). Regions are spaced widely; only accessed
// bytes matter to the cache model.
type Memory struct {
	slotBase map[*value.Object]uint64
	elemBase map[*value.Object]uint64
	next     uint64
	valBytes uint64
}

// NewMemory creates an empty address map at the default (NaN-boxed,
// one-word) value stride.
func NewMemory() *Memory { return NewMemorySized(valueSize) }

// NewMemorySized creates an empty address map with vb bytes per stored
// value: 8 for the boxed representation, 16 for the fat two-word layout the
// DisableBoxing A/B models (kind word + payload word), which doubles the
// cache-line span of every slot and element region.
func NewMemorySized(vb int) *Memory {
	return &Memory{
		slotBase: make(map[*value.Object]uint64),
		elemBase: make(map[*value.Object]uint64),
		next:     0x1000,
		valBytes: uint64(vb),
	}
}

const (
	slotRegion = 1 << 10 // 64 slots x 16 bytes
	elemRegion = 1 << 22 // 4MB of element storage per array
	valueSize  = 8       // one boxed value (NaN-boxed 64-bit)
	fatSize    = 16      // unboxed two-word value (DisableBoxing)
)

// ValueBytes returns the modeled bytes per stored value.
func (m *Memory) ValueBytes() int { return int(m.valBytes) }

func (m *Memory) base(o *value.Object) uint64 {
	b, ok := m.slotBase[o]
	if !ok {
		b = m.next
		m.next += slotRegion
		m.slotBase[o] = b
	}
	return b
}

// SlotAddr returns the address of property slot off of o.
func (m *Memory) SlotAddr(o *value.Object, off int) uint64 {
	return m.base(o) + 0x40 + uint64(off)*m.valBytes
}

// ShapeAddr returns the address of the hidden-class word (read by shape
// checks).
func (m *Memory) ShapeAddr(o *value.Object) uint64 { return m.base(o) }

// LengthAddr returns the address of the array length word.
func (m *Memory) LengthAddr(o *value.Object) uint64 { return m.base(o) + 8 }

// ElemAddr returns the address of element idx of o.
func (m *Memory) ElemAddr(o *value.Object, idx int) uint64 {
	b, ok := m.elemBase[o]
	if !ok {
		b = m.next
		m.next += elemRegion
		m.elemBase[o] = b
	}
	a := b + uint64(idx)*m.valBytes
	return a
}
