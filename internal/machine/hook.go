package machine

import "nomap/internal/value"

// txHook is installed as the heap write hook while a transaction is open.
// Every mutation — from FTL code, the Baseline tier, or builtins called
// inside the transaction — is recorded in the HTM write set (for capacity)
// and the undo log (for rollback). This mirrors real HTM, where the cache
// tracks all speculative stores regardless of which code performed them.
type txHook struct {
	m *Machine
}

func (m *Machine) installHook()   { m.host.Shapes().Hook = m.hook }
func (m *Machine) uninstallHook() { m.host.Shapes().Hook = nil }

func (h *txHook) record(addr uint64, size int, undo func()) {
	if err := h.m.HTM.RecordWrite(addr, size, undo); err != nil {
		// The write proceeds (it is in the undo log); the machine aborts the
		// transaction at the next opportunity.
		h.m.pendingCapacity = true
	}
}

func (h *txHook) OnSlotWrite(o *value.Object, off int, old value.Value) {
	h.record(h.m.Mem.SlotAddr(o, off), h.m.Mem.ValueBytes(), func() { o.RestoreSlot(off, old) })
}

func (h *txHook) OnPropAdd(o *value.Object, oldShape *value.Shape) {
	h.record(h.m.Mem.SlotAddr(o, oldShape.NumSlots), h.m.Mem.ValueBytes(), func() { o.RestoreShape(oldShape) })
	// The shape word itself is also written.
	h.record(h.m.Mem.ShapeAddr(o), 8, func() {})
}

func (h *txHook) OnElemWrite(o *value.Object, idx int, old value.Value, oldExtent, oldLen int) {
	if idx < oldExtent {
		h.record(h.m.Mem.ElemAddr(o, idx), h.m.Mem.ValueBytes(), func() { o.RestoreElement(idx, old) })
		return
	}
	// Elongation: the store touches [oldExtent, idx] plus the length word;
	// rollback shrinks the array back.
	first := h.m.Mem.ElemAddr(o, oldExtent)
	last := h.m.Mem.ElemAddr(o, idx)
	h.record(first, int(last-first)+h.m.Mem.ValueBytes(), func() { o.RestoreExtent(oldExtent, oldLen) })
	h.record(h.m.Mem.LengthAddr(o), 8, func() {})
}

func (h *txHook) OnTruncate(o *value.Object, removed []value.Value, oldLen int) {
	h.record(h.m.Mem.LengthAddr(o), 8, func() { o.RestoreTail(removed, oldLen) })
}

var _ value.WriteHook = (*txHook)(nil)
