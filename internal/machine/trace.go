package machine

import (
	"fmt"

	"nomap/internal/htm"
	"nomap/internal/profile"
	"nomap/internal/stats"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	// EventTxBegin fires when an outermost transaction opens.
	EventTxBegin EventKind = iota
	// EventTxCommit fires when an outermost transaction commits.
	EventTxCommit
	// EventTxTileCommit fires when a tile commit splits a transaction at a
	// loop back edge (§V-C).
	EventTxTileCommit
	// EventTxAbort fires when a transaction aborts (any cause).
	EventTxAbort
	// EventDeopt fires on an OSR exit to the Baseline tier.
	EventDeopt
	// EventCompile fires when the JIT compiles a function for a tier.
	EventCompile
	// EventOSREntry fires when a hot loop's frame enters an OSR artifact
	// mid-execution (the inverse transfer of EventDeopt).
	EventOSREntry
	// EventBackoff fires when a shared-section worker serves a randomized
	// contention-backoff window after a conflict abort.
	EventBackoff
	// EventFallbackAcquire fires when a shared section takes the software
	// fallback lock (aborts stormed past the retry budget, or the section's
	// site is demoted).
	EventFallbackAcquire
	// EventFallbackRelease fires when the software fallback lock is dropped
	// at the end of a fallback-executed section.
	EventFallbackRelease
	// EventRepromote fires when a demoted shared section earns its way back
	// to the transactional fast path after a clean fallback window.
	EventRepromote
	// EventICMiss fires when a dispatch tree's tail guard fails: the receiver
	// matched none of the site's speculated ways.
	EventICMiss
	// EventICFill fires when the JIT compiles a function containing dispatch
	// trees (one event per site, after a fresh compile only).
	EventICFill
	// EventICHit fires the first time a site's guard chain matches a receiver
	// (once per site per machine reset, to keep traces bounded).
	EventICHit
	// EventICTransition fires the first time a site executes a speculated
	// shape transition (property add under a matching shape guard).
	EventICTransition
	// EventICDemote fires when the governor demotes a megamorphic dispatch
	// site to the generic runtime path.
	EventICDemote
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventTxBegin:
		return "tx-begin"
	case EventTxCommit:
		return "tx-commit"
	case EventTxTileCommit:
		return "tx-tile-commit"
	case EventTxAbort:
		return "tx-abort"
	case EventDeopt:
		return "deopt"
	case EventCompile:
		return "compile"
	case EventOSREntry:
		return "osr-entry"
	case EventBackoff:
		return "contention-backoff"
	case EventFallbackAcquire:
		return "fallback-acquire"
	case EventFallbackRelease:
		return "fallback-release"
	case EventRepromote:
		return "repromote"
	case EventICMiss:
		return "ic-miss"
	case EventICFill:
		return "ic-fill"
	case EventICHit:
		return "ic-hit"
	case EventICTransition:
		return "ic-transition"
	case EventICDemote:
		return "ic-demote"
	}
	return "?"
}

// Event is one trace record. Only the fields relevant to the kind are set.
type Event struct {
	Kind EventKind
	// Fn is the function involved.
	Fn string
	// Cause is the abort cause for EventTxAbort.
	Cause htm.AbortCause
	// CheckClass is the failing check's class for aborts and deopts caused
	// by a check.
	CheckClass stats.CheckClass
	// PC is the Baseline bytecode pc execution transfers to (aborts/deopts).
	PC int
	// Inline is the inline path of the deopt's innermost reconstructed frame
	// ("" when the deopt resumes in the compiled function's own code).
	Inline string
	// WriteBytes is the transactional write footprint (commit/abort/tile).
	WriteBytes int64
	// Tier is the tier compiled for EventCompile.
	Tier profile.Tier
	// Window is the backoff window in cycles (EventBackoff only).
	Window int64
	// Attr is the conflict attribution (shared-heap aborts only).
	Attr htm.Attribution
	// Shape names the per-shape dispatch variant (IC events only): the
	// receiver shape's transition path or the guarded callee's name.
	Shape string
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventTxBegin:
		return fmt.Sprintf("[%s] %s", e.Kind, e.Fn)
	case EventTxCommit, EventTxTileCommit:
		return fmt.Sprintf("[%s] %s write-footprint=%dB", e.Kind, e.Fn, e.WriteBytes)
	case EventTxAbort:
		if e.Cause == htm.AbortConflict {
			return fmt.Sprintf("[%s] %s cause=%s attr=%s write-footprint=%dB",
				e.Kind, e.Fn, e.Cause, e.Attr, e.WriteBytes)
		}
		return fmt.Sprintf("[%s] %s cause=%s check=%s resume@%d write-footprint=%dB",
			e.Kind, e.Fn, e.Cause, e.CheckClass, e.PC, e.WriteBytes)
	case EventDeopt:
		if e.Inline != "" {
			return fmt.Sprintf("[%s] %s check=%s resume@%d inline=%s", e.Kind, e.Fn, e.CheckClass, e.PC, e.Inline)
		}
		return fmt.Sprintf("[%s] %s check=%s resume@%d", e.Kind, e.Fn, e.CheckClass, e.PC)
	case EventCompile:
		return fmt.Sprintf("[%s] %s tier=%s", e.Kind, e.Fn, e.Tier)
	case EventOSREntry:
		return fmt.Sprintf("[%s] %s header@%d tier=%s", e.Kind, e.Fn, e.PC, e.Tier)
	case EventBackoff:
		return fmt.Sprintf("[%s] %s window=%dcy", e.Kind, e.Fn, e.Window)
	case EventFallbackAcquire, EventFallbackRelease, EventRepromote:
		return fmt.Sprintf("[%s] %s", e.Kind, e.Fn)
	case EventICFill:
		return fmt.Sprintf("[%s] %s site@%d ways=%d", e.Kind, e.Fn, e.PC, e.Window)
	case EventICHit, EventICTransition, EventICMiss:
		return fmt.Sprintf("[%s] %s site@%d shape=%s", e.Kind, e.Fn, e.PC, e.Shape)
	case EventICDemote:
		return fmt.Sprintf("[%s] %s site@%d", e.Kind, e.Fn, e.PC)
	}
	return "[?]"
}

// Tracer receives execution events. It must not call back into the engine.
type Tracer func(Event)

// SetTracer installs (or clears, with nil) the event tracer.
func (m *Machine) SetTracer(t Tracer) { m.trace = t }

// Emit sends an event to the installed tracer. Exposed so the JIT driver
// can report compile events through the same stream.
func (m *Machine) Emit(e Event) { m.emit(e) }

func (m *Machine) emit(e Event) {
	if m.trace != nil {
		m.trace(e)
	}
}
