package machine

import (
	"nomap/internal/ir"
	"nomap/internal/profile"
)

// Instruction weights: how many dynamic x86-64 instructions one IR op lowers
// to in each speculative tier. The FTL weights model LLVM's instruction
// selector operating on tagged 64-bit values (untag/retag sequences, write
// barriers, addressing arithmetic). DFG code is the same shape but less
// well scheduled and selected, so each op costs more (paper Table I: FTL is
// 41-64% faster than DFG). The values are calibrated so the Base
// configuration lands in the paper's measured regime of roughly one
// SMP-guarding check per 12 dynamic instructions (Figure 3).

// Weights maps IR ops to instruction counts.
type Weights struct {
	tier profile.Tier
}

// WeightsFor returns the weight table for a tier.
func WeightsFor(tier profile.Tier) Weights { return Weights{tier: tier} }

// blockEdgeCost models the branch/jump ending a block (compare instructions
// are already charged to the comparison ops; most plain edges are laid out
// as fallthrough, so the average is about one instruction).
const blockEdgeCost = 1

// Op returns the instruction weight of v, excluding dynamic effects
// (cache misses, callee execution) which the machine adds separately.
func (w Weights) Op(v *ir.Value) int64 {
	base := ftlOpWeight(v)
	if w.tier == profile.TierDFG {
		// DFG: poorer instruction selection and scheduling, more spills
		// (paper Table I: FTL is 41-64% faster than DFG).
		return base + (base+2)/3
	}
	return base
}

func ftlOpWeight(v *ir.Value) int64 {
	switch v.Op {
	case ir.OpConst, ir.OpParam, ir.OpOSRLocal, ir.OpPhi:
		return 0 // materialized into registers by the register allocator
	case ir.OpAddInt, ir.OpSubInt, ir.OpNegInt,
		ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor,
		ir.OpShl, ir.OpShr, ir.OpUShr:
		return 2 // op + tag maintenance
	case ir.OpMulInt:
		return 3
	case ir.OpAddDouble, ir.OpSubDouble, ir.OpMulDouble, ir.OpNegDouble:
		return 2
	case ir.OpDivDouble:
		return 8
	case ir.OpModDouble:
		return 14
	case ir.OpIntToDouble, ir.OpNumberToDouble:
		return 2
	case ir.OpTruncDouble:
		return 3
	case ir.OpUint32ToDouble:
		return 2
	case ir.OpToBool:
		return 3
	case ir.OpNormalizeHole:
		return 2
	case ir.OpBoolNot:
		return 1
	case ir.OpCmpInt, ir.OpCmpDouble:
		return 2
	case ir.OpStrictEqGeneric:
		return 5

	// Checks: compare + conditional branch (+ a load for heap-state checks).
	case ir.OpCheckInt32, ir.OpCheckNumber:
		return 2
	case ir.OpCheckOverflow, ir.OpCheckUint32:
		return 1 // jo / test+js on the just-computed flags
	case ir.OpCheckShape:
		return 3 // load structure id, cmp imm, jne
	case ir.OpCheckArray:
		return 3
	case ir.OpCheckBounds:
		return 3 // load length, cmp, jae
	case ir.OpCheckNonNeg:
		return 1 // test+js on a register

	case ir.OpCheckHole:
		return 2
	case ir.OpCheckCallee:
		return 2

	// Dispatch-tree predicates: same comparison as the corresponding check,
	// but the branch targets a sibling way instead of a deopt stub.
	case ir.OpHasShape:
		return 3 // load structure id, cmp imm, setcc/jcc
	case ir.OpHasCallee:
		return 2
	case ir.OpTransition:
		return 8 // slot store + shape-word store + barriers (append fast path)

	case ir.OpLoadSlot:
		return 3 // base+offset load, untag
	case ir.OpStoreSlot:
		return 5 // retag, store, GC write barrier
	case ir.OpLoadElem:
		return 4 // butterfly load, index scale, load, untag
	case ir.OpStoreElem:
		return 6
	case ir.OpLoadLength:
		return 3
	case ir.OpLoadGlobal:
		return 2 // pc-relative load of cached global slot
	case ir.OpStoreGlobal:
		return 3

	case ir.OpMathOp:
		return mathWeight(v.AuxStr)
	case ir.OpCallDirect:
		return 12 + 2*int64(len(v.Args))
	case ir.OpCallRuntime:
		return 18 + 2*int64(len(v.Args))

	case ir.OpTxBegin:
		return 3 // xbegin + abort-handler address setup
	case ir.OpTxEnd:
		return 1
	case ir.OpTxTile:
		return 2 // footprint heuristic check at the back edge
	}
	return 2
}

func mathWeight(name string) int64 {
	switch name {
	case "abs":
		return 3
	case "floor", "ceil", "round":
		return 4
	case "min", "max":
		return 3
	case "sqrt":
		return 16
	case "pow", "exp", "log":
		return 40
	case "sin", "cos", "tan":
		return 45
	case "asin", "acos", "atan", "atan2":
		return 50
	}
	return 30
}
