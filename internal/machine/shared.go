package machine

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"nomap/internal/governor"
	"nomap/internal/htm"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// Shared-section executor: the shared-heap scenario class runs several
// workers against one value.SharedHeap, each worker executing a script of
// atomic sections. On the fast path a section is one hardware transaction in
// the worker's own htm.System, joined to the group's conflict Domain; on the
// slow path the section runs under the domain's software fallback lock with
// hardware-lock-elision semantics (acquiring the lock kills every open
// remote transaction, exactly as the lock-word write would through cache
// coherence). The contention governor arbitrates between the two after every
// abort: conflict blame retries behind a randomized-by-seed backoff window,
// capacity blame retreats to the fallback immediately, and conflict storms
// demote the section site until a clean fallback window re-promotes it.
//
// Execution advances in steps. One step is one scheduling yield point —
// transaction begin, a single shared access, commit, a backoff window, a
// fallback acquire/release — and every step runs under the domain's step
// lock. The deterministic schedule-sweep oracle and the real-goroutine pool
// mode drive the identical step machine; the only difference is who decides
// which worker steps next (a seeded scheduler vs. the Go runtime).

// SharedOpKind enumerates shared-section operations.
type SharedOpKind uint8

const (
	// OpAdd is a counter read-modify-write: ctr += Imm. Implemented as an
	// in-transaction load and store so a broken conflict detector produces
	// observable lost updates.
	OpAdd SharedOpKind = iota
	// OpReadCtr accumulates a counter into the worker's private accumulator.
	OpReadCtr
	// OpMapAdd is a striped-map read-modify-write: m[key] += Imm. Keys on
	// the same stripe share a cache line (the contention knob).
	OpMapAdd
	// OpMapRead accumulates m[key] into the accumulator.
	OpMapRead
	// OpPush appends Imm+round to a queue; a full queue is a failed
	// speculative guard and retries the section.
	OpPush
	// OpPop removes the oldest queue value into the accumulator; an empty
	// queue is a failed speculative guard and retries the section.
	OpPop
	// OpPublish folds the private accumulator into a counter (ctr += acc;
	// acc = 0), making otherwise-private work visible to the oracle's final
	// state.
	OpPublish
)

// SharedOp is one operation of an atomic section.
type SharedOp struct {
	Kind   SharedOpKind
	Target string // declared heap structure name
	Key    string // map key (OpMapAdd / OpMapRead)
	Imm    int64
	// Rotate varies the effective map key per round (Key + round%8), turning
	// a hot-key workload into a striped one.
	Rotate bool
}

// SharedSection is one atomic section: all ops commit or none do.
type SharedSection []SharedOp

// SharedScript is one worker's program: its sections, executed in order,
// repeated Rounds times (once when zero).
type SharedScript struct {
	Sections []SharedSection
	Rounds   int
}

// SharedDeclKind enumerates shared-heap declarations.
type SharedDeclKind uint8

const (
	DeclCounter SharedDeclKind = iota
	DeclMap                    // Arg = stripe count
	DeclQueue                  // Arg = capacity
)

// SharedDecl declares one shared structure.
type SharedDecl struct {
	Kind SharedDeclKind
	Name string
	Arg  int
}

// SharedWorkload is a complete shared-heap scenario: the heap layout plus
// one script per worker.
//
// Determinism contract: scripts must be final-state commutative — the heap
// snapshot (and, for single-consumer queues, the per-worker accumulators)
// after all workers finish must not depend on the interleaving. Counter and
// map updates are commutative additions; queue pops block (retry) on empty,
// so totals are schedule-independent. The single-threaded reference executes
// workers in index order, so a consumer may only pop values a lower-indexed
// worker (or its own earlier ops) pushed, and queue capacities must hold the
// full production.
type SharedWorkload struct {
	Name    string
	Decls   []SharedDecl
	Workers []SharedScript
}

// BuildHeap materializes the workload's declarations into a fresh heap.
func (wl *SharedWorkload) BuildHeap() *value.SharedHeap {
	h := value.NewSharedHeap()
	for _, d := range wl.Decls {
		switch d.Kind {
		case DeclCounter:
			h.DeclareCounter(d.Name)
		case DeclMap:
			h.DeclareMap(d.Name, d.Arg)
		case DeclQueue:
			h.DeclareQueue(d.Name, d.Arg)
		}
	}
	return h
}

// Step costs in cycles. Shared ops are simple field accesses (~10 simulated
// cycles); the fallback acquire models an uncontended CAS plus the fence, and
// guard/lock waits model a brief spin before re-polling.
const (
	sharedOpCycles  = 10
	fbAcquireCycles = 40
	fbReleaseCycles = 5
	lockWaitCycles  = 15
	guardWaitCycles = 20
)

// errGuardRetry signals a failed speculative guard (empty pop, full push):
// the section rolls back and retries after a short wait, like a failed
// converted check re-executing its loop.
var errGuardRetry = errors.New("shared section guard failed")

// wState is the worker step machine's state.
type wState uint8

const (
	wsSectionStart wState = iota
	wsTxOp
	wsTxCommit
	wsBackoff
	wsGuardWait
	wsFallbackAcquire
	wsFallbackOp
	wsFallbackRelease
	wsDone
)

// SharedOptions configures a shared run.
type SharedOptions struct {
	// Policy overrides the contention governor tuning (nil uses
	// governor.DefaultContentionPolicy(seed)).
	Policy *governor.ContentionPolicy
	// Tracer receives machine events from every worker (Fn is tagged
	// "workload:wN").
	Tracer Tracer
	// Configure, when non-nil, is called once per worker after its HTM
	// system attaches to the domain — the oracle installs capacity and
	// conflict probes here.
	Configure func(id int, sys *htm.System)
	// MaxSteps bounds the scheduled run as a livelock backstop
	// (default 2,000,000).
	MaxSteps int64
}

// SharedRun is an instantiated shared-heap execution: the heap, the conflict
// domain, the contention governor, and one worker per script.
type SharedRun struct {
	Name    string
	Arch    vm.Arch
	Heap    *value.SharedHeap
	Dom     *htm.Domain
	Gov     *governor.Contention
	Workers []*SharedWorker

	trace Tracer
}

// SharedWorker is one worker's step machine. All fields are guarded by the
// run's domain step lock: every Step executes under it, and the fallback
// acquirer mutates remote workers (killing their transactions) under it too.
type SharedWorker struct {
	run *SharedRun
	// ID is the worker index and its owner id in the conflict domain.
	ID  int
	sys *htm.System
	// Ctrs is the worker's private counter set; merge after quiescence.
	Ctrs stats.Counters
	// Acc is the worker-private accumulator OpReadCtr/OpPop feed and
	// OpPublish drains.
	Acc int64

	script  SharedScript
	state   wState
	round   int
	section int
	op      int

	accStart       int64
	fbUndo         []func()
	forceFB        bool // this section execution retreated to the fallback
	pendingBackoff int64
}

// NewSharedRun validates the workload and instantiates its execution state.
func NewSharedRun(wl *SharedWorkload, arch vm.Arch, seed int64, opt SharedOptions) (*SharedRun, error) {
	if len(wl.Workers) == 0 {
		return nil, fmt.Errorf("shared workload %q has no workers", wl.Name)
	}
	heap := wl.BuildHeap()
	if err := validateWorkload(wl, heap); err != nil {
		return nil, err
	}
	pol := governor.DefaultContentionPolicy(seed)
	if opt.Policy != nil {
		pol = *opt.Policy
	}
	r := &SharedRun{
		Name:  wl.Name,
		Arch:  arch,
		Heap:  heap,
		Dom:   htm.NewDomain(),
		Gov:   governor.NewContention(pol),
		trace: opt.Tracer,
	}
	cfg := htm.ROTConfig()
	if arch.HeavyweightHTM() {
		cfg = htm.RTMConfig()
	}
	for i, script := range wl.Workers {
		w := &SharedWorker{run: r, ID: i, sys: htm.New(cfg), script: script}
		if w.script.Rounds <= 0 {
			w.script.Rounds = 1
		}
		w.sys.AttachDomain(r.Dom, i)
		if opt.Configure != nil {
			opt.Configure(i, w.sys)
		}
		r.Workers = append(r.Workers, w)
	}
	return r, nil
}

func validateWorkload(wl *SharedWorkload, heap *value.SharedHeap) error {
	for wi, script := range wl.Workers {
		for si, sec := range script.Sections {
			for oi, op := range sec {
				var ok bool
				switch op.Kind {
				case OpAdd, OpReadCtr, OpPublish:
					ok = heap.Counter(op.Target) != nil
				case OpMapAdd, OpMapRead:
					ok = heap.Map(op.Target) != nil
				case OpPush, OpPop:
					ok = heap.Queue(op.Target) != nil
				default:
					return fmt.Errorf("%s: worker %d section %d op %d: unknown kind %d",
						wl.Name, wi, si, oi, op.Kind)
				}
				if !ok {
					return fmt.Errorf("%s: worker %d section %d op %d: target %q is not declared with the required kind",
						wl.Name, wi, si, oi, op.Target)
				}
			}
		}
	}
	return nil
}

// Sys exposes the worker's HTM system (probe installation, tests).
func (w *SharedWorker) Sys() *htm.System { return w.sys }

// Done reports whether the worker's script has completed.
func (w *SharedWorker) Done() bool { return w.state == wsDone }

func (w *SharedWorker) fn() string {
	return fmt.Sprintf("%s:w%d", w.run.Name, w.ID)
}

// site identifies the worker's current section to the contention governor.
// The key is per worker: the attempt ledger counts one execution's
// consecutive conflicts, which another worker's commits must not reset.
func (w *SharedWorker) site() string {
	return fmt.Sprintf("%s#s%d:w%d", w.run.Name, w.section, w.ID)
}

func (w *SharedWorker) emit(e Event) {
	if w.run.trace != nil {
		w.run.trace(e)
	}
}

// opKey resolves a map op's effective key for the current round.
func opKey(op SharedOp, round int) string {
	if op.Rotate {
		return op.Key + strconv.Itoa(round&7)
	}
	return op.Key
}

// inTxOpCycles is the in-transaction cost of one shared op; RTM's tracked
// reads slow every access of these read-modify-write ops.
func (w *SharedWorker) inTxOpCycles() int64 {
	cfg := w.sys.Config()
	return sharedOpCycles * cfg.ReadPenaltyNum / cfg.ReadPenaltyDen
}

// StepLocked advances the worker by one yield point under the domain's step
// lock. It reports whether the worker still has work.
func (r *SharedRun) StepLocked(w *SharedWorker) (bool, error) {
	r.Dom.Lock()
	defer r.Dom.Unlock()
	return w.step()
}

func (w *SharedWorker) step() (bool, error) {
	switch w.state {
	case wsDone:
		return false, nil
	case wsSectionStart:
		w.stepSectionStart()
	case wsTxOp:
		if err := w.stepTxOp(); err != nil {
			return false, err
		}
	case wsTxCommit:
		w.stepTxCommit()
	case wsBackoff:
		// Serve the randomized contention window, then re-attempt.
		w.Ctrs.AddCycles(w.pendingBackoff, false)
		w.emit(Event{Kind: EventBackoff, Fn: w.fn(), Window: w.pendingBackoff})
		w.Ctrs.SharedBackoffs++
		w.Ctrs.SharedTxRetries++
		w.pendingBackoff = 0
		w.state = wsSectionStart
	case wsGuardWait:
		// A speculative guard (empty pop / full push) failed: wait for
		// another worker to change the queue, then retry the section.
		w.Ctrs.AddCycles(guardWaitCycles, false)
		w.state = wsSectionStart
	case wsFallbackAcquire:
		w.stepFallbackAcquire()
	case wsFallbackOp:
		if err := w.stepFallbackOp(); err != nil {
			return false, err
		}
	case wsFallbackRelease:
		w.stepFallbackRelease()
	}
	return w.state != wsDone, nil
}

func (w *SharedWorker) stepSectionStart() {
	if w.forceFB || !w.run.Arch.UsesTransactions() || w.run.Gov.Demoted(w.site()) {
		w.state = wsFallbackAcquire
		w.stepFallbackAcquire()
		return
	}
	if w.run.Dom.FallbackHeld() {
		// Test before elision: starting a transaction under a held lock
		// would abort at the first access anyway.
		w.Ctrs.AddCycles(lockWaitCycles, false)
		return
	}
	w.sys.Begin(nil, nil)
	w.Ctrs.TxBegins++
	w.Ctrs.AddCycles(w.sys.Config().BeginCycles, true)
	w.accStart = w.Acc
	w.op = 0
	w.emit(Event{Kind: EventTxBegin, Fn: w.fn()})
	w.state = wsTxOp
}

func (w *SharedWorker) stepTxOp() error {
	sec := w.script.Sections[w.section]
	err := w.txOp(sec[w.op])
	switch e := err.(type) {
	case nil:
		w.Ctrs.SharedOps++
		w.Ctrs.AddCycles(w.inTxOpCycles(), true)
		w.op++
		if w.op == len(sec) {
			w.state = wsTxCommit
		}
		return nil
	case *htm.ConflictError:
		w.onConflict(e)
		return nil
	case *htm.CapacityError:
		w.onCapacity()
		return nil
	default:
		if errors.Is(err, errGuardRetry) {
			w.abortTx(htm.AbortCheck, htm.AttrNone)
			w.state = wsGuardWait
			return nil
		}
		return err
	}
}

func (w *SharedWorker) stepTxCommit() {
	if w.run.Dom.FallbackHeld() {
		// Lock-elision subscription: the commit observes the fallback lock
		// word held and the transaction dies.
		w.onConflict(&htm.ConflictError{With: -1, Attr: htm.AttrLock})
		return
	}
	t := w.sys.Current()
	wb := t.WriteBytes()
	if wb > w.Ctrs.TxWriteBytesMax {
		w.Ctrs.TxWriteBytesMax = wb
	}
	w.Ctrs.TxWriteBytesTotal += wb
	if a := int64(t.MaxWriteAssoc()); a > w.Ctrs.TxMaxAssoc {
		w.Ctrs.TxMaxAssoc = a
	}
	if rb := t.ReadBytes(); rb > w.Ctrs.TxReadBytesMax {
		w.Ctrs.TxReadBytesMax = rb
	}
	w.sys.Commit()
	w.Ctrs.TxCommits++
	w.Ctrs.AddCycles(w.sys.Config().CommitCycles, true)
	w.Ctrs.RetireOpenTx()
	w.emit(Event{Kind: EventTxCommit, Fn: w.fn(), WriteBytes: wb})
	w.run.Gov.OnCommit(w.site(), false)
	w.sectionDone()
}

// abortTx rolls the open transaction back and does the common bookkeeping.
func (w *SharedWorker) abortTx(cause htm.AbortCause, attr htm.Attribution) {
	wb := w.sys.Current().WriteBytes()
	w.sys.Abort(cause)
	w.Ctrs.TxAborts++
	switch cause {
	case htm.AbortConflict:
		w.Ctrs.TxConflictAborts++
	case htm.AbortCapacity:
		w.Ctrs.TxCapacityAborts++
	case htm.AbortCheck:
		w.Ctrs.TxCheckAborts++
	case htm.AbortSOF:
		w.Ctrs.TxSOFAborts++
	case htm.AbortIrrevocable:
		w.Ctrs.TxIrrevocableAborts++
	}
	w.Ctrs.SquashOpenTx(int(cause))
	w.Acc = w.accStart
	w.emit(Event{Kind: EventTxAbort, Fn: w.fn(), Cause: cause, Attr: attr, WriteBytes: wb})
}

// onConflict aborts the open transaction with conflict blame and asks the
// governor whether to back off and retry or retreat to the fallback.
func (w *SharedWorker) onConflict(ce *htm.ConflictError) {
	w.abortTx(htm.AbortConflict, ce.Attr)
	dec := w.run.Gov.OnConflict(w.site())
	if dec.Fallback {
		w.forceFB = true
		w.state = wsFallbackAcquire
		return
	}
	w.pendingBackoff = dec.BackoffCycles
	w.state = wsBackoff
}

// onCapacity aborts with capacity blame: the footprint is the section's own,
// so the execution retreats to the fallback immediately (no backoff — a
// deterministic overflow cannot be waited out).
func (w *SharedWorker) onCapacity() {
	w.abortTx(htm.AbortCapacity, htm.AttrNone)
	w.run.Gov.OnCapacity(w.site())
	w.forceFB = true
	w.state = wsFallbackAcquire
}

func (w *SharedWorker) stepFallbackAcquire() {
	if !w.run.Dom.AcquireFallback(w.ID) {
		w.Ctrs.AddCycles(lockWaitCycles, false)
		return
	}
	w.Ctrs.SharedFallbackAcquires++
	w.Ctrs.AddCycles(fbAcquireCycles, false)
	w.accStart = w.Acc
	w.fbUndo = w.fbUndo[:0]
	w.op = 0
	w.emit(Event{Kind: EventFallbackAcquire, Fn: w.fn()})
	// Writing the lock word invalidates it in every subscribed transaction:
	// all open remote speculation dies before the fallback touches data, so
	// the fallback path never reads dirty speculative state.
	for _, o := range w.run.Workers {
		if o != w && o.sys.InTx() {
			o.onConflict(&htm.ConflictError{With: w.ID, Attr: htm.AttrLock})
		}
	}
	w.state = wsFallbackOp
}

func (w *SharedWorker) stepFallbackOp() error {
	sec := w.script.Sections[w.section]
	err := w.fbOp(sec[w.op])
	if err != nil {
		if !errors.Is(err, errGuardRetry) {
			return err
		}
		// Roll the section's direct mutations back, drop the lock so the
		// worker that can satisfy the guard may run, and retry later.
		for i := len(w.fbUndo) - 1; i >= 0; i-- {
			w.fbUndo[i]()
		}
		w.fbUndo = w.fbUndo[:0]
		w.Acc = w.accStart
		w.run.Dom.ReleaseFallback(w.ID)
		w.emit(Event{Kind: EventFallbackRelease, Fn: w.fn()})
		w.state = wsGuardWait
		return nil
	}
	w.Ctrs.SharedOps++
	w.Ctrs.AddCycles(sharedOpCycles, false)
	w.op++
	if w.op == len(sec) {
		w.state = wsFallbackRelease
	}
	return nil
}

func (w *SharedWorker) stepFallbackRelease() {
	w.run.Dom.ReleaseFallback(w.ID)
	w.Ctrs.AddCycles(fbReleaseCycles, false)
	w.fbUndo = w.fbUndo[:0]
	w.emit(Event{Kind: EventFallbackRelease, Fn: w.fn()})
	if w.run.Arch.UsesTransactions() {
		if w.run.Gov.OnCommit(w.site(), true) {
			w.Ctrs.SharedRepromotions++
			w.emit(Event{Kind: EventRepromote, Fn: w.fn()})
		}
	}
	w.forceFB = false
	w.sectionDone()
}

func (w *SharedWorker) sectionDone() {
	w.section++
	if w.section == len(w.script.Sections) {
		w.section = 0
		w.round++
	}
	if w.round >= w.script.Rounds {
		w.state = wsDone
		return
	}
	w.state = wsSectionStart
}

// txOp executes one op transactionally: every load and store is tracked in
// the worker's HTM system (and therefore in the conflict domain), mutations
// happen only after the footprint is accepted, and undo actions restore the
// heap on abort. The semantics must match applySharedOp exactly — the
// schedule-sweep oracle diffs the two.
func (w *SharedWorker) txOp(op SharedOp) error {
	heap := w.run.Heap
	switch op.Kind {
	case OpAdd:
		c := heap.Counter(op.Target)
		if err := w.sys.RecordRead(c.Addr(), 8); err != nil {
			return err
		}
		old := c.Value
		if err := w.sys.RecordWrite(c.Addr(), 8, func() { c.Value = old }); err != nil {
			return err
		}
		c.Value = old + op.Imm
	case OpReadCtr:
		c := heap.Counter(op.Target)
		if err := w.sys.RecordRead(c.Addr(), 8); err != nil {
			return err
		}
		w.Acc += c.Value
	case OpMapAdd:
		m := heap.Map(op.Target)
		k := opKey(op, w.round)
		addr := m.StripeAddr(m.StripeFor(k))
		if err := w.sys.RecordRead(addr, 8); err != nil {
			return err
		}
		old := m.Get(k)
		if err := w.sys.RecordWrite(addr, 8, func() { m.Set(k, old) }); err != nil {
			return err
		}
		m.Set(k, old+op.Imm)
	case OpMapRead:
		m := heap.Map(op.Target)
		k := opKey(op, w.round)
		if err := w.sys.RecordRead(m.StripeAddr(m.StripeFor(k)), 8); err != nil {
			return err
		}
		w.Acc += m.Get(k)
	case OpPush:
		q := heap.Queue(op.Target)
		if err := w.sys.RecordRead(q.HeadAddr(), 8); err != nil {
			return err
		}
		if err := w.sys.RecordRead(q.TailAddr(), 8); err != nil {
			return err
		}
		if q.Len() >= q.Cap {
			return errGuardRetry
		}
		tail := q.Tail()
		if err := w.sys.RecordWrite(q.TailAddr(), 8, func() { q.SetTail(tail) }); err != nil {
			return err
		}
		oldSlot := q.Slot(tail)
		if err := w.sys.RecordWrite(q.SlotAddr(tail), 8, func() { q.SetSlot(tail, oldSlot) }); err != nil {
			return err
		}
		q.Push(op.Imm + int64(w.round))
	case OpPop:
		q := heap.Queue(op.Target)
		if err := w.sys.RecordRead(q.HeadAddr(), 8); err != nil {
			return err
		}
		if err := w.sys.RecordRead(q.TailAddr(), 8); err != nil {
			return err
		}
		if q.Len() == 0 {
			return errGuardRetry
		}
		head := q.Head()
		if err := w.sys.RecordRead(q.SlotAddr(head), 8); err != nil {
			return err
		}
		if err := w.sys.RecordWrite(q.HeadAddr(), 8, func() { q.SetHead(head) }); err != nil {
			return err
		}
		v, _ := q.Pop()
		w.Acc += v
	case OpPublish:
		c := heap.Counter(op.Target)
		if err := w.sys.RecordRead(c.Addr(), 8); err != nil {
			return err
		}
		old := c.Value
		if err := w.sys.RecordWrite(c.Addr(), 8, func() { c.Value = old }); err != nil {
			return err
		}
		c.Value = old + w.Acc
		w.Acc = 0
	}
	return nil
}

// fbOp executes one op on the fallback path: direct heap mutation under the
// software lock, with a local undo log so a failed guard can roll the
// section back before releasing.
func (w *SharedWorker) fbOp(op SharedOp) error {
	return applySharedOp(w.run.Heap, op, w.round, &w.Acc, &w.fbUndo)
}

// applySharedOp is the non-transactional semantics of one shared op — the
// fallback path and the single-threaded reference both use it, so the two
// agree by construction and any fast-path divergence is the transaction
// machinery's fault. undo, when non-nil, receives inverse actions.
func applySharedOp(heap *value.SharedHeap, op SharedOp, round int, acc *int64, undo *[]func()) error {
	log := func(f func()) {
		if undo != nil {
			*undo = append(*undo, f)
		}
	}
	switch op.Kind {
	case OpAdd:
		c := heap.Counter(op.Target)
		old := c.Value
		log(func() { c.Value = old })
		c.Value = old + op.Imm
	case OpReadCtr:
		*acc += heap.Counter(op.Target).Value
	case OpMapAdd:
		m := heap.Map(op.Target)
		k := opKey(op, round)
		old := m.Get(k)
		log(func() { m.Set(k, old) })
		m.Set(k, old+op.Imm)
	case OpMapRead:
		m := heap.Map(op.Target)
		*acc += m.Get(opKey(op, round))
	case OpPush:
		q := heap.Queue(op.Target)
		if q.Len() >= q.Cap {
			return errGuardRetry
		}
		tail := q.Tail()
		oldSlot := q.Slot(tail)
		log(func() { q.SetSlot(tail, oldSlot); q.SetTail(tail) })
		q.Push(op.Imm + int64(round))
	case OpPop:
		q := heap.Queue(op.Target)
		if q.Len() == 0 {
			return errGuardRetry
		}
		head := q.Head()
		log(func() { q.SetHead(head) })
		v, _ := q.Pop()
		*acc += v
	case OpPublish:
		c := heap.Counter(op.Target)
		old := c.Value
		log(func() { c.Value = old })
		c.Value = old + *acc
		*acc = 0
	}
	return nil
}

// SharedResult is the observable outcome of a shared run: the canonical heap
// snapshot, the per-worker accumulators, and the counters.
type SharedResult struct {
	Snapshot  string
	Accs      []int64
	PerWorker []stats.Counters
	Merged    stats.Counters
	Sites     []governor.ContentionSiteReport
	Steps     int64
}

func (r *SharedRun) result(steps int64) *SharedResult {
	res := &SharedResult{
		Snapshot: r.Heap.Snapshot(),
		Steps:    steps,
		Sites:    r.Gov.Report(),
	}
	parts := make([]*stats.Counters, 0, len(r.Workers))
	for _, w := range r.Workers {
		res.Accs = append(res.Accs, w.Acc)
		res.PerWorker = append(res.PerWorker, w.Ctrs)
		parts = append(parts, &w.Ctrs)
	}
	res.Merged = stats.Merge(parts...)
	return res
}

// xorshift is the scheduler's deterministic RNG.
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// RunScheduled executes the workload under a deterministic seeded scheduler:
// one goroutine, one worker step per tick, the seed fully determining the
// interleaving. Two calls with equal (workload, arch, seed, options) produce
// identical results, events included.
func RunScheduled(wl *SharedWorkload, arch vm.Arch, seed int64, opt SharedOptions) (*SharedResult, error) {
	r, err := NewSharedRun(wl, arch, seed, opt)
	if err != nil {
		return nil, err
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2_000_000
	}
	live := make([]*SharedWorker, len(r.Workers))
	copy(live, r.Workers)
	rng := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	var steps int64
	for len(live) > 0 {
		steps++
		if steps > maxSteps {
			return nil, fmt.Errorf("%s/%v: no progress after %d scheduled steps (livelocked script?)",
				wl.Name, arch, maxSteps)
		}
		rng = xorshift(rng)
		i := int(rng % uint64(len(live)))
		more, err := r.StepLocked(live[i])
		if err != nil {
			return nil, err
		}
		if !more {
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return r.result(steps), nil
}

// RunConcurrent executes the workload on one real goroutine per worker. The
// goroutines drive the identical step machine as RunScheduled — every step
// under the domain's step lock — so the Go scheduler merely picks the
// interleaving the seeded scheduler would otherwise dictate. The result is
// schedule-dependent in its counters but, by the workload determinism
// contract, not in its final heap state. The run is -race clean: all shared
// executor state is guarded by the domain lock.
func RunConcurrent(wl *SharedWorkload, arch vm.Arch, seed int64, opt SharedOptions) (*SharedResult, error) {
	r, err := NewSharedRun(wl, arch, seed, opt)
	if err != nil {
		return nil, err
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 2_000_000
	}
	var (
		wg       sync.WaitGroup
		total    atomic.Int64
		firstErr atomic.Value
	)
	for _, w := range r.Workers {
		wg.Add(1)
		go func(w *SharedWorker) {
			defer wg.Done()
			var steps int64
			for {
				steps++
				if steps > maxSteps {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s/%v: worker %d made no progress after %d steps",
						wl.Name, arch, w.ID, maxSteps))
					return
				}
				more, err := r.StepLocked(w)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if !more {
					total.Add(steps)
					return
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return nil, err
	}
	return r.result(total.Load()), nil
}

// RunReference executes the workload single-threaded: workers in index
// order, sections applied directly with no transactions, no locks, and no
// retries. This is the oracle's ground truth — a guard that fails here is a
// script bug (see the SharedWorkload determinism contract), not a scheduling
// artifact, so it is an error rather than a wait.
func RunReference(wl *SharedWorkload) (*SharedResult, error) {
	heap := wl.BuildHeap()
	if err := validateWorkload(wl, heap); err != nil {
		return nil, err
	}
	res := &SharedResult{Accs: make([]int64, len(wl.Workers))}
	for wi, script := range wl.Workers {
		rounds := script.Rounds
		if rounds <= 0 {
			rounds = 1
		}
		for round := 0; round < rounds; round++ {
			for si, sec := range script.Sections {
				for _, op := range sec {
					if err := applySharedOp(heap, op, round, &res.Accs[wi], nil); err != nil {
						return nil, fmt.Errorf("%s: reference stuck at worker %d section %d round %d: %v",
							wl.Name, wi, si, round, err)
					}
				}
			}
		}
	}
	res.Snapshot = heap.Snapshot()
	res.PerWorker = make([]stats.Counters, len(wl.Workers))
	return res, nil
}
