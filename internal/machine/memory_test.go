package machine

import (
	"testing"

	"nomap/internal/ir"
	"nomap/internal/profile"
	"nomap/internal/value"
)

func TestMemoryAddressesStableAndDisjoint(t *testing.T) {
	m := NewMemory()
	tab := value.NewShapeTable()
	a := value.NewObject(tab)
	b := value.NewObject(tab)
	arr := value.NewArray(tab, 16)

	if m.SlotAddr(a, 0) != m.SlotAddr(a, 0) {
		t.Error("addresses must be stable")
	}
	if m.SlotAddr(a, 0) == m.SlotAddr(b, 0) {
		t.Error("distinct objects must have distinct slot regions")
	}
	if m.SlotAddr(a, 1)-m.SlotAddr(a, 0) != valueSize {
		t.Error("slots must be value-sized apart")
	}
	if m.ElemAddr(arr, 1)-m.ElemAddr(arr, 0) != valueSize {
		t.Error("elements must be value-sized apart")
	}
	// Header words are distinct from slots.
	if m.ShapeAddr(a) == m.SlotAddr(a, 0) || m.LengthAddr(arr) == m.ElemAddr(arr, 0) {
		t.Error("header words must not alias payload")
	}
	// Slot region and element region of the same object are disjoint even
	// for large indices.
	if m.ElemAddr(arr, 100000) == m.SlotAddr(arr, 0) {
		t.Error("element region aliases slot region")
	}
}

func TestWeightsDFGCostsMoreThanFTL(t *testing.T) {
	f := ir.NewFunc("w", nil)
	b := f.NewBlock()
	ops := []ir.Op{
		ir.OpAddInt, ir.OpMulInt, ir.OpAddDouble, ir.OpDivDouble,
		ir.OpCheckBounds, ir.OpCheckShape, ir.OpCheckOverflow,
		ir.OpLoadSlot, ir.OpStoreSlot, ir.OpLoadElem, ir.OpStoreElem,
		ir.OpLoadGlobal, ir.OpCallRuntime, ir.OpToBool,
	}
	ftlW := WeightsFor(profile.TierFTL)
	dfgW := WeightsFor(profile.TierDFG)
	for _, op := range ops {
		v := b.NewValue(op, ir.TypeNone)
		if ftlW.Op(v) <= 0 {
			t.Errorf("%v: FTL weight must be positive", op)
		}
		if dfgW.Op(v) <= ftlW.Op(v) {
			t.Errorf("%v: DFG weight (%d) must exceed FTL (%d) — paper Table I",
				op, dfgW.Op(v), ftlW.Op(v))
		}
	}
	// Register-allocated pseudo-ops are free in both tiers.
	for _, op := range []ir.Op{ir.OpConst, ir.OpParam, ir.OpPhi} {
		v := b.NewValue(op, ir.TypeGeneric)
		if ftlW.Op(v) != 0 {
			t.Errorf("%v: weight must be 0", op)
		}
	}
}

func TestMathWeightsOrdering(t *testing.T) {
	// Transcendentals must cost more than simple rounding, mirroring real
	// libm costs the paper's benchmarks feel (S19's sin/cos dominance).
	if mathWeight("sin") <= mathWeight("floor") {
		t.Error("sin must cost more than floor")
	}
	if mathWeight("sqrt") <= mathWeight("abs") {
		t.Error("sqrt must cost more than abs")
	}
}
