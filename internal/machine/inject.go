package machine

import (
	"fmt"

	"nomap/internal/htm"
	"nomap/internal/stats"
)

// Fault injection. The oracle subsystem (internal/oracle) needs to force a
// transaction abort or a deoptimization at an arbitrary point of a run and
// then prove the fallback path re-executes with identical observable
// behaviour. The machine exposes its decision points — every check, every
// transaction begin/commit/tile — through the Injector interface below.
// Production runs install no injector; the only cost on the hot path is one
// nil check per site.

// SiteKind classifies an injectable site.
type SiteKind uint8

const (
	// SiteCheck is a speculation check: with a stack map (SMP) it deopts on
	// failure, without one (SMP turned abort by NoMap) it aborts the
	// enclosing transaction.
	SiteCheck SiteKind = iota
	// SiteTxBegin fires immediately after an outermost transaction opens.
	SiteTxBegin
	// SiteTxCommit fires immediately before an outermost commit retires.
	SiteTxCommit
	// SiteTxTile fires at each TxTile point while its transaction is open.
	SiteTxTile
	// SiteDispatch is a dispatch tree's non-deopting predicate (OpHasShape /
	// OpHasCallee): ActFailCheck forces the predicate false (the way is
	// skipped, cascading to the tail guard), ActPassCheck forces it true (the
	// oracle's stale-shape-cache planted bug: the wrong way's specialized body
	// runs for a receiver it was not built for).
	SiteDispatch
)

// String names the site kind.
func (k SiteKind) String() string {
	switch k {
	case SiteCheck:
		return "check"
	case SiteTxBegin:
		return "tx-begin"
	case SiteTxCommit:
		return "tx-commit"
	case SiteTxTile:
		return "tx-tile"
	case SiteDispatch:
		return "dispatch"
	}
	return "?"
}

// Site identifies one injectable point. (Fn, ValueID) is stable across the
// deterministic re-runs the oracle performs: the same program compiled at the
// same point in the run produces the same IR value numbering.
type Site struct {
	Kind SiteKind
	// Fn is the executing function's name.
	Fn string
	// ValueID is the IR value id of the site's op.
	ValueID int
	// OSR is the artifact's OSR-entry loop-header pc, or -1 for an
	// invocation-entry artifact. OSR artifacts number their values from a
	// fresh builder, so (Fn, ValueID) alone would collide with the main
	// artifact's sites; OSR disambiguates them.
	OSR int
	// Inline is the inline path of the site ("callee@pc" segments, root to
	// leaf) when the site lives in code the inliner flattened into Fn; ""
	// for sites in the root function's own code.
	Inline string
	// Check is the check's class (SiteCheck only).
	Check stats.CheckClass
	// HasSMP reports the check carries a stack map: failure deopts instead
	// of aborting (SiteCheck only).
	HasSMP bool
	// InTx reports whether a hardware transaction is open at the site.
	InTx bool
	// Failed reports the check's real outcome (SiteCheck and SiteDispatch) so
	// an injector can react to failures it did not itself force.
	Failed bool
	// Shape names the per-shape dispatch variant for SiteDispatch sites and
	// for dispatch-marked tail guards ("" for every other site, so existing
	// site identity is unchanged when no dispatch trees are in play).
	Shape string
}

// String renders the site for logs and sweep reports.
func (s Site) String() string {
	osr := ""
	if s.OSR >= 0 {
		osr = fmt.Sprintf("+osr%d", s.OSR)
	}
	inl := ""
	if s.Inline != "" {
		inl = fmt.Sprintf("+inl[%s]", s.Inline)
	}
	shp := ""
	if s.Shape != "" {
		shp = fmt.Sprintf("+shape[%s]", s.Shape)
	}
	if s.Kind == SiteCheck {
		smp := "abort"
		if s.HasSMP {
			smp = "smp"
		}
		return fmt.Sprintf("%s/%s[%s]@%s%s%s%s:v%d", s.Kind, s.Check, smp, s.Fn, osr, inl, shp, s.ValueID)
	}
	return fmt.Sprintf("%s@%s%s%s%s:v%d", s.Kind, s.Fn, osr, inl, shp, s.ValueID)
}

// Action is an injector's verdict for one site visit.
type Action uint8

const (
	// ActNone leaves the site alone.
	ActNone Action = iota
	// ActFailCheck forces the check to fail: a deopt for SMP checks, a
	// transactional abort for converted checks. Ignored at non-check sites
	// and at checks that can neither deopt nor abort.
	ActFailCheck
	// ActPassCheck forces a failing check to be treated as passed. This is
	// the oracle's planted compiler bug — a check removed without
	// transactional protection — and exists only so the differential oracle
	// can prove it catches that class of miscompilation.
	ActPassCheck
	// ActAbortCapacity aborts the open transaction as a capacity overflow.
	ActAbortCapacity
	// ActAbortSOF aborts the open transaction as a sticky-overflow event.
	ActAbortSOF
	// ActAbortIrrevocable aborts the open transaction as an irrevocable
	// event.
	ActAbortIrrevocable
	// ActTileCommit forces a TxTile point to commit-and-reopen even though
	// the footprint is below the tiling threshold (SiteTxTile only).
	ActTileCommit
)

// Injector is consulted at every injectable site of a run.
// Implementations must be deterministic: the oracle relies on a re-run
// visiting the same site sequence up to the first injected fault.
type Injector interface {
	At(site Site) Action
}

// SetInjector installs (or clears, with nil) the fault injector.
func (m *Machine) SetInjector(i Injector) { m.inject = i }

// abortCause maps an abort action to its HTM cause; ok is false for
// non-abort actions.
func (a Action) abortCause() (htm.AbortCause, bool) {
	switch a {
	case ActAbortCapacity:
		return htm.AbortCapacity, true
	case ActAbortSOF:
		return htm.AbortSOF, true
	case ActAbortIrrevocable:
		return htm.AbortIrrevocable, true
	}
	return 0, false
}
