package machine_test

import (
	"testing"

	"nomap/internal/htm"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

func newEngine(arch vm.Arch) *vm.VM {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	v := vm.New(cfg)
	jit.Attach(v)
	return v
}

// newEngineNoInline disables speculative call inlining, for tests that
// exercise real call-inside-transaction behaviour (the inliner would
// otherwise flatten the callee and the call disappears).
func newEngineNoInline(arch vm.Arch) *vm.VM {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	cfg.DisableInlining = true
	v := vm.New(cfg)
	jit.Attach(v)
	return v
}

func warm(t *testing.T, v *vm.VM, src string, calls int, args ...value.Value) value.Value {
	t.Helper()
	if _, err := v.Run(src); err != nil {
		t.Fatal(err)
	}
	var last value.Value
	for i := 0; i < calls; i++ {
		r, err := v.CallGlobal("run", args...)
		if err != nil {
			t.Fatal(err)
		}
		last = r
	}
	return last
}

// A transaction abort must roll back every store performed inside the
// transaction — including stores done by Baseline callees — and Baseline
// re-execution must produce the correct final state.
func TestAbortRollsBackHeapWrites(t *testing.T) {
	src := `
var a = [];
for (var i = 0; i < 32; i++) a[i] = i;
var sideEffects = {count: 0};
function run(n) {
  for (var i = 0; i < n; i++) {
    a[i] = a[i] + 1;
    sideEffects.count = sideEffects.count + 1;
  }
  return a[n - 1];
}
`
	v := newEngine(vm.ArchNoMap)
	warm(t, v, src, 60, value.Int(32))
	base := v.Counters().TxAborts
	// Poison element 16 with a string: the int32 speculation fails inside
	// the transaction, aborts, and Baseline re-executes.
	if _, err := v.Run(`a[16] = "x";`); err != nil {
		t.Fatal(err)
	}
	before := v.Globals().Get("sideEffects").Object().Get("count").ToNumber()
	r, err := v.CallGlobal("run", value.Int(32))
	if err != nil {
		t.Fatal(err)
	}
	after := v.Globals().Get("sideEffects").Object().Get("count").ToNumber()
	if v.Counters().TxAborts <= base {
		t.Fatal("expected a transaction abort from the poisoned element")
	}
	// Exactly one loop's worth of side effects must be visible: the aborted
	// attempt's increments were rolled back, the Baseline re-execution's
	// increments remain.
	if after-before != 32 {
		t.Errorf("side-effect count advanced by %v, want exactly 32 (rollback + one re-execution)", after-before)
	}
	// "x" + 1 concatenates; a[16] becomes "x1". The last element started at
	// 31 and has been incremented by the 60 warm-up calls plus this call.
	if r.ToNumber() != 92 {
		t.Errorf("run result = %v, want 92", r)
	}
	got := v.Globals().Get("a").Object().GetElement(16)
	if got.ToStringValue() != "x1" {
		t.Errorf("a[16] = %q, want \"x1\"", got.ToStringValue())
	}
}

// Instruction classes: Base puts all FTL instructions in NoTM; NoMap moves
// hot-loop instructions to TMOpt; callees invoked from a transaction that
// were compiled without transactions count as TMUnopt.
func TestInstructionClassAttribution(t *testing.T) {
	src := `
var a = [];
for (var i = 0; i < 64; i++) a[i] = i;
function leaf(x) { return x * 2 + 1; }
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += leaf(a[i]);
  return s;
}
`
	// Inlining off: TMUnopt attribution needs leaf to stay an actual call
	// executed from inside the transaction.
	v := newEngineNoInline(vm.ArchNoMap)
	warm(t, v, src, 80, value.Int(64))
	v.ResetCounters()
	warm2 := func() {
		if _, err := v.CallGlobal("run", value.Int(64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		warm2()
	}
	c := v.Counters()
	if c.Instr[stats.TMOpt] == 0 {
		t.Error("expected TMOpt instructions (the transactional loop)")
	}
	if c.Instr[stats.TMUnopt] == 0 {
		t.Error("expected TMUnopt instructions (leaf called from inside the transaction)")
	}
	if c.CyclesTM == 0 {
		t.Error("expected TMTime")
	}

	b := newEngine(vm.ArchBase)
	warm(t, b, src, 80, value.Int(64))
	b.ResetCounters()
	if _, err := b.CallGlobal("run", value.Int(64)); err != nil {
		t.Fatal(err)
	}
	cb := b.Counters()
	if cb.Instr[stats.TMOpt] != 0 || cb.Instr[stats.TMUnopt] != 0 {
		t.Error("Base must have no transactional instruction classes")
	}
	if cb.CyclesTM != 0 {
		t.Error("Base must have no TMTime")
	}
}

// The SOF configuration removes in-transaction overflow checks; an actual
// overflow then aborts (attributed to the sticky flag) and the function
// recompiles with double arithmetic.
func TestSOFAbortOnOverflow(t *testing.T) {
	src := `
function run(x, n) {
  var s = 1;
  for (var i = 0; i < n; i++) s = (s * x) + 1;
  return s;
}
`
	v := newEngine(vm.ArchNoMap)
	// Warm with small values: int32 path, no overflow.
	warm(t, v, src, 60, value.Int(2), value.Int(8))
	if v.Counters().Checks[stats.CheckOverflow] != 0 {
		// Overflow checks inside the transaction are free; executed count
		// must exclude them.
		t.Errorf("SOF config still counts %d overflow checks", v.Counters().Checks[stats.CheckOverflow])
	}
	before := v.Counters().TxSOFAborts
	// Now force an overflow.
	r, err := v.CallGlobal("run", value.Int(7), value.Int(40))
	if err != nil {
		t.Fatal(err)
	}
	if v.Counters().TxSOFAborts <= before {
		t.Error("expected a sticky-overflow abort")
	}
	// Result must still be exact (recomputed with doubles in Baseline).
	want := 1.0
	for i := 0; i < 40; i++ {
		want = want*7 + 1
	}
	if r.ToNumber() != want {
		t.Errorf("result = %v, want %v", r.ToNumber(), want)
	}
}

// RTM capacity: a large write footprint must abort under RTM rules and the
// runtime must retreat until the function runs without transactions.
func TestRTMCapacityRetreat(t *testing.T) {
	src := `
var buf = new Array(8192);
function run() {
  for (var i = 0; i < 8192; i++) buf[i] = i * 3;
  return buf[8191];
}
`
	v := newEngine(vm.ArchNoMapRTM)
	warm(t, v, src, 80)
	c := v.Counters()
	if c.TxCapacityAborts == 0 {
		t.Fatal("64KB of writes must overflow RTM's 32KB L1D write budget")
	}
	// Steady state: transactions removed, no further aborts, TMOpt ~ 0.
	v.ResetCounters()
	for i := 0; i < 10; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatal(err)
		}
	}
	cs := v.Counters()
	if cs.TxCapacityAborts != 0 {
		t.Errorf("steady state still aborting (%d capacity aborts)", cs.TxCapacityAborts)
	}
	if cs.Instr[stats.TMOpt] != 0 {
		t.Errorf("transactions should be gone; TMOpt=%d", cs.Instr[stats.TMOpt])
	}

	// The lightweight HTM fits the same footprint (64KB < 192KB threshold).
	l := newEngine(vm.ArchNoMap)
	warm(t, l, src, 80)
	l.ResetCounters()
	for i := 0; i < 10; i++ {
		if _, err := l.CallGlobal("run"); err != nil {
			t.Fatal(err)
		}
	}
	if l.Counters().Instr[stats.TMOpt] == 0 {
		t.Error("lightweight HTM should keep its transactions")
	}
}

// Lightweight HTM tiling: a footprint exceeding even the L2 budget retreats
// to tiled transactions that commit at back edges instead of disappearing.
func TestROTTilingKeepsTransactions(t *testing.T) {
	src := `
var buf = new Array(40000);
function run() {
  for (var i = 0; i < 40000; i++) buf[i] = i & 1023;
  return buf[39999];
}
`
	v := newEngine(vm.ArchNoMap)
	// Warm past the governor's probationary re-promotion attempts: the
	// footprint never shrinks, so each probe of the innermost level aborts
	// once and doubles the retry window until the level pins at tiled.
	warm(t, v, src, 180)
	v.ResetCounters()
	for i := 0; i < 5; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatal(err)
		}
	}
	c := v.Counters()
	if c.Instr[stats.TMOpt] == 0 {
		t.Error("tiled transactions should still execute TMOpt code")
	}
	if c.TxCommits <= 5 {
		t.Errorf("tile commits expected (multiple commits per call), got %d", c.TxCommits)
	}
	if c.TxCapacityAborts != 0 {
		t.Errorf("steady state still capacity-aborting: %d", c.TxCapacityAborts)
	}
}

// Irrevocable operations (print) inside a transaction must abort it first
// and still produce their effect exactly once via Baseline re-execution.
func TestIrrevocableAbortsTransaction(t *testing.T) {
	src := `
function run(n, chatty) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s += i;
    if (chatty && i == n - 1) print("s =", s);
  }
  return s;
}
`
	v := newEngine(vm.ArchNoMap)
	warm(t, v, src, 70, value.Int(50), value.Boolean(false))
	before := v.Counters().TxAborts
	r, err := v.CallGlobal("run", value.Int(50), value.Boolean(true))
	if err != nil {
		t.Fatal(err)
	}
	if r.ToNumber() != 1225 {
		t.Errorf("result = %v", r)
	}
	if got := v.Counters().TxAborts; got <= before {
		t.Error("print inside a transaction must abort it")
	}
	if len(v.Output) != 1 || v.Output[0] != "s = 1225" {
		t.Errorf("Output = %q, want exactly one correct line", v.Output)
	}
}

// The RTM read penalty must make in-transaction cycles more expensive than
// the lightweight HTM's for the same read-heavy workload.
func TestRTMReadPenalty(t *testing.T) {
	src := `
var data = new Array(512);
for (var i = 0; i < 512; i++) data[i] = i;
function run() {
  var s = 0;
  for (var j = 0; j < 512; j++) s += data[j];
  return s;
}
`
	measure := func(arch vm.Arch) int64 {
		v := newEngine(arch)
		warm(t, v, src, 80)
		v.ResetCounters()
		for i := 0; i < 20; i++ {
			if _, err := v.CallGlobal("run"); err != nil {
				t.Fatal(err)
			}
		}
		return v.Counters().TotalCycles()
	}
	rot := measure(vm.ArchNoMapB)
	rtm := measure(vm.ArchNoMapRTM)
	if rtm <= rot {
		t.Errorf("RTM cycles (%d) should exceed lightweight HTM cycles (%d): slower reads + commits", rtm, rot)
	}
}

// Capacity rules derived from the paper's cache geometry.
func TestHTMConfigs(t *testing.T) {
	rot := htm.ROTConfig()
	if rot.WriteSets*rot.WriteWays*rot.LineSize != 256<<10 {
		t.Error("ROT write capacity must equal the 256KB L2")
	}
	if rot.ReadSets != 0 {
		t.Error("ROT must not track reads")
	}
	rtm := htm.RTMConfig()
	if rtm.WriteSets*rtm.WriteWays*rtm.LineSize != 32<<10 {
		t.Error("RTM write capacity must equal the 32KB L1D")
	}
	if rtm.ReadSets*rtm.ReadWays*rtm.LineSize != 256<<10 {
		t.Error("RTM read capacity must equal the 256KB L2")
	}
	if rtm.CommitCycles <= rot.CommitCycles {
		t.Error("RTM commit (write drain) must cost more than ROT flash-clear")
	}
}
