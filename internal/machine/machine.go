// Package machine executes speculative-tier IR on a modeled microarchitecture:
// per-op dynamic x86-64 instruction weights, a simulated cache hierarchy, and
// a hardware-transactional-memory system (lightweight ROT or Intel RTM).
//
// It implements the two control transfers at the heart of the paper:
//
//   - Deoptimization: a failed check with a Stack Map Point materializes the
//     Baseline register file from the stack map and returns a Deopt for the
//     JIT driver to resume in the Baseline tier (paper §II-B).
//
//   - Transactional abort: a failed check inside a transaction (its SMP
//     removed by NoMap) rolls back the transaction's write set via the undo
//     log and transfers to the Baseline entry recorded at the transaction
//     begin (paper Figure 5, Entry₃). Aborts unwind through nested frames to
//     the owner of the outermost transaction (flattened nesting, §V-A).
package machine

import (
	"fmt"
	"math"

	"nomap/internal/bytecode"
	"nomap/internal/cache"
	"nomap/internal/frame"
	"nomap/internal/htm"
	"nomap/internal/ir"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

// Host is the engine facade the machine calls back into.
type Host interface {
	Shapes() *value.ShapeTable
	Globals() *value.Object
	// Handles is the isolate's handle slab: machine operand slots are
	// NaN-boxed words, and string/object operands reference the heap
	// through it.
	Handles() *value.Handles
	Call(fn *value.Function, this value.Value, args []value.Value) (value.Value, error)
	Construct(fn *value.Function, args []value.Value) (value.Value, error)
	InvokeMethod(recv value.Value, name string, args []value.Value) (value.Value, error)
	Counters() *stats.Counters
	// ProfileFor returns the profile of a bytecode function; the machine
	// folds its locally counted loop back edges into it on clean returns so
	// loop-trip profiling stays consistent across tiers.
	ProfileFor(fn *bytecode.Function) *profile.FunctionProfile
}

// Machine is the execution engine for one VM.
type Machine struct {
	host  Host
	Mem   *Memory
	Cache *cache.Hierarchy
	HTM   *htm.System

	hook            *txHook
	trace           Tracer
	inject          Injector
	frameSeq        int
	pendingCapacity bool
	// fatValues models the pre-boxing two-word value layout (DisableBoxing):
	// heap slots and elements occupy 16 bytes instead of 8, so transactional
	// writes span more cache lines.
	fatValues bool
	// txHadCalls tracks whether user code was invoked inside the currently
	// open outermost transaction (reset at every outermost begin and tile
	// re-begin). It feeds Deopt.HadCalls: §V-C blames the callee for a
	// capacity overflow only when a callee actually ran in the squashed
	// transaction, not merely when the function body contains a call — OSR
	// entry routinely compiles functions whose out-of-loop head still holds
	// unprofiled generic calls that never execute transactionally.
	txHadCalls bool
	// icSeen bounds IC trace noise: EventICHit / EventICTransition fire once
	// per dispatch site per machine reset. Allocated lazily, only while a
	// tracer is installed.
	icSeen map[string]bool
}

// New creates a machine with the given HTM flavour.
func New(host Host, htmCfg htm.Config) *Machine {
	m := &Machine{
		host:  host,
		Mem:   NewMemory(),
		Cache: cache.NewHierarchy(),
		HTM:   htm.New(htmCfg),
	}
	m.hook = &txHook{m: m}
	return m
}

// ResetState returns the machine's simulated hardware to its initial
// condition: a fresh address map, cold caches, and cleared HTM state. The
// jit backend's Reset calls it so differential runs on a reused engine see
// the same address stream and cache behaviour as a fresh one.
func (m *Machine) ResetState() {
	m.Mem = NewMemorySized(m.valueBytes())
	m.Cache = cache.NewHierarchy()
	m.HTM.Reset()
	m.pendingCapacity = false
	m.frameSeq = 0
	m.txHadCalls = false
	m.icSeen = nil
}

// InTx reports whether a hardware transaction is open.
func (m *Machine) InTx() bool { return m.HTM.InTx() }

// SetFatValues selects the modeled value stride: false (default) is the
// one-word NaN-boxed layout, true the fat two-word layout of the
// DisableBoxing A/B. Rebuilds the address map, so call it only at reset
// points.
func (m *Machine) SetFatValues(fat bool) {
	m.fatValues = fat
	m.Mem = NewMemorySized(m.valueBytes())
}

func (m *Machine) valueBytes() int {
	if m.fatValues {
		return fatSize
	}
	return valueSize
}

// Deopt describes a transfer to the Baseline tier.
type Deopt struct {
	// Frame is the materialized activation record Baseline resumes: the
	// stack map's register file (or the transaction's recovery entry)
	// positioned at the resume pc, carrying the frame's unflushed back-edge
	// delta.
	Frame *frame.Frame
	// Aborted is set when the transfer came from a transaction abort
	// rather than a plain OSR exit.
	Aborted bool
	Cause   htm.AbortCause
	// CheckClass is the failing check's class for check-caused transfers.
	CheckClass stats.CheckClass
	// HadCalls reports whether user code was actually invoked inside the
	// aborted transaction (used by the §V-C policy: transactions whose
	// overflow may be a callee's footprint are removed rather than tiled).
	HadCalls bool
	// SiteFn, SitePC and SiteValueID identify the IR site that triggered the
	// transfer (the failing check, the overflowing write, or the call whose
	// callee was irrevocable). The abort-recovery governor keys its per-site
	// ledgers by (SiteFn, inline path, SitePC, CheckClass); SiteValueID is
	// diagnostic only, as value numbering does not survive recompilation.
	SiteFn      string
	SitePC      int
	SiteValueID int
	// SitePath is the inline path of the triggering site ("" for sites in
	// the compiled function's own code): when the inlining pass flattened a
	// callee into SiteFn, SitePC is a pc within that callee and SitePath
	// says which flattened activation it was.
	SitePath string
	// SiteShape names the per-shape dispatch variant when the triggering
	// site is a dispatch tree's guard ("" otherwise): the governor's
	// dispatch-miss ledgers key on it so one hot wrong-shape receiver is
	// distinguishable from a megamorphic storm across many.
	SiteShape string
	// SiteDispatch reports the triggering site belongs to a dispatch tree.
	SiteDispatch bool
}

// txUnwind propagates a transaction abort out of nested frames until it
// reaches the frame that owns the outermost transaction.
type txUnwind struct {
	owner        int
	rec          *frame.Frame
	cause        htm.AbortCause
	class        stats.CheckClass
	siteFn       string
	sitePC       int
	siteVID      int
	sitePath     string
	siteShape    string
	siteDispatch bool
}

func (e *txUnwind) Error() string {
	return fmt.Sprintf("machine: transaction abort (%s) unwinding to frame %d", e.cause, e.owner)
}

// RuntimeError is a JavaScript-level error raised by optimized code.
type RuntimeError struct {
	Fn  string
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s (FTL): %s", e.Fn, e.Msg)
}

// commitFraction: a TxTile commits early once the write footprint exceeds
// this fraction of capacity (paper §V-C tiling so state fits in cache).
const commitFractionNum, commitFractionDen = 3, 4

// Run executes f from its invocation entry with the given tier's cost model.
// It returns either a result, a Deopt (OSR exit or abort), or an error.
func (m *Machine) Run(f *ir.Func, tier profile.Tier, args []value.Value) (value.Value, *Deopt, error) {
	return m.runFrom(f, tier, args, nil)
}

// EnterAt performs an OSR entry: it resumes the materialized frame fr inside
// the OSR artifact f (compiled with its entry at fr's loop header), binding
// fr's locals to the artifact's OpOSRLocal values and continuing in optimized
// code without returning to the caller. The artifact's transactions begin at
// the OSR entry under the same TxLevel rules as invocation-entry code.
func (m *Machine) EnterAt(f *ir.Func, tier profile.Tier, fr *frame.Frame) (value.Value, *Deopt, error) {
	if f.OSREntryPC < 0 || fr.PC != f.OSREntryPC {
		return value.Undefined(), nil, &RuntimeError{Fn: f.Name,
			Msg: fmt.Sprintf("OSR entry pc mismatch: frame@%d, artifact@%d", fr.PC, f.OSREntryPC)}
	}
	m.host.Counters().OSREntries++
	m.emit(Event{Kind: EventOSREntry, Fn: f.Name, PC: fr.PC, Tier: tier})
	return m.runFrom(f, tier, nil, fr)
}

// runFrom is the shared execution core behind Run and EnterAt. For OSR
// entries osr is the incoming frame; otherwise args carry the invocation
// parameters.
func (m *Machine) runFrom(f *ir.Func, tier profile.Tier, args []value.Value, osr *frame.Frame) (value.Value, *Deopt, error) {
	m.frameSeq++
	tok := m.frameSeq
	w := WeightsFor(tier)
	ctrs := m.host.Counters()
	if tier == profile.TierFTL {
		ctrs.FTLCalls++
	} else {
		ctrs.DFGCalls++
	}

	hd := m.host.Handles()
	vals := make([]value.Boxed, f.NumValues())
	for i := range vals {
		vals[i] = value.BoxedUndefined // the zero Boxed is +0.0
	}
	oflow := make([]bool, f.NumValues())
	var phiScratch []value.Boxed

	// Loop back edges taken by this frame, not yet folded into the function
	// profiles — one slot per logical frame: slot 0 is the compiled
	// function's own frame, slot i is the flattened activation
	// f.Inlines[i-1], so inlined loop trips still land in the callee's
	// profile. beCheck is the checkpoint the counts roll back to on abort:
	// the squashed iterations are re-executed (and re-counted) by Baseline.
	// An OSR frame may arrive carrying a delta from the tier that handed it
	// over.
	backEdges := make([]int64, len(f.Inlines)+1)
	if osr != nil {
		backEdges[0] = osr.BackEdges
		osr.BackEdges = 0
	}
	beCheck := make([]int64, len(backEdges))
	copy(beCheck, backEdges)
	slotSource := func(i int) *bytecode.Function {
		if i == 0 {
			return f.Source
		}
		return f.Inlines[i-1].Source
	}

	account := func(instr, extraCycles int64) {
		inTx := m.HTM.InTx()
		class := stats.NoTM
		if inTx {
			if f.TxAware {
				class = stats.TMOpt
			} else {
				class = stats.TMUnopt
			}
		}
		ctrs.AddInstr(class, instr)
		ctrs.AddCycles(instr+extraCycles, inTx)
	}

	errf := func(format string, a ...any) error {
		return &RuntimeError{Fn: f.Name, Msg: fmt.Sprintf(format, a...)}
	}

	// materialize builds the Baseline-resumable frame chain from a stack
	// map: the map's own frame plus, through its Caller chain, every
	// enclosing frame the inlining pass flattened, innermost first. OSR
	// frames keep their environment on the root frame; invocation-entry
	// artifacts never touch one (closure-using functions are not compiled)
	// and leave it nil for the JIT driver to supply. Inline frames carry
	// their function object so the resume loop can allocate the callee
	// environment.
	materialize := func(sm *ir.StackMap) *frame.Frame {
		var innermost, child *frame.Frame
		for cur := sm; cur != nil; cur = cur.Caller {
			src := f.Source
			var fnObj *value.Function
			idx, retReg := 0, 0
			if cur.Inline != nil {
				src, fnObj = cur.Inline.Source, cur.Inline.Callee
				idx, retReg = cur.Inline.Index, cur.Inline.RetReg
			}
			regs := make([]value.Boxed, src.NumRegs)
			for i := range regs {
				regs[i] = value.BoxedUndefined
			}
			for _, e := range cur.Entries {
				if e.Reg < len(regs) {
					regs[e.Reg] = vals[e.Val.ID]
				}
			}
			fr := &frame.Frame{Fn: src, PC: cur.PC, Locals: regs,
				Function: fnObj, InlineIndex: idx, RetReg: retReg}
			if cur.Inline == nil && osr != nil {
				fr.Env = osr.Env
			}
			if child != nil {
				child.Caller = fr
			} else {
				innermost = fr
			}
			child = fr
		}
		return innermost
	}

	// assignBackEdges hands each frame in the reconstructed chain its
	// surviving back-edge count; slots belonging to flattened activations
	// not present in the chain (already-completed inlined calls whose code
	// the resumed Baseline execution will not re-run) fold straight into
	// their function profiles.
	assignBackEdges := func(fr *frame.Frame) {
		rem := make([]int64, len(backEdges))
		copy(rem, backEdges)
		for x := fr; x != nil; x = x.Caller {
			if x.InlineIndex < len(rem) {
				x.BackEdges = rem[x.InlineIndex]
				rem[x.InlineIndex] = 0
			}
		}
		for i, n := range rem {
			if n != 0 {
				m.host.ProfileFor(slotSource(i)).AddBackEdges(n)
			}
		}
	}

	// abort rolls back the open transaction nest and routes control to the
	// owner frame's recovery state. The failing site (this frame's IR value
	// sv) travels with the transfer so the governor can attribute the abort.
	abort := func(cause htm.AbortCause, class stats.CheckClass, sv *ir.Value) (*Deopt, error) {
		sitePC, siteVID, sitePath := sv.BCPos, sv.ID, sv.InlinePath()
		t := m.HTM.Current()
		if t == nil {
			return nil, errf("abort without open transaction")
		}
		owner := t.Owner.(int)
		rec := t.Recover.(*frame.Frame)
		m.noteTxStats(ctrs, t)
		m.emit(Event{Kind: EventTxAbort, Fn: f.Name, Cause: cause, CheckClass: class, PC: rec.PC, WriteBytes: t.WriteBytes()})
		m.uninstallHook()
		if err := m.HTM.Abort(cause); err != nil {
			return nil, err
		}
		ctrs.TxAborts++
		switch cause {
		case htm.AbortCapacity:
			ctrs.TxCapacityAborts++
			if m.txHadCalls {
				// §V-C callee blame: this overflow pins the function to
				// TxOff. The call-heavy suite's acceptance check is that
				// inlining drives this counter to zero.
				ctrs.TxCallBlamedAborts++
			}
		case htm.AbortSOF:
			ctrs.TxSOFAborts++
		case htm.AbortCheck:
			ctrs.TxCheckAborts++
		case htm.AbortIrrevocable:
			ctrs.TxIrrevocableAborts++
		case htm.AbortConflict:
			// Unreachable from single-isolate LIR execution (no conflict
			// domain is attached); kept so the cause partition stays
			// exhaustive if that ever changes.
			ctrs.TxConflictAborts++
		}
		ctrs.SquashOpenTx(int(cause))
		if owner == tok {
			// Back edges of the squashed iterations roll back to the
			// transaction-begin checkpoint; Baseline re-executes and
			// re-counts them. The surviving counts travel with the frames.
			copy(backEdges, beCheck)
			assignBackEdges(rec)
			return &Deopt{Frame: rec, Aborted: true, Cause: cause, CheckClass: class,
				HadCalls: m.txHadCalls, SiteFn: f.Name, SitePC: sitePC, SiteValueID: siteVID, SitePath: sitePath,
				SiteShape: sv.DispatchShape(), SiteDispatch: sv.Dispatch}, nil
		}
		// A callee frame inside the owner's transaction: everything this
		// frame did — including its back edges — is squashed work.
		return nil, &txUnwind{owner: owner, rec: rec, cause: cause, class: class,
			siteFn: f.Name, sitePC: sitePC, siteVID: siteVID, sitePath: sitePath,
			siteShape: sv.DispatchShape(), siteDispatch: sv.Dispatch}
	}

	// handleCallErr routes errors coming back from calls: transaction
	// unwinds addressed to this frame become Deopts; irrevocable-operation
	// errors abort the open transaction, attributed to the call site v.
	handleCallErr := func(v *ir.Value, err error) (*Deopt, error) {
		if u, ok := err.(*txUnwind); ok {
			if u.owner == tok {
				// This frame owned the aborted transaction: roll its
				// back-edge counts to the begin checkpoint and hand the
				// survivors to the recovery frame chain.
				copy(backEdges, beCheck)
				assignBackEdges(u.rec)
				return &Deopt{Frame: u.rec, Aborted: true, Cause: u.cause, CheckClass: u.class,
					HadCalls: m.txHadCalls, SiteFn: u.siteFn, SitePC: u.sitePC, SiteValueID: u.siteVID, SitePath: u.sitePath,
					SiteShape: u.siteShape, SiteDispatch: u.siteDispatch}, nil
			}
			return nil, err
		}
		if err == htm.ErrIrrevocable && m.HTM.InTx() {
			return abort(htm.AbortIrrevocable, stats.CheckOther, v)
		}
		return nil, err
	}

	block := f.Entry
	var prev *ir.Block
	for {
		// Phi parallel copy on block entry.
		if prev != nil {
			k := block.PredIndex(prev)
			phiScratch = phiScratch[:0]
			for _, v := range block.Values {
				if v.Op != ir.OpPhi {
					break
				}
				if k < len(v.Args) {
					phiScratch = append(phiScratch, vals[v.Args[k].ID])
				} else {
					phiScratch = append(phiScratch, value.BoxedUndefined)
				}
			}
			i := 0
			for _, v := range block.Values {
				if v.Op != ir.OpPhi {
					break
				}
				vals[v.ID] = phiScratch[i]
				i++
			}
		}

		for _, v := range block.Values {
			if v.Op == ir.OpPhi {
				continue
			}
			instr := w.Op(v)
			var extra int64

			switch v.Op {
			case ir.OpConst:
				// Boxed at execution time: the ir.Func is shared across
				// isolates, and string/object handles are per-isolate.
				vals[v.ID] = hd.Box(v.AuxVal)
			case ir.OpParam:
				if int(v.AuxInt) < len(args) {
					vals[v.ID] = hd.Box(args[v.AuxInt])
				} else {
					vals[v.ID] = value.BoxedUndefined
				}
			case ir.OpOSRLocal:
				if osr != nil && int(v.AuxInt) < len(osr.Locals) {
					vals[v.ID] = osr.Locals[v.AuxInt] // already boxed words
				} else {
					vals[v.ID] = value.BoxedUndefined
				}

			case ir.OpAddInt, ir.OpSubInt, ir.OpMulInt, ir.OpNegInt:
				a := int64(vals[v.Args[0].ID].Int32())
				var r int64
				switch v.Op {
				case ir.OpAddInt:
					r = a + int64(vals[v.Args[1].ID].Int32())
				case ir.OpSubInt:
					r = a - int64(vals[v.Args[1].ID].Int32())
				case ir.OpMulInt:
					b := int64(vals[v.Args[1].ID].Int32())
					r = a * b
					if r == 0 && (a < 0 || b < 0) {
						oflow[v.ID] = true
					}
				case ir.OpNegInt:
					r = -a
					if a == 0 {
						oflow[v.ID] = true
					}
				}
				if r < math.MinInt32 || r > math.MaxInt32 {
					oflow[v.ID] = true
				}
				vals[v.ID] = value.BoxInt(int32(uint32(uint64(r))))

			case ir.OpBitAnd:
				vals[v.ID] = value.BoxInt(vals[v.Args[0].ID].Int32() & vals[v.Args[1].ID].Int32())
			case ir.OpBitOr:
				vals[v.ID] = value.BoxInt(vals[v.Args[0].ID].Int32() | vals[v.Args[1].ID].Int32())
			case ir.OpBitXor:
				vals[v.ID] = value.BoxInt(vals[v.Args[0].ID].Int32() ^ vals[v.Args[1].ID].Int32())
			case ir.OpShl:
				vals[v.ID] = value.BoxInt(vals[v.Args[0].ID].Int32() << (uint32(vals[v.Args[1].ID].Int32()) & 31))
			case ir.OpShr:
				vals[v.ID] = value.BoxInt(vals[v.Args[0].ID].Int32() >> (uint32(vals[v.Args[1].ID].Int32()) & 31))
			case ir.OpUShr:
				u := uint32(vals[v.Args[0].ID].Int32()) >> (uint32(vals[v.Args[1].ID].Int32()) & 31)
				if u > math.MaxInt32 {
					oflow[v.ID] = true
				}
				vals[v.ID] = value.BoxInt(int32(u))

			case ir.OpAddDouble:
				vals[v.ID] = value.BoxNumber(vals[v.Args[0].ID].NumberValue() + vals[v.Args[1].ID].NumberValue())
			case ir.OpSubDouble:
				vals[v.ID] = value.BoxNumber(vals[v.Args[0].ID].NumberValue() - vals[v.Args[1].ID].NumberValue())
			case ir.OpMulDouble:
				vals[v.ID] = value.BoxNumber(vals[v.Args[0].ID].NumberValue() * vals[v.Args[1].ID].NumberValue())
			case ir.OpDivDouble:
				vals[v.ID] = value.BoxNumber(vals[v.Args[0].ID].NumberValue() / vals[v.Args[1].ID].NumberValue())
			case ir.OpModDouble:
				vals[v.ID] = value.BoxNumber(math.Mod(vals[v.Args[0].ID].NumberValue(), vals[v.Args[1].ID].NumberValue()))
			case ir.OpNegDouble:
				vals[v.ID] = value.BoxNumber(-vals[v.Args[0].ID].NumberValue())

			case ir.OpIntToDouble, ir.OpNumberToDouble:
				vals[v.ID] = vals[v.Args[0].ID] // NumberValue() reads either kind
			case ir.OpTruncDouble:
				vals[v.ID] = value.BoxInt(value.DoubleToInt32(vals[v.Args[0].ID].NumberValue()))
			case ir.OpUint32ToDouble:
				vals[v.ID] = value.BoxNumber(float64(uint32(vals[v.Args[0].ID].Int32())))
			case ir.OpToBool:
				vals[v.ID] = value.BoxBool(hd.ToBoolean(vals[v.Args[0].ID]))
			case ir.OpBoolNot:
				vals[v.ID] = value.BoxBool(!vals[v.Args[0].ID].Bool())
			case ir.OpNormalizeHole:
				x := vals[v.Args[0].ID]
				if x.IsHole() {
					x = value.BoxedUndefined
				}
				vals[v.ID] = x

			case ir.OpCmpInt:
				a, b := vals[v.Args[0].ID].Int32(), vals[v.Args[1].ID].Int32()
				vals[v.ID] = value.BoxBool(cmpInt(ir.Cmp(v.AuxInt), a, b))
			case ir.OpCmpDouble:
				a, b := vals[v.Args[0].ID].NumberValue(), vals[v.Args[1].ID].NumberValue()
				vals[v.ID] = value.BoxBool(cmpFloat(ir.Cmp(v.AuxInt), a, b))
			case ir.OpStrictEqGeneric:
				vals[v.ID] = value.BoxBool(value.StrictEquals(hd.Unbox(vals[v.Args[0].ID]), hd.Unbox(vals[v.Args[1].ID])))

			case ir.OpCheckInt32, ir.OpCheckNumber, ir.OpCheckShape,
				ir.OpCheckArray, ir.OpCheckBounds, ir.OpCheckNonNeg,
				ir.OpCheckOverflow, ir.OpCheckUint32, ir.OpCheckHole,
				ir.OpCheckCallee:
				free := v.Free
				if free {
					instr = 0
				} else {
					if tier == profile.TierFTL {
						ctrs.AddCheck(v.Check)
					}
					extra += m.checkMemCost(v, vals)
				}
				passed := m.checkPasses(v, vals, oflow)
				if m.inject != nil {
					switch m.inject.At(Site{Kind: SiteCheck, Fn: f.Name, ValueID: v.ID, OSR: f.OSREntryPC, Inline: v.InlinePath(),
						Check: v.Check, HasSMP: v.Deopt != nil, InTx: m.HTM.InTx(), Failed: !passed, Shape: v.DispatchShape()}) {
					case ActFailCheck:
						// Only force failure where a recovery path exists:
						// a stack map to deopt through, or an open
						// transaction to abort.
						if v.Deopt != nil || m.HTM.InTx() {
							passed = false
						}
					case ActPassCheck:
						passed = true
					}
				}
				if passed {
					if v.Dispatch && m.trace != nil {
						m.icHitOnce(EventICHit, f.Name, v)
					}
					break
				}
				// Check failed.
				account(instr, extra)
				if v.Dispatch {
					m.emit(Event{Kind: EventICMiss, Fn: f.Name, PC: v.BCPos, Inline: v.InlinePath(), Shape: v.DispatchShape()})
				}
				if v.Deopt != nil {
					// A kept SMP inside this frame's own transaction: the
					// governor restored this site, so the failure exits
					// surgically. Every write so far was validated at its
					// producing check (deferred detection is disabled when a
					// keep set is present), so the transaction commits before
					// the deopt instead of squandering its work in an abort.
					if t := m.HTM.Current(); t != nil && t.Owner == any(tok) {
						m.noteTxStats(ctrs, t)
						ctrs.TxWriteBytesTotal += t.WriteBytes()
						if _, err := m.HTM.Commit(); err != nil {
							return value.Undefined(), nil, err
						}
						m.uninstallHook()
						ctrs.TxCommits++
						ctrs.RetireOpenTx()
						account(0, m.HTM.Config().CommitCycles)
						m.emit(Event{Kind: EventTxCommit, Fn: f.Name, WriteBytes: t.WriteBytes()})
					}
					ctrs.Deopts++
					ctrs.OSRExits++
					rec := materialize(v.Deopt)
					assignBackEdges(rec)
					m.emit(Event{Kind: EventDeopt, Fn: f.Name, CheckClass: v.Check, PC: rec.PC, Inline: v.Deopt.InlinePath()})
					return value.Undefined(), &Deopt{Frame: rec, CheckClass: v.Check,
						SiteFn: f.Name, SitePC: v.BCPos, SiteValueID: v.ID, SitePath: v.InlinePath(),
						SiteShape: v.DispatchShape(), SiteDispatch: v.Dispatch}, nil
				}
				cause := htm.AbortCause(htm.AbortCheck)
				if free && v.Check == stats.CheckOverflow {
					cause = htm.AbortSOF
				}
				d, err := abort(cause, v.Check, v)
				return value.Undefined(), d, err

			case ir.OpHasShape, ir.OpHasCallee:
				var hit bool
				if v.Op == ir.OpHasShape {
					o := hd.ObjectOrNil(vals[v.Args[0].ID])
					hit = o != nil && o.Shape == v.Shape
					if o != nil {
						extra += m.load(m.Mem.ShapeAddr(o))
					}
				} else {
					o := hd.ObjectOrNil(vals[v.Args[0].ID])
					hit = o != nil && o.Fn != nil && o.Fn == v.Callee
				}
				if m.inject != nil {
					switch m.inject.At(Site{Kind: SiteDispatch, Fn: f.Name, ValueID: v.ID, OSR: f.OSREntryPC, Inline: v.InlinePath(),
						InTx: m.HTM.InTx(), Failed: !hit, Shape: v.DispatchShape()}) {
					case ActFailCheck:
						// The way is skipped; the receiver cascades down the
						// chain to the deopting tail guard.
						hit = false
					case ActPassCheck:
						// Stale-shape-cache planted bug: the wrong way's
						// specialized body runs for this receiver.
						hit = true
					}
				}
				vals[v.ID] = value.BoxBool(hit)
				if hit && v.Dispatch && m.trace != nil {
					m.icHitOnce(EventICHit, f.Name, v)
				}

			case ir.OpTransition:
				// Speculated property add: the way's shape guard proved the
				// property absent, so this is the append path (the write hook
				// records slot + shape word for transactional rollback).
				o := hd.ObjectOrNil(vals[v.Args[0].ID])
				if o != nil {
					o.Set(v.AuxStr, hd.Unbox(vals[v.Args[1].ID]))
					if off := o.OffsetOf(v.AuxStr); off >= 0 {
						extra += m.Cache.Access(m.Mem.SlotAddr(o, off))
					}
					extra += m.Cache.Access(m.Mem.ShapeAddr(o))
					if m.trace != nil {
						m.icHitOnce(EventICTransition, f.Name, v)
					}
				}

			case ir.OpLoadSlot:
				o := hd.ObjectOrNil(vals[v.Args[0].ID])
				off := int(v.AuxInt)
				if o == nil || off >= len(o.Slots) {
					vals[v.ID] = value.BoxedUndefined // garbage pre-abort
					break
				}
				vals[v.ID] = hd.Box(o.GetSlot(off))
				extra += m.load(m.Mem.SlotAddr(o, off))
			case ir.OpStoreSlot:
				o := hd.ObjectOrNil(vals[v.Args[0].ID])
				off := int(v.AuxInt)
				if o == nil || off >= len(o.Slots) {
					break
				}
				o.SetSlot(off, hd.Unbox(vals[v.Args[1].ID]))
				extra += m.Cache.Access(m.Mem.SlotAddr(o, off))
			case ir.OpLoadElem:
				o := hd.ObjectOrNil(vals[v.Args[0].ID])
				i := int(vals[v.Args[1].ID].Int32())
				if o == nil || !o.InBounds(i) {
					vals[v.ID] = value.BoxedUndefined // garbage pre-abort
					break
				}
				vals[v.ID] = hd.Box(o.ElementRaw(i))
				extra += m.load(m.Mem.ElemAddr(o, i))
			case ir.OpStoreElem:
				o := hd.ObjectOrNil(vals[v.Args[0].ID])
				i := int(vals[v.Args[1].ID].Int32())
				if o == nil || i < 0 {
					break
				}
				o.SetElement(i, hd.Unbox(vals[v.Args[2].ID]))
				extra += m.Cache.Access(m.Mem.ElemAddr(o, i))
			case ir.OpLoadLength:
				o := hd.ObjectOrNil(vals[v.Args[0].ID])
				if o == nil {
					vals[v.ID] = value.BoxInt(0)
					break
				}
				vals[v.ID] = value.BoxInt(int32(o.Length))
				extra += m.load(m.Mem.LengthAddr(o))
			case ir.OpLoadGlobal:
				g := m.host.Globals()
				if !g.Has(v.AuxStr) {
					account(instr, extra)
					return value.Undefined(), nil, errf("%s is not defined", v.AuxStr)
				}
				vals[v.ID] = hd.Box(g.Get(v.AuxStr))
				if off := g.OffsetOf(v.AuxStr); off >= 0 {
					extra += m.load(m.Mem.SlotAddr(g, off))
				}
			case ir.OpStoreGlobal:
				g := m.host.Globals()
				g.Set(v.AuxStr, hd.Unbox(vals[v.Args[0].ID]))
				if off := g.OffsetOf(v.AuxStr); off >= 0 {
					extra += m.Cache.Access(m.Mem.SlotAddr(g, off))
				}

			case ir.OpMathOp:
				vals[v.ID] = evalMath(v.AuxStr, v.Args, vals)

			case ir.OpCallDirect:
				this := hd.Unbox(vals[v.Args[0].ID])
				callArgs := make([]value.Value, len(v.Args)-1)
				for i := 1; i < len(v.Args); i++ {
					callArgs[i-1] = hd.Unbox(vals[v.Args[i].ID])
				}
				account(instr, extra)
				if m.HTM.InTx() {
					m.txHadCalls = true
				}
				res, err := m.host.Call(v.Callee, this, callArgs)
				if err != nil {
					d, err2 := handleCallErr(v, err)
					return value.Undefined(), d, err2
				}
				vals[v.ID] = hd.Box(res)
				instr, extra = 0, 0

			case ir.OpCallRuntime:
				account(instr, extra)
				res, err := m.runtimeCall(f, v, vals)
				if err != nil {
					d, err2 := handleCallErr(v, err)
					return value.Undefined(), d, err2
				}
				vals[v.ID] = hd.Box(res)
				instr, extra = 0, 0

			case ir.OpTxBegin:
				if m.HTM.InTx() {
					m.HTM.Begin(tok, nil) // flattened nesting: depth only
				} else {
					rec := materialize(v.Deopt)
					m.HTM.Begin(tok, rec)
					m.installHook()
					ctrs.TxBegins++
					copy(beCheck, backEdges)
					m.txHadCalls = false
					extra += m.HTM.Config().BeginCycles
					m.emit(Event{Kind: EventTxBegin, Fn: f.Name})
					if m.inject != nil {
						act := m.inject.At(Site{Kind: SiteTxBegin, Fn: f.Name, ValueID: v.ID, OSR: f.OSREntryPC, Inline: v.InlinePath(), InTx: true})
						if cause, ok := act.abortCause(); ok {
							account(instr, extra)
							d, err := abort(cause, stats.CheckOther, v)
							return value.Undefined(), d, err
						}
					}
				}
			case ir.OpTxEnd:
				t := m.HTM.Current()
				if t == nil {
					account(instr, extra)
					return value.Undefined(), nil, errf("txend without transaction")
				}
				if m.inject != nil && t.Depth() == 1 {
					act := m.inject.At(Site{Kind: SiteTxCommit, Fn: f.Name, ValueID: v.ID, OSR: f.OSREntryPC, Inline: v.InlinePath(), InTx: true})
					if cause, ok := act.abortCause(); ok {
						account(instr, extra)
						d, err := abort(cause, stats.CheckOther, v)
						return value.Undefined(), d, err
					}
				}
				outer, err := m.HTM.Commit()
				if err != nil {
					account(instr, extra)
					return value.Undefined(), nil, err
				}
				if outer {
					m.uninstallHook()
					ctrs.TxCommits++
					ctrs.RetireOpenTx()
					m.noteTxStats(ctrs, t)
					ctrs.TxWriteBytesTotal += t.WriteBytes()
					extra += m.HTM.Config().CommitCycles
					m.emit(Event{Kind: EventTxCommit, Fn: f.Name, WriteBytes: t.WriteBytes()})
				}
			case ir.OpTxTile:
				t := m.HTM.Current()
				forceTile := false
				if m.inject != nil && t != nil && t.Owner == any(tok) {
					act := m.inject.At(Site{Kind: SiteTxTile, Fn: f.Name, ValueID: v.ID, OSR: f.OSREntryPC, Inline: v.InlinePath(), InTx: true})
					if cause, ok := act.abortCause(); ok {
						account(instr, extra)
						d, err := abort(cause, stats.CheckOther, v)
						return value.Undefined(), d, err
					}
					forceTile = act == ActTileCommit
				}
				if t != nil && t.Owner == any(tok) && (forceTile || m.footprintNearCapacity(t)) {
					m.noteTxStats(ctrs, t)
					ctrs.TxWriteBytesTotal += t.WriteBytes()
					if _, err := m.HTM.Commit(); err != nil {
						account(instr, extra)
						return value.Undefined(), nil, err
					}
					ctrs.TxCommits++
					ctrs.RetireOpenTx()
					m.emit(Event{Kind: EventTxTileCommit, Fn: f.Name, WriteBytes: t.WriteBytes()})
					rec := materialize(v.Deopt)
					m.HTM.Begin(tok, rec)
					ctrs.TxBegins++
					copy(beCheck, backEdges)
					m.txHadCalls = false
					extra += m.HTM.Config().CommitCycles + m.HTM.Config().BeginCycles
				}

			default:
				account(instr, extra)
				return value.Undefined(), nil, errf("unhandled IR op %v", v.Op)
			}

			account(instr, extra)

			// A write from this op (or a callee) may have overflowed the
			// transactional capacity; the undo log covers it, so abort now.
			if m.pendingCapacity {
				m.pendingCapacity = false
				d, err := abort(htm.AbortCapacity, stats.CheckOther, v)
				return value.Undefined(), d, err
			}
		}

		account(blockEdgeCost, 0)
		if block.BackEdge {
			// The block ends in the bytecode's backward unconditional jump:
			// count the same loop trip the bytecode tiers count, locally —
			// aborts roll the counts back to the transaction checkpoint. A
			// block flattened from an inlined callee counts into that
			// activation's slot so the trip lands in the callee's profile.
			idx := 0
			if block.Inline != nil {
				idx = block.Inline.Index
			}
			backEdges[idx]++
		}
		prev = block
		switch block.Kind {
		case ir.BlockPlain:
			block = block.Succs[0]
		case ir.BlockIf:
			if hd.ToBoolean(vals[block.Control.ID]) {
				block = block.Succs[0]
			} else {
				block = block.Succs[1]
			}
		case ir.BlockReturn:
			// Clean exit: fold every logical frame's back edges into its
			// function's profile (inlined activations credit the callee). A
			// callee completing inside a still-open enclosing transaction
			// flushes too; if that transaction later aborts, Baseline
			// re-counts its re-executed iterations — a bounded profiling
			// imprecision, never a correctness issue.
			for i, n := range backEdges {
				if n != 0 {
					m.host.ProfileFor(slotSource(i)).AddBackEdges(n)
				}
			}
			return hd.Unbox(vals[block.Control.ID]), nil, nil
		default:
			return value.Undefined(), nil, errf("bad block kind")
		}
	}
}

// load simulates a data-cache load, applying the RTM in-transaction read
// penalty and read-set tracking.
func (m *Machine) load(addr uint64) int64 {
	lat := m.Cache.Access(addr)
	if m.HTM.InTx() {
		cfg := m.HTM.Config()
		if cfg.ReadSets > 0 {
			if err := m.HTM.RecordRead(addr, m.Mem.ValueBytes()); err != nil {
				m.pendingCapacity = true
			}
		}
		if cfg.ReadPenaltyNum != cfg.ReadPenaltyDen {
			lat += (lat+4)*(cfg.ReadPenaltyNum-cfg.ReadPenaltyDen)/cfg.ReadPenaltyDen + 1
		}
	}
	return lat
}

// checkMemCost charges the cache accesses a check performs (shape word,
// length word).
func (m *Machine) checkMemCost(v *ir.Value, vals []value.Boxed) int64 {
	hd := m.host.Handles()
	switch v.Op {
	case ir.OpCheckShape, ir.OpCheckArray:
		if o := hd.ObjectOrNil(vals[v.Args[0].ID]); o != nil {
			return m.load(m.Mem.ShapeAddr(o))
		}
	case ir.OpCheckBounds:
		if o := hd.ObjectOrNil(vals[v.Args[0].ID]); o != nil {
			return m.load(m.Mem.LengthAddr(o))
		}
	}
	return 0
}

func (m *Machine) checkPasses(v *ir.Value, vals []value.Boxed, oflow []bool) bool {
	hd := m.host.Handles()
	switch v.Op {
	case ir.OpCheckInt32:
		return vals[v.Args[0].ID].IsInt32()
	case ir.OpCheckNumber:
		return vals[v.Args[0].ID].IsNumber()
	case ir.OpCheckShape:
		o := hd.ObjectOrNil(vals[v.Args[0].ID])
		return o != nil && o.Shape == v.Shape
	case ir.OpCheckArray:
		o := hd.ObjectOrNil(vals[v.Args[0].ID])
		return o != nil && o.IsArray
	case ir.OpCheckBounds:
		o := hd.ObjectOrNil(vals[v.Args[0].ID])
		if o == nil {
			return false
		}
		idx := vals[v.Args[1].ID]
		return o.InBounds(int(idx.Int32()))
	case ir.OpCheckNonNeg:
		idx := vals[v.Args[0].ID]
		return idx.IsInt32() && idx.Int32() >= 0
	case ir.OpCheckOverflow, ir.OpCheckUint32:
		return !oflow[v.Args[0].ID]
	case ir.OpCheckHole:
		return !vals[v.Args[0].ID].IsHole()
	case ir.OpCheckCallee:
		o := hd.ObjectOrNil(vals[v.Args[0].ID])
		return o != nil && o.Fn != nil && o.Fn == v.Callee
	}
	return false
}

// icHitOnce emits an IC trace event the first time the (site, shape) pair
// fires it since the last machine reset, keeping hot-loop traces bounded.
func (m *Machine) icHitOnce(kind EventKind, fn string, v *ir.Value) {
	key := fmt.Sprintf("%d|%s|%s@%d|%s", kind, fn, v.InlinePath(), v.BCPos, v.DispatchShape())
	if m.icSeen[key] {
		return
	}
	if m.icSeen == nil {
		m.icSeen = make(map[string]bool)
	}
	m.icSeen[key] = true
	m.emit(Event{Kind: kind, Fn: fn, PC: v.BCPos, Inline: v.InlinePath(), Shape: v.DispatchShape()})
}

func (m *Machine) footprintNearCapacity(t *htm.Txn) bool {
	cfg := m.HTM.Config()
	capBytes := int64(cfg.WriteSets*cfg.WriteWays) * int64(cfg.LineSize)
	return t.WriteBytes() >= capBytes*commitFractionNum/commitFractionDen
}

func (m *Machine) noteTxStats(ctrs *stats.Counters, t *htm.Txn) {
	if wb := t.WriteBytes(); wb > ctrs.TxWriteBytesMax {
		ctrs.TxWriteBytesMax = wb
	}
	if rb := t.ReadBytes(); rb > ctrs.TxReadBytesMax {
		ctrs.TxReadBytesMax = rb
	}
	if a := int64(t.MaxWriteAssoc()); a > ctrs.TxMaxAssoc {
		ctrs.TxMaxAssoc = a
	}
	ctrs.TxWriteLinesTotal += int64(t.WriteLines())
}

func cmpInt(c ir.Cmp, a, b int32) bool {
	switch c {
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	case ir.CmpGE:
		return a >= b
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	}
	return false
}

func cmpFloat(c ir.Cmp, a, b float64) bool {
	switch c {
	case ir.CmpLT:
		return a < b
	case ir.CmpLE:
		return a <= b
	case ir.CmpGT:
		return a > b
	case ir.CmpGE:
		return a >= b
	case ir.CmpEQ:
		return a == b
	case ir.CmpNE:
		return a != b
	}
	return false
}

func evalMath(name string, args []*ir.Value, vals []value.Boxed) value.Boxed {
	a := vals[args[0].ID].NumberValue()
	var b float64
	if len(args) > 1 {
		b = vals[args[1].ID].NumberValue()
	}
	var r float64
	switch name {
	case "abs":
		r = math.Abs(a)
	case "floor":
		r = math.Floor(a)
	case "ceil":
		r = math.Ceil(a)
	case "round":
		r = math.Floor(a + 0.5)
	case "sqrt":
		r = math.Sqrt(a)
	case "sin":
		r = math.Sin(a)
	case "cos":
		r = math.Cos(a)
	case "tan":
		r = math.Tan(a)
	case "asin":
		r = math.Asin(a)
	case "acos":
		r = math.Acos(a)
	case "atan":
		r = math.Atan(a)
	case "exp":
		r = math.Exp(a)
	case "log":
		r = math.Log(a)
	case "pow":
		r = math.Pow(a, b)
	case "atan2":
		r = math.Atan2(a, b)
	case "min":
		r = math.Min(a, b)
	case "max":
		r = math.Max(a, b)
	default:
		r = math.NaN()
	}
	return value.BoxNumber(r)
}
