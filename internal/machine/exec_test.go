package machine

// White-box execution tests: hand-built IR run on the machine with a stub
// host, covering op semantics the integration tests reach only indirectly
// (garbage-tolerant loads past removed checks, overflow flag wiring, phi
// parallel copies).

import (
	"fmt"
	"math"
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/htm"
	"nomap/internal/ir"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
)

type stubHost struct {
	shapes  *value.ShapeTable
	globals *value.Object
	handles *value.Handles
	ctrs    stats.Counters
	calls   int
	profs   map[*bytecode.Function]*profile.FunctionProfile
}

func newStubHost() *stubHost {
	t := value.NewShapeTable()
	h := &stubHost{shapes: t, handles: value.NewHandles()}
	h.globals = value.NewObject(t)
	return h
}

func (h *stubHost) Shapes() *value.ShapeTable { return h.shapes }
func (h *stubHost) Handles() *value.Handles   { return h.handles }
func (h *stubHost) ProfileFor(fn *bytecode.Function) *profile.FunctionProfile {
	if h.profs == nil {
		h.profs = make(map[*bytecode.Function]*profile.FunctionProfile)
	}
	p, ok := h.profs[fn]
	if !ok {
		p = profile.New(fn)
		h.profs[fn] = p
	}
	return p
}
func (h *stubHost) Globals() *value.Object    { return h.globals }
func (h *stubHost) Counters() *stats.Counters { return &h.ctrs }
func (h *stubHost) Call(fn *value.Function, this value.Value, args []value.Value) (value.Value, error) {
	h.calls++
	if fn.Native != nil {
		return fn.Native(this, args)
	}
	return value.Undefined(), fmt.Errorf("stub host cannot run user code")
}
func (h *stubHost) Construct(fn *value.Function, args []value.Value) (value.Value, error) {
	return value.Obj(value.NewObject(h.shapes)), nil
}
func (h *stubHost) InvokeMethod(recv value.Value, name string, args []value.Value) (value.Value, error) {
	return value.Undefined(), fmt.Errorf("stub host has no methods")
}

// fnReturning builds `return <op>(params...)` with a source function sized
// for deopt materialization.
func fnReturning(op ir.Op, t ir.Type, nParams int, aux int64) *ir.Func {
	f := ir.NewFunc("t", stubSource(nParams))
	b := f.NewBlock()
	f.Entry = b
	var args []*ir.Value
	for i := 0; i < nParams; i++ {
		p := b.NewValue(ir.OpParam, ir.TypeGeneric)
		p.AuxInt = int64(i)
		args = append(args, p)
	}
	v := b.NewValue(op, t, args...)
	v.AuxInt = aux
	b.Kind = ir.BlockReturn
	b.Control = v
	return f
}

// stubSource provides the only piece of the source function the machine
// touches: NumRegs, used when materializing deopt register files.
func stubSource(nRegs int) *bytecode.Function {
	return &bytecode.Function{Name: "stub", NumRegs: nRegs}
}

func run1(t *testing.T, f *ir.Func, args ...value.Value) value.Value {
	t.Helper()
	m := New(newStubHost(), htm.ROTConfig())
	res, d, err := m.Run(f, profile.TierFTL, args)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d != nil {
		t.Fatalf("unexpected deopt to pc %d", d.Frame.PC)
	}
	return res
}

func TestIntArithOps(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b int32
		want int32
	}{
		{ir.OpAddInt, 2, 3, 5},
		{ir.OpSubInt, 2, 3, -1},
		{ir.OpMulInt, 4, 5, 20},
		{ir.OpBitAnd, 6, 3, 2},
		{ir.OpBitOr, 6, 3, 7},
		{ir.OpBitXor, 6, 3, 5},
		{ir.OpShl, 1, 4, 16},
		{ir.OpShr, -8, 1, -4},
	}
	for _, c := range cases {
		f := fnReturning(c.op, ir.TypeInt32, 2, 0)
		got := run1(t, f, value.Int(c.a), value.Int(c.b))
		if !got.IsInt32() || got.Int32() != c.want {
			t.Errorf("%v(%d,%d) = %v, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestOverflowFlagFeedsCheck(t *testing.T) {
	// add = a+b; CheckOverflow(add) with a deopt map; return add.
	f := ir.NewFunc("ovf", stubSource(4))
	b := f.NewBlock()
	f.Entry = b
	p0 := b.NewValue(ir.OpParam, ir.TypeGeneric)
	p1 := b.NewValue(ir.OpParam, ir.TypeGeneric)
	p1.AuxInt = 1
	add := b.NewValue(ir.OpAddInt, ir.TypeInt32, p0, p1)
	chk := b.NewValue(ir.OpCheckOverflow, ir.TypeNone, add)
	chk.Check = stats.CheckOverflow
	chk.Deopt = &ir.StackMap{PC: 7, Entries: []ir.StackMapEntry{{Reg: 0, Val: p0}, {Reg: 1, Val: p1}}}
	b.Kind = ir.BlockReturn
	b.Control = add

	m := New(newStubHost(), htm.ROTConfig())
	res, d, err := m.Run(f, profile.TierFTL, []value.Value{value.Int(2), value.Int(3)})
	if err != nil || d != nil {
		t.Fatalf("clean case: res=%v d=%v err=%v", res, d, err)
	}
	if res.Int32() != 5 {
		t.Fatalf("res = %v", res)
	}

	// Overflowing case must deopt with the pre-op state.
	_, d, err = m.Run(f, profile.TierFTL, []value.Value{value.Int(math.MaxInt32), value.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Frame.PC != 7 {
		t.Fatalf("expected deopt at pc 7, got %+v", d)
	}
	if d.Frame.Locals[0].Int32() != math.MaxInt32 || d.Frame.Locals[1].Int32() != 1 {
		t.Fatalf("deopt regs = %v", d.Frame.Locals)
	}
	if m.host.Counters().Deopts != 1 {
		t.Error("deopt not counted")
	}
}

func TestGarbageTolerantLoads(t *testing.T) {
	// LoadElem with an out-of-bounds index (as after bounds-check combining)
	// must produce undefined, not panic.
	host := newStubHost()
	arr := value.NewArray(host.shapes, 4)
	for i := 0; i < 4; i++ {
		arr.SetElement(i, value.Int(int32(i*10)))
	}
	f := ir.NewFunc("ld", stubSource(2))
	b := f.NewBlock()
	f.Entry = b
	pa := b.NewValue(ir.OpParam, ir.TypeGeneric)
	pi := b.NewValue(ir.OpParam, ir.TypeGeneric)
	pi.AuxInt = 1
	ld := b.NewValue(ir.OpLoadElem, ir.TypeGeneric, pa, pi)
	b.Kind = ir.BlockReturn
	b.Control = ld

	m := New(host, htm.ROTConfig())
	res, _, err := m.Run(f, profile.TierFTL, []value.Value{value.Obj(arr), value.Int(2)})
	if err != nil || res.Int32() != 20 {
		t.Fatalf("in bounds: %v %v", res, err)
	}
	res, _, err = m.Run(f, profile.TierFTL, []value.Value{value.Obj(arr), value.Int(99)})
	if err != nil || !res.IsUndefined() {
		t.Fatalf("OOB must yield undefined garbage: %v %v", res, err)
	}
	res, _, err = m.Run(f, profile.TierFTL, []value.Value{value.Undefined(), value.Int(0)})
	if err != nil || !res.IsUndefined() {
		t.Fatalf("non-object base must yield undefined garbage: %v %v", res, err)
	}
}

func TestPhiParallelCopy(t *testing.T) {
	// Swap phis: (x, y) = (y, x) each iteration, 3 iterations — requires a
	// genuinely parallel copy at the block boundary.
	f := ir.NewFunc("swap", stubSource(4))
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	f.Entry = entry

	px := entry.NewValue(ir.OpParam, ir.TypeGeneric)
	py := entry.NewValue(ir.OpParam, ir.TypeGeneric)
	py.AuxInt = 1
	zero := entry.NewValue(ir.OpConst, ir.TypeInt32)
	zero.AuxVal = value.Int(0)
	three := entry.NewValue(ir.OpConst, ir.TypeInt32)
	three.AuxVal = value.Int(3)
	one := entry.NewValue(ir.OpConst, ir.TypeInt32)
	one.AuxVal = value.Int(1)
	entry.Kind = ir.BlockPlain
	ir.AddEdge(entry, head)

	phiI := head.NewValue(ir.OpPhi, ir.TypeInt32)
	phiX := head.NewValue(ir.OpPhi, ir.TypeGeneric)
	phiY := head.NewValue(ir.OpPhi, ir.TypeGeneric)
	cmp := head.NewValue(ir.OpCmpInt, ir.TypeBool, phiI, three)
	cmp.AuxInt = int64(ir.CmpLT)
	head.Kind = ir.BlockIf
	head.Control = cmp
	ir.AddEdge(head, body)
	ir.AddEdge(head, exit)

	inc := body.NewValue(ir.OpAddInt, ir.TypeInt32, phiI, one)
	body.Kind = ir.BlockPlain
	ir.AddEdge(body, head)

	// Preds of head: [entry, body].
	phiI.Args = []*ir.Value{zero, inc}
	phiX.Args = []*ir.Value{px, phiY} // swap each iteration
	phiY.Args = []*ir.Value{py, phiX}

	exit.Kind = ir.BlockReturn
	exit.Control = phiX

	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// After 3 swaps, x holds the original y.
	got := run1(t, f, value.Int(111), value.Int(222))
	if got.Int32() != 222 {
		t.Errorf("after odd swaps x = %v, want 222", got)
	}
}

func TestNativeCallThroughMachine(t *testing.T) {
	host := newStubHost()
	native := &value.Function{
		Name: "twice",
		Native: func(this value.Value, args []value.Value) (value.Value, error) {
			return value.Number(args[0].ToNumber() * 2), nil
		},
	}
	f := ir.NewFunc("call", stubSource(2))
	b := f.NewBlock()
	f.Entry = b
	this := b.NewValue(ir.OpConst, ir.TypeGeneric)
	this.AuxVal = value.Undefined()
	p := b.NewValue(ir.OpParam, ir.TypeGeneric)
	call := b.NewValue(ir.OpCallDirect, ir.TypeGeneric, this, p)
	call.Callee = native
	b.Kind = ir.BlockReturn
	b.Control = call

	m := New(host, htm.ROTConfig())
	res, _, err := m.Run(f, profile.TierFTL, []value.Value{value.Int(21)})
	if err != nil {
		t.Fatal(err)
	}
	if res.ToNumber() != 42 || host.calls != 1 {
		t.Errorf("res=%v calls=%d", res, host.calls)
	}
}
