package workloads

import (
	"reflect"
	"testing"

	"nomap/internal/machine"
	"nomap/internal/vm"
)

// Every contention workload must reach the same final shared-heap state on
// every architecture configuration and every schedule — the six archs differ
// in cycles and abort behaviour, never in semantics.
func TestContentionCrossArchAgreement(t *testing.T) {
	for _, wl := range Contention() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			ref, err := machine.RunReference(wl)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, arch := range vm.AllArchs {
				for seed := int64(1); seed <= 3; seed++ {
					res, err := machine.RunScheduled(wl, arch, seed, machine.SharedOptions{})
					if err != nil {
						t.Fatalf("%v seed %d: %v", arch, seed, err)
					}
					if res.Snapshot != ref.Snapshot {
						t.Errorf("%v seed %d: snapshot %q, reference %q",
							arch, seed, res.Snapshot, ref.Snapshot)
					}
					if !reflect.DeepEqual(res.Accs, ref.Accs) {
						t.Errorf("%v seed %d: accs %v, reference %v", arch, seed, res.Accs, ref.Accs)
					}
				}
			}
		})
	}
}

// T02's whole point is contention: across a few schedules the hot counter
// must produce real conflict aborts, and the governor must serve backoffs.
func TestContentionHotCounterConflicts(t *testing.T) {
	wl, ok := ContentionByID("T02")
	if !ok {
		t.Fatal("T02 missing")
	}
	var conflicts, backoffs int64
	for seed := int64(1); seed <= 3; seed++ {
		res, err := machine.RunScheduled(wl, vm.ArchNoMap, seed, machine.SharedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		conflicts += res.Merged.TxConflictAborts
		backoffs += res.Merged.SharedBackoffs
	}
	if conflicts == 0 {
		t.Error("hot-counter storm produced no conflict aborts")
	}
	if backoffs == 0 {
		t.Error("conflict aborts produced no contention backoffs")
	}
}

func TestContentionByID(t *testing.T) {
	for _, id := range []string{"T01", "T02", "T03", "T04"} {
		wl, ok := ContentionByID(id)
		if !ok || wl.Name != id {
			t.Errorf("ContentionByID(%q) = %v, %v", id, wl, ok)
		}
	}
	if _, ok := ContentionByID("T99"); ok {
		t.Error("ContentionByID(T99) found a workload")
	}
}
