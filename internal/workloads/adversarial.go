package workloads

// Adversarial recovery workloads: each one is built to defeat a naive
// post-abort policy and demonstrate one arm of the abort-recovery governor.
//
//   - A01 abort-storm: after a warm phase, the hot loop's trip count drops
//     to zero, forever. The combined bounds check (§IV-C1) then tests
//     lastUsed = -1 and conservatively aborts on every call — but the
//     Baseline re-run performs zero accesses, so element feedback never
//     changes and every recompile reproduces the identical failing check.
//     A naive policy aborts every call and burns the whole-function deopt
//     budget; the governor restores that one check's SMP (disabling the
//     too-strong combining for the site) and the storm goes silent with
//     the function still transactional at full level.
//
//   - A02 capacity thrasher: a contiguous write footprint just above the
//     L2 write budget. Loop-nest and innermost transactions overflow every
//     call; tiled transactions commit at back edges and stabilize. The
//     squashed-cycle ledger shows the cost of every policy step.
//
//   - A03 phase change: a few early calls write far past cache capacity
//     (driving the §V-C retreat), then the footprint shrinks permanently.
//     A one-way retreat strands the function at a low level forever; the
//     governor's probationary re-promotion climbs back up.
//
//   - A04 I/O in a hot loop: print() inside transactional code aborts
//     irrevocably. Charging such aborts to the deopt budget eventually
//     bans the function from the FTL tier although the speculation is
//     fine; the governor drops to TxOff and keeps the tier.
var adversarial = []Workload{
	{ID: "A01", Name: "abort-storm", Suite: "Adversarial", Iterations: 1, Source: `
var STORM = new Array(64);
for (var i = 0; i < 64; i++) STORM[i] = i * 2;
var stormCalls = 0;
function run() {
  stormCalls = stormCalls + 1;
  var lim = 64;
  if (stormCalls > 40) lim = 0;
  var s = 0;
  for (var i = 0; i < lim; i++) s = s + STORM[i];
  return s;
}`},

	{ID: "A02", Name: "capacity-thrasher", Suite: "Adversarial", Iterations: 1, Source: `
var THRASH = new Array(8);
function run() {
  var s = 0;
  for (var i = 0; i < 35200; i++) {
    THRASH[i] = i & 255;
    s = s + 1;
  }
  return s;
}`},

	{ID: "A03", Name: "phase-change", Suite: "Adversarial", Iterations: 1, Source: `
var PHASE = new Array(8);
var phaseCalls = 0;
function run() {
  phaseCalls = phaseCalls + 1;
  var n = 40;
  if (phaseCalls < 7) n = 33000;
  var s = 0;
  for (var i = 0; i < n; i++) {
    PHASE[i] = i & 127;
    s = s + 1;
  }
  return s;
}`},

	{ID: "A04", Name: "io-hot-loop", Suite: "Adversarial", Iterations: 1, Source: `
var IOSUM = 0;
function run() {
  var s = 0;
  for (var i = 0; i < 200; i++) {
    s = s + i;
    if (i == 199) print("tick", s);
  }
  IOSUM = s;
  return s;
}`},
}

// Adversarial returns the abort-recovery stress workloads (A01..A04).
func Adversarial() []Workload { return adversarial }
