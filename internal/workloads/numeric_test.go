package workloads_test

import (
	"math"
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// newBoxingEngine builds an engine with the NaN-boxed pipeline on (default)
// or off (the DisableBoxing A/B surface).
func newBoxingEngine(arch vm.Arch, maxTier profile.Tier, disableBoxing bool) *vm.VM {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = maxTier
	cfg.DisableBoxing = disableBoxing
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	v := vm.New(cfg)
	jit.Attach(v)
	return v
}

func runBoxed(t *testing.T, w workloads.Workload, v *vm.VM, calls int) value.Value {
	t.Helper()
	if _, err := v.Run(w.Source); err != nil {
		t.Fatalf("%s setup: %v", w.ID, err)
	}
	var last value.Value
	for i := 0; i < calls; i++ {
		r, err := v.CallGlobal("run")
		if err != nil {
			t.Fatalf("%s run #%d: %v", w.ID, i, err)
		}
		last = r
	}
	return last
}

// The numeric suite must agree across every architecture, with boxing on and
// off — superinstruction fusion and the boxed register file are
// semantics-preserving on exactly the programs built to exercise them.
func TestNumericAgreeAcrossArchs(t *testing.T) {
	for _, w := range workloads.Numeric() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			_, want := runWorkload(t, w, vm.ArchBase, profile.TierInterp, 2)
			for _, arch := range vm.AllArchs {
				_, got := runWorkload(t, w, arch, profile.TierFTL, 50)
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v: result %q, want %q", arch, got, want)
				}
				v := newBoxingEngine(arch, profile.TierFTL, true)
				if got := runBoxed(t, w, v, 50); got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v boxing-off: result %q, want %q", arch, got, want)
				}
			}
		})
	}
}

// Cross-tier parity regression: driving a workload through the full ladder —
// OSR entries, deopts, Baseline resumes through the boxed frame.Frame — must
// leave the same observable machine state with boxing on and off. Fusion
// shifts pcs and eliminates dead temps, but results, deopt/OSR counts, and
// the profiling counters that drive tier-up (InvocationCount, BackEdgeCount)
// are representation-independent.
func TestBoxingParityAcrossTiers(t *testing.T) {
	ids := []string{"C01", "C02", "C03", "C04", "C05", "singlecall", "N01", "N02", "N03", "N04", "N05"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("workload %s missing", id)
			}
			type obs struct {
				result            string
				deopts, osr       int64
				invocs, backEdges int64
			}
			measure := func(disableBoxing bool) obs {
				v := newBoxingEngine(vm.ArchNoMap, profile.TierFTL, disableBoxing)
				res := runBoxed(t, w, v, 50)
				fv := v.Globals().Get("run")
				if !fv.IsCallable() {
					t.Fatal("no run()")
				}
				p := v.ProfileFor(fv.Object().Fn.Code.(*bytecode.Function))
				return obs{
					result:    res.ToStringValue(),
					deopts:    v.Counters().Deopts,
					osr:       v.Counters().OSREntries,
					invocs:    p.InvocationCount,
					backEdges: p.BackEdgeCount,
				}
			}
			boxed := measure(false)
			fat := measure(true)
			if boxed != fat {
				t.Errorf("boxing changed observable state:\n  boxed: %+v\n  unboxed: %+v", boxed, fat)
			}
		})
	}
}

// steadyBoxingCycles measures steady-state cycles per rep with boxing on or
// off.
func steadyBoxingCycles(t *testing.T, w workloads.Workload, disableBoxing bool) float64 {
	t.Helper()
	v := newBoxingEngine(vm.ArchNoMap, profile.TierFTL, disableBoxing)
	runBoxed(t, w, v, 60)
	v.ResetCounters()
	for i := 0; i < 20; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatalf("%s measure: %v", w.ID, err)
		}
	}
	return float64(v.Counters().TotalCycles()) / 20
}

// The boxed representation must pay for itself on the arithmetic kernels:
// geomean speedup of boxing-on over boxing-off across the numeric suite
// above 1.00x.
func TestBoxingSpeedupOnNumericSuite(t *testing.T) {
	logSum := 0.0
	n := 0
	for _, w := range workloads.Numeric() {
		off := steadyBoxingCycles(t, w, true)
		on := steadyBoxingCycles(t, w, false)
		ratio := off / on
		t.Logf("%s: %.0f cycles unboxed, %.0f cycles boxed (%.2fx)", w.ID, off, on, ratio)
		logSum += math.Log(ratio)
		n++
	}
	if geomean := math.Exp(logSum / float64(n)); geomean <= 1.0 {
		t.Errorf("numeric-suite geomean speedup %.3fx, want > 1.00x", geomean)
	}
}

// The one-word boxed value halves the modeled heap stride, so a
// capacity-bound transaction touches fewer write lines: the A/B metric
// behind the paper's footprint argument. Both counters must be live (the
// test would pass vacuously at zero).
func TestBoxedFootprintSmaller(t *testing.T) {
	for _, id := range []string{"A02", "C05"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			w, ok := workloads.ByID(id)
			if !ok {
				t.Fatalf("workload %s missing", id)
			}
			lines := func(disableBoxing bool) int64 {
				v := newBoxingEngine(vm.ArchNoMap, profile.TierFTL, disableBoxing)
				runBoxed(t, w, v, 60)
				return v.Counters().TxWriteLinesTotal
			}
			boxed := lines(false)
			fat := lines(true)
			if boxed == 0 || fat == 0 {
				t.Fatalf("write-line counter dead: boxed=%d unboxed=%d", boxed, fat)
			}
			if boxed >= fat {
				t.Errorf("boxed footprint %d lines >= unboxed %d lines", boxed, fat)
			}
		})
	}
}
