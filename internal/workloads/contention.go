package workloads

import "nomap/internal/machine"

// Contention workloads (T01..T04) exercise the shared-heap scenario class:
// multiple workers racing on one value.SharedHeap through the section
// executor. The suite spans the contention spectrum — fully uncontended,
// a single-line storm, striped false sharing, and cross-worker dataflow —
// so the six architecture configurations can be compared on conflict-abort
// behaviour the way Table II compares them on check behaviour.
//
// Every workload honours the machine.SharedWorkload determinism contract:
// the final heap state and accumulators are schedule-independent, consumers
// pop only what lower-indexed workers push, and queue capacities hold the
// full production — so the schedule-sweep oracle can diff any interleaving
// against the single-threaded reference.

// contention is the T-suite, in ID order.
var contention = []*machine.SharedWorkload{
	// T01: uncontended counters — each worker owns a private counter on its
	// own cache line. The transactional fast path should commit every
	// section with zero conflict aborts; any conflict here is a false
	// positive in the domain's line bookkeeping.
	{
		Name: "T01",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclCounter, Name: "c0"},
			{Kind: machine.DeclCounter, Name: "c1"},
			{Kind: machine.DeclCounter, Name: "c2"},
			{Kind: machine.DeclCounter, Name: "c3"},
		},
		Workers: []machine.SharedScript{
			{Rounds: 16, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "c0", Imm: 1}}}},
			{Rounds: 16, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "c1", Imm: 1}}}},
			{Rounds: 16, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "c2", Imm: 1}}}},
			{Rounds: 16, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "c3", Imm: 1}}}},
		},
	},
	// T02: hot-counter storm — four workers hammer one cache line with
	// read-modify-writes. Maximum contention pressure: the governor's
	// backoff/demotion ladder decides throughput, and a broken conflict
	// detector loses updates here first.
	{
		Name: "T02",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclCounter, Name: "hot"},
		},
		Workers: []machine.SharedScript{
			{Rounds: 24, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "hot", Imm: 1}}}},
			{Rounds: 24, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "hot", Imm: 2}}}},
			{Rounds: 24, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "hot", Imm: 3}}}},
			{Rounds: 24, Sections: []machine.SharedSection{{{Kind: machine.OpAdd, Target: "hot", Imm: 4}}}},
		},
	},
	// T03: striped map — each worker updates its own rotating key family, but
	// keys from different workers hash onto a small stripe set, so conflicts
	// are false sharing on stripe lines rather than logical data races. Each
	// worker also reads its own key back and publishes the running value,
	// which only its own writes determine.
	{
		Name: "T03",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclMap, Name: "tab", Arg: 4},
			{Kind: machine.DeclCounter, Name: "sum0"},
			{Kind: machine.DeclCounter, Name: "sum1"},
			{Kind: machine.DeclCounter, Name: "sum2"},
		},
		Workers: []machine.SharedScript{
			{Rounds: 12, Sections: []machine.SharedSection{
				{{Kind: machine.OpMapAdd, Target: "tab", Key: "a", Rotate: true, Imm: 1}},
				{{Kind: machine.OpMapRead, Target: "tab", Key: "a", Rotate: true},
					{Kind: machine.OpPublish, Target: "sum0"}},
			}},
			{Rounds: 12, Sections: []machine.SharedSection{
				{{Kind: machine.OpMapAdd, Target: "tab", Key: "b", Rotate: true, Imm: 1}},
				{{Kind: machine.OpMapRead, Target: "tab", Key: "b", Rotate: true},
					{Kind: machine.OpPublish, Target: "sum1"}},
			}},
			{Rounds: 12, Sections: []machine.SharedSection{
				{{Kind: machine.OpMapAdd, Target: "tab", Key: "c", Rotate: true, Imm: 1}},
				{{Kind: machine.OpMapRead, Target: "tab", Key: "c", Rotate: true},
					{Kind: machine.OpPublish, Target: "sum2"}},
			}},
		},
	},
	// T04: producer/consumer queue — worker 0 pushes a value stream, worker 1
	// pops it into its accumulator and publishes the running sum. Pops block
	// (retry) on empty, so the consumed total is schedule-independent; the
	// queue holds the full production so the index-ordered reference run
	// never blocks.
	{
		Name: "T04",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclQueue, Name: "q", Arg: 32},
			{Kind: machine.DeclCounter, Name: "sink"},
		},
		Workers: []machine.SharedScript{
			{Rounds: 24, Sections: []machine.SharedSection{
				{{Kind: machine.OpPush, Target: "q", Imm: 100}},
			}},
			{Rounds: 24, Sections: []machine.SharedSection{
				{{Kind: machine.OpPop, Target: "q"}},
				{{Kind: machine.OpPublish, Target: "sink"}},
			}},
		},
	},
}

// Contention returns the shared-heap contention suite (T01..T04).
func Contention() []*machine.SharedWorkload { return contention }

// ContentionByID finds a contention workload by ID ("T01".."T04").
func ContentionByID(id string) (*machine.SharedWorkload, bool) {
	for _, wl := range contention {
		if wl.Name == id {
			return wl, true
		}
	}
	return nil, false
}
