package workloads

// Polymorphic-dispatch workloads: hot loops whose sites see several receiver
// shapes or callees, exercising the inline-cache subsystem (internal/ic)
// end to end:
//
//   - P01/P02/P03 poly-call-2/4/8: method-call loops over receivers of 2, 4,
//     and 8 distinct hidden classes. Baseline records the per-site shape
//     histogram, the speculative tiers materialize a shape-guarded dispatch
//     tree, and the top ways inline behind their guards. P03 sits exactly at
//     profile.MaxWays — the widest tree the §V-C footprint argument allows.
//
//   - P04 poly-props: a property-heavy get/set loop over two shapes whose
//     stores add a property, so the dispatch tree speculates the shape
//     transition — inside a transaction the add upgrades the guard instead
//     of deopting.
//
//   - P05 mega-control: the negative control. The load site cycles ten
//     shapes, one past saturation, so Baseline marks it megamorphic, the
//     builder never grows a plan, and the site keeps the generic runtime
//     path under every configuration.
var poly = []Workload{
	{ID: "P01", Name: "poly-call-2", Suite: "Poly", Iterations: 1, Source: `
function pa(x) { return x + 7; }
function pb(x) { return (x * 3) | 0; }
var P1 = new Array(64);
for (var i = 0; i < 64; i++) {
  if ((i & 1) == 0) P1[i] = {k: i, m: pa};
  else P1[i] = {t: 1, k: i, m: pb};
}
function run() {
  var s = 0;
  for (var i = 0; i < 4000; i++) s = s + P1[i & 63].m(i & 31);
  return s;
}`},

	{ID: "P02", Name: "poly-call-4", Suite: "Poly", Iterations: 1, Source: `
function qa(x) { return x + 7; }
function qb(x) { return (x * 3) | 0; }
function qc(x) { return (x ^ 21) & 127; }
function qd(x) { return (x + x) | 0; }
var P2 = new Array(64);
for (var i = 0; i < 64; i++) {
  var r = i & 3;
  if (r == 0) P2[i] = {k: i, m: qa};
  else if (r == 1) P2[i] = {t: 1, k: i, m: qb};
  else if (r == 2) P2[i] = {u: 1, t: 1, k: i, m: qc};
  else P2[i] = {w: 1, u: 1, t: 1, k: i, m: qd};
}
function run() {
  var s = 0;
  for (var i = 0; i < 4000; i++) s = s + P2[i & 63].m(i & 31);
  return s;
}`},

	{ID: "P03", Name: "poly-call-8", Suite: "Poly", Iterations: 1, Source: `
function ra(x) { return x + 1; }
function rb(x) { return x + 2; }
function rc(x) { return x + 3; }
function rd(x) { return x + 4; }
function re(x) { return (x * 3) | 0; }
function rf(x) { return (x * 5) | 0; }
function rg(x) { return (x ^ 9) & 255; }
function rh(x) { return (x + x + 1) | 0; }
var P3 = new Array(64);
for (var i = 0; i < 64; i++) {
  var r = i & 7;
  if (r == 0) P3[i] = {k: i, m: ra};
  else if (r == 1) P3[i] = {b1: 1, k: i, m: rb};
  else if (r == 2) P3[i] = {b2: 1, k: i, m: rc};
  else if (r == 3) P3[i] = {b3: 1, k: i, m: rd};
  else if (r == 4) P3[i] = {b4: 1, k: i, m: re};
  else if (r == 5) P3[i] = {b5: 1, k: i, m: rf};
  else if (r == 6) P3[i] = {b6: 1, k: i, m: rg};
  else P3[i] = {b7: 1, k: i, m: rh};
}
function run() {
  var s = 0;
  for (var i = 0; i < 4000; i++) s = s + P3[i & 63].m(i & 31);
  return s;
}`},

	{ID: "P04", Name: "poly-props", Suite: "Poly", Iterations: 1, Source: `
function mkp(i) {
  if ((i & 1) == 0) return {a: i, b: 0};
  return {b: 0, a: i};
}
function run() {
  var s = 0;
  for (var i = 0; i < 2500; i++) {
    var o = mkp(i);
    o.c = i & 15;
    o.b = o.a + o.c;
    s = s + o.b;
  }
  return s;
}`},

	{ID: "P05", Name: "mega-control", Suite: "Poly", Iterations: 1, Source: `
var P5 = new Array(10);
P5[0] = {c0: 1, x: 3};
P5[1] = {c1: 1, x: 5};
P5[2] = {c2: 1, x: 7};
P5[3] = {c3: 1, x: 11};
P5[4] = {c4: 1, x: 13};
P5[5] = {c5: 1, x: 17};
P5[6] = {c6: 1, x: 19};
P5[7] = {c7: 1, x: 23};
P5[8] = {c8: 1, x: 29};
P5[9] = {c9: 1, x: 31};
function run() {
  var s = 0;
  var j = 0;
  for (var i = 0; i < 3000; i++) {
    s = s + P5[j].x;
    j = j + 1;
    if (j == 10) j = 0;
  }
  return s;
}`},
}

// Poly returns the polymorphic-dispatch workloads (P01..P05).
func Poly() []Workload { return poly }
