package workloads

// The SunSpider-like suite. IDs follow the paper's alphabetical numbering
// (S01 = 3d-cube ... S26 = string-validate-input).

var sunspider = []Workload{
	{ID: "S01", Name: "3d-cube", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Rotate a cube's vertices through precomputed angles and accumulate a
// projected hash: double-heavy matrix math over small arrays.
var cubeVerts = [];
for (var i = 0; i < 8; i++) {
  cubeVerts[i] = [ (i & 1) * 2 - 1, ((i >> 1) & 1) * 2 - 1, ((i >> 2) & 1) * 2 - 1 ];
}
function rotateAll(verts, ax, ay) {
  var sx = Math.sin(ax), cx = Math.cos(ax);
  var sy = Math.sin(ay), cy = Math.cos(ay);
  var acc = 0.0;
  for (var i = 0; i < verts.length; i++) {
    var v = verts[i];
    var x = v[0], y = v[1], z = v[2];
    var y1 = y * cx - z * sx;
    var z1 = y * sx + z * cx;
    var x1 = x * cy + z1 * sy;
    var z2 = z1 * cy - x * sy;
    acc += x1 * 1.1 + y1 * 1.3 + z2 * 1.7;
  }
  return acc;
}
function run() {
  var total = 0.0;
  for (var f = 0; f < 300; f++) {
    total += rotateAll(cubeVerts, f * 0.02, f * 0.03);
  }
  return Math.floor(total * 100);
}`},

	{ID: "S02", Name: "3d-morph", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Morph a mesh's heights; the loop's results are never consumed — once
// SMPs become aborts the work is candidate dead code (paper Table III).
var nx = 30, nz = 30;
var morphA = new Array(nx * nz);
for (var i = 0; i < nx * nz; i++) morphA[i] = 0.0;
function morph(a, f) {
  var PI2nx = Math.PI * 8 / nx;
  for (var i = 0; i < nz; i++) {
    for (var j = 0; j < nx; j++) {
      a[i * nx + j] = Math.sin((j - 1) * PI2nx) * 0.2 * f;
    }
  }
}
function run() {
  for (var f = 0; f < 15; f++) morph(morphA, f / 15);
  return 0;
}`},

	{ID: "S03", Name: "3d-raytrace", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Sphere-ray intersections: object property traffic plus double math.
var spheres = [];
for (var i = 0; i < 12; i++) {
  spheres[i] = {cx: i * 1.5 - 9.0, cy: (i % 3) - 1.0, cz: 5.0 + i, r: 1.0 + (i % 2) * 0.5};
}
function trace(ox, oy, dirx, diry, dirz) {
  var best = 1.0e30;
  var hit = -1;
  for (var i = 0; i < spheres.length; i++) {
    var s = spheres[i];
    var lx = s.cx - ox, ly = s.cy - oy, lz = s.cz;
    var tca = lx * dirx + ly * diry + lz * dirz;
    if (tca < 0) continue;
    var d2 = lx * lx + ly * ly + lz * lz - tca * tca;
    var r2 = s.r * s.r;
    if (d2 > r2) continue;
    var t = tca - Math.sqrt(r2 - d2);
    if (t < best) { best = t; hit = i; }
  }
  return hit;
}
function run() {
  var img = 0;
  for (var y = 0; y < 24; y++) {
    for (var x = 0; x < 24; x++) {
      var dx = (x - 12) / 12, dy = (y - 12) / 12;
      var n = Math.sqrt(dx * dx + dy * dy + 1);
      img += trace(0.0, 0.0, dx / n, dy / n, 1 / n) + 1;
    }
  }
  return img;
}`},

	{ID: "S04", Name: "access-binary-trees", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Bottom-up binary trees in flat arrays (left, right, item) with a
// recursive checksum: allocation plus call-heavy traversal.
function buildTree(depth) {
  var n = (1 << (depth + 1)) - 1;
  var left = new Array(n), right = new Array(n), item = new Array(n);
  var next = 1;
  for (var i = 0; i < n; i++) {
    item[i] = i * 2 + 1;
    if (next < n - 1) { left[i] = next; right[i] = next + 1; next += 2; }
    else { left[i] = -1; right[i] = -1; }
  }
  return {left: left, right: right, item: item};
}
function check(t, node) {
  if (node < 0) return 0;
  return t.item[node] + check(t, t.left[node]) - check(t, t.right[node]);
}
function run() {
  var sum = 0;
  for (var d = 2; d <= 7; d++) {
    var t = buildTree(d);
    sum += check(t, 0);
  }
  return sum;
}`},

	{ID: "S05", Name: "access-fannkuch", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Pancake flips over an int permutation: pure int32 array shuffling with
// heavy bounds-check pressure inside loops.
function fannkuch(n) {
  var perm = new Array(n), perm1 = new Array(n), count = new Array(n);
  for (var i = 0; i < n; i++) perm1[i] = i;
  var r = n, maxFlips = 0, iters = 0;
  while (iters < 400) {
    while (r != 1) { count[r - 1] = r; r--; }
    for (var j = 0; j < n; j++) perm[j] = perm1[j];
    var flips = 0;
    var k = perm[0];
    while (k != 0) {
      var i2 = 0, j2 = k;
      while (i2 < j2) { var t = perm[i2]; perm[i2] = perm[j2]; perm[j2] = t; i2++; j2--; }
      flips++;
      k = perm[0];
    }
    if (flips > maxFlips) maxFlips = flips;
    iters++;
    var done = false;
    while (!done) {
      if (r == n) return maxFlips;
      var p0 = perm1[0];
      for (var m = 0; m < r; m++) perm1[m] = perm1[m + 1];
      perm1[r] = p0;
      count[r] = count[r] - 1;
      if (count[r] > 0) done = true; else r++;
    }
  }
  return maxFlips;
}
function run() { return fannkuch(7); }`},

	{ID: "S06", Name: "access-nbody", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Planetary n-body integration: double arithmetic over object properties.
var bodyInit = [
  {x: 0.0, y: 0.0, z: 0.0, vx: 0.0, vy: 0.0, vz: 0.0, mass: 39.47},
  {x: 4.84, y: -1.16, z: -0.10, vx: 0.60, vy: 2.81, vz: -0.02, mass: 0.037},
  {x: 8.34, y: 4.12, z: -0.40, vx: -1.01, vy: 1.82, vz: 0.008, mass: 0.011},
  {x: 12.89, y: -15.11, z: -0.22, vx: 1.08, vy: 0.86, vz: -0.010, mass: 0.0017},
  {x: 15.37, y: -25.91, z: 0.17, vx: 0.97, vy: 0.59, vz: -0.034, mass: 0.0020}
];
var bodies = [];
for (var bi = 0; bi < bodyInit.length; bi++) {
  bodies[bi] = {x: 0.0, y: 0.0, z: 0.0, vx: 0.0, vy: 0.0, vz: 0.0, mass: 0.0};
}
function resetBodies() {
  for (var i = 0; i < bodyInit.length; i++) {
    var s = bodyInit[i], d = bodies[i];
    d.x = s.x; d.y = s.y; d.z = s.z;
    d.vx = s.vx; d.vy = s.vy; d.vz = s.vz;
    d.mass = s.mass;
  }
}
function advance(dt) {
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x, dy = bi.y - bj.y, dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx -= dx * bj.mass * mag; bi.vy -= dy * bj.mass * mag; bi.vz -= dz * bj.mass * mag;
      bj.vx += dx * bi.mass * mag; bj.vy += dy * bi.mass * mag; bj.vz += dz * bi.mass * mag;
    }
  }
  for (var k = 0; k < n; k++) {
    var b = bodies[k];
    b.x += dt * b.vx; b.y += dt * b.vy; b.z += dt * b.vz;
  }
}
function energy() {
  var e = 0.0;
  for (var i = 0; i < bodies.length; i++) {
    var bi = bodies[i];
    e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
  }
  return e;
}
function run() {
  resetBodies();
  for (var s = 0; s < 120; s++) advance(0.01);
  return Math.floor(energy() * 1000000);
}`},

	{ID: "S07", Name: "access-nsieve", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Sieve of Eratosthenes over a flag array: int loops, bounds checks.
function nsieve(m, flags) {
  var count = 0;
  for (var i = 2; i < m; i++) flags[i] = 1;
  for (var i2 = 2; i2 < m; i2++) {
    if (flags[i2] == 1) {
      count++;
      for (var k = i2 + i2; k < m; k += i2) flags[k] = 0;
    }
  }
  return count;
}
var sieveFlags = new Array(10000);
function run() {
  var total = 0;
  for (var p = 0; p < 3; p++) total += nsieve(10000 >> p, sieveFlags);
  return total;
}`},

	{ID: "S08", Name: "bitops-3bit-bits-in-byte", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Population count via 3-bit trick; results discarded (dead-code class).
function fast3bitlookup(b) {
  var c = 0xE994;
  var bi3b = ((c >> ((b & 7) << 1)) & 3) +
             ((c >> (((b >> 3) & 7) << 1)) & 3) +
             ((c >> (((b >> 6) & 3) << 1)) & 3);
  return bi3b;
}
function run() {
  for (var i = 0; i < 6000; i++) fast3bitlookup(i & 0xFF);
  return 0;
}`},

	{ID: "S09", Name: "bitops-bits-in-byte", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Naive per-bit population count; results discarded (dead-code class).
function bitsinbyte(b) {
  var m = 1, c = 0;
  while (m < 0x100) {
    if (b & m) c++;
    m <<= 1;
  }
  return c;
}
function run() {
  for (var i = 0; i < 4000; i++) bitsinbyte(i & 0xFF);
  return 0;
}`},

	{ID: "S10", Name: "bitops-bitwise-and", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// A tight loop of simple integer arithmetic — the paper's showcase for
// SOF-based overflow-check removal (§VII-A).
function run() {
  var bitwiseAndValue = 4294967296;
  for (var i = 0; i < 12000; i++) {
    bitwiseAndValue = (bitwiseAndValue & i) + 1;
  }
  return bitwiseAndValue;
}`},

	{ID: "S11", Name: "bitops-nsieve-bits", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Bit-packed sieve: shifts, masks, and array traffic.
function nsieveBits(m, seive) {
  var count = 0;
  var size = (m >> 5) + 1;
  for (var i = 0; i < size; i++) seive[i] = -1;
  for (var n = 2; n < m; n++) {
    if ((seive[n >> 5] & (1 << (n & 31))) != 0) {
      count++;
      for (var k = n + n; k < m; k += n) {
        seive[k >> 5] = seive[k >> 5] & ~(1 << (k & 31));
      }
    }
  }
  return count;
}
var bitSeive = new Array((20000 >> 5) + 1);
function run() { return nsieveBits(20000, bitSeive); }`},

	{ID: "S12", Name: "controlflow-recursive", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// ackermann / fib / tak: recursion-dominated control flow. Most
// instructions are call overhead; transactions see TMUnopt callees.
function ack(m, n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
  if (n < 2) return n;
  return fib(n - 2) + fib(n - 1);
}
function tak(x, y, z) {
  if (y >= x) return z;
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
function run() {
  return ack(2, 4) + fib(13) + tak(9, 5, 2);
}`},

	{ID: "S13", Name: "crypto-aes", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// AES-like rounds: S-box substitutions and MixColumns-style byte mixing —
// bounds checks in every loop (the paper sinks 72 checks from 29 loops).
var sbox = new Array(256);
for (var i = 0; i < 256; i++) sbox[i] = (i * 7 + 99) & 0xFF;
var state = new Array(16);
for (var j = 0; j < 16; j++) state[j] = j * 11 & 0xFF;
function subBytes(s) {
  for (var i = 0; i < 16; i++) s[i] = sbox[s[i]];
}
function shiftRows(s) {
  for (var r = 1; r < 4; r++) {
    for (var k = 0; k < r; k++) {
      var t = s[r];
      s[r] = s[r + 4]; s[r + 4] = s[r + 8]; s[r + 8] = s[r + 12]; s[r + 12] = t;
    }
  }
}
function mixColumns(s) {
  for (var c = 0; c < 4; c++) {
    var i0 = c * 4;
    var a0 = s[i0], a1 = s[i0 + 1], a2 = s[i0 + 2], a3 = s[i0 + 3];
    s[i0] = (a0 ^ a1 ^ a2) & 0xFF;
    s[i0 + 1] = (a1 ^ a2 ^ a3) & 0xFF;
    s[i0 + 2] = (a2 ^ a3 ^ a0) & 0xFF;
    s[i0 + 3] = (a3 ^ a0 ^ a1) & 0xFF;
  }
}
function encrypt(s, rounds) {
  for (var r = 0; r < rounds; r++) {
    subBytes(s);
    shiftRows(s);
    mixColumns(s);
  }
}
function run() {
  for (var j = 0; j < 16; j++) state[j] = j * 11 & 0xFF;
  var h = 0;
  for (var b = 0; b < 60; b++) {
    encrypt(state, 10);
    for (var i = 0; i < 16; i++) h = (h * 31 + state[i]) & 0xFFFFFF;
  }
  return h;
}`},

	{ID: "S14", Name: "crypto-md5", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// MD5-style rounds: int32 adds with constant rotation — overflow-check
// dense.
function rol(x, n) { return (x << n) | (x >>> (32 - n)); }
function md5round(a, b, c, d, x, s, t) {
  return ((rol((a + ((b & c) | (~b & d)) + x + t) | 0, s) + b) | 0);
}
var md5data = new Array(64);
for (var i = 0; i < 64; i++) md5data[i] = (i * 0x5A827999) | 0;
function run() {
  var a = 0x67452301 | 0, b = 0xEFCDAB89 | 0, c = 0x98BADCFE | 0, d = 0x10325476 | 0;
  for (var blk = 0; blk < 120; blk++) {
    for (var i = 0; i < 64; i += 4) {
      a = md5round(a, b, c, d, md5data[i], 7, 0xD76AA478 | 0);
      d = md5round(d, a, b, c, md5data[i + 1], 12, 0xE8C7B756 | 0);
      c = md5round(c, d, a, b, md5data[i + 2], 17, 0x242070DB | 0);
      b = md5round(b, c, d, a, md5data[i + 3], 22, 0xC1BDCEEE | 0);
    }
  }
  return (a + b + c + d) | 0;
}`},

	{ID: "S15", Name: "crypto-sha1", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// SHA1-style compression: word expansion plus 80 rounds of int mixing.
var sha1W = new Array(80);
function run() {
  var h0 = 0x67452301 | 0, h1 = 0xEFCDAB89 | 0, h2 = 0x98BADCFE | 0;
  var h3 = 0x10325476 | 0, h4 = 0xC3D2E1F0 | 0;
  for (var blk = 0; blk < 40; blk++) {
    for (var t = 0; t < 16; t++) sha1W[t] = (blk * 16 + t) | 0;
    for (var t2 = 16; t2 < 80; t2++) {
      var w = sha1W[t2 - 3] ^ sha1W[t2 - 8] ^ sha1W[t2 - 14] ^ sha1W[t2 - 16];
      sha1W[t2] = (w << 1) | (w >>> 31);
    }
    var a = h0, b = h1, c = h2, d = h3, e = h4;
    for (var t3 = 0; t3 < 80; t3++) {
      var f, k;
      if (t3 < 20) { f = (b & c) | (~b & d); k = 0x5A827999; }
      else if (t3 < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1; }
      else if (t3 < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDC | 0; }
      else { f = b ^ c ^ d; k = 0xCA62C1D6 | 0; }
      var tmp = (((a << 5) | (a >>> 27)) + f + e + k + sha1W[t3]) | 0;
      e = d; d = c; c = (b << 30) | (b >>> 2); b = a; a = tmp;
    }
    h0 = (h0 + a) | 0; h1 = (h1 + b) | 0; h2 = (h2 + c) | 0;
    h3 = (h3 + d) | 0; h4 = (h4 + e) | 0;
  }
  return (h0 ^ h1 ^ h2 ^ h3 ^ h4) | 0;
}`},

	{ID: "S16", Name: "date-format-tofte", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Date formatting: string building through builtin methods. In the paper's
// breakdown this benchmark is mostly NoFTL instructions (Figure 8) even
// though it belongs to AvgS.
var monthNames = ["January","February","March","April","May","June",
                  "July","August","September","October","November","December"];
function pad(n) {
  var s = "" + n;
  if (s.length < 2) s = "0" + s;
  return s;
}
function formatDate(day, month, year, h, m, s) {
  return pad(day) + " " + monthNames[month] + " " + year + " " +
         pad(h) + ":" + pad(m) + ":" + pad(s);
}
function run() {
  var acc = 0;
  for (var i = 0; i < 250; i++) {
    var str = formatDate(1 + (i % 28), i % 12, 1970 + (i % 50), i % 24, i % 60, (i * 7) % 60);
    acc += str.length + str.charCodeAt(i % str.length);
  }
  return acc;
}`},

	{ID: "S17", Name: "date-format-xparb", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Alternative date formatter: string splits and method dispatch; ≥95%
// non-FTL (Table III).
var xparbFormats = "dd:mm:yyyy HH:MM:ss,yyyy-mm-dd,HH:MM".split(",");
function stamp(fmt, d, mo, y, h, mi, s) {
  var out = "";
  for (var i = 0; i < fmt.length; i++) {
    var c = fmt.charAt(i);
    if (c == "d") out += "" + d;
    else if (c == "m") out += "" + mo;
    else if (c == "y") out += "" + (y % 10);
    else if (c == "H") out += "" + h;
    else if (c == "M") out += "" + mi;
    else if (c == "s") out += "" + s;
    else out += c;
  }
  return out;
}
function run() {
  var n = 0;
  for (var i = 0; i < 120; i++) {
    var f = xparbFormats[i % xparbFormats.length];
    n += stamp(f, i % 28, i % 12, 1970 + i, i % 24, i % 60, i % 60).length;
  }
  return n;
}`},

	{ID: "S18", Name: "math-cordic", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// CORDIC sin/cos in fixed point — the function the paper names: NoMap
// finds a redundant load and sinks another inside cordicsincos (§VII-A).
var angles = [ 11520, 6801, 3593, 1824, 916, 458, 229, 115, 57, 29, 14, 7, 4, 2, 1 ];
var cordicState = {x: 0, y: 0};
function cordicsincos(target) {
  var x = 10188012; // 0.6072529 * 2^24
  var y = 0;
  var targetAngle = target;
  var currAngle = 0;
  for (var step = 0; step < angles.length; step++) {
    var newX;
    if (targetAngle > currAngle) {
      newX = x - (y >> step);
      y = (x >> step) + y;
      x = newX;
      currAngle += angles[step];
    } else {
      newX = x + (y >> step);
      y = y - (x >> step);
      x = newX;
      currAngle -= angles[step];
    }
  }
  cordicState.x = x;
  cordicState.y = y;
  return currAngle;
}
function run() {
  var total = 0;
  for (var i = 0; i < 1500; i++) {
    total += cordicsincos(i * 61 % 23040);
    total += cordicState.x >> 20;
  }
  return total;
}`},

	{ID: "S19", Name: "math-partial-sums", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Nine partial series in one double loop.
function partial(n) {
  var a1 = 0.0, a2 = 0.0, a3 = 0.0, a4 = 0.0, a5 = 0.0;
  var a6 = 0.0, a7 = 0.0, a8 = 0.0, a9 = 0.0;
  var twothirds = 2.0 / 3.0;
  var alt = -1.0;
  for (var k = 1; k <= n; k++) {
    var k2 = k * k, k3 = k2 * k;
    var sk = Math.sin(k), ck = Math.cos(k);
    alt = -alt;
    a1 += Math.pow(twothirds, k - 1);
    a2 += Math.pow(k, -0.5);
    a3 += 1.0 / (k * (k + 1.0));
    a4 += 1.0 / (k3 * sk * sk);
    a5 += 1.0 / (k3 * ck * ck);
    a6 += 1.0 / k;
    a7 += 1.0 / k2;
    a8 += alt / k;
    a9 += alt / (2 * k - 1);
  }
  return a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9;
}
function run() { return Math.floor(partial(512) * 1000); }`},

	{ID: "S20", Name: "math-spectral-norm", Suite: "SunSpider", InAvgS: true, Iterations: 1, Source: `
// Spectral norm power iteration: double matrix-free products.
function A(i, j) { return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1); }
function Au(u, v, n) {
  for (var i = 0; i < n; i++) {
    var t = 0.0;
    for (var j = 0; j < n; j++) t += A(i, j) * u[j];
    v[i] = t;
  }
}
function Atu(u, v, n) {
  for (var i = 0; i < n; i++) {
    var t = 0.0;
    for (var j = 0; j < n; j++) t += A(j, i) * u[j];
    v[i] = t;
  }
}
var snU = new Array(24), snV = new Array(24), snW = new Array(24);
function run() {
  var n = 24;
  for (var i = 0; i < n; i++) { snU[i] = 1.0; snV[i] = 0.0; snW[i] = 0.0; }
  for (var it = 0; it < 6; it++) {
    Au(snU, snW, n); Atu(snW, snV, n);
    Au(snV, snW, n); Atu(snW, snU, n);
  }
  var vBv = 0.0, vv = 0.0;
  for (var k = 0; k < n; k++) { vBv += snU[k] * snV[k]; vv += snV[k] * snV[k]; }
  return Math.floor(Math.sqrt(vBv / vv) * 1000000);
}`},

	{ID: "S21", Name: "regexp-dna", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// DNA pattern scanning without regexps: substring matching through string
// builtins; ≥95% non-FTL (Table III).
var dnaSeq = "";
var dnaBases = "acgt";
var dnaSeed = 42;
for (var i = 0; i < 600; i++) {
  dnaSeed = (dnaSeed * 1103515245 + 12345) & 0x7FFFFFFF;
  dnaSeq += dnaBases.charAt(dnaSeed % 4);
}
var dnaPatterns = ["agggta", "cgt", "ttat", "acga", "gggg"];
function countMatches(seq, pat) {
  var c = 0, at = 0;
  while (true) {
    var idx = seq.indexOf(pat, at);
    if (idx < 0) break;
    c++;
    at = idx + 1;
  }
  return c;
}
function run() {
  var total = 0;
  for (var p = 0; p < dnaPatterns.length; p++) {
    total += countMatches(dnaSeq, dnaPatterns[p]);
  }
  return total;
}`},

	{ID: "S22", Name: "string-base64", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Base64 encode of a byte array via string builtins; ≥95% non-FTL.
var b64chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var b64input = new Array(300);
for (var i = 0; i < 300; i++) b64input[i] = (i * 37) & 0xFF;
function toBase64(data) {
  var out = "";
  for (var i = 0; i < data.length - 2; i += 3) {
    var n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out += b64chars.charAt((n >> 18) & 63) + b64chars.charAt((n >> 12) & 63) +
           b64chars.charAt((n >> 6) & 63) + b64chars.charAt(n & 63);
  }
  return out;
}
function run() {
  var s = toBase64(b64input);
  return s.length + s.charCodeAt(17);
}`},

	{ID: "S23", Name: "string-fasta", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// FASTA sequence generation: weighted random selection into strings.
var fastaIub = "acgtBDHKMNRSVWY";
var fastaSeed = 75;
function fastaRand(max) {
  fastaSeed = (fastaSeed * 3877 + 29573) % 139968;
  return max * fastaSeed / 139968;
}
function makeSeq(n) {
  var s = "";
  for (var i = 0; i < n; i++) {
    s += fastaIub.charAt(Math.floor(fastaRand(fastaIub.length)));
  }
  return s;
}
function run() {
  fastaSeed = 75;
  var s = makeSeq(400);
  var h = 0;
  for (var i = 0; i < s.length; i++) h = (h * 33 + s.charCodeAt(i)) & 0xFFFFFF;
  return h;
}`},

	{ID: "S24", Name: "string-tagcloud", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Tag-cloud markup generation: joins, splits, number formatting.
var tagWords = "the quick brown fox jumps over lazy dog and runs far away today".split(" ");
function run() {
  var out = "";
  for (var i = 0; i < 150; i++) {
    var w = tagWords[i % tagWords.length];
    var size = 10 + (i * 7) % 30;
    out += "<span class='tag' style='font-size:" + size + "px'>" + w.toUpperCase() + "</span>";
  }
  return out.length + out.indexOf("FOX");
}`},

	{ID: "S25", Name: "string-unpack-code", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Packer-style decompression: dictionary substitution over strings.
var packedWords = "a|b|c|func|var|ret|if|else|for|while".split("|");
var packedSrc = "";
for (var i = 0; i < 120; i++) packedSrc += (i % 10) + ";";
function run() {
  var out = "";
  var parts = packedSrc.split(";");
  for (var i = 0; i < parts.length; i++) {
    if (parts[i] === "") continue;
    out += packedWords[parseInt(parts[i])] + " ";
  }
  return out.length;
}`},

	{ID: "S26", Name: "string-validate-input", Suite: "SunSpider", InAvgS: false, Iterations: 1, Source: `
// Form validation: character classification over generated strings.
function isDigit(c) { return c >= "0" && c <= "9"; }
function isAlpha(c) { return (c >= "a" && c <= "z") || (c >= "A" && c <= "Z"); }
function validateEmail(s) {
  var at = s.indexOf("@");
  if (at <= 0) return false;
  var dot = s.indexOf(".", at);
  if (dot < 0) return false;
  for (var i = 0; i < s.length; i++) {
    var c = s.charAt(i);
    if (!isAlpha(c) && !isDigit(c) && c != "@" && c != ".") return false;
  }
  return true;
}
function run() {
  var good = 0;
  for (var i = 0; i < 200; i++) {
    var name = "user" + i;
    var addr = name + "@example" + (i % 7) + ".com";
    if (i % 9 == 0) addr = name + "#bad";
    if (validateEmail(addr)) good++;
  }
  return good;
}`},
}
