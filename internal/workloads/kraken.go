package workloads

// The Kraken-like suite (K01 = ai-astar ... K14 = stanford-crypto-sha256).
// The imaging benchmarks operate on buffers whose transactional write
// footprint exceeds Intel RTM's 32KB L1D budget but fits the lightweight
// HTM's 256KB L2 budget — reproducing the paper's finding that NoMap_RTM
// loses its transactions on Kraken (§VII-A).

var kraken = []Workload{
	{ID: "K01", Name: "ai-astar", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// Grid path cost propagation (A*-flavoured relaxation sweeps).
var gw = 48, gh = 48;
var gridCost = new Array(gw * gh);
var gridBest = new Array(gw * gh);
for (var i = 0; i < gw * gh; i++) gridCost[i] = 1 + ((i * 2654435761) >>> 28);
function relax() {
  for (var i = 0; i < gw * gh; i++) gridBest[i] = 1000000;
  gridBest[0] = 0;
  for (var sweep = 0; sweep < 4; sweep++) {
    for (var y = 0; y < gh; y++) {
      for (var x = 0; x < gw; x++) {
        var idx = y * gw + x;
        var b = gridBest[idx];
        if (x > 0 && gridBest[idx - 1] + gridCost[idx] < b) b = gridBest[idx - 1] + gridCost[idx];
        if (y > 0 && gridBest[idx - gw] + gridCost[idx] < b) b = gridBest[idx - gw] + gridCost[idx];
        gridBest[idx] = b;
      }
    }
  }
  return gridBest[gw * gh - 1];
}
function run() { return relax(); }`},

	{ID: "K02", Name: "audio-beat-detection", Suite: "Kraken", InAvgS: false, Iterations: 1, Source: `
// Beat detection driven through generic helpers and method calls: ≥95%
// of instructions execute outside FTL code (Table III).
var beatEnergy = [];
function pushEnergy(history, e) {
  history.push(e);
  if (history.length > 43) history.shift();
  return history;
}
function averageOf(history) {
  var s = 0;
  for (var i = 0; i < history.length; i++) s += history[i];
  return history.length > 0 ? s / history.length : 0;
}
function run() {
  beatEnergy = [];
  var beats = 0;
  for (var f = 0; f < 150; f++) {
    var e = Math.abs(Math.sin(f * 0.37)) + Math.abs(Math.cos(f * 0.11));
    pushEnergy(beatEnergy, e);
    if (e > 1.3 * averageOf(beatEnergy)) beats++;
  }
  return beats;
}`},

	{ID: "K03", Name: "audio-dft", Suite: "Kraken", InAvgS: false, Iterations: 1, Source: `
// Direct DFT via repeated trig method calls: dominated by runtime math
// dispatch rather than FTL loops (≥95% non-FTL class).
var dftSignal = [];
for (var i = 0; i < 64; i++) dftSignal.push(Math.sin(i * 0.2) + 0.5 * Math.sin(i * 0.55));
function dftBin(signal, k) {
  var re = 0.0, im = 0.0;
  var step = 2 * Math.PI * k / signal.length;
  for (var n = 0; n < signal.length; n++) {
    re += signal[n] * Math.cos(step * n);
    im -= signal[n] * Math.sin(step * n);
  }
  return re * re + im * im;
}
function run() {
  var power = 0.0;
  for (var k = 0; k < 32; k++) power += dftBin(dftSignal, k);
  return Math.floor(power * 1000);
}`},

	{ID: "K04", Name: "audio-fft", Suite: "Kraken", InAvgS: false, Iterations: 1, Source: `
// Recursive radix-2 FFT butterflies: call-tree dominated (non-FTL class).
var fftRe = new Array(128), fftIm = new Array(128);
function fft(re, im, start, stride, n) {
  if (n == 1) return 0;
  var half = n >> 1;
  fft(re, im, start, stride * 2, half);
  fft(re, im, start + stride, stride * 2, half);
  for (var k = 0; k < half; k++) {
    var ang = -2 * Math.PI * k / n;
    var wr = Math.cos(ang), wi = Math.sin(ang);
    var i0 = start + k * stride * 2;
    var i1 = i0 + stride;
    var tr = wr * re[i1] - wi * im[i1];
    var ti = wr * im[i1] + wi * re[i1];
    re[i1] = re[i0] - tr; im[i1] = im[i0] - ti;
    re[i0] = re[i0] + tr; im[i0] = im[i0] + ti;
  }
  return n;
}
function run() {
  for (var i = 0; i < 128; i++) { fftRe[i] = Math.sin(i * 0.3); fftIm[i] = 0.0; }
  fft(fftRe, fftIm, 0, 1, 128);
  var p = 0.0;
  for (var k = 0; k < 128; k++) p += fftRe[k] * fftRe[k] + fftIm[k] * fftIm[k];
  return Math.floor(p * 100);
}`},

	{ID: "K05", Name: "audio-oscillator", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// Wavetable oscillator: the generation loop is FTL code, but it invokes a
// generic mixing helper every sample — in the paper much of this
// benchmark's transaction time executes unoptimized callee code (§VII-B).
var waveTable = new Array(1024);
for (var i = 0; i < 1024; i++) waveTable[i] = Math.sin(i * 2 * Math.PI / 1024);
var oscOut = new Array(2048);
function mixSample(a, b) {
  // Polymorphic on purpose: stays out of FTL.
  var m = {l: a, r: b, mixed: 0};
  m.mixed = (m.l + m.r) * 0.5;
  return m.mixed;
}
function run() {
  var phase = 0, phase2 = 0;
  var inc = 37, inc2 = 11;
  var acc = 0.0;
  for (var s = 0; s < 2048; s++) {
    var v1 = waveTable[phase & 1023];
    var v2 = waveTable[phase2 & 1023];
    oscOut[s] = mixSample(v1, v2);
    acc += oscOut[s];
    phase += inc;
    phase2 += inc2;
  }
  return Math.floor(acc * 1000);
}`},

	{ID: "K06", Name: "imaging-darkroom", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// Brightness/contrast/levels over a large pixel buffer: the per-frame
// write footprint (~96KB) exceeds RTM's L1D budget, so heavyweight HTM
// loses its transactions here (paper §VII-A).
var drW = 128, drH = 96;
var drPixels = new Array(drW * drH);
for (var i = 0; i < drW * drH; i++) drPixels[i] = (i * 2654435761) & 0xFFFFFF;
var drOut = new Array(drW * drH);
function adjust(brightness, contrast) {
  var n = drW * drH;
  for (var i = 0; i < n; i++) {
    var p = drPixels[i];
    var r = (p >> 16) & 0xFF, g = (p >> 8) & 0xFF, b = p & 0xFF;
    r = ((r - 128) * contrast >> 8) + 128 + brightness;
    g = ((g - 128) * contrast >> 8) + 128 + brightness;
    b = ((b - 128) * contrast >> 8) + 128 + brightness;
    if (r < 0) r = 0; if (r > 255) r = 255;
    if (g < 0) g = 0; if (g > 255) g = 255;
    if (b < 0) b = 0; if (b > 255) b = 255;
    drOut[i] = (r << 16) | (g << 8) | b;
  }
}
function run() {
  adjust(10, 280);
  var h = 0;
  for (var i = 0; i < drW * drH; i += 97) h = (h * 31 + drOut[i]) & 0xFFFFFF;
  return h;
}`},

	{ID: "K07", Name: "imaging-desaturate", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// Grayscale conversion over a large buffer (RTM-overflowing footprint).
var dsW = 128, dsH = 80;
var dsPixels = new Array(dsW * dsH);
for (var i = 0; i < dsW * dsH; i++) dsPixels[i] = (i * 40503) & 0xFFFFFF;
function desaturate() {
  var n = dsW * dsH;
  for (var i = 0; i < n; i++) {
    var p = dsPixels[i];
    var r = (p >> 16) & 0xFF, g = (p >> 8) & 0xFF, b = p & 0xFF;
    var lum = (r * 77 + g * 151 + b * 28) >> 8;
    dsPixels[i] = (lum << 16) | (lum << 8) | lum;
  }
}
function run() {
  desaturate();
  var h = 0;
  for (var i = 0; i < dsW * dsH; i += 89) h = (h * 33 + dsPixels[i]) & 0xFFFFFF;
  return h;
}`},

	{ID: "K08", Name: "imaging-gaussian-blur", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// Separable 5-tap blur over a large float buffer: double math, big
// read/write footprints, nested loops.
var gbW = 96, gbH = 72;
var gbSrc = new Array(gbW * gbH), gbTmp = new Array(gbW * gbH);
for (var i = 0; i < gbW * gbH; i++) gbSrc[i] = (i % 251) * 1.0;
var gbK0 = 0.4, gbK1 = 0.24, gbK2 = 0.06;
function blurPass(src, dst, w, h) {
  for (var y = 0; y < h; y++) {
    var row = y * w;
    for (var x = 2; x < w - 2; x++) {
      dst[row + x] = src[row + x] * gbK0 +
        (src[row + x - 1] + src[row + x + 1]) * gbK1 +
        (src[row + x - 2] + src[row + x + 2]) * gbK2;
    }
  }
}
function run() {
  for (var i0 = 0; i0 < gbW * gbH; i0++) gbSrc[i0] = (i0 % 251) * 1.0;
  blurPass(gbSrc, gbTmp, gbW, gbH);
  blurPass(gbTmp, gbSrc, gbW, gbH);
  var s = 0.0;
  for (var i = 0; i < gbW * gbH; i += 61) s += gbSrc[i];
  return Math.floor(s);
}`},

	{ID: "K09", Name: "json-parse", Suite: "Kraken", InAvgS: false, Iterations: 1, Source: `
// Hand-rolled JSON tokenizer: character-at-a-time string processing
// through builtins (≥95% non-FTL class).
var jsonText = "";
for (var i = 0; i < 40; i++) {
  jsonText += '{"id":' + i + ',"name":"item' + i + '","vals":[1,2,' + (i % 9) + ']},';
}
function run() {
  var depth = 0, maxDepth = 0, numbers = 0, strings = 0;
  var i = 0;
  while (i < jsonText.length) {
    var c = jsonText.charAt(i);
    if (c == "{" || c == "[") { depth++; if (depth > maxDepth) maxDepth = depth; }
    else if (c == "}" || c == "]") depth--;
    else if (c == '"') {
      strings++;
      i++;
      while (i < jsonText.length && jsonText.charAt(i) != '"') i++;
    }
    else if (c >= "0" && c <= "9") {
      numbers++;
      while (i + 1 < jsonText.length) {
        var d = jsonText.charAt(i + 1);
        if (d >= "0" && d <= "9") i++; else break;
      }
    }
    i++;
  }
  return maxDepth * 100000 + strings * 100 + numbers;
}`},

	{ID: "K10", Name: "json-stringify", Suite: "Kraken", InAvgS: false, Iterations: 1, Source: `
// Serialize object records into JSON text: string building dominates.
var jsonRecords = [];
for (var i = 0; i < 60; i++) {
  jsonRecords.push({id: i, score: i * 1.5, tag: "rec" + i});
}
function stringifyRecord(r) {
  return '{"id":' + r.id + ',"score":' + r.score + ',"tag":"' + r.tag + '"}';
}
function run() {
  var out = "[";
  for (var i = 0; i < jsonRecords.length; i++) {
    if (i > 0) out += ",";
    out += stringifyRecord(jsonRecords[i]);
  }
  out += "]";
  return out.length + out.charCodeAt(10);
}`},

	{ID: "K11", Name: "stanford-crypto-aes", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// AES encryption of a 4KB message with table lookups: word-level rounds,
// bounds-check dense, moderate write footprint.
var scaT = new Array(256);
for (var i = 0; i < 256; i++) scaT[i] = ((i * 0x01010101) ^ (i << 3) ^ (i >> 2)) | 0;
var scaMsg = new Array(1024);
for (var j = 0; j < 1024; j++) scaMsg[j] = (j * 2654435761) | 0;
var scaOut = new Array(1024);
function encryptBlock(w0, w1, w2, w3, rounds) {
  for (var r = 0; r < rounds; r++) {
    var t0 = scaT[w0 & 0xFF] ^ ((w1 >> 8) & 0xFFFF);
    var t1 = scaT[w1 & 0xFF] ^ ((w2 >> 8) & 0xFFFF);
    var t2 = scaT[w2 & 0xFF] ^ ((w3 >> 8) & 0xFFFF);
    var t3 = scaT[w3 & 0xFF] ^ ((w0 >> 8) & 0xFFFF);
    w0 = (t0 + r) | 0; w1 = t1; w2 = t2; w3 = t3;
  }
  return w0 ^ w1 ^ w2 ^ w3;
}
function run() {
  for (var b = 0; b < 1024; b += 4) {
    scaOut[b] = encryptBlock(scaMsg[b], scaMsg[b + 1], scaMsg[b + 2], scaMsg[b + 3], 10);
    scaOut[b + 1] = scaOut[b] ^ scaMsg[b + 1];
    scaOut[b + 2] = scaOut[b + 1] ^ scaMsg[b + 2];
    scaOut[b + 3] = scaOut[b + 2] ^ scaMsg[b + 3];
  }
  var h = 0;
  for (var i = 0; i < 1024; i += 33) h = (h * 31 + scaOut[i]) | 0;
  return h;
}`},

	{ID: "K12", Name: "stanford-crypto-ccm", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// CCM-style CBC-MAC plus counter-mode XOR over message words.
var ccmMsg = new Array(2048);
for (var i = 0; i < 2048; i++) ccmMsg[i] = (i * 0x9E3779B9) | 0;
var ccmCipher = new Array(2048);
function macStep(mac, w) {
  mac = (mac ^ w) | 0;
  mac = ((mac << 5) | (mac >>> 27)) | 0;
  mac = (mac + 0x7ED55D16) | 0;
  return mac;
}
function run() {
  var mac = 0x1F123BB5 | 0;
  for (var i = 0; i < 2048; i++) mac = macStep(mac, ccmMsg[i]);
  var ctr = 0;
  for (var j = 0; j < 2048; j++) {
    ctr = (ctr + 0x01000193) | 0;
    ccmCipher[j] = ccmMsg[j] ^ ctr;
  }
  var h = mac;
  for (var k = 0; k < 2048; k += 67) h = (h * 33 + ccmCipher[k]) | 0;
  return h;
}`},

	{ID: "K13", Name: "stanford-crypto-pbkdf2", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// PBKDF2-style iterated HMAC mixing: long dependent int chains.
function prf(key, block) {
  var x = key ^ block;
  for (var r = 0; r < 8; r++) {
    x = (x + ((x << 10) | 0)) | 0;
    x = x ^ (x >>> 6);
  }
  return x;
}
function run() {
  var dk = 0;
  for (var block = 1; block <= 4; block++) {
    var u = prf(0x5C5C5C5C | 0, block);
    var t = u;
    for (var c = 1; c < 300; c++) {
      u = prf(u, c);
      t = (t ^ u) | 0;
    }
    dk = (dk + t) | 0;
  }
  return dk;
}`},

	{ID: "K14", Name: "stanford-crypto-sha256", Suite: "Kraken", InAvgS: true, Iterations: 1, Source: `
// SHA-256-style compression rounds: sigma functions, word schedule,
// overflow-checked int adds everywhere.
var shaK = new Array(64);
for (var i = 0; i < 64; i++) shaK[i] = ((i + 1) * 0x428A2F98) | 0;
var shaW = new Array(64);
function s0(x) { return ((x >>> 7) | (x << 25)) ^ ((x >>> 18) | (x << 14)) ^ (x >>> 3); }
function s1(x) { return ((x >>> 17) | (x << 15)) ^ ((x >>> 19) | (x << 13)) ^ (x >>> 10); }
function run() {
  var h0 = 0x6A09E667 | 0, h1 = 0xBB67AE85 | 0, h2 = 0x3C6EF372 | 0, h3 = 0xA54FF53A | 0;
  var h4 = 0x510E527F | 0, h5 = 0x9B05688C | 0, h6 = 0x1F83D9AB | 0, h7 = 0x5BE0CD19 | 0;
  for (var blk = 0; blk < 30; blk++) {
    for (var t = 0; t < 16; t++) shaW[t] = (blk * 64 + t * 3) | 0;
    for (var t2 = 16; t2 < 64; t2++) {
      shaW[t2] = (s1(shaW[t2 - 2]) + shaW[t2 - 7] + s0(shaW[t2 - 15]) + shaW[t2 - 16]) | 0;
    }
    var a = h0, b = h1, c = h2, d = h3, e = h4, f = h5, g = h6, h = h7;
    for (var t3 = 0; t3 < 64; t3++) {
      var S1 = ((e >>> 6) | (e << 26)) ^ ((e >>> 11) | (e << 21)) ^ ((e >>> 25) | (e << 7));
      var ch = (e & f) ^ (~e & g);
      var temp1 = (h + S1 + ch + shaK[t3] + shaW[t3]) | 0;
      var S0 = ((a >>> 2) | (a << 30)) ^ ((a >>> 13) | (a << 19)) ^ ((a >>> 22) | (a << 10));
      var maj = (a & b) ^ (a & c) ^ (b & c);
      var temp2 = (S0 + maj) | 0;
      h = g; g = f; f = e; e = (d + temp1) | 0;
      d = c; c = b; b = a; a = (temp1 + temp2) | 0;
    }
    h0 = (h0 + a) | 0; h1 = (h1 + b) | 0; h2 = (h2 + c) | 0; h3 = (h3 + d) | 0;
    h4 = (h4 + e) | 0; h5 = (h5 + f) | 0; h6 = (h6 + g) | 0; h7 = (h7 + h) | 0;
  }
  return (h0 ^ h1 ^ h2 ^ h3 ^ h4 ^ h5 ^ h6 ^ h7) | 0;
}`},
}
