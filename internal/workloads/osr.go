package workloads

// OSR-entry workloads: single-invocation hot loops. Every other suite
// accrues its heat across many short run() calls, so invocation-entry
// tier-up always gets there first; these programs spend their whole life
// inside one call, which only the back-edge OSR-entry path can optimize
// mid-run. A fixed 256-element footprint keeps the loop transaction well
// inside HTM capacity, so under Arch=NoMap the steady state is clean
// loop-nest transactions entered via EnterAt.
var osrEntry = []Workload{
	{ID: "singlecall", Name: "single-call hot loop", Suite: "OSR", Iterations: 1, Source: `
var SC = new Array(256);
for (var i = 0; i < 256; i++) SC[i] = i & 7;
function run() {
  var s = 0;
  for (var i = 0; i < 200000; i++) {
    var j = i & 255;
    SC[j] = SC[j] + 1;
    s = s + SC[j];
  }
  return s;
}`},
}

// OSREntry returns the single-invocation hot-loop workloads.
func OSREntry() []Workload { return osrEntry }
