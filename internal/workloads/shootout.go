package workloads

// Shootout-like kernels for the paper's Figure 1 (cross-language steady
// state). The paper runs C, JavaScript, Python, PHP, and Ruby versions of
// the Shootout benchmarks; here the same kernels are executed by our engine
// while the harness models the other languages with calibrated cost factors
// (see harness.Figure1 for the substitution notes).

var shootout = []Workload{
	{ID: "X01", Name: "random", Suite: "Shootout", Iterations: 1, Source: `
var IM = 139968, IA = 3877, IC = 29573;
var lastRandom = 42;
function genRandom(max) {
  lastRandom = (lastRandom * IA + IC) % IM;
  return max * lastRandom / IM;
}
function run() {
  lastRandom = 42;
  var r = 0.0;
  for (var i = 0; i < 4000; i++) r = genRandom(100.0);
  return Math.floor(r * 1000);
}`},

	{ID: "X02", Name: "nbody", Suite: "Shootout", Iterations: 1, Source: `
var xs = [], ys = [], vxs = [], vys = [];
var ms = [39.47, 0.037, 0.011, 0.0017, 0.002];
function resetNBody() {
  var x0 = [0.0, 4.84, 8.34, 12.89, 15.37];
  var y0 = [0.0, -1.16, 4.12, -15.11, -25.91];
  var vx0 = [0.0, 0.6, -1.01, 1.08, 0.97];
  var vy0 = [0.0, 2.81, 1.82, 0.86, 0.59];
  for (var i = 0; i < 5; i++) { xs[i] = x0[i]; ys[i] = y0[i]; vxs[i] = vx0[i]; vys[i] = vy0[i]; }
}
function run() {
  resetNBody();
  for (var s = 0; s < 200; s++) {
    for (var i = 0; i < 5; i++) {
      for (var j = i + 1; j < 5; j++) {
        var dx = xs[i] - xs[j], dy = ys[i] - ys[j];
        var d2 = dx * dx + dy * dy;
        var mag = 0.01 / (d2 * Math.sqrt(d2));
        vxs[i] -= dx * ms[j] * mag; vys[i] -= dy * ms[j] * mag;
        vxs[j] += dx * ms[i] * mag; vys[j] += dy * ms[i] * mag;
      }
    }
    for (var k = 0; k < 5; k++) { xs[k] += 0.01 * vxs[k]; ys[k] += 0.01 * vys[k]; }
  }
  var e = 0.0;
  for (var b = 0; b < 5; b++) e += 0.5 * ms[b] * (vxs[b] * vxs[b] + vys[b] * vys[b]);
  return Math.floor(e * 100000);
}`},

	{ID: "X03", Name: "matrix", Suite: "Shootout", Iterations: 1, Source: `
var SIZE = 16;
var m1 = new Array(SIZE * SIZE), m2 = new Array(SIZE * SIZE), mm = new Array(SIZE * SIZE);
for (var i = 0; i < SIZE * SIZE; i++) { m1[i] = i + 1; m2[i] = (i * 3) % 61; }
function run() {
  for (var rep = 0; rep < 8; rep++) {
    for (var i = 0; i < SIZE; i++) {
      for (var j = 0; j < SIZE; j++) {
        var v = 0;
        for (var k = 0; k < SIZE; k++) v += m1[i * SIZE + k] * m2[k * SIZE + j];
        mm[i * SIZE + j] = v;
      }
    }
  }
  return mm[0] + mm[SIZE * SIZE - 1];
}`},

	{ID: "X04", Name: "heapsort", Suite: "Shootout", Iterations: 1, Source: `
var hsN = 1200;
var hsRand = 1;
var hsArr = new Array(hsN + 1);
function run() {
  hsRand = 1;
  for (var i = 1; i <= hsN; i++) {
    hsRand = (hsRand * 1103515245 + 12345) & 0x7FFFFFFF;
    hsArr[i] = hsRand % 10000;
  }
  var n = hsN;
  var l = (n >> 1) + 1, ir = n;
  var rra;
  while (true) {
    if (l > 1) { l--; rra = hsArr[l]; }
    else {
      rra = hsArr[ir];
      hsArr[ir] = hsArr[1];
      ir--;
      if (ir == 1) { hsArr[1] = rra; break; }
    }
    var ii = l, jj = l << 1;
    while (jj <= ir) {
      if (jj < ir && hsArr[jj] < hsArr[jj + 1]) jj++;
      if (rra < hsArr[jj]) { hsArr[ii] = hsArr[jj]; ii = jj; jj += jj; }
      else jj = ir + 1;
    }
    hsArr[ii] = rra;
  }
  return hsArr[hsN >> 1];
}`},

	{ID: "X05", Name: "hash", Suite: "Shootout", Iterations: 1, Source: `
function run() {
  var table = {};
  var count = 0;
  for (var i = 1; i <= 600; i++) {
    table["k" + i.toString(16)] = i;
  }
  for (var j = 600; j > 0; j--) {
    if (table["k" + j.toString(16)] !== undefined) count++;
  }
  return count;
}`},

	{ID: "X06", Name: "harmonic", Suite: "Shootout", Iterations: 1, Source: `
function run() {
  var partialSum = 0.0;
  for (var d = 1; d <= 30000; d++) partialSum += 1.0 / d;
  return Math.floor(partialSum * 100000);
}`},

	{ID: "X07", Name: "fibo", Suite: "Shootout", Iterations: 1, Source: `
function fibo(n) {
  if (n < 2) return 1;
  return fibo(n - 2) + fibo(n - 1);
}
function run() { return fibo(16); }`},

	{ID: "X08", Name: "fannkuchredux", Suite: "Shootout", Iterations: 1, Source: `
function run() {
  var n = 6;
  var perm = new Array(n), perm1 = new Array(n), count = new Array(n);
  for (var i = 0; i < n; i++) perm1[i] = i;
  var maxFlips = 0, r = n, steps = 0;
  while (steps < 300) {
    while (r != 1) { count[r - 1] = r; r--; }
    for (var j = 0; j < n; j++) perm[j] = perm1[j];
    var flips = 0, k = perm[0];
    while (k != 0) {
      var lo = 0, hi = k;
      while (lo < hi) { var t = perm[lo]; perm[lo] = perm[hi]; perm[hi] = t; lo++; hi--; }
      flips++;
      k = perm[0];
    }
    if (flips > maxFlips) maxFlips = flips;
    steps++;
    var done = false;
    while (!done) {
      if (r == n) return maxFlips;
      var p0 = perm1[0];
      for (var m = 0; m < r; m++) perm1[m] = perm1[m + 1];
      perm1[r] = p0;
      count[r]--;
      if (count[r] > 0) done = true; else r++;
    }
  }
  return maxFlips;
}`},

	{ID: "X09", Name: "binarytrees", Suite: "Shootout", Iterations: 1, Source: `
function buildCheck(depth, base) {
  // Build-and-check fused to avoid retaining trees: returns the checksum of
  // a complete tree of the given depth.
  if (depth == 0) return base;
  return base + buildCheck(depth - 1, base * 2 - 1) - buildCheck(depth - 1, base * 2 + 1);
}
function run() {
  var sum = 0;
  for (var d = 2; d <= 9; d++) sum += buildCheck(d, 1);
  return sum;
}`},

	{ID: "X10", Name: "takfp", Suite: "Shootout", Iterations: 1, Source: `
function tak(x, y, z) {
  if (y >= x) return z;
  return tak(tak(x - 1.0, y, z), tak(y - 1.0, z, x), tak(z - 1.0, x, y));
}
function run() { return Math.floor(tak(10.0, 5.0, 2.0) * 100); }`},

	{ID: "X11", Name: "sieve", Suite: "Shootout", Iterations: 1, Source: `
var svFlags = new Array(8193);
function run() {
  var count = 0;
  for (var rep = 0; rep < 4; rep++) {
    count = 0;
    for (var i = 2; i <= 8192; i++) svFlags[i] = 1;
    for (var i2 = 2; i2 <= 8192; i2++) {
      if (svFlags[i2]) {
        for (var k = i2 + i2; k <= 8192; k += i2) svFlags[k] = 0;
        count++;
      }
    }
  }
  return count;
}`},
}
