// Package workloads re-expresses the SunSpider and Kraken benchmark suites
// (plus a Shootout-style set for the paper's Figure 1) in the engine's
// JavaScript subset. Each workload mirrors the computational character of
// the original benchmark — the same kinds of loops, data structures, and
// check pressure — at a size that keeps simulated runs fast.
//
// Every workload defines setup code plus a run() function; the harness
// warms run() until it reaches the FTL tier, resets the counters, and
// measures steady state, exactly like the paper's methodology (§VI).
//
// The paper's Table III classification is preserved: benchmarks it excludes
// from AvgS are built to exhibit the excluding property — S02/S08/S09
// compute results that NoMap's DCE can treat as dead, and the
// string/regexp/JSON benchmarks spend ≥95% of their instructions outside
// FTL code (generic runtime calls and builtin methods).
package workloads

// Workload is one benchmark.
type Workload struct {
	// ID is the paper's index within its suite ("S01".."S26", "K01".."K14").
	ID string
	// Name is the original benchmark's name.
	Name string
	// Suite is "SunSpider", "Kraken", or "Shootout".
	Suite string
	// Source is the program: setup code plus a run() function.
	Source string
	// InAvgS reports membership in the paper's AvgS subset (Table III).
	InAvgS bool
	// Iterations scales how many run() calls constitute one measured rep.
	Iterations int
}

// SunSpider returns the 26 SunSpider-like workloads (S01..S26).
func SunSpider() []Workload { return sunspider }

// Kraken returns the 14 Kraken-like workloads (K01..K14).
func Kraken() []Workload { return kraken }

// Shootout returns the Shootout-like workloads used for Figure 1.
func Shootout() []Workload { return shootout }

// ByID finds a workload by its ID in any suite.
func ByID(id string) (Workload, bool) {
	for _, set := range [][]Workload{sunspider, kraken, shootout, adversarial, osrEntry, callHeavy, poly, numeric} {
		for _, w := range set {
			if w.ID == id {
				return w, true
			}
		}
	}
	return Workload{}, false
}

// AvgS filters a suite to the paper's AvgS subset.
func AvgS(ws []Workload) []Workload {
	var out []Workload
	for _, w := range ws {
		if w.InAvgS {
			out = append(out, w)
		}
	}
	return out
}
