package workloads

// Call-heavy workloads: hot loops whose bodies are dominated by small
// monomorphic function calls. They exist to exercise the speculative
// inlining pass end to end:
//
//   - C01 leaf-math: a tight loop calling a leaf arithmetic helper. The
//     inliner flattens the callee, the loop transaction stops containing a
//     call, and the callee's checks become hoistable across the former
//     boundary.
//
//   - C02 accessors: property reads behind tiny accessor functions — the
//     classic getter pattern whose per-call overhead dwarfs the work. Shape
//     checks from the flattened accessors merge with the caller's.
//
//   - C03 call-chain: a two-deep monomorphic chain (run → outer → inner),
//     proving multi-depth inlining and, under fault injection, multi-frame
//     deopt reconstruction at inline depth 2.
//
//   - C04 poly-control: the call site alternates two callees, so its
//     feedback is polymorphic and the builder never emits a plain direct
//     call. The inline-cache subsystem grows it a 2-way dispatch plan
//     instead: both callees inline behind their guards (see internal/ic and
//     the P-suite in poly.go).
//
//   - C05 capacity-calls: a write footprint past HTM capacity plus a leaf
//     call per iteration. Without inlining the first capacity abort blames
//     the callee (§V-C HadCalls) and pins transactions off; with inlining
//     the call disappears, the blame counter stays zero, and the governor
//     retreats through tiling instead.
var callHeavy = []Workload{
	{ID: "C01", Name: "leaf-math", Suite: "CallHeavy", Iterations: 1, Source: `
var CM = new Array(64);
for (var i = 0; i < 64; i++) CM[i] = i;
function mix(a, b) { return ((a * 3 + b) | 0) + ((a ^ b) & 15); }
function run() {
  var s = 0;
  for (var i = 0; i < 4000; i++) s = s + mix(CM[i & 63], i & 31);
  return s;
}`},

	{ID: "C02", Name: "accessors", Suite: "CallHeavy", Iterations: 1, Source: `
var PTS = new Array(64);
for (var i = 0; i < 64; i++) PTS[i] = {x: i, y: i * 2};
function getx(p) { return p.x; }
function gety(p) { return p.y; }
function run() {
  var s = 0;
  for (var i = 0; i < 3000; i++) {
    var p = PTS[i & 63];
    s = s + getx(p) + gety(p);
  }
  return s;
}`},

	{ID: "C03", Name: "call-chain", Suite: "CallHeavy", Iterations: 1, Source: `
function inner(a, b) { return ((a * b + 3) | 0) & 1023; }
function outer(a, b) { return inner(a, a + b) + inner(b, a + 1); }
function run() {
  var s = 0;
  for (var i = 0; i < 3000; i++) s = s + outer(i & 31, i & 15);
  return s;
}`},

	{ID: "C04", Name: "poly-control", Suite: "CallHeavy", Iterations: 1, Source: `
function padd(x) { return x + 7; }
function pmul(x) { return (x * 3) | 0; }
function run() {
  var s = 0;
  for (var i = 0; i < 3000; i++) {
    var f = padd;
    if ((i & 1) == 1) f = pmul;
    s = s + f(i & 63);
  }
  return s;
}`},

	{ID: "C05", Name: "capacity-calls", Suite: "CallHeavy", Iterations: 1, Source: `
var THR = new Array(8);
function scale(x) { return (x * 5) & 255; }
function run() {
  var s = 0;
  for (var i = 0; i < 35200; i++) {
    THR[i] = scale(i);
    s = s + 1;
  }
  return s;
}`},
}

// CallHeavy returns the call-dominated inlining workloads (C01..C05).
func CallHeavy() []Workload { return callHeavy }
