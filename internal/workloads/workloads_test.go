package workloads_test

import (
	"testing"

	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func newEngine(arch vm.Arch, maxTier profile.Tier) *vm.VM {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = maxTier
	// Fast tier-up keeps the test quick without changing steady state.
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	v := vm.New(cfg)
	jit.Attach(v)
	return v
}

func runWorkload(t *testing.T, w workloads.Workload, arch vm.Arch, maxTier profile.Tier, calls int) (*vm.VM, value.Value) {
	t.Helper()
	v := newEngine(arch, maxTier)
	if _, err := v.Run(w.Source); err != nil {
		t.Fatalf("%s setup: %v", w.ID, err)
	}
	var last value.Value
	for i := 0; i < calls; i++ {
		r, err := v.CallGlobal("run")
		if err != nil {
			t.Fatalf("%s run #%d under %v: %v", w.ID, i, arch, err)
		}
		last = r
	}
	return v, last
}

func TestSuiteSizes(t *testing.T) {
	if n := len(workloads.SunSpider()); n != 26 {
		t.Errorf("SunSpider has %d workloads, want 26", n)
	}
	if n := len(workloads.Kraken()); n != 14 {
		t.Errorf("Kraken has %d workloads, want 14", n)
	}
	if n := len(workloads.Shootout()); n != 11 {
		t.Errorf("Shootout has %d workloads, want 11", n)
	}
	// Paper Table III: 16 SunSpider and 9 Kraken benchmarks in AvgS.
	if n := len(workloads.AvgS(workloads.SunSpider())); n != 16 {
		t.Errorf("SunSpider AvgS has %d, want 16", n)
	}
	if n := len(workloads.AvgS(workloads.Kraken())); n != 9 {
		t.Errorf("Kraken AvgS has %d, want 9", n)
	}
}

func TestByID(t *testing.T) {
	w, ok := workloads.ByID("S18")
	if !ok || w.Name != "math-cordic" {
		t.Errorf("ByID(S18) = %+v, %v", w, ok)
	}
	if _, ok := workloads.ByID("S99"); ok {
		t.Error("ByID(S99) should not exist")
	}
}

// Every workload must run deterministically: same result on repeated calls
// (steady-state measurement depends on this).
func TestWorkloadsDeterministic(t *testing.T) {
	all := append(append(workloads.SunSpider(), workloads.Kraken()...), workloads.Shootout()...)
	for _, w := range all {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			v := newEngine(vm.ArchBase, profile.TierInterp)
			if _, err := v.Run(w.Source); err != nil {
				t.Fatalf("setup: %v", err)
			}
			a, err := v.CallGlobal("run")
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := v.CallGlobal("run")
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.ToStringValue() != b.ToStringValue() {
				t.Errorf("nondeterministic: %q then %q", a, b)
			}
		})
	}
}

// The OSR suite's single-invocation hot loops must agree across every
// architecture for one cold call — the call that tiers up mid-execution via
// OSR entry. (They are excluded from the 50-call matrix above on purpose:
// their heat is all inside one invocation.)
func TestOSRWorkloadsAgreeAcrossArchs(t *testing.T) {
	for _, w := range workloads.OSREntry() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			_, want := runWorkload(t, w, vm.ArchBase, profile.TierInterp, 1)
			for _, arch := range vm.AllArchs {
				v, got := runWorkload(t, w, arch, profile.TierFTL, 1)
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v: result %q, want %q", arch, got, want)
				}
				if arch == vm.ArchNoMap && v.Counters().OSREntries == 0 {
					t.Errorf("%v: single call recorded no OSR entries", arch)
				}
			}
		})
	}
}

// The same result must come out of every architecture configuration after
// warm-up — transactions, aborts, and check removal are semantics-preserving.
func TestWorkloadsAgreeAcrossArchs(t *testing.T) {
	all := append(append(workloads.SunSpider(), workloads.Kraken()...), workloads.Shootout()...)
	for _, w := range all {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			_, want := runWorkload(t, w, vm.ArchBase, profile.TierInterp, 2)
			for _, arch := range vm.AllArchs {
				_, got := runWorkload(t, w, arch, profile.TierFTL, 50)
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v: result %q, want %q", arch, got, want)
				}
			}
		})
	}
}

// The call-heavy suite must agree across every architecture — with the
// inliner active (the default) and with it disabled — so speculative call
// inlining is semantics-preserving on exactly the programs built to
// exercise it, including the polymorphic negative control.
func TestCallHeavyAgreeAcrossArchs(t *testing.T) {
	for _, w := range workloads.CallHeavy() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			_, want := runWorkload(t, w, vm.ArchBase, profile.TierInterp, 2)
			for _, arch := range vm.AllArchs {
				_, got := runWorkload(t, w, arch, profile.TierFTL, 50)
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v: result %q, want %q", arch, got, want)
				}
			}
			cfg := vm.DefaultConfig()
			cfg.Arch = vm.ArchNoMap
			cfg.DisableInlining = true
			cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
			v := vm.New(cfg)
			jit.Attach(v)
			if _, err := v.Run(w.Source); err != nil {
				t.Fatalf("setup: %v", err)
			}
			var got value.Value
			for i := 0; i < 50; i++ {
				r, err := v.CallGlobal("run")
				if err != nil {
					t.Fatalf("no-inline run #%d: %v", i, err)
				}
				got = r
			}
			if got.ToStringValue() != want.ToStringValue() {
				t.Errorf("inlining-off: result %q, want %q", got, want)
			}
		})
	}
}

// AvgS workloads must actually exercise the FTL tier (that is why the paper
// includes them), and each one's run() must be dominated by FTL
// instructions under the Base configuration.
func TestAvgSReachesFTL(t *testing.T) {
	avgs := append(workloads.AvgS(workloads.SunSpider()), workloads.AvgS(workloads.Kraken())...)
	for _, w := range avgs {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			v, _ := runWorkload(t, w, vm.ArchBase, profile.TierFTL, 50)
			v.ResetCounters()
			if _, err := v.CallGlobal("run"); err != nil {
				t.Fatal(err)
			}
			if v.Counters().FTLCalls == 0 {
				t.Errorf("steady state executed no FTL code")
			}
		})
	}
}
