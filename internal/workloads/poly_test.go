package workloads_test

import (
	"math"
	"testing"

	"nomap/internal/ic"
	"nomap/internal/ir"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

// newPolyEngine builds an engine with the IC subsystem optionally disabled,
// returning the backend so tests can inspect compiled dispatch trees.
func newPolyEngine(arch vm.Arch, maxTier profile.Tier, disableIC bool) (*vm.VM, *jit.Backend) {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = maxTier
	cfg.DisableIC = disableIC
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	v := vm.New(cfg)
	b := jit.Attach(v)
	return v, b
}

func runPoly(t *testing.T, w workloads.Workload, v *vm.VM, calls int) value.Value {
	t.Helper()
	if _, err := v.Run(w.Source); err != nil {
		t.Fatalf("%s setup: %v", w.ID, err)
	}
	var last value.Value
	for i := 0; i < calls; i++ {
		r, err := v.CallGlobal("run")
		if err != nil {
			t.Fatalf("%s run #%d: %v", w.ID, i, err)
		}
		last = r
	}
	return last
}

// The polymorphic suite must agree across every architecture — with the IC
// subsystem active (the default) and with it disabled — so shape-guarded
// dispatch trees and transition speculation are semantics-preserving on
// exactly the programs built to exercise them, including the megamorphic
// negative control.
func TestPolyAgreeAcrossArchs(t *testing.T) {
	for _, w := range workloads.Poly() {
		w := w
		t.Run(w.ID, func(t *testing.T) {
			t.Parallel()
			_, want := runWorkload(t, w, vm.ArchBase, profile.TierInterp, 2)
			for _, arch := range vm.AllArchs {
				_, got := runWorkload(t, w, arch, profile.TierFTL, 50)
				if got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v: result %q, want %q", arch, got, want)
				}
				v, _ := newPolyEngine(arch, profile.TierFTL, true)
				if got := runPoly(t, w, v, 50); got.ToStringValue() != want.ToStringValue() {
					t.Errorf("%v ic-off: result %q, want %q", arch, got, want)
				}
			}
		})
	}
}

// dispatchTrees returns the dispatch summaries of every compiled artifact of
// run() (invocation-entry and OSR) after warming w to steady state.
func dispatchTrees(t *testing.T, w workloads.Workload) []ir.DispatchInfo {
	t.Helper()
	v, b := newPolyEngine(vm.ArchNoMap, profile.TierFTL, false)
	runPoly(t, w, v, 60)
	var out []ir.DispatchInfo
	for _, f := range b.CompiledFunctions() {
		if f.Name == "run" {
			out = append(out, f.Dispatch...)
		}
	}
	return out
}

// Each P-workload's steady-state code must contain the dispatch tree its
// shape mix calls for: chain widths 2/4/8 for the call suite (P03 exactly at
// profile.MaxWays), a transition-speculating store tree for P04, and no tree
// at all for the megamorphic control.
func TestPolyDispatchTrees(t *testing.T) {
	t.Run("P01", func(t *testing.T) {
		requireMethodWays(t, "P01", 2)
	})
	t.Run("P02", func(t *testing.T) {
		requireMethodWays(t, "P02", 4)
	})
	t.Run("P03", func(t *testing.T) {
		requireMethodWays(t, "P03", profile.MaxWays)
	})
	t.Run("P04", func(t *testing.T) {
		w, _ := workloads.ByID("P04")
		trans := false
		for _, d := range dispatchTrees(t, w) {
			if d.Kind == ic.KindSet && d.Trans > 0 {
				trans = true
			}
		}
		if !trans {
			t.Error("no transition-speculating store dispatch tree in P04's run()")
		}
	})
	t.Run("P05", func(t *testing.T) {
		w, _ := workloads.ByID("P05")
		if trees := dispatchTrees(t, w); len(trees) != 0 {
			t.Errorf("megamorphic control grew %d dispatch trees: %+v", len(trees), trees)
		}
	})
}

func requireMethodWays(t *testing.T, id string, ways int) {
	t.Helper()
	w, ok := workloads.ByID(id)
	if !ok {
		t.Fatalf("workload %s missing", id)
	}
	found := false
	for _, d := range dispatchTrees(t, w) {
		if d.Kind == ic.KindMethod && d.Name == "m" {
			found = true
			if d.Ways != ways {
				t.Errorf("method site dispatches %d ways, want %d", d.Ways, ways)
			}
		}
	}
	if !found {
		t.Error("no method dispatch tree in run()'s compiled code")
	}
}

// steadyCycles measures steady-state cycles per rep for w with the IC
// subsystem on or off (the A/B surface behind vm.Config.DisableIC).
func steadyCycles(t *testing.T, w workloads.Workload, disableIC bool) float64 {
	t.Helper()
	v, _ := newPolyEngine(vm.ArchNoMap, profile.TierFTL, disableIC)
	runPoly(t, w, v, 60)
	v.ResetCounters()
	for i := 0; i < 20; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatalf("%s measure: %v", w.ID, err)
		}
	}
	return float64(v.Counters().TotalCycles()) / 20
}

// The dispatch trees must pay for themselves: the geomean speedup of
// IC-on over IC-off across the polymorphic suite (and the C04 inlining
// control) must exceed 1.00x, while the megamorphic control — which never
// grows a tree — must be unaffected by the switch.
func TestPolySpeedupOverGenericDispatch(t *testing.T) {
	ids := []string{"P01", "P02", "P03", "P04", "C04"}
	logSum := 0.0
	for _, id := range ids {
		w, ok := workloads.ByID(id)
		if !ok {
			t.Fatalf("workload %s missing", id)
		}
		off := steadyCycles(t, w, true)
		on := steadyCycles(t, w, false)
		ratio := off / on
		t.Logf("%s: %.0f cycles generic, %.0f cycles with IC (%.2fx)", id, off, on, ratio)
		logSum += math.Log(ratio)
		if id == "C04" && ratio <= 1.0 {
			t.Errorf("C04 must improve above 1.00x with dispatch trees, got %.3fx", ratio)
		}
	}
	if geomean := math.Exp(logSum / float64(len(ids))); geomean <= 1.0 {
		t.Errorf("polymorphic-suite geomean speedup %.3fx, want > 1.00x", geomean)
	}

	w, _ := workloads.ByID("P05")
	off := steadyCycles(t, w, true)
	on := steadyCycles(t, w, false)
	if ratio := off / on; ratio < 0.98 || ratio > 1.02 {
		t.Errorf("megamorphic control shifted %.3fx under the IC switch, want within 2%%", ratio)
	}
}
