package workloads

// Numeric microbenchmarks: tight arithmetic kernels that live almost
// entirely in the boxed register file, sized to make the NaN-boxed value
// pipeline's costs visible — superinstruction dispatch in the bytecode
// tiers, int32/double tag discrimination, and boxed arithmetic fast paths:
//
//   - N01 int-chain: constant-fused integer arithmetic (x+1, x-2, x*3
//     chains) — the ADDK/SUBK/MULK patterns back to back.
//
//   - N02 cmp-ladder: loops dominated by compare-and-branch against both
//     registers and constants — the CMPJF/CMPKJF patterns, plus INCR on the
//     induction variables.
//
//   - N03 double-mix: double-precision arithmetic seeded from an int loop
//     counter, exercising the int→double boxing boundary and raw-double
//     boxes (every intermediate is a NaN-box payload).
//
//   - N04 int-overflow-mix: integer arithmetic that crosses the int32
//     boundary mid-loop, so values oscillate between the int32 tag and raw
//     double bits — kind observability under boxing.
//
//   - N05 num-array: a numeric array accumulate with a constant-stepped
//     index — boxed element traffic plus INCR, the paper's Figure-4 shape
//     reduced to its arithmetic skeleton.
var numeric = []Workload{
	{ID: "N01", Name: "int-chain", Suite: "Numeric", Iterations: 1, Source: `
function run() {
  var a = 0;
  var b = 7;
  for (var i = 0; i < 6000; i++) {
    a = a + 1;
    b = b + 3;
    a = b - 2;
    b = (a * 3) | 0;
    b = b - 1;
    a = a + 2;
  }
  return a + b;
}`},

	{ID: "N02", Name: "cmp-ladder", Suite: "Numeric", Iterations: 1, Source: `
function run() {
  var hits = 0;
  var n = 900;
  for (var i = 0; i < 5000; i++) {
    var j = i & 1023;
    if (j < 100) hits = hits + 1;
    if (j < n) hits = hits + 2;
    var k = 0;
    while (k < 4) { k++; hits = hits + k; }
  }
  return hits;
}`},

	{ID: "N03", Name: "double-mix", Suite: "Numeric", Iterations: 1, Source: `
function run() {
  var s = 0.5;
  for (var i = 0; i < 5000; i++) {
    var x = i * 0.25;
    s = s + x * 1.5 - 0.125;
    s = s * 0.999;
  }
  return (s * 1000) | 0;
}`},

	{ID: "N04", Name: "int-overflow-mix", Suite: "Numeric", Iterations: 1, Source: `
function run() {
  var s = 0;
  var big = 2147483000;
  for (var i = 0; i < 4000; i++) {
    var t = big + (i & 1023);     // crosses the int32 boundary -> double
    var u = (t - 2147483000) | 0; // back to int32
    s = (s + u + 1) | 0;
  }
  return s;
}`},

	{ID: "N05", Name: "num-array", Suite: "Numeric", Iterations: 1, Source: `
var NA = new Array(512);
for (var i = 0; i < 512; i++) NA[i] = (i * 7) & 255;
function run() {
  var s = 0;
  for (var r = 0; r < 60; r++) {
    for (var i = 0; i < 512; i++) {
      s = s + NA[i] + 1;
    }
    s = s - 512;
  }
  return s;
}`},
}

// Numeric returns the boxed-arithmetic microbenchmarks (N01..N05).
func Numeric() []Workload { return numeric }
