package governor

import "testing"

func TestContentionBackoffDeterminism(t *testing.T) {
	a := NewContention(DefaultContentionPolicy(7))
	b := NewContention(DefaultContentionPolicy(7))
	for i := 0; i < 3; i++ {
		da, db := a.OnConflict("wl#s0"), b.OnConflict("wl#s0")
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %+v vs %+v", i, da, db)
		}
		if da.Fallback {
			t.Fatalf("attempt %d: fell back below MaxAttempts", i)
		}
		if da.BackoffCycles <= 0 {
			t.Fatalf("attempt %d: non-positive backoff window %d", i, da.BackoffCycles)
		}
	}
	c := NewContention(DefaultContentionPolicy(8))
	var differs bool
	d := NewContention(DefaultContentionPolicy(7))
	for i := 0; i < 3; i++ {
		if c.OnConflict("wl#s0").BackoffCycles != d.OnConflict("wl#s0").BackoffCycles {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}

func TestContentionBackoffEnvelope(t *testing.T) {
	pol := ContentionPolicy{MaxAttempts: 10, BackoffBase: 16, BackoffCap: 64, RepromoteWindow: 4, Seed: 3}
	g := NewContention(pol)
	for i := 1; i < pol.MaxAttempts; i++ {
		dec := g.OnConflict("site")
		envelope := pol.BackoffBase << (i - 1)
		if envelope > pol.BackoffCap {
			envelope = pol.BackoffCap
		}
		if dec.BackoffCycles < 1 || dec.BackoffCycles > envelope {
			t.Fatalf("attempt %d: window %d outside (0, %d]", i, dec.BackoffCycles, envelope)
		}
	}
}

func TestContentionDemotionAndRepromotion(t *testing.T) {
	pol := ContentionPolicy{MaxAttempts: 3, BackoffBase: 8, BackoffCap: 64, RepromoteWindow: 2, Seed: 1}
	g := NewContention(pol)
	const site = "wl#s1"

	if g.Demoted(site) {
		t.Fatal("fresh site already demoted")
	}
	g.OnConflict(site)
	g.OnConflict(site)
	dec := g.OnConflict(site) // third conflict hits MaxAttempts
	if !dec.Fallback {
		t.Fatalf("conflict storm did not demand fallback: %+v", dec)
	}
	if !g.Demoted(site) {
		t.Fatal("site not demoted after conflict storm")
	}

	if g.OnCommit(site, true) {
		t.Fatal("repromoted after one clean fallback run (window is 2)")
	}
	if !g.OnCommit(site, true) {
		t.Fatal("not repromoted after RepromoteWindow clean fallback runs")
	}
	if g.Demoted(site) {
		t.Fatal("site still demoted after re-promotion")
	}

	rep := g.Report()
	if len(rep) != 1 || rep[0].Site != site {
		t.Fatalf("report = %+v, want single entry for %s", rep, site)
	}
	if rep[0].Conflicts != 3 || rep[0].Fallbacks != 1 || rep[0].Repromotes != 1 || rep[0].FallCommits != 2 {
		t.Fatalf("ledger = %+v", rep[0])
	}
}

func TestContentionAttemptsResetOnCommit(t *testing.T) {
	pol := ContentionPolicy{MaxAttempts: 2, BackoffBase: 8, BackoffCap: 8, RepromoteWindow: 2, Seed: 1}
	g := NewContention(pol)
	// conflict, commit, conflict, commit, ... never reaches MaxAttempts.
	for i := 0; i < 5; i++ {
		if dec := g.OnConflict("s"); dec.Fallback {
			t.Fatalf("iteration %d: demoted despite interleaved commits", i)
		}
		g.OnCommit("s", false)
	}
}

func TestContentionCapacityBlame(t *testing.T) {
	g := NewContention(DefaultContentionPolicy(5))
	dec := g.OnCapacity("wl#s0")
	if !dec.Fallback || dec.BackoffCycles != 0 {
		t.Fatalf("capacity blame should fall back immediately: %+v", dec)
	}
	// Capacity does not demote: the next execution may fit.
	if g.Demoted("wl#s0") {
		t.Fatal("capacity abort demoted the site")
	}
	rep := g.Report()
	if rep[0].Capacities != 1 || rep[0].Conflicts != 0 {
		t.Fatalf("capacity not ledgered separately from conflicts: %+v", rep[0])
	}
}
