// Package governor is the deterministic abort-recovery governor: it owns all
// post-abort policy for the speculative tiers, replacing the ad-hoc recovery
// logic that used to live in the JIT driver. NoMap's performance hinges on
// its fallback behaviour — every abort discards transactional work and
// re-executes in Baseline (paper Figure 11's squashed-work analysis, §V-C's
// footprint policy) — so the reaction to an abort must be surgical, not
// global:
//
//   - Check-abort storms at one site restore the Stack Map Point for that
//     check only (a core.KeepSet threaded into recompilation); the rest of
//     the transaction keeps its NoMap optimizations and the whole-function
//     deopt budget is not charged.
//
//   - Irrevocable aborts (I/O in a hot loop) drop the function to TxOff
//     immediately but keep the FTL tier: transactions were the problem, not
//     the speculation.
//
//   - Capacity aborts keep the paper's §V-C retreat ladder but gain
//     probationary re-promotion: after a window of clean commits at the
//     lower level the governor retries the next-higher level once, with
//     window-doubling hysteresis so a phase-flapping workload converges to
//     its stable level instead of oscillating.
//
// Every decision is a pure function of the event sequence — commit counts
// and abort causes, never wall-clock time — so fault-injection sweeps remain
// reproducible with the governor active.
package governor

import (
	"sort"

	"nomap/internal/core"
	"nomap/internal/htm"
	"nomap/internal/stats"
)

// Policy holds the governor's deterministic tuning constants.
type Policy struct {
	// CheckAbortBudget is the per-site abort count that triggers surgical
	// SMP restoration for that site.
	CheckAbortBudget int64
	// DecayWindow is the clean-progress count after which every site
	// ledger halves, so rare benign aborts never accumulate to the budget.
	DecayWindow int64
	// RepromoteWindow is the clean-progress count (committed transactions,
	// or clean FTL calls while transactions are off) required before a
	// demoted function probes the next-higher transaction level.
	RepromoteWindow int64
	// ProbationBackoff multiplies the window after every failed probe
	// (hysteresis: flip-flopping gets exponentially rarer).
	ProbationBackoff int64
	// MaxProbations is the number of failed probes (or post-promotion
	// regressions) after which the function's level is pinned.
	MaxProbations int
	// AllowTiling mirrors the §V-C ladder shape: lightweight ROT retreats
	// through TxTiled, heavyweight RTM skips it.
	AllowTiling bool
	// Legacy reproduces the pre-governor policy for A/B comparison: one-way
	// §V-C retreat on capacity aborts, every other transfer charged to the
	// whole-function deopt budget, no SMP restoration, no re-promotion.
	Legacy bool
}

// DefaultPolicy returns the tuning used by the runtime.
func DefaultPolicy(allowTiling bool) Policy {
	return Policy{
		CheckAbortBudget: 4,
		DecayWindow:      256,
		RepromoteWindow:  24,
		ProbationBackoff: 2,
		MaxProbations:    3,
		AllowTiling:      allowTiling,
	}
}

// Transfer describes one control transfer out of FTL code (a transaction
// abort or a plain OSR exit), as seen by the JIT driver.
type Transfer struct {
	// Fn is the function whose frame surfaced the transfer — for aborts,
	// the owner of the outermost transaction; level policy applies to it.
	Fn      string
	Aborted bool
	Cause   htm.AbortCause
	Class   stats.CheckClass
	// SiteFn/SitePC identify the failing site, which may sit in a callee
	// executing inside Fn's transaction; ledger policy applies to it.
	SiteFn string
	SitePC int
	// SitePath is the inline path of the failing site when the inliner
	// flattened it into SiteFn's compiled code ("" for sites in SiteFn's own
	// code): the same callee inlined at two call sites aborts as two distinct
	// ledger entries.
	SitePath string
	// Shape names the per-shape dispatch variant when the failing site
	// belongs to a polymorphic dispatch tree ("" otherwise): ledgers become
	// per-shape, so one hot wrong-shape receiver is distinguishable from a
	// megamorphic storm spread across many.
	Shape string
	// Dispatch marks the failing site as a dispatch-tree guard. Dispatch
	// misses feed the site's demotion budget instead of SMP restoration or
	// the whole-function deopt budget.
	Dispatch bool
	// HadCalls reports whether the aborted transaction's function contained
	// calls (§V-C: the callee is blamed for the overflow).
	HadCalls bool
	// OSR marks a transfer out of an OSR-entry artifact; OSRPC is its
	// loop-header entry pc. The governor ledgers these per header — an
	// OSR-entry site is a first-class abort site: a header that keeps
	// ejecting execution back to Baseline stops being OSR-entered and the
	// function falls back to promotion at the invocation boundary, with the
	// same decay-based probationary re-enabling as check-site ledgers.
	OSR   bool
	OSRPC int
}

// Decision is the governor's verdict on one transfer (or clean run).
type Decision struct {
	// Recompile requests that the cached code of every function in Drop be
	// discarded so the next call recompiles under the new policy state.
	Recompile bool
	Drop      []string
	// ChargeDeopt charges the transfer against the function's whole-function
	// deopt budget (profile.Policy.MaxDeopts).
	ChargeDeopt bool
	// RestoredSMP reports that this transfer pushed a site over its abort
	// budget and its SMP will be kept from the next compile on.
	RestoredSMP bool
	// DemotedDispatch reports that this transfer pushed a dispatch site over
	// its miss budget: from the next compile on the site's plan is dropped
	// and the generic runtime path runs (megamorphic demotion).
	DemotedDispatch bool
}

// siteLedger tracks one check site's abort history (decayed) and its
// post-restoration deopt count (diagnostic).
type siteLedger struct {
	aborts int64
	deopts int64
}

// funcState is the governor's per-function state machine.
type funcState struct {
	level  core.TxLevel // operating transaction level
	proven core.TxLevel // last level that survived a full window
	// probing marks a probationary run at a level one step above proven.
	probing bool
	// pinned freezes the level: set by irrevocable aborts, call-containing
	// overflows (§V-C blames the callee; tiling cannot bound callee
	// footprints), and MaxProbations failed probes.
	pinned bool
	// promoted marks that the current level was reached by a confirmed
	// probe, so a later capacity abort counts as a regression.
	promoted   bool
	failed     int   // failed probes / post-promotion regressions
	window     int64 // current re-promotion window (doubles on failure)
	progress   int64 // clean progress toward the next probe/confirmation
	sinceDecay int64
	keep       map[core.CheckSite]bool
	sites      map[core.CheckSite]*siteLedger
	// demote lists dispatch-site families (PC+Path, no Class/Shape) whose
	// accumulated misses crossed the budget: their plans are dropped at the
	// next compile and the generic path runs. dmiss is the decayed family
	// miss ledger feeding it; decay drains a family and re-enables the site
	// with the same probationary semantics as OSR headers.
	demote map[core.CheckSite]bool
	dmiss  map[core.CheckSite]int64
	// osrAborts ledgers transfers (aborts and plain deopts) out of OSR
	// artifacts per loop-header entry pc; osrOff disables OSR entry at a
	// header whose ledger crossed the budget.
	osrAborts map[int]int64
	osrOff    map[int]bool
}

// Governor owns per-function recovery state. It is deliberately keyed by
// function name (not bytecode identity): policy decisions must survive
// recompilation and code-cache invalidation.
type Governor struct {
	pol Policy
	fns map[string]*funcState
}

// New creates a governor with the given policy.
func New(pol Policy) *Governor {
	return &Governor{pol: pol, fns: make(map[string]*funcState)}
}

// Policy returns the governor's tuning constants.
func (g *Governor) Policy() Policy { return g.pol }

// Reset discards all ledgers and level state — used between differential
// runs so injected faults in one run cannot change policy in the next.
func (g *Governor) Reset() { g.fns = make(map[string]*funcState) }

func (g *Governor) state(fn string) *funcState {
	st, ok := g.fns[fn]
	if !ok {
		st = &funcState{
			level:     core.TxLoopNest,
			proven:    core.TxLoopNest,
			window:    g.pol.RepromoteWindow,
			keep:      make(map[core.CheckSite]bool),
			sites:     make(map[core.CheckSite]*siteLedger),
			demote:    make(map[core.CheckSite]bool),
			dmiss:     make(map[core.CheckSite]int64),
			osrAborts: make(map[int]int64),
			osrOff:    make(map[int]bool),
		}
		g.fns[fn] = st
	}
	return st
}

func (st *funcState) ledger(s core.CheckSite) *siteLedger {
	l, ok := st.sites[s]
	if !ok {
		l = &siteLedger{}
		st.sites[s] = l
	}
	return l
}

// DemoteSet returns fn's demoted dispatch-site families (nil when empty, so
// the common case costs nothing at compile time). Keys carry PC and inline
// path only; the FTL driver matches them against plan placeholders.
func (g *Governor) DemoteSet(fn string) core.KeepSet {
	st, ok := g.fns[fn]
	if !ok || len(st.demote) == 0 {
		return nil
	}
	return core.KeepSet(st.demote)
}

// noteDispatchMiss charges one dispatch miss (abort or deopt) to the site's
// family ledger and demotes the site once the budget is crossed. Dispatch
// misses always recompile — Baseline re-observes the receiver into the
// histogram, so the next plan covers it or the site saturates megamorphic —
// but never charge the whole-function deopt budget: demotion must win before
// Baseline pinning.
func (g *Governor) noteDispatchMiss(ss *funcState, t Transfer) Decision {
	fam := core.CheckSite{PC: t.SitePC, Path: t.SitePath}
	ss.dmiss[fam]++
	drop := []string{t.Fn}
	if t.SiteFn != "" && t.SiteFn != t.Fn {
		drop = append(drop, t.SiteFn)
	}
	if !ss.demote[fam] && ss.dmiss[fam] >= g.pol.CheckAbortBudget {
		ss.demote[fam] = true
		return Decision{Recompile: true, DemotedDispatch: true, Drop: drop}
	}
	return Decision{Recompile: true, Drop: drop}
}

// LevelFor returns the transaction placement level fn must compile at.
func (g *Governor) LevelFor(fn string) core.TxLevel {
	if st, ok := g.fns[fn]; ok {
		return st.level
	}
	return core.TxLoopNest
}

// KeepSet returns the restored-SMP sites for fn (nil when empty, so the
// common case costs nothing at compile time).
func (g *Governor) KeepSet(fn string) core.KeepSet {
	st, ok := g.fns[fn]
	if !ok || len(st.keep) == 0 {
		return nil
	}
	return core.KeepSet(st.keep)
}

// fail records a failed probe or post-promotion regression with
// window-doubling hysteresis.
func (g *Governor) fail(st *funcState) {
	st.failed++
	st.window *= g.pol.ProbationBackoff
	if st.failed >= g.pol.MaxProbations {
		st.pinned = true
	}
}

// raise is the inverse of core.TxLevel.Lower, one rung at a time.
func raise(l core.TxLevel, allowTiling bool) core.TxLevel {
	switch l {
	case core.TxOff:
		if allowTiling {
			return core.TxTiled
		}
		return core.TxInnermost
	case core.TxTiled:
		return core.TxInnermost
	case core.TxInnermost:
		return core.TxLoopNest
	}
	return l
}

// OSRAllowed reports whether the governor permits OSR entry into fn at the
// given loop-header pc. It is true until the header's transfer ledger
// crosses the check-abort budget, and becomes true again once ledger decay
// drains it.
func (g *Governor) OSRAllowed(fn string, pc int) bool {
	st, ok := g.fns[fn]
	if !ok {
		return true
	}
	return !st.osrOff[pc]
}

// OnTransfer reacts to one abort or OSR exit surfacing in fn's frame.
func (g *Governor) OnTransfer(t Transfer) Decision {
	dec := g.transferDecision(t)
	if t.OSR {
		// OSR-entry sites are first-class abort sites: every transfer out of
		// an OSR artifact — abort or plain deopt — charges its header's
		// ledger. Past the budget, entering optimized code mid-loop has cost
		// more than it saved; disable the header so the function promotes at
		// the invocation boundary instead.
		st := g.state(t.Fn)
		st.osrAborts[t.OSRPC]++
		if !st.osrOff[t.OSRPC] && st.osrAborts[t.OSRPC] >= g.pol.CheckAbortBudget {
			st.osrOff[t.OSRPC] = true
			dec.Recompile = true
			found := false
			for _, n := range dec.Drop {
				if n == t.Fn {
					found = true
					break
				}
			}
			if !found {
				dec.Drop = append(dec.Drop, t.Fn)
			}
		}
	}
	return dec
}

func (g *Governor) transferDecision(t Transfer) Decision {
	if g.pol.Legacy {
		st := g.state(t.Fn)
		if t.Aborted && t.Cause == htm.AbortCapacity {
			st.level = st.level.Lower(t.HadCalls, g.pol.AllowTiling)
			st.proven = st.level
			return Decision{Recompile: true, Drop: []string{t.Fn}}
		}
		return Decision{Recompile: true, ChargeDeopt: true, Drop: []string{t.Fn}}
	}

	st := g.state(t.Fn)
	siteFn := t.SiteFn
	if siteFn == "" {
		siteFn = t.Fn
	}
	site := core.CheckSite{PC: t.SitePC, Class: t.Class, Path: t.SitePath, Shape: t.Shape}

	if !t.Aborted {
		ss := g.state(siteFn)
		if t.Dispatch {
			// A dispatch-guard miss outside a transaction: the receiver
			// matched no speculated way. Per-shape ledger plus family
			// demotion budget; never the whole-function deopt budget.
			ss.ledger(site).deopts++
			return g.noteDispatchMiss(ss, t)
		}
		// Plain OSR exit. A restored-SMP site deopting is the governed
		// steady state: the tail of the call re-runs in Baseline, the
		// cached code stays, and the budget is untouched. Any other exit
		// keeps the legacy semantics — charge the budget and recompile
		// with refreshed feedback, which is how type storms self-heal.
		if ss.keep[site] {
			ss.ledger(site).deopts++
			return Decision{}
		}
		return Decision{Recompile: true, ChargeDeopt: true, Drop: []string{t.Fn}}
	}

	switch t.Cause {
	case htm.AbortIrrevocable:
		// Transactions meet I/O: remove them for good, keep the tier, and
		// do not touch the deopt budget — the speculation was fine.
		st.level, st.proven = core.TxOff, core.TxOff
		st.probing, st.pinned = false, true
		st.progress = 0
		return Decision{Recompile: true, Drop: []string{t.Fn}}

	case htm.AbortCapacity:
		if st.probing {
			// The probe failed: fall back to the proven level and back off.
			st.probing = false
			st.level = st.proven
			g.fail(st)
		} else {
			if st.promoted {
				// A confirmed promotion regressed — hysteresis, so a
				// phase-flapping workload converges instead of oscillating.
				g.fail(st)
			}
			st.promoted = false
			st.level = st.level.Lower(t.HadCalls, g.pol.AllowTiling)
			st.proven = st.level
			if t.HadCalls {
				// §V-C blames the callee for the overflow; tiling cannot
				// bound a callee's footprint, so probing is pointless.
				st.pinned = true
			}
		}
		st.progress = 0
		return Decision{Recompile: true, Drop: []string{t.Fn}}

	default: // AbortCheck, AbortSOF
		ss := g.state(siteFn)
		l := ss.ledger(site)
		l.aborts++
		if t.Dispatch {
			// In-transaction dispatch miss (the tail guard aborted): same
			// demotion ledger as the deopt path — dispatch guards demote to
			// the generic path rather than earning restored SMPs.
			return g.noteDispatchMiss(ss, t)
		}
		if !ss.keep[site] && l.aborts >= g.pol.CheckAbortBudget {
			ss.keep[site] = true
			drop := []string{t.Fn}
			if siteFn != t.Fn {
				drop = append(drop, siteFn)
			}
			return Decision{Recompile: true, RestoredSMP: true, Drop: drop}
		}
		// Below budget: recompile with refreshed feedback (heals type and
		// overflow storms) but never charge the whole-function budget for
		// a transactional abort.
		return Decision{Recompile: true, Drop: []string{t.Fn}}
	}
}

// OnClean reacts to a deopt-free FTL call of fn that committed `commits`
// outermost transactions. Progress is measured in commits where transactions
// run, and in clean calls where they are off (a TxOff function commits
// nothing, yet must still be able to earn a probe).
func (g *Governor) OnClean(fn string, commits int64) Decision {
	st := g.state(fn)
	units := commits
	if units <= 0 {
		units = 1
	}

	// Deterministic ledger decay, counted in clean progress.
	st.sinceDecay += units
	if st.sinceDecay >= g.pol.DecayWindow {
		st.sinceDecay = 0
		for s, l := range st.sites {
			l.aborts /= 2
			if l.aborts == 0 && l.deopts == 0 && !st.keep[s] {
				delete(st.sites, s)
			}
		}
		// Dispatch-miss family ledgers decay too; a drained family is
		// un-demoted, so the next recompile re-expands its dispatch tree
		// (the probationary re-promotion semantics OSR headers get).
		for s, n := range st.dmiss {
			n /= 2
			if n == 0 {
				delete(st.dmiss, s)
				delete(st.demote, s)
			} else {
				st.dmiss[s] = n
			}
		}
		// OSR-entry ledgers decay on the same schedule; a drained ledger
		// re-enables the header (probationary re-promotion: the next hot
		// run gets one more chance to enter mid-loop).
		for pc, n := range st.osrAborts {
			n /= 2
			if n == 0 {
				delete(st.osrAborts, pc)
				delete(st.osrOff, pc)
			} else {
				st.osrAborts[pc] = n
			}
		}
	}

	if g.pol.Legacy || st.pinned {
		return Decision{}
	}
	if st.probing {
		st.progress += units
		if st.progress >= st.window {
			// Probe survived a full window: the higher level is proven.
			st.probing = false
			st.proven = st.level
			st.promoted = true
			st.progress = 0
		}
		return Decision{}
	}
	if st.level == core.TxLoopNest {
		return Decision{}
	}
	st.progress += units
	if st.progress >= st.window {
		// Earned a probation: try one level higher on the next compile.
		st.probing = true
		st.level = raise(st.level, g.pol.AllowTiling)
		st.progress = 0
		return Decision{Recompile: true, Drop: []string{fn}}
	}
	return Decision{}
}

// SiteSnap is one check site's ledger in a snapshot.
type SiteSnap struct {
	Site   core.CheckSite
	Aborts int64
	Deopts int64
}

// OSRSnap is one OSR-entry header's ledger in a snapshot or report.
type OSRSnap struct {
	PC     int
	Aborts int64
	Off    bool
}

// FuncSnap is one function's complete governor state in portable form: plain
// data keyed by function name and bytecode check site, valid across isolates
// of the same program.
type FuncSnap struct {
	Fn         string
	Level      core.TxLevel
	Proven     core.TxLevel
	Probing    bool
	Pinned     bool
	Promoted   bool
	Failed     int
	Window     int64
	Progress   int64
	SinceDecay int64
	Keep       []core.CheckSite
	Sites      []SiteSnap
	Demote     []core.CheckSite
	DMiss      []SiteSnap
	OSR        []OSRSnap
}

// Snapshot is the governor's exported ledger state, deterministically
// ordered. The warm-start facility captures it after a donor isolate's
// warmup and restores it into fresh isolates, so a repeat program starts at
// its converged transaction levels and kept-SMP sets instead of re-learning
// them through aborts.
type Snapshot []FuncSnap

// Export captures the full per-function state under the current policy.
func (g *Governor) Export() Snapshot {
	names := make([]string, 0, len(g.fns))
	for n := range g.fns {
		names = append(names, n)
	}
	sort.Strings(names)
	snap := make(Snapshot, 0, len(names))
	for _, n := range names {
		st := g.fns[n]
		fs := FuncSnap{
			Fn: n, Level: st.level, Proven: st.proven,
			Probing: st.probing, Pinned: st.pinned, Promoted: st.promoted,
			Failed: st.failed, Window: st.window, Progress: st.progress,
			SinceDecay: st.sinceDecay,
		}
		for s := range st.keep {
			fs.Keep = append(fs.Keep, s)
		}
		sortSites(fs.Keep)
		for s, l := range st.sites {
			fs.Sites = append(fs.Sites, SiteSnap{Site: s, Aborts: l.aborts, Deopts: l.deopts})
		}
		sort.Slice(fs.Sites, func(i, j int) bool { return siteLess(fs.Sites[i].Site, fs.Sites[j].Site) })
		for s := range st.demote {
			fs.Demote = append(fs.Demote, s)
		}
		sortSites(fs.Demote)
		for s, n := range st.dmiss {
			fs.DMiss = append(fs.DMiss, SiteSnap{Site: s, Aborts: n})
		}
		sort.Slice(fs.DMiss, func(i, j int) bool { return siteLess(fs.DMiss[i].Site, fs.DMiss[j].Site) })
		fs.OSR = osrSnaps(st)
		snap = append(snap, fs)
	}
	return snap
}

// Restore replaces the governor's per-function state with the snapshot's,
// keeping the current policy. Restoring Export()'s output into a fresh
// governor reproduces the donor's decision state exactly.
func (g *Governor) Restore(snap Snapshot) {
	g.fns = make(map[string]*funcState, len(snap))
	for _, fs := range snap {
		st := &funcState{
			level: fs.Level, proven: fs.Proven,
			probing: fs.Probing, pinned: fs.Pinned, promoted: fs.Promoted,
			failed: fs.Failed, window: fs.Window, progress: fs.Progress,
			sinceDecay: fs.SinceDecay,
			keep:       make(map[core.CheckSite]bool, len(fs.Keep)),
			sites:      make(map[core.CheckSite]*siteLedger, len(fs.Sites)),
			demote:     make(map[core.CheckSite]bool, len(fs.Demote)),
			dmiss:      make(map[core.CheckSite]int64, len(fs.DMiss)),
			osrAborts:  make(map[int]int64, len(fs.OSR)),
			osrOff:     make(map[int]bool),
		}
		for _, s := range fs.Keep {
			st.keep[s] = true
		}
		for _, ss := range fs.Sites {
			st.sites[ss.Site] = &siteLedger{aborts: ss.Aborts, deopts: ss.Deopts}
		}
		for _, s := range fs.Demote {
			st.demote[s] = true
		}
		for _, ss := range fs.DMiss {
			st.dmiss[ss.Site] = ss.Aborts
		}
		for _, os := range fs.OSR {
			st.osrAborts[os.PC] = os.Aborts
			if os.Off {
				st.osrOff[os.PC] = true
			}
		}
		g.fns[fs.Fn] = st
	}
}

func siteLess(a, b core.CheckSite) bool {
	if a.Path != b.Path {
		return a.Path < b.Path
	}
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Shape < b.Shape
}

func sortSites(sites []core.CheckSite) {
	sort.Slice(sites, func(i, j int) bool { return siteLess(sites[i], sites[j]) })
}

// SiteStat is one check site's ledger in a report.
type SiteStat struct {
	Site   core.CheckSite
	Aborts int64
	Deopts int64
	Kept   bool
}

// FuncReport is one function's governor state, for diagnostics.
type FuncReport struct {
	Fn           string
	Level        core.TxLevel
	Proven       core.TxLevel
	Probing      bool
	Pinned       bool
	FailedProbes int
	Window       int64
	Progress     int64
	Sites        []SiteStat
	Demote       []core.CheckSite
	OSR          []OSRSnap
}

// osrSnaps renders a function's OSR-entry ledgers, ordered by header pc.
func osrSnaps(st *funcState) []OSRSnap {
	if len(st.osrAborts) == 0 && len(st.osrOff) == 0 {
		return nil
	}
	pcs := make(map[int]bool, len(st.osrAborts))
	for pc := range st.osrAborts {
		pcs[pc] = true
	}
	for pc := range st.osrOff {
		pcs[pc] = true
	}
	out := make([]OSRSnap, 0, len(pcs))
	for pc := range pcs {
		out = append(out, OSRSnap{PC: pc, Aborts: st.osrAborts[pc], Off: st.osrOff[pc]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// Report renders the full governor state, deterministically ordered.
func (g *Governor) Report() []FuncReport {
	names := make([]string, 0, len(g.fns))
	for n := range g.fns {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]FuncReport, 0, len(names))
	for _, n := range names {
		st := g.fns[n]
		r := FuncReport{
			Fn: n, Level: st.level, Proven: st.proven,
			Probing: st.probing, Pinned: st.pinned,
			FailedProbes: st.failed, Window: st.window, Progress: st.progress,
		}
		for s, l := range st.sites {
			r.Sites = append(r.Sites, SiteStat{Site: s, Aborts: l.aborts, Deopts: l.deopts, Kept: st.keep[s]})
		}
		sort.Slice(r.Sites, func(i, j int) bool { return siteLess(r.Sites[i].Site, r.Sites[j].Site) })
		for s := range st.demote {
			r.Demote = append(r.Demote, s)
		}
		sortSites(r.Demote)
		r.OSR = osrSnaps(st)
		out = append(out, r)
	}
	return out
}
