package governor

import (
	"testing"

	"nomap/internal/profile"
)

func testPolicy() ResiliencePolicy {
	p := DefaultResiliencePolicy(7)
	p.TripThreshold = 3
	p.TripWindow = 8
	p.RepromoteWindow = 4
	p.ProbeEvery = 4
	p.RetireAfterCrashes = 2
	return p
}

func TestLadderStepsDownAndSheds(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	if r.TierCap() != profile.TierFTL || r.Degraded() {
		t.Fatal("fresh machine not at ceiling")
	}
	// Three faults trip one rung; each deeper trip needs three more.
	want := []profile.Tier{profile.TierDFG, profile.TierBaseline, profile.TierInterp}
	for _, w := range want {
		var ch LadderChange
		for i := int64(0); i < 3; i++ {
			ch = r.OnFault()
		}
		if !ch.SteppedDown || ch.Cap != w {
			t.Fatalf("trip to %v: %+v", w, ch)
		}
	}
	if !r.Degraded() || r.Shedding() {
		t.Fatal("interp-only fleet should be degraded but not yet shedding")
	}
	var ch LadderChange
	for i := int64(0); i < 3; i++ {
		ch = r.OnFault()
	}
	if !ch.ShedStarted || !r.Shedding() {
		t.Fatalf("bottomed ladder did not shed: %+v", ch)
	}
	// While shedding, only every ProbeEvery-th request is admitted.
	admitted := 0
	for i := 0; i < 8; i++ {
		if r.Admit() {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("shed admitted %d of 8, want 2 probes", admitted)
	}
	// A successful probe clears shedding.
	if ch := r.OnSuccess(); !ch.ShedCleared || r.Shedding() {
		t.Fatalf("probe success did not clear shed: %+v", ch)
	}
}

func TestLadderRepromotesWithHysteresis(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	for i := int64(0); i < 3; i++ {
		r.OnFault()
	}
	if r.TierCap() != profile.TierDFG {
		t.Fatalf("cap %v after trip", r.TierCap())
	}
	// RepromoteWindow clean completions start a probe one rung up.
	var ch LadderChange
	for i := int64(0); i < 4; i++ {
		ch = r.OnSuccess()
	}
	if !ch.ProbeStarted || ch.Cap != profile.TierFTL {
		t.Fatalf("no probe after clean window: %+v", ch)
	}
	// A fault during probation falls back and doubles the window.
	if ch := r.OnFault(); !ch.ProbeFailed || ch.Cap != profile.TierDFG {
		t.Fatalf("probe fault did not fall back: %+v", ch)
	}
	// The next probe needs a doubled window (8 clean completions).
	for i := int64(0); i < 7; i++ {
		if ch = r.OnSuccess(); ch.ProbeStarted {
			t.Fatalf("probe restarted after only %d completions", i+1)
		}
	}
	if ch = r.OnSuccess(); !ch.ProbeStarted {
		t.Fatalf("doubled window did not earn a probe: %+v", ch)
	}
	// Surviving the full (doubled) probation confirms the promotion.
	for i := int64(0); i < 8; i++ {
		ch = r.OnSuccess()
	}
	if !ch.Promoted || r.TierCap() != profile.TierFTL || r.Degraded() {
		t.Fatalf("probe did not confirm: %+v cap=%v", ch, r.TierCap())
	}
}

func TestTripWindowRollover(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	// Scattered sub-threshold faults separated by full clean windows never
	// accumulate to a trip.
	for round := 0; round < 5; round++ {
		if ch := r.OnFault(); ch.SteppedDown {
			t.Fatalf("round %d: single fault tripped the ladder", round)
		}
		for i := int64(0); i < 8; i++ {
			r.OnSuccess()
		}
	}
	if r.TierCap() != profile.TierFTL {
		t.Fatalf("cap %v after benign scattered faults", r.TierCap())
	}
}

func TestQuarantineLedgerRetires(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	k := CrashKey{Program: 42, Site: "boom"}
	v := r.OnCrash(k)
	if v.Crashes != 1 || v.Retired || r.Retired(k) {
		t.Fatalf("first crash: %+v", v)
	}
	v = r.OnCrash(k)
	if v.Crashes != 2 || !v.Retired || !v.NewlyRetired || !r.Retired(k) {
		t.Fatalf("second crash should retire (K=2): %+v", v)
	}
	v = r.OnCrash(k)
	if !v.Retired || v.NewlyRetired {
		t.Fatalf("third crash re-reports NewlyRetired: %+v", v)
	}
	// A different site on the same program has its own ledger.
	if r.Retired(CrashKey{Program: 42, Site: "other"}) {
		t.Error("distinct site inherited retirement")
	}
}

func TestBackoffDeterministicDoublingEnvelope(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	r2 := NewResilience(testPolicy(), profile.TierFTL)
	for attempt := 1; attempt <= 4; attempt++ {
		a := r.Backoff("req", attempt)
		b := r2.Backoff("req", attempt)
		if a != b {
			t.Fatalf("attempt %d: equal seeds diverge (%d vs %d)", attempt, a, b)
		}
		env := testPolicy().BackoffBase << (attempt - 1)
		if env > testPolicy().BackoffCap {
			env = testPolicy().BackoffCap
		}
		if a < 1 || a > env {
			t.Fatalf("attempt %d: window %d outside envelope [1,%d]", attempt, a, env)
		}
	}
	if r.Backoff("req", 1) == r.Backoff("other", 1) {
		t.Error("distinct keys drew identical windows (suspicious hash)")
	}
	pol := testPolicy()
	pol.Seed = 99
	r3 := NewResilience(pol, profile.TierFTL)
	if r.Backoff("req", 1) == r3.Backoff("req", 1) {
		t.Error("distinct seeds drew identical windows")
	}
}

func TestResilienceExportRestoreRoundTrip(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	r.OnCrash(CrashKey{Program: 1, Site: "a"})
	r.OnCrash(CrashKey{Program: 1, Site: "a"})
	r.OnCrash(CrashKey{Program: 2, Site: "b"})
	r.OnFault()
	r.OnSuccess()
	r.OnSuccess()
	snap := r.Export()

	fresh := NewResilience(testPolicy(), profile.TierFTL)
	fresh.Restore(snap)
	if got := fresh.Export(); len(got.Crashes) != len(snap.Crashes) ||
		got.Cap != snap.Cap || got.Faults != snap.Faults ||
		got.Progress != snap.Progress || got.Window != snap.Window {
		t.Fatalf("restore drifted:\n got %+v\nwant %+v", got, snap)
	}
	if !fresh.Retired(CrashKey{Program: 1, Site: "a"}) {
		t.Error("retirement did not survive the round trip")
	}
	if fresh.Retired(CrashKey{Program: 2, Site: "b"}) {
		t.Error("unretired fingerprint restored as retired")
	}
	// The restored machine makes the same next decision as the donor.
	if a, b := r.OnFault(), fresh.OnFault(); a != b {
		t.Fatalf("post-restore decisions diverge: %+v vs %+v", a, b)
	}
}

func TestRetryAllowedBudget(t *testing.T) {
	r := NewResilience(testPolicy(), profile.TierFTL)
	if !r.RetryAllowed(1) || !r.RetryAllowed(2) {
		t.Error("retries within budget refused")
	}
	if r.RetryAllowed(3) {
		t.Error("retry past budget allowed")
	}
}
