package governor

import (
	"testing"

	"nomap/internal/core"
	"nomap/internal/htm"
	"nomap/internal/stats"
)

func checkAbort(fn string, pc int) Transfer {
	return Transfer{Fn: fn, Aborted: true, Cause: htm.AbortCheck,
		Class: stats.CheckBounds, SiteFn: fn, SitePC: pc}
}

func capacityAbort(fn string, hadCalls bool) Transfer {
	return Transfer{Fn: fn, Aborted: true, Cause: htm.AbortCapacity, HadCalls: hadCalls}
}

// TestSMPRestoredAtBudget drives one site to the abort budget: the decisive
// transfer must flag RestoredSMP, the keep set must contain exactly that
// site, and earlier transfers must recompile without charging the budget.
func TestSMPRestoredAtBudget(t *testing.T) {
	g := New(DefaultPolicy(true))
	budget := g.Policy().CheckAbortBudget
	for i := int64(1); i < budget; i++ {
		dec := g.OnTransfer(checkAbort("f", 7))
		if !dec.Recompile || dec.ChargeDeopt || dec.RestoredSMP {
			t.Fatalf("abort %d: got %+v, want recompile only", i, dec)
		}
		if g.KeepSet("f") != nil {
			t.Fatalf("abort %d: keep set populated before budget", i)
		}
	}
	dec := g.OnTransfer(checkAbort("f", 7))
	if !dec.RestoredSMP || !dec.Recompile || dec.ChargeDeopt {
		t.Fatalf("budget transfer: got %+v, want RestoredSMP", dec)
	}
	keep := g.KeepSet("f")
	site := core.CheckSite{PC: 7, Class: stats.CheckBounds}
	if len(keep) != 1 || !keep[site] {
		t.Fatalf("keep set = %v, want exactly %v", keep, site)
	}
	// The level was never touched: check aborts are a site problem, not a
	// footprint problem.
	if g.LevelFor("f") != core.TxLoopNest {
		t.Errorf("level = %v after check storm, want loop-nest", g.LevelFor("f"))
	}
}

// TestKeptSiteDeoptIsFree verifies the governed steady state: an OSR exit at
// a restored-SMP site neither recompiles nor charges the deopt budget.
func TestKeptSiteDeoptIsFree(t *testing.T) {
	g := New(DefaultPolicy(true))
	for i := int64(0); i < g.Policy().CheckAbortBudget; i++ {
		g.OnTransfer(checkAbort("f", 7))
	}
	dec := g.OnTransfer(Transfer{Fn: "f", SiteFn: "f", SitePC: 7, Class: stats.CheckBounds})
	if dec.Recompile || dec.ChargeDeopt || len(dec.Drop) != 0 {
		t.Fatalf("kept-site deopt: got %+v, want no-op decision", dec)
	}
	// An exit at a different, un-restored site keeps the legacy semantics.
	dec = g.OnTransfer(Transfer{Fn: "f", SiteFn: "f", SitePC: 9, Class: stats.CheckType})
	if !dec.Recompile || !dec.ChargeDeopt {
		t.Fatalf("plain deopt: got %+v, want charge+recompile", dec)
	}
}

// TestCalleeSiteAbort: a check failing in a callee running inside the
// caller's transaction must charge the callee's site ledger and drop both
// functions' code when the SMP is restored.
func TestCalleeSiteAbort(t *testing.T) {
	g := New(DefaultPolicy(true))
	tr := Transfer{Fn: "caller", Aborted: true, Cause: htm.AbortCheck,
		Class: stats.CheckBounds, SiteFn: "callee", SitePC: 3}
	var dec Decision
	for i := int64(0); i < g.Policy().CheckAbortBudget; i++ {
		dec = g.OnTransfer(tr)
	}
	if !dec.RestoredSMP {
		t.Fatalf("budget transfer: got %+v, want RestoredSMP", dec)
	}
	if len(dec.Drop) != 2 || dec.Drop[0] != "caller" || dec.Drop[1] != "callee" {
		t.Fatalf("drop list = %v, want [caller callee]", dec.Drop)
	}
	if g.KeepSet("callee") == nil || g.KeepSet("caller") != nil {
		t.Fatal("keep set must land on the callee, not the caller")
	}
}

// TestIrrevocablePinsTxOff: I/O in a hot loop removes transactions for good
// without touching the deopt budget; clean runs never probe afterwards.
func TestIrrevocablePinsTxOff(t *testing.T) {
	g := New(DefaultPolicy(true))
	dec := g.OnTransfer(Transfer{Fn: "f", Aborted: true, Cause: htm.AbortIrrevocable})
	if !dec.Recompile || dec.ChargeDeopt {
		t.Fatalf("irrevocable: got %+v, want uncharged recompile", dec)
	}
	if g.LevelFor("f") != core.TxOff {
		t.Fatalf("level = %v, want off", g.LevelFor("f"))
	}
	for i := 0; i < 1000; i++ {
		if dec := g.OnClean("f", 0); dec.Recompile {
			t.Fatalf("clean call %d: pinned function started a probe", i)
		}
	}
	if g.LevelFor("f") != core.TxOff {
		t.Errorf("level drifted to %v while pinned", g.LevelFor("f"))
	}
}

// TestCapacityRetreatLadder mirrors core.TxLevel.Lower through the governor.
func TestCapacityRetreatLadder(t *testing.T) {
	g := New(DefaultPolicy(true))
	want := []core.TxLevel{core.TxInnermost, core.TxTiled, core.TxOff, core.TxOff}
	for i, lvl := range want {
		g.OnTransfer(capacityAbort("f", false))
		if got := g.LevelFor("f"); got != lvl {
			t.Fatalf("retreat %d: level = %v, want %v", i+1, got, lvl)
		}
	}
}

// TestHadCallsPins: §V-C blames the callee for an overflow in a
// call-containing transaction; tiling cannot bound a callee's footprint, so
// the drop to TxOff is permanent (no probation).
func TestHadCallsPins(t *testing.T) {
	g := New(DefaultPolicy(true))
	g.OnTransfer(capacityAbort("f", true))
	if g.LevelFor("f") != core.TxOff {
		t.Fatalf("level = %v, want off", g.LevelFor("f"))
	}
	for i := 0; i < 500; i++ {
		if dec := g.OnClean("f", 1); dec.Recompile {
			t.Fatal("call-containing overflow must pin, not probe")
		}
	}
}

// pathAbort is a check abort at an inlined site: same bytecode pc and class
// as a root-code site could have, but carrying the inline path that names
// which flattened activation the failing check came from.
func pathAbort(fn string, pc int, path string) Transfer {
	return Transfer{Fn: fn, Aborted: true, Cause: htm.AbortCheck,
		Class: stats.CheckBounds, SiteFn: fn, SitePC: pc, SitePath: path}
}

// TestInlinePathSiteLedgers: sites that differ only in inline path are
// distinct ledgers. The same bytecode pc can exist once in the root code
// and once per flattened activation (the callee's pc space is embedded
// whole), so folding them together would let an abort storm in one
// activation restore the SMP of an innocent same-pc site — or worse, split
// one storm across ledgers and never reach the budget.
func TestInlinePathSiteLedgers(t *testing.T) {
	g := New(DefaultPolicy(true))
	budget := g.Policy().CheckAbortBudget
	// Drive the inlined site to its budget while the same-pc root site and
	// a sibling activation's site each take a single abort.
	for i := int64(1); i < budget; i++ {
		g.OnTransfer(pathAbort("f", 7, "g@5"))
	}
	g.OnTransfer(checkAbort("f", 7))        // root-code site, same pc
	g.OnTransfer(pathAbort("f", 7, "g@11")) // same callee, other call site
	if g.KeepSet("f") != nil {
		t.Fatal("SMP restored before any single path-keyed site reached the budget")
	}
	dec := g.OnTransfer(pathAbort("f", 7, "g@5"))
	if !dec.RestoredSMP {
		t.Fatalf("budget transfer: got %+v, want RestoredSMP", dec)
	}
	keep := g.KeepSet("f")
	site := core.CheckSite{PC: 7, Class: stats.CheckBounds, Path: "g@5"}
	if len(keep) != 1 || !keep[site] {
		t.Fatalf("keep set = %v, want exactly %v", keep, site)
	}

	// Export must carry the paths; restoring into a fresh governor must
	// reproduce the keep set and make the same next decision.
	fresh := New(DefaultPolicy(true))
	fresh.Restore(g.Export())
	fk := fresh.KeepSet("f")
	if len(fk) != 1 || !fk[site] {
		t.Fatalf("restored keep set = %v, want exactly %v", fk, site)
	}
	d1 := g.OnTransfer(Transfer{Fn: "f", SiteFn: "f", SitePC: 7, Class: stats.CheckBounds, SitePath: "g@5"})
	d2 := fresh.OnTransfer(Transfer{Fn: "f", SiteFn: "f", SitePC: 7, Class: stats.CheckBounds, SitePath: "g@5"})
	if d1.Recompile || d1.ChargeDeopt || d2.Recompile || d2.ChargeDeopt {
		t.Fatalf("kept inlined site's deopt not free: donor %+v, restored %+v", d1, d2)
	}

	// Reset must clear the path-keyed ledgers and keep sets like any other.
	g.Reset()
	if g.KeepSet("f") != nil || len(g.Report()) != 0 {
		t.Fatal("Reset left inline-path state behind")
	}
}

// TestProbationConfirm walks the full re-promotion arc: demotion, a clean
// window earning a probe, and a clean probationary window confirming the
// higher level.
func TestProbationConfirm(t *testing.T) {
	g := New(DefaultPolicy(true))
	w := g.Policy().RepromoteWindow
	g.OnTransfer(capacityAbort("f", false)) // loop-nest -> innermost
	var dec Decision
	for i := int64(0); i < w; i++ {
		if dec.Recompile {
			t.Fatal("probe started before the window filled")
		}
		dec = g.OnClean("f", 1)
	}
	if !dec.Recompile || len(dec.Drop) != 1 || dec.Drop[0] != "f" {
		t.Fatalf("window-filling clean run: got %+v, want probe recompile", dec)
	}
	if g.LevelFor("f") != core.TxLoopNest {
		t.Fatalf("probe level = %v, want loop-nest", g.LevelFor("f"))
	}
	// The probe itself must survive a full window before it is proven.
	for i := int64(0); i < w; i++ {
		g.OnClean("f", 1)
	}
	rep := g.Report()
	if len(rep) != 1 || rep[0].Probing || rep[0].Proven != core.TxLoopNest {
		t.Fatalf("after clean probe window: %+v, want proven loop-nest", rep)
	}
}

// TestProbeFailureBacksOff: a capacity abort mid-probation falls back to the
// proven level and doubles the window (hysteresis).
func TestProbeFailureBacksOff(t *testing.T) {
	pol := DefaultPolicy(true)
	g := New(pol)
	g.OnTransfer(capacityAbort("f", false)) // -> innermost
	for i := int64(0); i < pol.RepromoteWindow; i++ {
		g.OnClean("f", 1)
	}
	if g.LevelFor("f") != core.TxLoopNest {
		t.Fatal("probe did not start")
	}
	dec := g.OnTransfer(capacityAbort("f", false))
	if !dec.Recompile || dec.ChargeDeopt {
		t.Fatalf("probe failure: got %+v, want uncharged recompile", dec)
	}
	if g.LevelFor("f") != core.TxInnermost {
		t.Fatalf("level = %v after failed probe, want proven innermost", g.LevelFor("f"))
	}
	rep := g.Report()[0]
	if rep.FailedProbes != 1 || rep.Window != pol.RepromoteWindow*pol.ProbationBackoff {
		t.Fatalf("after failed probe: failed=%d window=%d, want 1 and %d",
			rep.FailedProbes, rep.Window, pol.RepromoteWindow*pol.ProbationBackoff)
	}
}

// TestHysteresisConverges: a workload whose footprint genuinely exceeds the
// higher level fails every probe; the governor must pin after MaxProbations
// and never oscillate again — the total number of probes is finite.
func TestHysteresisConverges(t *testing.T) {
	pol := DefaultPolicy(true)
	g := New(pol)
	g.OnTransfer(capacityAbort("f", false)) // -> innermost
	probes := 0
	for i := 0; i < 100000; i++ {
		if dec := g.OnClean("f", 1); dec.Recompile {
			probes++
			// The probe immediately capacity-aborts: the footprint is real.
			g.OnTransfer(capacityAbort("f", false))
		}
	}
	if probes != pol.MaxProbations {
		t.Fatalf("probes = %d, want exactly MaxProbations = %d", probes, pol.MaxProbations)
	}
	rep := g.Report()[0]
	if !rep.Pinned || rep.Level != core.TxInnermost {
		t.Fatalf("after convergence: %+v, want pinned at innermost", rep)
	}
}

// TestPromotedRegressionCountsTowardPinning: hysteresis also applies when a
// confirmed promotion later regresses — phase flapping converges.
func TestPromotedRegressionCountsTowardPinning(t *testing.T) {
	pol := DefaultPolicy(true)
	g := New(pol)
	g.OnTransfer(capacityAbort("f", false)) // -> innermost
	cycle := func() (probed, confirmed bool) {
		for i := 0; i < 100000; i++ {
			if dec := g.OnClean("f", 1); dec.Recompile {
				probed = true
				break
			}
			if g.Report()[0].Pinned {
				return false, false
			}
		}
		if !probed {
			return false, false
		}
		for i := int64(0); i < g.Report()[0].Window; i++ {
			g.OnClean("f", 1)
		}
		confirmed = !g.Report()[0].Probing
		// The big phase returns: the confirmed promotion regresses.
		g.OnTransfer(capacityAbort("f", false))
		return probed, confirmed
	}
	flaps := 0
	for {
		probed, confirmed := cycle()
		if !probed {
			break
		}
		if !confirmed {
			t.Fatal("clean window did not confirm the probe")
		}
		flaps++
		if flaps > pol.MaxProbations {
			t.Fatalf("flapped %d times, want pinning at %d regressions", flaps, pol.MaxProbations)
		}
	}
	if !g.Report()[0].Pinned {
		t.Fatal("phase-flapping function never pinned")
	}
}

// TestInitialRetreatDoesNotCountAsRegression: walking down the ladder before
// any promotion must not consume the hysteresis budget.
func TestInitialRetreatDoesNotCountAsRegression(t *testing.T) {
	g := New(DefaultPolicy(true))
	g.OnTransfer(capacityAbort("f", false))
	g.OnTransfer(capacityAbort("f", false))
	g.OnTransfer(capacityAbort("f", false))
	rep := g.Report()[0]
	if rep.FailedProbes != 0 || rep.Pinned {
		t.Fatalf("initial retreat consumed hysteresis budget: %+v", rep)
	}
}

// TestTxOffEarnsProbeFromCleanCalls: a TxOff function commits nothing, yet
// clean FTL calls must still accumulate probe progress (units floor at 1).
func TestTxOffEarnsProbeFromCleanCalls(t *testing.T) {
	pol := DefaultPolicy(true)
	g := New(pol)
	g.OnTransfer(capacityAbort("f", false)) // innermost
	g.OnTransfer(capacityAbort("f", false)) // tiled
	g.OnTransfer(capacityAbort("f", false)) // off
	if g.LevelFor("f") != core.TxOff {
		t.Fatal("setup: expected TxOff")
	}
	probed := false
	for i := int64(0); i < pol.RepromoteWindow; i++ {
		if g.OnClean("f", 0).Recompile {
			probed = true
			break
		}
	}
	if !probed {
		t.Fatal("TxOff function earned no probe from clean calls")
	}
	if g.LevelFor("f") != core.TxTiled {
		t.Errorf("probe level = %v, want tiled (ROT ladder)", g.LevelFor("f"))
	}
}

// TestRaiseMirrorsLadder covers both ladder shapes.
func TestRaiseMirrorsLadder(t *testing.T) {
	cases := []struct {
		from        core.TxLevel
		allowTiling bool
		want        core.TxLevel
	}{
		{core.TxOff, true, core.TxTiled},
		{core.TxOff, false, core.TxInnermost},
		{core.TxTiled, true, core.TxInnermost},
		{core.TxTiled, false, core.TxInnermost},
		{core.TxInnermost, true, core.TxLoopNest},
		{core.TxInnermost, false, core.TxLoopNest},
		{core.TxLoopNest, true, core.TxLoopNest},
		{core.TxLoopNest, false, core.TxLoopNest},
	}
	for _, c := range cases {
		if got := raise(c.from, c.allowTiling); got != c.want {
			t.Errorf("raise(%v, tiling=%v) = %v, want %v", c.from, c.allowTiling, got, c.want)
		}
	}
}

// TestLedgerDecay: clean progress halves site abort counts, and emptied
// ledgers are dropped — unless the site's SMP was restored, which must
// survive decay so the keep set is stable across recompiles.
func TestLedgerDecay(t *testing.T) {
	pol := DefaultPolicy(true)
	g := New(pol)
	g.OnTransfer(checkAbort("f", 7))
	g.OnTransfer(checkAbort("f", 7))
	g.OnClean("f", pol.DecayWindow) // one decay: 2 -> 1
	g.OnTransfer(checkAbort("f", 7))
	g.OnTransfer(checkAbort("f", 7))
	// 3 aborts on the books < budget 4: decay kept a benign site below the
	// restoration threshold even though 4 raw aborts occurred.
	if g.KeepSet("f") != nil {
		t.Fatal("decayed site still crossed the budget")
	}
	// Two more decays empty the ledger entirely.
	g.OnClean("f", pol.DecayWindow)
	g.OnClean("f", pol.DecayWindow)
	if sites := g.Report()[0].Sites; len(sites) != 0 {
		t.Fatalf("emptied ledger not dropped: %+v", sites)
	}
	// A kept site survives any amount of decay.
	for i := int64(0); i < pol.CheckAbortBudget; i++ {
		g.OnTransfer(checkAbort("f", 9))
	}
	for i := 0; i < 10; i++ {
		g.OnClean("f", pol.DecayWindow)
	}
	if len(g.KeepSet("f")) != 1 {
		t.Fatal("restored SMP lost to ledger decay")
	}
}

// TestLegacyPolicy reproduces the pre-governor behaviour: capacity aborts
// walk the one-way §V-C ladder, everything else charges the budget, and no
// probation ever starts.
func TestLegacyPolicy(t *testing.T) {
	pol := DefaultPolicy(true)
	pol.Legacy = true
	g := New(pol)
	dec := g.OnTransfer(capacityAbort("f", false))
	if !dec.Recompile || dec.ChargeDeopt {
		t.Fatalf("legacy capacity: got %+v, want uncharged recompile", dec)
	}
	if g.LevelFor("f") != core.TxInnermost {
		t.Fatalf("legacy level = %v, want innermost", g.LevelFor("f"))
	}
	for i := 0; i < 1000; i++ {
		if dec := g.OnClean("f", 1); dec.Recompile {
			t.Fatal("legacy policy must never re-promote")
		}
	}
	dec = g.OnTransfer(checkAbort("f", 7))
	if !dec.Recompile || !dec.ChargeDeopt || dec.RestoredSMP {
		t.Fatalf("legacy check abort: got %+v, want charged recompile", dec)
	}
	dec = g.OnTransfer(Transfer{Fn: "f", Aborted: true, Cause: htm.AbortIrrevocable})
	if !dec.ChargeDeopt {
		t.Fatalf("legacy irrevocable: got %+v, want charged", dec)
	}
}

// TestReset drops every ledger and level.
func TestReset(t *testing.T) {
	g := New(DefaultPolicy(true))
	g.OnTransfer(capacityAbort("f", false))
	for i := int64(0); i < g.Policy().CheckAbortBudget; i++ {
		g.OnTransfer(checkAbort("f", 7))
		g.OnTransfer(pathAbort("f", 7, "g@5")) // inline-path ledgers reset too
	}
	g.Reset()
	if g.LevelFor("f") != core.TxLoopNest || g.KeepSet("f") != nil || len(g.Report()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

// TestReportDeterministic: two identical event sequences must render
// identical reports (map iteration must not leak into the output order).
func TestReportDeterministic(t *testing.T) {
	build := func() *Governor {
		g := New(DefaultPolicy(true))
		for _, fn := range []string{"zeta", "alpha", "mid"} {
			g.OnTransfer(checkAbort(fn, 5))
			g.OnTransfer(checkAbort(fn, 3))
			g.OnTransfer(capacityAbort(fn, false))
		}
		return g
	}
	a, b := build().Report(), build().Report()
	if len(a) != 3 || a[0].Fn != "alpha" || a[1].Fn != "mid" || a[2].Fn != "zeta" {
		t.Fatalf("report order: %+v", a)
	}
	for i := range a {
		if a[i].Fn != b[i].Fn || len(a[i].Sites) != len(b[i].Sites) {
			t.Fatalf("non-deterministic report: %+v vs %+v", a[i], b[i])
		}
		for j := range a[i].Sites {
			if a[i].Sites[j] != b[i].Sites[j] {
				t.Fatalf("non-deterministic site order: %+v vs %+v", a[i].Sites, b[i].Sites)
			}
		}
	}
}

// TestExportRestoreRoundTrip: Export into a fresh governor must reproduce
// the donor's decision state exactly — levels, keep sets, ledgers, probe
// state — which is what the serving layer's warm-start snapshots rely on.
func TestExportRestoreRoundTrip(t *testing.T) {
	g := New(DefaultPolicy(true))
	// Drive varied state: a restored SMP on f, a capacity retreat on h, and
	// some clean-run progress.
	for i := int64(0); i < g.Policy().CheckAbortBudget; i++ {
		g.OnTransfer(checkAbort("f", 7))
	}
	g.OnTransfer(capacityAbort("h", false))
	g.OnTransfer(checkAbort("h", 3))
	g.OnClean("f", 5)

	snap := g.Export()
	if len(snap) == 0 {
		t.Fatal("export produced no state")
	}

	fresh := New(DefaultPolicy(true))
	fresh.Restore(snap)

	for _, fn := range []string{"f", "h"} {
		if got, want := fresh.LevelFor(fn), g.LevelFor(fn); got != want {
			t.Errorf("%s: restored level %v, want %v", fn, got, want)
		}
		gk, fk := g.KeepSet(fn), fresh.KeepSet(fn)
		if len(gk) != len(fk) {
			t.Fatalf("%s: keep sets differ: %v vs %v", fn, gk, fk)
		}
		for s := range gk {
			if !fk[s] {
				t.Errorf("%s: restored keep set missing %v", fn, s)
			}
		}
	}

	// Re-exporting the restored governor must be byte-identical, and the
	// restored governor must make the same next decision as the donor.
	snap2 := fresh.Export()
	if len(snap2) != len(snap) {
		t.Fatalf("re-export length %d, want %d", len(snap2), len(snap))
	}
	for i := range snap {
		a, b := snap[i], snap2[i]
		if a.Fn != b.Fn || a.Level != b.Level || a.Proven != b.Proven ||
			a.Probing != b.Probing || a.Pinned != b.Pinned || a.Promoted != b.Promoted ||
			a.Failed != b.Failed || a.Window != b.Window || a.Progress != b.Progress ||
			a.SinceDecay != b.SinceDecay || len(a.Keep) != len(b.Keep) || len(a.Sites) != len(b.Sites) {
			t.Fatalf("re-export differs at %s:\n%+v\nvs\n%+v", a.Fn, a, b)
		}
		for j := range a.Sites {
			if a.Sites[j] != b.Sites[j] {
				t.Fatalf("%s site %d differs: %+v vs %+v", a.Fn, j, a.Sites[j], b.Sites[j])
			}
		}
		for j := range a.Keep {
			if a.Keep[j] != b.Keep[j] {
				t.Fatalf("%s keep %d differs", a.Fn, j)
			}
		}
	}
	d1 := g.OnTransfer(checkAbort("h", 3))
	d2 := fresh.OnTransfer(checkAbort("h", 3))
	if d1.Recompile != d2.Recompile || d1.ChargeDeopt != d2.ChargeDeopt ||
		d1.RestoredSMP != d2.RestoredSMP || len(d1.Drop) != len(d2.Drop) {
		t.Errorf("post-restore decisions diverge: %+v vs %+v", d1, d2)
	}

	// A snapshot must be inert state: restoring must not alias the donor.
	fresh.OnTransfer(capacityAbort("f", true))
	if g.LevelFor("f") != core.TxLoopNest {
		t.Error("mutating the restored governor reached back into the donor")
	}
}
