package governor

import (
	"hash/fnv"
	"sort"
	"sync"

	"nomap/internal/profile"
)

// Resilience is the serving layer's recovery state machine: the governor's
// per-function post-abort discipline lifted one layer up, to the pool. It
// centralizes the three policies the pool's failure paths flow through,
// exactly as funcState centralizes post-abort policy for one function:
//
//   - Quarantine ledger. Every contained isolate crash charges a
//     (program, site) fingerprint; after RetireAfterCrashes charges the
//     fingerprint is permanently retired — further requests matching it fail
//     fast instead of burning fresh isolates on a deterministic crasher
//     (the serving analogue of funcState.pinned).
//
//   - Retry backoff. Transient request failures retry on a fresh isolate
//     after a deterministic seeded-xorshift window in a doubling envelope —
//     the identical recipe Contention.OnConflict uses, because the same
//     interleaving retried immediately tends to fail identically.
//
//   - Degradation ladder. Sustained fault or abort storms step the whole
//     fleet's tier ceiling down FTL → DFG → Baseline → interp-only; at the
//     bottom, continued faults trip load shedding (every request but a
//     periodic probe is refused). Clean traffic earns probationary
//     re-promotion one rung at a time with window-doubling hysteresis —
//     the §V-C capacity-retreat shape applied to the fleet.
//
// Every decision is a pure function of the event sequence and the policy
// seed — never wall-clock time — so chaos sweeps replay exactly.

// ResiliencePolicy holds the deterministic tuning constants.
type ResiliencePolicy struct {
	// RetireAfterCrashes is the number of contained crashes on one
	// (program, site) fingerprint after which the fingerprint is retired.
	RetireAfterCrashes int64
	// RetryBudget is the number of fresh-isolate retries (beyond the first
	// attempt) a transiently failing request may consume. Zero takes the
	// default; a negative value disables retries entirely.
	RetryBudget int
	// BackoffBase is the first retry window in cycles; the envelope doubles
	// per attempt, capped at BackoffCap.
	BackoffBase int64
	BackoffCap  int64
	// TripThreshold is the fault count within one accounting window that
	// steps the ladder down a rung.
	TripThreshold int64
	// TripWindow is the completion count after which a sub-threshold fault
	// ledger clears — scattered benign faults never accumulate to a trip.
	TripWindow int64
	// RepromoteWindow is the clean-completion count a degraded fleet needs
	// before probing one rung up.
	RepromoteWindow int64
	// ProbationBackoff multiplies the window after every failed probe.
	ProbationBackoff int64
	// ProbeEvery admits every N-th request while shedding, so a recovered
	// backend is discovered without reopening the floodgates.
	ProbeEvery int64
	// AbortStormThreshold is the per-response transactional abort count
	// that charges the ladder as a fault event even though the response
	// succeeded (an abort storm is capacity the fleet cannot afford).
	AbortStormThreshold int64
	// Seed drives the randomized retry windows.
	Seed int64
}

// DefaultResiliencePolicy returns the tuning used by the serving layer.
func DefaultResiliencePolicy(seed int64) ResiliencePolicy {
	return ResiliencePolicy{
		RetireAfterCrashes:  3,
		RetryBudget:         2,
		BackoffBase:         64,
		BackoffCap:          4096,
		TripThreshold:       4,
		TripWindow:          32,
		RepromoteWindow:     16,
		ProbationBackoff:    2,
		ProbeEvery:          8,
		AbortStormThreshold: 64,
		Seed:                seed,
	}
}

// withDefaults fills zero fields so a zero-value policy is serviceable.
func (p ResiliencePolicy) withDefaults() ResiliencePolicy {
	d := DefaultResiliencePolicy(p.Seed)
	if p.RetireAfterCrashes <= 0 {
		p.RetireAfterCrashes = d.RetireAfterCrashes
	}
	if p.RetryBudget == 0 {
		p.RetryBudget = d.RetryBudget
	} else if p.RetryBudget < 0 {
		p.RetryBudget = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffCap < p.BackoffBase {
		p.BackoffCap = p.BackoffBase
	}
	if p.TripThreshold <= 0 {
		p.TripThreshold = d.TripThreshold
	}
	if p.TripWindow <= 0 {
		p.TripWindow = d.TripWindow
	}
	if p.RepromoteWindow <= 0 {
		p.RepromoteWindow = d.RepromoteWindow
	}
	if p.ProbationBackoff <= 1 {
		p.ProbationBackoff = d.ProbationBackoff
	}
	if p.ProbeEvery <= 0 {
		p.ProbeEvery = d.ProbeEvery
	}
	if p.AbortStormThreshold <= 0 {
		p.AbortStormThreshold = d.AbortStormThreshold
	}
	return p
}

// CrashKey fingerprints one crash class: the program (by interned hash) and
// the crash site (a stable rendering of the panic origin).
type CrashKey struct {
	Program uint64
	Site    string
}

// CrashVerdict is the quarantine ledger's reaction to one contained crash.
type CrashVerdict struct {
	// Crashes is the fingerprint's lifetime charge count.
	Crashes int64
	// Retired reports the fingerprint is at or past the retirement budget.
	Retired bool
	// NewlyRetired reports this crash crossed the budget.
	NewlyRetired bool
	// Ladder is the degradation ladder's simultaneous reaction (a crash is
	// also a fault event).
	Ladder LadderChange
}

// LadderChange describes what one event did to the degradation ladder.
type LadderChange struct {
	// SteppedDown reports the fleet ceiling dropped one rung.
	SteppedDown bool
	// ProbeStarted reports a probationary promotion began.
	ProbeStarted bool
	// ProbeFailed reports a fault ended a probation (hysteresis doubled).
	ProbeFailed bool
	// Promoted reports a probation survived its full window.
	Promoted bool
	// ShedStarted / ShedCleared report load-shedding transitions.
	ShedStarted bool
	ShedCleared bool
	// Cap is the ceiling after the event.
	Cap profile.Tier
}

// Changed reports whether the event moved the ladder at all.
func (c LadderChange) Changed() bool {
	return c.SteppedDown || c.ProbeStarted || c.ProbeFailed || c.Promoted ||
		c.ShedStarted || c.ShedCleared
}

// Resilience owns the pool-level recovery state. Safe for concurrent use:
// pool workers report events from their own goroutines.
type Resilience struct {
	mu  sync.Mutex
	pol ResiliencePolicy
	// ceiling is the configured fleet tier cap the ladder re-promotes to.
	ceiling profile.Tier

	cap     profile.Tier
	proven  profile.Tier
	probing bool
	shed    bool
	window  int64
	// progress counts clean completions toward the next probe/confirmation.
	progress int64
	// faults / completions are the current trip-accounting window.
	faults      int64
	completions int64
	failed      int64 // failed probes (diagnostic; drives nothing beyond window)
	admits      int64 // shed-mode admission counter

	crashes map[CrashKey]int64
	retired map[CrashKey]bool
}

// NewResilience creates the recovery state machine for a fleet whose
// configured tier cap is ceiling.
func NewResilience(pol ResiliencePolicy, ceiling profile.Tier) *Resilience {
	return &Resilience{
		pol:     pol.withDefaults(),
		ceiling: ceiling,
		cap:     ceiling,
		proven:  ceiling,
		window:  pol.withDefaults().RepromoteWindow,
		crashes: make(map[CrashKey]int64),
		retired: make(map[CrashKey]bool),
	}
}

// Policy returns the tuning constants (defaults filled).
func (r *Resilience) Policy() ResiliencePolicy { return r.pol }

// TierCap returns the ladder's current fleet ceiling.
func (r *Resilience) TierCap() profile.Tier {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cap
}

// Degraded reports the fleet is serving below its configured ceiling (or
// shedding).
func (r *Resilience) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cap < r.ceiling || r.shed
}

// Shedding reports the ladder bottomed out and tripped again: the pool
// refuses work except for periodic probes.
func (r *Resilience) Shedding() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shed
}

// Admit is consulted per request while shedding: every ProbeEvery-th
// request is admitted as a probe; the rest are refused. When not shedding
// it always admits.
func (r *Resilience) Admit() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.shed {
		return true
	}
	r.admits++
	return r.admits%r.pol.ProbeEvery == 0
}

// CrashCount returns a fingerprint's lifetime charge count.
func (r *Resilience) CrashCount(k CrashKey) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashes[k]
}

// Retired reports whether a crash fingerprint is permanently retired.
func (r *Resilience) Retired(k CrashKey) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retired[k]
}

// OnCrash charges one contained isolate crash to its fingerprint and to the
// degradation ladder.
func (r *Resilience) OnCrash(k CrashKey) CrashVerdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashes[k]++
	v := CrashVerdict{Crashes: r.crashes[k]}
	if r.crashes[k] >= r.pol.RetireAfterCrashes {
		v.NewlyRetired = !r.retired[k]
		r.retired[k] = true
		v.Retired = true
	}
	v.Ladder = r.fault()
	return v
}

// OnFault charges one non-crash fault event (retry exhaustion, watchdog
// kill, abort storm) to the degradation ladder.
func (r *Resilience) OnFault() LadderChange {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fault()
}

// fault is the ladder's fault transition (caller holds mu).
func (r *Resilience) fault() LadderChange {
	ch := LadderChange{}
	r.progress = 0
	if r.probing {
		// The probe failed: fall back to the proven rung and back off.
		r.probing = false
		r.cap = r.proven
		r.failed++
		if r.window <= (1 << 40) {
			r.window *= r.pol.ProbationBackoff
		}
		ch.ProbeFailed = true
		ch.Cap = r.cap
		return ch
	}
	r.faults++
	if r.faults >= r.pol.TripThreshold {
		r.faults = 0
		r.completions = 0
		if r.cap > profile.TierInterp {
			r.cap--
			r.proven = r.cap
			ch.SteppedDown = true
		} else if !r.shed {
			r.shed = true
			r.admits = 0
			ch.ShedStarted = true
		}
	}
	ch.Cap = r.cap
	return ch
}

// OnSuccess records one clean completion: it clears shedding (the probe
// that produced it proved the backend serviceable), rolls the trip window,
// and advances probationary re-promotion.
func (r *Resilience) OnSuccess() LadderChange {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := LadderChange{Cap: r.cap}
	if r.shed {
		r.shed = false
		r.faults = 0
		r.completions = 0
		r.progress = 0
		ch.ShedCleared = true
		ch.Cap = r.cap
		return ch
	}
	r.completions++
	if r.faults > 0 && r.completions >= r.pol.TripWindow {
		// Window rollover: sub-threshold faults never accumulate to a trip.
		r.faults = 0
		r.completions = 0
	}
	if r.probing {
		r.progress++
		if r.progress >= r.window {
			r.probing = false
			r.proven = r.cap
			r.progress = 0
			ch.Promoted = true
		}
		ch.Cap = r.cap
		return ch
	}
	if r.cap >= r.ceiling {
		return ch
	}
	r.progress++
	if r.progress >= r.window {
		r.probing = true
		r.cap++
		r.progress = 0
		ch.ProbeStarted = true
		ch.Cap = r.cap
	}
	return ch
}

// RetryAllowed reports whether a transiently failed request may consume one
// more fresh-isolate attempt. attempt is 1-based (the first retry is
// attempt 1).
func (r *Resilience) RetryAllowed(attempt int) bool {
	return attempt <= r.pol.RetryBudget
}

// Backoff returns the deterministic randomized retry window (in cycles) for
// the attempt-th retry of the request identified by key: a seeded-xorshift
// draw scaled into a doubling envelope, the identical recipe the contention
// governor applies to conflict retries.
func (r *Resilience) Backoff(key string, attempt int) int64 {
	if attempt < 1 {
		attempt = 1
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	x := xorshift64(uint64(r.pol.Seed)*0x9E3779B97F4A7C15 + h.Sum64() + uint64(attempt)*0xBF58476D1CE4E5B9)
	envelope := r.pol.BackoffBase
	for i := 1; i < attempt && envelope < r.pol.BackoffCap; i++ {
		envelope <<= 1
	}
	if envelope > r.pol.BackoffCap {
		envelope = r.pol.BackoffCap
	}
	return 1 + int64(x%uint64(envelope))
}

// CrashSnap is one fingerprint's quarantine ledger in a snapshot or report.
type CrashSnap struct {
	Key     CrashKey
	Crashes int64
	Retired bool
}

// ResilienceSnap is the recovery state machine's exported state,
// deterministically ordered. Like the abort-recovery governor's Snapshot it
// is portable plain data: a fleet restart can restore it so learned
// retirements and the converged ladder level survive process boundaries.
type ResilienceSnap struct {
	Cap         profile.Tier
	Proven      profile.Tier
	Probing     bool
	Shed        bool
	Window      int64
	Progress    int64
	Faults      int64
	Completions int64
	Failed      int64
	Admits      int64
	Crashes     []CrashSnap
}

// Export captures the full recovery state.
func (r *Resilience) Export() ResilienceSnap {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := ResilienceSnap{
		Cap: r.cap, Proven: r.proven, Probing: r.probing, Shed: r.shed,
		Window: r.window, Progress: r.progress,
		Faults: r.faults, Completions: r.completions,
		Failed: r.failed, Admits: r.admits,
	}
	keys := make([]CrashKey, 0, len(r.crashes))
	for k := range r.crashes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Program != keys[j].Program {
			return keys[i].Program < keys[j].Program
		}
		return keys[i].Site < keys[j].Site
	})
	for _, k := range keys {
		s.Crashes = append(s.Crashes, CrashSnap{Key: k, Crashes: r.crashes[k], Retired: r.retired[k]})
	}
	return s
}

// Restore replaces the recovery state with the snapshot's, keeping the
// current policy and ceiling. Restoring Export()'s output into a fresh
// machine reproduces the donor's decisions exactly.
func (r *Resilience) Restore(s ResilienceSnap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cap, r.proven, r.probing, r.shed = s.Cap, s.Proven, s.Probing, s.Shed
	r.window, r.progress = s.Window, s.Progress
	if r.window <= 0 {
		r.window = r.pol.RepromoteWindow
	}
	r.faults, r.completions = s.Faults, s.Completions
	r.failed, r.admits = s.Failed, s.Admits
	r.crashes = make(map[CrashKey]int64, len(s.Crashes))
	r.retired = make(map[CrashKey]bool)
	for _, c := range s.Crashes {
		r.crashes[c.Key] = c.Crashes
		if c.Retired {
			r.retired[c.Key] = true
		}
	}
}

// ResilienceReport is the state machine's diagnostic view.
type ResilienceReport struct {
	Cap          profile.Tier
	Ceiling      profile.Tier
	Degraded     bool
	Probing      bool
	Shedding     bool
	Window       int64
	Progress     int64
	FailedProbes int64
	Crashes      []CrashSnap
}

// Report renders the current state, deterministically ordered.
func (r *Resilience) Report() ResilienceReport {
	snap := r.Export()
	r.mu.Lock()
	ceiling := r.ceiling
	r.mu.Unlock()
	return ResilienceReport{
		Cap:          snap.Cap,
		Ceiling:      ceiling,
		Degraded:     snap.Cap < ceiling || snap.Shed,
		Probing:      snap.Probing,
		Shedding:     snap.Shed,
		Window:       snap.Window,
		Progress:     snap.Progress,
		FailedProbes: snap.Failed,
		Crashes:      snap.Crashes,
	}
}
