package governor

import (
	"hash/fnv"
	"sort"
)

// Contention is the shared-heap analogue of the abort-recovery governor: it
// owns all post-abort policy for shared sections, and its central job is
// blame attribution. A conflict abort means another context raced us — the
// work retries after a randomized-by-seed backoff window, because the same
// interleaving re-run immediately would collide again. A capacity abort
// means the section's own footprint cannot fit the geometry — backing off
// cannot help, so the section retreats to the software fallback lock at
// once, mirroring how the §V-C ladder retreats tile size rather than
// retrying. Conflict storms past the retry budget also demote to the
// fallback; a demoted section earns its way back to transactions after a
// window of clean fallback executions (probationary re-promotion, the same
// discipline funcState applies to transaction levels).
//
// Every decision is a pure function of the event sequence and the policy
// seed — the backoff "randomness" is a deterministic hash of (seed, site,
// attempt history) — so the schedule-sweep oracle reproduces runs exactly.

// ContentionPolicy holds the deterministic tuning constants.
type ContentionPolicy struct {
	// MaxAttempts is the number of transactional attempts per section
	// execution before the worker falls back to the software lock; the
	// section's site is demoted at the same time.
	MaxAttempts int
	// BackoffBase is the first backoff window in cycles; the window doubles
	// per consecutive conflict, capped at BackoffCap.
	BackoffBase int64
	BackoffCap  int64
	// RepromoteWindow is the number of clean fallback executions after
	// which a demoted site probes the transactional path again.
	RepromoteWindow int64
	// Seed drives the randomized backoff windows. Two runs with equal seeds
	// and equal event sequences back off identically.
	Seed int64
}

// DefaultContentionPolicy returns the tuning used by the runtime.
func DefaultContentionPolicy(seed int64) ContentionPolicy {
	return ContentionPolicy{
		MaxAttempts:     4,
		BackoffBase:     16,
		BackoffCap:      512,
		RepromoteWindow: 8,
		Seed:            seed,
	}
}

// contentionSite is one section's contention state.
type contentionSite struct {
	attempts  int // conflict aborts of the current section execution
	demoted   bool
	cleanFall int64 // clean fallback executions since demotion
	draws     uint64

	// Lifetime ledgers (diagnostics and tests).
	conflicts   int64
	capacities  int64
	backoffs    int64
	fallbacks   int64
	repromotes  int64
	txCommits   int64
	fallCommits int64
}

// Contention is the per-run contention governor. It is not safe for
// concurrent use; in the real-goroutine execution mode each call happens
// under the conflict domain's step lock, which also keeps the decision
// sequence serialized and therefore deterministic per schedule.
type Contention struct {
	pol   ContentionPolicy
	sites map[string]*contentionSite
}

// NewContention creates a contention governor.
func NewContention(pol ContentionPolicy) *Contention {
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 4
	}
	if pol.BackoffBase <= 0 {
		pol.BackoffBase = 16
	}
	if pol.BackoffCap < pol.BackoffBase {
		pol.BackoffCap = pol.BackoffBase
	}
	if pol.RepromoteWindow <= 0 {
		pol.RepromoteWindow = 8
	}
	return &Contention{pol: pol, sites: make(map[string]*contentionSite)}
}

// Policy returns the governor's tuning constants.
func (c *Contention) Policy() ContentionPolicy { return c.pol }

func (c *Contention) site(key string) *contentionSite {
	s, ok := c.sites[key]
	if !ok {
		s = &contentionSite{}
		c.sites[key] = s
	}
	return s
}

// Demoted reports whether the site must execute on the fallback path.
func (c *Contention) Demoted(key string) bool {
	if s, ok := c.sites[key]; ok {
		return s.demoted
	}
	return false
}

// xorshift64 is the deterministic backoff RNG.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// ContentionDecision is the verdict on one conflict or capacity abort.
type ContentionDecision struct {
	// Fallback directs the worker to acquire the software lock for this
	// section execution (and marks the site demoted on conflict storms).
	Fallback bool
	// BackoffCycles is the randomized retry window to serve before the next
	// transactional attempt (conflict aborts below the retry budget only).
	BackoffCycles int64
}

// OnConflict reacts to a conflict abort of the given section site.
// Contention blame: retry after a randomized window; past MaxAttempts the
// site is demoted to the fallback path.
func (c *Contention) OnConflict(key string) ContentionDecision {
	s := c.site(key)
	s.conflicts++
	s.attempts++
	if s.attempts >= c.pol.MaxAttempts {
		s.attempts = 0
		s.demoted = true
		s.cleanFall = 0
		s.fallbacks++
		return ContentionDecision{Fallback: true}
	}
	// Deterministic "randomized" window: hash the seed, the site identity,
	// and the per-site draw count, scale into the doubling envelope.
	h := fnv.New64a()
	h.Write([]byte(key))
	s.draws++
	r := xorshift64(uint64(c.pol.Seed)*0x9E3779B97F4A7C15 + h.Sum64() + s.draws*0xBF58476D1CE4E5B9)
	envelope := c.pol.BackoffBase << (s.attempts - 1)
	if envelope > c.pol.BackoffCap {
		envelope = c.pol.BackoffCap
	}
	window := 1 + int64(r%uint64(envelope))
	s.backoffs++
	return ContentionDecision{BackoffCycles: window}
}

// OnCapacity reacts to a capacity abort of the given section site. Capacity
// blame: the footprint is the section's own, so retrying transactionally is
// pointless — take the fallback lock for this execution. The site is not
// demoted: the next execution may legitimately fit (data-dependent
// footprints), and unlike conflicts there is no remote context to wait out.
func (c *Contention) OnCapacity(key string) ContentionDecision {
	s := c.site(key)
	s.capacities++
	s.attempts = 0
	s.fallbacks++
	return ContentionDecision{Fallback: true}
}

// OnCommit reacts to a committed section execution. Transactional commits
// clear the attempt ledger; clean fallback executions of a demoted site
// count toward re-promotion, and the decision reports when the site earns
// its way back to the transactional path.
func (c *Contention) OnCommit(key string, viaFallback bool) (repromoted bool) {
	s := c.site(key)
	if !viaFallback {
		s.txCommits++
		s.attempts = 0
		return false
	}
	s.fallCommits++
	if !s.demoted {
		return false
	}
	s.cleanFall++
	if s.cleanFall >= c.pol.RepromoteWindow {
		s.demoted = false
		s.cleanFall = 0
		s.repromotes++
		return true
	}
	return false
}

// ContentionSiteReport is one site's ledger in a report.
type ContentionSiteReport struct {
	Site        string
	Demoted     bool
	Conflicts   int64
	Capacities  int64
	Backoffs    int64
	Fallbacks   int64
	Repromotes  int64
	TxCommits   int64
	FallCommits int64
}

// Report renders the governor's full state, deterministically ordered.
func (c *Contention) Report() []ContentionSiteReport {
	keys := make([]string, 0, len(c.sites))
	for k := range c.sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ContentionSiteReport, 0, len(keys))
	for _, k := range keys {
		s := c.sites[k]
		out = append(out, ContentionSiteReport{
			Site: k, Demoted: s.demoted,
			Conflicts: s.conflicts, Capacities: s.capacities,
			Backoffs: s.backoffs, Fallbacks: s.fallbacks, Repromotes: s.repromotes,
			TxCommits: s.txCommits, FallCommits: s.fallCommits,
		})
	}
	return out
}
