// Package ftl is the highest compiler tier (paper Figure 2): speculative
// SSA from Baseline profiles, the full "-O2-grade" optimization pipeline,
// and — under the NoMap configurations — the transaction formation and check
// optimizations of the paper (§IV). Pass order follows the paper: the
// transformation runs before the optimization passes so that every pass
// sees aborts instead of SMPs (§IV-B).
package ftl

import (
	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/ir"
	"nomap/internal/opt"
	"nomap/internal/profile"
)

// Options selects the architecture-dependent parts of the pipeline
// (Table II configurations).
type Options struct {
	// Transactions enables NoMap's transaction formation at TxLevel.
	Transactions bool
	TxLevel      core.TxLevel
	// CombineBounds enables bounds-check hoisting/sinking (NoMap_B).
	CombineBounds bool
	// RemoveOverflow enables SOF-based overflow-check removal (NoMap).
	RemoveOverflow bool
	// RemoveAll removes every in-transaction check (NoMap_BC).
	RemoveAll bool
	// KeepSMP lists check sites whose Stack Map Points survive transaction
	// formation (the governor's surgical SMP restoration). A non-empty set
	// disables the deferred-detection optimizations (bounds combining,
	// remove-all) for this function: a kept-SMP failure commits the
	// transaction before deopting, which is only sound when every committed
	// write was validated at the site that produced it.
	KeepSMP core.KeepSet
	// PassHook, when non-nil, observes the function after IR construction
	// and after every pipeline pass (the oracle runs ir.Verify here to
	// localize which pass broke an invariant).
	PassHook func(pass string, f *ir.Func)
	// Inline enables speculative flattening of monomorphic direct-call sites
	// into the caller's IR (multi-depth, with inline-frame stack maps). It
	// requires Profiles to resolve callee feedback; without it the pass is
	// skipped.
	Inline bool
	// Profiles resolves the Baseline profile of a callee the inliner wants to
	// flatten (the VM's ProfileFor, threaded through the JIT driver).
	Profiles func(*bytecode.Function) *profile.FunctionProfile
	// Demote reports dispatch sites the governor demoted to the generic path
	// (megamorphic storms past the dispatch-miss budget): their plans are
	// dropped at expansion time and the generic placeholder call stays. Nil
	// expands every eligible plan.
	Demote func(pc int, path string) bool
	// OSR requests an OSR-entry artifact entering at loop header OSREntryPC
	// instead of the invocation entry. The artifact's live state comes from
	// OpOSRLocal values bound at machine.EnterAt; transaction formation
	// places TxBegin in the synthetic entry block (the header's unique
	// out-of-loop predecessor), so the loop transaction begins at the OSR
	// entry under the same TxLevel rules as invocation-entry code.
	OSR        bool
	OSREntryPC int
}

// Compile builds FTL-tier code for fn under the given configuration.
func Compile(fn *bytecode.Function, prof *profile.FunctionProfile, opts Options) (*ir.Func, error) {
	var f *ir.Func
	var err error
	if opts.OSR {
		f, err = ir.BuildOSR(fn, prof, opts.OSREntryPC)
	} else {
		f, err = ir.Build(fn, prof)
	}
	if err != nil {
		return nil, err
	}
	after := func(pass string) {
		if opts.PassHook != nil {
			opts.PassHook(pass, f)
		}
	}
	after("build")
	// Polymorphic dispatch trees first: the builder's plan placeholders lower
	// to shape-guarded chains whose per-way callee guards the inliner then
	// treats exactly like monomorphic sites, so top-K receivers of a
	// polymorphic call inline behind their guards.
	ir.ExpandDispatch(f, opts.Demote)
	after("expand-dispatch")
	// Speculative call inlining next: flattened callees expose their checks
	// to every later pass, so hoisting, GVN, and transaction formation all
	// see across the former call boundary.
	if opts.Inline && opts.Profiles != nil {
		ir.InlineCalls(f, ir.DefaultInlineOptions(opts.Profiles))
		after("inline")
	}
	// JavaScriptCore's own check-removal phases run first (they exist in
	// every configuration; SMPs limit them, paper §III-A1)...
	opt.HoistTypeChecks(f)
	after("hoist-type-checks")
	// ...then NoMap's transformation, before the main optimization passes
	// (§IV-B)...
	if opts.Transactions && opts.TxLevel != core.TxOff {
		core.FormTransactionsKeeping(f, opts.TxLevel, opts.KeepSMP)
		after("form-transactions")
	}
	// A restored SMP commits its transaction on failure, so deferred
	// detection (mid-loop garbage validated only at the loop exit) becomes
	// observable; those passes are withheld for functions with kept sites.
	deferred := len(opts.KeepSMP) == 0
	// ...then the "-O2-grade" pipeline, now free of in-transaction SMPs.
	opt.GVN(f)
	after("gvn")
	opt.LICM(f)
	after("licm")
	opt.PromoteLoopStores(f)
	after("promote-loop-stores")
	if opts.CombineBounds && deferred {
		core.CombineBoundsChecks(f)
		after("combine-bounds-checks")
	}
	if opts.RemoveOverflow {
		core.RemoveOverflowChecks(f)
		after("remove-overflow-checks")
	}
	if opts.RemoveAll && deferred {
		core.RemoveAllChecks(f)
		after("remove-all-checks")
	}
	opt.GVN(f)
	after("gvn2")
	opt.DCE(f)
	after("dce")
	// Block layout cleanup last: LLVM-quality codegen merges straight-line
	// chains, which the DFG tier's simpler backend does not.
	opt.SimplifyCFG(f)
	after("simplify-cfg")
	return f, nil
}
