package ftl_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/dfg"
	"nomap/internal/ftl"
	"nomap/internal/ir"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// warmFn compiles src, runs it at Baseline to gather profiles, and returns
// the bytecode + profile of global fname.
func warmFn(t *testing.T, src, fname string) (*bytecode.Function, *profile.FunctionProfile) {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.MaxTier = profile.TierBaseline
	v := vm.New(cfg)
	if _, err := v.Run(src); err != nil {
		t.Fatalf("warmup: %v\n%s", err, src)
	}
	fv := v.Globals().Get(fname)
	if !fv.IsCallable() {
		t.Fatalf("%q is not callable", fname)
	}
	bcFn := fv.Object().Fn.Code.(*bytecode.Function)
	return bcFn, v.ProfileFor(bcFn)
}

// Every option combination must produce verifiable IR.
func TestPipelineOptionMatrix(t *testing.T) {
	src := `
var data = [];
for (var i = 0; i < 48; i++) data[i] = i * 2;
var obj = {total: 0, weight: 3};
function run(n) {
  obj.total = 0;
  for (var i = 0; i < n; i++) {
    obj.total += data[i] * obj.weight;
  }
  return obj.total;
}
for (var k = 0; k < 40; k++) run(48);
var result = run(48);
`
	bcFn, prof := warmFn(t, src, "run")
	levels := []core.TxLevel{core.TxLoopNest, core.TxInnermost, core.TxTiled, core.TxOff}
	for _, txOn := range []bool{false, true} {
		for _, level := range levels {
			for _, bounds := range []bool{false, true} {
				for _, overflow := range []bool{false, true} {
					for _, all := range []bool{false, true} {
						opts := ftl.Options{
							Transactions:   txOn,
							TxLevel:        level,
							CombineBounds:  bounds,
							RemoveOverflow: overflow,
							RemoveAll:      all,
						}
						f, err := ftl.Compile(bcFn, prof, opts)
						if err != nil {
							t.Fatalf("%+v: %v", opts, err)
						}
						if err := ir.Verify(f); err != nil {
							t.Fatalf("%+v: verify: %v\n%s", opts, err, f)
						}
					}
				}
			}
		}
	}
}

// Random programs through the full FTL pipeline must always verify, for
// every architecture option set.
func TestPipelineFuzzVerify(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := genLoopProgram(r)
		bcFn, prof := warmFn(t, src, "run")
		for _, opts := range []ftl.Options{
			{},
			{Transactions: true, TxLevel: core.TxLoopNest},
			{Transactions: true, TxLevel: core.TxTiled, CombineBounds: true},
			{Transactions: true, TxLevel: core.TxLoopNest, CombineBounds: true, RemoveOverflow: true},
			{Transactions: true, TxLevel: core.TxLoopNest, RemoveAll: true},
		} {
			f, err := ftl.Compile(bcFn, prof, opts)
			if err != nil {
				t.Fatalf("seed %d %+v: %v\n%s", seed, opts, err, src)
			}
			if err := ir.Verify(f); err != nil {
				t.Fatalf("seed %d %+v: %v\nprogram:\n%s\nIR:\n%s", seed, opts, err, src, f)
			}
		}
		g, err := dfg.Compile(bcFn, prof)
		if err != nil {
			t.Fatalf("seed %d dfg: %v", seed, err)
		}
		if err := ir.Verify(g); err != nil {
			t.Fatalf("seed %d dfg verify: %v", seed, err)
		}
	}
}

func genLoopProgram(r *rand.Rand) string {
	var sb strings.Builder
	n := 8 + r.Intn(24)
	fmt.Fprintf(&sb, "var a = [];\nfor (var i = 0; i < %d; i++) a[i] = i;\n", n)
	fmt.Fprintf(&sb, "var o = {f0: 1, f1: 2, f2: 3};\n")
	fmt.Fprintf(&sb, "function run(n) {\n  var s = 0, t = 1;\n")
	loops := 1 + r.Intn(2)
	for l := 0; l < loops; l++ {
		fmt.Fprintf(&sb, "  for (var i%d = 0; i%d < n; i%d++) {\n", l, l, l)
		switch r.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "    s += a[i%d %% %d];\n", l, n)
		case 1:
			fmt.Fprintf(&sb, "    a[i%d %% %d] = s & 1023;\n", l, n)
		case 2:
			fmt.Fprintf(&sb, "    s = (s + o.f%d) | 0;\n", r.Intn(3))
		case 3:
			fmt.Fprintf(&sb, "    o.f%d = s %% 97;\n", r.Intn(3))
		case 4:
			fmt.Fprintf(&sb, "    t = t * 3 + i%d;\n    if (t > 100000) t = 1;\n", l)
		default:
			fmt.Fprintf(&sb, "    if (i%d & 1) { s += 2; } else { s -= 1; }\n", l)
		}
		fmt.Fprintf(&sb, "  }\n")
	}
	fmt.Fprintf(&sb, "  return s + t;\n}\n")
	fmt.Fprintf(&sb, "for (var k = 0; k < 40; k++) run(%d);\nvar result = run(%d);\n", n, n)
	return sb.String()
}
