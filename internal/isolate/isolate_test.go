package isolate

import (
	"errors"
	"reflect"
	"testing"

	"nomap/internal/codecache"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// seedProgram's observable behaviour depends on both RandomSeed (Math.random
// drives the accumulator) and MaxCallDepth (the recursive probe overflows a
// small stack), so any reset path that fails to re-apply the configured
// values diverges visibly.
const seedProgram = `
var hits = 0;
function rec(n) { return n < 100 ? rec(n + 1) : n; }
function run(k) {
  var s = 0;
  for (var i = 0; i < 50; i++) {
    if (Math.random() < 0.5) { hits = hits + 1; }
    s = (s + hits) | 0;
  }
  return s;
}
`

type runRecord struct {
	results  []string
	output   []string
	recErr   string
	counters any
}

func record(t *testing.T, iso *Isolate, entry *codecache.ProgramEntry) runRecord {
	t.Helper()
	if err := iso.Load(entry); err != nil {
		t.Fatal(err)
	}
	var r runRecord
	for i := 0; i < 20; i++ {
		v, err := iso.VM().CallGlobal("run", value.Int(int32(i)))
		if err != nil {
			t.Fatal(err)
		}
		r.results = append(r.results, v.ToStringValue())
	}
	// The recursion probe must fail identically on every run: a recycled
	// isolate that silently reverted MaxCallDepth to the default would
	// succeed here instead.
	if _, err := iso.VM().CallGlobal("rec", value.Int(0)); err != nil {
		r.recErr = err.Error()
	}
	r.output = append([]string(nil), iso.VM().Output...)
	c := *iso.VM().Counters()
	r.counters = c
	return r
}

// TestRecycledIsolateDeterminism is the PR 2-style regression guard for the
// reset path: an isolate that has served a tenant and been Reset must be
// bit-for-bit indistinguishable — results, prints, error behaviour, and
// counters — from a freshly constructed isolate with the same config,
// including non-default RandomSeed and MaxCallDepth.
func TestRecycledIsolateDeterminism(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap
	cfg.RandomSeed = 0xDECAFBAD
	cfg.MaxCallDepth = 64

	progs := codecache.NewPrograms()
	entry, err := progs.Load(seedProgram)
	if err != nil {
		t.Fatal(err)
	}
	other, err := progs.Load(`function run(n) { var a = []; for (var i = 0; i < n; i++) a[i] = Math.random(); return a.length; }`)
	if err != nil {
		t.Fatal(err)
	}

	want := record(t, New(cfg), entry)
	if want.recErr == "" {
		t.Fatal("recursion probe did not overflow: MaxCallDepth not applied on construction")
	}

	// Recycle an isolate that ran a different random-consuming program (so a
	// leaked RNG position would shift every draw).
	used := New(cfg)
	if err := used.Load(other); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := used.VM().CallGlobal("run", value.Int(17)); err != nil {
			t.Fatal(err)
		}
	}
	used.Reset()
	got := record(t, used, entry)

	if !reflect.DeepEqual(got.results, want.results) {
		t.Errorf("recycled results diverge:\n got %v\nwant %v", got.results, want.results)
	}
	if !reflect.DeepEqual(got.output, want.output) {
		t.Errorf("recycled output diverges")
	}
	if got.recErr != want.recErr {
		t.Errorf("recursion limit differs after Reset: %q vs %q", got.recErr, want.recErr)
	}
	if !reflect.DeepEqual(got.counters, want.counters) {
		t.Errorf("recycled counters diverge:\n got %+v\nwant %+v", got.counters, want.counters)
	}
}

// TestLoadRequiresFreshIsolate: loading over a live tenant must be refused.
func TestLoadRequiresFreshIsolate(t *testing.T) {
	progs := codecache.NewPrograms()
	entry, err := progs.Load(seedProgram)
	if err != nil {
		t.Fatal(err)
	}
	iso := New(vm.DefaultConfig())
	if err := iso.Load(entry); err != nil {
		t.Fatal(err)
	}
	if err := iso.Load(entry); err == nil {
		t.Error("second Load without Reset must error")
	}
	iso.Reset()
	if err := iso.Load(entry); err != nil {
		t.Errorf("Load after Reset: %v", err)
	}
}

// TestSnapshotWarmStart: a restored isolate's observable behaviour must be
// byte-identical to a cold isolate's, while its warmup work (FTL compiles)
// drops to zero when the shared code cache holds the donor's artifacts.
func TestSnapshotWarmStart(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap
	progs := codecache.NewPrograms()
	entry, err := progs.Load(seedProgram)
	if err != nil {
		t.Fatal(err)
	}
	cache := codecache.NewCache(0)

	// Donor: run cold, capture the snapshot.
	donor := New(cfg)
	donor.UseCache(cache)
	if err := donor.Load(entry); err != nil {
		t.Fatal(err)
	}
	var cold []string
	for i := 0; i < 30; i++ {
		v, err := donor.VM().CallGlobal("run", value.Int(int32(i)))
		if err != nil {
			t.Fatal(err)
		}
		cold = append(cold, v.ToStringValue())
	}
	snap := donor.Snapshot()
	if len(snap.Profiles) == 0 {
		t.Fatal("snapshot captured no profiles")
	}

	// Warm: restore, then run the same calls.
	warm := New(cfg)
	warm.UseCache(cache)
	if err := warm.Load(entry); err != nil {
		t.Fatal(err)
	}
	if err := warm.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		v, err := warm.VM().CallGlobal("run", value.Int(int32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if got := v.ToStringValue(); got != cold[i] {
			t.Fatalf("call %d: warm %q != cold %q", i, got, cold[i])
		}
	}
	wc := warm.VM().Counters()
	if wc.SnapshotRestores != 1 {
		t.Errorf("SnapshotRestores = %d, want 1", wc.SnapshotRestores)
	}
	if ftl := wc.Compilations[cfg.MaxTier]; ftl != 0 {
		t.Errorf("warm isolate ran %d top-tier compiles; should pull them all from the cache", ftl)
	}
	if wc.CodeCacheHits == 0 {
		t.Error("warm isolate never hit the shared cache")
	}

	// Restoring a snapshot of a different program must be refused.
	otherEntry, err := progs.Load(`function run(n) { return n; }`)
	if err != nil {
		t.Fatal(err)
	}
	stranger := New(cfg)
	if err := stranger.Load(otherEntry); err != nil {
		t.Fatal(err)
	}
	if err := stranger.Restore(snap); err == nil {
		t.Error("cross-program restore must error")
	}
}

// TestStoreSaveOnce: the snapshot store keeps the first capture and counts
// hits/misses.
func TestStoreSaveOnce(t *testing.T) {
	progs := codecache.NewPrograms()
	entry, err := progs.Load(seedProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	k := KeyFor(cfg, entry)

	st := NewStore()
	if s := st.Get(k); s != nil {
		t.Fatal("empty store returned a snapshot")
	}
	first := &Snapshot{Program: entry}
	second := &Snapshot{Program: entry}
	if !st.SaveOnce(k, first) {
		t.Fatal("first save must win")
	}
	if st.SaveOnce(k, second) {
		t.Fatal("second save must be ignored")
	}
	if got := st.Get(k); got != first {
		t.Error("store must return the first capture")
	}
	// A differently configured isolate must not see this snapshot.
	cfg2 := cfg
	cfg2.RandomSeed = 42
	if s := st.Get(KeyFor(cfg2, entry)); s != nil {
		t.Error("snapshot leaked across configurations")
	}
	stats := st.Stats()
	if stats.Size != 1 || stats.Hits != 1 || stats.Misses != 2 {
		t.Errorf("store stats = %+v", stats)
	}
}

// TestSnapshotSealRejectsCorruption: a snapshot damaged in flight must be
// refused by Restore with ErrSnapshotCorrupt (counted in SnapshotRejects),
// while the undamaged original still restores — the property the pool's
// snapshot-corrupt chaos point relies on to guarantee a corrupt warm start
// degrades to a cold one instead of installing wrong feedback.
func TestSnapshotSealRejectsCorruption(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.Arch = vm.ArchNoMap
	progs := codecache.NewPrograms()
	entry, err := progs.Load(seedProgram)
	if err != nil {
		t.Fatal(err)
	}
	donor := New(cfg)
	if err := donor.Load(entry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := donor.VM().CallGlobal("run", value.Int(int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := donor.Snapshot()
	if len(snap.Profiles) == 0 {
		t.Fatal("snapshot captured no profiles")
	}
	bad := snap.CorruptCopy()

	victim := New(cfg)
	if err := victim.Load(entry); err != nil {
		t.Fatal(err)
	}
	err = victim.Restore(bad)
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("Restore(corrupt) = %v, want ErrSnapshotCorrupt", err)
	}
	if got := victim.VM().Counters().SnapshotRejects; got != 1 {
		t.Errorf("SnapshotRejects = %d, want 1", got)
	}
	if got := victim.VM().Counters().SnapshotRestores; got != 0 {
		t.Errorf("SnapshotRestores = %d after a rejected restore", got)
	}
	// The original is untouched by CorruptCopy and still verifies.
	if err := victim.Restore(snap); err != nil {
		t.Fatalf("original snapshot rejected after CorruptCopy: %v", err)
	}
}
