// Package isolate wraps one engine instance (VM + speculative-tier backend)
// as a reusable execution context for the serving layer. An isolate owns all
// of its mutable state — shape table, globals, profiles, governor ledgers,
// simulated hardware, RNG — and shares nothing mutable with its siblings;
// the only cross-isolate artifacts are immutable (interned bytecode, code
// cache entries, snapshots). Reset returns a recycled isolate to a state
// indistinguishable from a freshly constructed one, clearing every
// observation hook a previous tenant may have installed.
//
// The package also provides the warm-start facility: Snapshot captures an
// isolate's post-warmup profile feedback and abort-recovery governor ledgers
// in portable (pointer-free) form, and Restore installs them into a fresh
// isolate of the same program, which then tiers up immediately — pulling
// already-compiled artifacts from the shared code cache instead of
// re-profiling and re-compiling from scratch.
package isolate

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"nomap/internal/bytecode"
	"nomap/internal/codecache"
	"nomap/internal/governor"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// Isolate is one engine instance plus its backend.
type Isolate struct {
	cfg     vm.Config
	v       *vm.VM
	b       *jit.Backend
	program *codecache.ProgramEntry // currently loaded program, nil when fresh
}

// New creates an isolate under cfg.
func New(cfg vm.Config) *Isolate {
	v := vm.New(cfg)
	b := jit.Attach(v)
	return &Isolate{cfg: v.Config(), v: v, b: b}
}

// VM returns the isolate's engine.
func (iso *Isolate) VM() *vm.VM { return iso.v }

// Backend returns the isolate's speculative-tier backend.
func (iso *Isolate) Backend() *jit.Backend { return iso.b }

// Config returns the configuration the isolate was created with.
func (iso *Isolate) Config() vm.Config { return iso.cfg }

// Program returns the currently loaded program (nil when fresh).
func (iso *Isolate) Program() *codecache.ProgramEntry { return iso.program }

// UseCache connects (or with nil disconnects) the shared compiled-code
// cache.
func (iso *Isolate) UseCache(c *codecache.Cache) { iso.b.SetCodeCache(c) }

// Reset returns the isolate to its post-New state: VM state (shapes,
// globals, builtins, profiles, RNG, counters, output), backend state (code,
// governor, simulated hardware), and every observation or control hook a
// previous tenant installed — interrupt, pass hook, fault injector, tracer,
// HTM capacity probe. The code-cache connection survives: it holds only
// immutable artifacts.
func (iso *Isolate) Reset() {
	iso.v.SetInterrupt(nil)
	iso.b.SetPassHook(nil)
	iso.b.SetCompileSink(nil)
	iso.b.Machine().SetInjector(nil)
	iso.b.Machine().SetTracer(nil)
	iso.b.Machine().HTM.SetCapacityProbe(nil)
	iso.v.Reset()
	iso.b.Reset()
	iso.program = nil
}

// Load runs an interned program's top-level code (global declarations and
// setup) in the isolate. It requires a fresh or freshly Reset isolate so
// that per-program state never leaks between tenants.
func (iso *Isolate) Load(entry *codecache.ProgramEntry) error {
	if iso.program != nil {
		return fmt.Errorf("isolate: Load on an isolate already running %q (Reset first)", iso.program.Main.Name)
	}
	if _, err := iso.v.RunMain(entry.Main); err != nil {
		return err
	}
	iso.program = entry
	return nil
}

// Snapshot captures the isolate's warm state — profile feedback and governor
// ledgers — in portable form. Program-visible state (globals, heap, RNG) is
// deliberately excluded: a restored isolate re-runs the program's setup, so
// its observable behaviour is byte-identical to a cold run; only the
// invisible warmup work (profiling, tier-up, compilation) is skipped.
func (iso *Isolate) Snapshot() *Snapshot {
	s := &Snapshot{Program: iso.program, Gov: iso.b.Governor().Export()}
	iso.v.EachProfile(func(fn *bytecode.Function, p *profile.FunctionProfile) {
		s.Profiles = append(s.Profiles, ProfileEntry{
			Code: fn,
			Snap: codecache.SnapProfile(p, iso.v),
		})
	})
	sort.Slice(s.Profiles, func(i, j int) bool {
		return s.Profiles[i].Code.Name < s.Profiles[j].Code.Name
	})
	s.Seal = s.seal()
	return s
}

// ErrSnapshotCorrupt reports a snapshot whose payload no longer matches the
// integrity seal computed at capture. Restore refuses such a snapshot, so a
// damaged warm-start can only cost a cold start, never wrong profiles or
// ledgers.
var ErrSnapshotCorrupt = errors.New("isolate: snapshot failed integrity check")

// seal hashes the snapshot's payload — program identity, governor ledgers,
// and every profile — into the integrity fingerprint Restore verifies. The
// governor export and the profile list are deterministically ordered, so the
// seal is a pure function of the captured state.
func (s *Snapshot) seal() uint64 {
	h := fnv.New64a()
	if s.Program != nil {
		fmt.Fprintf(h, "program:%016x\n", s.Program.Hash)
	}
	fmt.Fprintf(h, "gov:%+v\n", s.Gov)
	for _, e := range s.Profiles {
		fmt.Fprintf(h, "profile:%s:%+v\n", e.Code.Name, *e.Snap)
	}
	return h.Sum64()
}

// CorruptCopy returns a copy of the snapshot with one payload field damaged
// but the original seal retained — the exact shape of an in-flight
// corruption, for the chaos harness. The receiver is untouched.
func (s *Snapshot) CorruptCopy() *Snapshot {
	c := *s
	switch {
	case len(c.Profiles) > 0:
		c.Profiles = append([]ProfileEntry(nil), s.Profiles...)
		snap := *c.Profiles[0].Snap
		snap.Invocations++
		c.Profiles[0].Snap = &snap
	case len(c.Gov) > 0:
		c.Gov = append(governor.Snapshot(nil), s.Gov...)
		c.Gov[0].Window++
	default:
		c.Seal ^= 1
	}
	return &c
}

// Restore installs a snapshot's profiles and governor ledgers into this
// isolate, which must have Loaded the same interned program (so the
// snapshot's bytecode identities resolve).
func (iso *Isolate) Restore(s *Snapshot) error {
	if iso.program == nil || iso.program != s.Program {
		return fmt.Errorf("isolate: snapshot is for a different program")
	}
	if s.Seal != s.seal() {
		iso.v.Counters().SnapshotRejects++
		return fmt.Errorf("restore %q: %w", s.Program.Main.Name, ErrSnapshotCorrupt)
	}
	for _, e := range s.Profiles {
		iso.v.SetProfile(e.Code, e.Snap.Materialize(e.Code, iso.v))
	}
	iso.b.Governor().Restore(s.Gov)
	iso.v.Counters().SnapshotRestores++
	return nil
}

// ProfileEntry pairs a shared bytecode function with its portable profile.
type ProfileEntry struct {
	Code *bytecode.Function
	Snap *codecache.ProfileSnap
}

// Snapshot is an isolate's portable warm state. It is immutable once built
// and safe to restore into any number of isolates concurrently.
type Snapshot struct {
	Program  *codecache.ProgramEntry
	Profiles []ProfileEntry
	Gov      governor.Snapshot
	// Seal is the integrity fingerprint of the fields above, computed at
	// capture; Restore recomputes it and rejects a mismatch with
	// ErrSnapshotCorrupt.
	Seal uint64
}

// StoreKey identifies the engine configuration a snapshot was captured
// under. Feedback is only transferable between identically configured
// isolates of the same program: a different arch, tier cap, policy, or seed
// profiles differently.
type StoreKey struct {
	Program *codecache.ProgramEntry
	Arch    vm.Arch
	MaxTier profile.Tier
	Policy  profile.Policy
	Seed    uint64
}

// KeyFor builds the snapshot-store key for an isolate running entry.
func KeyFor(cfg vm.Config, entry *codecache.ProgramEntry) StoreKey {
	return StoreKey{
		Program: entry,
		Arch:    cfg.Arch,
		MaxTier: cfg.MaxTier,
		Policy:  cfg.Policy,
		Seed:    cfg.RandomSeed,
	}
}

// StoreStats counts snapshot-store activity.
type StoreStats struct {
	Hits   int64
	Misses int64
	Size   int
}

// Store is a concurrency-safe snapshot registry: first warm isolate in
// saves, everyone after starts warm.
type Store struct {
	mu     sync.RWMutex
	m      map[StoreKey]*Snapshot
	hits   int64
	misses int64
}

// NewStore creates an empty snapshot store.
func NewStore() *Store {
	return &Store{m: make(map[StoreKey]*Snapshot)}
}

// Get returns the snapshot for k, or nil.
func (st *Store) Get(k StoreKey) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.m[k]
	if s != nil {
		st.hits++
	} else {
		st.misses++
	}
	return s
}

// SaveOnce stores s under k unless a snapshot is already present, reporting
// whether s was stored. Keeping the first capture (rather than overwriting)
// makes the warm path deterministic: every restored isolate starts from the
// same ledger state.
func (st *Store) SaveOnce(k StoreKey, s *Snapshot) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[k]; ok {
		return false
	}
	st.m[k] = s
	return true
}

// Stats returns a snapshot of store activity.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{Hits: st.hits, Misses: st.misses, Size: len(st.m)}
}
