package value

import "math"

// Boxed is the NaN-boxed one-word value representation used by the hot
// storage layers: interpreter/Baseline register files, frame.Frame locals
// (the canonical deopt/OSR state), and machine LIR operand slots. The fat
// Value struct remains the boundary and debug representation; Box/Unbox
// convert losslessly at tier edges.
//
// Encoding: any bit pattern below tagBase is an IEEE-754 double (doubles are
// stored as their raw bits). Incoming NaNs are canonicalized to the quiet
// NaN 0x7FF8000000000000 so user-computed doubles can never forge a tag.
// Everything at or above tagBase carries a 16-bit tag in the high bits and a
// payload in the low 48 (int32/bool use the payload directly; strings and
// objects hold per-isolate handle-slab indices so GC liveness is preserved
// without unsafe pointer punning).
//
// The zero Boxed is +0.0, not undefined — register files must be filled
// with BoxedUndefined explicitly.
type Boxed uint64

const (
	tagShift = 48

	tagInt32     uint64 = 0xFFF9 << tagShift
	tagBool      uint64 = 0xFFFA << tagShift
	tagNull      uint64 = 0xFFFB << tagShift
	tagUndefined uint64 = 0xFFFC << tagShift
	tagHole      uint64 = 0xFFFD << tagShift
	tagString    uint64 = 0xFFFE << tagShift
	tagObject    uint64 = 0xFFFF << tagShift

	// tagBase is the first non-double bit pattern. Every canonicalized
	// double — including ±Inf (0x7FF0/0xFFF0...) and the canonical NaN —
	// compares below it.
	tagBase uint64 = tagInt32
	tagMask uint64 = 0xFFFF << tagShift

	// canonicalNaN is the quiet NaN all NaN payloads collapse to under
	// BoxDouble; it sits below tagBase so it round-trips as a double.
	canonicalNaN uint64 = 0x7FF8000000000000
)

// Singleton boxed values.
const (
	BoxedUndefined = Boxed(tagUndefined)
	BoxedNull      = Boxed(tagNull)
	BoxedHole      = Boxed(tagHole)
	BoxedTrue      = Boxed(tagBool | 1)
	BoxedFalse     = Boxed(tagBool)
)

// BoxInt boxes an int32.
func BoxInt(i int32) Boxed { return Boxed(tagInt32 | uint64(uint32(i))) }

// BoxBool boxes a boolean.
func BoxBool(b bool) Boxed {
	if b {
		return BoxedTrue
	}
	return BoxedFalse
}

// BoxDouble boxes a double as its raw bits, canonicalizing every NaN (any
// payload, either sign) so no double can alias a tag.
func BoxDouble(f float64) Boxed {
	bits := math.Float64bits(f)
	if bits&0x7FF0000000000000 == 0x7FF0000000000000 && bits&0x000FFFFFFFFFFFFF != 0 {
		bits = canonicalNaN
	}
	return Boxed(bits)
}

// BoxNumber boxes a numeric result with the same int32 canonicalization as
// Number: integral, in range, and not negative zero stays int32.
func BoxNumber(f float64) Boxed {
	if f == math.Trunc(f) && f >= math.MinInt32 && f <= math.MaxInt32 && !math.IsInf(f, 0) {
		if f == 0 && math.Signbit(f) {
			return BoxDouble(f)
		}
		return BoxInt(int32(f))
	}
	return BoxDouble(f)
}

// IsDouble reports whether b holds a double.
func (b Boxed) IsDouble() bool { return uint64(b) < tagBase }

// IsInt32 reports whether b holds an int32.
func (b Boxed) IsInt32() bool { return uint64(b)&tagMask == tagInt32 }

// IsNumber reports whether b holds an int32 or a double.
func (b Boxed) IsNumber() bool { return uint64(b) < tagBase || uint64(b)&tagMask == tagInt32 }

// IsBool reports whether b holds a boolean.
func (b Boxed) IsBool() bool { return uint64(b)&tagMask == tagBool }

// IsString reports whether b holds a string handle.
func (b Boxed) IsString() bool { return uint64(b)&tagMask == tagString }

// IsObject reports whether b holds an object handle.
func (b Boxed) IsObject() bool { return uint64(b)&tagMask == tagObject }

// IsUndefined reports whether b is undefined.
func (b Boxed) IsUndefined() bool { return b == BoxedUndefined }

// IsHole reports whether b is the engine-internal absent-element marker.
func (b Boxed) IsHole() bool { return b == BoxedHole }

// Int32 returns the int32 payload (valid only when IsInt32).
func (b Boxed) Int32() int32 { return int32(uint32(b)) }

// Double returns the double bits (valid only when IsDouble).
func (b Boxed) Double() float64 { return math.Float64frombits(uint64(b)) }

// Bool returns the boolean payload (valid only when IsBool).
func (b Boxed) Bool() bool { return uint64(b)&1 != 0 }

// NumberValue returns the numeric payload of an int32 or double box.
func (b Boxed) NumberValue() float64 {
	if b.IsInt32() {
		return float64(b.Int32())
	}
	return b.Double()
}

// handle returns the slab index of a string or object box.
func (b Boxed) handle() uint32 { return uint32(b) }

// Handles is a per-isolate slab giving strings and objects stable 32-bit
// indices so they fit a NaN-box payload. The slab keeps every boxed referent
// reachable (GC liveness without unsafe pointer punning); Reset drops the
// slab with the rest of the isolate's heap.
type Handles struct {
	objs   []*Object
	objIdx map[*Object]uint32
	strs   []string
	strIdx map[string]uint32
}

// NewHandles creates an empty handle slab.
func NewHandles() *Handles { return &Handles{} }

// Reset drops every handle (valid only when no boxed values are live).
func (h *Handles) Reset() {
	h.objs, h.objIdx = nil, nil
	h.strs, h.strIdx = nil, nil
}

func (h *Handles) objHandle(o *Object) uint32 {
	if i, ok := h.objIdx[o]; ok {
		return i
	}
	if h.objIdx == nil {
		h.objIdx = make(map[*Object]uint32)
	}
	i := uint32(len(h.objs))
	h.objs = append(h.objs, o)
	h.objIdx[o] = i
	return i
}

func (h *Handles) strHandle(s string) uint32 {
	if i, ok := h.strIdx[s]; ok {
		return i
	}
	if h.strIdx == nil {
		h.strIdx = make(map[string]uint32)
	}
	i := uint32(len(h.strs))
	h.strs = append(h.strs, s)
	h.strIdx[s] = i
	return i
}

// BoxObject boxes an object through the slab.
func (h *Handles) BoxObject(o *Object) Boxed {
	return Boxed(tagObject | uint64(h.objHandle(o)))
}

// BoxStr boxes a string through the slab.
func (h *Handles) BoxStr(s string) Boxed {
	return Boxed(tagString | uint64(h.strHandle(s)))
}

// Object returns the object behind an object box.
func (h *Handles) Object(b Boxed) *Object { return h.objs[b.handle()] }

// ObjectOrNil returns the object behind b, or nil when b is not an object
// box — the speculative tiers' "is this the expected receiver" reads.
func (h *Handles) ObjectOrNil(b Boxed) *Object {
	if !b.IsObject() {
		return nil
	}
	return h.objs[b.handle()]
}

// Str returns the string behind a string box.
func (h *Handles) Str(b Boxed) string { return h.strs[b.handle()] }

// Box converts a fat Value to its boxed form. Lossless for every kind except
// that NaN payloads canonicalize (Unbox(Box(v)) observes identical JS
// semantics; see FuzzBox).
func (h *Handles) Box(v Value) Boxed {
	switch v.kind {
	case KindUndefined:
		return BoxedUndefined
	case KindNull:
		return BoxedNull
	case KindBool:
		return BoxBool(v.b)
	case KindInt32:
		return BoxInt(v.i)
	case KindDouble:
		return BoxDouble(v.f)
	case KindString:
		return h.BoxStr(v.s)
	case KindObject:
		return h.BoxObject(v.o)
	case KindHole:
		return BoxedHole
	}
	return BoxedUndefined
}

// Unbox converts a boxed value back to the fat representation. A raw double
// box unboxes as KindDouble even when integral — kind observability at tier
// edges is preserved by boxing int32s under their own tag.
func (h *Handles) Unbox(b Boxed) Value {
	if uint64(b) < tagBase {
		return Double(math.Float64frombits(uint64(b)))
	}
	switch uint64(b) & tagMask {
	case tagInt32:
		return Int(b.Int32())
	case tagBool:
		return Boolean(b.Bool())
	case tagNull:
		return Null()
	case tagUndefined:
		return Undefined()
	case tagHole:
		return Hole()
	case tagString:
		return Str(h.strs[b.handle()])
	case tagObject:
		return Obj(h.objs[b.handle()])
	}
	return Undefined()
}

// ToBoolean applies the JS truthiness rules directly to a boxed value.
func (h *Handles) ToBoolean(b Boxed) bool {
	if uint64(b) < tagBase {
		f := b.Double()
		return f != 0 && !math.IsNaN(f)
	}
	switch uint64(b) & tagMask {
	case tagInt32:
		return b.Int32() != 0
	case tagBool:
		return b.Bool()
	case tagString:
		return len(h.strs[b.handle()]) != 0
	case tagObject:
		return true
	}
	return false // null, undefined, hole
}
