package value

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// SharedHeap is the mutable state multiple pool isolates race on in the
// shared-heap scenario class: named counters, striped maps, and bounded FIFO
// queues. Unlike the per-isolate JS heap, a SharedHeap is reachable from
// every worker of a shared run; atomicity of multi-word operations is the
// executor's job (hardware transactions on the fast path, the domain's
// software fallback lock otherwise) — the heap itself is plain storage.
//
// Every word of shared state has a deterministic simulated address in a
// region far above the per-isolate address map (machine.Memory allocates
// upward from 0x1000), so the HTM write/read-set tracking and the conflict
// domain see a realistic, collision-free address stream:
//
//   - a counter occupies its own cache line (no false sharing between
//     distinct counters);
//   - a map's entries live on their stripe's line, so two keys of the same
//     stripe conflict (intentional false sharing, the contention knob of the
//     striped-map workload) while different stripes never do;
//   - a queue's head and tail indices occupy one line each, and its ring
//     storage packs eight values per line.
//
// The heap is not internally synchronized: callers mutate it only while
// holding the conflict domain's step lock (both execution modes do), which
// also makes -race runs clean.
type SharedHeap struct {
	counters map[string]*SharedCounter
	maps     map[string]*SharedMap
	queues   map[string]*SharedQueue
	// order preserves declaration order for deterministic snapshots.
	order []string
	next  uint64
}

// SharedBase is the bottom of the shared-heap address region.
const SharedBase uint64 = 1 << 40

// sharedLine is the address granule; one declared line per allocation keeps
// structures from sharing cache lines accidentally.
const sharedLine = 64

// SharedCounter is one shared 64-bit counter on its own cache line.
type SharedCounter struct {
	addr  uint64
	Value int64
}

// Addr returns the counter's simulated address.
func (c *SharedCounter) Addr() uint64 { return c.addr }

// SharedMap is a striped string->int64 map. Keys hash to one of Stripes
// buckets; each bucket's entries share that stripe's cache line.
type SharedMap struct {
	base    uint64
	Stripes int
	buckets []map[string]int64
}

// StripeFor returns the stripe index a key hashes to.
func (m *SharedMap) StripeFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % m.Stripes
}

// StripeAddr returns the simulated address of a stripe's line.
func (m *SharedMap) StripeAddr(stripe int) uint64 {
	return m.base + uint64(stripe)*sharedLine
}

// Get returns the value stored under key (zero when absent).
func (m *SharedMap) Get(key string) int64 { return m.buckets[m.StripeFor(key)][key] }

// Set stores v under key, deleting the entry when v == 0 so snapshots stay
// canonical (an explicit zero and an absent key are the same observable).
func (m *SharedMap) Set(key string, v int64) {
	b := m.buckets[m.StripeFor(key)]
	if v == 0 {
		delete(b, key)
		return
	}
	b[key] = v
}

// SharedQueue is a bounded FIFO ring of int64 values.
type SharedQueue struct {
	headAddr uint64
	tailAddr uint64
	dataBase uint64
	Cap      int
	head     int // absolute pop count
	tail     int // absolute push count
	ring     []int64
}

// HeadAddr returns the address of the head (pop) index word.
func (q *SharedQueue) HeadAddr() uint64 { return q.headAddr }

// TailAddr returns the address of the tail (push) index word.
func (q *SharedQueue) TailAddr() uint64 { return q.tailAddr }

// SlotAddr returns the address of the ring slot an absolute index maps to.
func (q *SharedQueue) SlotAddr(abs int) uint64 {
	return q.dataBase + uint64(abs%q.Cap)*8
}

// Len returns the number of queued values.
func (q *SharedQueue) Len() int { return q.tail - q.head }

// Head and Tail expose the absolute indices (for undo logging).
func (q *SharedQueue) Head() int { return q.head }
func (q *SharedQueue) Tail() int { return q.tail }

// SetHead and SetTail restore the absolute indices (undo logging).
func (q *SharedQueue) SetHead(h int) { q.head = h }
func (q *SharedQueue) SetTail(t int) { q.tail = t }

// Push appends v; it reports false when the ring is full.
func (q *SharedQueue) Push(v int64) bool {
	if q.Len() >= q.Cap {
		return false
	}
	q.ring[q.tail%q.Cap] = v
	q.tail++
	return true
}

// Pop removes the oldest value; ok is false when the queue is empty.
func (q *SharedQueue) Pop() (v int64, ok bool) {
	if q.Len() == 0 {
		return 0, false
	}
	v = q.ring[q.head%q.Cap]
	q.head++
	return v, true
}

// Slot reads a ring slot by absolute index (undo logging).
func (q *SharedQueue) Slot(abs int) int64 { return q.ring[abs%q.Cap] }

// SetSlot restores a ring slot by absolute index (undo logging).
func (q *SharedQueue) SetSlot(abs int, v int64) { q.ring[abs%q.Cap] = v }

// NewSharedHeap creates an empty shared heap.
func NewSharedHeap() *SharedHeap {
	return &SharedHeap{
		counters: make(map[string]*SharedCounter),
		maps:     make(map[string]*SharedMap),
		queues:   make(map[string]*SharedQueue),
		next:     SharedBase,
	}
}

func (h *SharedHeap) alloc(lines int) uint64 {
	a := h.next
	h.next += uint64(lines) * sharedLine
	return a
}

func (h *SharedHeap) declared(name string) bool {
	_, c := h.counters[name]
	_, m := h.maps[name]
	_, q := h.queues[name]
	return c || m || q
}

// DeclareCounter adds a named counter (idempotent per name).
func (h *SharedHeap) DeclareCounter(name string) *SharedCounter {
	if c, ok := h.counters[name]; ok {
		return c
	}
	if h.declared(name) {
		panic(fmt.Sprintf("shared heap: %q redeclared as a different kind", name))
	}
	c := &SharedCounter{addr: h.alloc(1)}
	h.counters[name] = c
	h.order = append(h.order, name)
	return c
}

// DeclareMap adds a named striped map with the given stripe count.
func (h *SharedHeap) DeclareMap(name string, stripes int) *SharedMap {
	if m, ok := h.maps[name]; ok {
		return m
	}
	if h.declared(name) {
		panic(fmt.Sprintf("shared heap: %q redeclared as a different kind", name))
	}
	if stripes <= 0 {
		stripes = 1
	}
	m := &SharedMap{base: h.alloc(stripes), Stripes: stripes,
		buckets: make([]map[string]int64, stripes)}
	for i := range m.buckets {
		m.buckets[i] = make(map[string]int64)
	}
	h.maps[name] = m
	h.order = append(h.order, name)
	return m
}

// DeclareQueue adds a named bounded queue with the given capacity.
func (h *SharedHeap) DeclareQueue(name string, capacity int) *SharedQueue {
	if q, ok := h.queues[name]; ok {
		return q
	}
	if h.declared(name) {
		panic(fmt.Sprintf("shared heap: %q redeclared as a different kind", name))
	}
	if capacity <= 0 {
		capacity = 1
	}
	dataLines := (capacity*8 + sharedLine - 1) / sharedLine
	q := &SharedQueue{
		headAddr: h.alloc(1),
		tailAddr: h.alloc(1),
		dataBase: h.alloc(dataLines),
		Cap:      capacity,
		ring:     make([]int64, capacity),
	}
	h.queues[name] = q
	h.order = append(h.order, name)
	return q
}

// Counter returns a declared counter (nil when absent).
func (h *SharedHeap) Counter(name string) *SharedCounter { return h.counters[name] }

// Map returns a declared map (nil when absent).
func (h *SharedHeap) Map(name string) *SharedMap { return h.maps[name] }

// Queue returns a declared queue (nil when absent).
func (h *SharedHeap) Queue(name string) *SharedQueue { return h.queues[name] }

// Snapshot renders the heap in a canonical form: structures in declaration
// order, map keys sorted, queues rendered head-to-tail. Two heaps with equal
// snapshots are observably identical, which is the oracle's equality.
func (h *SharedHeap) Snapshot() string {
	var sb strings.Builder
	for i, name := range h.order {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch {
		case h.counters[name] != nil:
			fmt.Fprintf(&sb, "%s=%d", name, h.counters[name].Value)
		case h.maps[name] != nil:
			m := h.maps[name]
			var keys []string
			for _, b := range m.buckets {
				for k := range b {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			fmt.Fprintf(&sb, "%s={", name)
			for j, k := range keys {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%s:%d", k, m.Get(k))
			}
			sb.WriteByte('}')
		case h.queues[name] != nil:
			q := h.queues[name]
			fmt.Fprintf(&sb, "%s=[", name)
			for j := q.head; j < q.tail; j++ {
				if j > q.head {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", q.Slot(j))
			}
			sb.WriteByte(']')
		}
	}
	return sb.String()
}
