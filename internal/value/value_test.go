package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNumberCanonicalization(t *testing.T) {
	cases := []struct {
		in   float64
		kind Kind
	}{
		{0, KindInt32},
		{1, KindInt32},
		{-1, KindInt32},
		{math.MaxInt32, KindInt32},
		{math.MinInt32, KindInt32},
		{math.MaxInt32 + 1, KindDouble},
		{math.MinInt32 - 1, KindDouble},
		{0.5, KindDouble},
		{math.NaN(), KindDouble},
		{math.Inf(1), KindDouble},
		{math.Copysign(0, -1), KindDouble}, // -0 must stay double
	}
	for _, c := range cases {
		if got := Number(c.in).Kind(); got != c.kind {
			t.Errorf("Number(%v).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestToBoolean(t *testing.T) {
	table := NewShapeTable()
	cases := []struct {
		v    Value
		want bool
	}{
		{Undefined(), false},
		{Null(), false},
		{Boolean(false), false},
		{Boolean(true), true},
		{Int(0), false},
		{Int(7), true},
		{Double(0), false},
		{Double(math.NaN()), false},
		{Double(0.25), true},
		{Str(""), false},
		{Str("x"), true},
		{Obj(NewObject(table)), true},
	}
	for _, c := range cases {
		if got := c.v.ToBoolean(); got != c.want {
			t.Errorf("ToBoolean(%v %v) = %v, want %v", c.v.Kind(), c.v, got, c.want)
		}
	}
}

func TestToNumberCoercions(t *testing.T) {
	if !math.IsNaN(Undefined().ToNumber()) {
		t.Error("undefined should coerce to NaN")
	}
	if Null().ToNumber() != 0 {
		t.Error("null should coerce to 0")
	}
	if Boolean(true).ToNumber() != 1 || Boolean(false).ToNumber() != 0 {
		t.Error("bool coercion wrong")
	}
	if Str("42").ToNumber() != 42 {
		t.Error(`"42" should coerce to 42`)
	}
	if Str("  3.5 ").ToNumber() != 3.5 {
		t.Error("whitespace-trimmed parse failed")
	}
	if Str("").ToNumber() != 0 {
		t.Error("empty string should coerce to 0")
	}
	if Str("0x10").ToNumber() != 16 {
		t.Error("hex string should coerce to 16")
	}
	if !math.IsNaN(Str("bogus").ToNumber()) {
		t.Error("non-numeric string should coerce to NaN")
	}
}

func TestDoubleToInt32(t *testing.T) {
	cases := []struct {
		in   float64
		want int32
	}{
		{0, 0},
		{1.9, 1},
		{-1.9, -1},
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{4294967296, 0},           // 2^32 wraps to 0
		{4294967297, 1},           // 2^32+1 wraps to 1
		{2147483648, -2147483648}, // 2^31 wraps negative
		{-2147483649, 2147483647},
	}
	for _, c := range cases {
		if got := DoubleToInt32(c.in); got != c.want {
			t.Errorf("DoubleToInt32(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNumberToString(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-17, "-17"},
		{0.5, "0.5"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Infinity"},
		{math.Inf(-1), "-Infinity"},
	}
	for _, c := range cases {
		if got := NumberToString(c.in); got != c.want {
			t.Errorf("NumberToString(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddSemantics(t *testing.T) {
	if got := Add(Int(2), Int(3)); !StrictEquals(got, Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := Add(Str("a"), Int(1)); got.ToStringValue() != "a1" {
		t.Errorf(`"a"+1 = %q`, got)
	}
	if got := Add(Int(1), Str("a")); got.ToStringValue() != "1a" {
		t.Errorf(`1+"a" = %q`, got)
	}
	// Overflow promotes to double, not wraparound.
	got := Add(Int(math.MaxInt32), Int(1))
	if got.Kind() != KindDouble || got.Float() != float64(math.MaxInt32)+1 {
		t.Errorf("MaxInt32+1 = %v (%v)", got, got.Kind())
	}
}

func TestMulNegativeZero(t *testing.T) {
	got := Mul(Int(-1), Int(0))
	if got.Kind() != KindDouble || !math.Signbit(got.Float()) || got.Float() != 0 {
		t.Errorf("-1*0 should be -0 double, got %v kind=%v", got, got.Kind())
	}
}

func TestDivAndMod(t *testing.T) {
	if got := Div(Int(6), Int(3)); !StrictEquals(got, Int(2)) {
		t.Errorf("6/3 = %v", got)
	}
	if got := Div(Int(1), Int(2)); got.Float() != 0.5 {
		t.Errorf("1/2 = %v", got)
	}
	if got := Div(Int(1), Int(0)); !math.IsInf(got.Float(), 1) {
		t.Errorf("1/0 = %v", got)
	}
	if got := Mod(Int(7), Int(3)); !StrictEquals(got, Int(1)) {
		t.Errorf("7%%3 = %v", got)
	}
	if got := Mod(Int(-7), Int(3)); !StrictEquals(got, Int(-1)) {
		t.Errorf("-7%%3 = %v", got)
	}
	if got := Mod(Double(5.5), Int(2)); got.Float() != 1.5 {
		t.Errorf("5.5%%2 = %v", got)
	}
}

func TestStrictAndLooseEquals(t *testing.T) {
	if !StrictEquals(Int(1), Double(1)) {
		t.Error("1 === 1.0 must hold across representations")
	}
	if StrictEquals(Double(math.NaN()), Double(math.NaN())) {
		t.Error("NaN === NaN must be false")
	}
	if StrictEquals(Int(0), Str("0")) {
		t.Error(`0 === "0" must be false`)
	}
	if !LooseEquals(Int(0), Str("0")) {
		t.Error(`0 == "0" must be true`)
	}
	if !LooseEquals(Null(), Undefined()) {
		t.Error("null == undefined must be true")
	}
	if LooseEquals(Null(), Int(0)) {
		t.Error("null == 0 must be false")
	}
	if !LooseEquals(Boolean(true), Int(1)) {
		t.Error("true == 1 must be true")
	}
}

func TestBitwiseOps(t *testing.T) {
	if got := BitAnd(Int(6), Int(3)); !StrictEquals(got, Int(2)) {
		t.Errorf("6&3 = %v", got)
	}
	if got := Shl(Int(1), Int(31)); !StrictEquals(got, Int(math.MinInt32)) {
		t.Errorf("1<<31 = %v", got)
	}
	if got := UShr(Int(-1), Int(0)); got.Float() != 4294967295 {
		t.Errorf("-1>>>0 = %v", got)
	}
	if got := Shr(Int(-8), Int(1)); !StrictEquals(got, Int(-4)) {
		t.Errorf("-8>>1 = %v", got)
	}
	// Shift counts are masked to 5 bits.
	if got := Shl(Int(1), Int(33)); !StrictEquals(got, Int(2)) {
		t.Errorf("1<<33 = %v", got)
	}
}

func TestTypeOf(t *testing.T) {
	table := NewShapeTable()
	fn := NewFunctionObject(table, &Function{Name: "f"})
	cases := []struct {
		v    Value
		want string
	}{
		{Undefined(), "undefined"},
		{Null(), "object"},
		{Boolean(true), "boolean"},
		{Int(1), "number"},
		{Double(1.5), "number"},
		{Str("s"), "string"},
		{Obj(NewObject(table)), "object"},
		{Obj(fn), "function"},
	}
	for _, c := range cases {
		if got := c.v.TypeOf(); got != c.want {
			t.Errorf("TypeOf(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: int32 fast-path arithmetic agrees with float64 arithmetic
// whenever it claims success.
func TestQuickInt32FastPathAgreesWithDouble(t *testing.T) {
	f := func(a, b int32) bool {
		if s, ok := AddInt32(a, b); ok && float64(s) != float64(a)+float64(b) {
			return false
		}
		if d, ok := SubInt32(a, b); ok && float64(d) != float64(a)-float64(b) {
			return false
		}
		if p, ok := MulInt32(a, b); ok && float64(p) != float64(a)*float64(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: generic Add on int32 inputs always equals double addition.
func TestQuickGenericAddMatchesDouble(t *testing.T) {
	f := func(a, b int32) bool {
		got := Add(Int(a), Int(b))
		return got.ToNumber() == float64(a)+float64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ToInt32 of a canonicalized Number round-trips for in-range ints.
func TestQuickNumberRoundTrip(t *testing.T) {
	f := func(a int32) bool {
		v := Number(float64(a))
		return v.IsInt32() && v.Int32() == a && v.ToInt32() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StrictEquals is reflexive for non-NaN values.
func TestQuickStrictEqualsReflexive(t *testing.T) {
	f := func(a int32, s string) bool {
		return StrictEquals(Int(a), Int(a)) && StrictEquals(Str(s), Str(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LooseEquals and StrictEquals are symmetric.
func TestQuickEqualitySymmetry(t *testing.T) {
	mk := func(tag uint8, i int32, s string) Value {
		switch tag % 6 {
		case 0:
			return Int(i)
		case 1:
			return Double(float64(i) / 2)
		case 2:
			return Str(s)
		case 3:
			return Boolean(i&1 == 0)
		case 4:
			return Null()
		default:
			return Undefined()
		}
	}
	f := func(ta, tb uint8, ia, ib int32, sa, sb string) bool {
		a, b := mk(ta, ia, sa), mk(tb, ib, sb)
		return LooseEquals(a, b) == LooseEquals(b, a) &&
			StrictEquals(a, b) == StrictEquals(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: exactly one of a<b, a>b, a==b holds for non-NaN numbers.
func TestQuickCompareTrichotomy(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(a), Int(b)
		lt := Compare(x, y, "<").Bool()
		gt := Compare(x, y, ">").Bool()
		eq := StrictEquals(x, y)
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is consistent with <= being the negation of >.
func TestQuickCompareDuality(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(a), Int(b)
		return Compare(x, y, "<=").Bool() == !Compare(x, y, ">").Bool() &&
			Compare(x, y, ">=").Bool() == !Compare(x, y, "<").Bool()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bitwise ops agree with ECMAScript ToInt32 arithmetic on doubles.
func TestQuickBitopsViaToInt32(t *testing.T) {
	f := func(a float64, b int32) bool {
		got := BitAnd(Double(a), Int(b))
		want := DoubleToInt32(a) & b
		return got.IsInt32() && got.Int32() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
