package value

import "math"

// Generic operator semantics. These are the "runtime calls" the Baseline
// tier emits (paper Figure 4(b): loadProperty, loadArrayValue, add, ...):
// they handle every corner case, which is exactly why they are slow and why
// the FTL tier replaces them with checked fast paths.

// Add implements the JavaScript + operator: string concatenation when either
// operand is (or coerces to) a string, numeric addition otherwise, with the
// int32 fast path and overflow promotion to double.
func Add(a, b Value) Value {
	if a.kind == KindString || b.kind == KindString {
		return Str(a.ToStringValue() + b.ToStringValue())
	}
	if a.kind == KindObject || b.kind == KindObject {
		// Simplified ToPrimitive: arrays and plain objects stringify.
		return Str(a.ToStringValue() + b.ToStringValue())
	}
	if a.kind == KindInt32 && b.kind == KindInt32 {
		if s, ok := AddInt32(a.i, b.i); ok {
			return Int(s)
		}
		return Double(float64(a.i) + float64(b.i))
	}
	return Number(a.ToNumber() + b.ToNumber())
}

// Sub implements the JavaScript - operator.
func Sub(a, b Value) Value {
	if a.kind == KindInt32 && b.kind == KindInt32 {
		if d, ok := SubInt32(a.i, b.i); ok {
			return Int(d)
		}
		return Double(float64(a.i) - float64(b.i))
	}
	return Number(a.ToNumber() - b.ToNumber())
}

// Mul implements the JavaScript * operator.
func Mul(a, b Value) Value {
	if a.kind == KindInt32 && b.kind == KindInt32 {
		if p, ok := MulInt32(a.i, b.i); ok {
			return Int(p)
		}
		return Double(float64(a.i) * float64(b.i))
	}
	return Number(a.ToNumber() * b.ToNumber())
}

// Div implements the JavaScript / operator (always double semantics; engines
// only keep an int32 result when it divides exactly, which we mirror through
// Number's canonicalization).
func Div(a, b Value) Value {
	return Number(a.ToNumber() / b.ToNumber())
}

// Mod implements the JavaScript % operator (C-style fmod semantics).
func Mod(a, b Value) Value {
	if a.kind == KindInt32 && b.kind == KindInt32 && b.i != 0 && !(a.i == math.MinInt32 && b.i == -1) {
		r := a.i % b.i
		if r == 0 && a.i < 0 {
			return Double(math.Copysign(0, -1))
		}
		return Int(r)
	}
	return Number(math.Mod(a.ToNumber(), b.ToNumber()))
}

// Neg implements unary minus.
func Neg(a Value) Value {
	if a.kind == KindInt32 && a.i != 0 && a.i != math.MinInt32 {
		return Int(-a.i)
	}
	return Number(-a.ToNumber())
}

// AddInt32 adds with overflow detection (the FTL fast path; the overflow
// flag result is what the paper's SMP-guarded overflow checks test).
func AddInt32(a, b int32) (int32, bool) {
	s := int64(a) + int64(b)
	if s < math.MinInt32 || s > math.MaxInt32 {
		return 0, false
	}
	return int32(s), true
}

// SubInt32 subtracts with overflow detection.
func SubInt32(a, b int32) (int32, bool) {
	d := int64(a) - int64(b)
	if d < math.MinInt32 || d > math.MaxInt32 {
		return 0, false
	}
	return int32(d), true
}

// MulInt32 multiplies with overflow detection. A zero result with a negative
// operand must be -0, which int32 cannot represent, so it reports overflow —
// the same corner JavaScriptCore deoptimizes on.
func MulInt32(a, b int32) (int32, bool) {
	p := int64(a) * int64(b)
	if p < math.MinInt32 || p > math.MaxInt32 {
		return 0, false
	}
	if p == 0 && (a < 0 || b < 0) {
		return 0, false
	}
	return int32(p), true
}

// Compare evaluates a relational operator; op is one of "<", "<=", ">", ">=".
func Compare(a, b Value, op string) Value {
	if a.kind == KindString && b.kind == KindString {
		switch op {
		case "<":
			return Boolean(a.s < b.s)
		case "<=":
			return Boolean(a.s <= b.s)
		case ">":
			return Boolean(a.s > b.s)
		case ">=":
			return Boolean(a.s >= b.s)
		}
	}
	x, y := a.ToNumber(), b.ToNumber()
	if math.IsNaN(x) || math.IsNaN(y) {
		return Boolean(false)
	}
	switch op {
	case "<":
		return Boolean(x < y)
	case "<=":
		return Boolean(x <= y)
	case ">":
		return Boolean(x > y)
	case ">=":
		return Boolean(x >= y)
	}
	return Boolean(false)
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	an, bn := a.IsNumber(), b.IsNumber()
	if an && bn {
		return a.Float() == b.Float()
	}
	if a.kind != b.kind {
		// Hole never reaches user code; undefined===undefined handled above.
		return false
	}
	switch a.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindString:
		return a.s == b.s
	case KindObject:
		return a.o == b.o
	}
	return false
}

// LooseEquals implements == with the coercions our subset exercises.
func LooseEquals(a, b Value) bool {
	if a.kind == b.kind || (a.IsNumber() && b.IsNumber()) {
		return StrictEquals(a, b)
	}
	if (a.kind == KindNull && b.kind == KindUndefined) || (a.kind == KindUndefined && b.kind == KindNull) {
		return true
	}
	if a.IsNumber() && b.kind == KindString {
		return a.Float() == stringToNumber(b.s)
	}
	if a.kind == KindString && b.IsNumber() {
		return stringToNumber(a.s) == b.Float()
	}
	if a.kind == KindBool {
		return LooseEquals(Number(a.ToNumber()), b)
	}
	if b.kind == KindBool {
		return LooseEquals(a, Number(b.ToNumber()))
	}
	if a.kind == KindObject && (b.IsNumber() || b.kind == KindString) {
		return LooseEquals(Str(a.ToStringValue()), b)
	}
	if b.kind == KindObject && (a.IsNumber() || a.kind == KindString) {
		return LooseEquals(a, Str(b.ToStringValue()))
	}
	return false
}

// BitAnd implements &.
func BitAnd(a, b Value) Value { return Int(a.ToInt32() & b.ToInt32()) }

// BitOr implements |.
func BitOr(a, b Value) Value { return Int(a.ToInt32() | b.ToInt32()) }

// BitXor implements ^.
func BitXor(a, b Value) Value { return Int(a.ToInt32() ^ b.ToInt32()) }

// BitNot implements unary ~.
func BitNot(a Value) Value { return Int(^a.ToInt32()) }

// Shl implements <<.
func Shl(a, b Value) Value { return Int(a.ToInt32() << (b.ToUint32() & 31)) }

// Shr implements the sign-propagating >>.
func Shr(a, b Value) Value { return Int(a.ToInt32() >> (b.ToUint32() & 31)) }

// UShr implements the zero-fill >>>. The result is a uint32 and may need the
// double representation — one of the classic JS overflow corners.
func UShr(a, b Value) Value {
	u := a.ToUint32() >> (b.ToUint32() & 31)
	return Number(float64(u))
}
