package value

import (
	"testing"
	"testing/quick"
)

func TestShapeTransitionsShared(t *testing.T) {
	table := NewShapeTable()
	a := NewObject(table)
	b := NewObject(table)
	a.Set("x", Int(1))
	a.Set("y", Int(2))
	b.Set("x", Int(10))
	b.Set("y", Int(20))
	if a.Shape != b.Shape {
		t.Fatal("objects built with the same property order must share a shape")
	}
	c := NewObject(table)
	c.Set("y", Int(1))
	c.Set("x", Int(2))
	if c.Shape == a.Shape {
		t.Fatal("different property order must yield a different shape")
	}
	if a.Shape.Lookup("x") != 0 || a.Shape.Lookup("y") != 1 {
		t.Fatalf("offsets: x=%d y=%d", a.Shape.Lookup("x"), a.Shape.Lookup("y"))
	}
	if a.Shape.Lookup("z") != -1 {
		t.Fatal("missing property must report -1")
	}
}

func TestShapeKeysOrder(t *testing.T) {
	table := NewShapeTable()
	o := NewObject(table)
	o.Set("a", Int(1))
	o.Set("b", Int(2))
	o.Set("c", Int(3))
	keys := o.Shape.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys() = %v", keys)
	}
}

func TestPropertyGetSet(t *testing.T) {
	table := NewShapeTable()
	o := NewObject(table)
	if !o.Get("missing").IsUndefined() {
		t.Fatal("missing property must be undefined")
	}
	o.Set("p", Str("v"))
	if o.Get("p").ToStringValue() != "v" {
		t.Fatal("property read-back failed")
	}
	o.Set("p", Int(9)) // overwrite must not transition
	s := o.Shape
	o.Set("p", Int(10))
	if o.Shape != s {
		t.Fatal("overwriting must not change shape")
	}
	if !StrictEquals(o.Get("p"), Int(10)) {
		t.Fatal("overwrite lost")
	}
}

func TestArrayElongationAndHoles(t *testing.T) {
	table := NewShapeTable()
	a := NewArray(table, 0)
	a.SetElement(0, Int(1))
	a.SetElement(5, Int(6)) // creates holes 1..4
	if a.Length != 6 {
		t.Fatalf("Length = %d, want 6", a.Length)
	}
	if !StrictEquals(a.Get("length"), Int(6)) {
		t.Fatal("length property wrong")
	}
	if !a.GetElement(3).IsUndefined() {
		t.Fatal("hole must read as undefined")
	}
	if !a.HasHoleAt(3) {
		t.Fatal("HasHoleAt must see the hole")
	}
	if a.HasHoleAt(0) || a.HasHoleAt(5) {
		t.Fatal("populated elements are not holes")
	}
	if !a.GetElement(100).IsUndefined() {
		t.Fatal("out of bounds must read as undefined")
	}
	if !a.GetElement(-1).IsUndefined() {
		t.Fatal("negative index must read as undefined")
	}
}

func TestArrayLengthTruncation(t *testing.T) {
	table := NewShapeTable()
	a := NewArray(table, 4)
	for i := 0; i < 4; i++ {
		a.SetElement(i, Int(int32(i)))
	}
	a.Set("length", Int(2))
	if a.Length != 2 {
		t.Fatalf("Length = %d", a.Length)
	}
	if !a.GetElement(3).IsUndefined() {
		t.Fatal("truncated element must be gone")
	}
}

func TestArrayPushPop(t *testing.T) {
	table := NewShapeTable()
	a := NewArray(table, 0)
	if n := a.Push(Int(1)); n != 1 {
		t.Fatalf("push returned %d", n)
	}
	a.Push(Int(2))
	if v := a.Pop(); !StrictEquals(v, Int(2)) {
		t.Fatalf("pop = %v", v)
	}
	if a.Length != 1 {
		t.Fatalf("Length = %d", a.Length)
	}
	a.Pop()
	if v := a.Pop(); !v.IsUndefined() {
		t.Fatalf("pop of empty = %v", v)
	}
}

func TestArrayPropertiesCoexistWithElements(t *testing.T) {
	table := NewShapeTable()
	a := NewArray(table, 2)
	a.Set("tag", Str("t"))
	a.SetElement(0, Int(5))
	if a.Get("tag").ToStringValue() != "t" {
		t.Fatal("named property lost on array")
	}
	if !StrictEquals(a.GetElement(0), Int(5)) {
		t.Fatal("element lost")
	}
}

func TestEnvironmentCapture(t *testing.T) {
	outer := NewEnvironment(nil, 2)
	inner := NewEnvironment(outer, 1)
	outer.Slots[1].V = Int(42)
	if got := inner.At(1, 1).V; !StrictEquals(got, Int(42)) {
		t.Fatalf("At(1,1) = %v", got)
	}
	inner.At(1, 1).V = Int(43) // mutation through the cell is shared
	if got := outer.Slots[1].V; !StrictEquals(got, Int(43)) {
		t.Fatalf("shared cell mutation lost: %v", got)
	}
}

// Property: after any sequence of SetElement at indices < 64, GetElement
// returns the last written value and Length is 1 + max index written.
func TestQuickArraySetGet(t *testing.T) {
	table := NewShapeTable()
	f := func(writes []uint8) bool {
		a := NewArray(table, 0)
		last := map[int]int32{}
		maxIdx := -1
		for n, w := range writes {
			idx := int(w % 64)
			a.SetElement(idx, Int(int32(n)))
			last[idx] = int32(n)
			if idx > maxIdx {
				maxIdx = idx
			}
		}
		if a.Length != maxIdx+1 {
			return false
		}
		for idx, want := range last {
			if !StrictEquals(a.GetElement(idx), Int(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shape lookup agrees with a plain map for any property sequence.
func TestQuickShapeLookupMatchesMap(t *testing.T) {
	table := NewShapeTable()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	f := func(seq []uint8) bool {
		o := NewObject(table)
		ref := map[string]Value{}
		for n, s := range seq {
			key := names[int(s)%len(names)]
			v := Int(int32(n))
			o.Set(key, v)
			ref[key] = v
		}
		for k, want := range ref {
			if !StrictEquals(o.Get(k), want) {
				return false
			}
		}
		return len(ref) == o.Shape.NumSlots
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
