package value

import (
	"strings"
	"testing"
)

// TestSharedHeapAddresses checks the address map: every structure lands above
// SharedBase, counters get disjoint lines, map stripes are line-spaced, and
// queue index words never share a line with the ring storage.
func TestSharedHeapAddresses(t *testing.T) {
	h := NewSharedHeap()
	a := h.DeclareCounter("a")
	b := h.DeclareCounter("b")
	m := h.DeclareMap("m", 4)
	q := h.DeclareQueue("q", 16)

	if a.Addr() < SharedBase {
		t.Errorf("counter below SharedBase: %#x", a.Addr())
	}
	if a.Addr()/sharedLine == b.Addr()/sharedLine {
		t.Errorf("counters a and b share a line: %#x %#x", a.Addr(), b.Addr())
	}
	seen := map[uint64]string{a.Addr() / sharedLine: "a", b.Addr() / sharedLine: "b"}
	for s := 0; s < m.Stripes; s++ {
		line := m.StripeAddr(s) / sharedLine
		if prev, ok := seen[line]; ok {
			t.Errorf("map stripe %d shares line %#x with %s", s, line, prev)
		}
		seen[line] = "stripe"
	}
	for _, addr := range []uint64{q.HeadAddr(), q.TailAddr(), q.SlotAddr(0)} {
		line := addr / sharedLine
		if prev, ok := seen[line]; ok {
			t.Errorf("queue word %#x shares line with %s", addr, prev)
		}
		seen[line] = "queue"
	}
	if q.HeadAddr()/sharedLine == q.TailAddr()/sharedLine {
		t.Error("queue head and tail share a line (false sharing between producers and consumers)")
	}
}

// TestSharedHeapDeterminism checks two identically declared heaps produce
// identical addresses and snapshots — the schedule-sweep oracle depends on
// re-runs seeing the same address stream.
func TestSharedHeapDeterminism(t *testing.T) {
	build := func() *SharedHeap {
		h := NewSharedHeap()
		h.DeclareCounter("hits")
		h.DeclareMap("tab", 8)
		h.DeclareQueue("work", 32)
		return h
	}
	h1, h2 := build(), build()
	if h1.Counter("hits").Addr() != h2.Counter("hits").Addr() {
		t.Error("counter addresses differ across identical declarations")
	}
	if h1.Map("tab").StripeAddr(3) != h2.Map("tab").StripeAddr(3) {
		t.Error("stripe addresses differ across identical declarations")
	}
	h1.Counter("hits").Value = 7
	h2.Counter("hits").Value = 7
	h1.Map("tab").Set("k1", 3)
	h2.Map("tab").Set("k1", 3)
	h1.Queue("work").Push(5)
	h2.Queue("work").Push(5)
	if s1, s2 := h1.Snapshot(), h2.Snapshot(); s1 != s2 {
		t.Errorf("snapshots differ:\n%s\n%s", s1, s2)
	}
}

// TestSharedMapCanonicalZero checks that storing zero equals deleting: the
// snapshot must not distinguish "never written" from "written then undone".
func TestSharedMapCanonicalZero(t *testing.T) {
	h := NewSharedHeap()
	m := h.DeclareMap("m", 2)
	before := h.Snapshot()
	m.Set("x", 9)
	m.Set("x", 0)
	if after := h.Snapshot(); after != before {
		t.Errorf("zeroed key still visible: %q vs %q", after, before)
	}
	if m.StripeFor("x") != m.StripeFor("x") {
		t.Error("stripe hash unstable")
	}
}

// TestSharedQueueRing checks FIFO order, bounded capacity, and the absolute
// index undo hooks.
func TestSharedQueueRing(t *testing.T) {
	h := NewSharedHeap()
	q := h.DeclareQueue("q", 4)
	for i := int64(1); i <= 4; i++ {
		if !q.Push(i * 10) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.Push(99) {
		t.Error("push accepted beyond capacity")
	}
	if v, ok := q.Pop(); !ok || v != 10 {
		t.Errorf("pop = %d,%v want 10,true", v, ok)
	}
	if !q.Push(50) {
		t.Error("push rejected after pop freed a slot")
	}
	// Undo: roll the push back by restoring tail and the slot.
	tail := q.Tail()
	old := q.Slot(tail - 1)
	q.SetSlot(tail-1, 0)
	q.SetTail(tail - 1)
	q.SetSlot(tail-1, old) // restore the overwritten slot content
	want := "q=[20,30,40]"
	if got := h.Snapshot(); !strings.Contains(got, want) {
		t.Errorf("after undo, snapshot = %q, want contains %q", got, want)
	}
}
