package value

// Hidden classes ("shapes" in the paper's terminology, "structures" in
// JavaScriptCore) describe an object's property layout. Objects sharing the
// same creation history share a shape, which is what makes the FTL tier's
// property checks (compare one shape pointer, then load at a fixed offset)
// possible. Shape transitions form a tree rooted at an empty shape.

// Shape is an immutable node in the hidden-class transition tree.
type Shape struct {
	ID          uint32
	Parent      *Shape
	Key         string // property added by this transition ("" at the root)
	Offset      int    // slot index of Key
	NumSlots    int
	transitions map[string]*Shape
	table       map[string]int // lazily built full name->offset table
}

// WriteHook observes heap mutations before they happen, receiving enough
// state to undo them. The HTM simulator installs one while a transaction is
// open so that every write — whether performed by optimized FTL code, the
// Baseline tier, or a builtin called from inside the transaction — lands in
// the transactional write set and the undo log.
type WriteHook interface {
	// OnSlotWrite fires before property slot off is overwritten.
	OnSlotWrite(o *Object, off int, old Value)
	// OnPropAdd fires before a shape-transitioning property add.
	OnPropAdd(o *Object, oldShape *Shape)
	// OnElemWrite fires before element idx is written. old is the previous
	// raw element (possibly a hole); oldExtent and oldLen describe the
	// element store before any elongation.
	OnElemWrite(o *Object, idx int, old Value, oldExtent, oldLen int)
	// OnTruncate fires before the array length shrinks, with the removed
	// tail (so rollback can restore it) and the previous length.
	OnTruncate(o *Object, removed []Value, oldLen int)
}

// ShapeTable allocates shape IDs and owns the root of a transition tree.
// A VM instance has exactly one table so shape identity is comparable.
// Its Hook, when non-nil, observes all mutations of objects created from it.
type ShapeTable struct {
	nextID uint32
	Root   *Shape
	Hook   WriteHook
}

// NewShapeTable returns a table with a fresh empty root shape.
func NewShapeTable() *ShapeTable {
	t := &ShapeTable{}
	t.Root = &Shape{ID: t.allocID()}
	return t
}

func (t *ShapeTable) allocID() uint32 {
	t.nextID++
	return t.nextID
}

// Transition returns the shape reached from s by adding key, creating it on
// first use. The result is cached so repeated object construction with the
// same property order converges on a single shape — the monomorphism the
// FTL property checks rely on.
func (t *ShapeTable) Transition(s *Shape, key string) *Shape {
	if next, ok := s.transitions[key]; ok {
		return next
	}
	next := &Shape{
		ID:       t.allocID(),
		Parent:   s,
		Key:      key,
		Offset:   s.NumSlots,
		NumSlots: s.NumSlots + 1,
	}
	if s.transitions == nil {
		s.transitions = make(map[string]*Shape, 4)
	}
	s.transitions[key] = next
	return next
}

// Path returns the transition keys that reach s from its table's root, in
// transition order. Because shapes are immutable nodes of a transition tree,
// the path is a table-independent identity: replaying it against any table
// (Replay) yields the analogous shape. The serving layer uses this to
// relocate shape references between isolates.
func (s *Shape) Path() []string {
	path := make([]string, 0, s.NumSlots)
	for cur := s; cur != nil && cur.Key != ""; cur = cur.Parent {
		path = append(path, cur.Key)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Replay walks a transition path from the table's root, creating any missing
// shapes, and returns the shape it reaches. Replay(s.Path()) on another table
// returns that table's analogue of s; on s's own table it returns s itself.
func (t *ShapeTable) Replay(path []string) *Shape {
	s := t.Root
	for _, key := range path {
		s = t.Transition(s, key)
	}
	return s
}

// Lookup returns the slot offset of key in s, or -1 when absent.
func (s *Shape) Lookup(key string) int {
	if s.table == nil {
		s.buildTable()
	}
	if off, ok := s.table[key]; ok {
		return off
	}
	return -1
}

func (s *Shape) buildTable() {
	s.table = make(map[string]int, s.NumSlots)
	for cur := s; cur != nil && cur.Key != ""; cur = cur.Parent {
		if _, ok := s.table[cur.Key]; !ok {
			s.table[cur.Key] = cur.Offset
		}
	}
}

// Keys returns the property names of s in insertion order.
func (s *Shape) Keys() []string {
	keys := make([]string, s.NumSlots)
	for cur := s; cur != nil && cur.Key != ""; cur = cur.Parent {
		keys[cur.Offset] = cur.Key
	}
	return keys
}

// Object is a JavaScript object: shape-described named properties plus, for
// arrays, a dense element store with holes and automatic elongation.
type Object struct {
	Shape *Shape
	Slots []Value

	// Array state. IsArray objects expose .length and indexed elements.
	IsArray  bool
	Elements []Value // KindHole marks absent elements
	Length   int     // JS array length; >= populated extent

	// Fn is non-nil for callable objects.
	Fn *Function

	// Class is a diagnostic label ("Object", "Array", "Function", "Math").
	Class string

	table *ShapeTable
}

// NewObject creates a plain object with the table's root shape.
func NewObject(t *ShapeTable) *Object {
	return &Object{Shape: t.Root, Class: "Object", table: t}
}

// NewArray creates an array of the given length filled with holes.
func NewArray(t *ShapeTable, length int) *Object {
	o := &Object{Shape: t.Root, Class: "Array", IsArray: true, table: t}
	if length > 0 {
		o.Elements = make([]Value, length)
		for i := range o.Elements {
			o.Elements[i] = Hole()
		}
		o.Length = length
	}
	return o
}

// NewFunctionObject wraps fn in a callable object.
func NewFunctionObject(t *ShapeTable, fn *Function) *Object {
	return &Object{Shape: t.Root, Class: "Function", Fn: fn, table: t}
}

// Table returns the shape table this object belongs to.
func (o *Object) Table() *ShapeTable { return o.table }

// Get returns the named property, or undefined when absent. Array "length"
// is synthesized from the element store.
func (o *Object) Get(key string) Value {
	if o.IsArray && key == "length" {
		return Int(int32(o.Length))
	}
	if off := o.Shape.Lookup(key); off >= 0 {
		return o.Slots[off]
	}
	return Undefined()
}

// Has reports whether the object has the named property.
func (o *Object) Has(key string) bool {
	if o.IsArray && key == "length" {
		return true
	}
	return o.Shape.Lookup(key) >= 0
}

// Set stores a named property, transitioning the shape when the property is
// new. Setting array "length" truncates or elongates the element store.
func (o *Object) Set(key string, v Value) {
	if o.IsArray && key == "length" {
		o.SetLength(int(v.ToInt32()))
		return
	}
	if off := o.Shape.Lookup(key); off >= 0 {
		if h := o.hook(); h != nil {
			h.OnSlotWrite(o, off, o.Slots[off])
		}
		o.Slots[off] = v
		return
	}
	if h := o.hook(); h != nil {
		h.OnPropAdd(o, o.Shape)
	}
	o.Shape = o.table.Transition(o.Shape, key)
	o.Slots = append(o.Slots, v)
}

func (o *Object) hook() WriteHook {
	if o.table == nil {
		return nil
	}
	return o.table.Hook
}

// OffsetOf returns the slot offset of key, or -1. Used by inline caches.
func (o *Object) OffsetOf(key string) int { return o.Shape.Lookup(key) }

// GetSlot reads property storage directly; used by specialized tier code
// after a property check has validated the shape.
func (o *Object) GetSlot(off int) Value { return o.Slots[off] }

// SetSlot writes property storage directly after a property check.
func (o *Object) SetSlot(off int, v Value) {
	if h := o.hook(); h != nil {
		h.OnSlotWrite(o, off, o.Slots[off])
	}
	o.Slots[off] = v
}

// GetElement returns element i, mapping holes and out-of-bounds accesses to
// undefined — the semantics the Baseline tier's loadArrayValue runtime call
// provides (paper §IV-B: "it never crashes").
func (o *Object) GetElement(i int) Value {
	if i < 0 || i >= len(o.Elements) {
		return Undefined()
	}
	e := o.Elements[i]
	if e.IsHole() {
		return Undefined()
	}
	return e
}

// ElementRaw returns the element including the hole marker, for in-bounds i.
func (o *Object) ElementRaw(i int) Value { return o.Elements[i] }

// HasHoleAt reports whether in-bounds element i is a hole.
func (o *Object) HasHoleAt(i int) bool {
	return i >= 0 && i < len(o.Elements) && o.Elements[i].IsHole()
}

// InBounds reports whether i is within the populated element store.
func (o *Object) InBounds(i int) bool { return i >= 0 && i < len(o.Elements) }

// ElementCount returns the populated element-store length (a store at
// exactly this index is an append, not an out-of-bounds miss).
func (o *Object) ElementCount() int { return len(o.Elements) }

// SetElement stores element i, elongating the array as JavaScript does when
// i is past the end. Negative indices are ignored (our subset does not model
// sparse named-index properties).
func (o *Object) SetElement(i int, v Value) {
	if i < 0 {
		return
	}
	if h := o.hook(); h != nil {
		old := Hole()
		if i < len(o.Elements) {
			old = o.Elements[i]
		}
		h.OnElemWrite(o, i, old, len(o.Elements), o.Length)
	}
	if i >= len(o.Elements) {
		for len(o.Elements) < i {
			o.Elements = append(o.Elements, Hole())
		}
		o.Elements = append(o.Elements, v)
	} else {
		o.Elements[i] = v
	}
	if i+1 > o.Length {
		o.Length = i + 1
	}
}

// RestoreExtent rolls the element store back to extent/length (undo support;
// only the HTM simulator should call this).
func (o *Object) RestoreExtent(extent, length int) {
	if extent < len(o.Elements) {
		o.Elements = o.Elements[:extent]
	}
	o.Length = length
}

// RestoreShape rolls back a property-add transition (undo support).
func (o *Object) RestoreShape(s *Shape) {
	o.Shape = s
	if s.NumSlots < len(o.Slots) {
		o.Slots = o.Slots[:s.NumSlots]
	}
}

// RestoreElement writes an element without firing the hook (undo support).
func (o *Object) RestoreElement(i int, v Value) {
	if i >= 0 && i < len(o.Elements) {
		o.Elements[i] = v
	}
}

// RestoreSlot writes a slot without firing the hook (undo support).
func (o *Object) RestoreSlot(off int, v Value) {
	if off >= 0 && off < len(o.Slots) {
		o.Slots[off] = v
	}
}

// RestoreTail re-appends a truncated tail (undo support).
func (o *Object) RestoreTail(removed []Value, oldLen int) {
	o.Elements = append(o.Elements, removed...)
	o.Length = oldLen
}

// SetLength adjusts the array length, truncating elements when shrinking.
func (o *Object) SetLength(n int) {
	if n < 0 {
		n = 0
	}
	if n < len(o.Elements) {
		if h := o.hook(); h != nil {
			removed := make([]Value, len(o.Elements)-n)
			copy(removed, o.Elements[n:])
			h.OnTruncate(o, removed, o.Length)
		}
		o.Elements = o.Elements[:n]
	} else if n > o.Length {
		if h := o.hook(); h != nil {
			h.OnElemWrite(o, n-1, Hole(), len(o.Elements), o.Length)
		}
	}
	o.Length = n
}

// Push appends a value (Array.prototype.push).
func (o *Object) Push(v Value) int {
	o.SetElement(o.Length, v)
	return o.Length
}

// Pop removes and returns the last element (Array.prototype.pop).
func (o *Object) Pop() Value {
	if o.Length == 0 {
		return Undefined()
	}
	v := o.GetElement(o.Length - 1)
	o.SetLength(o.Length - 1)
	return v
}
