// Package value implements the dynamic value model of the JavaScript subset:
// tagged values, numeric semantics (int32 fast path over IEEE doubles, as in
// JavaScriptCore), hidden-class objects, elongating arrays with holes, and
// functions with closure environments.
//
// Everything a program can observe lives here; the tiers (interpreter,
// Baseline, DFG, FTL) and the NoMap transformation all operate on these
// values, so differential tests across tiers compare like with like.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the representations a Value can take.
type Kind uint8

const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindInt32
	KindDouble
	KindString
	KindObject
	// KindHole marks an absent array element. It is engine-internal: reading
	// a hole through any user-visible path yields undefined.
	KindHole
)

// String returns the engine-internal name of the kind.
func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt32:
		return "int32"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	case KindHole:
		return "hole"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a dynamically typed JavaScript value. The zero Value is undefined.
type Value struct {
	kind Kind
	b    bool
	i    int32
	f    float64
	s    string
	o    *Object
}

// Undefined returns the undefined value.
func Undefined() Value { return Value{kind: KindUndefined} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Hole returns the engine-internal absent-element marker.
func Hole() Value { return Value{kind: KindHole} }

// Boolean returns a boolean value.
func Boolean(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an int32-represented number.
func Int(i int32) Value { return Value{kind: KindInt32, i: i} }

// Double returns a double-represented number without int32 canonicalization.
func Double(f float64) Value { return Value{kind: KindDouble, f: f} }

// Number returns a numeric value, canonicalized to the int32 representation
// when the double is integral, in range, and not negative zero — mirroring
// the boxing discipline of JavaScriptCore.
func Number(f float64) Value {
	if f == math.Trunc(f) && f >= math.MinInt32 && f <= math.MaxInt32 && !math.IsInf(f, 0) {
		if f == 0 && math.Signbit(f) {
			return Double(f)
		}
		return Int(int32(f))
	}
	return Double(f)
}

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Obj returns an object value. A nil object yields null.
func Obj(o *Object) Value {
	if o == nil {
		return Null()
	}
	return Value{kind: KindObject, o: o}
}

// Kind reports the representation of v.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsHole reports whether v is the internal absent-element marker.
func (v Value) IsHole() bool { return v.kind == KindHole }

// IsNumber reports whether v is numeric (int32 or double representation).
func (v Value) IsNumber() bool { return v.kind == KindInt32 || v.kind == KindDouble }

// IsInt32 reports whether v uses the int32 fast-path representation.
func (v Value) IsInt32() bool { return v.kind == KindInt32 }

// IsString reports whether v is a string.
func (v Value) IsString() bool { return v.kind == KindString }

// IsObject reports whether v is an object.
func (v Value) IsObject() bool { return v.kind == KindObject }

// IsCallable reports whether v is a callable object.
func (v Value) IsCallable() bool { return v.kind == KindObject && v.o.Fn != nil }

// Bool returns the boolean payload; v must be a bool.
func (v Value) Bool() bool { return v.b }

// Int32 returns the int32 payload; v must be an int32.
func (v Value) Int32() int32 { return v.i }

// Float returns the numeric payload as a float64 for either numeric kind.
func (v Value) Float() float64 {
	if v.kind == KindInt32 {
		return float64(v.i)
	}
	return v.f
}

// StringVal returns the string payload; v must be a string.
func (v Value) StringVal() string { return v.s }

// Object returns the object payload, or nil when v is not an object.
func (v Value) Object() *Object {
	if v.kind != KindObject {
		return nil
	}
	return v.o
}

// ToBoolean applies JavaScript truthiness.
func (v Value) ToBoolean() bool {
	switch v.kind {
	case KindUndefined, KindNull, KindHole:
		return false
	case KindBool:
		return v.b
	case KindInt32:
		return v.i != 0
	case KindDouble:
		return v.f != 0 && !math.IsNaN(v.f)
	case KindString:
		return v.s != ""
	case KindObject:
		return true
	}
	return false
}

// ToNumber applies the JavaScript ToNumber coercion.
func (v Value) ToNumber() float64 {
	switch v.kind {
	case KindUndefined, KindHole:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindInt32:
		return float64(v.i)
	case KindDouble:
		return v.f
	case KindString:
		return stringToNumber(v.s)
	case KindObject:
		// Objects coerce via a simplified ToPrimitive: arrays join, other
		// objects are NaN. Sufficient for the numeric workloads we model.
		if v.o.IsArray && v.o.Length == 0 {
			return 0
		}
		if v.o.IsArray && v.o.Length == 1 {
			return v.o.GetElement(0).ToNumber()
		}
		return math.NaN()
	}
	return math.NaN()
}

func stringToNumber(s string) float64 {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0
	}
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		if u, err := strconv.ParseUint(t[2:], 16, 64); err == nil {
			return float64(u)
		}
		return math.NaN()
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// ToInt32 applies the JavaScript ToInt32 (modulo 2^32) conversion.
func (v Value) ToInt32() int32 {
	if v.kind == KindInt32 {
		return v.i
	}
	return DoubleToInt32(v.ToNumber())
}

// ToUint32 applies the JavaScript ToUint32 conversion.
func (v Value) ToUint32() uint32 {
	return uint32(v.ToInt32())
}

// DoubleToInt32 converts per the ECMAScript ToInt32 algorithm.
func DoubleToInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(uint64(int64(math.Trunc(f)))))
}

// ToStringValue applies the JavaScript ToString coercion.
func (v Value) ToStringValue() string {
	switch v.kind {
	case KindUndefined, KindHole:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt32:
		return strconv.FormatInt(int64(v.i), 10)
	case KindDouble:
		return NumberToString(v.f)
	case KindString:
		return v.s
	case KindObject:
		if v.o.IsArray {
			parts := make([]string, v.o.Length)
			for i := 0; i < v.o.Length; i++ {
				e := v.o.GetElement(i)
				if e.IsUndefined() || e.IsNull() {
					parts[i] = ""
				} else {
					parts[i] = e.ToStringValue()
				}
			}
			return strings.Join(parts, ",")
		}
		if v.o.Fn != nil {
			return "function " + v.o.Fn.Name + "() { [code] }"
		}
		return "[object Object]"
	}
	return "undefined"
}

// NumberToString formats a double the way JavaScript does for the common
// cases exercised by the workloads.
func NumberToString(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e21 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// TypeOf returns the JavaScript typeof string.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindUndefined, KindHole:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindInt32, KindDouble:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		if v.o.Fn != nil {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// String implements fmt.Stringer with the JavaScript ToString conversion.
func (v Value) String() string { return v.ToStringValue() }

// SameObject reports whether both values reference the same object identity.
func (v Value) SameObject(w Value) bool {
	return v.kind == KindObject && w.kind == KindObject && v.o == w.o
}
