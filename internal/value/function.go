package value

// Function is the runtime representation of a callable. User functions carry
// opaque references to their AST and per-tier compiled artifacts (set by the
// bytecode compiler and the JIT tiers; typed as any to keep this package at
// the bottom of the dependency graph). Native functions implement builtins.
type Function struct {
	Name      string
	NumParams int

	// Decl is the *ast.FunctionLiteral for user functions.
	Decl any
	// Code is the *bytecode.Function once compiled.
	Code any
	// Tier artifacts, managed by the VM: profile data, DFG/FTL code.
	Meta any

	// Native implements builtin functions.
	Native func(this Value, args []Value) (Value, error)

	// Irrevocable marks natives with effects that cannot be rolled back
	// (I/O such as print). Calling one inside a hardware transaction aborts
	// the transaction first (paper §V-A: irrevocable events abort).
	Irrevocable bool

	// Env is the defining closure environment for user functions.
	Env *Environment

	// UsesClosure reports that the function captures or provides captured
	// variables; such functions are pinned to the lower tiers (the JIT
	// declines to promote them, a common engine bailout).
	UsesClosure bool
}

// IsNative reports whether the function is a builtin.
func (f *Function) IsNative() bool { return f.Native != nil }

// Cell boxes a captured variable so closures share mutations.
type Cell struct{ V Value }

// Environment is a chain of closure scopes with boxed slots.
type Environment struct {
	Parent *Environment
	Slots  []*Cell
}

// NewEnvironment creates an environment with n boxed slots under parent.
func NewEnvironment(parent *Environment, n int) *Environment {
	e := &Environment{Parent: parent, Slots: make([]*Cell, n)}
	for i := range e.Slots {
		e.Slots[i] = &Cell{V: Undefined()}
	}
	return e
}

// At returns the cell at (depth, index): depth 0 is e itself.
func (e *Environment) At(depth, index int) *Cell {
	for d := 0; d < depth; d++ {
		e = e.Parent
	}
	return e.Slots[index]
}
