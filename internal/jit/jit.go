// Package jit drives the speculative tiers: it compiles hot functions with
// the DFG or FTL pipeline (under the configured NoMap architecture), runs
// them on the machine, and routes the two recovery paths — OSR exits into
// the Baseline tier and transaction-abort recovery — through the
// abort-recovery governor, which owns all post-abort policy (per-site abort
// ledgers, surgical SMP restoration, the §V-C footprint retreat with
// probationary re-promotion, and irrevocable-abort handling).
package jit

import (
	"errors"

	"nomap/internal/bytecode"
	"nomap/internal/codecache"
	"nomap/internal/core"
	"nomap/internal/dfg"
	"nomap/internal/frame"
	"nomap/internal/ftl"
	"nomap/internal/governor"
	"nomap/internal/htm"
	"nomap/internal/interp"
	"nomap/internal/ir"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// codeKey identifies one cached artifact: a function compiled either at its
// invocation entry (osr == -1) or as an OSR artifact entering at loop header
// osr. The same function can hold both simultaneously.
type codeKey struct {
	fn  *bytecode.Function
	osr int
}

// Backend implements vm.JITBackend.
type Backend struct {
	mach     *machine.Machine
	code     map[codeKey]*unit
	gov      *governor.Governor
	arch     vm.Arch
	passHook func(pass string, f *ir.Func)

	// inline enables speculative call inlining in the DFG and FTL tiers
	// (from vm.Config.DisableInlining); profiles resolves callee feedback
	// for the inliner (the owning VM's ProfileFor).
	inline   bool
	profiles func(*bytecode.Function) *profile.FunctionProfile

	// noIC (from vm.Config.DisableIC) drops every dispatch plan at
	// expansion time, keeping polymorphic sites on the generic path.
	noIC bool

	// osrFailed records (function, header) pairs whose OSR compile failed.
	// An unsupported OSR region says nothing about the whole function — the
	// invocation-entry compile may still succeed — so the failure is scoped
	// here instead of profile.JITUnsupported.
	osrFailed map[codeKey]bool

	// cache, when set, is the serving layer's shared compiled-code cache;
	// realm is the owning VM's naming context used to relocate cached
	// artifacts into it, and policy rides in the cache key so isolates under
	// different tier-up policies never share entries.
	cache  *codecache.Cache
	realm  codecache.Realm
	policy profile.Policy

	// sink, when set alongside cache, moves tier-up compilation off this
	// goroutine: a cache miss is offered to the sink (the serving pool's
	// background compile queue) instead of filling inline, and execution
	// declines to the current-best tier.
	sink func(profile.Tier)
}

type unit struct {
	tier    profile.Tier
	f       *ir.Func
	txLevel core.TxLevel
}

// mainKey keys the invocation-entry artifact of fn.
func mainKey(fn *bytecode.Function) codeKey { return codeKey{fn: fn, osr: -1} }

// Attach creates a backend for v (selecting lightweight ROT or heavyweight
// RTM per the configured architecture) and installs it.
func Attach(v *vm.VM) *Backend {
	cfg := htm.ROTConfig()
	if v.Config().Arch.HeavyweightHTM() {
		cfg = htm.RTMConfig()
	}
	b := &Backend{
		mach:      machine.New(v, cfg),
		code:      make(map[codeKey]*unit),
		osrFailed: make(map[codeKey]bool),
		gov:       governor.New(governor.DefaultPolicy(!v.Config().Arch.HeavyweightHTM())),
		arch:      v.Config().Arch,
		realm:     v,
		policy:    v.Config().Policy,
		inline:    !v.Config().DisableInlining,
		profiles:  v.ProfileFor,
		noIC:      v.Config().DisableIC,
	}
	if v.Config().DisableBoxing {
		// A/B: the fat two-word value layout doubles the modeled heap stride,
		// so transactions span more write lines for the same logical writes.
		b.mach.SetFatValues(true)
	}
	v.SetJIT(b)
	return b
}

// SetCodeCache connects the backend to a shared compiled-code cache (nil
// disconnects it). While connected, speculative-tier compiles go through the
// cache: a hit binds another isolate's artifact instead of compiling. The
// cache is bypassed whenever a pass hook is installed, since hooks observe
// compilation itself and a bound artifact never compiles.
func (b *Backend) SetCodeCache(c *codecache.Cache) { b.cache = c }

// errDeferred is the internal sentinel of the deferred-compile path: the
// artifact is not in the cache yet, a background compile has been offered to
// the sink, and the request should keep running at its current-best tier. It
// never escapes the backend — Execute and ExecuteOSR translate it into a
// clean handled=false decline without charging a compile failure or pinning
// the function.
var errDeferred = errors.New("jit: compile deferred to background queue")

// SetCompileSink installs (or with nil removes) the deferred-compile sink.
// While a sink and a shared cache are both connected, speculative-tier cache
// misses do not compile on the calling goroutine: the backend offers the
// tier to the sink — the serving pool's bounded background compile queue —
// and declines execution, so the request proceeds at the tier it already
// has. Cache hits bind as usual; uncacheable and unrelocatable keys compile
// locally, since no background fill could ever serve them.
func (b *Backend) SetCompileSink(f func(profile.Tier)) { b.sink = f }

// deferLookup consults the shared cache without ever filling or waiting.
// Returns the bound artifact on a hit; local=true when the caller must
// compile on this goroutine (uncacheable or unrelocatable key); errDeferred
// when the artifact is absent or another isolate is mid-fill.
func (b *Backend) deferLookup(key codecache.Key, tier profile.Tier, ctrs *stats.Counters) (f *ir.Func, local bool, err error) {
	f, st := b.cache.Lookup(key, b.realm, ctrs)
	switch st {
	case codecache.LookupHit:
		return f, false, nil
	case codecache.LookupMiss:
		b.sink(tier)
		return nil, false, errDeferred
	case codecache.LookupInflight:
		return nil, false, errDeferred
	}
	// LookupUncacheable / LookupBindFail: the cache can never serve this
	// isolate; charge the miss and compile locally like the sync path does.
	if ctrs != nil {
		ctrs.CodeCacheMisses++
	}
	return nil, true, nil
}

// Machine exposes the execution engine (for the harness: cache and HTM
// statistics).
func (b *Backend) Machine() *machine.Machine { return b.mach }

// Governor exposes the abort-recovery governor (for diagnostics and tests).
func (b *Backend) Governor() *governor.Governor { return b.gov }

// SetGovernorPolicy replaces the governor (and all its ledgers) with a fresh
// one under the given policy — used by the nomap-governor tool and the
// harness recovery experiments to A/B the legacy policy. Like Reset, it also
// returns the simulated hardware to its initial condition: leaving the old
// policy's cache warmth and HTM counter state in place would attribute them
// to the new policy's run, skewing every A/B comparison that switches policy
// on a live backend.
func (b *Backend) SetGovernorPolicy(p governor.Policy) {
	b.gov = governor.New(p)
	b.code = make(map[codeKey]*unit)
	b.osrFailed = make(map[codeKey]bool)
	b.mach.ResetState()
}

// Reset discards all cached code, governor state, and simulated hardware
// state (address map, caches, HTM), returning the backend to its post-Attach
// condition. Differential and fault-injection runs that reuse a backend call
// it so an injected fault in one run cannot change policy decisions — or
// cache warmth — in the next.
func (b *Backend) Reset() {
	b.code = make(map[codeKey]*unit)
	b.osrFailed = make(map[codeKey]bool)
	b.gov.Reset()
	b.mach.ResetState()
}

// TxLevelOf reports the current §V-C transaction placement level for a
// function (TxLoopNest until the governor lowers it).
func (b *Backend) TxLevelOf(fn *bytecode.Function) core.TxLevel {
	return b.gov.LevelFor(fn.Name)
}

// CompiledFunctions returns the currently cached speculative-tier code, for
// diagnostics (nomap-profile's IR dumps).
func (b *Backend) CompiledFunctions() []*ir.Func {
	var out []*ir.Func
	for _, u := range b.code {
		out = append(out, u.f)
	}
	return out
}

// InTransaction reports whether a hardware transaction is open.
func (b *Backend) InTransaction() bool { return b.mach.InTx() }

// SetPassHook installs a callback observing every compiled function after
// each optimization pass (FTL) or after its pipeline (DFG). The oracle uses
// it to run ir.Verify on all code compiled during a fault-injection run.
func (b *Backend) SetPassHook(h func(pass string, f *ir.Func)) { b.passHook = h }

// Execute runs fn in the given speculative tier, falling back to Baseline
// (handled=false) when compilation is not possible.
func (b *Backend) Execute(v *vm.VM, fn *value.Function, prof *profile.FunctionProfile, tier profile.Tier, args []value.Value) (value.Value, bool, error) {
	bcFn, ok := fn.Code.(*bytecode.Function)
	if !ok || prof.JITUnsupported {
		return value.Undefined(), false, nil
	}
	key := mainKey(bcFn)
	u := b.code[key]
	if u == nil || u.tier != tier {
		u2, compiled, err := b.compile(bcFn, prof, tier, v.Counters())
		if err != nil {
			// A deferred compile is not a failure: the background queue will
			// fill the cache, and until then the current-best tier serves.
			if err == errDeferred {
				return value.Undefined(), false, nil
			}
			// Deterministic unsupported-function errors pin the function to
			// Baseline; anything else is treated as transient and only pins
			// after a bounded number of failures.
			if ir.IsUnsupported(err) {
				prof.JITUnsupported = true
			} else {
				prof.CompileFailures++
				if prof.CompileFailures >= profile.MaxTransientCompileFailures {
					prof.JITUnsupported = true
				}
			}
			return value.Undefined(), false, nil
		}
		u = u2
		b.code[key] = u
		if compiled {
			v.Counters().Compilations[tier]++
			b.mach.Emit(machine.Event{Kind: machine.EventCompile, Fn: bcFn.Name, Tier: tier})
			b.emitFills(bcFn.Name, u.f)
		}
	}

	ctrs := v.Counters()
	commitsBefore := ctrs.TxCommits
	res, deopt, err := b.mach.Run(u.f, tier, args)
	if err != nil {
		return value.Undefined(), true, err
	}
	if deopt == nil {
		if tier == profile.TierFTL {
			// Clean-run progress feeds ledger decay and probationary
			// re-promotion; a started probe drops the cached code so the
			// next call compiles one level higher.
			dec := b.gov.OnClean(bcFn.Name, ctrs.TxCommits-commitsBefore)
			b.apply(dec, nil)
		}
		return res, true, nil
	}

	// Recovery. The governor owns all post-transfer policy for FTL code;
	// DFG deopts keep the legacy semantics (charge the budget, recompile
	// with refreshed feedback) since no transactions are involved.
	if tier == profile.TierFTL {
		dec := b.gov.OnTransfer(governor.Transfer{
			Fn:       bcFn.Name,
			Aborted:  deopt.Aborted,
			Cause:    deopt.Cause,
			Class:    deopt.CheckClass,
			SiteFn:   deopt.SiteFn,
			SitePC:   deopt.SitePC,
			SitePath: deopt.SitePath,
			Shape:    deopt.SiteShape,
			Dispatch: deopt.SiteDispatch,
			HadCalls: deopt.HadCalls,
		})
		b.emitDemote(dec, bcFn.Name, deopt)
		b.apply(dec, prof)
	} else {
		prof.Deopts++
		delete(b.code, key)
	}

	out, err := resumeChain(v, deopt.Frame, func() *value.Environment {
		return value.NewEnvironment(fn.Env, bcFn.NumCells)
	})
	return out, true, err
}

// resumeChain resumes a reconstructed frame chain in the Baseline tier,
// innermost frame first. A deopt inside inlined code materializes the callee
// frame plus every flattened caller: each frame runs to its return, the
// result lands in the caller's result register, and the caller — positioned
// at its call instruction — steps past it and resumes. Inline frames carry
// their function object, from which the callee environment is allocated;
// the root frame either inherited a live environment (OSR artifacts) or gets
// one from rootEnv (invocation-entry artifacts).
func resumeChain(v *vm.VM, fr *frame.Frame, rootEnv func() *value.Environment) (value.Value, error) {
	for {
		if fr.Env == nil {
			if fr.Function != nil {
				fr.Env = value.NewEnvironment(fr.Function.Env, fr.Fn.NumCells)
			} else if rootEnv != nil {
				fr.Env = rootEnv()
			}
		}
		res, err := interp.Exec(v, fr, profile.TierBaseline)
		if err != nil {
			return value.Undefined(), err
		}
		caller := fr.Caller
		if caller == nil {
			return res, nil
		}
		caller.Locals[fr.RetReg] = v.Handles().Box(res)
		caller.PC++ // the caller frame is positioned at its call instruction
		fr = caller
	}
}

// ExecuteOSR enters optimized code mid-loop: fr is a live bytecode frame
// stopped at a hot loop header. The backend compiles (or reuses) an OSR
// artifact with its entry at that header, binds fr's locals to its
// OpOSRLocal values through machine.EnterAt, and runs to completion —
// including the Baseline resume after any deopt or abort. handled=false
// declines and leaves fr untouched for the bytecode tiers.
func (b *Backend) ExecuteOSR(v *vm.VM, fr *frame.Frame, prof *profile.FunctionProfile, tier profile.Tier) (value.Value, bool, error) {
	bcFn := fr.Fn
	if prof.JITUnsupported || !b.gov.OSRAllowed(bcFn.Name, fr.PC) {
		return value.Undefined(), false, nil
	}
	key := codeKey{fn: bcFn, osr: fr.PC}
	if b.osrFailed[key] {
		return value.Undefined(), false, nil
	}
	u := b.code[key]
	if u == nil || u.tier != tier {
		u2, compiled, err := b.compileOSR(bcFn, prof, tier, fr.PC, v.Counters())
		if err != nil {
			// Deferred is transient — the loop stays on its bytecode tier
			// this pass and OSR retries once the background fill lands.
			if err != errDeferred {
				b.osrFailed[key] = true
			}
			return value.Undefined(), false, nil
		}
		u = u2
		b.code[key] = u
		if compiled {
			v.Counters().Compilations[tier]++
			b.mach.Emit(machine.Event{Kind: machine.EventCompile, Fn: bcFn.Name, Tier: tier})
			b.emitFills(bcFn.Name, u.f)
		}
	}

	ctrs := v.Counters()
	commitsBefore := ctrs.TxCommits
	res, deopt, err := b.mach.EnterAt(u.f, tier, fr)
	if err != nil {
		return value.Undefined(), true, err
	}
	if deopt == nil {
		if tier == profile.TierFTL {
			dec := b.gov.OnClean(bcFn.Name, ctrs.TxCommits-commitsBefore)
			b.apply(dec, nil)
		}
		return res, true, nil
	}

	if tier == profile.TierFTL {
		dec := b.gov.OnTransfer(governor.Transfer{
			Fn:       bcFn.Name,
			Aborted:  deopt.Aborted,
			Cause:    deopt.Cause,
			Class:    deopt.CheckClass,
			SiteFn:   deopt.SiteFn,
			SitePC:   deopt.SitePC,
			SitePath: deopt.SitePath,
			Shape:    deopt.SiteShape,
			Dispatch: deopt.SiteDispatch,
			HadCalls: deopt.HadCalls,
			OSR:      true,
			OSRPC:    fr.PC,
		})
		b.emitDemote(dec, bcFn.Name, deopt)
		b.apply(dec, prof)
	} else {
		prof.Deopts++
		delete(b.code, key)
	}

	// The root recovery frame inherited fr's environment in the machine's
	// materialization; inline frames allocate theirs in the resume loop.
	out, err := resumeChain(v, deopt.Frame, nil)
	return out, true, err
}

// emitFills records one EventICFill per dispatch tree the compile
// materialized — the cache-fill step of the miss → fill → hit IC ladder.
func (b *Backend) emitFills(fn string, f *ir.Func) {
	for _, d := range f.Dispatch {
		b.mach.Emit(machine.Event{Kind: machine.EventICFill, Fn: fn, PC: d.PC, Inline: d.Path, Window: int64(d.Ways)})
	}
}

// emitDemote records the megamorphic-demotion event when a transfer pushed a
// dispatch site over its miss budget.
func (b *Backend) emitDemote(dec governor.Decision, fn string, deopt *machine.Deopt) {
	if dec.DemotedDispatch {
		b.mach.Emit(machine.Event{Kind: machine.EventICDemote, Fn: fn, PC: deopt.SitePC, Inline: deopt.SitePath})
	}
}

// demoteFor returns the predicate the compilers use to drop dispatch plans
// (the VM-level DisableIC switch, or the governor's demote set), plus its
// cache-key fingerprint ("" in the common case, keeping pre-IC keys
// byte-identical; "*" for the everything-demoted switch).
func (b *Backend) demoteFor(name string) (func(pc int, path string) bool, string) {
	if b.noIC {
		return func(int, string) bool { return true }, "*"
	}
	set := b.gov.DemoteSet(name)
	if len(set) == 0 {
		return nil, ""
	}
	return func(pc int, path string) bool {
		return set[core.CheckSite{PC: pc, Path: path}]
	}, codecache.KeepFingerprint(set)
}

// apply enacts a governor decision: budget charge and code-cache drops.
func (b *Backend) apply(dec governor.Decision, prof *profile.FunctionProfile) {
	if dec.ChargeDeopt && prof != nil {
		prof.Deopts++
	}
	if !dec.Recompile {
		return
	}
	for _, name := range dec.Drop {
		for k := range b.code {
			if k.fn.Name == name {
				delete(b.code, k)
			}
		}
	}
}

// inlineFP fingerprints the transitive inlinable-callee feedback for a cache
// key; zero when inlining is off, so non-inlining isolates key as before.
func (b *Backend) inlineFP(bcFn *bytecode.Function) uint64 {
	if !b.inline {
		return 0
	}
	return codecache.InlineFingerprint(bcFn, b.profiles, b.realm, ir.DefaultInlineOptions(nil).MaxDepth)
}

// dfgProfiles returns the callee-profile resolver steering DFG inlining, or
// nil when inlining is off.
func (b *Backend) dfgProfiles() func(*bytecode.Function) *profile.FunctionProfile {
	if !b.inline {
		return nil
	}
	return b.profiles
}

// dfgDemote returns the DFG tier's dispatch-demotion predicate: only the
// VM-level DisableIC switch (the governor's per-site demote set is an FTL
// recovery mechanism).
func (b *Backend) dfgDemote() func(pc int, path string) bool {
	if !b.noIC {
		return nil
	}
	return func(int, string) bool { return true }
}

// compile produces (or, through the shared code cache, obtains) code for
// bcFn at tier. The returned bool reports whether a compilation actually ran
// on behalf of this isolate — false means a cached artifact was bound — so
// Execute can charge Compilations honestly.
func (b *Backend) compile(bcFn *bytecode.Function, prof *profile.FunctionProfile, tier profile.Tier, ctrs *stats.Counters) (*unit, bool, error) {
	useCache := b.cache != nil && b.passHook == nil
	if tier == profile.TierDFG {
		if useCache {
			key := codecache.Key{
				Code:     bcFn,
				Tier:     tier,
				Arch:     uint8(b.arch),
				Level:    core.TxOff,
				Policy:   b.policy,
				ProfFP:   codecache.FingerprintProfile(prof, b.realm),
				InlineFP: b.inlineFP(bcFn),
				OSR:      -1,
			}
			if b.sink != nil {
				f, local, err := b.deferLookup(key, tier, ctrs)
				if err != nil {
					return nil, false, err
				}
				if !local {
					return &unit{tier: tier, f: f}, false, nil
				}
				f, err = dfg.CompileInlining(bcFn, prof, b.dfgProfiles(), b.dfgDemote())
				if err != nil {
					return nil, true, err
				}
				return &unit{tier: tier, f: f}, true, nil
			}
			f, compiled, err := b.cache.Compile(key, b.realm, ctrs, func() (*ir.Func, error) {
				return dfg.CompileInlining(bcFn, prof, b.dfgProfiles(), b.dfgDemote())
			})
			if err != nil {
				return nil, compiled, err
			}
			return &unit{tier: tier, f: f}, compiled, nil
		}
		f, err := dfg.CompileInlining(bcFn, prof, b.dfgProfiles(), b.dfgDemote())
		if err != nil {
			return nil, true, err
		}
		if b.passHook != nil {
			b.passHook("dfg", f)
		}
		return &unit{tier: tier, f: f}, true, nil
	}
	level := b.gov.LevelFor(bcFn.Name)
	opts := optionsFor(b.arch, level)
	opts.KeepSMP = b.gov.KeepSet(bcFn.Name)
	opts.Inline = b.inline
	opts.Profiles = b.profiles
	demote, demoteFP := b.demoteFor(bcFn.Name)
	opts.Demote = demote
	if useCache {
		key := codecache.Key{
			Code:     bcFn,
			Tier:     tier,
			Arch:     uint8(b.arch),
			Level:    level,
			Policy:   b.policy,
			KeepFP:   codecache.KeepFingerprint(opts.KeepSMP),
			DemoteFP: demoteFP,
			ProfFP:   codecache.FingerprintProfile(prof, b.realm),
			InlineFP: b.inlineFP(bcFn),
			OSR:      -1,
		}
		if b.sink != nil {
			f, local, err := b.deferLookup(key, tier, ctrs)
			if err != nil {
				return nil, false, err
			}
			if !local {
				return &unit{tier: tier, f: f, txLevel: level}, false, nil
			}
			f, err = ftl.Compile(bcFn, prof, opts)
			if err != nil {
				return nil, true, err
			}
			return &unit{tier: tier, f: f, txLevel: level}, true, nil
		}
		f, compiled, err := b.cache.Compile(key, b.realm, ctrs, func() (*ir.Func, error) {
			return ftl.Compile(bcFn, prof, opts)
		})
		if err != nil {
			return nil, compiled, err
		}
		return &unit{tier: tier, f: f, txLevel: level}, compiled, nil
	}
	opts.PassHook = b.passHook
	f, err := ftl.Compile(bcFn, prof, opts)
	if err != nil {
		return nil, true, err
	}
	return &unit{tier: tier, f: f, txLevel: level}, true, nil
}

// compileOSR produces (or obtains from the shared cache) an OSR-entry
// artifact for bcFn at tier, entering at loop header entryPC. The codecache
// key carries the header pc, so OSR artifacts and the invocation-entry
// artifact of the same function coexist and never collide.
func (b *Backend) compileOSR(bcFn *bytecode.Function, prof *profile.FunctionProfile, tier profile.Tier, entryPC int, ctrs *stats.Counters) (*unit, bool, error) {
	useCache := b.cache != nil && b.passHook == nil
	if tier == profile.TierDFG {
		if useCache {
			key := codecache.Key{
				Code:     bcFn,
				Tier:     tier,
				Arch:     uint8(b.arch),
				Level:    core.TxOff,
				Policy:   b.policy,
				ProfFP:   codecache.FingerprintProfile(prof, b.realm),
				InlineFP: b.inlineFP(bcFn),
				OSR:      entryPC,
			}
			if b.sink != nil {
				f, local, err := b.deferLookup(key, tier, ctrs)
				if err != nil {
					return nil, false, err
				}
				if !local {
					return &unit{tier: tier, f: f}, false, nil
				}
				f, err = dfg.CompileOSRInlining(bcFn, prof, entryPC, b.dfgProfiles(), b.dfgDemote())
				if err != nil {
					return nil, true, err
				}
				return &unit{tier: tier, f: f}, true, nil
			}
			f, compiled, err := b.cache.Compile(key, b.realm, ctrs, func() (*ir.Func, error) {
				return dfg.CompileOSRInlining(bcFn, prof, entryPC, b.dfgProfiles(), b.dfgDemote())
			})
			if err != nil {
				return nil, compiled, err
			}
			return &unit{tier: tier, f: f}, compiled, nil
		}
		f, err := dfg.CompileOSRInlining(bcFn, prof, entryPC, b.dfgProfiles(), b.dfgDemote())
		if err != nil {
			return nil, true, err
		}
		if b.passHook != nil {
			b.passHook("dfg-osr", f)
		}
		return &unit{tier: tier, f: f}, true, nil
	}
	level := b.gov.LevelFor(bcFn.Name)
	opts := optionsFor(b.arch, level)
	opts.KeepSMP = b.gov.KeepSet(bcFn.Name)
	opts.Inline = b.inline
	opts.Profiles = b.profiles
	opts.OSR = true
	opts.OSREntryPC = entryPC
	demote, demoteFP := b.demoteFor(bcFn.Name)
	opts.Demote = demote
	if useCache {
		key := codecache.Key{
			Code:     bcFn,
			Tier:     tier,
			Arch:     uint8(b.arch),
			Level:    level,
			Policy:   b.policy,
			KeepFP:   codecache.KeepFingerprint(opts.KeepSMP),
			DemoteFP: demoteFP,
			ProfFP:   codecache.FingerprintProfile(prof, b.realm),
			InlineFP: b.inlineFP(bcFn),
			OSR:      entryPC,
		}
		if b.sink != nil {
			f, local, err := b.deferLookup(key, tier, ctrs)
			if err != nil {
				return nil, false, err
			}
			if !local {
				return &unit{tier: tier, f: f, txLevel: level}, false, nil
			}
			f, err = ftl.Compile(bcFn, prof, opts)
			if err != nil {
				return nil, true, err
			}
			return &unit{tier: tier, f: f, txLevel: level}, true, nil
		}
		f, compiled, err := b.cache.Compile(key, b.realm, ctrs, func() (*ir.Func, error) {
			return ftl.Compile(bcFn, prof, opts)
		})
		if err != nil {
			return nil, compiled, err
		}
		return &unit{tier: tier, f: f, txLevel: level}, compiled, nil
	}
	opts.PassHook = b.passHook
	f, err := ftl.Compile(bcFn, prof, opts)
	if err != nil {
		return nil, true, err
	}
	return &unit{tier: tier, f: f, txLevel: level}, true, nil
}

func optionsFor(arch vm.Arch, level core.TxLevel) ftl.Options {
	return ftl.Options{
		Transactions:   arch.UsesTransactions(),
		TxLevel:        level,
		CombineBounds:  arch.CombinesBoundsChecks() && !arch.RemovesAllChecks(),
		RemoveOverflow: arch.RemovesOverflowChecks() && !arch.RemovesAllChecks(),
		RemoveAll:      arch.RemovesAllChecks(),
	}
}

var _ vm.JITBackend = (*Backend)(nil)
