// Package jit drives the speculative tiers: it compiles hot functions with
// the DFG or FTL pipeline (under the configured NoMap architecture), runs
// them on the machine, and implements the two recovery paths — OSR exits
// into the Baseline tier and transaction-abort recovery with the §V-C
// footprint policy (retreat from loop-nest transactions to innermost loops,
// then remove transactions; call-containing overflowing transactions are
// removed immediately).
package jit

import (
	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/dfg"
	"nomap/internal/ftl"
	"nomap/internal/htm"
	"nomap/internal/interp"
	"nomap/internal/ir"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// Backend implements vm.JITBackend.
type Backend struct {
	mach     *machine.Machine
	code     map[*bytecode.Function]*unit
	txLevels map[*bytecode.Function]core.TxLevel
	arch     vm.Arch
	passHook func(pass string, f *ir.Func)
}

type unit struct {
	tier    profile.Tier
	f       *ir.Func
	txLevel core.TxLevel
}

// Attach creates a backend for v (selecting lightweight ROT or heavyweight
// RTM per the configured architecture) and installs it.
func Attach(v *vm.VM) *Backend {
	cfg := htm.ROTConfig()
	if v.Config().Arch.HeavyweightHTM() {
		cfg = htm.RTMConfig()
	}
	b := &Backend{
		mach:     machine.New(v, cfg),
		code:     make(map[*bytecode.Function]*unit),
		txLevels: make(map[*bytecode.Function]core.TxLevel),
		arch:     v.Config().Arch,
	}
	v.SetJIT(b)
	return b
}

// Machine exposes the execution engine (for the harness: cache and HTM
// statistics).
func (b *Backend) Machine() *machine.Machine { return b.mach }

// TxLevelOf reports the current §V-C transaction placement level for a
// function (TxLoopNest until capacity aborts lower it).
func (b *Backend) TxLevelOf(fn *bytecode.Function) core.TxLevel {
	if l, ok := b.txLevels[fn]; ok {
		return l
	}
	return core.TxLoopNest
}

// CompiledFunctions returns the currently cached speculative-tier code, for
// diagnostics (nomap-profile's IR dumps).
func (b *Backend) CompiledFunctions() []*ir.Func {
	var out []*ir.Func
	for _, u := range b.code {
		out = append(out, u.f)
	}
	return out
}

// InTransaction reports whether a hardware transaction is open.
func (b *Backend) InTransaction() bool { return b.mach.InTx() }

// SetPassHook installs a callback observing every compiled function after
// each optimization pass (FTL) or after its pipeline (DFG). The oracle uses
// it to run ir.Verify on all code compiled during a fault-injection run.
func (b *Backend) SetPassHook(h func(pass string, f *ir.Func)) { b.passHook = h }

// Execute runs fn in the given speculative tier, falling back to Baseline
// (handled=false) when compilation is not possible.
func (b *Backend) Execute(v *vm.VM, fn *value.Function, prof *profile.FunctionProfile, tier profile.Tier, args []value.Value) (value.Value, bool, error) {
	bcFn, ok := fn.Code.(*bytecode.Function)
	if !ok || prof.JITUnsupported {
		return value.Undefined(), false, nil
	}
	u := b.code[bcFn]
	if u == nil || u.tier != tier {
		var err error
		u, err = b.compile(bcFn, prof, tier)
		if err != nil {
			prof.JITUnsupported = true
			return value.Undefined(), false, nil
		}
		b.code[bcFn] = u
		v.Counters().Compilations[tier]++
		b.mach.Emit(machine.Event{Kind: machine.EventCompile, Fn: bcFn.Name, Tier: tier})
	}

	res, deopt, err := b.mach.Run(u.f, tier, args)
	if err != nil {
		return value.Undefined(), true, err
	}
	if deopt == nil {
		return res, true, nil
	}

	// Recovery. Aborts apply the footprint policy; all non-capacity
	// transfers count against the function's deopt budget.
	if deopt.Aborted && deopt.Cause == htm.AbortCapacity {
		b.lowerTxLevel(bcFn, deopt.HadCalls)
	} else {
		prof.Deopts++
	}
	delete(b.code, bcFn) // recompile with refreshed feedback next call

	env := value.NewEnvironment(fn.Env, bcFn.NumCells)
	fr := &interp.Frame{Fn: bcFn, Regs: deopt.Regs, Env: env, PC: deopt.PC}
	out, err := interp.Exec(v, fr, profile.TierBaseline)
	return out, true, err
}

func (b *Backend) compile(bcFn *bytecode.Function, prof *profile.FunctionProfile, tier profile.Tier) (*unit, error) {
	if tier == profile.TierDFG {
		f, err := dfg.Compile(bcFn, prof)
		if err != nil {
			return nil, err
		}
		if b.passHook != nil {
			b.passHook("dfg", f)
		}
		return &unit{tier: tier, f: f}, nil
	}
	level, ok := b.txLevels[bcFn]
	if !ok {
		level = core.TxLoopNest
	}
	opts := optionsFor(b.arch, level)
	opts.PassHook = b.passHook
	f, err := ftl.Compile(bcFn, prof, opts)
	if err != nil {
		return nil, err
	}
	return &unit{tier: tier, f: f, txLevel: level}, nil
}

// lowerTxLevel retreats the transaction placement after a capacity abort
// (paper §V-C): loop-nest -> innermost -> tiled -> off, or straight to off
// when the overflowing transaction contained a call.
func (b *Backend) lowerTxLevel(bcFn *bytecode.Function, hadCalls bool) {
	cur, ok := b.txLevels[bcFn]
	if !ok {
		cur = core.TxLoopNest
	}
	b.txLevels[bcFn] = cur.Lower(hadCalls, !b.arch.HeavyweightHTM())
}

func optionsFor(arch vm.Arch, level core.TxLevel) ftl.Options {
	return ftl.Options{
		Transactions:   arch.UsesTransactions(),
		TxLevel:        level,
		CombineBounds:  arch.CombinesBoundsChecks() && !arch.RemovesAllChecks(),
		RemoveOverflow: arch.RemovesOverflowChecks() && !arch.RemovesAllChecks(),
		RemoveAll:      arch.RemovesAllChecks(),
	}
}

var _ vm.JITBackend = (*Backend)(nil)
