package jit_test

import (
	"testing"

	"nomap/internal/bytecode"
	"nomap/internal/core"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

func newEngine(arch vm.Arch) (*vm.VM, *jit.Backend) {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	v := vm.New(cfg)
	b := jit.Attach(v)
	return v, b
}

// newEngineNoInline disables speculative call inlining, for tests that
// exercise real call-inside-transaction semantics (the inliner would
// otherwise flatten the callee and the call disappears).
func newEngineNoInline(arch vm.Arch) (*vm.VM, *jit.Backend) {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.Policy = profile.Policy{BaselineThreshold: 2, DFGThreshold: 8, FTLThreshold: 40, MaxDeopts: 16}
	cfg.DisableInlining = true
	v := vm.New(cfg)
	b := jit.Attach(v)
	return v, b
}

const hotSrc = `
var arr = [];
for (var i = 0; i < 32; i++) arr[i] = i;
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s += arr[i];
  return s;
}
`

func drive(t *testing.T, v *vm.VM, calls int) {
	t.Helper()
	for i := 0; i < calls; i++ {
		if _, err := v.CallGlobal("run", value.Int(32)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompilationCaching(t *testing.T) {
	v, _ := newEngine(vm.ArchNoMap)
	if _, err := v.Run(hotSrc); err != nil {
		t.Fatal(err)
	}
	drive(t, v, 100)
	c := v.Counters()
	// One DFG compile and one FTL compile for run(); the cache must prevent
	// recompiling on every call.
	if c.Compilations[profile.TierFTL] != 1 {
		t.Errorf("FTL compilations = %d, want 1", c.Compilations[profile.TierFTL])
	}
	if c.Compilations[profile.TierDFG] != 1 {
		t.Errorf("DFG compilations = %d, want 1", c.Compilations[profile.TierDFG])
	}
}

func TestDeoptInvalidatesAndRecompiles(t *testing.T) {
	v, _ := newEngine(vm.ArchBase)
	if _, err := v.Run(hotSrc); err != nil {
		t.Fatal(err)
	}
	drive(t, v, 100)
	before := v.Counters().Compilations[profile.TierFTL]
	// Type change triggers a deopt in Base (SMP path, no transactions).
	if _, err := v.Run(`arr[7] = 0.25;`); err != nil {
		t.Fatal(err)
	}
	drive(t, v, 20)
	c := v.Counters()
	if c.Deopts == 0 {
		t.Fatal("expected a deoptimization")
	}
	if c.Compilations[profile.TierFTL] <= before {
		t.Error("deopt must invalidate the cached code and recompile")
	}
	// After recompilation with double feedback, steady state is deopt-free.
	v.ResetCounters()
	drive(t, v, 20)
	if v.Counters().Deopts != 0 {
		t.Errorf("still deopting after recompilation: %d", v.Counters().Deopts)
	}
}

func TestCompiledFunctionsExposed(t *testing.T) {
	v, b := newEngine(vm.ArchNoMap)
	if _, err := v.Run(hotSrc); err != nil {
		t.Fatal(err)
	}
	drive(t, v, 100)
	fns := b.CompiledFunctions()
	if len(fns) == 0 {
		t.Fatal("no compiled functions exposed")
	}
	foundTx := false
	for _, f := range fns {
		if f.TxAware {
			foundTx = true
		}
	}
	if !foundTx {
		t.Error("NoMap-compiled hot function should be transaction-aware")
	}
}

func TestInTransactionReflectsMachine(t *testing.T) {
	v, b := newEngine(vm.ArchNoMap)
	if b.InTransaction() {
		t.Error("no transaction before execution")
	}
	if _, err := v.Run(hotSrc); err != nil {
		t.Fatal(err)
	}
	drive(t, v, 100)
	if b.InTransaction() {
		t.Error("transactions must be closed after calls return")
	}
}

// The footprint ladder: capacity aborts walk loop-nest -> innermost ->
// tiled; transactions with calls go straight to off.
func TestRetreatLadderWithCalls(t *testing.T) {
	src := `
var big = new Array(40000);
function helper(x) { return x | 0; }
function run() {
  for (var i = 0; i < 40000; i++) big[i] = helper(i);
  return big[39999];
}
`
	v, b := newEngineNoInline(vm.ArchNoMap)
	if _, err := v.Run(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatal(err)
		}
	}
	// 320KB of writes exceeds even the 256KB L2; the loop contains a call
	// (inlining disabled above — the inliner would flatten helper and lift
	// the §V-C blame), so the first capacity abort must remove transactions
	// entirely.
	runFn := v.Globals().Get("run").Object().Fn.Code.(*bytecode.Function)
	if got := b.TxLevelOf(runFn); got != core.TxOff {
		t.Errorf("tx level = %v, want off (overflowing transaction had calls)", got)
	}
	v.ResetCounters()
	for i := 0; i < 5; i++ {
		if _, err := v.CallGlobal("run"); err != nil {
			t.Fatal(err)
		}
	}
	if v.Counters().TxAborts != 0 {
		t.Error("steady state must not abort once transactions are removed")
	}
}
