package oracle

import (
	"strings"
	"testing"

	"nomap/internal/htm"
	"nomap/internal/machine"
	"nomap/internal/vm"
	"nomap/internal/workloads"
)

func TestScheduleSweepCleanOnContentionSuite(t *testing.T) {
	for _, wl := range workloads.Contention() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			cfg := DefaultScheduleConfig()
			cfg.Schedules = 4
			rep, err := ScheduleSweep(wl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Failures {
				t.Errorf("%s", f)
			}
			if rep.TotalRuns() == 0 {
				t.Fatal("sweep performed no runs")
			}
			for _, ar := range rep.Archs {
				if ar.Arch.UsesTransactions() && ar.AccessSites == 0 {
					t.Errorf("%v: recording run found no conflict-injection sites", ar.Arch)
				}
				// The storm pass forces every access to conflict, so every
				// transactional configuration must show the full ladder.
				if ar.Arch.UsesTransactions() && (ar.ConflictAborts == 0 || ar.FallbackAcquires == 0) {
					t.Errorf("%v: storm pass produced conflicts=%d fallbacks=%d",
						ar.Arch, ar.ConflictAborts, ar.FallbackAcquires)
				}
			}
		})
	}
}

// Line-disjoint counters must never conflict: a conflict abort on T01 is a
// false positive in the domain's ownership bookkeeping.
func TestScheduleSweepUncontendedHasNoNaturalConflicts(t *testing.T) {
	wl, _ := workloads.ContentionByID("T01")
	for _, arch := range vm.AllArchs {
		for seed := int64(0); seed < 6; seed++ {
			res, err := machine.RunScheduled(wl, arch, seed, machine.SharedOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Merged.TxConflictAborts != 0 {
				t.Errorf("%v seed %d: %d conflict aborts on line-disjoint counters",
					arch, seed, res.Merged.TxConflictAborts)
			}
		}
	}
}

// TestScheduleSweepCatchesBrokenDetection is the oracle's self-test: with the
// conflict domain disconnected and one capacity abort injected mid-section,
// some interleaving must produce a lost update (the aborting worker's undo
// clobbers a racing worker's committed increment) — and the sweep must flag
// it as a divergence. If this test fails, the oracle cannot be trusted to
// verify the real detector.
func TestScheduleSweepCatchesBrokenDetection(t *testing.T) {
	wl := &machine.SharedWorkload{
		Name: "sabotaged",
		Decls: []machine.SharedDecl{
			{Kind: machine.DeclCounter, Name: "a"},
			{Kind: machine.DeclCounter, Name: "b"},
		},
		Workers: []machine.SharedScript{
			{Rounds: 4, Sections: []machine.SharedSection{
				{{Kind: machine.OpAdd, Target: "a", Imm: 1},
					{Kind: machine.OpAdd, Target: "b", Imm: 1}},
			}},
			{Rounds: 4, Sections: []machine.SharedSection{
				{{Kind: machine.OpAdd, Target: "a", Imm: 1}},
			}},
		},
	}
	var n int
	cfg := ScheduleConfig{
		Archs:     []vm.Arch{vm.ArchNoMap},
		Schedules: 64,
		Seed:      1,
		Configure: func(id int, sys *htm.System) {
			// Sever the coherence fabric: no cross-worker conflict detection.
			sys.AttachDomain(nil, id)
			if id == 0 {
				// One capacity abort per run, at worker 0's second tracked
				// write line (counter b) — its rollback then restores counter
				// a to the value captured before worker 1's racing update.
				n = 0
				sys.SetCapacityProbe(func(write bool, line uint64) bool {
					n++
					return n == 2
				})
			}
		},
	}
	rep, err := ScheduleSweep(wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var divergences int
	for _, f := range rep.Failures {
		if f.Kind == "divergence" && strings.Contains(f.Run, "schedule#") {
			divergences++
		}
	}
	if divergences == 0 {
		t.Fatalf("broken conflict detection survived %d schedules undetected (failures: %v)",
			cfg.Schedules, rep.Failures)
	}
}
