package oracle

import (
	"testing"

	"nomap/internal/chaos"
	"nomap/internal/vm"
)

// TestChaosSweepAllArchs is the acceptance sweep: every registered fault
// point fires under every architecture's pool configuration, with zero lost
// responses, per-class error counts matching the schedule, and the fleet
// converging back to healthy.
func TestChaosSweepAllArchs(t *testing.T) {
	rep := ChaosSweep(DefaultChaosConfig())
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if len(rep.Archs) != len(vm.AllArchs) {
		t.Fatalf("swept %d archs, want %d", len(rep.Archs), len(vm.AllArchs))
	}
	for _, ar := range rep.Archs {
		if !ar.Recovered {
			t.Errorf("[%s] fleet did not recover", ar.Arch)
		}
		// Every registered kind is scheduled in both phases; at minimum the
		// serial phase fires one of each plus the load phase's nine points.
		if ar.Faults < int64(chaos.NumKinds)+9 {
			t.Errorf("[%s] only %d faults fired", ar.Arch, ar.Faults)
		}
		if ar.Crashes == 0 {
			t.Errorf("[%s] no crash was contained", ar.Arch)
		}
	}
}

// TestChaosSweepSingleArch keeps a cheap single-configuration smoke for
// quick iteration (the full six-arch sweep runs in CI and the acceptance
// test above).
func TestChaosSweepSingleArch(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Archs = []vm.Arch{vm.ArchNoMap}
	rep := ChaosSweep(cfg)
	for _, f := range rep.Failures {
		t.Error(f)
	}
}

// TestChaosSweepAsyncCompile re-runs the sweep with tier-up compilation on
// the background compile queue: every resilience invariant — exact serial
// bookkeeping included — must hold with the request path never compiling.
func TestChaosSweepAsyncCompile(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Archs = []vm.Arch{vm.ArchNoMap, vm.ArchBase}
	cfg.AsyncCompile = true
	rep := ChaosSweep(cfg)
	for _, f := range rep.Failures {
		t.Error(f)
	}
	for _, ar := range rep.Archs {
		if !ar.Recovered {
			t.Errorf("[%s] fleet did not recover under async compilation", ar.Arch)
		}
	}
}
