package oracle

import (
	"fmt"

	"nomap/internal/stats"
)

// CheckCounters validates the cycle/instruction accounting invariants after
// a (possibly fault-injected) run. Aborted-transaction work is discarded and
// re-attributed, which historically is where accounting bugs hide: a
// mis-ordered rollback can drive a counter negative or leak an open
// transaction.
func CheckCounters(c *stats.Counters) error {
	nonNeg := []struct {
		name string
		v    int64
	}{
		{"CyclesTM", c.CyclesTM},
		{"CyclesNonTM", c.CyclesNonTM},
		{"InterpOps", c.InterpOps},
		{"BaselineOps", c.BaselineOps},
		{"DFGCalls", c.DFGCalls},
		{"FTLCalls", c.FTLCalls},
		{"Deopts", c.Deopts},
		{"OSRExits", c.OSRExits},
		{"TxBegins", c.TxBegins},
		{"TxCommits", c.TxCommits},
		{"TxAborts", c.TxAborts},
		{"TxCapacityAborts", c.TxCapacityAborts},
		{"TxCheckAborts", c.TxCheckAborts},
		{"TxSOFAborts", c.TxSOFAborts},
		{"TxIrrevocableAborts", c.TxIrrevocableAborts},
		{"TxConflictAborts", c.TxConflictAborts},
		{"SharedOps", c.SharedOps},
		{"SharedTxRetries", c.SharedTxRetries},
		{"SharedBackoffs", c.SharedBackoffs},
		{"SharedFallbackAcquires", c.SharedFallbackAcquires},
		{"SharedRepromotions", c.SharedRepromotions},
		{"CyclesSquashed", c.CyclesSquashed},
		{"TxWriteBytesMax", c.TxWriteBytesMax},
		{"TxWriteBytesTotal", c.TxWriteBytesTotal},
		{"TxMaxAssoc", c.TxMaxAssoc},
		{"TxReadBytesMax", c.TxReadBytesMax},
		{"CodeCacheHits", c.CodeCacheHits},
		{"CodeCacheMisses", c.CodeCacheMisses},
		{"CodeCacheEvictions", c.CodeCacheEvictions},
		{"SnapshotRestores", c.SnapshotRestores},
	}
	for _, f := range nonNeg {
		if f.v < 0 {
			return fmt.Errorf("counter %s is negative: %d", f.name, f.v)
		}
	}
	for i, v := range c.Instr {
		if v < 0 {
			return fmt.Errorf("instruction class %v is negative: %d", stats.InstrClass(i), v)
		}
	}
	for i, v := range c.Checks {
		if v < 0 {
			return fmt.Errorf("check class %v count is negative: %d", stats.CheckClass(i), v)
		}
	}
	for i, v := range c.Compilations {
		if v < 0 {
			return fmt.Errorf("compilation count for tier %d is negative: %d", i, v)
		}
	}
	// Every transaction that begins must retire exactly once, by commit or
	// abort; anything else means a transaction leaked across a run.
	if c.TxBegins != c.TxCommits+c.TxAborts {
		return fmt.Errorf("transaction leak: %d begins vs %d commits + %d aborts",
			c.TxBegins, c.TxCommits, c.TxAborts)
	}
	// Every abort has exactly one cause; the per-cause ledger — conflict
	// aborts included — must partition the total with no unaccounted
	// remainder.
	if sub := c.TxCapacityAborts + c.TxCheckAborts + c.TxSOFAborts + c.TxIrrevocableAborts + c.TxConflictAborts; sub != c.TxAborts {
		return fmt.Errorf("abort sub-causes (%d) do not partition total aborts (%d)", sub, c.TxAborts)
	}
	// Squashed cycles are a subset of in-transaction cycles, and the
	// per-cause breakdown must partition the total wasted work.
	if c.CyclesSquashed > c.CyclesTM {
		return fmt.Errorf("CyclesSquashed (%d) exceeds CyclesTM (%d)", c.CyclesSquashed, c.CyclesTM)
	}
	var squashedBy int64
	for i, v := range c.CyclesSquashedBy {
		if v < 0 {
			return fmt.Errorf("CyclesSquashedBy[%d] is negative: %d", i, v)
		}
		squashedBy += v
	}
	if squashedBy != c.CyclesSquashed {
		return fmt.Errorf("per-cause squashed cycles (%d) do not partition CyclesSquashed (%d)", squashedBy, c.CyclesSquashed)
	}
	return nil
}
