// Package oracle is the deterministic fault-injection and differential
// checking subsystem. NoMap's correctness argument rests entirely on its
// fallback paths: any transactional abort (failed check, capacity overflow,
// sticky overflow, irrevocable event) and any deoptimization must re-execute
// in a lower tier with identical observable behaviour. The oracle proves
// this mechanically:
//
//  1. It enumerates every injectable site of a run (each speculation check,
//     each transaction begin/commit/tile point, each transactional write)
//     using the machine's Injector hook and the HTM capacity probe.
//
//  2. It then re-runs the program once per site, forcing an abort or deopt
//     there, and asserts that the observable behaviour — per-call results,
//     print() output, and the final reachable heap — matches a pure
//     interpreter reference, that the measurement counters stay
//     invariant-clean, and that ir.Verify holds after every optimization
//     pass of every (re)compilation the run performs.
//
//  3. A seeded random-schedule mode samples deeper occurrences of each site,
//     and a test-case reducer shrinks failing generated programs to minimal
//     reproducers.
//
// Because the engine is fully deterministic, a re-run visits the same site
// sequence as the recording run up to the injected fault, which is what
// makes the site enumeration sound.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"nomap/internal/harness"
	"nomap/internal/ir"
	"nomap/internal/jit"
	"nomap/internal/profile"
	"nomap/internal/value"
	"nomap/internal/vm"
)

// Program is one differential test subject: setup source defining run(),
// a call protocol hot enough to reach the FTL tier, and an optional poison
// step that invalidates speculation mid-run (type or shape changes).
type Program struct {
	Name string
	// Setup defines globals and a run(n) function.
	Setup string
	// Calls is the number of run(Arg) invocations before the poison step.
	Calls int
	// Arg is passed to run on every call (ignored by workloads whose run
	// takes no parameters).
	Arg int
	// Poison, when non-empty, is executed as program source after Calls
	// invocations; PostCalls further invocations follow it.
	Poison    string
	PostCalls int
}

// Observation is everything a run makes observable: the string rendering of
// each run() result, the print() output, the final reachable heap, and any
// error. Two runs with equal Observations are behaviourally identical.
type Observation struct {
	Results []string
	Output  []string
	Heap    string
	Err     string
}

// Diff returns a human-readable description of the first difference between
// two observations, or "" when they are identical.
func (o *Observation) Diff(other *Observation) string {
	if o.Err != other.Err {
		return fmt.Sprintf("error: %q vs %q", o.Err, other.Err)
	}
	if len(o.Results) != len(other.Results) {
		return fmt.Sprintf("result count: %d vs %d", len(o.Results), len(other.Results))
	}
	for i := range o.Results {
		if o.Results[i] != other.Results[i] {
			return fmt.Sprintf("call %d result: %q vs %q", i, o.Results[i], other.Results[i])
		}
	}
	if len(o.Output) != len(other.Output) {
		return fmt.Sprintf("output line count: %d vs %d", len(o.Output), len(other.Output))
	}
	for i := range o.Output {
		if o.Output[i] != other.Output[i] {
			return fmt.Sprintf("output line %d: %q vs %q", i, o.Output[i], other.Output[i])
		}
	}
	if o.Heap != other.Heap {
		return fmt.Sprintf("final heap state:\n  %s\nvs\n  %s", o.Heap, other.Heap)
	}
	return ""
}

// Engine is one execution context a sweep can run against: a VM plus the
// JIT backend whose machine exposes the injection hooks. The default
// implementation constructs a throwaway engine per run; a factory (see
// Config.Engines) can instead draw engines from the serving layer's isolate
// pool, which is how the pool's recycled isolates are proven to satisfy the
// same fault-injection oracle as dedicated ones.
type Engine interface {
	VM() *vm.VM
	Backend() *jit.Backend
	// Done releases the engine after a run (pool-drawn engines return to
	// their pool; throwaway engines are simply dropped).
	Done()
}

// EngineFactory supplies the Engine for one instrumented run.
type EngineFactory func(arch vm.Arch, maxTier profile.Tier) Engine

// engine bundles a VM with its JIT backend so the oracle can reach the
// machine's injection hooks.
type engine struct {
	vm      *vm.VM
	backend *jit.Backend
}

func (e *engine) VM() *vm.VM            { return e.vm }
func (e *engine) Backend() *jit.Backend { return e.backend }
func (e *engine) Done()                 {}

func newEngine(arch vm.Arch, maxTier profile.Tier) *engine {
	cfg := vm.DefaultConfig()
	cfg.Arch = arch
	cfg.MaxTier = maxTier
	cfg.Policy = harness.FastPolicy()
	v := vm.New(cfg)
	return &engine{vm: v, backend: jit.Attach(v)}
}

// observe executes the program's full call protocol on v and captures the
// observation. Runtime errors are recorded, not returned: an injected fault
// must never surface as an error, and a divergence in errors is itself an
// observable difference.
func observe(v *vm.VM, p Program) *Observation {
	obs := &Observation{}
	fail := func(err error) *Observation {
		obs.Err = err.Error()
		obs.Output = v.Output
		obs.Heap = SnapshotHeap(v.Globals())
		return obs
	}
	if _, err := v.Run(p.Setup); err != nil {
		return fail(err)
	}
	for i := 0; i < p.Calls; i++ {
		r, err := v.CallGlobal("run", value.Int(int32(p.Arg)))
		if err != nil {
			return fail(err)
		}
		obs.Results = append(obs.Results, r.ToStringValue())
	}
	if p.Poison != "" {
		if _, err := v.Run(p.Poison); err != nil {
			return fail(err)
		}
		for i := 0; i < p.PostCalls; i++ {
			r, err := v.CallGlobal("run", value.Int(int32(p.Arg)))
			if err != nil {
				return fail(err)
			}
			obs.Results = append(obs.Results, r.ToStringValue())
		}
	}
	obs.Output = v.Output
	obs.Heap = SnapshotHeap(v.Globals())
	return obs
}

// Reference runs the program on the pure interpreter and returns the oracle
// observation every speculative configuration must match.
func Reference(p Program) *Observation {
	return observe(newEngine(vm.ArchBase, profile.TierInterp).vm, p)
}

// SnapshotHeap renders the heap reachable from the global object in a
// canonical, representation-independent form: numbers print by JS value (an
// int32 6 and a double 6.0 are the same observable number), holes are
// distinguished from stored undefineds (rollback must restore them exactly),
// and cycles print as back-references.
func SnapshotHeap(globals *value.Object) string {
	var sb strings.Builder
	seen := make(map[*value.Object]int)
	var render func(v value.Value)
	renderObj := func(o *value.Object) {
		if id, ok := seen[o]; ok {
			fmt.Fprintf(&sb, "@%d", id)
			return
		}
		id := len(seen)
		seen[o] = id
		if o.Fn != nil {
			fmt.Fprintf(&sb, "fn:%s", o.Fn.Name)
			return
		}
		if o.IsArray {
			fmt.Fprintf(&sb, "[len=%d|", o.Length)
			for i := 0; i < o.Length; i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				if !o.InBounds(i) || o.HasHoleAt(i) {
					sb.WriteString("<hole>")
					continue
				}
				render(o.ElementRaw(i))
			}
			sb.WriteByte(']')
			return
		}
		sb.WriteByte('{')
		for i, k := range o.Shape.Keys() {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%s:", k)
			render(o.GetSlot(i))
		}
		sb.WriteByte('}')
	}
	render = func(v value.Value) {
		switch {
		case v.IsObject():
			renderObj(v.Object())
		case v.IsString():
			fmt.Fprintf(&sb, "%q", v.StringVal())
		case v.IsHole():
			sb.WriteString("<hole>")
		default:
			sb.WriteString(v.ToStringValue())
		}
	}
	renderObj(globals)
	return sb.String()
}

// passVerifier runs ir.Verify after every optimization pass of every
// compilation an engine performs, recording failures with the pass that
// introduced them.
type passVerifier struct {
	errs []string
}

func (pv *passVerifier) hook(pass string, f *ir.Func) {
	if err := ir.Verify(f); err != nil {
		pv.errs = append(pv.errs, fmt.Sprintf("after %s: %v", pass, err))
	}
}

// sortedKeys is a small helper for deterministic map iteration in reports.
func sortedKeys[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
