package oracle

import (
	"fmt"

	"nomap/internal/machine"
	"nomap/internal/stats"
)

// Key identifies a static injection site. The engine is deterministic, so
// (function name, OSR entry, IR value id, site kind) is stable between a
// recording run and an injection run of the same program under the same
// configuration. OSR distinguishes a function's OSR-entry artifacts from its
// invocation-entry artifact: each is compiled independently with fresh value
// numbering, so the same ValueID can name different sites across them.
type Key struct {
	Kind    machine.SiteKind
	Fn      string
	OSR     int // artifact's OSR-entry loop-header pc, -1 for invocation entry
	ValueID int
	// Inline is the site's inline path ("callee@pc" segments) when the
	// inliner flattened its code into Fn; "" for sites in Fn's own code. The
	// ValueID already disambiguates inlined copies within one artifact, but
	// the path makes the enumeration (and sweep reports) name which
	// flattened activation a site belongs to.
	Inline string
}

// String renders the key compactly.
func (k Key) String() string {
	inl := ""
	if k.Inline != "" {
		inl = fmt.Sprintf("+inl[%s]", k.Inline)
	}
	if k.OSR >= 0 {
		return fmt.Sprintf("%s@%s+osr%d%s:v%d", k.Kind, k.Fn, k.OSR, inl, k.ValueID)
	}
	return fmt.Sprintf("%s@%s%s:v%d", k.Kind, k.Fn, inl, k.ValueID)
}

// SiteInfo is one enumerated site with its dynamic behaviour during the
// recording run.
type SiteInfo struct {
	Key Key
	// Check and HasSMP describe check sites: HasSMP sites deopt on failure,
	// the rest abort their transaction (the SMP was converted by NoMap).
	Check  stats.CheckClass
	HasSMP bool
	// InTx reports whether a transaction was open at the first visit.
	InTx bool
	// Count is the number of dynamic visits.
	Count int
	// order is the index of the site's first dynamic visit, used to report
	// sites in execution order.
	order int
}

// recorder enumerates sites without perturbing the run.
type recorder struct {
	sites map[Key]*SiteInfo
	// writeLines counts newly tracked transactional write lines, which is
	// the index space for capacity injection.
	writeLines int
}

func newRecorder() *recorder { return &recorder{sites: make(map[Key]*SiteInfo)} }

func (r *recorder) At(s machine.Site) machine.Action {
	k := Key{Kind: s.Kind, Fn: s.Fn, OSR: s.OSR, ValueID: s.ValueID, Inline: s.Inline}
	info := r.sites[k]
	if info == nil {
		info = &SiteInfo{Key: k, Check: s.Check, HasSMP: s.HasSMP, InTx: s.InTx, order: len(r.sites)}
		r.sites[k] = info
	}
	info.Count++
	return machine.ActNone
}

// probe is installed as the HTM capacity probe during recording; it only
// counts.
func (r *recorder) probe(write bool, line uint64) bool {
	if write {
		r.writeLines++
	}
	return false
}

// Sites returns the enumerated sites in first-visit order.
func (r *recorder) Sites() []*SiteInfo {
	keys := sortedKeys(r.sites, func(a, b Key) bool { return r.sites[a].order < r.sites[b].order })
	out := make([]*SiteInfo, len(keys))
	for i, k := range keys {
		out[i] = r.sites[k]
	}
	return out
}

// shot injects a single action at the n-th dynamic visit of one site, then
// goes inert: one fault per run.
type shot struct {
	key        Key
	occurrence int // 1-based
	action     machine.Action
	seen       int
	fired      bool
}

func (s *shot) At(site machine.Site) machine.Action {
	if s.fired || site.Kind != s.key.Kind || site.ValueID != s.key.ValueID ||
		site.Fn != s.key.Fn || site.OSR != s.key.OSR || site.Inline != s.key.Inline {
		return machine.ActNone
	}
	s.seen++
	if s.seen < s.occurrence {
		return machine.ActNone
	}
	s.fired = true
	return s.action
}

// capShot forces a capacity overflow on the n-th newly tracked transactional
// write line of the run (via the HTM capacity probe), then goes inert.
type capShot struct {
	target int // 1-based
	seen   int
	fired  bool
}

func (c *capShot) probe(write bool, line uint64) bool {
	if c.fired || !write {
		return false
	}
	c.seen++
	if c.seen < c.target {
		return false
	}
	c.fired = true
	return true
}

// bug is the deliberately planted compiler defect used to prove the oracle
// catches real miscompilation: every failing check of the selected classes
// is treated as if it passed — exactly what a check-removal pass without
// transactional protection would do. It is only ever installed by test
// builds (Sweep never uses it).
type bug struct {
	classes map[stats.CheckClass]bool
}

// NewPlantedBug returns an injector that suppresses failures of the given
// check classes; with no classes, every failing check is suppressed.
func NewPlantedBug(classes ...stats.CheckClass) machine.Injector {
	b := &bug{classes: make(map[stats.CheckClass]bool)}
	for _, c := range classes {
		b.classes[c] = true
	}
	return b
}

func (b *bug) At(s machine.Site) machine.Action {
	if s.Kind == machine.SiteCheck && s.Failed && (len(b.classes) == 0 || b.classes[s.Check]) {
		return machine.ActPassCheck
	}
	return machine.ActNone
}
