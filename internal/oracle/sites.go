package oracle

import (
	"fmt"

	"nomap/internal/machine"
	"nomap/internal/stats"
)

// Key identifies a static injection site. The engine is deterministic, so
// (function name, OSR entry, IR value id, site kind) is stable between a
// recording run and an injection run of the same program under the same
// configuration. OSR distinguishes a function's OSR-entry artifacts from its
// invocation-entry artifact: each is compiled independently with fresh value
// numbering, so the same ValueID can name different sites across them.
type Key struct {
	Kind    machine.SiteKind
	Fn      string
	OSR     int // artifact's OSR-entry loop-header pc, -1 for invocation entry
	ValueID int
	// Inline is the site's inline path ("callee@pc" segments) when the
	// inliner flattened its code into Fn; "" for sites in Fn's own code. The
	// ValueID already disambiguates inlined copies within one artifact, but
	// the path makes the enumeration (and sweep reports) name which
	// flattened activation a site belongs to.
	Inline string
	// Shape names the per-shape dispatch variant for dispatch-tree predicates
	// and their tail guards ("" for ordinary sites). Like Inline it is
	// informative — ValueID already disambiguates — but it lets sweep reports
	// say which way of a polymorphic site a fault was forced on.
	Shape string
}

// String renders the key compactly.
func (k Key) String() string {
	inl := ""
	if k.Inline != "" {
		inl = fmt.Sprintf("+inl[%s]", k.Inline)
	}
	if k.Shape != "" {
		inl += fmt.Sprintf("+shape[%s]", k.Shape)
	}
	if k.OSR >= 0 {
		return fmt.Sprintf("%s@%s+osr%d%s:v%d", k.Kind, k.Fn, k.OSR, inl, k.ValueID)
	}
	return fmt.Sprintf("%s@%s%s:v%d", k.Kind, k.Fn, inl, k.ValueID)
}

// SiteInfo is one enumerated site with its dynamic behaviour during the
// recording run.
type SiteInfo struct {
	Key Key
	// Check and HasSMP describe check sites: HasSMP sites deopt on failure,
	// the rest abort their transaction (the SMP was converted by NoMap).
	Check  stats.CheckClass
	HasSMP bool
	// InTx reports whether a transaction was open at the first visit.
	InTx bool
	// Count is the number of dynamic visits.
	Count int
	// order is the index of the site's first dynamic visit, used to report
	// sites in execution order.
	order int
}

// recorder enumerates sites without perturbing the run.
type recorder struct {
	sites map[Key]*SiteInfo
	// writeLines counts newly tracked transactional write lines, which is
	// the index space for capacity injection.
	writeLines int
}

func newRecorder() *recorder { return &recorder{sites: make(map[Key]*SiteInfo)} }

func (r *recorder) At(s machine.Site) machine.Action {
	// Dispatch predicates count only their passing visits: shot.At declines
	// to force a miss on an already-missing predicate (a no-op fault), so
	// Count must index the consumable occurrence space. A predicate that
	// never passes is not an injectable site at all.
	if s.Kind == machine.SiteDispatch && s.Failed {
		return machine.ActNone
	}
	k := Key{Kind: s.Kind, Fn: s.Fn, OSR: s.OSR, ValueID: s.ValueID, Inline: s.Inline, Shape: s.Shape}
	info := r.sites[k]
	if info == nil {
		info = &SiteInfo{Key: k, Check: s.Check, HasSMP: s.HasSMP, InTx: s.InTx, order: len(r.sites)}
		r.sites[k] = info
	}
	info.Count++
	return machine.ActNone
}

// probe is installed as the HTM capacity probe during recording; it only
// counts.
func (r *recorder) probe(write bool, line uint64) bool {
	if write {
		r.writeLines++
	}
	return false
}

// Sites returns the enumerated sites in first-visit order.
func (r *recorder) Sites() []*SiteInfo {
	keys := sortedKeys(r.sites, func(a, b Key) bool { return r.sites[a].order < r.sites[b].order })
	out := make([]*SiteInfo, len(keys))
	for i, k := range keys {
		out[i] = r.sites[k]
	}
	return out
}

// shot injects a single action at the n-th dynamic visit of one site, then
// goes inert: one fault per run.
type shot struct {
	key        Key
	occurrence int // 1-based
	action     machine.Action
	seen       int
	fired      bool
}

func (s *shot) At(site machine.Site) machine.Action {
	if s.fired || site.Kind != s.key.Kind || site.ValueID != s.key.ValueID ||
		site.Fn != s.key.Fn || site.OSR != s.key.OSR || site.Inline != s.key.Inline {
		return machine.ActNone
	}
	// Forcing a miss on an already-missing dispatch predicate would change
	// nothing (and the run would then show no abort where one is expected);
	// wait for a visit where the predicate passes, which the recorder
	// guarantees exists (it only counts passing visits).
	if site.Kind == machine.SiteDispatch && site.Failed && s.action == machine.ActFailCheck {
		return machine.ActNone
	}
	s.seen++
	if s.seen < s.occurrence {
		return machine.ActNone
	}
	s.fired = true
	return s.action
}

// capShot forces a capacity overflow on the n-th newly tracked transactional
// write line of the run (via the HTM capacity probe), then goes inert.
type capShot struct {
	target int // 1-based
	seen   int
	fired  bool
}

func (c *capShot) probe(write bool, line uint64) bool {
	if c.fired || !write {
		return false
	}
	c.seen++
	if c.seen < c.target {
		return false
	}
	c.fired = true
	return true
}

// bug is the deliberately planted compiler defect used to prove the oracle
// catches real miscompilation: every failing check of the selected classes
// is treated as if it passed — exactly what a check-removal pass without
// transactional protection would do. It is only ever installed by test
// builds (Sweep never uses it).
type bug struct {
	classes map[stats.CheckClass]bool
}

// NewPlantedBug returns an injector that suppresses failures of the given
// check classes; with no classes, every failing check is suppressed.
func NewPlantedBug(classes ...stats.CheckClass) machine.Injector {
	b := &bug{classes: make(map[stats.CheckClass]bool)}
	for _, c := range classes {
		b.classes[c] = true
	}
	return b
}

func (b *bug) At(s machine.Site) machine.Action {
	if s.Kind == machine.SiteCheck && s.Failed && (len(b.classes) == 0 || b.classes[s.Check]) {
		return machine.ActPassCheck
	}
	return machine.ActNone
}

// staleShapeBug is the inline-cache analogue of the planted check-removal
// bug: every failing dispatch-tree check — the way predicates, the deopting
// tail guard, and the per-way callee guards inside method bodies — is
// treated as a hit, exactly as if the whole cache entry were stale: a
// receiver's hidden class moved on but the tree still dispatches it down the
// old way. The wrong way's specialized body then runs to completion (no
// second line of defense), and the differential oracle must observe the
// divergence. Only ever installed by test builds (Sweep never uses it).
type staleShapeBug struct{}

// NewStaleShapeBug returns an injector that forces every failing
// dispatch-marked check to report a hit. Dispatch-marked SiteCheck visits
// are recognized by their per-shape identity (Site.Shape is "" for every
// ordinary check).
func NewStaleShapeBug() machine.Injector { return staleShapeBug{} }

func (staleShapeBug) At(s machine.Site) machine.Action {
	if !s.Failed {
		return machine.ActNone
	}
	if s.Kind == machine.SiteDispatch || (s.Kind == machine.SiteCheck && s.Shape != "") {
		return machine.ActPassCheck
	}
	return machine.ActNone
}
