package oracle

import (
	"strings"
	"testing"

	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/vm"
)

// hotProgram is a minimal speculation-heavy subject: an array-summing hot
// loop plus a poison step that invalidates type speculation mid-run.
var hotProgram = Program{
	Name: "hot-sum",
	Setup: `
var a = [];
for (var i = 0; i < 24; i++) a[i] = i;
var o = {acc: 0};
function run(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = (s + a[i % 24]) | 0;
    o.acc = o.acc + 1;
  }
  return s + o.acc;
}
`,
	Calls:     60,
	Arg:       16,
	Poison:    `a[7] = "boom";`,
	PostCalls: 3,
}

func TestReferenceIsClean(t *testing.T) {
	ref := Reference(hotProgram)
	if ref.Err != "" {
		t.Fatalf("reference errored: %s", ref.Err)
	}
	if len(ref.Results) != hotProgram.Calls+hotProgram.PostCalls {
		t.Fatalf("got %d results, want %d", len(ref.Results), hotProgram.Calls+hotProgram.PostCalls)
	}
	if ref.Heap == "" || !strings.Contains(ref.Heap, "acc") {
		t.Fatalf("heap snapshot missing globals: %q", ref.Heap)
	}
}

func TestSnapshotDistinguishesHoleFromUndefined(t *testing.T) {
	p := Program{Name: "holes", Setup: `
var h = []; h[3] = 1;
var u = []; u[0] = undefined; u[1] = undefined; u[2] = undefined; u[3] = 1;
function run(n) { return n; }
`, Calls: 1, Arg: 0}
	ref := Reference(p)
	if ref.Err != "" {
		t.Fatalf("reference errored: %s", ref.Err)
	}
	if !strings.Contains(ref.Heap, "<hole>,<hole>,<hole>,1") {
		t.Errorf("holes not rendered: %s", ref.Heap)
	}
	if !strings.Contains(ref.Heap, "undefined,undefined,undefined,1") {
		t.Errorf("stored undefineds not rendered: %s", ref.Heap)
	}
}

func TestSweepEnumeratesAndInjects(t *testing.T) {
	cfg := Config{
		Archs:          []vm.Arch{vm.ArchNoMap, vm.ArchNoMapRTM},
		MaxTier:        profile.TierFTL,
		CapacityPoints: 2,
		RandomTrials:   4,
		Seed:           7,
	}
	rep, err := Sweep(hotProgram, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("failure: %s", f)
	}
	for _, ar := range rep.Archs {
		if len(ar.Sites) == 0 {
			t.Errorf("%v: no sites enumerated", ar.Arch)
		}
		kinds := map[machine.SiteKind]int{}
		for _, s := range ar.Sites {
			kinds[s.Key.Kind]++
		}
		if kinds[machine.SiteCheck] == 0 {
			t.Errorf("%v: no check sites", ar.Arch)
		}
		if kinds[machine.SiteTxBegin] == 0 || kinds[machine.SiteTxCommit] == 0 {
			t.Errorf("%v: no transaction boundary sites (%v)", ar.Arch, kinds)
		}
		if ar.WriteLines == 0 {
			t.Errorf("%v: no transactional write lines recorded", ar.Arch)
		}
		if ar.InjectedAborts == 0 {
			t.Errorf("%v: injections produced no aborts", ar.Arch)
		}
	}
}

func TestSweepBaseArchHasNoTxSites(t *testing.T) {
	rep, err := Sweep(hotProgram, Config{Archs: []vm.Arch{vm.ArchBase}, CapacityPoints: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("failure: %s", f)
	}
	ar := rep.Archs[0]
	for _, s := range ar.Sites {
		if s.Key.Kind != machine.SiteCheck {
			t.Errorf("Base enumerated %v site %s", s.Key.Kind, s.Key)
		}
		if !s.HasSMP {
			t.Errorf("Base check site %s without SMP", s.Key)
		}
	}
}

func TestGenerateDeterministicAndRenders(t *testing.T) {
	a, b := Generate(42), Generate(42)
	if a.Render() != b.Render() || a.Poison != b.Poison {
		t.Fatal("Generate is not deterministic")
	}
	if len(a.ArrInit) != a.ArrLen {
		t.Fatalf("ArrInit has %d entries for ArrLen %d", len(a.ArrInit), a.ArrLen)
	}
	p := a.Program(40, 2, 12)
	ref := Reference(p)
	if ref.Err != "" {
		t.Fatalf("generated program errored: %s\n%s", ref.Err, p.Setup)
	}
}

func TestCapacityTargets(t *testing.T) {
	cases := []struct {
		w, n int
		want []int
	}{
		{10, 3, []int{1, 5, 10}},
		{10, 1, []int{1}},
		{2, 3, []int{1, 2}},
		{1, 3, []int{1}},
		{4, -1, []int{1, 2, 3, 4}},
	}
	for _, c := range cases {
		got := capacityTargets(c.w, c.n)
		if len(got) != len(c.want) {
			t.Errorf("capacityTargets(%d,%d) = %v, want %v", c.w, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("capacityTargets(%d,%d) = %v, want %v", c.w, c.n, got, c.want)
				break
			}
		}
	}
}

func TestReduceListMinimizes(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e", "f", "g"}
	// Failure requires both "c" and "f" to be present.
	got := reduceList(items, func(cand []string) bool {
		hasC, hasF := false, false
		for _, s := range cand {
			if s == "c" {
				hasC = true
			}
			if s == "f" {
				hasF = true
			}
		}
		return hasC && hasF
	})
	if len(got) != 2 || got[0] != "c" || got[1] != "f" {
		t.Errorf("reduceList = %v, want [c f]", got)
	}
}

func TestCheckCountersRejectsLeaksAndNegatives(t *testing.T) {
	eng := newEngine(vm.ArchNoMap, profile.TierFTL)
	observe(eng.vm, hotProgram)
	c := eng.vm.Counters()
	if err := CheckCounters(c); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	bad := *c
	bad.TxBegins++
	if err := CheckCounters(&bad); err == nil {
		t.Error("transaction leak not flagged")
	}
	bad = *c
	bad.CyclesTM = -1
	if err := CheckCounters(&bad); err == nil {
		t.Error("negative counter not flagged")
	}
}
