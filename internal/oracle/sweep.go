package oracle

import (
	"fmt"
	"math/rand"

	"nomap/internal/htm"
	"nomap/internal/machine"
	"nomap/internal/profile"
	"nomap/internal/stats"
	"nomap/internal/vm"
)

// Config controls a sweep.
type Config struct {
	// Archs lists the configurations to sweep (default: all six).
	Archs []vm.Arch
	// MaxTier caps tier-up (default: FTL, the tier under test).
	MaxTier profile.Tier
	// CapacityPoints is how many write-footprint indices get a forced
	// capacity overflow per configuration (default 3: first, middle, last
	// tracked write line). Zero disables; negative means every line.
	CapacityPoints int
	// RandomTrials adds seeded random-schedule injections per configuration:
	// a random site, a random dynamic occurrence, a random legal action.
	RandomTrials int
	// Seed seeds the random-schedule mode.
	Seed int64
	// Engines, when non-nil, supplies the engine for each instrumented run
	// instead of constructing a throwaway one. The serving tests use it to
	// point the sweep at pool-drawn isolates.
	Engines EngineFactory
}

// DefaultConfig sweeps all six architecture configurations exhaustively with
// three capacity points and a handful of random-schedule trials.
func DefaultConfig() Config {
	return Config{
		Archs:          vm.AllArchs,
		MaxTier:        profile.TierFTL,
		CapacityPoints: 3,
		RandomTrials:   8,
		Seed:           1,
	}
}

// Failure is one detected violation: a behavioural divergence from the
// interpreter reference, a counter-invariant break, an ir.Verify failure, or
// an injection that did not land.
type Failure struct {
	Arch   vm.Arch
	Run    string // which run: "recording", a site description, "capacity@k", "random#i"
	Kind   string // "divergence" | "counter-invariant" | "ir-verify" | "injection-missed"
	Detail string
}

func (f Failure) String() string {
	return fmt.Sprintf("[%s] %s: %s: %s", f.Arch, f.Run, f.Kind, f.Detail)
}

// ArchReport summarizes one configuration's sweep.
type ArchReport struct {
	Arch vm.Arch
	// Sites are the enumerated static injection sites, in first-visit order.
	Sites []*SiteInfo
	// WriteLines is the transactional write-footprint size (in tracked
	// cache lines) of the recording run — the capacity injection space.
	WriteLines int
	// Runs is the number of executions performed (recording + injections).
	Runs int
	// InjectedAborts / InjectedDeopts total the aborts and OSR exits
	// observed across all injection runs of this configuration.
	InjectedAborts int64
	InjectedDeopts int64
}

// Report is the outcome of one program's sweep.
type Report struct {
	Program  string
	Archs    []ArchReport
	Failures []Failure
}

// OK reports a fully clean sweep.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// TotalSites sums enumerated sites across configurations.
func (r *Report) TotalSites() int {
	n := 0
	for _, a := range r.Archs {
		n += len(a.Sites)
	}
	return n
}

// TotalRuns sums executions across configurations.
func (r *Report) TotalRuns() int {
	n := 0
	for _, a := range r.Archs {
		n += a.Runs
	}
	return n
}

// TotalInjectedAborts sums aborts observed across all injection runs.
func (r *Report) TotalInjectedAborts() int64 {
	var n int64
	for _, a := range r.Archs {
		n += a.InjectedAborts
	}
	return n
}

// defaultAction picks the fault forced at a site during the exhaustive pass.
// Checks fail (deopting through their SMP or aborting their transaction);
// transaction boundaries abort with the cause natural to the boundary: an
// irrevocable event right after begin, a sticky-overflow detection at
// commit, a capacity overflow at a tile point.
func defaultAction(kind machine.SiteKind) machine.Action {
	switch kind {
	case machine.SiteCheck:
		return machine.ActFailCheck
	case machine.SiteDispatch:
		// A forced dispatch miss skips the matching way; the receiver then
		// matches no sibling (shapes are mutually exclusive), so the chain
		// cascades into its deopting tail guard — an abort or deopt follows.
		return machine.ActFailCheck
	case machine.SiteTxBegin:
		return machine.ActAbortIrrevocable
	case machine.SiteTxCommit:
		return machine.ActAbortSOF
	case machine.SiteTxTile:
		return machine.ActAbortCapacity
	}
	return machine.ActNone
}

// Sweep enumerates every injectable site of p under each configuration and
// re-runs the program once per site (plus capacity and random-schedule
// injections), comparing every run against the pure-interpreter reference.
func Sweep(p Program, cfg Config) (*Report, error) {
	if len(cfg.Archs) == 0 {
		cfg.Archs = vm.AllArchs
	}
	if cfg.MaxTier == 0 {
		cfg.MaxTier = profile.TierFTL
	}
	ref := Reference(p)
	if ref.Err != "" {
		return nil, fmt.Errorf("oracle: %s: reference run failed: %s", p.Name, ref.Err)
	}
	rep := &Report{Program: p.Name}

	for _, arch := range cfg.Archs {
		ar := ArchReport{Arch: arch}
		fail := func(run, kind, detail string) {
			rep.Failures = append(rep.Failures, Failure{Arch: arch, Run: run, Kind: kind, Detail: detail})
		}

		// Recording run: enumerate sites, count the write footprint, and
		// establish the plain (un-injected) differential baseline.
		rec := newRecorder()
		obs, ctrs := runInstrumented(p, arch, cfg.MaxTier, cfg.Engines, rec, rec.probe, func(d string) {
			fail("recording", "ir-verify", d)
		})
		ar.Runs++
		if d := ref.Diff(obs); d != "" {
			fail("recording", "divergence", d)
		}
		if err := CheckCounters(ctrs); err != nil {
			fail("recording", "counter-invariant", err.Error())
		}
		ar.Sites = rec.Sites()
		ar.WriteLines = rec.writeLines

		inject := func(run string, inj machine.Injector, probe htm.CapacityProbe, fired func() bool, expectAbort bool) {
			obs, ctrs := runInstrumented(p, arch, cfg.MaxTier, cfg.Engines, inj, probe, func(d string) {
				fail(run, "ir-verify", d)
			})
			ar.Runs++
			ar.InjectedAborts += ctrs.TxAborts
			ar.InjectedDeopts += ctrs.OSRExits
			if !fired() {
				fail(run, "injection-missed", "site not reached in re-run")
				return
			}
			if expectAbort && ctrs.TxAborts == 0 && ctrs.OSRExits == 0 {
				fail(run, "injection-missed", "fault fired but no abort or deopt occurred")
			}
			if d := ref.Diff(obs); d != "" {
				fail(run, "divergence", d)
			}
			if err := CheckCounters(ctrs); err != nil {
				fail(run, "counter-invariant", err.Error())
			}
		}

		// Exhaustive pass: one run per enumerated site, fault at the first
		// dynamic occurrence. Tile sites additionally get a forced early
		// tile-commit (a non-fault perturbation that must still preserve
		// behaviour).
		for _, s := range ar.Sites {
			act := defaultAction(s.Key.Kind)
			sh := &shot{key: s.Key, occurrence: 1, action: act}
			inject(fmt.Sprintf("%s#1(%d)", s.Key, act), sh, nil, func() bool { return sh.fired }, true)
			if s.Key.Kind == machine.SiteTxTile {
				ts := &shot{key: s.Key, occurrence: 1, action: machine.ActTileCommit}
				inject(fmt.Sprintf("%s#1(tile-commit)", s.Key), ts, nil, func() bool { return ts.fired }, false)
			}
		}

		// Capacity pass: force an overflow at chosen points of the write
		// footprint; the §V-C retreat policy (loop-nest → innermost → tiled
		// → off) then reshapes later compilations, which must stay correct.
		if ar.WriteLines > 0 && cfg.CapacityPoints != 0 {
			targets := capacityTargets(ar.WriteLines, cfg.CapacityPoints)
			for _, k := range targets {
				cs := &capShot{target: k}
				inject(fmt.Sprintf("capacity@%d", k), nil, cs.probe, func() bool { return cs.fired }, true)
			}
		}

		// Random-schedule pass: seeded sampling of deeper occurrences.
		if cfg.RandomTrials > 0 && len(ar.Sites) > 0 {
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(arch)<<32 ^ int64(len(ar.Sites))))
			for i := 0; i < cfg.RandomTrials; i++ {
				s := ar.Sites[rng.Intn(len(ar.Sites))]
				occ := 1 + rng.Intn(s.Count)
				act := randomAction(rng, s.Key.Kind)
				sh := &shot{key: s.Key, occurrence: occ, action: act}
				inject(fmt.Sprintf("random#%d:%s#%d(%d)", i, s.Key, occ, act),
					sh, nil, func() bool { return sh.fired }, act != machine.ActTileCommit)
			}
		}

		rep.Archs = append(rep.Archs, ar)
	}
	return rep, nil
}

// runInstrumented executes one observation run with the given injector,
// capacity probe, and an ir.Verify pass hook; it returns the observation and
// a copy of the engine's final counters (a copy because a factory-supplied
// engine may be recycled — and its counters reset — once released).
func runInstrumented(p Program, arch vm.Arch, maxTier profile.Tier, factory EngineFactory,
	inj machine.Injector, probe htm.CapacityProbe, verifyFail func(string)) (*Observation, *stats.Counters) {
	pv := &passVerifier{}
	var eng Engine
	if factory != nil {
		eng = factory(arch, maxTier)
	} else {
		eng = newEngine(arch, maxTier)
	}
	defer eng.Done()
	b := eng.Backend()
	// Defensive determinism guard: a freshly attached backend starts empty,
	// but Reset makes the contract explicit — no cached code and no governor
	// ledger state may leak between differential runs, or an injected fault
	// in one run would change recovery-policy decisions in the next.
	b.Reset()
	if inj != nil {
		b.Machine().SetInjector(inj)
	}
	if probe != nil {
		b.Machine().HTM.SetCapacityProbe(probe)
	}
	b.SetPassHook(pv.hook)
	obs := observe(eng.VM(), p)
	for _, e := range pv.errs {
		verifyFail(e)
	}
	ctrs := *eng.VM().Counters()
	return obs, &ctrs
}

// capacityTargets spreads n injection points over a footprint of w tracked
// write lines: always the first and last line, with the rest evenly spaced.
// n < 0 selects every line.
func capacityTargets(w, n int) []int {
	if n < 0 || n >= w {
		out := make([]int, w)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	seen := make(map[int]bool)
	var out []int
	add := func(k int) {
		if k >= 1 && k <= w && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	if n == 1 {
		add(1)
		return out
	}
	for i := 0; i < n; i++ {
		add(1 + i*(w-1)/(n-1))
	}
	return out
}

// randomAction picks a legal action for the site kind.
func randomAction(rng *rand.Rand, kind machine.SiteKind) machine.Action {
	switch kind {
	case machine.SiteCheck, machine.SiteDispatch:
		return machine.ActFailCheck
	case machine.SiteTxTile:
		return []machine.Action{machine.ActAbortCapacity, machine.ActAbortSOF,
			machine.ActAbortIrrevocable, machine.ActTileCommit}[rng.Intn(4)]
	default:
		return []machine.Action{machine.ActAbortCapacity, machine.ActAbortSOF,
			machine.ActAbortIrrevocable}[rng.Intn(3)]
	}
}
