package oracle

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenSpec is a structured random program from the differential-fuzz grammar
// (the same speculation-surface bias as fuzz_differential_test.go: int32
// arithmetic near overflow, array loops, object property accumulation,
// mixed-type corners), kept as independent chunks so the reducer can delete
// them wholesale while preserving syntactic validity.
type GenSpec struct {
	Seed   int64
	ArrLen int
	Scale  int
	Bias   int
	TInit  int
	// ArrInit holds one `ga[i] = v;` statement per element; dropping any
	// subset leaves a legal (possibly holey) array.
	ArrInit []string
	// Body holds self-contained loop-body chunks (statements or whole
	// switch blocks).
	Body []string
	// Poison is a mid-run speculation invalidation (type change, shape
	// change, or extent growth) executed between call batches.
	Poison string
}

// Generate builds a deterministic random spec from seed.
func Generate(seed int64) *GenSpec {
	r := rand.New(rand.NewSource(seed))
	g := &GenSpec{
		Seed:   seed,
		ArrLen: 8 + r.Intn(24),
		Scale:  1 + r.Intn(5),
		Bias:   r.Intn(9),
		TInit:  r.Intn(100),
	}
	for i := 0; i < g.ArrLen; i++ {
		switch r.Intn(5) {
		case 0:
			g.ArrInit = append(g.ArrInit, fmt.Sprintf("ga[%d] = %d.5;", i, r.Intn(100)))
		default:
			g.ArrInit = append(g.ArrInit, fmt.Sprintf("ga[%d] = %d;", i, r.Intn(1<<20)-1<<19))
		}
	}

	vars := []string{"s", "i", "t"}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 {
			switch r.Intn(6) {
			case 0:
				return fmt.Sprintf("%d", r.Intn(2048)-1024)
			case 1:
				return fmt.Sprintf("ga[i %% %d]", g.ArrLen)
			case 2:
				return "gobj.scale"
			case 3:
				return "gobj.bias"
			default:
				return vars[r.Intn(len(vars))]
			}
		}
		ops := []string{"+", "-", "*", "&", "|", "^", "%"}
		op := ops[r.Intn(len(ops))]
		l, rr := expr(depth-1), expr(depth-1)
		if op == "%" {
			return fmt.Sprintf("((%s) %% ((%s) | 1))", l, rr) // avoid %0 noise
		}
		return fmt.Sprintf("((%s) %s (%s))", l, op, rr)
	}

	stmts := 1 + r.Intn(3)
	for k := 0; k < stmts; k++ {
		switch r.Intn(6) {
		case 0:
			g.Body = append(g.Body, fmt.Sprintf("s = (s + %s) | 0;", expr(2)))
		case 1:
			g.Body = append(g.Body, fmt.Sprintf("t = %s;", expr(2)))
		case 2:
			g.Body = append(g.Body, fmt.Sprintf("gobj.acc = gobj.acc + (%s) %% 1000;", expr(1)))
		case 3:
			g.Body = append(g.Body, fmt.Sprintf("if ((%s) > 0) { s = s + 1; } else { s = s - 1; }", expr(1)))
		case 4:
			g.Body = append(g.Body, fmt.Sprintf(
				"switch ((%s) & 3) {\n    case 0: s += 3; break;\n    case 1: s -= 1;\n    case 2: t = (t + 7) | 0; break;\n    default: s ^= 5;\n    }", expr(1)))
		default:
			g.Body = append(g.Body, fmt.Sprintf("ga[i %% %d] = (%s) %% 100000;", g.ArrLen, expr(1)))
		}
	}

	k := r.Intn(g.ArrLen)
	switch r.Intn(4) {
	case 0:
		g.Poison = fmt.Sprintf(`ga[%d] = "P";`, k) // int → string type change
	case 1:
		g.Poison = fmt.Sprintf("ga[%d] = 0.5;", k) // int → double type change
	case 2:
		g.Poison = "gobj.poison = 1;" // shape transition
	default:
		g.Poison = fmt.Sprintf("ga[%d] = 7;", g.ArrLen+4) // extent growth + holes
	}
	return g
}

// Render produces the program source: globals, then run(n) with the loop
// body chunks. gobj.acc and ga mutate across calls, which is fine — every
// engine executes the identical call sequence from identical initial state.
func (g *GenSpec) Render() string {
	var sb strings.Builder
	sb.WriteString("var ga = [];\n")
	for _, s := range g.ArrInit {
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "var gobj = {acc: 0, scale: %d, bias: %d};\n", g.Scale, g.Bias)
	fmt.Fprintf(&sb, "function run(n) {\n  var s = 0, t = %d;\n", g.TInit)
	sb.WriteString("  for (var i = 0; i < n; i++) {\n")
	for _, s := range g.Body {
		sb.WriteString("    ")
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	sb.WriteString("  }\n  return (s + t + gobj.acc) % 1000000007;\n}\n")
	return sb.String()
}

// Program wraps the spec in the oracle's call protocol.
func (g *GenSpec) Program(calls, postCalls, arg int) Program {
	return Program{
		Name:      fmt.Sprintf("gen-%d", g.Seed),
		Setup:     g.Render(),
		Calls:     calls,
		Arg:       arg,
		Poison:    g.Poison,
		PostCalls: postCalls,
	}
}

// LineCount counts the source lines of the rendered reproducer (setup plus
// poison).
func (g *GenSpec) LineCount() int {
	n := strings.Count(g.Render(), "\n")
	if g.Poison != "" {
		n += strings.Count(g.Poison, "\n") + 1
	}
	return n
}

func (g *GenSpec) clone() *GenSpec {
	c := *g
	c.ArrInit = append([]string(nil), g.ArrInit...)
	c.Body = append([]string(nil), g.Body...)
	return &c
}
